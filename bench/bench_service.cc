// Cache-fronted serving throughput of the async query service (extension).
//
// Closed-loop benchmark: C client threads each submit one query and wait
// for its future before submitting the next, against an AsyncQueryService
// with C workers. The workload is Zipfian-skewed (s = 1.0 over a hot set of
// distinct seeds) — the skewed, repetitive traffic shape the result cache
// is built for.
//
// Two passes per thread count:
//   cold: fresh service, empty cache — misses dominate (hot repeats within
//         the pass already hit or coalesce, which is realistic cold traffic)
//   warm: same workload replayed on the same service — hits dominate
//
// Expected shape: warm-cache QPS several times cold QPS (acceptance: >= 3x
// at 8 threads), with the gap growing as queries get more expensive, and a
// hit rate near the workload's repeat rate.
//
// The serving backend is selectable by registry name: by default the
// benchmark is a *router sweep* over "auto" (the adaptive per-query
// backend router), "learned" (a LearnedRouter pre-trained offline from
// routing events of one pinned pass per candidate backend — the bench
// equivalent of the MultiGraphService trainer having watched live
// traffic), TEA+, HK-Relax, and Monte-Carlo — the paper's central
// comparison, now through the production query path, with the router's
// blended plan measured against every fixed backend on the same
// mixed-degree Zipfian workload (hot set = half hubs, half tail seeds, so
// the router's per-seed choice actually varies). --backend=NAME restricts
// the run to one backend.
//
// Multi-graph mode (--graphs=N): N registry datasets are published into a
// GraphStore and served through one MultiGraphService whose per-graph
// services split the worker budget; the workload interleaves per-graph
// Zipfian streams round-robin, and the emitted rows are per graph (the
// "graph" JSON field), with per-graph cache counters from StatsFor().
//
// Extra flags: --json=PATH writes results as JSON (BENCH_service.json
// trajectory); --queries=N overrides the per-pass query count;
// --backend=NAME benchmarks one registry backend (or "auto") instead of
// the sweep; --graphs=N switches to the multi-graph sweep over N
// datasets; --graph-scale=NAME (small/medium/large, see bench_common.h)
// adds an R-MAT scaling preset to the backend sweep, so the JSON carries
// large-graph rows (per-row "graph" field) next to the historical
// small-graph ones; --walk-kernel=scalar|interleaved and --walk-width=N
// select the random-walk kernel for every backend in the sweep (default
// interleaved — A/B the two to isolate the walk-phase speedup end to
// end); --hedge appends a hedged-vs-unhedged tail-latency
// comparison (cache disabled so every query computes, served by the
// pre-trained learned router; phases "hedged"/"unhedged", hedged/
// hedge_wins counters per row) — kept out of the default smoke run
// because hedge computes intentionally exceed the query count; --smoke
// shrinks the router sweep to a seconds-long CI
// validation run (tiny query count, one thread count) that still emits
// every row; --trace-overhead skips the sweep and instead runs alternating
// traced/untraced reps of the smoke workload, exiting non-zero when stage
// tracing costs >= 2% median QPS (the telemetry hot-path regression gate).
//
// Every JSON row also carries per-stage mean latencies (queue_ms, cache_ms,
// compute_ms, total_ms) from the service's stage-tracing counters; the
// stages are disjoint, so their sum is <= total_ms per row (CI asserts
// this on the smoke run).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "hkpr/backend.h"
#include "hkpr/cost_model.h"
#include "parallel/parallel_for.h"
#include "service/multi_graph_service.h"

using namespace hkpr;
using namespace hkpr::bench;

namespace {

// Walk-kernel selection (--walk-kernel= / --walk-width=), applied to every
// service constructed by the sweep so an A/B across kernels is one flag.
WalkKernelOptions g_walk_kernel;

struct ServiceRow {
  std::string backend;
  std::string graph;
  uint32_t threads;
  std::string phase;  // "cold" or "warm"
  uint32_t queries;
  double seconds;
  uint64_t cache_hits;
  uint64_t cache_misses;
  uint64_t coalesced;
  uint64_t computed;
  double p50_ms;
  double p95_ms;
  double p99_ms;
  // Hedge counters for this pass (zero outside --hedge rows): fired
  // runner-up requests and how many of them beat their primary.
  uint64_t hedged = 0;
  uint64_t hedge_wins = 0;
  // Exact compute-stage percentiles over the pass's routing events
  // (--hedge rows only; zero elsewhere): the winning side's compute time
  // per query, so a hedge win shows up as the runner-up's fast compute
  // replacing the primary's slow one — the tail hedging exists to cut.
  double compute_p95_ms = 0.0;
  double compute_p99_ms = 0.0;
  // Per-stage mean latencies for this pass, from the service's exact
  // stage-total counters (after - before diffs, so the cumulative service
  // histogram doesn't smear passes into each other). Zero when tracing is
  // disabled. The stages are disjoint sub-intervals of each query's
  // lifetime, so queue_ms + cache_ms + compute_ms <= total_ms per row.
  double queue_ms = 0.0;
  double cache_ms = 0.0;
  double compute_ms = 0.0;
  double total_ms = 0.0;
  double qps() const { return queries / (seconds + 1e-12); }
};

/// Mean over the pass window [before, after] of one stage, in ms.
double StageMeanMs(const StageLatencySnapshot& after,
                   const StageLatencySnapshot& before) {
  const uint64_t count = after.count - before.count;
  if (count == 0) return 0.0;
  return static_cast<double>(after.total_us - before.total_us) /
         static_cast<double>(count) / 1000.0;
}

/// Runs one closed-loop pass: `clients` threads split `seeds` contiguously,
/// each submitting its share one query at a time (submit -> wait -> next).
/// Per-request latencies are recorded into `latencies` — a per-pass
/// histogram, because the service's own histogram is cumulative over its
/// lifetime and would smear the cold pass into the warm percentiles.
double RunClosedLoop(AsyncQueryService& service, const std::vector<NodeId>& seeds,
                     uint32_t clients, LatencyHistogram& latencies) {
  WallTimer timer;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (uint32_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      // Same contiguous partition as the pool's, for determinism of the
      // per-client workload split.
      const ChunkRange range = ChunkBounds(seeds.size(), clients, c);
      for (size_t i = range.begin; i < range.end; ++i) {
        QueryHandle handle = service.Submit(seeds[i]);
        const QueryResult result = handle.result.get();
        if (result.status != QueryStatus::kOk) {
          std::fprintf(stderr, "unexpected query status %s\n",
                       QueryStatusName(result.status));
          std::abort();
        }
        latencies.Record(result.latency_ms / 1000.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  return timer.ElapsedSeconds();
}

/// Multi-graph closed-loop pass over an interleaved (graph, seed) stream;
/// latencies are recorded into the submitting graph's histogram.
double RunMultiClosedLoop(
    MultiGraphService& service,
    const std::vector<std::pair<std::string, NodeId>>& items, uint32_t clients,
    std::map<std::string, std::unique_ptr<LatencyHistogram>>& latencies) {
  WallTimer timer;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (uint32_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      const ChunkRange range = ChunkBounds(items.size(), clients, c);
      for (size_t i = range.begin; i < range.end; ++i) {
        QueryHandle handle = service.Submit(items[i].first, items[i].second);
        const QueryResult result = handle.result.get();
        if (result.status != QueryStatus::kOk) {
          std::fprintf(stderr, "unexpected query status %s on graph %s\n",
                       QueryStatusName(result.status),
                       items[i].first.c_str());
          std::abort();
        }
        latencies.at(items[i].first)->Record(result.latency_ms / 1000.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  return timer.ElapsedSeconds();
}

ServiceRow MakeRow(const std::string& backend, const std::string& graph,
                   uint32_t threads, const std::string& phase,
                   uint32_t queries, double seconds,
                   const ServiceStatsSnapshot& after,
                   const ServiceStatsSnapshot& before,
                   const LatencyHistogram& latencies) {
  ServiceRow row;
  row.backend = backend;
  row.graph = graph;
  row.threads = threads;
  row.phase = phase;
  row.queries = queries;
  row.seconds = seconds;
  row.cache_hits = after.cache_hits - before.cache_hits;
  row.cache_misses = after.cache_misses - before.cache_misses;
  row.coalesced = after.coalesced - before.coalesced;
  row.computed = after.computed - before.computed;
  row.p50_ms = latencies.PercentileMs(0.50);
  row.p95_ms = latencies.PercentileMs(0.95);
  row.p99_ms = latencies.PercentileMs(0.99);
  row.hedged = after.hedged - before.hedged;
  row.hedge_wins = after.hedge_wins - before.hedge_wins;
  if (after.stage_tracing) {
    row.queue_ms = StageMeanMs(after.queue_wait, before.queue_wait);
    row.cache_ms = StageMeanMs(after.cache_lookup, before.cache_lookup);
    row.compute_ms = StageMeanMs(after.compute, before.compute);
    const uint64_t traced = after.latency_count - before.latency_count;
    if (traced > 0) {
      row.total_ms =
          static_cast<double>(after.traced_total_us - before.traced_total_us) /
          static_cast<double>(traced) / 1000.0;
    }
  }
  return row;
}

void WriteServiceJson(const std::string& path, const std::string& benchmark,
                      const std::string& dataset_label, uint32_t nodes,
                      uint64_t edges, const std::string& workload,
                      const std::vector<ServiceRow>& rows) {
  std::FILE* f = path.empty() ? stdout : std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"%s\",\n", benchmark.c_str());
  std::fprintf(f,
               "  \"dataset\": \"%s\",\n  \"nodes\": %u,\n  \"edges\": %llu,\n",
               dataset_label.c_str(), nodes,
               static_cast<unsigned long long>(edges));
  std::fprintf(f, "  \"workload\": \"%s\",\n  \"rows\": [\n", workload.c_str());
  for (size_t i = 0; i < rows.size(); ++i) {
    const ServiceRow& r = rows[i];
    std::fprintf(
        f,
        "    {\"backend\": \"%s\", \"graph\": \"%s\", \"threads\": %u, "
        "\"phase\": \"%s\", \"queries\": %u, "
        "\"seconds\": %.6f, \"qps\": %.1f, \"cache_hits\": %llu, "
        "\"cache_misses\": %llu, \"coalesced\": %llu, \"computed\": %llu, "
        "\"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f, "
        "\"hedged\": %llu, \"hedge_wins\": %llu, "
        "\"compute_p95_ms\": %.4f, \"compute_p99_ms\": %.4f, "
        "\"queue_ms\": %.4f, \"cache_ms\": %.4f, \"compute_ms\": %.4f, "
        "\"total_ms\": %.4f}%s\n",
        r.backend.c_str(), r.graph.c_str(), r.threads, r.phase.c_str(),
        r.queries, r.seconds, r.qps(),
        static_cast<unsigned long long>(r.cache_hits),
        static_cast<unsigned long long>(r.cache_misses),
        static_cast<unsigned long long>(r.coalesced),
        static_cast<unsigned long long>(r.computed), r.p50_ms, r.p95_ms,
        r.p99_ms, static_cast<unsigned long long>(r.hedged),
        static_cast<unsigned long long>(r.hedge_wins), r.compute_p95_ms,
        r.compute_p99_ms, r.queue_ms, r.cache_ms, r.compute_ms, r.total_ms,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  if (f != stdout) std::fclose(f);
}

/// Trains a LearnedRouter offline for one graph: a pinned pass per
/// candidate backend over a slice of the workload (cache disabled so
/// every query computes and logs), with the drained routing events fed
/// straight into the cost model — the bench-side equivalent of the
/// MultiGraphService trainer having watched live traffic from every
/// backend. Exploration is off: the measurement arms should show the
/// model's argmin choice, not epsilon noise.
std::shared_ptr<LearnedRouter> TrainRouterOffline(
    const Graph& graph, const ApproxParams& params, uint64_t rng_seed,
    const std::vector<NodeId>& seeds, uint32_t priming_queries) {
  LearnedRouterOptions router_options;
  router_options.explore_epsilon = 0.0;
  auto router = std::make_shared<LearnedRouter>(router_options);
  const size_t take =
      std::min<size_t>(seeds.size(), priming_queries);
  for (const std::string& backend : router->options().candidates) {
    ServiceOptions opts;
    opts.backend.name = backend;
    opts.backend.context.tea_plus.c = 1.0;
    opts.backend.context.walk_kernel = g_walk_kernel;
    opts.cache_capacity = 0;
    opts.max_queue_depth = 1u << 20;
    opts.num_workers = 2;
    AsyncQueryService service(graph, params, rng_seed, opts);
    for (size_t i = 0; i < take; ++i) {
      const QueryResult result = service.Submit(seeds[i]).result.get();
      if (result.status != QueryStatus::kOk) {
        std::fprintf(stderr, "priming query failed on %s\n", backend.c_str());
        std::abort();
      }
    }
    const std::vector<RoutingEvent> events = service.DrainRoutingEvents();
    router->Observe(events);
  }
  if (!router->trained()) {
    std::fprintf(stderr,
                 "learned router undertrained after priming (%u queries per "
                 "backend) — learned rows will show the rule fallback\n",
                 static_cast<uint32_t>(take));
  }
  return router;
}

/// The --hedge comparison: the same mixed-degree Zipfian workload served
/// twice by the pre-trained learned router with the cache disabled (tail
/// latency of *computes*, not hits) — once plain, once with hedged
/// requests armed — appended as phase "unhedged" / "hedged" rows. Hedge
/// computes intentionally exceed the query count, which is why these rows
/// live outside the default smoke sweep CI asserts completeness on.
void RunHedgeSweep(const BenchConfig& config, uint32_t num_queries, bool smoke,
                   std::vector<ServiceRow>& rows) {
  Dataset dataset = MakeDataset("twitter", config.scale, config.rng_seed);
  ApproxParams params;
  params.t = 5.0;
  params.eps_r = 0.5;
  params.delta = 20.0 * DefaultDelta(dataset.graph);
  params.p_f = 1e-6;
  // A distinct stream from the sweep's so the two sections don't share
  // cache-warming history through the rng. Twice the sweep's query count:
  // tail percentiles over log2 histogram buckets need the samples.
  const uint32_t queries = 2 * num_queries;
  Rng rng(config.rng_seed + 1);
  const std::vector<NodeId> seeds =
      MixedDegreeZipfianSeeds(dataset.graph, queries, 256, 1.0, rng);
  std::shared_ptr<LearnedRouter> router = TrainRouterOffline(
      dataset.graph, params, config.rng_seed, seeds, smoke ? 100u : 300u);

  // One closed-loop client, two workers: the client's next query waits on
  // the previous one, so a rescued tail shows up directly in both the
  // percentiles and the throughput, and the spare worker is the capacity
  // the hedge runs on (the deployment shape hedging assumes).
  const uint32_t clients = 1;
  std::printf("== Hedged vs unhedged tail latency (learned router, "
              "cache off) ==\n");
  TablePrinter table({"phase", "threads", "q/s", "p50 ms", "p99 ms",
                      "cmp p95 ms", "cmp p99 ms", "hedged", "wins"});
  for (const bool hedged : {false, true}) {
    ServiceOptions opts;
    opts.backend.name = std::string(kAutoBackend);
    opts.backend.context.tea_plus.c = 1.0;
    opts.backend.context.walk_kernel = g_walk_kernel;
    opts.cache_capacity = 0;
    opts.max_queue_depth = 1u << 20;
    opts.num_workers = 2;
    opts.router = router;
    opts.hedge.enabled = hedged;
    // Floor the trigger at 1ms: only the genuine tail hedges, so the
    // backup computes cost a percent or two of throughput instead of
    // racing every moderately slow query for the same cores.
    opts.hedge.min_trigger_us = 1000;
    // Room for every event of the pass: the compute percentiles below
    // want the full distribution, not the ring's last 1024.
    opts.telemetry.routing_log_capacity = 8192;
    AsyncQueryService service(dataset.graph, params, config.rng_seed, opts);

    // A short unmeasured warmup so the first arm doesn't pay allocator /
    // page-cache warming the second arm inherits for free.
    const std::vector<NodeId> warmup(seeds.begin(),
                                     seeds.begin() + seeds.size() / 8);
    LatencyHistogram scratch;
    RunClosedLoop(service, warmup, clients, scratch);
    (void)service.DrainRoutingEvents();
    const ServiceStatsSnapshot before = service.Stats();
    LatencyHistogram latencies;
    const double seconds = RunClosedLoop(service, seeds, clients, latencies);
    const ServiceStatsSnapshot after = service.Stats();
    ServiceRow row = MakeRow("learned", dataset.name, clients,
                             hedged ? "hedged" : "unhedged", queries, seconds,
                             after, before, latencies);
    // Exact compute percentiles from the pass's routing events: one event
    // per completed query, stamped with the *winning* side's compute span.
    std::vector<RoutingEvent> events = service.DrainRoutingEvents();
    std::vector<uint64_t> compute_us;
    compute_us.reserve(events.size());
    for (const RoutingEvent& event : events) {
      compute_us.push_back(event.compute_end_us - event.compute_begin_us);
    }
    std::sort(compute_us.begin(), compute_us.end());
    const auto pct = [&](double q) -> double {
      if (compute_us.empty()) return 0.0;
      const size_t idx = std::min(
          compute_us.size() - 1,
          static_cast<size_t>(q * static_cast<double>(compute_us.size())));
      return static_cast<double>(compute_us[idx]) / 1000.0;
    };
    row.compute_p95_ms = pct(0.95);
    row.compute_p99_ms = pct(0.99);
    rows.push_back(row);
    table.AddRow({row.phase, std::to_string(clients), FmtF(row.qps(), 0),
                  FmtF(row.p50_ms, 2), FmtF(row.p99_ms, 2),
                  FmtF(row.compute_p95_ms, 2), FmtF(row.compute_p99_ms, 2),
                  std::to_string(row.hedged), std::to_string(row.hedge_wins)});
  }
  table.Print();
}

/// The multi-graph sweep: N datasets behind one MultiGraphService, the
/// worker budget split across their per-graph services, per-graph rows.
int RunMultiGraphSweep(const BenchConfig& config, const std::string& json_path,
                       const std::string& backend, uint32_t num_graphs,
                       uint32_t num_queries) {
  const std::vector<std::string>& all_names = DatasetNames();
  if (num_graphs > all_names.size()) {
    std::printf("clamping --graphs=%u to the %zu registry datasets\n",
                num_graphs, all_names.size());
    num_graphs = static_cast<uint32_t>(all_names.size());
  }
  Rng rng(config.rng_seed);

  GraphStore store;
  std::vector<std::string> names;
  std::string joined_names;
  uint32_t total_nodes = 0;
  uint64_t total_edges = 0;
  for (uint32_t i = 0; i < num_graphs; ++i) {
    Dataset dataset =
        MakeDataset(all_names[i], config.scale, config.rng_seed + i);
    total_nodes += dataset.graph.NumNodes();
    total_edges += dataset.graph.NumEdges();
    names.push_back(dataset.name);
    if (!joined_names.empty()) joined_names += ",";
    joined_names += dataset.name;
    store.Publish(dataset.name, std::move(dataset.graph));
  }
  std::printf("serving %u graphs (%s), %u nodes / %llu edges total\n",
              num_graphs, joined_names.c_str(), total_nodes,
              static_cast<unsigned long long>(total_edges));

  // One parameter set for every graph, scaled to the first (see the
  // single-graph sweep for the serving-grade accuracy rationale).
  ApproxParams params;
  params.t = 5.0;
  params.eps_r = 0.5;
  params.delta = 20.0 * DefaultDelta(*store.Get(names.front()).graph);
  params.p_f = 1e-6;

  // Interleave per-graph Zipfian streams round-robin: every graph gets
  // num_queries / N queries, and each client's contiguous share mixes
  // graphs — the sharding path is exercised on every submission.
  const uint32_t per_graph = std::max(1u, num_queries / num_graphs);
  std::vector<std::vector<NodeId>> streams;
  for (const std::string& name : names) {
    streams.push_back(
        ZipfianSeeds(*store.Get(name).graph, per_graph, 256, 1.0, rng));
  }
  std::vector<std::pair<std::string, NodeId>> items;
  items.reserve(static_cast<size_t>(per_graph) * num_graphs);
  for (uint32_t q = 0; q < per_graph; ++q) {
    for (uint32_t g = 0; g < num_graphs; ++g) {
      items.emplace_back(names[g], streams[g][q]);
    }
  }

  const std::vector<uint32_t> thread_counts = {1, 4, 8};
  std::vector<ServiceRow> rows;
  TablePrinter table({"graph", "threads", "cold q/s", "warm q/s", "warm gain",
                      "warm hit%", "p50 ms", "p99 ms"});
  for (uint32_t threads : thread_counts) {
    MultiGraphOptions options;
    options.worker_budget = threads;
    options.service.backend.name = backend;
    options.service.backend.context.tea_plus.c = 1.0;
    options.service.backend.context.walk_kernel = g_walk_kernel;
    options.service.cache_capacity = 8192;
    options.service.max_queue_depth = 1u << 20;
    MultiGraphService service(store, params, config.rng_seed, options);
    // Pre-build every per-graph service so the cold pass measures query
    // cost, not one-time estimator/worker construction (the single-graph
    // sweep likewise constructs its service before the timer).
    for (const std::string& name : names) service.ServiceFor(name);

    std::map<std::string, ServiceStatsSnapshot> at_start;
    std::map<std::string, std::unique_ptr<LatencyHistogram>> cold_lat,
        warm_lat;
    for (const std::string& name : names) {
      at_start[name] = service.StatsFor(name);
      cold_lat[name] = std::make_unique<LatencyHistogram>();
      warm_lat[name] = std::make_unique<LatencyHistogram>();
    }
    const double cold_s = RunMultiClosedLoop(service, items, threads, cold_lat);
    std::map<std::string, ServiceStatsSnapshot> after_cold;
    for (const std::string& name : names) {
      after_cold[name] = service.StatsFor(name);
    }
    const double warm_s = RunMultiClosedLoop(service, items, threads, warm_lat);
    for (const std::string& name : names) {
      const ServiceStatsSnapshot after_warm = service.StatsFor(name);
      rows.push_back(MakeRow(backend, name, threads, "cold", per_graph, cold_s,
                             after_cold[name], at_start[name],
                             *cold_lat[name]));
      rows.push_back(MakeRow(backend, name, threads, "warm", per_graph, warm_s,
                             after_warm, after_cold[name], *warm_lat[name]));
      const ServiceRow& warm = rows.back();
      const double hit_rate =
          100.0 * static_cast<double>(warm.cache_hits + warm.coalesced) /
          static_cast<double>(per_graph);
      table.AddRow({name, std::to_string(threads), FmtF(per_graph / cold_s, 0),
                    FmtF(per_graph / warm_s, 0),
                    FmtF(cold_s / (warm_s + 1e-12), 1) + "x",
                    FmtF(hit_rate, 1), FmtF(warm.p50_ms, 2),
                    FmtF(warm.p99_ms, 2)});
    }
  }
  table.Print();
  WriteServiceJson(json_path, "multi_graph_service_throughput",
                   "multi(" + std::to_string(num_graphs) + " registry graphs)",
                   total_nodes, total_edges,
                   "zipfian s=1.0, round-robin across graphs", rows);
  return 0;
}

/// Trace-overhead guard: alternating traced/untraced reps of the smoke
/// workload (cold pass on a fresh service + warm replay, closed loop), and
/// the median QPS of each arm compared. Exits non-zero when tracing costs
/// >= 2% QPS — the regression gate for keeping the telemetry hot path
/// wait-free and cheap.
int RunTraceOverheadGuard(const BenchConfig& config, uint32_t num_queries) {
  Rng rng(config.rng_seed);
  Dataset dataset = MakeDataset("twitter", config.scale, config.rng_seed);
  PrintDatasetBanner(dataset);

  ApproxParams params;
  params.t = 5.0;
  params.eps_r = 0.5;
  params.delta = 20.0 * DefaultDelta(dataset.graph);
  params.p_f = 1e-6;
  const uint32_t threads = 2;
  const std::vector<NodeId> seeds =
      MixedDegreeZipfianSeeds(dataset.graph, num_queries, 256, 1.0, rng);

  // Alternate arms (traced first) so machine drift hits both equally; the
  // median of 5 reps per arm shrugs off stragglers.
  constexpr int kReps = 5;
  std::vector<double> traced_qps, untraced_qps;
  for (int rep = 0; rep < 2 * kReps; ++rep) {
    const bool traced = rep % 2 == 0;
    ServiceOptions opts;
    opts.backend.name = "tea+";
    opts.backend.context.tea_plus.c = 1.0;
    opts.backend.context.walk_kernel = g_walk_kernel;
    opts.cache_capacity = 8192;
    opts.max_queue_depth = 1u << 20;
    opts.num_workers = threads;
    opts.telemetry.enabled = traced;
    AsyncQueryService service(dataset.graph, params, config.rng_seed, opts);

    LatencyHistogram cold_lat, warm_lat;
    WallTimer timer;
    RunClosedLoop(service, seeds, threads, cold_lat);
    RunClosedLoop(service, seeds, threads, warm_lat);
    const double seconds = timer.ElapsedSeconds();
    const double qps = 2.0 * num_queries / (seconds + 1e-12);
    (traced ? traced_qps : untraced_qps).push_back(qps);
  }
  auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  const double on = median(traced_qps);
  const double off = median(untraced_qps);
  const double overhead = (off - on) / (off + 1e-12);
  std::printf(
      "trace overhead guard: traced=%.0f q/s untraced=%.0f q/s "
      "overhead=%.2f%% (threshold 2%%)\n",
      on, off, 100.0 * overhead);
  if (overhead >= 0.02) {
    std::fprintf(stderr,
                 "FAIL: tracing costs %.2f%% QPS (>= 2%% threshold)\n",
                 100.0 * overhead);
    return 1;
  }
  std::printf("trace overhead guard: PASS\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchConfig config = BenchConfig::FromArgs(argc, argv);
  std::string json_path;
  std::string backend_flag;
  std::string graph_scale;
  uint32_t num_graphs = 0;
  bool smoke = false;
  bool trace_overhead = false;
  bool hedge = false;
  uint32_t num_queries = config.full ? 4000 : 1500;
  bool queries_overridden = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
    if (std::strncmp(argv[i], "--queries=", 10) == 0) {
      num_queries = static_cast<uint32_t>(std::atoi(argv[i] + 10));
      queries_overridden = true;
    }
    if (std::strncmp(argv[i], "--backend=", 10) == 0) {
      backend_flag = argv[i] + 10;
    }
    if (std::strncmp(argv[i], "--graphs=", 9) == 0) {
      num_graphs = static_cast<uint32_t>(std::atoi(argv[i] + 9));
    }
    if (std::strncmp(argv[i], "--graph-scale=", 14) == 0) {
      graph_scale = argv[i] + 14;
    }
    if (std::strncmp(argv[i], "--walk-kernel=", 14) == 0) {
      if (!ParseWalkKernelType(argv[i] + 14, &g_walk_kernel.type)) {
        std::fprintf(stderr,
                     "--walk-kernel expects scalar|interleaved, got \"%s\"\n",
                     argv[i] + 14);
        return 1;
      }
    }
    if (std::strncmp(argv[i], "--walk-width=", 13) == 0) {
      const int width = std::atoi(argv[i] + 13);
      if (width < 1 || width > static_cast<int>(kMaxWalkKernelWidth)) {
        std::fprintf(stderr, "--walk-width must be in [1, %u], got \"%s\"\n",
                     kMaxWalkKernelWidth, argv[i] + 13);
        return 1;
      }
      g_walk_kernel.width = static_cast<uint32_t>(width);
    }
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--trace-overhead") == 0) trace_overhead = true;
    if (std::strcmp(argv[i], "--hedge") == 0) hedge = true;
  }
  if (smoke && !queries_overridden) num_queries = 200;

  if (trace_overhead) {
    std::printf("== Trace overhead guard (traced vs untraced service) ==\n");
    return RunTraceOverheadGuard(config, num_queries);
  }

  // Default sweep: the rule router and the pre-trained learned router
  // against every fixed backend of the paper's central comparison,
  // through the serving path.
  std::vector<std::string> backends = {"auto", "learned", "tea+", "hk-relax",
                                       "monte-carlo"};
  if (!backend_flag.empty()) backends = {backend_flag};
  for (const std::string& name : backends) {
    if (name != kAutoBackend && name != "learned" &&
        !EstimatorRegistry::Global().Contains(name)) {
      std::fprintf(stderr,
                   "unknown backend \"%s\" (available: auto, learned, %s)\n",
                   name.c_str(),
                   EstimatorRegistry::Global().JoinedNames(", ").c_str());
      return 1;
    }
  }

  std::printf("== Async service throughput (cache-fronted serving) ==\n");
  std::printf("hardware threads available: %u\n",
              std::thread::hardware_concurrency());

  if (num_graphs >= 1) {
    // Any --graphs=N (including 1) selects the multi-graph sweep, and it
    // runs one backend — a sweep across backends x graphs x threads would
    // conflate the two axes.
    return RunMultiGraphSweep(config, json_path,
                              backend_flag.empty() ? "tea+" : backend_flag,
                              num_graphs, num_queries);
  }

  Rng rng(config.rng_seed);
  std::vector<Dataset> datasets;
  datasets.push_back(MakeDataset("twitter", config.scale, config.rng_seed));
  if (!graph_scale.empty()) {
    datasets.push_back(MakeScaledGraph(graph_scale, config.rng_seed));
  }

  const std::vector<uint32_t> thread_counts =
      smoke ? std::vector<uint32_t>{2} : std::vector<uint32_t>{1, 4, 8};
  std::vector<ServiceRow> rows;
  std::string dataset_label;
  uint32_t total_nodes = 0;
  uint64_t total_edges = 0;
  for (const Dataset& dataset : datasets) {
    PrintDatasetBanner(dataset);
    if (!dataset_label.empty()) dataset_label += ",";
    dataset_label += dataset.name;
    total_nodes += dataset.graph.NumNodes();
    total_edges += dataset.graph.NumEdges();
    // Scaling presets get proportionally fewer queries (per-query cost
    // grows with the graph); each row records its own query count.
    const uint32_t queries = &dataset == &datasets.front()
                                 ? num_queries
                                 : std::max(100u, num_queries / 5);

    // Serving-grade accuracy (coarse delta as in bench_parallel's serving
    // section), walk phase forced so every computed query does real work.
    ApproxParams params;
    params.t = 5.0;
    params.eps_r = 0.5;
    params.delta = 20.0 * DefaultDelta(dataset.graph);
    params.p_f = 1e-6;
    ServiceOptions options;
    options.backend.context.tea_plus.c = 1.0;
    options.backend.context.walk_kernel = g_walk_kernel;
    options.cache_capacity = 8192;
    options.max_queue_depth = 1u << 20;  // closed loop: no admission pressure

    // One mixed-degree Zipfian workload shared by every backend and thread
    // count, so rows are comparable: 256 distinct hot seeds (half of them
    // the graph's top hubs, half tail nodes) keeps cold passes
    // compute-bound AND spans the degree classes the router discriminates
    // on — on a uniform hot set "auto" would collapse to one backend.
    const std::vector<NodeId> seeds =
        MixedDegreeZipfianSeeds(dataset.graph, queries, 256, 1.0, rng);

    // The "learned" arm serves through a cold-start LearnedRouter: with
    // no observations it falls back per-decision to the rule policy, so
    // its rows are the guarantee that installing the learned router on a
    // fresh service never regresses QPS vs "auto" (the cold-start-safety
    // acceptance comparison). The *trained* model is measured in the
    // --hedge section, where it serves a cache-off compute workload.
    std::shared_ptr<LearnedRouter> learned;
    if (std::find(backends.begin(), backends.end(), "learned") !=
        backends.end()) {
      LearnedRouterOptions router_options;
      router_options.explore_epsilon = 0.0;
      learned = std::make_shared<LearnedRouter>(router_options);
    }

    TablePrinter table({"backend", "threads", "cold q/s", "warm q/s",
                        "warm gain", "warm hit%", "p50 ms", "p99 ms"});
    for (const std::string& backend : backends) {
      for (uint32_t threads : thread_counts) {
        ServiceOptions opts = options;
        opts.backend.name =
            backend == "learned" ? std::string(kAutoBackend) : backend;
        if (backend == "learned") opts.router = learned;
        opts.num_workers = threads;
        AsyncQueryService service(dataset.graph, params, config.rng_seed,
                                  opts);

        const ServiceStatsSnapshot at_start = service.Stats();
        LatencyHistogram cold_latencies;
        const double cold_s =
            RunClosedLoop(service, seeds, threads, cold_latencies);
        const ServiceStatsSnapshot after_cold = service.Stats();
        LatencyHistogram warm_latencies;
        const double warm_s =
            RunClosedLoop(service, seeds, threads, warm_latencies);
        const ServiceStatsSnapshot after_warm = service.Stats();

        rows.push_back(MakeRow(backend, dataset.name, threads, "cold",
                               queries, cold_s, after_cold, at_start,
                               cold_latencies));
        rows.push_back(MakeRow(backend, dataset.name, threads, "warm",
                               queries, warm_s, after_warm, after_cold,
                               warm_latencies));
        const ServiceRow& warm = rows.back();
        const double hit_rate =
            100.0 * static_cast<double>(warm.cache_hits + warm.coalesced) /
            static_cast<double>(queries);
        table.AddRow({backend, std::to_string(threads),
                      FmtF(queries / cold_s, 0), FmtF(queries / warm_s, 0),
                      FmtF(cold_s / (warm_s + 1e-12), 1) + "x",
                      FmtF(hit_rate, 1), FmtF(warm.p50_ms, 2),
                      FmtF(warm.p99_ms, 2)});
      }
    }
    table.Print();
  }
  if (hedge) RunHedgeSweep(config, num_queries, smoke, rows);
  WriteServiceJson(json_path, "async_service_throughput", dataset_label,
                   total_nodes, total_edges,
                   "mixed-degree zipfian s=1.0 (hub/tail hot set)", rows);
  return 0;
}
