// Parallel scalability of the walk phases (extension; cf. Shun et al.
// VLDB'16 referenced in Section 6 as future work for TEA/TEA+), plus the
// serving-style repeated-query throughput of the persistent query engine.
//
// Expected shape: near-linear speedup of Monte-Carlo with thread count
// (walks dominate); TEA+ speedup limited by its sequential push phase
// (Amdahl), most visible in walk-heavy configurations (small c). For the
// repeated-query section, the pool avoids per-query thread spawns and the
// reused workspaces avoid per-query allocation, so pooled throughput should
// beat spawn-per-call by a margin that grows with the thread count.
//
// Extra flags: --json=PATH writes the repeated-query results as JSON (for
// BENCH_*.json trajectories); --graph-scale=NAME (small/medium/large, see
// bench_common.h) adds an R-MAT scaling preset to the repeated-query
// sweep, so the JSON carries large-graph rows next to the historical
// small-graph ones. The clustering speedup sections stay on the primary
// dataset — at fine delta they would take hours on the large presets.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "hkpr/monte_carlo.h"
#include "hkpr/queries.h"
#include "hkpr/tea_plus.h"
#include "hkpr/workspace.h"
#include "parallel/parallel_for.h"
#include "parallel/parallel_monte_carlo.h"
#include "parallel/parallel_tea_plus.h"
#include "parallel/thread_pool.h"

using namespace hkpr;
using namespace hkpr::bench;

namespace {

/// One row of the repeated-query throughput comparison.
struct ThroughputRow {
  std::string graph;
  std::string mode;  // "spawn", "pool", "batch"
  uint32_t threads;
  uint32_t queries;
  double seconds;
  double qps() const { return queries / (seconds + 1e-12); }
};

/// Runs `num_queries` single-seed TEA+ queries, cycling through `seeds`.
template <typename QueryFn>
double TimeQueries(uint32_t num_queries, const std::vector<NodeId>& seeds,
                   QueryFn&& query) {
  WallTimer timer;
  for (uint32_t i = 0; i < num_queries; ++i) {
    query(seeds[i % seeds.size()]);
  }
  return timer.ElapsedSeconds();
}

void WriteThroughputJson(const std::string& path,
                         const std::vector<Dataset>& datasets,
                         uint32_t num_queries,
                         const std::vector<ThroughputRow>& rows) {
  std::FILE* f = path.empty() ? stdout : std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"repeated_query_throughput\",\n");
  std::fprintf(f, "  \"graphs\": [\n");
  for (size_t i = 0; i < datasets.size(); ++i) {
    std::fprintf(f, "    {\"name\": \"%s\", \"nodes\": %u, \"edges\": %llu}%s\n",
                 datasets[i].name.c_str(), datasets[i].graph.NumNodes(),
                 static_cast<unsigned long long>(datasets[i].graph.NumEdges()),
                 i + 1 < datasets.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"queries\": %u,\n  \"rows\": [\n", num_queries);
  for (size_t i = 0; i < rows.size(); ++i) {
    const ThroughputRow& r = rows[i];
    std::fprintf(f,
                 "    {\"graph\": \"%s\", \"mode\": \"%s\", \"threads\": %u, "
                 "\"queries\": %u, \"seconds\": %.6f, \"qps\": %.1f}%s\n",
                 r.graph.c_str(), r.mode.c_str(), r.threads, r.queries,
                 r.seconds, r.qps(), i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  if (f != stdout) std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchConfig config = BenchConfig::FromArgs(argc, argv);
  std::string json_path;
  std::string graph_scale;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
    if (std::strncmp(argv[i], "--graph-scale=", 14) == 0) {
      graph_scale = argv[i] + 14;
    }
  }
  std::printf("== Parallel scalability (extension) ==\n");
  std::printf("hardware threads available: %u\n", HardwareThreads());

  Dataset dataset = MakeDataset("twitter", config.scale, config.rng_seed);
  PrintDatasetBanner(dataset);
  Rng rng(config.rng_seed);
  const std::vector<NodeId> seeds =
      UniformSeeds(dataset.graph, config.num_seeds, rng);

  ApproxParams params;
  params.t = 5.0;
  params.eps_r = 0.5;
  params.delta = 0.2 * DefaultDelta(dataset.graph);
  params.p_f = 1e-6;

  const std::vector<uint32_t> thread_counts = {1, 2, 4, 8};

  std::printf("\n-- Monte-Carlo --\n");
  {
    MonteCarloEstimator sequential(dataset.graph, params, config.rng_seed);
    const Aggregate base = RunLocalClustering(dataset.graph, sequential, seeds);
    TablePrinter table({"threads", "time", "speedup", "conductance"});
    table.AddRow({"seq", FmtMs(base.avg_ms), "1.0x",
                  FmtF(base.avg_conductance)});
    for (uint32_t threads : thread_counts) {
      ParallelMonteCarloEstimator est(dataset.graph, params, config.rng_seed,
                                      threads);
      const Aggregate agg = RunLocalClustering(dataset.graph, est, seeds);
      table.AddRow({std::to_string(threads), FmtMs(agg.avg_ms),
                    FmtF(base.avg_ms / (agg.avg_ms + 1e-9), 1) + "x",
                    FmtF(agg.avg_conductance)});
    }
    table.Print();
  }

  std::printf("\n-- TEA+ (walk-heavy configuration, c=1) --\n");
  {
    TeaPlusOptions options;
    options.c = 1.0;
    TeaPlusEstimator sequential(dataset.graph, params, config.rng_seed,
                                options);
    const Aggregate base = RunLocalClustering(dataset.graph, sequential, seeds);
    TablePrinter table({"threads", "time", "speedup", "conductance"});
    table.AddRow({"seq", FmtMs(base.avg_ms), "1.0x",
                  FmtF(base.avg_conductance)});
    for (uint32_t threads : thread_counts) {
      ParallelTeaPlusEstimator est(dataset.graph, params, config.rng_seed,
                                   threads, options);
      const Aggregate agg = RunLocalClustering(dataset.graph, est, seeds);
      table.AddRow({std::to_string(threads), FmtMs(agg.avg_ms),
                    FmtF(base.avg_ms / (agg.avg_ms + 1e-9), 1) + "x",
                    FmtF(agg.avg_conductance)});
    }
    table.Print();
  }

  // -- Repeated-query throughput: persistent engine vs spawn-per-call ------
  //
  // The serving scenario: many coarse (delta ~ 20/n) TEA+ queries in a row,
  // walk phase forced (c=1) so every query exercises the parallel section.
  // "spawn" recreates threads and scratch per query (the legacy path),
  // "pool" answers the same queries on parked workers with one reused
  // workspace, "batch" pushes whole seed batches through BatchQueryEngine
  // (queries sharded across threads, per-thread workspaces).
  std::printf("\n-- Repeated-query throughput (TEA+, walk-heavy, c=1) --\n");
  {
    const uint32_t num_queries = config.full ? 2000 : 1000;
    std::vector<Dataset> serve_datasets;
    serve_datasets.push_back(dataset);  // Graph copies share the payload
    if (!graph_scale.empty()) {
      serve_datasets.push_back(MakeScaledGraph(graph_scale, config.rng_seed));
    }

    std::vector<ThroughputRow> results;
    for (const Dataset& serve_dataset : serve_datasets) {
      PrintDatasetBanner(serve_dataset);
      // Scaling presets get proportionally fewer queries: per-query cost
      // grows with the graph, and each row records its own query count.
      const uint32_t queries = &serve_dataset == &serve_datasets.front()
                                   ? num_queries
                                   : std::max(100u, num_queries / 5);
      ApproxParams serve_params;
      serve_params.t = 5.0;
      serve_params.eps_r = 0.5;
      serve_params.delta = 100.0 * DefaultDelta(serve_dataset.graph);
      serve_params.p_f = 1e-6;
      TeaPlusOptions serve_options;
      serve_options.c = 1.0;
      std::vector<NodeId> serve_seeds =
          UniformSeeds(serve_dataset.graph, 1000, rng);

      TablePrinter table(
          {"threads", "spawn q/s", "pool q/s", "batch q/s", "pool gain"});
      for (uint32_t threads : thread_counts) {
        ParallelTeaPlusEstimator spawning(serve_dataset.graph, serve_params,
                                          config.rng_seed, threads,
                                          serve_options);
        const double spawn_s = TimeQueries(
            queries, serve_seeds, [&](NodeId s) { spawning.Estimate(s); });

        ThreadPool pool(threads);
        ParallelTeaPlusEstimator pooled(serve_dataset.graph, serve_params,
                                        config.rng_seed, threads,
                                        serve_options, &pool);
        QueryWorkspace ws;
        const double pool_s =
            TimeQueries(queries, serve_seeds,
                        [&](NodeId s) { pooled.EstimateInto(s, ws); });

        BatchQueryEngine engine(serve_dataset.graph, serve_params,
                                config.rng_seed, threads, serve_options);
        WallTimer batch_timer;
        for (uint32_t done = 0; done < queries;) {
          const uint32_t take = std::min<uint32_t>(
              queries - done, static_cast<uint32_t>(serve_seeds.size()));
          engine.EstimateBatch(
              std::span<const NodeId>(serve_seeds.data(), take));
          done += take;
        }
        const double batch_s = batch_timer.ElapsedSeconds();

        results.push_back({serve_dataset.name, "spawn", threads, queries,
                           spawn_s});
        results.push_back({serve_dataset.name, "pool", threads, queries,
                           pool_s});
        results.push_back({serve_dataset.name, "batch", threads, queries,
                           batch_s});
        table.AddRow({std::to_string(threads), FmtF(queries / spawn_s, 0),
                      FmtF(queries / pool_s, 0), FmtF(queries / batch_s, 0),
                      FmtF(spawn_s / (pool_s + 1e-12), 2) + "x"});
      }
      table.Print();
    }
    WriteThroughputJson(json_path, serve_datasets, num_queries, results);
  }
  return 0;
}
