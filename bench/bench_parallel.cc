// Parallel scalability of the walk phases (extension; cf. Shun et al.
// VLDB'16 referenced in Section 6 as future work for TEA/TEA+).
//
// Expected shape: near-linear speedup of Monte-Carlo with thread count
// (walks dominate); TEA+ speedup limited by its sequential push phase
// (Amdahl), most visible in walk-heavy configurations (small c).

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "hkpr/monte_carlo.h"
#include "hkpr/tea_plus.h"
#include "parallel/parallel_for.h"
#include "parallel/parallel_monte_carlo.h"
#include "parallel/parallel_tea_plus.h"

using namespace hkpr;
using namespace hkpr::bench;

int main(int argc, char** argv) {
  const BenchConfig config = BenchConfig::FromArgs(argc, argv);
  std::printf("== Parallel scalability (extension) ==\n");
  std::printf("hardware threads available: %u\n", HardwareThreads());

  Dataset dataset = MakeDataset("twitter", config.scale, config.rng_seed);
  PrintDatasetBanner(dataset);
  Rng rng(config.rng_seed);
  const std::vector<NodeId> seeds =
      UniformSeeds(dataset.graph, config.num_seeds, rng);

  ApproxParams params;
  params.t = 5.0;
  params.eps_r = 0.5;
  params.delta = 0.2 * DefaultDelta(dataset.graph);
  params.p_f = 1e-6;

  const std::vector<uint32_t> thread_counts = {1, 2, 4, 8};

  std::printf("\n-- Monte-Carlo --\n");
  {
    MonteCarloEstimator sequential(dataset.graph, params, config.rng_seed);
    const Aggregate base = RunLocalClustering(dataset.graph, sequential, seeds);
    TablePrinter table({"threads", "time", "speedup", "conductance"});
    table.AddRow({"seq", FmtMs(base.avg_ms), "1.0x",
                  FmtF(base.avg_conductance)});
    for (uint32_t threads : thread_counts) {
      ParallelMonteCarloEstimator est(dataset.graph, params, config.rng_seed,
                                      threads);
      const Aggregate agg = RunLocalClustering(dataset.graph, est, seeds);
      table.AddRow({std::to_string(threads), FmtMs(agg.avg_ms),
                    FmtF(base.avg_ms / (agg.avg_ms + 1e-9), 1) + "x",
                    FmtF(agg.avg_conductance)});
    }
    table.Print();
  }

  std::printf("\n-- TEA+ (walk-heavy configuration, c=1) --\n");
  {
    TeaPlusOptions options;
    options.c = 1.0;
    TeaPlusEstimator sequential(dataset.graph, params, config.rng_seed,
                                options);
    const Aggregate base = RunLocalClustering(dataset.graph, sequential, seeds);
    TablePrinter table({"threads", "time", "speedup", "conductance"});
    table.AddRow({"seq", FmtMs(base.avg_ms), "1.0x",
                  FmtF(base.avg_conductance)});
    for (uint32_t threads : thread_counts) {
      ParallelTeaPlusEstimator est(dataset.graph, params, config.rng_seed,
                                   threads, options);
      const Aggregate agg = RunLocalClustering(dataset.graph, est, seeds);
      table.AddRow({std::to_string(threads), FmtMs(agg.avg_ms),
                    FmtF(base.avg_ms / (agg.avg_ms + 1e-9), 1) + "x",
                    FmtF(agg.avg_conductance)});
    }
    table.Print();
  }
  return 0;
}
