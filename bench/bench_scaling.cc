// Table 1 (empirical): complexity scaling checks.
//
// Validates the bounds of Table 1 empirically on one dataset:
//   * TEA/TEA+ work scales linearly in 1/delta (the 1/(eps_r^2 delta) term),
//   * TEA/TEA+ work scales linearly in t (no e^t term),
//   * HK-Relax work blows up super-linearly in t (the e^t term).

#include <cstdio>
#include <vector>

#include "baselines/hk_relax.h"
#include "bench_common.h"
#include "hkpr/tea.h"
#include "hkpr/tea_plus.h"

using namespace hkpr;
using namespace hkpr::bench;

int main(int argc, char** argv) {
  const BenchConfig config = BenchConfig::FromArgs(argc, argv);
  std::printf("== Table 1 (empirical): complexity scaling ==\n");

  Dataset dataset = MakeDataset("plc", config.scale, config.rng_seed);
  PrintDatasetBanner(dataset);
  Rng rng(config.rng_seed);
  const std::vector<NodeId> seeds =
      UniformSeeds(dataset.graph, config.num_seeds, rng);
  const double inv_n = 1.0 / static_cast<double>(dataset.graph.NumNodes());

  std::printf("\n-- work vs 1/delta (t=5): expect ~linear growth --\n");
  {
    TablePrinter table({"delta", "TEA ops", "TEA+ ops", "TEA time",
                        "TEA+ time"});
    for (double mult : {20.0, 2.0, 0.2, 0.02}) {
      ApproxParams params;
      params.delta = mult * inv_n;
      params.p_f = 1e-6;
      TeaEstimator tea(dataset.graph, params, config.rng_seed + 1);
      TeaPlusEstimator plus(dataset.graph, params, config.rng_seed + 2);
      const Aggregate a = RunLocalClustering(dataset.graph, tea, seeds);
      const Aggregate b = RunLocalClustering(dataset.graph, plus, seeds);
      table.AddRow(
          {FmtSci(params.delta),
           FmtCount(static_cast<uint64_t>(a.avg_pushes + a.avg_walks)),
           FmtCount(static_cast<uint64_t>(b.avg_pushes + b.avg_walks)),
           FmtMs(a.avg_ms), FmtMs(b.avg_ms)});
    }
    table.Print();
  }

  std::printf("\n-- work vs t (delta=2/n): TEA/TEA+ ~linear, HK-Relax "
              "super-linear --\n");
  {
    TablePrinter table(
        {"t", "TEA+ ops", "TEA+ time", "HK-Relax ops", "HK-Relax time"});
    for (double t : {2.0, 5.0, 10.0, 20.0, 40.0}) {
      ApproxParams params;
      params.t = t;
      params.delta = 2.0 * inv_n;
      params.p_f = 1e-6;
      TeaPlusEstimator plus(dataset.graph, params, config.rng_seed + 3);
      HkRelaxOptions relax_options;
      relax_options.t = t;
      relax_options.eps_a = 1e-5;
      HkRelaxEstimator relax(dataset.graph, relax_options);
      const Aggregate a = RunLocalClustering(dataset.graph, plus, seeds);
      const Aggregate b = RunLocalClustering(dataset.graph, relax, seeds);
      table.AddRow(
          {FmtF(t, 0),
           FmtCount(static_cast<uint64_t>(a.avg_pushes + a.avg_walks)),
           FmtMs(a.avg_ms),
           FmtCount(static_cast<uint64_t>(b.avg_pushes)), FmtMs(b.avg_ms)});
    }
    table.Print();
  }
  return 0;
}
