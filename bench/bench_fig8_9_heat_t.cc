// Figures 8 and 9: effect of the heat constant t in {5, 10, 20, 40} on
// DBLP (Figure 8) and PLC (Figure 9).
//
// Expected shape: every algorithm slows down as t grows (cost is linear or
// worse in t); conductance falls with larger t; TEA+'s advantage over
// HK-Relax widens with t (HK-Relax carries the e^t factor).

#include <cstdio>

#include "bench_common.h"

using namespace hkpr;
using namespace hkpr::bench;

int main(int argc, char** argv) {
  const BenchConfig config = BenchConfig::FromArgs(argc, argv);
  std::printf("== Figures 8/9: effect of heat constant t ==\n");
  std::printf("p_f=1e-6, eps_r=0.5, %u seeds/dataset\n", config.num_seeds);

  const std::vector<std::string> datasets = {"dblp", "plc"};
  const std::vector<double> t_values = {5.0, 10.0, 20.0, 40.0};

  for (const std::string& name : datasets) {
    Dataset dataset = MakeDataset(name, config.scale, config.rng_seed);
    PrintDatasetBanner(dataset);
    Rng rng(config.rng_seed);
    const std::vector<NodeId> seeds =
        UniformSeeds(dataset.graph, config.num_seeds, rng);

    for (double t : t_values) {
      std::printf("\n-- t = %.0f --\n", t);
      SweepSpec spec;
      spec.t = t;
      spec.delta_over_n = {2.0, 0.2};
      spec.hk_relax_eps = {1e-4, 1e-5};
      spec.cluster_hkpr_eps = {0.1, 0.05};
      TablePrinter table(
          {"algorithm", "parameter", "conductance", "time"});
      for (const SweepPoint& point :
           RunAlgorithmSweep(dataset.graph, seeds, spec, config.rng_seed)) {
        table.AddRow({point.algorithm, point.param,
                      FmtF(point.agg.avg_conductance),
                      FmtMs(point.agg.avg_ms)});
      }
      table.Print();
    }
  }
  return 0;
}
