// Figure 2: TEA+ running time as a function of the hop-cap constant c.
//
// Paper protocol: eps_r = 0.5, delta = 1/n, c in {0.5, 1, ..., 5} on all
// eight datasets; the expected shape is a U-curve whose minimum sits around
// c ~= 2 for low-degree graphs and c ~= 2.5 for high-degree graphs.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "hkpr/tea_plus.h"

using namespace hkpr;
using namespace hkpr::bench;

int main(int argc, char** argv) {
  const BenchConfig config = BenchConfig::FromArgs(argc, argv);
  std::printf("== Figure 2: TEA+ running time vs c ==\n");
  std::printf("eps_r=0.5, delta=1/n, t=5, p_f=1e-6, %u seeds/dataset\n",
              config.num_seeds);

  const std::vector<double> c_values = {0.5, 1.0, 1.5, 2.0,
                                        2.5, 3.0, 4.0, 5.0};

  for (const std::string& name : DatasetNames()) {
    Dataset dataset = MakeDataset(name, config.scale, config.rng_seed);
    PrintDatasetBanner(dataset);
    Rng rng(config.rng_seed);
    const std::vector<NodeId> seeds =
        UniformSeeds(dataset.graph, config.num_seeds, rng);

    ApproxParams params;
    params.t = 5.0;
    params.eps_r = 0.5;
    params.delta = DefaultDelta(dataset.graph);
    params.p_f = 1e-6;

    TablePrinter table({"c", "K", "time", "pushes", "walks", "conductance"});
    for (double c : c_values) {
      TeaPlusOptions options;
      options.c = c;
      TeaPlusEstimator estimator(dataset.graph, params, config.rng_seed + 1,
                                 options);
      const Aggregate agg =
          RunLocalClustering(dataset.graph, estimator, seeds);
      table.AddRow({FmtF(c, 1), std::to_string(estimator.hop_cap()),
                    FmtMs(agg.avg_ms),
                    FmtCount(static_cast<uint64_t>(agg.avg_pushes)),
                    FmtCount(static_cast<uint64_t>(agg.avg_walks)),
                    FmtF(agg.avg_conductance)});
    }
    table.Print();
  }
  return 0;
}
