// Threads x graph-size scaling of the serving stack (extension).
//
// The historical bench graph (12.5k nodes / 213k edges) fits in L2, so
// per-query work is too small to amortize cross-thread coordination and the
// thread sweeps in BENCH_parallel.json / BENCH_service.json *lose*
// throughput with more threads. This benchmark measures what the paper's
// production claim actually needs: throughput as a function of thread
// count on graphs that do not fit in cache (213k -> 1M -> 10M+ edges, the
// --graph-scale presets), through both execution paths:
//
//   executor  BatchQueryEngine::EstimateBatch with N threads — raw
//             parallel query execution, no queue, no cache
//   service   AsyncQueryService closed loop (N clients, N workers) with
//             the cache disabled — the sharded submission queues and
//             work-stealing path; the "stolen" column shows rebalancing
//
// Graphs are prepared the way a production loader would: generated (or
// mmap'd from a cached binary CSR snapshot, --graph-cache=DIR) and passed
// through RelabelByDegree so hub rows pack together (--no-relabel for the
// A/B). Uniform-random seeds keep the cacheless runs compute-bound and
// coalescing-free.
//
// Regression gate: after the sweep, for each graph the largest measured
// thread count T that the hardware can actually run in parallel
// (T <= hardware threads) must beat the 1-thread QPS by a floor
// (--floor=F, default 1.3 at 8 threads, prorated for smaller T). On
// hardware without real parallelism (hw = 1) the gate reports SKIPPED —
// the numbers are still emitted, honestly. Exit code 1 on violation, which
// is what turns "parallelism actually helps" into a CI invariant.
//
// Flags: --sizes=a,b,c (default small,medium,large; --smoke: small),
// --queries=N per (graph, threads, path) run, --threads=a,b,c (default
// 1,2,4,8), --floor=F, --graph-cache=DIR, --no-relabel, --json=PATH
// (BENCH_scaling.json), --smoke (CI-sized run).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "graph/graph_io.h"
#include "graph/relabel.h"
#include "hkpr/queries.h"
#include "parallel/parallel_for.h"
#include "service/async_query_service.h"

using namespace hkpr;
using namespace hkpr::bench;

namespace {

struct ScalingRow {
  std::string graph;
  uint32_t nodes = 0;
  uint64_t edges = 0;
  std::string layout;  // "degree-ordered" or "standard"
  std::string path;    // "executor" or "service"
  uint32_t threads = 0;
  uint32_t queries = 0;
  double seconds = 0.0;
  uint64_t stolen = 0;  // service path only
  double p50_ms = 0.0;  // service path only
  double p99_ms = 0.0;  // service path only
  // Per-stage mean latencies (service path with tracing on; zero
  // otherwise). Stages are disjoint, so queue+cache+compute <= total.
  double queue_ms = 0.0;
  double cache_ms = 0.0;
  double compute_ms = 0.0;
  double total_ms = 0.0;
  double qps() const { return queries / (seconds + 1e-12); }
};

/// Mean of one stage histogram in ms (each service is fresh per run, so the
/// cumulative snapshot is the per-run total).
double StageMeanMs(const StageLatencySnapshot& stage) {
  if (stage.count == 0) return 0.0;
  return static_cast<double>(stage.total_us) /
         static_cast<double>(stage.count) / 1000.0;
}

/// Executor path: the whole seed list through BatchQueryEngine with
/// `threads` threads (queries sharded across per-thread executors).
double RunExecutorPath(const Graph& graph, const ApproxParams& params,
                       uint64_t seed, uint32_t threads,
                       const std::vector<NodeId>& seeds) {
  BackendSpec spec;
  spec.context.tea_plus.c = 1.0;  // walk phase forced: real per-query work
  BatchQueryEngine engine(graph, params, seed, threads, spec);
  WallTimer timer;
  engine.EstimateBatch(std::span<const NodeId>(seeds.data(), seeds.size()));
  return timer.ElapsedSeconds();
}

/// Service path: closed loop, `threads` clients against `threads` workers,
/// cache disabled so every query is computed through the sharded queues.
double RunServicePath(const Graph& graph, const ApproxParams& params,
                      uint64_t seed, uint32_t threads,
                      const std::vector<NodeId>& seeds,
                      LatencyHistogram& latencies,
                      ServiceStatsSnapshot& stats_out) {
  ServiceOptions options;
  options.num_workers = threads;
  options.cache_capacity = 0;  // measure compute scaling, not caching
  options.max_queue_depth = 1u << 20;
  options.backend.context.tea_plus.c = 1.0;
  AsyncQueryService service(graph, params, seed, options);

  WallTimer timer;
  std::vector<std::thread> clients;
  clients.reserve(threads);
  for (uint32_t c = 0; c < threads; ++c) {
    clients.emplace_back([&, c] {
      const ChunkRange range = ChunkBounds(seeds.size(), threads, c);
      for (size_t i = range.begin; i < range.end; ++i) {
        QueryHandle handle = service.Submit(seeds[i]);
        const QueryResult result = handle.result.get();
        if (result.status != QueryStatus::kOk) {
          std::fprintf(stderr, "unexpected query status %s\n",
                       QueryStatusName(result.status));
          std::abort();
        }
        latencies.Record(result.latency_ms / 1000.0);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double seconds = timer.ElapsedSeconds();
  stats_out = service.Stats();
  return seconds;
}

void WriteScalingJson(const std::string& path, uint32_t hardware_threads,
                      const std::string& workload,
                      const std::vector<ScalingRow>& rows) {
  std::FILE* f = path.empty() ? stdout : std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"serve_scaling\",\n");
  std::fprintf(f, "  \"hardware_threads\": %u,\n", hardware_threads);
  std::fprintf(f, "  \"workload\": \"%s\",\n  \"rows\": [\n", workload.c_str());
  for (size_t i = 0; i < rows.size(); ++i) {
    const ScalingRow& r = rows[i];
    std::fprintf(
        f,
        "    {\"graph\": \"%s\", \"nodes\": %u, \"edges\": %llu, "
        "\"layout\": \"%s\", \"path\": \"%s\", \"threads\": %u, "
        "\"queries\": %u, \"seconds\": %.6f, \"qps\": %.1f, "
        "\"stolen\": %llu, \"p50_ms\": %.3f, \"p99_ms\": %.3f, "
        "\"queue_ms\": %.4f, \"cache_ms\": %.4f, \"compute_ms\": %.4f, "
        "\"total_ms\": %.4f}%s\n",
        r.graph.c_str(), r.nodes, static_cast<unsigned long long>(r.edges),
        r.layout.c_str(), r.path.c_str(), r.threads, r.queries, r.seconds,
        r.qps(), static_cast<unsigned long long>(r.stolen), r.p50_ms,
        r.p99_ms, r.queue_ms, r.cache_ms, r.compute_ms, r.total_ms,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  if (f != stdout) std::fclose(f);
}

std::vector<std::string> SplitCsv(const char* value) {
  std::vector<std::string> out;
  std::string token;
  for (const char* p = value;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!token.empty()) out.push_back(token);
      token.clear();
      if (*p == '\0') break;
    } else {
      token += *p;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchConfig config = BenchConfig::FromArgs(argc, argv);
  std::string json_path;
  std::string cache_dir;
  std::vector<std::string> sizes = {"small", "medium", "large"};
  std::vector<uint32_t> thread_counts = {1, 2, 4, 8};
  double floor8 = 1.3;  // required 8-thread/1-thread QPS ratio
  bool relabel = true;
  bool smoke = false;
  bool sizes_overridden = false;
  uint32_t num_queries = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
    if (std::strncmp(argv[i], "--graph-cache=", 14) == 0) {
      cache_dir = argv[i] + 14;
    }
    if (std::strncmp(argv[i], "--sizes=", 8) == 0) {
      sizes = SplitCsv(argv[i] + 8);
      sizes_overridden = true;
    }
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      thread_counts.clear();
      for (const std::string& t : SplitCsv(argv[i] + 10)) {
        thread_counts.push_back(static_cast<uint32_t>(std::atoi(t.c_str())));
      }
    }
    if (std::strncmp(argv[i], "--queries=", 10) == 0) {
      num_queries = static_cast<uint32_t>(std::atoi(argv[i] + 10));
    }
    if (std::strncmp(argv[i], "--floor=", 8) == 0) {
      floor8 = std::atof(argv[i] + 8);
    }
    if (std::strcmp(argv[i], "--no-relabel") == 0) relabel = false;
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  if (smoke && !sizes_overridden) sizes = {"small"};
  if (num_queries == 0) num_queries = smoke ? 160 : (config.full ? 1200 : 400);

  const uint32_t hardware = std::max(1u, std::thread::hardware_concurrency());
  std::printf("== Serve scaling: threads x graph size ==\n");
  std::printf("hardware threads available: %u\n", hardware);
  std::printf("preparing graphs:\n");

  bool gate_failed = false;
  bool gate_enforced = false;
  std::vector<ScalingRow> rows;
  TablePrinter table({"graph", "edges", "path", "threads", "q/s", "speedup",
                      "stolen", "p99 ms"});
  for (const std::string& size_name : sizes) {
    Graph loaded = PrepareScaledGraph(size_name, cache_dir, config.rng_seed);
    std::string layout = "standard";
    Graph graph = std::move(loaded);
    if (relabel) {
      WallTimer timer;
      graph = RelabelByDegree(graph).graph;
      layout = "degree-ordered";
      std::printf("  %s: degree-ordered relabel in %.1fs\n", size_name.c_str(),
                  timer.ElapsedSeconds());
    }
    const std::string graph_name = "rmat-" + size_name;

    // Serving-grade accuracy, scaled to the graph; walk phase forced so
    // every query does real work (see bench_service).
    ApproxParams params;
    params.t = 5.0;
    params.eps_r = 0.5;
    params.delta = 20.0 * DefaultDelta(graph);
    params.p_f = 1e-6;

    Rng rng(config.rng_seed);
    const std::vector<NodeId> seeds = UniformSeeds(graph, num_queries, rng);

    double base_qps[2] = {0.0, 0.0};  // 1-thread QPS per path
    for (uint32_t threads : thread_counts) {
      for (int path = 0; path < 2; ++path) {
        ScalingRow row;
        row.graph = graph_name;
        row.nodes = graph.NumNodes();
        row.edges = graph.NumEdges();
        row.layout = layout;
        row.path = path == 0 ? "executor" : "service";
        row.threads = threads;
        row.queries = num_queries;
        if (path == 0) {
          row.seconds = RunExecutorPath(graph, params, config.rng_seed,
                                        threads, seeds);
        } else {
          LatencyHistogram latencies;
          ServiceStatsSnapshot stats;
          row.seconds = RunServicePath(graph, params, config.rng_seed,
                                       threads, seeds, latencies, stats);
          row.stolen = stats.stolen;
          row.p50_ms = latencies.PercentileMs(0.50);
          row.p99_ms = latencies.PercentileMs(0.99);
          if (stats.stage_tracing) {
            row.queue_ms = StageMeanMs(stats.queue_wait);
            row.cache_ms = StageMeanMs(stats.cache_lookup);
            row.compute_ms = StageMeanMs(stats.compute);
            if (stats.latency_count > 0) {
              row.total_ms = static_cast<double>(stats.traced_total_us) /
                             static_cast<double>(stats.latency_count) / 1000.0;
            }
          }
        }
        if (threads == 1) base_qps[path] = row.qps();
        const double speedup =
            base_qps[path] > 0.0 ? row.qps() / base_qps[path] : 1.0;
        table.AddRow({graph_name, FmtCount(row.edges), row.path,
                      std::to_string(threads), FmtF(row.qps(), 0),
                      FmtF(speedup, 2) + "x", std::to_string(row.stolen),
                      FmtF(row.p99_ms, 2)});
        rows.push_back(row);
      }
    }

    // Regression gate, per path: largest thread count the hardware can
    // truly parallelize must beat 1 thread by the (prorated) floor.
    uint32_t gate_threads = 0;
    for (uint32_t threads : thread_counts) {
      if (threads > 1 && threads <= hardware) {
        gate_threads = std::max(gate_threads, threads);
      }
    }
    if (gate_threads == 0) {
      std::printf(
          "gate SKIPPED for %s: no measured thread count in (1, %u] "
          "(hardware threads)\n",
          graph_name.c_str(), hardware);
      continue;
    }
    // 1.3 at 8 threads, prorated linearly down to 1.0 at 1 thread.
    const double required =
        1.0 + (floor8 - 1.0) * (static_cast<double>(gate_threads) - 1.0) / 7.0;
    for (int path = 0; path < 2; ++path) {
      const char* path_name = path == 0 ? "executor" : "service";
      double one = 0.0, best = 0.0;
      for (const ScalingRow& r : rows) {
        if (r.graph != graph_name || r.path != path_name) continue;
        if (r.threads == 1) one = r.qps();
        if (r.threads == gate_threads) best = r.qps();
      }
      if (one <= 0.0 || best <= 0.0) continue;
      gate_enforced = true;
      const double ratio = best / one;
      const bool ok = ratio > required;
      std::printf("gate %s for %s/%s: %u-thread %.0f q/s vs 1-thread %.0f "
                  "q/s = %.2fx (required > %.2fx)\n",
                  ok ? "PASS" : "FAIL", graph_name.c_str(), path_name,
                  gate_threads, best, one, ratio, required);
      if (!ok) gate_failed = true;
    }
  }
  table.Print();

  std::string workload = "uniform seeds, cache disabled, tea+ walk-heavy";
  WriteScalingJson(json_path, hardware, workload, rows);
  if (!gate_enforced) {
    std::printf("scaling gate not enforced (insufficient hardware "
                "parallelism); rows emitted for inspection\n");
    return 0;
  }
  return gate_failed ? 1 : 0;
}
