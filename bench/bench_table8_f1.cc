// Table 8: best F1-measure against ground-truth communities, with the
// running time at the best setting.
//
// Paper protocol: 100 seeds from communities of size >= 100; per algorithm,
// sweep t in 3..10 and the error parameter, report the highest average F1
// and the corresponding time. Expected shape: TEA+ best-or-tied F1 with the
// lowest time on DBLP/Youtube/LiveJournal/Orkut.

#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "baselines/cluster_hkpr.h"
#include "baselines/hk_relax.h"
#include "bench_common.h"
#include "clustering/metrics.h"
#include "hkpr/monte_carlo.h"
#include "hkpr/tea.h"
#include "hkpr/tea_plus.h"

using namespace hkpr;
using namespace hkpr::bench;

namespace {

struct BestResult {
  double f1 = -1.0;
  double ms = 0.0;
  std::string setting;
};

/// Runs one estimator configuration over the community query set; returns
/// (avg F1, avg ms).
std::pair<double, double> EvaluateF1(
    const Graph& graph, const CommunitySet& communities,
    const std::vector<CommunitySeed>& queries, HkprEstimator& est) {
  double f1 = 0.0;
  double ms = 0.0;
  for (const CommunitySeed& q : queries) {
    WallTimer timer;
    LocalClusterResult result = LocalCluster(graph, est, q.seed);
    ms += timer.ElapsedMillis();
    f1 += ComputeF1(result.cluster, communities.Community(q.community)).f1;
  }
  const double count = static_cast<double>(queries.size());
  return {f1 / count, ms / count};
}

void Track(BestResult& best, double f1, double ms, std::string setting) {
  if (f1 > best.f1) {
    best.f1 = f1;
    best.ms = ms;
    best.setting = std::move(setting);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const BenchConfig config = BenchConfig::FromArgs(argc, argv);
  std::printf("== Table 8: F1 vs ground-truth communities ==\n");

  const uint32_t num_queries = config.full ? 50 : 12;
  const std::vector<double> t_values =
      config.full ? std::vector<double>{3.0, 5.0, 8.0, 10.0}
                  : std::vector<double>{5.0};
  const std::vector<double> delta_mults =
      config.full ? std::vector<double>{20.0, 2.0, 0.2}
                  : std::vector<double>{2.0, 0.2};
  const std::vector<double> relax_eps =
      config.full ? std::vector<double>{1e-3, 1e-4, 1e-5}
                  : std::vector<double>{1e-4, 1e-5};
  const std::vector<double> chkpr_eps =
      config.full ? std::vector<double>{0.2, 0.1, 0.05}
                  : std::vector<double>{0.1, 0.05};

  TablePrinter table({"dataset", "algorithm", "best F1", "time",
                      "best setting"});
  for (const std::string& name : CommunityDatasetNames()) {
    Dataset dataset = MakeDataset(name, config.scale, config.rng_seed);
    Rng rng(config.rng_seed + 3);
    const std::vector<CommunitySeed> queries = CommunitySeeds(
        dataset.graph, dataset.communities, num_queries,
        /*min_size=*/config.full ? 100 : 40, rng);
    if (queries.empty()) {
      std::printf("(%s: no eligible communities, skipped)\n", name.c_str());
      continue;
    }
    const double inv_n = 1.0 / static_cast<double>(dataset.graph.NumNodes());

    BestResult best_mc, best_chkpr, best_relax, best_tea, best_plus;
    for (double t : t_values) {
      for (double mult : delta_mults) {
        ApproxParams params;
        params.t = t;
        params.delta = mult * inv_n;
        params.p_f = 1e-6;
        {
          MonteCarloEstimator est(dataset.graph, params, config.rng_seed + 4);
          auto [f1, ms] =
              EvaluateF1(dataset.graph, dataset.communities, queries, est);
          Track(best_mc, f1, ms,
                "t=" + FmtF(t, 0) + ",delta=" + FmtSci(params.delta));
        }
        {
          TeaEstimator est(dataset.graph, params, config.rng_seed + 5);
          auto [f1, ms] =
              EvaluateF1(dataset.graph, dataset.communities, queries, est);
          Track(best_tea, f1, ms,
                "t=" + FmtF(t, 0) + ",delta=" + FmtSci(params.delta));
        }
        {
          TeaPlusEstimator est(dataset.graph, params, config.rng_seed + 6);
          auto [f1, ms] =
              EvaluateF1(dataset.graph, dataset.communities, queries, est);
          Track(best_plus, f1, ms,
                "t=" + FmtF(t, 0) + ",delta=" + FmtSci(params.delta));
        }
      }
      for (double eps : chkpr_eps) {
        ClusterHkprOptions options;
        options.t = t;
        options.eps = eps;
        options.max_walks = 30'000'000;
        ClusterHkprEstimator est(dataset.graph, options, config.rng_seed + 7);
        auto [f1, ms] =
            EvaluateF1(dataset.graph, dataset.communities, queries, est);
        Track(best_chkpr, f1, ms, "t=" + FmtF(t, 0) + ",eps=" + FmtF(eps, 2));
      }
      for (double eps_a : relax_eps) {
        HkRelaxOptions options;
        options.t = t;
        options.eps_a = eps_a;
        HkRelaxEstimator est(dataset.graph, options);
        auto [f1, ms] =
            EvaluateF1(dataset.graph, dataset.communities, queries, est);
        Track(best_relax, f1, ms,
              "t=" + FmtF(t, 0) + ",eps_a=" + FmtSci(eps_a));
      }
    }

    const auto add = [&](const char* algo, const BestResult& best) {
      table.AddRow({dataset.name, algo, FmtF(best.f1), FmtMs(best.ms),
                    best.setting});
    };
    add("ClusterHKPR", best_chkpr);
    add("Monte-Carlo", best_mc);
    add("HK-Relax", best_relax);
    add("TEA", best_tea);
    add("TEA+", best_plus);
  }
  table.Print();
  return 0;
}
