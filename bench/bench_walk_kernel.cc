// Scalar vs interleaved walk-kernel sweep (extension).
//
// Measures the raw walk phase in isolation: heat-kernel walks from a seed
// node (the Monte-Carlo workload, which is 100% walk phase) on the
// --graph-scale presets, from L2-resident (~12.5k nodes / ~213k edges) to
// DRAM-resident (~592k nodes / ~10.9M edges). For each graph it times the
// legacy scalar loop (shared sequential Rng + KRandomWalk) and the
// interleaved kernel (hkpr/walk_kernel.h) at widths 1, 4, 8 and 16,
// reporting walk-steps/sec. On cache-resident graphs the two are expected
// to tie (prefetch hints are near-free but useless); past LLC the
// interleaved kernel overlaps the dependent DRAM loads of W walks and
// should win big.
//
// The run also *verifies* the kernel's determinism claim for free: the
// end-node checksum of every interleaved width must be identical (each
// walk's stream is a pure function of its index), and any mismatch is a
// hard failure regardless of mode.
//
// Flags: --sizes=a,b,c (default small,medium,large; --smoke default:
// small,medium), --walks=N walks per measurement (default 2000000; smoke
// 300000), --reps=N timed reps, best kept (default 3), --widths=a,b,c
// (default 1,4,8,16), --floor=F smoke-gate speedup floor (default 1.0),
// --graph-cache=DIR binary snapshot cache (same keys as
// bench_serve_scaling), --no-relabel, --json=PATH (BENCH_walk.json),
// --smoke (CI-sized run; exits 1 when interleaved width-8 steps/sec <
// floor * scalar on the largest graph).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "graph/relabel.h"
#include "hkpr/heat_kernel.h"
#include "hkpr/random_walk.h"
#include "hkpr/walk_kernel.h"

using namespace hkpr;
using namespace hkpr::bench;

namespace {

struct WalkRow {
  std::string graph;
  uint32_t nodes = 0;
  uint64_t edges = 0;
  std::string kernel;  // "scalar" or "interleaved"
  uint32_t width = 0;  // 0 for scalar
  uint64_t walks = 0;
  uint64_t steps = 0;
  double seconds = 0.0;
  double speedup_vs_scalar = 1.0;
  double steps_per_sec() const {
    return static_cast<double>(steps) / (seconds + 1e-12);
  }
};

/// FNV-1a over the end-node array: the cross-width bit-identity check.
uint64_t EndsChecksum(const std::vector<NodeId>& ends) {
  uint64_t h = 1469598103934665603ULL;
  for (NodeId v : ends) {
    h ^= v;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Scalar baseline: the pre-kernel walk loop, one walk at a time off a
/// shared sequential Rng. Returns total steps.
uint64_t RunScalar(const Graph& graph, const HeatKernel& kernel, NodeId seed,
                   uint64_t num_walks, uint64_t rng_seed) {
  Rng rng(rng_seed);
  uint64_t steps = 0;
  for (uint64_t i = 0; i < num_walks; ++i) {
    KRandomWalk(graph, kernel, seed, 0, rng, &steps);
  }
  return steps;
}

void WriteWalkJson(const std::string& path, const std::vector<WalkRow>& rows) {
  std::FILE* f = path.empty() ? stdout : std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"walk_kernel\",\n  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const WalkRow& r = rows[i];
    std::fprintf(
        f,
        "    {\"graph\": \"%s\", \"nodes\": %u, \"edges\": %llu, "
        "\"kernel\": \"%s\", \"width\": %u, \"walks\": %llu, "
        "\"steps\": %llu, \"seconds\": %.6f, \"steps_per_sec\": %.0f, "
        "\"speedup_vs_scalar\": %.3f}%s\n",
        r.graph.c_str(), r.nodes, static_cast<unsigned long long>(r.edges),
        r.kernel.c_str(), r.width, static_cast<unsigned long long>(r.walks),
        static_cast<unsigned long long>(r.steps), r.seconds,
        r.steps_per_sec(), r.speedup_vs_scalar,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  if (f != stdout) std::fclose(f);
}

std::vector<std::string> SplitCsv(const char* value) {
  std::vector<std::string> out;
  std::string token;
  for (const char* p = value;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!token.empty()) out.push_back(token);
      token.clear();
      if (*p == '\0') break;
    } else {
      token += *p;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchConfig config = BenchConfig::FromArgs(argc, argv);
  std::string json_path;
  std::string cache_dir;
  std::vector<std::string> sizes;
  std::vector<uint32_t> widths = {1, 4, 8, 16};
  uint64_t num_walks = 0;
  uint32_t reps = 3;
  double floor = 1.0;
  bool relabel = true;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
    if (std::strncmp(argv[i], "--graph-cache=", 14) == 0) {
      cache_dir = argv[i] + 14;
    }
    if (std::strncmp(argv[i], "--sizes=", 8) == 0) {
      sizes = SplitCsv(argv[i] + 8);
    }
    if (std::strncmp(argv[i], "--widths=", 9) == 0) {
      widths.clear();
      for (const std::string& w : SplitCsv(argv[i] + 9)) {
        widths.push_back(static_cast<uint32_t>(std::atoi(w.c_str())));
      }
    }
    if (std::strncmp(argv[i], "--walks=", 8) == 0) {
      num_walks = static_cast<uint64_t>(std::atoll(argv[i] + 8));
    }
    if (std::strncmp(argv[i], "--reps=", 7) == 0) {
      reps = static_cast<uint32_t>(std::atoi(argv[i] + 7));
    }
    if (std::strncmp(argv[i], "--floor=", 8) == 0) {
      floor = std::atof(argv[i] + 8);
    }
    if (std::strcmp(argv[i], "--no-relabel") == 0) relabel = false;
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  if (sizes.empty()) {
    sizes = smoke ? std::vector<std::string>{"small", "medium"}
                  : std::vector<std::string>{"small", "medium", "large"};
  }
  if (num_walks == 0) num_walks = smoke ? 300'000 : 2'000'000;
  if (reps == 0) reps = 1;

  std::printf("# walk-kernel sweep: scalar vs interleaved, %llu walks/rep, "
              "%u reps (best kept)\n",
              static_cast<unsigned long long>(num_walks), reps);

  const HeatKernel kernel(5.0);
  std::vector<WalkRow> rows;
  bool gate_ok = true;
  std::string gate_msg;

  for (const std::string& size_name : sizes) {
    Graph graph = PrepareScaledGraph(size_name, cache_dir, config.rng_seed);
    if (relabel) graph = RelabelByDegree(graph).graph;
    const std::string graph_name = "rmat-" + size_name;
    std::printf("\n### %s: n=%u m=%llu avg-deg=%.2f%s\n", graph_name.c_str(),
                graph.NumNodes(),
                static_cast<unsigned long long>(graph.NumEdges()),
                graph.AverageDegree(),
                relabel ? " (degree-ordered)" : "");

    // All walks start at one well-connected node — the Monte-Carlo
    // workload. Deterministic pick: the max-degree node.
    NodeId seed_node = 0;
    for (NodeId v = 0; v < graph.NumNodes(); ++v) {
      if (graph.Degree(v) > graph.Degree(seed_node)) seed_node = v;
    }

    // Scalar baseline. One untimed warmup rep faults the CSR pages in
    // (mmap'd snapshots start cold) so rep timings measure steady state.
    RunScalar(graph, kernel, seed_node, num_walks / 4 + 1, config.rng_seed);
    WalkRow scalar_row;
    scalar_row.graph = graph_name;
    scalar_row.nodes = graph.NumNodes();
    scalar_row.edges = graph.NumEdges();
    scalar_row.kernel = "scalar";
    scalar_row.walks = num_walks;
    scalar_row.seconds = 1e300;
    for (uint32_t rep = 0; rep < reps; ++rep) {
      WallTimer timer;
      const uint64_t steps =
          RunScalar(graph, kernel, seed_node, num_walks, config.rng_seed);
      const double seconds = timer.ElapsedSeconds();
      if (seconds < scalar_row.seconds) {
        scalar_row.seconds = seconds;
        scalar_row.steps = steps;
      }
    }
    rows.push_back(scalar_row);
    std::printf("  %-22s %10.0f steps/s\n", "scalar",
                scalar_row.steps_per_sec());

    // Interleaved widths. Same stream seed everywhere: every width must
    // produce the identical end-node array.
    const uint64_t stream_seed = WalkStreamSeed(config.rng_seed, 0);
    WalkStartSet start_set;
    start_set.fixed_node = seed_node;
    std::vector<NodeId> ends(num_walks);
    uint64_t reference_checksum = 0;
    double width8_speedup = 0.0;
    for (const uint32_t width : widths) {
      WalkRow row;
      row.graph = graph_name;
      row.nodes = graph.NumNodes();
      row.edges = graph.NumEdges();
      row.kernel = "interleaved";
      row.width = width;
      row.walks = num_walks;
      row.seconds = 1e300;
      for (uint32_t rep = 0; rep < reps; ++rep) {
        WallTimer timer;
        const uint64_t steps =
            RunInterleavedWalks(graph, kernel, start_set, stream_seed, 0,
                                num_walks, ends.data(), width);
        const double seconds = timer.ElapsedSeconds();
        if (seconds < row.seconds) {
          row.seconds = seconds;
          row.steps = steps;
        }
      }
      const uint64_t checksum = EndsChecksum(ends);
      if (reference_checksum == 0) reference_checksum = checksum;
      if (checksum != reference_checksum) {
        std::fprintf(stderr,
                     "FAIL %s: width %u end-node checksum %016llx differs "
                     "from width %u's %016llx — determinism broken\n",
                     graph_name.c_str(), width,
                     static_cast<unsigned long long>(checksum), widths[0],
                     static_cast<unsigned long long>(reference_checksum));
        return 1;
      }
      row.speedup_vs_scalar =
          row.steps_per_sec() / (scalar_row.steps_per_sec() + 1e-12);
      if (width == 8) width8_speedup = row.speedup_vs_scalar;
      rows.push_back(row);
      std::printf("  %-22s %10.0f steps/s  (%.2fx scalar)\n",
                  ("interleaved w=" + std::to_string(width)).c_str(),
                  row.steps_per_sec(), row.speedup_vs_scalar);
    }

    // The smoke gate reads the *last* (largest) graph's width-8 row.
    if (size_name == sizes.back() && width8_speedup > 0.0) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "%s: interleaved w=8 %.2fx scalar (floor %.2f)",
                    graph_name.c_str(), width8_speedup, floor);
      gate_msg = buf;
      gate_ok = width8_speedup >= floor;
    }
  }

  WriteWalkJson(json_path, rows);
  if (smoke) {
    std::printf("\nGATE %s: %s\n", gate_ok ? "OK" : "FAIL", gate_msg.c_str());
    if (!gate_ok) return 1;
  }
  return 0;
}
