// Ablations of TEA+'s design choices (Section 5):
//   1. residue reduction on/off (the Example 1 mechanism),
//   2. beta_k proportional-to-hop-sum vs uniform,
//   3. HK-Push+ early-exit test on/off,
//   4. hop-cap constant c small vs tuned (degenerates towards Monte-Carlo).

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "hkpr/tea_plus.h"

using namespace hkpr;
using namespace hkpr::bench;

namespace {

void RunVariant(const Dataset& dataset, const std::vector<NodeId>& seeds,
                const ApproxParams& params, const TeaPlusOptions& options,
                const char* label, uint64_t rng_seed, TablePrinter& table) {
  TeaPlusEstimator est(dataset.graph, params, rng_seed, options);
  const Aggregate agg = RunLocalClustering(dataset.graph, est, seeds);
  table.AddRow({label, FmtMs(agg.avg_ms),
                FmtCount(static_cast<uint64_t>(agg.avg_pushes)),
                FmtCount(static_cast<uint64_t>(agg.avg_walks)),
                FmtF(agg.avg_conductance)});
}

}  // namespace

int main(int argc, char** argv) {
  const BenchConfig config = BenchConfig::FromArgs(argc, argv);
  std::printf("== Ablation: TEA+ design choices ==\n");
  std::printf("t=5, p_f=1e-6, eps_r=0.5, delta=0.2/n, %u seeds/dataset\n",
              config.num_seeds);

  for (const std::string& name :
       std::vector<std::string>{"dblp", "plc", "orkut", "grid3d"}) {
    Dataset dataset = MakeDataset(name, config.scale, config.rng_seed);
    PrintDatasetBanner(dataset);
    Rng rng(config.rng_seed);
    const std::vector<NodeId> seeds =
        UniformSeeds(dataset.graph, config.num_seeds, rng);

    ApproxParams params;
    params.delta = 0.2 * DefaultDelta(dataset.graph);
    params.p_f = 1e-6;

    std::printf("\n-- paper configuration (c=2.5) --\n");
    {
      TablePrinter table(
          {"variant", "time", "pushes", "walks", "conductance"});
      TeaPlusOptions baseline;  // c=2.5, reduction on, early exit on
      RunVariant(dataset, seeds, params, baseline, "TEA+ (paper config)",
                 config.rng_seed + 1, table);

      TeaPlusOptions no_early_exit = baseline;
      no_early_exit.enable_early_exit = false;
      RunVariant(dataset, seeds, params, no_early_exit, "no early exit",
                 config.rng_seed + 1, table);

      TeaPlusOptions tiny_c = baseline;
      tiny_c.c = 0.5;
      RunVariant(dataset, seeds, params, tiny_c, "c=0.5 (towards MC)",
                 config.rng_seed + 1, table);

      TeaPlusOptions big_c = baseline;
      big_c.c = 5.0;
      RunVariant(dataset, seeds, params, big_c, "c=5.0 (push heavy)",
                 config.rng_seed + 1, table);
      table.Print();
    }

    // In the paper config on graphs this small, the push phase alone often
    // satisfies Inequality (11) and the walk phase never runs; the residue
    // reduction mechanisms only matter when walks happen. Force a
    // walk-heavy regime (small hop cap) to expose them.
    std::printf("\n-- walk-heavy configuration (c=1.5): residue-reduction "
                "mechanisms engaged --\n");
    {
      TablePrinter table(
          {"variant", "time", "pushes", "walks", "conductance"});
      TeaPlusOptions walk_heavy;
      walk_heavy.c = 1.5;
      RunVariant(dataset, seeds, params, walk_heavy, "reduction on (paper)",
                 config.rng_seed + 1, table);

      TeaPlusOptions no_reduction = walk_heavy;
      no_reduction.enable_residue_reduction = false;
      RunVariant(dataset, seeds, params, no_reduction,
                 "no residue reduction", config.rng_seed + 1, table);

      TeaPlusOptions uniform_beta = walk_heavy;
      uniform_beta.beta_mode = BetaMode::kUniform;
      RunVariant(dataset, seeds, params, uniform_beta, "uniform beta_k",
                 config.rng_seed + 1, table);
      table.Print();
    }
  }
  return 0;
}
