// Figure 4: running time vs cluster conductance for all algorithms on all
// eight datasets.
//
// Paper protocol: each algorithm sweeps its own error parameter; a point is
// (average conductance, average query time). Expected shape: TEA+ sits on
// the lower-left envelope everywhere, HK-Relax next, TEA close to HK-Relax
// on low-degree graphs, Monte-Carlo/ClusterHKPR 1-3 orders of magnitude
// slower at equal conductance, SimpleLocal slow and poor (DBLP/Youtube
// only), CRD in between.

#include <cstdio>

#include "bench_common.h"

using namespace hkpr;
using namespace hkpr::bench;

int main(int argc, char** argv) {
  const BenchConfig config = BenchConfig::FromArgs(argc, argv);
  std::printf("== Figure 4: running time vs conductance ==\n");
  std::printf("t=5, p_f=1e-6, eps_r=0.5, %u seeds/dataset\n",
              config.num_seeds);

  for (const std::string& name : DatasetNames()) {
    Dataset dataset = MakeDataset(name, config.scale, config.rng_seed);
    PrintDatasetBanner(dataset);
    Rng rng(config.rng_seed);
    const std::vector<NodeId> seeds =
        UniformSeeds(dataset.graph, config.num_seeds, rng);

    SweepSpec spec;
    // The paper runs the flow baselines only where they are feasible:
    // SimpleLocal on DBLP/Youtube, CRD on the smaller graphs.
    spec.include_simple_local = (name == "dblp" || name == "youtube");
    spec.include_crd =
        (name == "dblp" || name == "youtube" || name == "plc");
    if (config.full) {
      spec.delta_over_n = {20.0, 2.0, 0.2, 0.02};
      spec.hk_relax_eps = {1e-3, 1e-4, 1e-5, 1e-6};
      spec.cluster_hkpr_eps = {0.2, 0.1, 0.05, 0.02};
      spec.crd_iterations = {7, 10, 15, 20, 30};
    }

    TablePrinter table(
        {"algorithm", "parameter", "conductance", "time", "support"});
    for (const SweepPoint& point :
         RunAlgorithmSweep(dataset.graph, seeds, spec, config.rng_seed)) {
      table.AddRow({point.algorithm, point.param,
                    FmtF(point.agg.avg_conductance), FmtMs(point.agg.avg_ms),
                    FmtCount(static_cast<uint64_t>(point.agg.avg_support))});
    }
    table.Print();
  }
  return 0;
}
