// Figure 5: memory overhead vs cluster conductance.
//
// Paper protocol: same sweeps as Figure 4; memory includes the input graph.
// Expected shape: all algorithms comparable (graph storage dominates), with
// mild growth as error thresholds shrink.

#include <cstdio>

#include "bench_common.h"

using namespace hkpr;
using namespace hkpr::bench;

int main(int argc, char** argv) {
  const BenchConfig config = BenchConfig::FromArgs(argc, argv);
  std::printf("== Figure 5: memory vs conductance ==\n");
  std::printf("t=5, p_f=1e-6, eps_r=0.5, %u seeds/dataset "
              "(memory = graph bytes + peak algorithm state)\n",
              config.num_seeds);

  for (const std::string& name : DatasetNames()) {
    Dataset dataset = MakeDataset(name, config.scale, config.rng_seed);
    PrintDatasetBanner(dataset);
    Rng rng(config.rng_seed);
    const std::vector<NodeId> seeds =
        UniformSeeds(dataset.graph, config.num_seeds, rng);

    SweepSpec spec;  // HKPR algorithms only, as in the paper's Figure 5
    if (config.full) {
      spec.delta_over_n = {20.0, 2.0, 0.2, 0.02};
      spec.hk_relax_eps = {1e-3, 1e-4, 1e-5, 1e-6};
    }

    TablePrinter table(
        {"algorithm", "parameter", "conductance", "memory (MB)"});
    for (const SweepPoint& point :
         RunAlgorithmSweep(dataset.graph, seeds, spec, config.rng_seed)) {
      table.AddRow({point.algorithm, point.param,
                    FmtF(point.agg.avg_conductance),
                    FmtF(point.agg.avg_mem_mb, 2)});
    }
    table.Print();
  }
  return 0;
}
