// Micro-benchmarks of the primitives (google-benchmark): push throughput,
// walk throughput, alias construction/sampling, sweep, conductance, exact
// power method.

#include <benchmark/benchmark.h>

#include <vector>

#include "clustering/sweep.h"
#include "common/alias_sampler.h"
#include "common/random.h"
#include "graph/generators.h"
#include "hkpr/heat_kernel.h"
#include "hkpr/power_method.h"
#include "hkpr/push.h"
#include "hkpr/random_walk.h"

namespace {

using namespace hkpr;

const Graph& BenchGraph() {
  static const Graph graph = PowerlawCluster(20000, 5, 0.3, 42);
  return graph;
}

void BM_HkPush(benchmark::State& state) {
  const Graph& graph = BenchGraph();
  const HeatKernel kernel(5.0);
  const double r_max = 1.0 / static_cast<double>(state.range(0));
  uint64_t ops = 0;
  for (auto _ : state) {
    PushResult result = HkPush(graph, kernel, 7, r_max);
    ops += result.push_operations;
    benchmark::DoNotOptimize(result.reserve);
  }
  state.SetItemsProcessed(static_cast<int64_t>(ops));
}
BENCHMARK(BM_HkPush)->Arg(1000)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_HkPushPlus(benchmark::State& state) {
  const Graph& graph = BenchGraph();
  const HeatKernel kernel(5.0);
  HkPushPlusOptions options;
  options.eps_r = 0.5;
  options.delta = 1.0 / static_cast<double>(state.range(0));
  options.hop_cap = 10;
  options.push_budget = 100'000'000;
  uint64_t ops = 0;
  for (auto _ : state) {
    PushResult result = HkPushPlus(graph, kernel, 7, options);
    ops += result.push_operations;
    benchmark::DoNotOptimize(result.reserve);
  }
  state.SetItemsProcessed(static_cast<int64_t>(ops));
}
BENCHMARK(BM_HkPushPlus)->Arg(100000)->Arg(1000000)->Arg(10000000);

void BM_KRandomWalk(benchmark::State& state) {
  const Graph& graph = BenchGraph();
  const HeatKernel kernel(static_cast<double>(state.range(0)));
  Rng rng(1);
  uint64_t steps = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(KRandomWalk(graph, kernel, 7, 0, rng, &steps));
  }
  state.SetItemsProcessed(static_cast<int64_t>(steps));
}
BENCHMARK(BM_KRandomWalk)->Arg(5)->Arg(20)->Arg(40);

void BM_AliasBuild(benchmark::State& state) {
  Rng rng(2);
  std::vector<double> weights(state.range(0));
  for (double& w : weights) w = rng.UniformDouble() + 1e-9;
  for (auto _ : state) {
    AliasSampler alias(weights);
    benchmark::DoNotOptimize(alias);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AliasBuild)->Arg(1024)->Arg(65536)->Arg(1048576);

void BM_AliasSample(benchmark::State& state) {
  Rng rng(3);
  std::vector<double> weights(65536);
  for (double& w : weights) w = rng.UniformDouble() + 1e-9;
  AliasSampler alias(weights);
  for (auto _ : state) {
    benchmark::DoNotOptimize(alias.Sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AliasSample);

void BM_SweepCut(benchmark::State& state) {
  const Graph& graph = BenchGraph();
  const std::vector<double> exact = ExactHkpr(graph, 5.0, 7);
  SparseVector estimate;
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    if (exact[v] > 1e-8) estimate.Add(v, exact[v]);
  }
  for (auto _ : state) {
    SweepResult result = SweepCut(graph, estimate);
    benchmark::DoNotOptimize(result.conductance);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(estimate.nnz()));
}
BENCHMARK(BM_SweepCut);

void BM_PowerMethod(benchmark::State& state) {
  const Graph& graph = BenchGraph();
  const HeatKernel kernel(5.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExactHkpr(graph, kernel, 7));
  }
}
BENCHMARK(BM_PowerMethod);

void BM_PoissonSample(benchmark::State& state) {
  const HeatKernel kernel(5.0);
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel.SamplePoissonLength(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PoissonSample);

}  // namespace

BENCHMARK_MAIN();
