// Micro-benchmarks of the primitives (google-benchmark): push throughput,
// walk throughput, alias construction/sampling, sweep, conductance, exact
// power method.
//
// --json=PATH writes the per-benchmark results as
// {"benchmark": "micro_primitives", "rows": [...]} — the same envelope the
// hand-rolled benches emit — so trajectory tooling can consume every
// bench's output uniformly. The flag is stripped before google-benchmark
// sees argv; all native --benchmark_* flags still work.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "clustering/sweep.h"
#include "common/alias_sampler.h"
#include "common/random.h"
#include "graph/generators.h"
#include "hkpr/heat_kernel.h"
#include "hkpr/power_method.h"
#include "hkpr/push.h"
#include "hkpr/random_walk.h"

namespace {

using namespace hkpr;

const Graph& BenchGraph() {
  static const Graph graph = PowerlawCluster(20000, 5, 0.3, 42);
  return graph;
}

void BM_HkPush(benchmark::State& state) {
  const Graph& graph = BenchGraph();
  const HeatKernel kernel(5.0);
  const double r_max = 1.0 / static_cast<double>(state.range(0));
  uint64_t ops = 0;
  for (auto _ : state) {
    PushResult result = HkPush(graph, kernel, 7, r_max);
    ops += result.push_operations;
    benchmark::DoNotOptimize(result.reserve);
  }
  state.SetItemsProcessed(static_cast<int64_t>(ops));
}
BENCHMARK(BM_HkPush)->Arg(1000)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_HkPushPlus(benchmark::State& state) {
  const Graph& graph = BenchGraph();
  const HeatKernel kernel(5.0);
  HkPushPlusOptions options;
  options.eps_r = 0.5;
  options.delta = 1.0 / static_cast<double>(state.range(0));
  options.hop_cap = 10;
  options.push_budget = 100'000'000;
  uint64_t ops = 0;
  for (auto _ : state) {
    PushResult result = HkPushPlus(graph, kernel, 7, options);
    ops += result.push_operations;
    benchmark::DoNotOptimize(result.reserve);
  }
  state.SetItemsProcessed(static_cast<int64_t>(ops));
}
BENCHMARK(BM_HkPushPlus)->Arg(100000)->Arg(1000000)->Arg(10000000);

void BM_KRandomWalk(benchmark::State& state) {
  const Graph& graph = BenchGraph();
  const HeatKernel kernel(static_cast<double>(state.range(0)));
  Rng rng(1);
  uint64_t steps = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(KRandomWalk(graph, kernel, 7, 0, rng, &steps));
  }
  state.SetItemsProcessed(static_cast<int64_t>(steps));
}
BENCHMARK(BM_KRandomWalk)->Arg(5)->Arg(20)->Arg(40);

void BM_AliasBuild(benchmark::State& state) {
  Rng rng(2);
  std::vector<double> weights(state.range(0));
  for (double& w : weights) w = rng.UniformDouble() + 1e-9;
  for (auto _ : state) {
    AliasSampler alias(weights);
    benchmark::DoNotOptimize(alias);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AliasBuild)->Arg(1024)->Arg(65536)->Arg(1048576);

void BM_AliasSample(benchmark::State& state) {
  Rng rng(3);
  std::vector<double> weights(65536);
  for (double& w : weights) w = rng.UniformDouble() + 1e-9;
  AliasSampler alias(weights);
  for (auto _ : state) {
    benchmark::DoNotOptimize(alias.Sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AliasSample);

void BM_SweepCut(benchmark::State& state) {
  const Graph& graph = BenchGraph();
  const std::vector<double> exact = ExactHkpr(graph, 5.0, 7);
  SparseVector estimate;
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    if (exact[v] > 1e-8) estimate.Add(v, exact[v]);
  }
  for (auto _ : state) {
    SweepResult result = SweepCut(graph, estimate);
    benchmark::DoNotOptimize(result.conductance);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(estimate.nnz()));
}
BENCHMARK(BM_SweepCut);

void BM_PowerMethod(benchmark::State& state) {
  const Graph& graph = BenchGraph();
  const HeatKernel kernel(5.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExactHkpr(graph, kernel, 7));
  }
}
BENCHMARK(BM_PowerMethod);

void BM_PoissonSample(benchmark::State& state) {
  const HeatKernel kernel(5.0);
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel.SamplePoissonLength(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PoissonSample);

// Console output as usual, plus one collected row per non-aggregate run
// for the --json= envelope.
class JsonRowReporter : public benchmark::ConsoleReporter {
 public:
  struct Row {
    std::string name;
    int64_t iterations;
    double real_ns;   // per-iteration wall time
    double cpu_ns;    // per-iteration cpu time
    double items_per_sec;  // 0 when the benchmark reports no item counter
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      Row row;
      row.name = run.benchmark_name();
      row.iterations = static_cast<int64_t>(run.iterations);
      const double iters =
          run.iterations == 0 ? 1.0 : static_cast<double>(run.iterations);
      row.real_ns = run.real_accumulated_time / iters * 1e9;
      row.cpu_ns = run.cpu_accumulated_time / iters * 1e9;
      const auto it = run.counters.find("items_per_second");
      row.items_per_sec = it == run.counters.end() ? 0.0 : it->second.value;
      rows_.push_back(row);
    }
  }

  const std::vector<Row>& rows() const { return rows_; }

 private:
  std::vector<Row> rows_;
};

void WriteMicroJson(const std::string& path,
                    const std::vector<JsonRowReporter::Row>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"micro_primitives\",\n  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const JsonRowReporter::Row& r = rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"iterations\": %lld, "
                 "\"real_ns\": %.2f, \"cpu_ns\": %.2f, "
                 "\"items_per_sec\": %.1f}%s\n",
                 r.name.c_str(), static_cast<long long>(r.iterations),
                 r.real_ns, r.cpu_ns, r.items_per_sec,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  // Pull out --json= before google-benchmark validates the flags it owns.
  std::string json_path;
  std::vector<char*> passthrough;
  passthrough.reserve(static_cast<size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                             passthrough.data())) {
    return 1;
  }
  JsonRowReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty()) WriteMicroJson(json_path, reporter.rows());
  return 0;
}
