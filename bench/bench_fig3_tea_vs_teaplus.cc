// Figure 3: TEA vs TEA+ running time as eps_r varies in {0.1 .. 0.9}.
//
// Paper protocol: delta fixed (1e-6 on million-node graphs; scaled to the
// stand-in sizes here), identical accuracy guarantees for both algorithms,
// r_max of TEA tuned to balance push and walk cost. Expected shape: TEA+
// always below TEA, with the gap widening as eps_r grows.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "hkpr/tea.h"
#include "hkpr/tea_plus.h"

using namespace hkpr;
using namespace hkpr::bench;

int main(int argc, char** argv) {
  const BenchConfig config = BenchConfig::FromArgs(argc, argv);
  std::printf("== Figure 3: TEA vs TEA+ running time vs eps_r ==\n");
  std::printf("delta=0.2/n, t=5, p_f=1e-6, %u seeds/dataset\n",
              config.num_seeds);

  const std::vector<double> eps_values = {0.1, 0.3, 0.5, 0.7, 0.9};

  for (const std::string& name : DatasetNames()) {
    Dataset dataset = MakeDataset(name, config.scale, config.rng_seed);
    PrintDatasetBanner(dataset);
    Rng rng(config.rng_seed);
    const std::vector<NodeId> seeds =
        UniformSeeds(dataset.graph, config.num_seeds, rng);

    TablePrinter table({"eps_r", "TEA time", "TEA+ time", "speedup",
                        "TEA walks", "TEA+ walks"});
    for (double eps_r : eps_values) {
      ApproxParams params;
      params.t = 5.0;
      params.eps_r = eps_r;
      params.delta = 0.2 * DefaultDelta(dataset.graph);
      params.p_f = 1e-6;

      TeaEstimator tea(dataset.graph, params, config.rng_seed + 1);
      TeaPlusEstimator tea_plus(dataset.graph, params, config.rng_seed + 2);
      const Aggregate tea_agg =
          RunLocalClustering(dataset.graph, tea, seeds);
      const Aggregate plus_agg =
          RunLocalClustering(dataset.graph, tea_plus, seeds);
      table.AddRow({FmtF(eps_r, 1), FmtMs(tea_agg.avg_ms),
                    FmtMs(plus_agg.avg_ms),
                    FmtF(tea_agg.avg_ms / (plus_agg.avg_ms + 1e-9), 1) + "x",
                    FmtCount(static_cast<uint64_t>(tea_agg.avg_walks)),
                    FmtCount(static_cast<uint64_t>(plus_agg.avg_walks))});
    }
    table.Print();
  }
  return 0;
}
