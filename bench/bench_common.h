// Shared infrastructure for the figure/table reproduction binaries.
//
// Every binary accepts:
//   --full        paper-scale datasets and sweeps (default: quick mode that
//                 still prints every row/series, at reduced sizes)
//   --seeds=N     queries per dataset (default 3 quick / 20 full)
//   --rng=S       master RNG seed (default 42)

#ifndef HKPR_BENCH_BENCH_COMMON_H_
#define HKPR_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util/datasets.h"
#include "bench_util/table.h"
#include "bench_util/workload.h"
#include "clustering/local_cluster.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "graph/subgraph.h"
#include "common/random.h"
#include "common/timer.h"
#include "hkpr/estimator.h"

namespace hkpr::bench {

struct BenchConfig {
  DatasetScale scale = DatasetScale::kQuick;
  uint32_t num_seeds = 3;
  uint64_t rng_seed = 42;
  bool full = false;

  static BenchConfig FromArgs(int argc, char** argv) {
    BenchConfig config;
    bool seeds_overridden = false;
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strcmp(arg, "--full") == 0) {
        config.full = true;
        config.scale = DatasetScale::kFull;
      } else if (std::strncmp(arg, "--seeds=", 8) == 0) {
        config.num_seeds = static_cast<uint32_t>(std::atoi(arg + 8));
        seeds_overridden = true;
      } else if (std::strncmp(arg, "--rng=", 6) == 0) {
        config.rng_seed = static_cast<uint64_t>(std::atoll(arg + 6));
      } else if (std::strcmp(arg, "--help") == 0) {
        std::printf("usage: %s [--full] [--seeds=N] [--rng=S]\n", argv[0]);
        std::exit(0);
      }
    }
    if (config.full && !seeds_overridden) config.num_seeds = 20;
    return config;
  }
};

/// Averaged outcome of running one estimator configuration over a query set.
struct Aggregate {
  double avg_ms = 0.0;
  double avg_conductance = 0.0;
  double avg_mem_mb = 0.0;  ///< algorithm state + input graph
  double avg_walks = 0.0;
  double avg_pushes = 0.0;
  double avg_support = 0.0;
  uint32_t queries = 0;
};

/// Runs full local-clustering queries (estimate + sweep) over `seeds`.
inline Aggregate RunLocalClustering(const Graph& graph,
                                    HkprEstimator& estimator,
                                    const std::vector<NodeId>& seeds) {
  Aggregate agg;
  const double graph_mb =
      static_cast<double>(graph.MemoryBytes()) / (1024.0 * 1024.0);
  for (NodeId seed : seeds) {
    LocalClusterResult result = LocalCluster(graph, estimator, seed);
    agg.avg_ms += result.total_ms;
    agg.avg_conductance += result.conductance;
    agg.avg_mem_mb +=
        graph_mb + static_cast<double>(result.stats.peak_bytes) / (1024.0 * 1024.0);
    agg.avg_walks += static_cast<double>(result.stats.num_walks);
    agg.avg_pushes += static_cast<double>(result.stats.push_operations);
    agg.avg_support += static_cast<double>(result.support_size);
    ++agg.queries;
  }
  if (agg.queries > 0) {
    const double q = agg.queries;
    agg.avg_ms /= q;
    agg.avg_conductance /= q;
    agg.avg_mem_mb /= q;
    agg.avg_walks /= q;
    agg.avg_pushes /= q;
    agg.avg_support /= q;
  }
  return agg;
}

/// Large-graph presets for the scaling benchmarks (--graph-scale=NAME):
/// deterministic R-MAT power-law graphs restricted to their largest
/// component. "small" reproduces the quick twitter stand-in (the graph the
/// historical BENCH_*.json rows were measured on); "medium" crosses the
/// million-edge line; "large" is the 10M+-edge preset the serve-scaling
/// gate runs on.
///
///   small   R-MAT scale 14, avg-deg 32  ->  ~12.5k nodes / ~213k edges
///   medium  R-MAT scale 17, avg-deg 18  ->  ~80k nodes   / ~1.09M edges
///   large   R-MAT scale 20, avg-deg 22  ->  ~592k nodes  / ~10.9M edges
inline const std::vector<std::string>& GraphScaleNames() {
  static const std::vector<std::string> names = {"small", "medium", "large"};
  return names;
}

inline Dataset MakeScaledGraph(const std::string& scale_name, uint64_t seed) {
  uint32_t rmat_scale = 0;
  double avg_degree = 0.0;
  if (scale_name == "small") {
    rmat_scale = 14;
    avg_degree = 32.0;
  } else if (scale_name == "medium") {
    rmat_scale = 17;
    avg_degree = 18.0;
  } else if (scale_name == "large") {
    rmat_scale = 20;
    avg_degree = 22.0;
  } else {
    std::fprintf(stderr,
                 "unknown --graph-scale \"%s\" (available: small, medium, "
                 "large)\n",
                 scale_name.c_str());
    std::exit(1);
  }
  Dataset dataset;
  dataset.name = "rmat-" + scale_name;
  dataset.paper_name = "R-MAT scaling preset";
  dataset.graph = RestrictToLargestComponent(Rmat(rmat_scale, avg_degree, seed));
  return dataset;
}

/// Loads (mmap) or generates+saves one --graph-scale preset graph. The
/// cache file is the v2 binary CSR snapshot, so a cache hit exercises the
/// production mmap loader; a generated graph is saved back so the next run
/// (and the CI cache) reuses it. Shared by bench_serve_scaling and
/// bench_walk_kernel, which deliberately use the same cache keys.
inline Graph PrepareScaledGraph(const std::string& size_name,
                                const std::string& cache_dir, uint64_t seed) {
  const std::string cache_path =
      cache_dir.empty() ? ""
                        : cache_dir + "/scaling-" + size_name + "-v2.bin";
  if (!cache_path.empty()) {
    auto mapped = MapBinary(cache_path);
    if (mapped.ok()) {
      std::printf("  %s: mmap'd cached snapshot %s\n", size_name.c_str(),
                  cache_path.c_str());
      return std::move(mapped).value();
    }
  }
  WallTimer timer;
  Dataset dataset = MakeScaledGraph(size_name, seed);
  std::printf("  %s: generated in %.1fs\n", size_name.c_str(),
              timer.ElapsedSeconds());
  if (!cache_path.empty()) {
    const Status saved = SaveBinary(dataset.graph, cache_path);
    if (saved.ok()) {
      std::printf("  %s: snapshot cached to %s\n", size_name.c_str(),
                  cache_path.c_str());
    } else {
      std::fprintf(stderr, "  %s: cache write failed: %s\n", size_name.c_str(),
                   saved.ToString().c_str());
    }
  }
  return std::move(dataset.graph);
}

/// Prints the standard dataset banner.
inline void PrintDatasetBanner(const Dataset& dataset) {
  std::printf("\n### %s (stand-in for %s): n=%s m=%s avg-deg=%.2f\n",
              dataset.name.c_str(), dataset.paper_name.c_str(),
              FmtCount(dataset.graph.NumNodes()).c_str(),
              FmtCount(dataset.graph.NumEdges()).c_str(),
              dataset.graph.AverageDegree());
}

/// One point of an algorithm/parameter sweep (a marker in Figures 4/5/7/8).
struct SweepPoint {
  std::string algorithm;
  std::string param;  // human-readable parameter setting
  Aggregate agg;
};

/// Which algorithms and parameter grids a sweep covers. The defaults mirror
/// Section 7.4; quick mode trims the most expensive grid points.
struct SweepSpec {
  double t = 5.0;
  double p_f = 1e-6;
  double eps_r = 0.5;
  /// delta values for Monte-Carlo / TEA / TEA+, as multiples of 1/n.
  std::vector<double> delta_over_n = {20.0, 2.0, 0.2};
  /// eps_a values for HK-Relax.
  std::vector<double> hk_relax_eps = {1e-3, 1e-4, 1e-5};
  /// eps values for ClusterHKPR.
  std::vector<double> cluster_hkpr_eps = {0.2, 0.1, 0.05};
  /// Iteration counts for CRD.
  std::vector<uint32_t> crd_iterations = {7, 10, 15};
  /// Locality values for SimpleLocal.
  std::vector<double> simple_local_locality = {0.01, 0.02, 0.05};
  /// Cap on ClusterHKPR walks (the paper omits the hour-long points).
  uint64_t cluster_hkpr_max_walks = 30'000'000;
  bool include_monte_carlo = true;
  bool include_cluster_hkpr = true;
  bool include_hk_relax = true;
  bool include_tea = true;
  bool include_tea_plus = true;
  bool include_simple_local = false;  // paper: DBLP/Youtube only (too slow)
  bool include_crd = false;           // paper: small graphs only
};

/// Runs the Section 7.4 style sweep on one graph. Implemented in the
/// binaries' shared header so that Figures 4, 5, 7 and 8/9 print identical
/// semantics.
std::vector<SweepPoint> RunAlgorithmSweep(const Graph& graph,
                                          const std::vector<NodeId>& seeds,
                                          const SweepSpec& spec,
                                          uint64_t rng_seed);

}  // namespace hkpr::bench

#endif  // HKPR_BENCH_BENCH_COMMON_H_
