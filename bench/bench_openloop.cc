// Open-loop latency of the socket frontend under fixed offered load
// (extension).
//
// The closed-loop benches (bench_service, bench_serve_scaling) measure
// throughput with clients that wait for each response before sending the
// next query — which silently stops offering load exactly when the
// server stalls, hiding tail latency (coordinated omission). This bench
// drives the real TCP frontend (net/socket_server.h) the way production
// traffic arrives: a Poisson process at a fixed offered rate whose
// arrival times are drawn up front, with every query's latency measured
// from its *intended* send time, not from when the sender finally got
// around to write()ing it. A server that falls behind therefore pays for
// the queueing delay it caused — the open-loop p99 is the number a
// latency SLO is written against.
//
// Method: a powerlaw-cluster graph is published into a MultiGraphService
// and served by an in-process SocketServer on an ephemeral loopback
// port. C connections each get a pre-drawn schedule of intended send
// times (exponential inter-arrivals at rate R/C per connection); a
// sender thread per connection sleeps until each intended time and
// writes "query <seed>", never waiting for responses, while a receiver
// thread matches the in-order response lines against the FIFO of
// intended times. The sweep first calibrates capacity with a short
// closed-loop burst, then offers fixed fractions of it (0.25/0.5/0.75/
// 1.0 by default), so the emitted curve shows the latency knee as
// offered load approaches capacity. Each rate point runs an untimed
// closed-loop warmup over its own seed stream first, so every row
// measures steady-state serving — not the first-touch computes that
// would otherwise land entirely on the sweep's first row.
//
// Flags: --json=PATH writes BENCH_openloop.json-style output
// ({"rows": [{offered_qps, achieved_qps, p50_ms, p95_ms, p99_ms, ...}]});
// --smoke shrinks the sweep to a seconds-long CI run; --nodes=N,
// --connections=C, --queries=N (per rate point), --rng=S override the
// workload shape.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "net/command_processor.h"
#include "net/socket_server.h"
#include "service/multi_graph_service.h"

using namespace hkpr;

namespace {

using Clock = std::chrono::steady_clock;

struct OpenLoopConfig {
  uint32_t nodes = 20000;
  size_t connections = 4;
  uint32_t queries_per_rate = 2000;
  uint64_t rng_seed = 42;
  bool smoke = false;
  std::string json_path;
};

struct RateRow {
  double offered_qps = 0.0;
  double achieved_qps = 0.0;
  size_t connections = 0;
  uint32_t queries = 0;
  uint32_t errors = 0;
  double seconds = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

/// One client connection to the server's loopback port.
int ConnectTo(uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return -1;
  }
  return fd;
}

/// Reads '\n'-terminated lines off a blocking socket.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// False on EOF/error.
  bool Next(std::string* line) {
    while (true) {
      const size_t newline = buf_.find('\n');
      if (newline != std::string::npos) {
        line->assign(buf_, 0, newline);
        buf_.erase(0, newline + 1);
        return true;
      }
      char chunk[16 << 10];
      const ssize_t n = read(fd_, chunk, sizeof(chunk));
      if (n <= 0) return false;
      buf_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_;
  std::string buf_;
};

/// Short closed-loop burst to estimate the serving capacity the open-loop
/// sweep scales its offered rates from.
double CalibrateCapacityQps(uint16_t port, const OpenLoopConfig& config,
                            uint32_t num_nodes) {
  const uint32_t queries =
      config.smoke ? 200 : std::max<uint32_t>(500, config.queries_per_rate / 4);
  std::vector<std::thread> threads;
  std::atomic<uint32_t> completed{0};
  const Clock::time_point start = Clock::now();
  for (size_t c = 0; c < config.connections; ++c) {
    threads.emplace_back([&, c] {
      const int fd = ConnectTo(port);
      if (fd < 0) return;
      LineReader reader(fd);
      std::mt19937_64 rng(config.rng_seed * 977 + c);
      std::uniform_int_distribution<uint32_t> seed_dist(0, num_nodes - 1);
      const uint32_t mine = queries / static_cast<uint32_t>(config.connections);
      std::string line;
      for (uint32_t i = 0; i < mine; ++i) {
        char buf[64];
        const int len =
            std::snprintf(buf, sizeof(buf), "query %u\n", seed_dist(rng));
        if (write(fd, buf, static_cast<size_t>(len)) != len) break;
        if (!reader.Next(&line)) break;
        completed.fetch_add(1, std::memory_order_relaxed);
      }
      close(fd);
    });
  }
  for (std::thread& t : threads) t.join();
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  if (seconds <= 0.0 || completed.load() == 0) return 1000.0;
  return static_cast<double>(completed.load()) / seconds;
}

/// One open-loop pass at `offered_qps`: Poisson arrivals split across the
/// connections, latency measured from intended send time.
RateRow RunRate(uint16_t port, const OpenLoopConfig& config,
                uint32_t num_nodes, double offered_qps) {
  RateRow row;
  row.offered_qps = offered_qps;
  row.connections = config.connections;

  const uint32_t total = config.queries_per_rate;
  const size_t conns = config.connections;

  // Draw every connection's arrival schedule up front so the sweep is
  // reproducible and the sender loop does no RNG work.
  std::vector<std::vector<double>> schedules(conns);  // seconds from start
  std::vector<std::vector<uint32_t>> seeds(conns);
  {
    std::mt19937_64 rng(config.rng_seed);
    std::uniform_int_distribution<uint32_t> seed_dist(0, num_nodes - 1);
    const double per_conn_rate = offered_qps / static_cast<double>(conns);
    std::exponential_distribution<double> gap(per_conn_rate);
    for (size_t c = 0; c < conns; ++c) {
      double at = 0.0;
      const uint32_t mine = total / static_cast<uint32_t>(conns);
      schedules[c].reserve(mine);
      seeds[c].reserve(mine);
      for (uint32_t i = 0; i < mine; ++i) {
        at += gap(rng);
        schedules[c].push_back(at);
        seeds[c].push_back(seed_dist(rng));
      }
    }
  }

  // Untimed warmup: compute every seed of this pass once, closed-loop,
  // before the clock starts. Each rate row replays the same seed stream
  // (the schedule rng is reseeded per row), so without this the sweep's
  // first row alone paid the first-touch computes the later rows served
  // from cache — its p50 measured cold-start pollution (~30x the second
  // row's), not queueing at the offered rate.
  {
    const int fd = ConnectTo(port);
    if (fd >= 0) {
      LineReader reader(fd);
      std::string line;
      for (size_t c = 0; c < conns; ++c) {
        for (const uint32_t seed : seeds[c]) {
          char buf[64];
          const int len = std::snprintf(buf, sizeof(buf), "query %u\n", seed);
          if (write(fd, buf, static_cast<size_t>(len)) != len) break;
          if (!reader.Next(&line)) break;
        }
      }
      close(fd);
    }
  }

  std::mutex results_mu;
  std::vector<double> latencies_ms;
  uint32_t errors = 0;
  std::atomic<uint32_t> completed{0};

  const Clock::time_point start = Clock::now();
  std::vector<std::thread> threads;
  for (size_t c = 0; c < conns; ++c) {
    threads.emplace_back([&, c] {
      const int fd = ConnectTo(port);
      if (fd < 0) return;

      // Senders push each query's intended time before writing it; the
      // receiver pops in FIFO order — per-connection responses are
      // strictly in order, so the fronts always match.
      std::mutex inflight_mu;
      std::deque<Clock::time_point> inflight;
      std::atomic<bool> done_sending{false};

      std::thread receiver([&] {
        LineReader reader(fd);
        std::string line;
        std::vector<double> local_ms;
        uint32_t local_errors = 0;
        local_ms.reserve(schedules[c].size());
        while (true) {
          bool empty;
          {
            std::lock_guard<std::mutex> lock(inflight_mu);
            empty = inflight.empty();
          }
          if (empty) {
            if (done_sending.load()) break;
            std::this_thread::sleep_for(std::chrono::microseconds(50));
            continue;
          }
          if (!reader.Next(&line)) break;
          Clock::time_point intended;
          {
            std::lock_guard<std::mutex> lock(inflight_mu);
            intended = inflight.front();
            inflight.pop_front();
          }
          // Latency from the *intended* send time: queueing the server
          // (or a blocked sender) caused is charged to the query.
          local_ms.push_back(
              std::chrono::duration<double, std::milli>(Clock::now() -
                                                        intended)
                  .count());
          if (line.compare(0, 3, "err") == 0) ++local_errors;
          completed.fetch_add(1, std::memory_order_relaxed);
        }
        std::lock_guard<std::mutex> lock(results_mu);
        latencies_ms.insert(latencies_ms.end(), local_ms.begin(),
                            local_ms.end());
        errors += local_errors;
      });

      for (size_t i = 0; i < schedules[c].size(); ++i) {
        const Clock::time_point intended =
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(schedules[c][i]));
        std::this_thread::sleep_until(intended);
        {
          std::lock_guard<std::mutex> lock(inflight_mu);
          inflight.push_back(intended);
        }
        char buf[64];
        const int len =
            std::snprintf(buf, sizeof(buf), "query %u\n", seeds[c][i]);
        if (write(fd, buf, static_cast<size_t>(len)) != len) break;
      }
      done_sending.store(true);
      receiver.join();
      close(fd);
    });
  }
  for (std::thread& t : threads) t.join();
  row.seconds = std::chrono::duration<double>(Clock::now() - start).count();

  std::sort(latencies_ms.begin(), latencies_ms.end());
  const auto pct = [&](double q) {
    if (latencies_ms.empty()) return 0.0;
    const size_t idx = std::min(
        latencies_ms.size() - 1,
        static_cast<size_t>(q * static_cast<double>(latencies_ms.size())));
    return latencies_ms[idx];
  };
  row.queries = static_cast<uint32_t>(latencies_ms.size());
  row.errors = errors;
  row.achieved_qps =
      row.seconds > 0.0 ? static_cast<double>(completed.load()) / row.seconds
                        : 0.0;
  row.p50_ms = pct(0.50);
  row.p95_ms = pct(0.95);
  row.p99_ms = pct(0.99);
  row.max_ms = latencies_ms.empty() ? 0.0 : latencies_ms.back();
  return row;
}

void WriteJson(const std::string& path, uint32_t nodes, uint64_t edges,
               const OpenLoopConfig& config, double capacity_qps,
               const std::vector<RateRow>& rows) {
  std::FILE* f = path.empty() ? stdout : std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"openloop_socket_latency\",\n");
  std::fprintf(f,
               "  \"dataset\": \"powerlaw-cluster\",\n  \"nodes\": %u,\n"
               "  \"edges\": %llu,\n",
               nodes, static_cast<unsigned long long>(edges));
  std::fprintf(f,
               "  \"workload\": \"poisson open-loop over TCP, %zu "
               "connections, latency from intended send time\",\n",
               config.connections);
  std::fprintf(f, "  \"capacity_qps\": %.1f,\n", capacity_qps);
  std::fprintf(f, "  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const RateRow& r = rows[i];
    std::fprintf(
        f,
        "    {\"offered_qps\": %.1f, \"achieved_qps\": %.1f, "
        "\"connections\": %zu, \"queries\": %u, \"errors\": %u, "
        "\"seconds\": %.6f, \"p50_ms\": %.3f, \"p95_ms\": %.3f, "
        "\"p99_ms\": %.3f, \"max_ms\": %.3f}%s\n",
        r.offered_qps, r.achieved_qps, r.connections, r.queries, r.errors,
        r.seconds, r.p50_ms, r.p95_ms, r.p99_ms, r.max_ms,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  if (f != stdout) std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  OpenLoopConfig config;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--smoke") == 0) {
      config.smoke = true;
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      config.json_path = arg + 7;
    } else if (std::strncmp(arg, "--nodes=", 8) == 0) {
      config.nodes = static_cast<uint32_t>(std::strtoul(arg + 8, nullptr, 10));
    } else if (std::strncmp(arg, "--connections=", 14) == 0) {
      config.connections =
          static_cast<size_t>(std::strtoul(arg + 14, nullptr, 10));
    } else if (std::strncmp(arg, "--queries=", 10) == 0) {
      config.queries_per_rate =
          static_cast<uint32_t>(std::strtoul(arg + 10, nullptr, 10));
    } else if (std::strncmp(arg, "--rng=", 6) == 0) {
      config.rng_seed = std::strtoull(arg + 6, nullptr, 10);
    } else {
      std::printf("usage: %s [--smoke] [--json=PATH] [--nodes=N] "
                  "[--connections=C] [--queries=N] [--rng=S]\n",
                  argv[0]);
      return std::strcmp(arg, "--help") == 0 ? 0 : 1;
    }
  }
  if (config.smoke) {
    config.nodes = std::min<uint32_t>(config.nodes, 5000);
    config.queries_per_rate = std::min<uint32_t>(config.queries_per_rate, 400);
    config.connections = std::min<size_t>(config.connections, 2);
  }
  if (config.connections == 0) config.connections = 1;

  GraphStore store;
  store.Publish("default", PowerlawCluster(config.nodes, 4, 0.3,
                                           config.rng_seed));
  const GraphSnapshot snapshot = store.Get("default");
  const uint32_t num_nodes = snapshot.graph->NumNodes();
  const uint64_t num_edges = snapshot.graph->NumEdges();

  ApproxParams params;
  params.t = 5.0;
  params.eps_r = 0.5;
  params.delta = 1.0 / static_cast<double>(num_nodes);
  params.p_f = 1e-6;

  MultiGraphOptions options;
  options.service.cache_capacity = 4096;
  options.service.backend.name = "tea+";
  MultiGraphService service(store, params, config.rng_seed, options);

  TenantRegistry tenants;
  CommandProcessor processor(store, service, tenants, params, "default");

  SocketServerOptions net;
  net.port = 0;  // ephemeral
  net.num_executors = std::max<size_t>(2, config.connections);
  SocketServer server(processor, net);
  if (!server.Start()) {
    std::fprintf(stderr, "cannot start socket server: %s\n",
                 server.error().c_str());
    return 1;
  }

  std::printf("# open-loop socket bench: n=%u m=%llu connections=%zu "
              "queries/rate=%u port=%u\n",
              num_nodes, static_cast<unsigned long long>(num_edges),
              config.connections, config.queries_per_rate, server.port());

  const double capacity = CalibrateCapacityQps(server.port(), config,
                                               num_nodes);
  std::printf("# calibrated closed-loop capacity: %.0f qps\n", capacity);

  const std::vector<double> fractions =
      config.smoke ? std::vector<double>{0.5, 1.0}
                   : std::vector<double>{0.25, 0.5, 0.75, 1.0};
  std::vector<RateRow> rows;
  std::printf("%12s %12s %8s %8s %8s %8s %8s\n", "offered_qps",
              "achieved_qps", "queries", "p50_ms", "p95_ms", "p99_ms",
              "max_ms");
  for (const double fraction : fractions) {
    const double offered = std::max(10.0, capacity * fraction);
    RateRow row = RunRate(server.port(), config, num_nodes, offered);
    std::printf("%12.1f %12.1f %8u %8.3f %8.3f %8.3f %8.3f\n",
                row.offered_qps, row.achieved_qps, row.queries, row.p50_ms,
                row.p95_ms, row.p99_ms, row.max_ms);
    rows.push_back(row);
  }
  server.Stop();

  if (!config.json_path.empty()) {
    WriteJson(config.json_path, num_nodes, num_edges, config, capacity, rows);
  }
  return 0;
}
