#include "bench_common.h"

#include <functional>

#include "baselines/cluster_hkpr.h"
#include "baselines/crd.h"
#include "baselines/hk_relax.h"
#include "baselines/simple_local.h"
#include "hkpr/monte_carlo.h"
#include "hkpr/tea.h"
#include "hkpr/tea_plus.h"

namespace hkpr::bench {

namespace {

Aggregate RunFlowAlgorithm(const Graph& graph,
                           const std::vector<NodeId>& seeds,
                           const std::function<FlowClusterResult(NodeId)>& run) {
  Aggregate agg;
  const double graph_mb =
      static_cast<double>(graph.MemoryBytes()) / (1024.0 * 1024.0);
  for (NodeId seed : seeds) {
    WallTimer timer;
    FlowClusterResult result = run(seed);
    agg.avg_ms += timer.ElapsedMillis();
    agg.avg_conductance += result.conductance;
    agg.avg_mem_mb += graph_mb;
    agg.avg_support += static_cast<double>(result.cluster.size());
    ++agg.queries;
  }
  if (agg.queries > 0) {
    const double q = agg.queries;
    agg.avg_ms /= q;
    agg.avg_conductance /= q;
    agg.avg_mem_mb /= q;
    agg.avg_support /= q;
  }
  return agg;
}

}  // namespace

std::vector<SweepPoint> RunAlgorithmSweep(const Graph& graph,
                                          const std::vector<NodeId>& seeds,
                                          const SweepSpec& spec,
                                          uint64_t rng_seed) {
  std::vector<SweepPoint> points;
  const double inv_n = 1.0 / static_cast<double>(graph.NumNodes());

  const auto approx_params = [&](double delta_mult) {
    ApproxParams params;
    params.t = spec.t;
    params.eps_r = spec.eps_r;
    params.delta = delta_mult * inv_n;
    params.p_f = spec.p_f;
    return params;
  };

  if (spec.include_monte_carlo) {
    for (double mult : spec.delta_over_n) {
      MonteCarloEstimator est(graph, approx_params(mult), rng_seed + 11);
      points.push_back({"Monte-Carlo", "delta=" + FmtSci(mult * inv_n),
                        RunLocalClustering(graph, est, seeds)});
    }
  }
  if (spec.include_cluster_hkpr) {
    for (double eps : spec.cluster_hkpr_eps) {
      ClusterHkprOptions options;
      options.t = spec.t;
      options.eps = eps;
      options.max_walks = spec.cluster_hkpr_max_walks;
      ClusterHkprEstimator est(graph, options, rng_seed + 12);
      points.push_back({"ClusterHKPR", "eps=" + FmtF(eps, 3),
                        RunLocalClustering(graph, est, seeds)});
    }
  }
  if (spec.include_hk_relax) {
    for (double eps_a : spec.hk_relax_eps) {
      HkRelaxOptions options;
      options.t = spec.t;
      options.eps_a = eps_a;
      HkRelaxEstimator est(graph, options);
      points.push_back({"HK-Relax", "eps_a=" + FmtSci(eps_a),
                        RunLocalClustering(graph, est, seeds)});
    }
  }
  if (spec.include_tea) {
    for (double mult : spec.delta_over_n) {
      TeaEstimator est(graph, approx_params(mult), rng_seed + 13);
      points.push_back({"TEA", "delta=" + FmtSci(mult * inv_n),
                        RunLocalClustering(graph, est, seeds)});
    }
  }
  if (spec.include_tea_plus) {
    for (double mult : spec.delta_over_n) {
      TeaPlusEstimator est(graph, approx_params(mult), rng_seed + 14);
      points.push_back({"TEA+", "delta=" + FmtSci(mult * inv_n),
                        RunLocalClustering(graph, est, seeds)});
    }
  }
  if (spec.include_simple_local) {
    for (double locality : spec.simple_local_locality) {
      Rng rng(rng_seed + 15);
      SimpleLocalOptions options;
      options.locality = locality;
      points.push_back(
          {"SimpleLocal", "delta=" + FmtF(locality, 3),
           RunFlowAlgorithm(graph, seeds, [&](NodeId seed) {
             return SimpleLocal(graph, seed, options, rng);
           })});
    }
  }
  if (spec.include_crd) {
    for (uint32_t iterations : spec.crd_iterations) {
      CrdOptions options;
      options.iterations = iterations;
      points.push_back(
          {"CRD", "iters=" + std::to_string(iterations),
           RunFlowAlgorithm(graph, seeds, [&](NodeId seed) {
             return Crd(graph, seed, options);
           })});
    }
  }
  return points;
}

}  // namespace hkpr::bench
