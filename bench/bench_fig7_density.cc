// Figure 7: sensitivity to the density of the subgraph the seed comes from.
//
// Paper protocol: sample 250 random subgraphs, sort by density, draw seed
// sets from the high/medium/low-density strata, and re-run the Figure 4
// sweep per stratum on DBLP, Youtube, PLC and Orkut. Expected shape:
// low-density seeds produce higher conductance everywhere; push-based
// methods (HK-Relax, TEA, TEA+) get faster on high-density seeds while the
// pure walk methods barely move.

#include <cstdio>

#include "bench_common.h"

using namespace hkpr;
using namespace hkpr::bench;

int main(int argc, char** argv) {
  const BenchConfig config = BenchConfig::FromArgs(argc, argv);
  std::printf("== Figure 7: effect of subgraph density ==\n");
  std::printf("t=5, p_f=1e-6, eps_r=0.5, %u seeds/stratum\n",
              config.num_seeds);

  const std::vector<std::string> datasets = {"dblp", "youtube", "plc",
                                             "orkut"};
  const uint32_t num_subgraphs = config.full ? 250 : 150;
  // The density effect needs more statistical power than the other figures:
  // use twice the usual seed count per stratum and small balls (sharper
  // density contrast between strata).
  const uint32_t seeds_per_stratum = 2 * config.num_seeds;

  for (const std::string& name : datasets) {
    Dataset dataset = MakeDataset(name, config.scale, config.rng_seed);
    PrintDatasetBanner(dataset);
    Rng rng(config.rng_seed + 7);
    const DensityStratifiedSeeds strata = MakeDensityStratifiedSeeds(
        dataset.graph, num_subgraphs, /*ball_size=*/40, seeds_per_stratum,
        rng);

    SweepSpec spec;
    spec.delta_over_n = {2.0, 0.2};
    spec.hk_relax_eps = {1e-4, 1e-5};
    spec.cluster_hkpr_eps = {0.1, 0.05};

    const std::vector<std::pair<std::string, const std::vector<NodeId>*>>
        strata_list = {{"high-density", &strata.high},
                       {"medium-density", &strata.medium},
                       {"low-density", &strata.low}};
    for (const auto& [stratum_name, seeds] : strata_list) {
      if (seeds->empty()) continue;
      std::printf("\n-- %s seeds --\n", stratum_name.c_str());
      TablePrinter table(
          {"algorithm", "parameter", "conductance", "time"});
      for (const SweepPoint& point : RunAlgorithmSweep(
               dataset.graph, *seeds, spec, config.rng_seed)) {
        table.AddRow({point.algorithm, point.param,
                      FmtF(point.agg.avg_conductance),
                      FmtMs(point.agg.avg_ms)});
      }
      table.Print();
    }
  }
  return 0;
}
