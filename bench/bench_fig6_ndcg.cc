// Figure 6: running time vs NDCG of the normalized-HKPR ranking.
//
// Paper protocol: ground truth from the power method; four datasets (DBLP,
// Youtube, PLC, Orkut); per-algorithm error-parameter sweeps. Expected
// shape: TEA+ reaches any NDCG level fastest; TEA 2-8x slower; HK-Relax
// degrades towards ClusterHKPR/Monte-Carlo on PLC and Orkut.

#include <cstdio>
#include <memory>
#include <vector>

#include "baselines/cluster_hkpr.h"
#include "baselines/hk_relax.h"
#include "bench_common.h"
#include "clustering/metrics.h"
#include "hkpr/monte_carlo.h"
#include "hkpr/power_method.h"
#include "hkpr/tea.h"
#include "hkpr/tea_plus.h"

using namespace hkpr;
using namespace hkpr::bench;

namespace {

constexpr size_t kNdcgDepth = 200;

struct NdcgPoint {
  std::string algorithm;
  std::string param;
  double avg_ms = 0.0;
  double avg_ndcg = 0.0;
};

NdcgPoint Run(const Graph& graph, HkprEstimator& est, const std::string& param,
              const std::vector<NodeId>& seeds,
              const std::vector<std::vector<double>>& exact_normalized) {
  NdcgPoint point;
  point.algorithm = std::string(est.name());
  point.param = param;
  for (size_t i = 0; i < seeds.size(); ++i) {
    WallTimer timer;
    SparseVector rho = est.Estimate(seeds[i]);
    point.avg_ms += timer.ElapsedMillis();
    point.avg_ndcg += NdcgAtK(graph, rho, exact_normalized[i], kNdcgDepth);
  }
  point.avg_ms /= static_cast<double>(seeds.size());
  point.avg_ndcg /= static_cast<double>(seeds.size());
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchConfig config = BenchConfig::FromArgs(argc, argv);
  std::printf("== Figure 6: running time vs NDCG@%zu ==\n", kNdcgDepth);
  std::printf("t=5, p_f=1e-6, eps_r=0.5, %u seeds/dataset, power-method "
              "ground truth\n",
              config.num_seeds);

  const std::vector<std::string> datasets = {"dblp", "youtube", "plc",
                                             "orkut"};
  for (const std::string& name : datasets) {
    Dataset dataset = MakeDataset(name, config.scale, config.rng_seed);
    PrintDatasetBanner(dataset);
    Rng rng(config.rng_seed);
    const std::vector<NodeId> seeds =
        UniformSeeds(dataset.graph, config.num_seeds, rng);

    // Ground truth per seed.
    HeatKernel kernel(5.0);
    std::vector<std::vector<double>> exact_normalized;
    exact_normalized.reserve(seeds.size());
    for (NodeId seed : seeds) {
      std::vector<double> exact = ExactHkpr(dataset.graph, kernel, seed);
      NormalizeByDegree(dataset.graph, exact);
      exact_normalized.push_back(std::move(exact));
    }

    const double inv_n = 1.0 / static_cast<double>(dataset.graph.NumNodes());
    std::vector<double> delta_mults = {20.0, 2.0, 0.2};
    std::vector<double> relax_eps = {1e-3, 1e-4, 1e-5};
    std::vector<double> chkpr_eps = {0.2, 0.1, 0.05};
    if (config.full) {
      delta_mults.push_back(0.02);
      relax_eps.push_back(1e-6);
      chkpr_eps.push_back(0.02);
    }

    TablePrinter table({"algorithm", "parameter", "NDCG", "time"});
    const auto add = [&](const NdcgPoint& p) {
      table.AddRow({p.algorithm, p.param, FmtF(p.avg_ndcg), FmtMs(p.avg_ms)});
    };

    for (double mult : delta_mults) {
      ApproxParams params;
      params.delta = mult * inv_n;
      params.p_f = 1e-6;
      MonteCarloEstimator mc(dataset.graph, params, config.rng_seed + 1);
      add(Run(dataset.graph, mc, "delta=" + FmtSci(params.delta), seeds,
              exact_normalized));
    }
    for (double eps : chkpr_eps) {
      ClusterHkprOptions options;
      options.eps = eps;
      options.max_walks = 30'000'000;
      ClusterHkprEstimator est(dataset.graph, options, config.rng_seed + 2);
      add(Run(dataset.graph, est, "eps=" + FmtF(eps, 3), seeds,
              exact_normalized));
    }
    for (double eps_a : relax_eps) {
      HkRelaxOptions options;
      options.eps_a = eps_a;
      HkRelaxEstimator est(dataset.graph, options);
      add(Run(dataset.graph, est, "eps_a=" + FmtSci(eps_a), seeds,
              exact_normalized));
    }
    for (double mult : delta_mults) {
      ApproxParams params;
      params.delta = mult * inv_n;
      params.p_f = 1e-6;
      TeaEstimator est(dataset.graph, params, config.rng_seed + 3);
      add(Run(dataset.graph, est, "delta=" + FmtSci(params.delta), seeds,
              exact_normalized));
    }
    for (double mult : delta_mults) {
      ApproxParams params;
      params.delta = mult * inv_n;
      params.p_f = 1e-6;
      TeaPlusEstimator est(dataset.graph, params, config.rng_seed + 4);
      add(Run(dataset.graph, est, "delta=" + FmtSci(params.delta), seeds,
              exact_normalized));
    }
    table.Print();
  }
  return 0;
}
