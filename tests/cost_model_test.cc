// Tests for the online cost model and learned router (hkpr/cost_model.h):
// feature mapping, convergence to the per-degree-class oracle on synthetic
// RoutingEvent streams with a known cost crossover, rule fallback while
// undertrained, scale-decay adaptation after a simulated hot-swap, and the
// learned policy's end-to-end integration through MultiGraphService
// (DrainAllRoutingEvents / TrainRouters / LearnedRouterFor).

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "hkpr/backend.h"
#include "hkpr/cost_model.h"
#include "hkpr/router.h"
#include "service/graph_store.h"
#include "service/multi_graph_service.h"
#include "service/telemetry.h"

namespace hkpr {
namespace {

ApproxParams EventParams() {
  ApproxParams p;
  p.t = 5.0;
  p.eps_r = 0.5;
  p.delta = 1e-3;
  p.p_f = 1e-4;
  return p;
}

constexpr uint32_t kNodes = 10000;
constexpr uint64_t kEdges = 100000;  // avg degree 2m/n = 20

/// One synthetic compute event: `backend` served a seed of degree
/// `seed_degree` in `compute_us` microseconds on an (n, m) graph.
RoutingEvent MakeEvent(uint32_t seed_degree, const std::string& backend,
                       double compute_us, uint32_t num_nodes = kNodes,
                       uint64_t num_edges = kEdges) {
  RoutingEvent e;
  e.seed = 1;
  e.seed_degree = seed_degree;
  e.num_nodes = num_nodes;
  e.num_edges = num_edges;
  e.avg_degree =
      num_nodes == 0
          ? 0.0
          : 2.0 * static_cast<double>(num_edges) / static_cast<double>(num_nodes);
  e.params = EventParams();
  e.backend_id = StableBackendId(backend);
  e.routed = 1;
  e.cache = static_cast<uint8_t>(CacheOutcome::kMiss);
  e.compute_begin_us = 100;
  e.compute_end_us = 100 + static_cast<uint64_t>(compute_us);
  e.complete_us = e.compute_end_us + 10;
  return e;
}

RoutingQuery QueryOfDegree(uint32_t seed_degree, uint32_t num_nodes = kNodes,
                           uint64_t num_edges = kEdges) {
  RoutingQuery q;
  q.seed = 1;
  q.seed_degree = seed_degree;
  q.num_nodes = num_nodes;
  q.num_edges = num_edges;
  q.avg_degree =
      2.0 * static_cast<double>(num_edges) / static_cast<double>(num_nodes);
  q.params = EventParams();
  return q;
}

/// The synthetic phase-1 cost surface with a known crossover: TEA+ costs
/// 100 + 5*degree us (cheap on low-degree seeds), HK-Relax a flat
/// 1000 us. Oracle: degree < 180 -> tea+, above -> hk-relax. Note the
/// rule router says the *opposite* for low-degree seeds (its low-degree
/// rule routes them to hk-relax), so converging to this oracle is an
/// observable distribution shift away from the rule prior.
std::vector<RoutingEvent> Phase1Batch() {
  std::vector<RoutingEvent> events;
  for (int rep = 0; rep < 4; ++rep) {
    for (uint32_t deg = 1; deg <= 500; deg += 10) {
      events.push_back(MakeEvent(deg, "tea+", 100.0 + 5.0 * deg));
      events.push_back(MakeEvent(deg, "hk-relax", 1000.0));
    }
  }
  return events;
}

LearnedRouterOptions TwoBackendOptions() {
  LearnedRouterOptions options;
  options.candidates = {"tea+", "hk-relax"};
  options.explore_epsilon = 0.0;  // deterministic decisions
  return options;
}

TEST(CostModelTest, FeatureMapIsLogLinear) {
  const ApproxParams params = EventParams();
  const CostFeatures x = CostFeaturesOf(32, kEdges, params);
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], std::log1p(32.0));
  EXPECT_DOUBLE_EQ(x[2], params.t);
  EXPECT_DOUBLE_EQ(x[3], std::log1p(static_cast<double>(kEdges)));
  EXPECT_DOUBLE_EQ(x[4], std::log(params.eps_r));

  // Event and query overloads agree with the raw-field overload.
  const RoutingEvent event = MakeEvent(32, "tea+", 500.0);
  const RoutingQuery query = QueryOfDegree(32);
  EXPECT_EQ(CostFeaturesOf(event), x);
  EXPECT_EQ(CostFeaturesOf(query), x);
}

TEST(CostModelTest, IgnoresCacheHitsAndForeignBackends) {
  CostModel model({"tea+", "hk-relax"}, CostModelOptions{});

  RoutingEvent hit = MakeEvent(10, "tea+", 500.0);
  hit.cache = static_cast<uint8_t>(CacheOutcome::kHit);
  RoutingEvent coalesced = MakeEvent(10, "tea+", 500.0);
  coalesced.cache = static_cast<uint8_t>(CacheOutcome::kCoalesced);
  const RoutingEvent foreign = MakeEvent(10, "monte-carlo", 500.0);

  const std::vector<RoutingEvent> events = {hit, coalesced, foreign};
  model.Observe(events);
  const CostModelSnapshot snap = model.Snapshot();
  EXPECT_EQ(snap.events_observed, 0u);
  EXPECT_FALSE(model.trained());

  // A cache-disabled compute (kNone) does train.
  RoutingEvent none = MakeEvent(10, "tea+", 500.0);
  none.cache = static_cast<uint8_t>(CacheOutcome::kNone);
  const std::vector<RoutingEvent> compute = {none};
  model.Observe(compute);
  EXPECT_EQ(model.Snapshot().events_observed, 1u);
}

TEST(CostModelTest, P95PredictionExceedsMeanUnderNoise) {
  CostModel model({"tea+"}, CostModelOptions{});
  // Identical features, alternating costs: the fit's mean sits between
  // them and the residual sigma pushes the p95 above the mean.
  std::vector<RoutingEvent> events;
  for (int i = 0; i < 100; ++i) {
    events.push_back(MakeEvent(10, "tea+", i % 2 == 0 ? 800.0 : 1200.0));
  }
  model.Observe(events);
  const std::shared_ptr<const FittedCostModel> fitted = model.Current();
  ASSERT_EQ(fitted->backends.size(), 1u);
  const FittedBackendModel& fit = fitted->backends[0];
  EXPECT_TRUE(fit.trained);
  EXPECT_GT(fit.sigma, 0.0);
  const CostFeatures x = CostFeaturesOf(QueryOfDegree(10));
  const double mean = fit.PredictUs(x);
  EXPECT_GT(mean, 700.0);
  EXPECT_LT(mean, 1300.0);
  EXPECT_GT(fit.PredictP95Us(x, 1.645), mean);
}

TEST(LearnedRouterTest, ConvergesToOraclePerDegreeClass) {
  LearnedRouter router(TwoBackendOptions());
  EXPECT_FALSE(router.trained());

  const std::vector<RoutingEvent> events = Phase1Batch();
  router.Observe(events);
  ASSERT_TRUE(router.trained());

  // Low-degree seeds: oracle says tea+ (125 us vs 1000 us) — and the rule
  // prior says the opposite (degree 5 <= 0.5 * avg_degree 20 routes to
  // the push backend), so this is a genuinely learned decision.
  const RoutingQuery low = QueryOfDegree(5);
  EXPECT_EQ(router.Route(low), "tea+");
  EXPECT_EQ(RuleBasedRouter().Route(low), "hk-relax");

  // High-degree seeds: oracle says hk-relax (flat 1000 us vs 2600 us).
  const RoutingQuery high = QueryOfDegree(500);
  EXPECT_EQ(router.Route(high), "hk-relax");

  // Advise names the runner-up (never the primary) with a positive p95.
  const std::optional<HedgeAdvice> advice =
      router.Advise(low, StableBackendId("tea+"));
  ASSERT_TRUE(advice.has_value());
  EXPECT_EQ(advice->backend, "hk-relax");
  EXPECT_EQ(advice->backend_id, StableBackendId("hk-relax"));
  EXPECT_GT(advice->primary_p95_us, 0.0);

  // Prediction rows are ordered like the candidates and all trained.
  const std::vector<BackendPrediction> rows = router.Predict(low);
  ASSERT_EQ(rows.size(), 2u);
  for (const BackendPrediction& row : rows) {
    EXPECT_TRUE(row.trained) << row.backend;
    EXPECT_GT(row.cost_us, 0.0) << row.backend;
    EXPECT_GE(row.p95_us, row.cost_us) << row.backend;
  }
}

TEST(LearnedRouterTest, FallsBackToRulesUndertrained) {
  LearnedRouter router(TwoBackendOptions());

  // Only tea+ accumulates observations; hk-relax stays untrained, so
  // every decision must fall back to the rules.
  std::vector<RoutingEvent> only_tea;
  for (int i = 0; i < 100; ++i) {
    only_tea.push_back(MakeEvent(10 + i, "tea+", 500.0));
  }
  router.Observe(only_tea);
  EXPECT_FALSE(router.trained());
  EXPECT_EQ(router.ModelSnapshot().events_observed, 100u);

  const RuleBasedRouter rules;
  for (const uint32_t deg : {1u, 5u, 10u, 50u, 200u, 500u}) {
    const RoutingQuery query = QueryOfDegree(deg);
    EXPECT_EQ(router.Route(query), rules.Route(query)) << "degree " << deg;
  }
  // No hedge advice while undertrained.
  EXPECT_FALSE(router.Advise(QueryOfDegree(5), StableBackendId("tea+"))
                   .has_value());
}

TEST(LearnedRouterTest, AdaptsAfterScaleChange) {
  LearnedRouter router(TwoBackendOptions());
  router.Observe(std::vector<RoutingEvent>(Phase1Batch()));
  ASSERT_TRUE(router.trained());
  EXPECT_EQ(router.Route(QueryOfDegree(5)), "tea+");

  // Simulated hot-swap: 10x nodes, 100x edges, and a *flipped* cost
  // surface (tea+ flat 2000 us, hk-relax 100 + 5*degree). At degree 300
  // the new oracle says hk-relax (1600 us) while the rules say tea+
  // (degree 300 > half the new average degree 200 -> default backend).
  const uint32_t n2 = 10 * kNodes;
  const uint64_t m2 = 100 * kEdges;

  // The first small new-scale batch triggers the decay: observation
  // counts drop below min_observations, so routing falls back to the
  // rules until the model re-fits.
  std::vector<RoutingEvent> first;
  for (uint32_t deg = 100; deg < 104; ++deg) {
    first.push_back(MakeEvent(deg, "tea+", 2000.0, n2, m2));
  }
  router.Observe(first);
  const CostModelSnapshot after_decay = router.ModelSnapshot();
  EXPECT_GE(after_decay.decays, 1u);
  EXPECT_FALSE(router.trained());
  EXPECT_EQ(router.Route(QueryOfDegree(300, n2, m2)), "tea+");  // rules

  // Re-fitting on the new graph's stream recovers the new argmin.
  std::vector<RoutingEvent> second;
  for (int rep = 0; rep < 4; ++rep) {
    for (uint32_t deg = 1; deg <= 500; deg += 10) {
      second.push_back(MakeEvent(deg, "tea+", 2000.0, n2, m2));
      second.push_back(MakeEvent(deg, "hk-relax", 100.0 + 5.0 * deg, n2, m2));
    }
  }
  router.Observe(second);
  ASSERT_TRUE(router.trained());
  EXPECT_EQ(router.Route(QueryOfDegree(300, n2, m2)), "hk-relax");
  EXPECT_EQ(router.Route(QueryOfDegree(5, n2, m2)), "hk-relax");  // 125 < 2000
}

// The CI Release-smoke target: after training on the synthetic stream,
// the learned router's chosen-backend distribution over low-degree seeds
// shifts away from the rule prior (which sends them all to hk-relax).
TEST(LearnedRouterTest, ChosenDistributionShiftsFromRulePrior) {
  LearnedRouter router(TwoBackendOptions());
  router.Observe(std::vector<RoutingEvent>(Phase1Batch()));
  ASSERT_TRUE(router.trained());

  const RuleBasedRouter rules;
  int shifted = 0;
  for (uint32_t deg = 1; deg <= 10; ++deg) {
    const RoutingQuery query = QueryOfDegree(deg);
    ASSERT_EQ(rules.Route(query), "hk-relax") << "degree " << deg;
    if (router.Route(query) != rules.Route(query)) ++shifted;
  }
  EXPECT_GE(shifted, 8) << "learned router still mirrors the rule prior";
}

TEST(LearnedRouterTest, ExplorationIsDeterministicPerDecisionCounter) {
  LearnedRouterOptions options = TwoBackendOptions();
  options.explore_epsilon = 0.5;
  options.explore_seed = 7;
  LearnedRouter a(options);
  LearnedRouter b(options);
  a.Observe(std::vector<RoutingEvent>(Phase1Batch()));
  b.Observe(std::vector<RoutingEvent>(Phase1Batch()));

  // Same options, same decision indices: identical routing sequences
  // (exploration comes from a counter hash, not wall-clock randomness).
  std::set<std::string> seen;
  for (int i = 0; i < 64; ++i) {
    const RoutingQuery query = QueryOfDegree(5);
    const std::string choice(a.Route(query));
    EXPECT_EQ(choice, b.Route(query)) << "decision " << i;
    seen.insert(choice);
  }
  // With epsilon 0.5 over 64 decisions, exploration must have picked the
  // non-argmin candidate at least once.
  EXPECT_EQ(seen.size(), 2u);
}

TEST(LearnedRouterTest, MultiGraphDrainAllTrainsAndSurvivesSwap) {
  GraphStore store;
  store.Publish("a", PowerlawCluster(600, 4, 0.3, 1));
  store.Publish("b", PowerlawCluster(500, 4, 0.3, 2));

  MultiGraphOptions options;
  options.worker_budget = 2;
  options.router = RouterKind::kLearned;
  options.learned.explore_epsilon = 0.0;
  options.service.backend.name = std::string(kAutoBackend);
  options.service.cache_capacity = 0;  // every query computes -> events
  MultiGraphService service(store, EventParams(), 11, options);

  auto run = [&](const std::string& graph, int queries) {
    for (int i = 0; i < queries; ++i) {
      const QueryResult result =
          service.Submit(graph, static_cast<NodeId>(i % 100), {}).result.get();
      ASSERT_EQ(result.status, QueryStatus::kOk);
    }
  };
  run("a", 8);
  run("b", 8);

  // One call drains both graphs' streams; a follow-up per-name drain
  // starts empty.
  auto all = service.DrainAllRoutingEvents();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all["a"].size(), 8u);
  EXPECT_EQ(all["b"].size(), 8u);
  EXPECT_TRUE(service.DrainRoutingEvents("a").empty());

  // TrainRouters consumes fresh events into each graph's router.
  run("a", 8);
  EXPECT_EQ(service.TrainRouters(), 8u);
  const std::shared_ptr<const LearnedRouter> router_a =
      service.LearnedRouterFor("a");
  ASSERT_NE(router_a, nullptr);
  EXPECT_EQ(router_a->ModelSnapshot().events_observed, 8u);

  // A hot-swap keeps the same router instance; the scale jump (600 -> 6000
  // nodes) trips the cost model's decay on the next training pass.
  service.Publish("a", PowerlawCluster(6000, 8, 0.3, 3));
  run("a", 8);
  EXPECT_GT(service.TrainRouters(), 0u);
  const std::shared_ptr<const LearnedRouter> router_a2 =
      service.LearnedRouterFor("a");
  ASSERT_EQ(router_a2, router_a) << "hot-swap must not reset the router";
  EXPECT_GE(router_a->ModelSnapshot().decays, 1u);

  // Drop kills the router with the graph.
  ASSERT_TRUE(service.Drop("a"));
  EXPECT_EQ(service.LearnedRouterFor("a"), nullptr);
}

}  // namespace
}  // namespace hkpr
