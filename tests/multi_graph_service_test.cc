// Tests for the sharded multi-graph frontend: per-graph sharding and lazy
// construction, the worker budget, the cross-backend determinism matrix
// (MultiGraphService == BatchQueryEngine bit-for-bit for every registered
// backend), versioned hot-swap under concurrent queries, cache
// invalidation across Publish(), graceful drain on Drop(), and cumulative
// per-graph stats across swaps.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "hkpr/backend.h"
#include "hkpr/queries.h"
#include "service/graph_store.h"
#include "service/multi_graph_service.h"
#include "test_util.h"

namespace hkpr {
namespace {

ApproxParams TestParams(double delta) {
  ApproxParams p;
  p.t = 5.0;
  p.eps_r = 0.5;
  p.delta = delta;
  p.p_f = 1e-4;
  return p;
}

void ExpectSameVector(const SparseVector& a, const SparseVector& b) {
  ASSERT_EQ(a.nnz(), b.nnz());
  EXPECT_DOUBLE_EQ(a.degree_offset(), b.degree_offset());
  for (const auto& e : a.entries()) EXPECT_DOUBLE_EQ(b.Get(e.key), e.value);
}

TEST(MultiGraphServiceTest, ShardsQueriesByGraphName) {
  GraphStore store;
  const uint64_t v_path = store.Publish("path", testing::MakePath(50));
  const uint64_t v_full = store.Publish("complete", testing::MakeComplete(16));

  MultiGraphService service(store, TestParams(1e-3), 11, {});
  const QueryResult on_path = service.Submit("path", 0).result.get();
  const QueryResult on_full = service.Submit("complete", 0).result.get();
  ASSERT_EQ(on_path.status, QueryStatus::kOk);
  ASSERT_EQ(on_full.status, QueryStatus::kOk);

  // Each query answered on its own graph (and stamped with its version):
  // on the path the mass stays near the seed end, on K_16 it spreads to
  // all 16 nodes.
  EXPECT_EQ(on_path.graph_version, v_path);
  EXPECT_EQ(on_full.graph_version, v_full);
  EXPECT_EQ(on_full.estimate->nnz(), 16u);
  EXPECT_LT(on_path.estimate->nnz(), 50u);

  // Per-graph stats: one submission each.
  EXPECT_EQ(service.StatsFor("path").submitted, 1u);
  EXPECT_EQ(service.StatsFor("complete").submitted, 1u);
  EXPECT_EQ(service.AggregateStats().submitted, 2u);
}

TEST(MultiGraphServiceTest, UnknownGraphCompletesImmediatelyWithError) {
  GraphStore store;
  store.Publish("g", testing::MakeComplete(8));
  MultiGraphService service(store, TestParams(1e-2), 3, {});

  QueryResult result = service.Submit("nope", 0).result.get();
  EXPECT_EQ(result.status, QueryStatus::kUnknownGraph);
  EXPECT_EQ(result.estimate, nullptr);
  EXPECT_EQ(service.unknown_graph_rejects(), 1u);

  result = service.SubmitTopK("also-nope", 0, 5).result.get();
  EXPECT_EQ(result.status, QueryStatus::kUnknownGraph);
  EXPECT_EQ(service.unknown_graph_rejects(), 2u);

  // The real graph still serves.
  EXPECT_EQ(service.Submit("g", 1).result.get().status, QueryStatus::kOk);
}

TEST(MultiGraphServiceTest, MalformedRequestsReportInvalidArgument) {
  // Under hot-swap a seed can be stale relative to the snapshot a query
  // resolves, so the multi-graph path reports malformed requests (stale
  // seed, k == 0) as a status instead of check-failing the process.
  GraphStore store;
  store.Publish("g", testing::MakeComplete(8));
  MultiGraphService service(store, TestParams(1e-2), 3, {});

  QueryResult result = service.Submit("g", 8).result.get();
  EXPECT_EQ(result.status, QueryStatus::kInvalidArgument);
  EXPECT_EQ(result.estimate, nullptr);
  EXPECT_EQ(service.SubmitTopK("g", 99, 3).result.get().status,
            QueryStatus::kInvalidArgument);
  EXPECT_EQ(service.SubmitTopK("g", 1, 0).result.get().status,
            QueryStatus::kInvalidArgument);
  // Counted service-wide (these never reach a per-graph service).
  EXPECT_EQ(service.invalid_argument_rejects(), 3u);

  // In-range seeds on the same graph still serve.
  EXPECT_EQ(service.Submit("g", 7).result.get().status, QueryStatus::kOk);

  // The canonical race: a seed valid on the old snapshot, stale after a
  // shrinking republish.
  service.Publish("g", testing::MakeComplete(4));
  EXPECT_EQ(service.Submit("g", 7).result.get().status,
            QueryStatus::kInvalidArgument);
  EXPECT_EQ(service.Submit("g", 3).result.get().status, QueryStatus::kOk);
}

TEST(MultiGraphServiceTest, WorkerBudgetSplitsAcrossGraphs) {
  GraphStore store;
  store.Publish("a", testing::MakeComplete(8));
  store.Publish("b", testing::MakeComplete(8));
  store.Publish("c", testing::MakeComplete(8));

  MultiGraphOptions options;
  options.worker_budget = 6;
  MultiGraphService service(store, TestParams(1e-2), 3, options);

  // 6 workers over 3 graphs -> 2 per per-graph service; the floor is 1.
  EXPECT_EQ(service.ServiceFor("a")->num_workers(), 2u);
  EXPECT_EQ(service.ServiceFor("b")->num_workers(), 2u);

  MultiGraphOptions tight;
  tight.worker_budget = 1;
  MultiGraphService small(store, TestParams(1e-2), 3, tight);
  EXPECT_EQ(small.ServiceFor("c")->num_workers(), 1u);
  EXPECT_EQ(small.resolved_worker_budget(), 1u);
  EXPECT_EQ(service.resolved_worker_budget(), 6u);

  EXPECT_EQ(service.ServiceFor("missing"), nullptr);
}

TEST(MultiGraphServiceTest, CrossBackendDeterminismMatrix) {
  // The determinism matrix: for EVERY backend registered in the
  // EstimatorRegistry, the sharded multi-graph path must return
  // bit-identical estimates to a direct BatchQueryEngine run on the same
  // snapshot — extending the async==batch guarantee to the store-resolved
  // query path. Cache disabled so every query computes at its index.
  GraphStore store;
  store.Publish("g", PowerlawCluster(300, 3, 0.3, 7));
  const GraphSnapshot snapshot = store.Get("g");
  const ApproxParams params = TestParams(1e-3);
  const std::vector<NodeId> seeds = {1, 5, 9, 22, 120, 250};

  for (const std::string& name : EstimatorRegistry::Global().Names()) {
    SCOPED_TRACE("backend " + name);
    BackendSpec spec;
    spec.name = name;
    // Pin the parallel backends' shard count so both frontends use the
    // same walk partition regardless of the host's core count.
    spec.context.parallel_threads = 2;

    BatchQueryEngine engine(*snapshot.graph, params, 77, 2, spec);
    const auto expected = engine.EstimateBatch(seeds);

    MultiGraphOptions options;
    options.worker_budget = 3;
    options.service.cache_capacity = 0;  // determinism: every query computes
    options.service.backend = spec;
    MultiGraphService service(store, params, 77, options);

    std::vector<QueryHandle> handles;
    for (NodeId seed : seeds) handles.push_back(service.Submit("g", seed));
    for (size_t i = 0; i < handles.size(); ++i) {
      const QueryResult result = handles[i].result.get();
      ASSERT_EQ(result.status, QueryStatus::kOk) << "query " << i;
      SCOPED_TRACE("query " + std::to_string(i));
      ExpectSameVector(*result.estimate, expected[i]);
      EXPECT_EQ(result.graph_version, snapshot.version);
    }
  }
}

TEST(MultiGraphServiceTest, PublishHotSwapsServedGraph) {
  GraphStore store;
  MultiGraphService service(store, TestParams(1e-3), 5, {});

  const uint64_t v1 = service.Publish("g", testing::MakeCycle(30));
  const QueryResult before = service.Submit("g", 0).result.get();
  ASSERT_EQ(before.status, QueryStatus::kOk);
  EXPECT_EQ(before.graph_version, v1);
  EXPECT_LE(before.estimate->nnz(), 30u);

  const uint64_t v2 = service.Publish("g", testing::MakeComplete(12));
  EXPECT_GT(v2, v1);
  const QueryResult after = service.Submit("g", 0).result.get();
  ASSERT_EQ(after.status, QueryStatus::kOk);
  EXPECT_EQ(after.graph_version, v2);
  EXPECT_EQ(after.estimate->nnz(), 12u);  // K_12: mass on every node
}

TEST(MultiGraphServiceTest, CacheInvalidationAcrossPublish) {
  // Publish() must make pre-swap cache entries unreachable even when the
  // new snapshot is bit-identical to the old one — the version, not the
  // content, drives invalidation.
  const Graph original = PowerlawCluster(200, 3, 0.3, 5);
  GraphStore store;
  MultiGraphService service(store, TestParams(1e-3), 9, {});
  const uint64_t v1 = service.Publish("g", original);

  const QueryResult miss = service.Submit("g", 7).result.get();
  ASSERT_EQ(miss.status, QueryStatus::kOk);
  EXPECT_FALSE(miss.from_cache);
  EXPECT_EQ(miss.graph_version, v1);

  const QueryResult hit = service.Submit("g", 7).result.get();
  ASSERT_EQ(hit.status, QueryStatus::kOk);
  EXPECT_TRUE(hit.from_cache);
  EXPECT_EQ(hit.estimate.get(), miss.estimate.get());  // the cached object

  const uint64_t v2 = service.Publish("g", original);  // identical content
  const QueryResult post_swap = service.Submit("g", 7).result.get();
  ASSERT_EQ(post_swap.status, QueryStatus::kOk);
  // The post-swap query is a cache miss: the pre-swap entry is never
  // returned for the new version.
  EXPECT_FALSE(post_swap.from_cache);
  EXPECT_EQ(post_swap.graph_version, v2);
  EXPECT_NE(post_swap.estimate.get(), miss.estimate.get());

  const QueryResult rewarmed = service.Submit("g", 7).result.get();
  EXPECT_TRUE(rewarmed.from_cache);
  EXPECT_EQ(rewarmed.graph_version, v2);
  EXPECT_EQ(rewarmed.estimate.get(), post_swap.estimate.get());

  // Stats are cumulative across the swap: 4 submissions, 2 misses, 2 hits
  // (the swapped-out service's counters were folded on retirement), and
  // the latency percentiles cover the merged history — including the two
  // pre-swap queries whose histogram lives in the retired buckets.
  const ServiceStatsSnapshot stats = service.StatsFor("g");
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.cache_misses, 2u);
  EXPECT_EQ(stats.cache_hits + stats.coalesced, 2u);
  EXPECT_EQ(stats.computed, 2u);
  EXPECT_EQ(stats.latency_count, 4u);
  EXPECT_GT(stats.latency_p99_ms, 0.0);

  const ServiceStatsSnapshot aggregate = service.AggregateStats();
  EXPECT_EQ(aggregate.latency_count, 4u);
  EXPECT_GT(aggregate.latency_p50_ms, 0.0);  // merged, not left at zero
}

// The hot-swap stress test (run under TSan in CI): reader threads submit
// queries against "g" while a writer republishes it in a loop. Every
// result must be kOk (a swap never bounces an accepted query), carry a
// graph version that was live at submission time, and be computed on the
// graph matching that version (node count encodes the publish index).
TEST(MultiGraphServiceStressTest, QueriesDuringHotSwapSeeLiveVersions) {
  constexpr uint32_t kBaseNodes = 120;
  constexpr uint32_t kPublishes = 8;
  constexpr uint32_t kReaders = 3;

  GraphStore store;
  MultiGraphOptions options;
  options.worker_budget = 4;
  MultiGraphService service(store, TestParams(1e-2), 13, options);
  const uint64_t v_first =
      service.Publish("g", PowerlawCluster(kBaseNodes, 3, 0.3, 0));

  std::atomic<bool> done{false};
  std::atomic<uint64_t> completed{0};

  std::vector<std::thread> readers;
  for (uint32_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      uint64_t local = 0;
      uint64_t last_version = 0;
      while (!done.load(std::memory_order_acquire) || local < 20) {
        // Seeds below kBaseNodes are valid on every published snapshot.
        const NodeId seed = static_cast<NodeId>((r * 37 + local) % kBaseNodes);
        const QueryResult result = service.Submit("g", seed).result.get();
        ASSERT_EQ(result.status, QueryStatus::kOk);
        // The version was live at submission: the single writer published
        // versions v_first..v_first+kPublishes in order, so any value in
        // that range that is >= the last one this reader saw is valid.
        ASSERT_GE(result.graph_version, v_first);
        ASSERT_LE(result.graph_version, v_first + kPublishes);
        ASSERT_GE(result.graph_version, last_version);
        last_version = result.graph_version;
        ASSERT_NE(result.estimate, nullptr);
        ASSERT_GT(result.estimate->nnz(), 0u);
        ++local;
      }
      completed.fetch_add(local, std::memory_order_relaxed);
    });
  }

  for (uint32_t k = 1; k <= kPublishes; ++k) {
    const uint64_t v =
        service.Publish("g", PowerlawCluster(kBaseNodes + k, 3, 0.3, k));
    ASSERT_EQ(v, v_first + k);
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_GE(completed.load(), kReaders * 20u);
  // After the dust settles, queries land on the final version.
  const QueryResult final_result = service.Submit("g", 0).result.get();
  ASSERT_EQ(final_result.status, QueryStatus::kOk);
  EXPECT_EQ(final_result.graph_version, v_first + kPublishes);
}

TEST(MultiGraphServiceTest, DropDrainsInFlightAndRejectsAfter) {
  GraphStore store;
  store.Publish("g", PowerlawCluster(400, 3, 0.3, 4));
  MultiGraphOptions options;
  options.worker_budget = 2;
  MultiGraphService service(store, TestParams(1e-4), 21, options);

  std::vector<QueryHandle> handles;
  for (NodeId seed = 0; seed < 20; ++seed) {
    handles.push_back(service.Submit("g", seed));
  }
  // Drop with most queries still queued: the drain is synchronous, so by
  // the time Drop returns every future must resolve kOk.
  ASSERT_TRUE(service.Drop("g"));
  for (QueryHandle& handle : handles) {
    EXPECT_EQ(handle.result.get().status, QueryStatus::kOk);
  }

  EXPECT_FALSE(store.Contains("g"));
  EXPECT_EQ(service.Submit("g", 0).result.get().status,
            QueryStatus::kUnknownGraph);
  EXPECT_FALSE(service.Drop("g"));  // second drop: unknown

  // The dropped graph's counters survive in the retired stats.
  const ServiceStatsSnapshot stats = service.StatsFor("g");
  EXPECT_EQ(stats.submitted, 20u);
  EXPECT_EQ(stats.completed, 20u);
}

TEST(MultiGraphServiceTest, SelfHealsWhenStoreChangesDirectly) {
  // The store is the source of truth: snapshots published or removed
  // directly on it (not through the service) take effect on the next
  // submission.
  GraphStore store;
  const uint64_t v1 = store.Publish("g", testing::MakeCycle(40));
  MultiGraphService service(store, TestParams(1e-3), 17, {});
  EXPECT_EQ(service.Submit("g", 0).result.get().graph_version, v1);

  const uint64_t v2 = store.Publish("g", testing::MakeComplete(10));
  const QueryResult swapped = service.Submit("g", 0).result.get();
  ASSERT_EQ(swapped.status, QueryStatus::kOk);
  EXPECT_EQ(swapped.graph_version, v2);
  EXPECT_EQ(swapped.estimate->nnz(), 10u);

  store.Remove("g");
  EXPECT_EQ(service.Submit("g", 0).result.get().status,
            QueryStatus::kUnknownGraph);
}

TEST(MultiGraphServiceTest, ExternallyShutDownServiceIsRebuiltNotSpun) {
  // ServiceFor() exposes the per-graph service and Shutdown() is public:
  // a service stopped by hand while still installed must be retired and
  // rebuilt on the next submission, not retried into forever.
  GraphStore store;
  store.Publish("g", testing::MakeComplete(8));
  MultiGraphService service(store, TestParams(1e-2), 3, {});

  std::shared_ptr<AsyncQueryService> direct = service.ServiceFor("g");
  ASSERT_NE(direct, nullptr);
  const QueryResult before = service.Submit("g", 1).result.get();
  ASSERT_EQ(before.status, QueryStatus::kOk);
  direct->Shutdown();
  EXPECT_TRUE(direct->stopped());

  // Must neither hang nor reject: the stopped instance is replaced.
  const QueryResult after = service.Submit("g", 2).result.get();
  EXPECT_EQ(after.status, QueryStatus::kOk);
  EXPECT_NE(service.ServiceFor("g").get(), direct.get());
  // Cumulative stats still cover the stopped instance's query.
  EXPECT_EQ(service.StatsFor("g").completed, 2u);
}

TEST(MultiGraphServiceTest, DestructorDrainsEveryGraph) {
  GraphStore store;
  store.Publish("a", PowerlawCluster(300, 3, 0.3, 2));
  store.Publish("b", PowerlawCluster(300, 3, 0.3, 3));
  std::vector<QueryHandle> handles;
  {
    MultiGraphOptions options;
    options.worker_budget = 2;
    MultiGraphService service(store, TestParams(1e-4), 31, options);
    for (NodeId seed = 0; seed < 10; ++seed) {
      handles.push_back(service.Submit(seed % 2 == 0 ? "a" : "b", seed));
    }
    // Destructor runs here with queries still queued on both graphs.
  }
  for (QueryHandle& handle : handles) {
    EXPECT_EQ(handle.result.get().status, QueryStatus::kOk);
  }
}

}  // namespace
}  // namespace hkpr
