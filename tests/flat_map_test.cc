// Tests for FlatMap, FlatSet and SparseVector.

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>

#include "common/flat_map.h"
#include "common/random.h"
#include "common/sparse_vector.h"

namespace hkpr {
namespace {

TEST(FlatMapTest, EmptyLookups) {
  FlatMap<double> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.Find(5), nullptr);
  EXPECT_EQ(m.GetOr(5, -1.0), -1.0);
  EXPECT_FALSE(m.Contains(5));
}

TEST(FlatMapTest, InsertAndLookup) {
  FlatMap<double> m;
  m[3] = 1.5;
  m[7] = 2.5;
  EXPECT_EQ(m.size(), 2u);
  EXPECT_DOUBLE_EQ(*m.Find(3), 1.5);
  EXPECT_DOUBLE_EQ(*m.Find(7), 2.5);
  EXPECT_EQ(m.Find(4), nullptr);
}

TEST(FlatMapTest, OperatorAccumulates) {
  FlatMap<double> m;
  m[9] += 1.0;
  m[9] += 2.0;
  EXPECT_DOUBLE_EQ(m.GetOr(9, 0.0), 3.0);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMapTest, InsertionOrderIteration) {
  FlatMap<int> m;
  m[10] = 1;
  m[5] = 2;
  m[20] = 3;
  std::vector<uint32_t> keys;
  for (const auto& e : m.entries()) keys.push_back(e.key);
  EXPECT_EQ(keys, (std::vector<uint32_t>{10, 5, 20}));
}

TEST(FlatMapTest, GrowthPreservesEntries) {
  FlatMap<uint32_t> m;
  for (uint32_t i = 0; i < 10000; ++i) m[i * 3] = i;
  EXPECT_EQ(m.size(), 10000u);
  for (uint32_t i = 0; i < 10000; ++i) {
    ASSERT_NE(m.Find(i * 3), nullptr) << i;
    EXPECT_EQ(*m.Find(i * 3), i);
  }
  EXPECT_EQ(m.Find(1), nullptr);
}

TEST(FlatMapTest, MatchesUnorderedMapUnderRandomOps) {
  FlatMap<int64_t> m;
  std::unordered_map<uint32_t, int64_t> ref;
  Rng rng(99);
  for (int i = 0; i < 20000; ++i) {
    const uint32_t key = static_cast<uint32_t>(rng.UniformInt(5000));
    const int64_t delta = static_cast<int64_t>(rng.UniformInt(100)) - 50;
    m[key] += delta;
    ref[key] += delta;
  }
  EXPECT_EQ(m.size(), ref.size());
  for (const auto& [k, v] : ref) {
    ASSERT_NE(m.Find(k), nullptr);
    EXPECT_EQ(*m.Find(k), v);
  }
}

TEST(FlatMapTest, ClearKeepsCapacityAndEmpties) {
  FlatMap<double> m;
  for (uint32_t i = 0; i < 100; ++i) m[i] = i;
  const size_t bytes = m.MemoryBytes();
  m.Clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.Find(10), nullptr);
  EXPECT_EQ(m.MemoryBytes(), bytes);
  m[5] = 1.0;  // usable after clear
  EXPECT_DOUBLE_EQ(m.GetOr(5, 0.0), 1.0);
}

TEST(FlatMapTest, ReservePreventsReallocGrowth) {
  FlatMap<int> m;
  m.Reserve(1000);
  const size_t bytes = m.MemoryBytes();
  for (uint32_t i = 0; i < 1000; ++i) m[i] = 1;
  EXPECT_EQ(m.MemoryBytes(), bytes);
}

TEST(FlatMapTest, KeyZeroAndMaxValid) {
  FlatMap<int> m;
  m[0] = 7;
  m[0xFFFFFFFEu] = 9;
  EXPECT_EQ(m.GetOr(0, 0), 7);
  EXPECT_EQ(m.GetOr(0xFFFFFFFEu, 0), 9);
}

TEST(FlatSetTest, InsertReportsNovelty) {
  FlatSet s;
  EXPECT_TRUE(s.Insert(4));
  EXPECT_FALSE(s.Insert(4));
  EXPECT_TRUE(s.Insert(5));
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.Contains(4));
  EXPECT_FALSE(s.Contains(6));
}

TEST(FlatSetTest, ForEachVisitsAllOnce) {
  FlatSet s;
  for (uint32_t i = 0; i < 50; ++i) s.Insert(i * 2);
  size_t count = 0;
  uint64_t sum = 0;
  s.ForEach([&](uint32_t k) {
    ++count;
    sum += k;
  });
  EXPECT_EQ(count, 50u);
  EXPECT_EQ(sum, 2u * (49u * 50u / 2u));
}

TEST(SparseVectorTest, AddAndGet) {
  SparseVector v;
  v.Add(3, 0.5);
  v.Add(3, 0.25);
  v.Add(9, 1.0);
  EXPECT_DOUBLE_EQ(v.Get(3), 0.75);
  EXPECT_DOUBLE_EQ(v.Get(9), 1.0);
  EXPECT_DOUBLE_EQ(v.Get(4), 0.0);
  EXPECT_EQ(v.nnz(), 2u);
}

TEST(SparseVectorTest, SumIgnoresOffset) {
  SparseVector v;
  v.Add(1, 0.4);
  v.Add(2, 0.6);
  v.set_degree_offset(0.01);
  EXPECT_DOUBLE_EQ(v.Sum(), 1.0);
}

TEST(SparseVectorTest, ValueWithOffsetAppliesDegree) {
  SparseVector v;
  v.Add(1, 0.4);
  v.set_degree_offset(0.05);
  EXPECT_DOUBLE_EQ(v.ValueWithOffset(1, 4), 0.4 + 0.05 * 4);
  // Absent entries still receive the offset (that is the point: the offset
  // applies to every node).
  EXPECT_DOUBLE_EQ(v.ValueWithOffset(2, 10), 0.5);
}

TEST(SparseVectorTest, SortedEntriesAscendingKeys) {
  SparseVector v;
  v.Add(9, 1.0);
  v.Add(2, 2.0);
  v.Add(5, 3.0);
  auto sorted = v.SortedEntries();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end(),
                             [](const auto& a, const auto& b) {
                               return a.key < b.key;
                             }));
}

TEST(SparseVectorTest, ClearResetsOffset) {
  SparseVector v;
  v.Add(1, 1.0);
  v.set_degree_offset(0.5);
  v.Clear();
  EXPECT_TRUE(v.empty());
  EXPECT_DOUBLE_EQ(v.degree_offset(), 0.0);
}

}  // namespace
}  // namespace hkpr
