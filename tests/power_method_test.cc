// Tests for the dense power-method ground truth.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "graph/generators.h"
#include "hkpr/power_method.h"
#include "test_util.h"

namespace hkpr {
namespace {

/// Brute-force HKPR via explicit dense matrix powers (O(K n^3); tiny graphs
/// only). Completely independent of the iterative implementation.
std::vector<double> BruteForceHkpr(const Graph& g, double t, NodeId seed,
                                   uint32_t max_k) {
  const uint32_t n = g.NumNodes();
  // P as a dense matrix.
  std::vector<std::vector<double>> p(n, std::vector<double>(n, 0.0));
  for (NodeId u = 0; u < n; ++u) {
    if (g.Degree(u) == 0) {
      p[u][u] = 1.0;  // stranded mass stays (matches the implementation)
      continue;
    }
    for (NodeId v : g.Neighbors(u)) {
      p[u][v] = 1.0 / g.Degree(u);
    }
  }
  std::vector<std::vector<double>> pk(n, std::vector<double>(n, 0.0));
  for (uint32_t i = 0; i < n; ++i) pk[i][i] = 1.0;  // P^0
  std::vector<double> rho(n, 0.0);
  double eta = std::exp(-t);
  double factorial_scale = eta;
  for (uint32_t k = 0; k <= max_k; ++k) {
    if (k > 0) {
      // pk = pk * P
      std::vector<std::vector<double>> next(n, std::vector<double>(n, 0.0));
      for (uint32_t i = 0; i < n; ++i) {
        for (uint32_t l = 0; l < n; ++l) {
          if (pk[i][l] == 0.0) continue;
          for (uint32_t j = 0; j < n; ++j) next[i][j] += pk[i][l] * p[l][j];
        }
      }
      pk.swap(next);
      factorial_scale *= t / k;
    }
    for (uint32_t v = 0; v < n; ++v) rho[v] += factorial_scale * pk[seed][v];
  }
  return rho;
}

TEST(PowerMethodTest, MatchesBruteForceOnBarbell) {
  Graph g = testing::MakeBarbell(3);
  const double t = 4.0;
  const std::vector<double> exact = ExactHkpr(g, t, 0);
  const std::vector<double> brute = BruteForceHkpr(g, t, 0, 60);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_NEAR(exact[v], brute[v], 1e-10) << v;
  }
}

TEST(PowerMethodTest, MatchesBruteForceOnStar) {
  Graph g = testing::MakeStar(7);
  const std::vector<double> exact = ExactHkpr(g, 2.0, 3);  // leaf seed
  const std::vector<double> brute = BruteForceHkpr(g, 2.0, 3, 50);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_NEAR(exact[v], brute[v], 1e-10) << v;
  }
}

TEST(PowerMethodTest, SumsToOne) {
  Graph g = PowerlawCluster(200, 3, 0.3, 1);
  const std::vector<double> rho = ExactHkpr(g, 5.0, 17);
  double sum = 0.0;
  for (double x : rho) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(PowerMethodTest, NonNegative) {
  Graph g = ErdosRenyiGnm(100, 300, 2);
  const std::vector<double> rho = ExactHkpr(g, 5.0, 3);
  for (double x : rho) EXPECT_GE(x, 0.0);
}

TEST(PowerMethodTest, SymmetryLemma6) {
  // Lemma 6 implies rho_u[v]/d(v) == rho_v[u]/d(u) for undirected graphs.
  Graph g = PowerlawCluster(80, 3, 0.4, 3);
  const NodeId u = 5, v = 33;
  const std::vector<double> rho_u = ExactHkpr(g, 5.0, u);
  const std::vector<double> rho_v = ExactHkpr(g, 5.0, v);
  EXPECT_NEAR(rho_u[v] / g.Degree(v), rho_v[u] / g.Degree(u), 1e-10);
}

TEST(PowerMethodTest, SeedDominatesNearbyMassForSmallT) {
  Graph g = testing::MakePath(20);
  const std::vector<double> rho = ExactHkpr(g, 1.0, 10);
  // With t = 1 most mass stays within a couple of hops.
  EXPECT_GT(rho[10] + rho[9] + rho[11], 0.5);
  EXPECT_LT(rho[0], 1e-4);
}

TEST(PowerMethodTest, DisconnectedComponentGetsNoMass) {
  GraphBuilder b(6);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(3, 4);
  b.AddEdge(4, 5);
  Graph g = b.Build();
  const std::vector<double> rho = ExactHkpr(g, 5.0, 0);
  EXPECT_DOUBLE_EQ(rho[3], 0.0);
  EXPECT_DOUBLE_EQ(rho[4], 0.0);
  EXPECT_DOUBLE_EQ(rho[5], 0.0);
}

TEST(NormalizeByDegreeTest, DividesByDegree) {
  Graph g = testing::MakeStar(4);
  std::vector<double> rho = {0.6, 0.2, 0.1, 0.1};
  NormalizeByDegree(g, rho);
  EXPECT_DOUBLE_EQ(rho[0], 0.2);  // 0.6 / 3 (hub degree 3)
  EXPECT_DOUBLE_EQ(rho[1], 0.2);  // leaves have degree 1
  EXPECT_DOUBLE_EQ(rho[2], 0.1);
}

TEST(NormalizeByDegreeTest, IsolatedNodesZero) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  Graph g = b.Build();
  std::vector<double> rho = {0.5, 0.3, 0.2};
  NormalizeByDegree(g, rho);
  EXPECT_DOUBLE_EQ(rho[2], 0.0);
}

}  // namespace
}  // namespace hkpr
