// Cross-module integration tests: all estimators on shared workloads,
// dataset registry, and workload builders.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "baselines/cluster_hkpr.h"
#include "baselines/hk_relax.h"
#include "bench_util/datasets.h"
#include "bench_util/workload.h"
#include "clustering/local_cluster.h"
#include "clustering/metrics.h"
#include "graph/generators.h"
#include "hkpr/monte_carlo.h"
#include "hkpr/power_method.h"
#include "hkpr/tea.h"
#include "hkpr/tea_plus.h"
#include "test_util.h"

namespace hkpr {
namespace {

TEST(IntegrationTest, AllEstimatorsAgreeOnTopNodes) {
  Graph g = PowerlawCluster(400, 4, 0.3, 1);
  ApproxParams params;
  params.t = 5.0;
  params.eps_r = 0.5;
  params.delta = 1e-3;
  params.p_f = 1e-4;
  const NodeId seed = 13;
  const std::vector<double> exact = ExactHkpr(g, params.t, seed);

  // Exact top-10 nodes by normalized value.
  std::vector<NodeId> exact_top;
  {
    std::vector<std::pair<double, NodeId>> scored;
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      if (g.Degree(v) > 0 && exact[v] > 0) {
        scored.emplace_back(exact[v] / g.Degree(v), v);
      }
    }
    std::sort(scored.rbegin(), scored.rend());
    for (size_t i = 0; i < 10 && i < scored.size(); ++i) {
      exact_top.push_back(scored[i].second);
    }
  }

  MonteCarloEstimator mc(g, params, 2);
  TeaEstimator tea(g, params, 3);
  TeaPlusEstimator tea_plus(g, params, 4);
  HkRelaxOptions relax_options;
  relax_options.t = params.t;
  relax_options.eps_a = 1e-5;
  HkRelaxEstimator relax(g, relax_options);

  std::vector<HkprEstimator*> estimators = {&mc, &tea, &tea_plus, &relax};
  for (HkprEstimator* est : estimators) {
    SparseVector rho = est->Estimate(seed);
    std::vector<std::pair<double, NodeId>> scored;
    for (const auto& e : rho.entries()) {
      if (g.Degree(e.key) > 0 && e.value > 0) {
        scored.emplace_back(e.value / g.Degree(e.key), e.key);
      }
    }
    std::sort(scored.rbegin(), scored.rend());
    size_t overlap = 0;
    for (size_t i = 0; i < 10 && i < scored.size(); ++i) {
      if (std::find(exact_top.begin(), exact_top.end(), scored[i].second) !=
          exact_top.end()) {
        ++overlap;
      }
    }
    EXPECT_GE(overlap, 8u) << est->name();
  }
}

TEST(IntegrationTest, NdcgOrderingMatchesAccuracyHierarchy) {
  // A tight TEA+ must out-rank a very loose ClusterHKPR.
  Graph g = PowerlawCluster(500, 4, 0.3, 5);
  const NodeId seed = 21;
  std::vector<double> normalized = ExactHkpr(g, 5.0, seed);
  NormalizeByDegree(g, normalized);

  ApproxParams tight;
  tight.delta = 1e-5;
  tight.p_f = 1e-4;
  TeaPlusEstimator tea_plus(g, tight, 6);

  ClusterHkprOptions loose;
  loose.eps = 0.5;
  loose.max_walks = 2000;
  ClusterHkprEstimator chkpr(g, loose, 7);

  const double ndcg_tea = NdcgAtK(g, tea_plus.Estimate(seed), normalized, 100);
  const double ndcg_chkpr = NdcgAtK(g, chkpr.Estimate(seed), normalized, 100);
  EXPECT_GT(ndcg_tea, ndcg_chkpr);
  EXPECT_GT(ndcg_tea, 0.95);
}

TEST(DatasetsTest, RegistryBuildsAllQuickDatasets) {
  for (const std::string& name : DatasetNames()) {
    Dataset d = MakeDataset(name, DatasetScale::kQuick, 42);
    EXPECT_EQ(d.name, name);
    EXPECT_GT(d.graph.NumNodes(), 1000u) << name;
    EXPECT_GT(d.graph.NumEdges(), d.graph.NumNodes() / 2) << name;
    EXPECT_FALSE(d.paper_name.empty());
  }
}

TEST(DatasetsTest, CommunityDatasetsHaveGroundTruth) {
  for (const std::string& name : CommunityDatasetNames()) {
    Dataset d = MakeDataset(name, DatasetScale::kQuick, 42);
    EXPECT_FALSE(d.communities.empty()) << name;
  }
}

TEST(DatasetsTest, DeterministicInSeed) {
  Dataset a = MakeDataset("plc", DatasetScale::kQuick, 7);
  Dataset b = MakeDataset("plc", DatasetScale::kQuick, 7);
  EXPECT_TRUE(std::ranges::equal(a.graph.adjacency(), b.graph.adjacency()));
}

TEST(DatasetsTest, GridHasUniformDegreeSix) {
  Dataset d = MakeDataset("grid3d", DatasetScale::kQuick, 42);
  for (NodeId v = 0; v < d.graph.NumNodes(); ++v) {
    ASSERT_EQ(d.graph.Degree(v), 6u);
  }
}

TEST(DatasetsTest, OrkutDenserThanDblp) {
  Dataset dblp = MakeDataset("dblp", DatasetScale::kQuick, 42);
  Dataset orkut = MakeDataset("orkut", DatasetScale::kQuick, 42);
  EXPECT_GT(orkut.graph.AverageDegree(), 3.0 * dblp.graph.AverageDegree());
}

TEST(WorkloadTest, UniformSeedsDistinctAndValid) {
  Graph g = PowerlawCluster(2000, 3, 0.3, 8);
  Rng rng(9);
  std::vector<NodeId> seeds = UniformSeeds(g, 50, rng);
  EXPECT_EQ(seeds.size(), 50u);
  std::vector<NodeId> sorted = seeds;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
              sorted.end());
  for (NodeId v : seeds) EXPECT_GT(g.Degree(v), 0u);
}

TEST(WorkloadTest, CommunitySeedsComeFromBigCommunities) {
  CommunityGraph cg = PlantedPartition(10, 40, 0.3, 0.002, 10);
  Rng rng(11);
  auto seeds = CommunitySeeds(cg.graph, cg.communities, 20, 30, rng);
  EXPECT_EQ(seeds.size(), 20u);
  for (const auto& cs : seeds) {
    const auto& community = cg.communities.Community(cs.community);
    EXPECT_GE(community.size(), 30u);
    EXPECT_TRUE(std::find(community.begin(), community.end(), cs.seed) !=
                community.end());
  }
}

TEST(WorkloadTest, DensityStrataAreOrdered) {
  Dataset d = MakeDataset("dblp", DatasetScale::kQuick, 42);
  Rng rng(12);
  DensityStratifiedSeeds strata =
      MakeDensityStratifiedSeeds(d.graph, 100, 40, 10, rng);
  EXPECT_EQ(strata.high.size(), 10u);
  EXPECT_EQ(strata.medium.size(), 10u);
  EXPECT_EQ(strata.low.size(), 10u);
}

}  // namespace
}  // namespace hkpr
