// Tests for Graph, GraphBuilder and CSR invariants.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/random.h"
#include "graph/graph.h"
#include "graph/graph_builder.h"
#include "test_util.h"

namespace hkpr {
namespace {

using testing::MakeBarbell;
using testing::MakeComplete;
using testing::MakeCycle;
using testing::MakePath;
using testing::MakeStar;

TEST(GraphBuilderTest, EmptyGraph) {
  GraphBuilder b;
  Graph g = b.Build();
  EXPECT_EQ(g.NumNodes(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_EQ(g.Volume(), 0u);
}

TEST(GraphBuilderTest, DeclaredIsolatedNodes) {
  GraphBuilder b(5);
  b.AddEdge(0, 1);
  Graph g = b.Build();
  EXPECT_EQ(g.NumNodes(), 5u);
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_EQ(g.Degree(4), 0u);
}

TEST(GraphBuilderTest, RemovesSelfLoops) {
  GraphBuilder b(3);
  b.AddEdge(0, 0);
  b.AddEdge(0, 1);
  b.AddEdge(2, 2);
  Graph g = b.Build();
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_EQ(g.Degree(0), 1u);
  EXPECT_EQ(g.Degree(2), 0u);
}

TEST(GraphBuilderTest, DeduplicatesParallelEdges) {
  GraphBuilder b(2);
  b.AddEdge(0, 1);
  b.AddEdge(1, 0);
  b.AddEdge(0, 1);
  Graph g = b.Build();
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_EQ(g.Degree(0), 1u);
  EXPECT_EQ(g.Degree(1), 1u);
}

TEST(GraphBuilderTest, GrowsNodeCountFromEdges) {
  GraphBuilder b;
  b.AddEdge(10, 3);
  Graph g = b.Build();
  EXPECT_EQ(g.NumNodes(), 11u);
  EXPECT_EQ(g.Degree(10), 1u);
}

TEST(GraphBuilderTest, SymmetrizesArcs) {
  GraphBuilder b(4);
  b.AddEdge(2, 3);
  Graph g = b.Build();
  auto n2 = g.Neighbors(2);
  auto n3 = g.Neighbors(3);
  ASSERT_EQ(n2.size(), 1u);
  ASSERT_EQ(n3.size(), 1u);
  EXPECT_EQ(n2[0], 3u);
  EXPECT_EQ(n3[0], 2u);
}

TEST(GraphTest, AdjacencyRowsSortedAndUnique) {
  Rng rng(5);
  GraphBuilder b(200);
  for (int i = 0; i < 2000; ++i) {
    b.AddEdge(static_cast<NodeId>(rng.UniformInt(200)),
              static_cast<NodeId>(rng.UniformInt(200)));
  }
  Graph g = b.Build();
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    auto nbrs = g.Neighbors(v);
    for (size_t i = 1; i < nbrs.size(); ++i) {
      EXPECT_LT(nbrs[i - 1], nbrs[i]);
    }
    for (NodeId u : nbrs) EXPECT_NE(u, v);
  }
}

TEST(GraphTest, VolumeIsTwiceEdges) {
  Graph g = MakeCycle(10);
  EXPECT_EQ(g.NumEdges(), 10u);
  EXPECT_EQ(g.Volume(), 20u);
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 2.0);
}

TEST(GraphTest, StarDegrees) {
  Graph g = MakeStar(6);
  EXPECT_EQ(g.Degree(0), 5u);
  for (NodeId v = 1; v < 6; ++v) EXPECT_EQ(g.Degree(v), 1u);
  EXPECT_EQ(g.MaxDegree(), 5u);
}

TEST(GraphTest, CompleteGraphEdges) {
  Graph g = MakeComplete(7);
  EXPECT_EQ(g.NumEdges(), 21u);
  for (NodeId v = 0; v < 7; ++v) EXPECT_EQ(g.Degree(v), 6u);
}

TEST(GraphTest, HasEdge) {
  Graph g = MakePath(4);  // 0-1-2-3
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(2, 1));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_FALSE(g.HasEdge(0, 3));
}

TEST(GraphTest, RandomNeighborIsANeighbor) {
  Graph g = MakeBarbell(5);
  Rng rng(9);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    for (int i = 0; i < 20; ++i) {
      const NodeId u = g.RandomNeighbor(v, rng);
      EXPECT_TRUE(g.HasEdge(v, u));
    }
  }
}

TEST(GraphTest, RandomNeighborCoversAll) {
  Graph g = MakeStar(5);
  Rng rng(10);
  std::set<NodeId> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(g.RandomNeighbor(0, rng));
  EXPECT_EQ(seen.size(), 4u);
}

TEST(GraphTest, VolumeOfSubset) {
  Graph g = MakeStar(5);
  std::vector<NodeId> nodes = {0, 1};
  EXPECT_EQ(g.VolumeOf(nodes), 5u);
}

TEST(GraphTest, MemoryBytesPositive) {
  Graph g = MakeCycle(100);
  EXPECT_GT(g.MemoryBytes(), 100u * sizeof(NodeId));
}

TEST(GraphTest, FromCsrRoundTrip) {
  Graph g = MakeBarbell(4);
  Graph g2 = Graph::FromCsr({g.offsets().begin(), g.offsets().end()},
                            {g.adjacency().begin(), g.adjacency().end()});
  EXPECT_EQ(g2.NumNodes(), g.NumNodes());
  EXPECT_EQ(g2.NumEdges(), g.NumEdges());
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_EQ(g2.Degree(v), g.Degree(v));
  }
}

TEST(GraphDeathTest, FromCsrRejectsBadOffsets) {
  // offsets.back() != adjacency.size()
  EXPECT_DEATH(Graph::FromCsr({0, 2}, {1}), "");
}

TEST(GraphBuilderTest, BuilderReusableAfterBuild) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  Graph g1 = b.Build();
  EXPECT_EQ(g1.NumEdges(), 1u);
  // After Build() the builder is empty and can accumulate a new graph.
  b.AddEdge(0, 2);
  b.AddEdge(1, 2);
  Graph g2 = b.Build();
  EXPECT_EQ(g2.NumEdges(), 2u);
}

}  // namespace
}  // namespace hkpr
