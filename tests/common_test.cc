// Tests for Status/Result, Rng, WallTimer and MemTracker.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/mem_tracker.h"
#include "common/random.h"
#include "common/status.h"
#include "common/timer.h"

namespace hkpr {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::IOError("file missing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_EQ(s.message(), "file missing");
  EXPECT_EQ(s.ToString(), "IOError: file missing");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument), "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIOError), "IOError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  ASSERT_TRUE(r.ok());
  std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "payload");
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() != b.Next()) ++differences;
  }
  EXPECT_GT(differences, 60);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformDoubleMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.UniformDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(RngTest, UniformIntRespectsBound) {
  Rng rng(13);
  for (uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.UniformInt(bound), bound);
    }
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(17);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformIntApproximatelyUniform) {
  Rng rng(19);
  const uint64_t bound = 10;
  const int n = 100000;
  std::vector<int> counts(bound, 0);
  for (int i = 0; i < n; ++i) ++counts[rng.UniformInt(bound)];
  for (uint64_t v = 0; v < bound; ++v) {
    EXPECT_NEAR(counts[v], n / static_cast<double>(bound), 500.0);
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(RngTest, ReseedRestartsSequence) {
  Rng rng(29);
  const uint64_t first = rng.Next();
  rng.Next();
  rng.Reseed(29);
  EXPECT_EQ(rng.Next(), first);
}

TEST(WallTimerTest, MeasuresElapsedTime) {
  WallTimer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + std::sqrt(i);
  EXPECT_GE(timer.ElapsedSeconds(), 0.0);
  EXPECT_GE(timer.ElapsedMillis(), timer.ElapsedSeconds());  // ms >= s scale
}

TEST(WallTimerTest, RestartResets) {
  WallTimer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  const double before = timer.ElapsedSeconds();
  timer.Restart();
  EXPECT_LE(timer.ElapsedSeconds(), before + 1.0);
}

TEST(MemTrackerTest, TracksPeak) {
  MemTracker t;
  t.Add(100);
  t.Add(200);
  EXPECT_EQ(t.current_bytes(), 300u);
  EXPECT_EQ(t.peak_bytes(), 300u);
  t.Release(250);
  EXPECT_EQ(t.current_bytes(), 50u);
  EXPECT_EQ(t.peak_bytes(), 300u);
  t.Add(100);
  EXPECT_EQ(t.peak_bytes(), 300u);
}

TEST(MemTrackerTest, UpdateReplacesComponent) {
  MemTracker t;
  t.Add(128);
  t.Update(128, 512);
  EXPECT_EQ(t.current_bytes(), 512u);
  EXPECT_EQ(t.peak_bytes(), 512u);
}

TEST(MemTrackerTest, ReleaseBelowZeroClamps) {
  MemTracker t;
  t.Add(10);
  t.Release(100);
  EXPECT_EQ(t.current_bytes(), 0u);
}

TEST(MemTrackerTest, ResetClearsEverything) {
  MemTracker t;
  t.Add(10);
  t.Reset();
  EXPECT_EQ(t.current_bytes(), 0u);
  EXPECT_EQ(t.peak_bytes(), 0u);
}

}  // namespace
}  // namespace hkpr
