// Tests for induced subgraphs, density, BFS balls and components.

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "graph/subgraph.h"
#include "test_util.h"

namespace hkpr {
namespace {

TEST(InduceTest, TriangleFromBarbell) {
  Graph g = testing::MakeBarbell(3);  // cliques {0,1,2}, {3,4,5}
  std::vector<NodeId> nodes = {0, 1, 2};
  InducedSubgraph sub = Induce(g, nodes);
  EXPECT_EQ(sub.graph.NumNodes(), 3u);
  EXPECT_EQ(sub.graph.NumEdges(), 3u);
  EXPECT_EQ(sub.to_original.size(), 3u);
}

TEST(InduceTest, MappingIsConsistent) {
  Graph g = testing::MakePath(6);
  std::vector<NodeId> nodes = {4, 2, 3};
  InducedSubgraph sub = Induce(g, nodes);
  EXPECT_EQ(sub.graph.NumNodes(), 3u);
  EXPECT_EQ(sub.graph.NumEdges(), 2u);  // 2-3 and 3-4
  // Edges in the subgraph map back to original edges.
  for (NodeId lu = 0; lu < sub.graph.NumNodes(); ++lu) {
    for (NodeId lv : sub.graph.Neighbors(lu)) {
      EXPECT_TRUE(g.HasEdge(sub.to_original[lu], sub.to_original[lv]));
    }
  }
}

TEST(InduceTest, DuplicatesIgnored) {
  Graph g = testing::MakeCycle(5);
  std::vector<NodeId> nodes = {0, 1, 1, 0, 2};
  InducedSubgraph sub = Induce(g, nodes);
  EXPECT_EQ(sub.graph.NumNodes(), 3u);
}

TEST(InternalEdgeCountTest, CliqueSubset) {
  Graph g = testing::MakeComplete(6);
  std::vector<NodeId> nodes = {0, 1, 2, 3};
  EXPECT_EQ(InternalEdgeCount(g, nodes), 6u);
}

TEST(EdgeDensityTest, CliqueVsPath) {
  Graph clique = testing::MakeComplete(8);
  Graph path = testing::MakePath(8);
  std::vector<NodeId> all = {0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_GT(EdgeDensity(clique, all), EdgeDensity(path, all));
  EXPECT_DOUBLE_EQ(EdgeDensity(clique, all), 28.0 / 8.0);
  EXPECT_DOUBLE_EQ(EdgeDensity(path, all), 7.0 / 8.0);
}

TEST(RandomBfsBallTest, SizeAndConnectivity) {
  Graph g = Grid3D(8, 8, 8, true);
  Rng rng(3);
  std::vector<NodeId> ball = RandomBfsBall(g, 0, 60, rng);
  EXPECT_EQ(ball.size(), 60u);
  EXPECT_EQ(ball[0], 0u);
  // Connected: the induced subgraph has one component.
  InducedSubgraph sub = Induce(g, ball);
  EXPECT_EQ(LargestComponent(sub.graph).size(), sub.graph.NumNodes());
}

TEST(RandomBfsBallTest, ExhaustsSmallComponent) {
  GraphBuilder b(10);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(5, 6);  // separate component
  Graph g = b.Build();
  Rng rng(4);
  std::vector<NodeId> ball = RandomBfsBall(g, 0, 100, rng);
  EXPECT_EQ(ball.size(), 3u);
  EXPECT_TRUE(std::find(ball.begin(), ball.end(), 5u) == ball.end());
}

TEST(RandomBfsBallTest, DifferentSeedsDifferentBalls) {
  Graph g = PowerlawCluster(2000, 4, 0.2, 5);
  Rng rng1(10), rng2(20);
  auto b1 = RandomBfsBall(g, 100, 50, rng1);
  auto b2 = RandomBfsBall(g, 100, 50, rng2);
  EXPECT_NE(b1, b2);  // randomized visit order
}

TEST(ConnectedComponentsTest, CountsComponents) {
  GraphBuilder b(7);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(3, 4);
  Graph g = b.Build();  // components {0,1,2}, {3,4}, {5}, {6}
  ComponentLabels cc = ConnectedComponents(g);
  EXPECT_EQ(cc.num_components, 4u);
  EXPECT_EQ(cc.label[0], cc.label[2]);
  EXPECT_NE(cc.label[0], cc.label[3]);
  EXPECT_NE(cc.label[5], cc.label[6]);
}

TEST(RestrictToLargestComponentTest, DropsSmallComponentsAndRelabels) {
  GraphBuilder b(9);
  b.AddEdge(0, 2);
  b.AddEdge(2, 4);
  b.AddEdge(4, 6);
  b.AddEdge(7, 8);  // smaller component; nodes 1,3,5 isolated
  Graph g = b.Build();
  Graph lcc = RestrictToLargestComponent(g);
  EXPECT_EQ(lcc.NumNodes(), 4u);
  EXPECT_EQ(lcc.NumEdges(), 3u);
  EXPECT_EQ(ConnectedComponents(lcc).num_components, 1u);
}

TEST(RestrictToLargestComponentTest, ConnectedGraphUnchangedUpToLabels) {
  Graph g = testing::MakeCycle(12);
  Graph lcc = RestrictToLargestComponent(g);
  EXPECT_EQ(lcc.NumNodes(), 12u);
  EXPECT_EQ(lcc.NumEdges(), 12u);
}

TEST(LargestComponentTest, PicksBiggest) {
  GraphBuilder b(10);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 3);
  b.AddEdge(7, 8);
  Graph g = b.Build();
  std::vector<NodeId> lc = LargestComponent(g);
  EXPECT_EQ(lc, (std::vector<NodeId>{0, 1, 2, 3}));
}

}  // namespace
}  // namespace hkpr
