// Tests for hedged requests (AsyncQueryService + HedgeOptions): hedged
// results are bit-identical to directly invoking whichever backend won,
// a query completes exactly once whichever side wins, the hedged /
// hedge_wins counters and RoutingEvent stamps stay consistent, and
// hedging is inert when disabled, un-advised (rule router), or pinned.

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph_builder.h"
#include "hkpr/backend.h"
#include "hkpr/queries.h"
#include "hkpr/router.h"
#include "service/async_query_service.h"

namespace hkpr {
namespace {

ApproxParams TestParams(double delta) {
  ApproxParams p;
  p.t = 5.0;
  p.eps_r = 0.5;
  p.delta = delta;
  p.p_f = 1e-4;
  return p;
}

void ExpectSameVector(const SparseVector& a, const SparseVector& b) {
  ASSERT_EQ(a.nnz(), b.nnz());
  EXPECT_DOUBLE_EQ(a.degree_offset(), b.degree_offset());
  for (const auto& e : a.entries()) EXPECT_DOUBLE_EQ(b.Get(e.key), e.value);
}

/// Same routing graph the router tests use: a 600-cycle, a degree-100
/// hub, and a pendant leaf — big enough that no small-graph rule fires.
Graph MakeRoutingGraph() {
  GraphBuilder b(602);
  for (uint32_t v = 0; v < 600; ++v) b.AddEdge(v, (v + 1) % 600);
  for (uint32_t v = 0; v < 100; ++v) b.AddEdge(600, v);
  b.AddEdge(601, 300);
  return b.Build();
}

/// A test policy that always routes to `primary` and always advises
/// hedging with `runner_up` after `p95_us` — the deterministic stand-in
/// for a trained LearnedRouter.
class AlwaysHedgePolicy : public RoutingPolicy {
 public:
  AlwaysHedgePolicy(std::string primary, std::string runner_up,
                    double p95_us = 0.0)
      : primary_(std::move(primary)),
        runner_up_(std::move(runner_up)),
        p95_us_(p95_us) {}

  std::string_view Route(const RoutingQuery&) const override {
    return primary_;
  }
  std::optional<HedgeAdvice> Advise(const RoutingQuery&,
                                    uint32_t) const override {
    HedgeAdvice advice;
    advice.backend = runner_up_;
    advice.backend_id = StableBackendId(runner_up_);
    advice.primary_p95_us = p95_us_;
    return advice;
  }
  std::string_view name() const override { return "always-hedge"; }

 private:
  std::string primary_;
  std::string runner_up_;
  double p95_us_;
};

ServiceOptions HedgedOptions(std::shared_ptr<const RoutingPolicy> router) {
  ServiceOptions options;
  options.num_workers = 2;
  options.cache_capacity = 0;  // every query computes (and may hedge)
  options.backend.name = std::string(kAutoBackend);
  options.router = std::move(router);
  options.hedge.enabled = true;
  options.hedge.min_trigger_us = 0;  // fire as soon as the monitor wakes
  return options;
}

TEST(HedgeServiceTest, HedgedResultsBitIdenticalToWinningBackend) {
  const Graph g = MakeRoutingGraph();
  const ApproxParams params = TestParams(1e-3);
  const uint64_t kSeed = 99;

  AsyncQueryService service(
      g, params, kSeed,
      HedgedOptions(std::make_shared<AlwaysHedgePolicy>("tea+", "hk-relax")));

  // Sequential submit-then-wait pins query index i to seeds[i]; the
  // hedge reuses the *same* index, so whichever side wins, the result
  // must be bit-identical to directly invoking that backend at index i.
  QueryExecutor direct_primary(g, params, kSeed, BackendSpec{.name = "tea+"});
  QueryExecutor direct_hedge(g, params, kSeed,
                             BackendSpec{.name = "hk-relax"});
  const std::vector<NodeId> seeds = {450, 600, 601, 42, 7, 300, 600, 123};
  for (size_t i = 0; i < seeds.size(); ++i) {
    const QueryResult result = service.Submit(seeds[i]).result.get();
    ASSERT_EQ(result.status, QueryStatus::kOk);
    ASSERT_TRUE(result.backend == "tea+" || result.backend == "hk-relax")
        << result.backend;
    QueryExecutor& winner =
        result.backend == "tea+" ? direct_primary : direct_hedge;
    ExpectSameVector(*result.estimate, winner.Answer(seeds[i], i));
  }

  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.completed, seeds.size());
  EXPECT_LE(stats.hedge_wins, stats.hedged);
}

TEST(HedgeServiceTest, SlowPrimaryFiresHedgeAndCountsWins) {
  const Graph g = MakeRoutingGraph();
  // A tight delta makes the Monte-Carlo primary orders of magnitude
  // slower than the HK-Relax runner-up, so the hedge reliably fires
  // (p95 prediction 0 + min_trigger 0) and reliably wins.
  const ApproxParams params = TestParams(1e-4);
  const uint64_t kSeed = 7;

  AsyncQueryService service(g, params, kSeed,
                            HedgedOptions(std::make_shared<AlwaysHedgePolicy>(
                                "monte-carlo", "hk-relax")));

  QueryExecutor direct_primary(g, params, kSeed,
                               BackendSpec{.name = "monte-carlo"});
  QueryExecutor direct_hedge(g, params, kSeed,
                             BackendSpec{.name = "hk-relax"});
  const size_t kQueries = 16;
  for (size_t i = 0; i < kQueries; ++i) {
    const QueryResult result =
        service.Submit(static_cast<NodeId>(i * 37 % 600)).result.get();
    ASSERT_EQ(result.status, QueryStatus::kOk);
    QueryExecutor& winner =
        result.backend == "monte-carlo" ? direct_primary : direct_hedge;
    ExpectSameVector(*result.estimate,
                     winner.Answer(static_cast<NodeId>(i * 37 % 600), i));
  }

  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.completed, kQueries);
  EXPECT_GE(stats.hedged, 1u) << "slow primary never triggered a hedge";
  EXPECT_GE(stats.hedge_wins, 1u) << "fast runner-up never won";
  EXPECT_LE(stats.hedge_wins, stats.hedged);

  // One routing event per completed query — the losing side of a hedge
  // records nothing — and the hedge stamps are internally consistent.
  std::vector<RoutingEvent> events = service.DrainRoutingEvents();
  ASSERT_EQ(events.size(), kQueries);
  uint64_t stamped_hedged = 0;
  for (const RoutingEvent& event : events) {
    if (event.hedge_won == 1) {
      EXPECT_EQ(event.hedged, 1) << "a hedge win implies a fired hedge";
      EXPECT_EQ(event.backend_id, StableBackendId("hk-relax"));
    }
    stamped_hedged += event.hedged;
  }
  // Every stamped event had a fired hedge; the counter may run ahead of
  // the stamps by the (benign) fire-vs-claim race.
  EXPECT_LE(stamped_hedged, stats.hedged);
  EXPECT_GE(stamped_hedged, stats.hedge_wins);
}

TEST(HedgeServiceTest, DisabledUnadvisedOrPinnedNeverHedges) {
  const Graph g = MakeRoutingGraph();
  const ApproxParams params = TestParams(1e-3);

  // Hedging disabled: the advice-happy policy changes nothing.
  {
    ServiceOptions options =
        HedgedOptions(std::make_shared<AlwaysHedgePolicy>("tea+", "hk-relax"));
    options.hedge.enabled = false;
    AsyncQueryService service(g, params, 1, options);
    for (NodeId seed = 0; seed < 8; ++seed) {
      ASSERT_EQ(service.Submit(seed).result.get().status, QueryStatus::kOk);
    }
    EXPECT_EQ(service.Stats().hedged, 0u);
    EXPECT_EQ(service.Stats().hedge_wins, 0u);
  }

  // Enabled but routed through the rule policy: Advise declines, hedging
  // is inert.
  {
    ServiceOptions options = HedgedOptions(nullptr);  // DefaultRouter()
    AsyncQueryService service(g, params, 1, options);
    for (NodeId seed = 0; seed < 8; ++seed) {
      ASSERT_EQ(service.Submit(seed).result.get().status, QueryStatus::kOk);
    }
    EXPECT_EQ(service.Stats().hedged, 0u);
  }

  // Pinned plans (explicit backend, not routed) never hedge even with an
  // advice-happy policy installed.
  {
    AsyncQueryService service(
        g, params, 1,
        HedgedOptions(std::make_shared<AlwaysHedgePolicy>("tea+",
                                                          "hk-relax")));
    SubmitOptions pinned;
    pinned.plan.backend = "tea+";
    for (NodeId seed = 0; seed < 8; ++seed) {
      ASSERT_EQ(service.Submit(seed, pinned).result.get().status,
                QueryStatus::kOk);
    }
    EXPECT_EQ(service.Stats().hedged, 0u);
  }
}

TEST(HedgeServiceTest, ShutdownWithArmedHedgesDrainsCleanly) {
  const Graph g = MakeRoutingGraph();
  const ApproxParams params = TestParams(1e-4);

  // Submit a burst of slow hedged queries and shut down without waiting:
  // every future must still resolve (no stranded promises, no leaks).
  auto service = std::make_unique<AsyncQueryService>(
      g, params, 3,
      HedgedOptions(
          std::make_shared<AlwaysHedgePolicy>("monte-carlo", "hk-relax")));
  std::vector<QueryHandle> handles;
  for (NodeId seed = 0; seed < 24; ++seed) {
    handles.push_back(service->Submit(seed));
  }
  service->Shutdown();
  size_t ok = 0;
  for (QueryHandle& handle : handles) {
    const QueryResult result = handle.result.get();
    ASSERT_TRUE(result.status == QueryStatus::kOk ||
                result.status == QueryStatus::kRejected)
        << QueryStatusName(result.status);
    if (result.status == QueryStatus::kOk) ++ok;
  }
  EXPECT_GE(ok, 1u);
  service.reset();
}

}  // namespace
}  // namespace hkpr
