// End-to-end local clustering tests (estimate + sweep).

#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/hk_relax.h"
#include "clustering/local_cluster.h"
#include "clustering/metrics.h"
#include "graph/generators.h"
#include "hkpr/tea.h"
#include "hkpr/tea_plus.h"
#include "test_util.h"

namespace hkpr {
namespace {

ApproxParams ClusterParams(const Graph& g) {
  ApproxParams p;
  p.t = 5.0;
  p.eps_r = 0.5;
  // delta must sit below the typical normalized HKPR of relevant nodes
  // (~1/vol near the seed); 1/(10 vol) keeps the guarantee meaningful even
  // on the small test graphs.
  p.delta = 1.0 / (10.0 * static_cast<double>(g.Volume()));
  p.p_f = 1e-4;
  return p;
}

TEST(LocalClusterTest, BarbellSeparation) {
  Graph g = testing::MakeBarbell(8);
  TeaPlusEstimator est(g, ClusterParams(g), 1);
  LocalClusterResult result = LocalCluster(g, est, 0);
  std::vector<NodeId> sorted = result.cluster;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<NodeId>{0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_LT(result.conductance, 0.05);
}

TEST(LocalClusterTest, TimingsPopulated) {
  Graph g = PowerlawCluster(500, 4, 0.3, 2);
  TeaPlusEstimator est(g, ClusterParams(g), 3);
  LocalClusterResult result = LocalCluster(g, est, 5);
  EXPECT_GE(result.estimate_ms, 0.0);
  EXPECT_GE(result.sweep_ms, 0.0);
  EXPECT_GE(result.total_ms, result.estimate_ms);
  EXPECT_GT(result.support_size, 0u);
}

TEST(LocalClusterTest, TeaPlusRecoversPlantedCommunity) {
  CommunityGraph cg = PlantedPartition(10, 50, 0.3, 0.002, 4);
  TeaPlusEstimator est(cg.graph, ClusterParams(cg.graph), 5);
  const auto& truth = cg.communities.Community(3);
  LocalClusterResult result = LocalCluster(cg.graph, est, truth[7]);
  const F1Stats f1 = ComputeF1(result.cluster, truth);
  EXPECT_GT(f1.f1, 0.7);
}

TEST(LocalClusterTest, TeaAndTeaPlusAgreeOnQuality) {
  CommunityGraph cg = PlantedPartition(8, 40, 0.35, 0.003, 6);
  const ApproxParams params = ClusterParams(cg.graph);
  TeaEstimator tea(cg.graph, params, 7);
  TeaPlusEstimator tea_plus(cg.graph, params, 7);
  const NodeId seed = cg.communities.Community(0)[0];
  LocalClusterResult a = LocalCluster(cg.graph, tea, seed);
  LocalClusterResult b = LocalCluster(cg.graph, tea_plus, seed);
  // Same guarantee, so the clusters should have comparable conductance.
  EXPECT_NEAR(a.conductance, b.conductance, 0.15);
}

TEST(LocalClusterTest, HkRelaxComparableConductance) {
  CommunityGraph cg = PlantedPartition(8, 40, 0.35, 0.003, 8);
  HkRelaxOptions options;
  options.eps_a = 1e-5;
  HkRelaxEstimator relax(cg.graph, options);
  TeaPlusEstimator tea_plus(cg.graph, ClusterParams(cg.graph), 9);
  const NodeId seed = cg.communities.Community(5)[3];
  LocalClusterResult a = LocalCluster(cg.graph, relax, seed);
  LocalClusterResult b = LocalCluster(cg.graph, tea_plus, seed);
  EXPECT_NEAR(a.conductance, b.conductance, 0.15);
}

TEST(LocalClusterTest, ClusterIsLocalOnGrid) {
  Graph g = Grid3D(16, 16, 16, true);
  ApproxParams params = ClusterParams(g);
  params.delta = 1e-4;  // keep the estimate local
  TeaPlusEstimator est(g, params, 10);
  LocalClusterResult result = LocalCluster(g, est, 100);
  EXPECT_LT(result.cluster.size(), g.NumNodes() / 2);
  EXPECT_FALSE(result.cluster.empty());
}

TEST(LocalClusterTest, SeedUsuallyInCluster) {
  // HKPR mass is highest near the seed; on community-structured graphs the
  // best sweep prefix should contain the seed.
  CommunityGraph cg = PlantedPartition(6, 50, 0.3, 0.002, 11);
  TeaPlusEstimator est(cg.graph, ClusterParams(cg.graph), 12);
  int contained = 0;
  for (int trial = 0; trial < 5; ++trial) {
    const NodeId seed = cg.communities.Community(trial)[trial];
    LocalClusterResult result = LocalCluster(cg.graph, est, seed);
    if (std::find(result.cluster.begin(), result.cluster.end(), seed) !=
        result.cluster.end()) {
      ++contained;
    }
  }
  EXPECT_GE(contained, 4);
}

}  // namespace
}  // namespace hkpr
