// Tests for the async serving subsystem: AsyncQueryService determinism
// against the synchronous batch path, the result cache (hits never
// recompute, single-flight dedup, LRU bounds, invalidation), admission
// control, deadlines, cancellation, and the stats/latency plumbing.

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "baselines/hk_relax.h"
#include "graph/generators.h"
#include "hkpr/backend.h"
#include "hkpr/queries.h"
#include "service/async_query_service.h"
#include "service/result_cache.h"
#include "service/service_stats.h"
#include "test_util.h"

namespace hkpr {
namespace {

ApproxParams TestParams(double delta) {
  ApproxParams p;
  p.t = 5.0;
  p.eps_r = 0.5;
  p.delta = delta;
  p.p_f = 1e-4;
  return p;
}

void ExpectSameVector(const SparseVector& a, const SparseVector& b) {
  ASSERT_EQ(a.nnz(), b.nnz());
  EXPECT_DOUBLE_EQ(a.degree_offset(), b.degree_offset());
  for (const auto& e : a.entries()) EXPECT_DOUBLE_EQ(b.Get(e.key), e.value);
}

std::vector<QueryResult> SubmitAllAndWait(AsyncQueryService& service,
                                          const std::vector<NodeId>& seeds) {
  std::vector<QueryHandle> handles;
  handles.reserve(seeds.size());
  for (NodeId seed : seeds) handles.push_back(service.Submit(seed));
  std::vector<QueryResult> results;
  results.reserve(handles.size());
  for (QueryHandle& handle : handles) results.push_back(handle.result.get());
  return results;
}

TEST(AsyncQueryServiceTest, BitIdenticalToBatchQueryEngine) {
  // The acceptance-criterion test: the async path must return bit-identical
  // estimates to the synchronous BatchQueryEngine for the same (seed
  // sequence, params, engine seed) — the query index assigned at submission
  // drives the RNG in both. Includes a duplicate seed: with the cache
  // disabled it is recomputed at its own index, exactly like the engine.
  Graph g = PowerlawCluster(400, 3, 0.3, 7);
  const ApproxParams params = TestParams(1e-5);
  const std::vector<NodeId> seeds = {1, 5, 9, 5, 22, 60, 120, 350};

  BatchQueryEngine engine(g, params, 77, 2);
  const auto expected = engine.EstimateBatch(seeds);

  for (uint32_t workers : {1u, 3u}) {
    ServiceOptions options;
    options.num_workers = workers;
    options.cache_capacity = 0;  // determinism across duplicates
    AsyncQueryService service(g, params, 77, options);
    const auto results = SubmitAllAndWait(service, seeds);
    ASSERT_EQ(results.size(), expected.size());
    for (size_t i = 0; i < results.size(); ++i) {
      ASSERT_EQ(results[i].status, QueryStatus::kOk) << "query " << i;
      ExpectSameVector(*results[i].estimate, expected[i]);
    }
  }
}

TEST(AsyncQueryServiceTest, ColdCachedPassMatchesBatchOnDistinctSeeds) {
  // With the cache enabled, a cold pass over distinct seeds still computes
  // each query at its submission index — same bits as the batch engine.
  Graph g = PowerlawCluster(300, 3, 0.3, 8);
  const ApproxParams params = TestParams(1e-4);
  const std::vector<NodeId> seeds = {2, 8, 31, 100};

  BatchQueryEngine engine(g, params, 55, 2);
  const auto expected = engine.EstimateBatch(seeds);

  ServiceOptions options;
  options.num_workers = 2;
  AsyncQueryService service(g, params, 55, options);
  const auto results = SubmitAllAndWait(service, seeds);
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_EQ(results[i].status, QueryStatus::kOk);
    ExpectSameVector(*results[i].estimate, expected[i]);
  }
}

TEST(AsyncQueryServiceTest, TopKMatchesBatchTopK) {
  Graph g = PowerlawCluster(400, 4, 0.3, 10);
  const ApproxParams params = TestParams(1e-5);
  const std::vector<NodeId> seeds = {3, 17, 200};

  BatchQueryEngine engine(g, params, 33, 2);
  const auto expected = engine.TopKBatch(seeds, 10);

  ServiceOptions options;
  options.num_workers = 2;
  options.cache_capacity = 0;
  AsyncQueryService service(g, params, 33, options);
  std::vector<QueryHandle> handles;
  for (NodeId seed : seeds) handles.push_back(service.SubmitTopK(seed, 10));
  for (size_t i = 0; i < handles.size(); ++i) {
    const QueryResult result = handles[i].result.get();
    ASSERT_EQ(result.status, QueryStatus::kOk);
    ASSERT_EQ(result.top_k.size(), expected[i].size());
    for (size_t j = 0; j < expected[i].size(); ++j) {
      EXPECT_EQ(result.top_k[j].node, expected[i][j].node);
      EXPECT_DOUBLE_EQ(result.top_k[j].score, expected[i][j].score);
    }
  }
}

TEST(AsyncQueryServiceTest, CacheHitsNeverRecompute) {
  Graph g = testing::MakeComplete(16);
  const ApproxParams params = TestParams(1e-3);
  ServiceOptions options;
  options.num_workers = 2;
  AsyncQueryService service(g, params, 13, options);

  const QueryResult first = service.Submit(5).result.get();
  ASSERT_EQ(first.status, QueryStatus::kOk);
  EXPECT_FALSE(first.from_cache);

  for (int i = 0; i < 9; ++i) {
    const QueryResult repeat = service.Submit(5).result.get();
    ASSERT_EQ(repeat.status, QueryStatus::kOk);
    EXPECT_TRUE(repeat.from_cache);
    // Pointer identity: the very same cached object, not a recomputation.
    EXPECT_EQ(repeat.estimate.get(), first.estimate.get());
  }
  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.computed, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_hits + stats.coalesced, 9u);
  EXPECT_EQ(stats.completed, 10u);
  EXPECT_EQ(stats.latency_count, 10u);
}

TEST(AsyncQueryServiceTest, SingleFlightCoalescesConcurrentDuplicates) {
  // A burst of identical queries must cost exactly one computation: the
  // first processed request leads, everyone else hits or waits on it.
  Graph g = PowerlawCluster(500, 4, 0.3, 3);
  const ApproxParams params = TestParams(1e-5);
  ServiceOptions options;
  options.num_workers = 4;
  AsyncQueryService service(g, params, 17, options);

  constexpr int kBurst = 32;
  const auto results =
      SubmitAllAndWait(service, std::vector<NodeId>(kBurst, 9));
  for (const QueryResult& result : results) {
    ASSERT_EQ(result.status, QueryStatus::kOk);
    EXPECT_EQ(result.estimate.get(), results[0].estimate.get());
  }
  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.computed, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_hits + stats.coalesced, kBurst - 1u);
}

TEST(AsyncQueryServiceTest, AdmissionControlRejectsWhenQueueFull) {
  // max_queue_depth = 0 degenerates admission to "reject everything" —
  // a deterministic stand-in for a saturated queue.
  Graph g = testing::MakeComplete(8);
  ServiceOptions options;
  options.num_workers = 1;
  options.max_queue_depth = 0;
  AsyncQueryService service(g, TestParams(1e-2), 5, options);

  for (int i = 0; i < 5; ++i) {
    QueryResult result = service.Submit(1).result.get();
    EXPECT_EQ(result.status, QueryStatus::kRejected);
    EXPECT_EQ(result.estimate, nullptr);
  }
  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.submitted, 5u);
  EXPECT_EQ(stats.rejected, 5u);
  EXPECT_EQ(stats.computed, 0u);
}

TEST(AsyncQueryServiceTest, ExpiredDeadlineSkipsComputation) {
  Graph g = PowerlawCluster(2000, 4, 0.3, 6);
  const ApproxParams params = TestParams(1e-6);
  ServiceOptions options;
  options.num_workers = 1;
  options.cache_capacity = 0;
  AsyncQueryService service(g, params, 7, options);

  // Keep the single worker busy so the deadline of the second request has
  // certainly passed by the time it is dequeued.
  QueryHandle blocker = service.Submit(3);
  SubmitOptions expired;
  expired.timeout = std::chrono::nanoseconds(1);
  QueryHandle doomed = service.Submit(4, expired);

  EXPECT_EQ(blocker.result.get().status, QueryStatus::kOk);
  EXPECT_EQ(doomed.result.get().status, QueryStatus::kExpired);
  EXPECT_EQ(service.Stats().expired, 1u);
}

TEST(AsyncQueryServiceTest, CancelWinsWhileQueued) {
  Graph g = PowerlawCluster(2000, 4, 0.3, 9);
  const ApproxParams params = TestParams(1e-6);
  ServiceOptions options;
  options.num_workers = 1;
  options.cache_capacity = 0;
  AsyncQueryService service(g, params, 11, options);

  QueryHandle blocker = service.Submit(3);
  QueryHandle cancelled = service.Submit(4);
  cancelled.Cancel();

  EXPECT_EQ(blocker.result.get().status, QueryStatus::kOk);
  EXPECT_EQ(cancelled.result.get().status, QueryStatus::kCancelled);
  EXPECT_EQ(service.Stats().cancelled, 1u);
}

TEST(AsyncQueryServiceTest, InvalidateCacheForcesRecompute) {
  Graph g = testing::MakeComplete(16);
  ServiceOptions options;
  options.num_workers = 1;
  AsyncQueryService service(g, TestParams(1e-3), 19, options);

  const QueryResult before = service.Submit(2).result.get();
  ASSERT_EQ(before.status, QueryStatus::kOk);
  service.InvalidateCache();
  const QueryResult after = service.Submit(2).result.get();
  ASSERT_EQ(after.status, QueryStatus::kOk);
  EXPECT_FALSE(after.from_cache);

  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.computed, 2u);
  EXPECT_EQ(stats.cache_misses, 2u);
}

TEST(AsyncQueryServiceTest, HkRelaxBackendMatchesDirectEstimator) {
  // The estimator choice is a service option, not a hard-wired TEA+ path;
  // HK-Relax is deterministic, so the service must reproduce the direct
  // estimator's bits exactly (eps_a = eps_r * delta by construction).
  Graph g = PowerlawCluster(400, 3, 0.3, 12);
  const ApproxParams params = TestParams(1e-4);
  ServiceOptions options;
  options.num_workers = 2;
  options.backend.name = "hk-relax";
  AsyncQueryService service(g, params, 23, options);
  EXPECT_EQ(service.backend_name(), "HK-Relax");
  EXPECT_EQ(service.backend_id(), StableBackendId("hk-relax"));

  HkRelaxOptions relax;
  relax.t = params.t;
  relax.eps_a = params.eps_r * params.delta;
  HkRelaxEstimator direct(g, relax);
  const SparseVector expected = direct.Estimate(31);

  const QueryResult computed = service.Submit(31).result.get();
  ASSERT_EQ(computed.status, QueryStatus::kOk);
  ExpectSameVector(*computed.estimate, expected);

  const QueryResult cached = service.Submit(31).result.get();
  EXPECT_TRUE(cached.from_cache);
  EXPECT_EQ(cached.estimate.get(), computed.estimate.get());
}

TEST(AsyncQueryServiceTest, FourBackendsBitIdenticalToBatchEngine) {
  // The acceptance criterion of the pluggable-backend refactor: the async
  // and batch paths answer through the same four registry backends — the
  // paper's central comparison (TEA+, TEA, HK-Relax, Monte-Carlo) — and per
  // backend every query is bit-identical between the two frontends for the
  // same (engine seed, query index), regardless of worker count.
  Graph g = PowerlawCluster(400, 3, 0.3, 7);
  const ApproxParams params = TestParams(1e-3);
  const std::vector<NodeId> seeds = {1, 5, 9, 22, 120, 350};

  for (const char* name : {"tea+", "tea", "hk-relax", "monte-carlo"}) {
    BackendSpec spec;
    spec.name = name;
    BatchQueryEngine engine(g, params, 77, 2, spec);
    const auto expected = engine.EstimateBatch(seeds);

    ServiceOptions options;
    options.num_workers = 3;
    options.cache_capacity = 0;  // determinism: every query computes
    options.backend = spec;
    AsyncQueryService service(g, params, 77, options);
    const auto results = SubmitAllAndWait(service, seeds);
    ASSERT_EQ(results.size(), expected.size());
    for (size_t i = 0; i < results.size(); ++i) {
      ASSERT_EQ(results[i].status, QueryStatus::kOk)
          << name << " query " << i;
      SCOPED_TRACE(std::string(name) + " query " + std::to_string(i));
      ExpectSameVector(*results[i].estimate, expected[i]);
    }
  }
}

TEST(AsyncQueryServiceTest, SnapshotVersionStampsResultsAndCacheKeys) {
  // A service built on a GraphStore snapshot co-owns the graph and stamps
  // the store version on every result; the legacy borrowed-graph path
  // reports version 0.
  GraphStore store;
  const uint64_t version = store.Publish("g", testing::MakeComplete(16));
  ASSERT_GE(version, 1u);

  ServiceOptions options;
  options.num_workers = 2;
  AsyncQueryService service(store.Get("g"), TestParams(1e-3), 13, options);
  EXPECT_EQ(service.graph_version(), version);
  EXPECT_EQ(service.graph().NumNodes(), 16u);

  const QueryResult computed = service.Submit(3).result.get();
  ASSERT_EQ(computed.status, QueryStatus::kOk);
  EXPECT_EQ(computed.graph_version, version);
  const QueryResult cached = service.Submit(3).result.get();
  EXPECT_TRUE(cached.from_cache);
  EXPECT_EQ(cached.graph_version, version);

  // The service survives the store dropping the graph: its snapshot keeps
  // the graph alive for in-flight and future queries.
  store.Remove("g");
  const QueryResult after_remove = service.Submit(5).result.get();
  EXPECT_EQ(after_remove.status, QueryStatus::kOk);

  Graph borrowed = testing::MakeComplete(8);
  AsyncQueryService legacy(borrowed, TestParams(1e-2), 5, options);
  EXPECT_EQ(legacy.graph_version(), 0u);
  EXPECT_EQ(legacy.Submit(1).result.get().graph_version, 0u);
}

TEST(AsyncQueryServiceTest, ShutdownIsIdempotentAndDrains) {
  Graph g = PowerlawCluster(400, 3, 0.3, 6);
  ServiceOptions options;
  options.num_workers = 2;
  AsyncQueryService service(g, TestParams(1e-4), 43, options);
  std::vector<QueryHandle> handles;
  for (NodeId seed = 0; seed < 12; ++seed) {
    handles.push_back(service.Submit(seed));
  }
  service.Shutdown();
  for (QueryHandle& handle : handles) {
    EXPECT_EQ(handle.result.get().status, QueryStatus::kOk);
  }
  // Post-shutdown submissions are rejected, not lost.
  EXPECT_EQ(service.Submit(1).result.get().status, QueryStatus::kRejected);
  service.Shutdown();  // second call: no-op, no double-join
}

TEST(AsyncQueryServiceTest, DestructorDrainsPendingQueries) {
  Graph g = PowerlawCluster(500, 3, 0.3, 4);
  const ApproxParams params = TestParams(1e-5);
  std::vector<QueryHandle> handles;
  {
    ServiceOptions options;
    options.num_workers = 2;
    AsyncQueryService service(g, params, 29, options);
    for (NodeId seed = 0; seed < 20; ++seed) {
      handles.push_back(service.Submit(seed));
    }
    // Destructor runs here with most queries still queued.
  }
  for (QueryHandle& handle : handles) {
    EXPECT_EQ(handle.result.get().status, QueryStatus::kOk);
  }
}

// ---------------------------------------------------------------------------
// ResultCache unit tests.

ResultCacheKey MakeKey(NodeId seed, uint64_t version = 0) {
  ResultCacheKey key;
  key.graph_version = version;
  key.seed = seed;
  key.t = 5.0;
  key.eps_r = 0.5;
  key.delta = 1e-5;
  key.p_f = 1e-6;
  return key;
}

CachedEstimate MakeValue(NodeId seed, double value) {
  SparseVector v;
  v.Add(seed, value);
  return std::make_shared<const SparseVector>(std::move(v));
}

TEST(ResultCacheTest, MissComputeHitRoundTrip) {
  ResultCache cache(64, 4);
  auto miss = cache.LookupOrStartCompute(MakeKey(7));
  ASSERT_EQ(miss.outcome, ResultCache::Outcome::kMiss);
  cache.Complete(MakeKey(7), miss.leader, MakeValue(7, 0.5));

  auto hit = cache.LookupOrStartCompute(MakeKey(7));
  ASSERT_EQ(hit.outcome, ResultCache::Outcome::kHit);
  EXPECT_DOUBLE_EQ(hit.value->Get(7), 0.5);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ResultCacheTest, DistinctBackendsNeverShareAnEntry) {
  // Two backends with bit-identical parameters must key separately: the
  // backend_id field carries the registry's stable id, which is unique per
  // registered name (collision-checked at registration).
  ResultCache cache(64, 4);
  ResultCacheKey tea_plus = MakeKey(7);
  tea_plus.backend_id = StableBackendId("tea+");
  ResultCacheKey relax = MakeKey(7);  // every other field identical
  relax.backend_id = StableBackendId("hk-relax");
  ASSERT_NE(tea_plus.backend_id, relax.backend_id);

  auto miss = cache.LookupOrStartCompute(tea_plus);
  ASSERT_EQ(miss.outcome, ResultCache::Outcome::kMiss);
  cache.Complete(tea_plus, miss.leader, MakeValue(7, 0.5));

  // The completed TEA+ entry must not satisfy the HK-Relax lookup.
  EXPECT_EQ(cache.LookupOrStartCompute(relax).outcome,
            ResultCache::Outcome::kMiss);
  EXPECT_EQ(cache.LookupOrStartCompute(tea_plus).outcome,
            ResultCache::Outcome::kHit);
}

TEST(ResultCacheTest, DifferentParamsAreDifferentKeys) {
  ResultCache cache(64, 4);
  auto a = cache.LookupOrStartCompute(MakeKey(7));
  cache.Complete(MakeKey(7), a.leader, MakeValue(7, 0.5));

  ResultCacheKey other = MakeKey(7);
  other.delta = 1e-4;
  EXPECT_EQ(cache.LookupOrStartCompute(other).outcome,
            ResultCache::Outcome::kMiss);
}

TEST(ResultCacheTest, SecondRequesterCoalescesOnInFlightLeader) {
  ResultCache cache(64, 4);
  auto leader = cache.LookupOrStartCompute(MakeKey(3));
  ASSERT_EQ(leader.outcome, ResultCache::Outcome::kMiss);

  auto follower = cache.LookupOrStartCompute(MakeKey(3));
  ASSERT_EQ(follower.outcome, ResultCache::Outcome::kInFlight);

  // Follower blocks until the leader publishes.
  std::thread completer([&] {
    cache.Complete(MakeKey(3), leader.leader, MakeValue(3, 0.25));
  });
  const CachedEstimate value = follower.pending.get();
  completer.join();
  EXPECT_DOUBLE_EQ(value->Get(3), 0.25);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsedCompletedEntry) {
  ResultCache cache(2, 1);  // one shard, two entries
  for (NodeId seed : {1u, 2u}) {
    auto miss = cache.LookupOrStartCompute(MakeKey(seed));
    cache.Complete(MakeKey(seed), miss.leader, MakeValue(seed, 1.0));
  }
  // Touch 1 so 2 becomes the LRU victim.
  ASSERT_EQ(cache.LookupOrStartCompute(MakeKey(1)).outcome,
            ResultCache::Outcome::kHit);
  auto miss = cache.LookupOrStartCompute(MakeKey(3));
  ASSERT_EQ(miss.outcome, ResultCache::Outcome::kMiss);
  cache.Complete(MakeKey(3), miss.leader, MakeValue(3, 1.0));

  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.LookupOrStartCompute(MakeKey(1)).outcome,
            ResultCache::Outcome::kHit);
  EXPECT_EQ(cache.LookupOrStartCompute(MakeKey(2)).outcome,
            ResultCache::Outcome::kMiss);
}

TEST(ResultCacheTest, InvalidateDropsEntriesAndBumpsVersion) {
  ResultCache cache(64, 4);
  auto miss = cache.LookupOrStartCompute(MakeKey(9));
  cache.Complete(MakeKey(9), miss.leader, MakeValue(9, 1.0));
  ASSERT_EQ(cache.size(), 1u);

  const uint64_t v1 = cache.Invalidate();
  EXPECT_EQ(v1, cache.version());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.LookupOrStartCompute(MakeKey(9)).outcome,
            ResultCache::Outcome::kMiss);
}

TEST(ResultCacheTest, CompleteAfterInvalidateStillWakesFollowers) {
  ResultCache cache(64, 4);
  auto leader = cache.LookupOrStartCompute(MakeKey(5));
  auto follower = cache.LookupOrStartCompute(MakeKey(5));
  ASSERT_EQ(follower.outcome, ResultCache::Outcome::kInFlight);

  cache.Invalidate();  // entry is gone, promise is not
  cache.Complete(MakeKey(5), leader.leader, MakeValue(5, 2.0));
  EXPECT_DOUBLE_EQ(follower.pending.get()->Get(5), 2.0);
  // The stale completion must not resurrect a cache entry.
  EXPECT_EQ(cache.LookupOrStartCompute(MakeKey(5)).outcome,
            ResultCache::Outcome::kMiss);
}

// ---------------------------------------------------------------------------
// ServiceStats / latency histogram.

TEST(ServiceStatsTest, HistogramPercentilesAreOrderedAndBucketed) {
  LatencyHistogram histogram;
  for (int i = 0; i < 99; ++i) histogram.Record(1e-3);  // 1ms
  histogram.Record(1.0);                                // one 1s outlier
  EXPECT_EQ(histogram.TotalCount(), 100u);

  const double p50 = histogram.PercentileMs(0.50);
  const double p99 = histogram.PercentileMs(0.99);
  const double p100 = histogram.PercentileMs(1.0);
  EXPECT_LE(p50, p99);
  EXPECT_LT(p99, p100);
  // 1ms lands in the [512us, 1024us) bucket; its upper bound is ~1.023ms.
  EXPECT_NEAR(p50, 1.023, 0.001);
  EXPECT_GT(p100, 500.0);  // the outlier dominates the last percentile
}

TEST(ServiceStatsTest, SummedBucketPercentilesMatchCombinedHistogram) {
  // The aggregation contract MultiGraphService and the telemetry merge
  // rely on: summing raw bucket counts from N independent histograms and
  // running LatencyPercentileMs over the sums yields exactly the
  // percentiles of one histogram that saw every sample. (Percentile
  // *values* do not add; bucket counts do.)
  constexpr int kServices = 3;
  LatencyHistogram shards[kServices];
  LatencyHistogram combined;
  // Distinct latency mixes per shard, spanning several log2 buckets.
  const double samples[kServices][4] = {
      {1e-4, 2e-4, 1e-3, 5e-3},   // fast shard
      {1e-3, 1e-3, 2e-2, 2e-2},   // medium shard
      {5e-3, 1e-1, 1e-1, 1.0},    // slow shard with an outlier
  };
  for (int s = 0; s < kServices; ++s) {
    for (double v : samples[s]) {
      shards[s].Record(v);
      combined.Record(v);
    }
  }

  std::array<uint64_t, LatencyHistogram::kBuckets> summed{};
  for (int s = 0; s < kServices; ++s) {
    const auto counts = shards[s].BucketCounts();
    for (size_t b = 0; b < counts.size(); ++b) summed[b] += counts[b];
  }

  for (double q : {0.5, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(LatencyPercentileMs(summed, q), combined.PercentileMs(q))
        << "q=" << q;
  }
}

TEST(ServiceStatsTest, SnapshotFoldsCounters) {
  ServiceStats stats;
  stats.RecordSubmitted();
  stats.RecordSubmitted();
  stats.RecordCacheHit();
  stats.RecordCompleted(2e-3);
  const ServiceStatsSnapshot snap = stats.TakeSnapshot();
  EXPECT_EQ(snap.submitted, 2u);
  EXPECT_EQ(snap.cache_hits, 1u);
  EXPECT_EQ(snap.completed, 1u);
  EXPECT_EQ(snap.latency_count, 1u);
  EXPECT_GT(snap.latency_p50_ms, 0.0);
}

}  // namespace
}  // namespace hkpr
