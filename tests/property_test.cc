// Parameterized property sweeps: invariants that must hold for every
// (graph family, estimator, parameter) combination.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <tuple>

#include "baselines/hk_relax.h"
#include "clustering/local_cluster.h"
#include "clustering/metrics.h"
#include "graph/generators.h"
#include "hkpr/monte_carlo.h"
#include "hkpr/power_method.h"
#include "hkpr/tea.h"
#include "hkpr/tea_plus.h"
#include "test_util.h"

namespace hkpr {
namespace {

enum class GraphFamily { kBarbell, kPlc, kGrid, kErdosRenyi, kSbm };
enum class Algorithm { kMonteCarlo, kTea, kTeaPlus, kHkRelax };

std::string FamilyName(GraphFamily f) {
  switch (f) {
    case GraphFamily::kBarbell:
      return "Barbell";
    case GraphFamily::kPlc:
      return "Plc";
    case GraphFamily::kGrid:
      return "Grid";
    case GraphFamily::kErdosRenyi:
      return "ER";
    case GraphFamily::kSbm:
      return "Sbm";
  }
  return "?";
}

std::string AlgoName(Algorithm a) {
  switch (a) {
    case Algorithm::kMonteCarlo:
      return "MC";
    case Algorithm::kTea:
      return "TEA";
    case Algorithm::kTeaPlus:
      return "TEAplus";
    case Algorithm::kHkRelax:
      return "HKRelax";
  }
  return "?";
}

Graph MakeFamily(GraphFamily f) {
  switch (f) {
    case GraphFamily::kBarbell:
      return testing::MakeBarbell(10);
    case GraphFamily::kPlc:
      return PowerlawCluster(400, 4, 0.3, 17);
    case GraphFamily::kGrid:
      return Grid3D(7, 7, 7, true);
    case GraphFamily::kErdosRenyi:
      return ErdosRenyiGnm(300, 1200, 18);
    case GraphFamily::kSbm:
      return PlantedPartition(6, 50, 0.3, 0.003, 19).graph;
  }
  return Graph();
}

std::unique_ptr<HkprEstimator> MakeAlgorithm(Algorithm a, const Graph& g,
                                             double t, double delta) {
  ApproxParams params;
  params.t = t;
  params.eps_r = 0.5;
  params.delta = delta;
  params.p_f = 1e-4;
  switch (a) {
    case Algorithm::kMonteCarlo:
      return std::make_unique<MonteCarloEstimator>(g, params, 101);
    case Algorithm::kTea:
      return std::make_unique<TeaEstimator>(g, params, 102);
    case Algorithm::kTeaPlus:
      return std::make_unique<TeaPlusEstimator>(g, params, 103);
    case Algorithm::kHkRelax: {
      HkRelaxOptions options;
      options.t = t;
      options.eps_a = 0.5 * delta;  // eps_a = eps_r * delta
      return std::make_unique<HkRelaxEstimator>(g, options);
    }
  }
  return nullptr;
}

class EstimatorPropertyTest
    : public ::testing::TestWithParam<std::tuple<GraphFamily, Algorithm>> {};

TEST_P(EstimatorPropertyTest, EstimateIsValidSubstochasticVector) {
  const auto [family, algo] = GetParam();
  Graph g = MakeFamily(family);
  auto est = MakeAlgorithm(algo, g, 5.0, 2e-3);
  SparseVector rho = est->Estimate(0);
  double sum = 0.0;
  for (const auto& e : rho.entries()) {
    EXPECT_GE(e.value, 0.0);
    EXPECT_LT(e.key, g.NumNodes());
    sum += e.value;
  }
  EXPECT_LE(sum, 1.0 + 1e-6);
  EXPECT_GT(sum, 0.2);  // a meaningful share of the mass is recovered
}

TEST_P(EstimatorPropertyTest, ApproximationGuaranteeHolds) {
  const auto [family, algo] = GetParam();
  Graph g = MakeFamily(family);
  const double delta = 2e-3;
  auto est = MakeAlgorithm(algo, g, 5.0, delta);
  const std::vector<double> exact = ExactHkpr(g, 5.0, 1);
  SparseVector rho = est->Estimate(1);
  // Slack 1.3 absorbs the p_f failure probability and HK-Relax's absolute
  // budget being compared under the (d,eps_r,delta) criterion.
  EXPECT_EQ(CountApproxViolations(g, rho, exact, 0.5, delta, 1.3), 0u)
      << FamilyName(family) << "/" << AlgoName(algo);
}

TEST_P(EstimatorPropertyTest, SweepProducesNonTrivialCluster) {
  const auto [family, algo] = GetParam();
  Graph g = MakeFamily(family);
  auto est = MakeAlgorithm(algo, g, 5.0, 1e-3);
  LocalClusterResult result = LocalCluster(g, *est, 2);
  EXPECT_FALSE(result.cluster.empty());
  EXPECT_GT(result.conductance, 0.0);
  EXPECT_LE(result.conductance, 1.0);
  EXPECT_LT(result.cluster.size(), g.NumNodes());
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, EstimatorPropertyTest,
    ::testing::Combine(::testing::Values(GraphFamily::kBarbell,
                                         GraphFamily::kPlc, GraphFamily::kGrid,
                                         GraphFamily::kErdosRenyi,
                                         GraphFamily::kSbm),
                       ::testing::Values(Algorithm::kMonteCarlo,
                                         Algorithm::kTea, Algorithm::kTeaPlus,
                                         Algorithm::kHkRelax)),
    [](const ::testing::TestParamInfo<std::tuple<GraphFamily, Algorithm>>&
           param_info) {
      return FamilyName(std::get<0>(param_info.param)) + "_" +
             AlgoName(std::get<1>(param_info.param));
    });

class HeatConstantPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(HeatConstantPropertyTest, TeaPlusGuaranteeAcrossT) {
  const double t = GetParam();
  Graph g = PowerlawCluster(300, 3, 0.3, 23);
  ApproxParams params;
  params.t = t;
  params.eps_r = 0.5;
  params.delta = 2e-3;
  params.p_f = 1e-4;
  TeaPlusEstimator est(g, params, 104);
  const std::vector<double> exact = ExactHkpr(g, t, 5);
  SparseVector rho = est.Estimate(5);
  EXPECT_EQ(CountApproxViolations(g, rho, exact, params.eps_r, params.delta,
                                  1.3),
            0u)
      << "t=" << t;
}

TEST_P(HeatConstantPropertyTest, WalkLengthMatchesT) {
  const double t = GetParam();
  HeatKernel kernel(t);
  Rng rng(105);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += kernel.SamplePoissonLength(rng);
  EXPECT_NEAR(sum / n, t, 0.05 * t + 0.05);
}

INSTANTIATE_TEST_SUITE_P(HeatConstants, HeatConstantPropertyTest,
                         ::testing::Values(1.0, 3.0, 5.0, 10.0, 20.0, 40.0),
                         [](const ::testing::TestParamInfo<double>& pi) {
                           return "t" + std::to_string(
                                            static_cast<int>(pi.param));
                         });

class EpsilonPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(EpsilonPropertyTest, TeaPlusGuaranteeAcrossEps) {
  const double eps_r = GetParam();
  Graph g = PowerlawCluster(300, 3, 0.3, 29);
  ApproxParams params;
  params.t = 5.0;
  params.eps_r = eps_r;
  params.delta = 2e-3;
  params.p_f = 1e-4;
  TeaPlusEstimator est(g, params, 106);
  const std::vector<double> exact = ExactHkpr(g, 5.0, 8);
  SparseVector rho = est.Estimate(8);
  EXPECT_EQ(
      CountApproxViolations(g, rho, exact, eps_r, params.delta, 1.3), 0u)
      << "eps_r=" << eps_r;
}

INSTANTIATE_TEST_SUITE_P(Epsilons, EpsilonPropertyTest,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9),
                         [](const ::testing::TestParamInfo<double>& pi) {
                           return "eps" + std::to_string(static_cast<int>(
                                              pi.param * 10));
                         });

}  // namespace
}  // namespace hkpr
