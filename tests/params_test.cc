// Tests for ApproxParams helpers: p'_f (Equation 6), omega, hop cap.

#include <gtest/gtest.h>

#include <cmath>

#include "hkpr/params.h"
#include "test_util.h"

namespace hkpr {
namespace {

TEST(PfPrimeTest, HighDegreeGraphKeepsPf) {
  // Complete graph: every degree is n-1 = 19, so sum p_f^(d-1) = 20 * 1e-6^19
  // which is far below 1 -> p'_f = p_f.
  Graph g = testing::MakeComplete(20);
  EXPECT_DOUBLE_EQ(ComputePfPrime(g, 1e-6), 1e-6);
}

TEST(PfPrimeTest, DegreeOneNodesShrinkPf) {
  // Star: n-1 leaves with degree 1 contribute p_f^0 = 1 each, so the sum is
  // about n-1 > 1 and p'_f ~= p_f / (n-1).
  Graph g = testing::MakeStar(101);  // 100 leaves
  const double pf_prime = ComputePfPrime(g, 1e-6);
  EXPECT_LT(pf_prime, 1e-6);
  EXPECT_NEAR(pf_prime, 1e-6 / 100.0, 1e-9);
}

TEST(PfPrimeTest, IsolatedNodesIgnored) {
  GraphBuilder b(10);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 0);  // triangle; nodes 3..9 isolated
  Graph g = b.Build();
  // Triangle degrees are 2: sum = 3 * 1e-6 < 1 -> p'_f = p_f, regardless of
  // the isolated nodes.
  EXPECT_DOUBLE_EQ(ComputePfPrime(g, 1e-6), 1e-6);
}

TEST(PfPrimeTest, MonotoneInPf) {
  Graph g = testing::MakeStar(50);
  EXPECT_LT(ComputePfPrime(g, 1e-8), ComputePfPrime(g, 1e-4));
}

TEST(OmegaTest, TeaFormula) {
  ApproxParams p;
  p.eps_r = 0.5;
  p.delta = 1e-4;
  const double pf_prime = 1e-6;
  const double expected =
      2.0 * (1.0 + 0.5 / 3.0) * std::log(1e6) / (0.25 * 1e-4);
  EXPECT_NEAR(OmegaTea(p, pf_prime), expected, 1e-6 * expected);
}

TEST(OmegaTest, TeaPlusFormula) {
  ApproxParams p;
  p.eps_r = 0.5;
  p.delta = 1e-4;
  const double pf_prime = 1e-6;
  const double expected =
      8.0 * (1.0 + 0.5 / 6.0) * std::log(1e6) / (0.25 * 1e-4);
  EXPECT_NEAR(OmegaTeaPlus(p, pf_prime), expected, 1e-6 * expected);
}

TEST(OmegaTest, ShrinksWithLooserAccuracy) {
  ApproxParams tight, loose;
  tight.eps_r = 0.1;
  loose.eps_r = 0.9;
  tight.delta = loose.delta = 1e-5;
  EXPECT_GT(OmegaTea(tight, 1e-6), OmegaTea(loose, 1e-6));
  tight.eps_r = loose.eps_r = 0.5;
  tight.delta = 1e-7;
  loose.delta = 1e-3;
  EXPECT_GT(OmegaTeaPlus(tight, 1e-6), OmegaTeaPlus(loose, 1e-6));
}

TEST(HopCapTest, GrowsWithC) {
  ApproxParams p;
  p.eps_r = 0.5;
  p.delta = 1e-5;
  const uint32_t k1 = ChooseHopCap(1.0, p, 10.0, 1000);
  const uint32_t k2 = ChooseHopCap(3.0, p, 10.0, 1000);
  EXPECT_LT(k1, k2);
}

TEST(HopCapTest, ShrinksWithDegree) {
  ApproxParams p;
  p.eps_r = 0.5;
  p.delta = 1e-5;
  EXPECT_GE(ChooseHopCap(2.0, p, 4.0, 1000), ChooseHopCap(2.0, p, 64.0, 1000));
}

TEST(HopCapTest, ClampedToMaxHop) {
  ApproxParams p;
  p.eps_r = 0.1;
  p.delta = 1e-9;
  EXPECT_EQ(ChooseHopCap(10.0, p, 2.0, 25), 25u);
}

TEST(HopCapTest, AtLeastOne) {
  ApproxParams p;
  p.eps_r = 0.9;
  p.delta = 0.5;
  EXPECT_GE(ChooseHopCap(0.1, p, 100.0, 50), 1u);
}

TEST(HopCapTest, MatchesPaperFormula) {
  // K = c * log(1/(eps_r*delta)) / log(avg_deg), rounded up.
  ApproxParams p;
  p.eps_r = 0.5;
  p.delta = 2e-5;
  const double c = 2.5;
  const double davg = 12.0;
  const double raw = c * std::log(1.0 / (p.eps_r * p.delta)) / std::log(davg);
  EXPECT_EQ(ChooseHopCap(c, p, davg, 1000),
            static_cast<uint32_t>(std::ceil(raw)));
}

}  // namespace
}  // namespace hkpr
