// Tests for the heat-kernel weight tables (eta, psi, Poisson sampling).

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "hkpr/heat_kernel.h"

namespace hkpr {
namespace {

TEST(HeatKernelTest, EtaSumsToOne) {
  for (double t : {0.5, 1.0, 5.0, 10.0, 40.0}) {
    HeatKernel hk(t);
    double sum = 0.0;
    for (uint32_t k = 0; k <= hk.MaxHop(); ++k) sum += hk.Eta(k);
    EXPECT_NEAR(sum, 1.0, 1e-12) << "t=" << t;
  }
}

TEST(HeatKernelTest, PsiZeroIsOne) {
  for (double t : {1.0, 5.0, 20.0}) {
    HeatKernel hk(t);
    EXPECT_NEAR(hk.Psi(0), 1.0, 1e-12);
  }
}

TEST(HeatKernelTest, PsiRecurrence) {
  HeatKernel hk(5.0);
  for (uint32_t k = 0; k < hk.MaxHop(); ++k) {
    EXPECT_NEAR(hk.Psi(k) - hk.Psi(k + 1), hk.Eta(k), 1e-14) << k;
  }
}

TEST(HeatKernelTest, EtaMatchesClosedForm) {
  const double t = 5.0;
  HeatKernel hk(t);
  double factorial = 1.0;
  for (uint32_t k = 0; k <= 12; ++k) {
    if (k > 0) factorial *= k;
    const double expected = std::exp(-t) * std::pow(t, k) / factorial;
    EXPECT_NEAR(hk.Eta(k), expected, 1e-12 * (1.0 + expected)) << k;
  }
}

TEST(HeatKernelTest, MaxHopBeyondMode) {
  for (double t : {1.0, 5.0, 40.0}) {
    HeatKernel hk(t);
    EXPECT_GT(static_cast<double>(hk.MaxHop()), t);
  }
}

TEST(HeatKernelTest, TailBelowTolerance) {
  const double tol = 1e-12;
  HeatKernel hk(5.0, tol);
  // psi just past MaxHop is implicitly zero; the folded tail must be small:
  // psi(MaxHop) should be <= eta(MaxHop) + tol.
  EXPECT_LE(hk.Psi(hk.MaxHop()), hk.Eta(hk.MaxHop()) + tol);
}

TEST(HeatKernelTest, TerminationProbRanges) {
  HeatKernel hk(8.0);
  for (uint32_t k = 0; k <= hk.MaxHop(); ++k) {
    EXPECT_GE(hk.TerminationProb(k), 0.0);
    EXPECT_LE(hk.TerminationProb(k), 1.0 + 1e-12);
  }
  EXPECT_DOUBLE_EQ(hk.TerminationProb(hk.MaxHop() + 1), 1.0);
}

TEST(HeatKernelTest, TerminationProbApproachesOne) {
  HeatKernel hk(5.0);
  EXPECT_GT(hk.TerminationProb(hk.MaxHop()), 0.8);
}

TEST(HeatKernelTest, PoissonSampleMoments) {
  const double t = 7.0;
  HeatKernel hk(t);
  Rng rng(42);
  const int n = 300000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double k = hk.SamplePoissonLength(rng);
    sum += k;
    sum_sq += k * k;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, t, 0.05);  // Poisson mean = t
  EXPECT_NEAR(var, t, 0.15);   // Poisson variance = t
}

TEST(HeatKernelTest, PoissonSampleMatchesPmf) {
  const double t = 3.0;
  HeatKernel hk(t);
  Rng rng(43);
  const int n = 200000;
  std::vector<int> counts(hk.MaxHop() + 1, 0);
  for (int i = 0; i < n; ++i) ++counts[hk.SamplePoissonLength(rng)];
  for (uint32_t k = 0; k <= 8; ++k) {
    const double expected = n * hk.Eta(k);
    EXPECT_NEAR(counts[k], expected, 5.0 * std::sqrt(expected) + 20.0) << k;
  }
}

TEST(HeatKernelTest, LargeTStable) {
  HeatKernel hk(64.0);
  EXPECT_NEAR(hk.Psi(0), 1.0, 1e-10);
  EXPECT_GT(hk.MaxHop(), 64u);
  EXPECT_LT(hk.MaxHop(), 100000u);
}

TEST(HeatKernelDeathTest, RejectsNonPositiveT) {
  EXPECT_DEATH(HeatKernel(0.0), "positive");
  EXPECT_DEATH(HeatKernel(-1.0), "positive");
}

}  // namespace
}  // namespace hkpr
