// Tests for top-k queries and seed-set estimation.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "graph/generators.h"
#include "hkpr/power_method.h"
#include "hkpr/queries.h"
#include "hkpr/tea_plus.h"
#include "test_util.h"

namespace hkpr {
namespace {

ApproxParams TightParams(const Graph& g) {
  ApproxParams p;
  p.t = 5.0;
  p.eps_r = 0.3;
  p.delta = 0.1 / static_cast<double>(g.Volume());
  p.p_f = 1e-4;
  return p;
}

TEST(TopKTest, OrderedAndBounded) {
  Graph g = PowerlawCluster(500, 4, 0.3, 1);
  TeaPlusEstimator est(g, TightParams(g), 2);
  const auto top = TopKQuery(g, est, 7, 10);
  ASSERT_LE(top.size(), 10u);
  ASSERT_GE(top.size(), 2u);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].score, top[i].score);
  }
}

TEST(TopKTest, SeedRanksFirstOnItsOwnQuery) {
  // The seed's normalized HKPR dominates on low-degree seeds.
  Graph g = testing::MakeBarbell(8);
  TeaPlusEstimator est(g, TightParams(g), 3);
  const auto top = TopKQuery(g, est, 0, 5);
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0].node, 0u);
}

TEST(TopKTest, MatchesExactTopSet) {
  Graph g = PowerlawCluster(300, 3, 0.3, 4);
  const NodeId seed = 11;
  std::vector<double> exact = ExactHkpr(g, 5.0, seed);
  NormalizeByDegree(g, exact);
  // Exact top-5 node set.
  std::vector<NodeId> order(g.NumNodes());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return exact[a] > exact[b];
  });

  TeaPlusEstimator est(g, TightParams(g), 5);
  const auto top = TopKQuery(g, est, seed, 5);
  ASSERT_EQ(top.size(), 5u);
  size_t overlap = 0;
  for (const ScoredNode& s : top) {
    if (std::find(order.begin(), order.begin() + 5, s.node) !=
        order.begin() + 5) {
      ++overlap;
    }
  }
  EXPECT_GE(overlap, 4u);
}

TEST(TopKTest, KLargerThanSupport) {
  Graph g = testing::MakePath(5);
  SparseVector est;
  est.Add(2, 0.5);
  est.Add(3, 0.25);
  const auto top = TopKNormalized(g, est, 100);
  EXPECT_EQ(top.size(), 2u);
}

TEST(TopKTest, IncludesDegreeOffsetInScores) {
  Graph g = testing::MakeStar(4);
  SparseVector est;
  est.Add(1, 0.1);
  est.set_degree_offset(0.05);
  const auto top = TopKNormalized(g, est, 1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_DOUBLE_EQ(top[0].score, 0.1 + 0.05);  // (0.1 + 0.05*1)/1
}

TEST(SeedSetTest, SingleSeedMatchesPlainEstimate) {
  Graph g = PowerlawCluster(300, 3, 0.3, 6);
  TeaPlusEstimator est(g, TightParams(g), 7);
  std::vector<NodeId> seeds = {13};
  SparseVector combined = EstimateSeedSet(g, est, seeds);
  // Same estimator + single seed -> same support scale (not bit-identical:
  // a second Estimate() call consumes fresh randomness).
  EXPECT_GT(combined.Sum(), 0.5);
}

TEST(SeedSetTest, SingleSeedIsBitIdenticalToPlainEstimate) {
  // A one-element seed set is the degenerate mixture: weight 1 exactly, so
  // every combined entry equals the plain estimate's entry bit-for-bit
  // (same estimator seed => same randomness).
  Graph g = PowerlawCluster(300, 3, 0.3, 6);
  const ApproxParams params = TightParams(g);
  TeaPlusEstimator plain(g, params, 21);
  const SparseVector expected = plain.Estimate(13);

  TeaPlusEstimator mixed(g, params, 21);
  std::vector<NodeId> seeds = {13};
  const SparseVector combined = EstimateSeedSet(g, mixed, seeds);
  ASSERT_EQ(combined.nnz(), expected.nnz());
  EXPECT_DOUBLE_EQ(combined.degree_offset(), expected.degree_offset());
  for (const auto& e : expected.entries()) {
    EXPECT_DOUBLE_EQ(combined.Get(e.key), e.value);
  }
}

TEST(SeedSetTest, ZeroWeightSeedsAreSkippedEntirely) {
  // A zero-weight seed must not be estimated at all: it contributes no
  // entries AND consumes no randomness, so the result is bit-identical to
  // dropping it from the seed list.
  Graph g = PowerlawCluster(300, 3, 0.3, 6);
  const ApproxParams params = TightParams(g);
  TeaPlusEstimator plain(g, params, 22);
  const SparseVector expected = plain.Estimate(13);

  TeaPlusEstimator mixed(g, params, 22);
  std::vector<NodeId> seeds = {13, 5, 40};
  std::vector<double> weights = {2.0, 0.0, 0.0};
  const SparseVector combined = EstimateSeedSet(g, mixed, seeds, weights);
  ASSERT_EQ(combined.nnz(), expected.nnz());
  for (const auto& e : expected.entries()) {
    EXPECT_DOUBLE_EQ(combined.Get(e.key), e.value);
  }
}

TEST(SeedSetTest, RejectsWeightsLongerThanSeeds) {
  Graph g = testing::MakeCycle(6);
  ApproxParams params;
  params.delta = 1e-2;
  params.p_f = 1e-2;
  TeaPlusEstimator est(g, params, 5);
  std::vector<NodeId> seeds = {0, 1};
  std::vector<double> weights = {0.5, 0.25, 0.25};
  EXPECT_DEATH(EstimateSeedSet(g, est, seeds, weights), "weights");
}

TEST(SeedSetTest, UniformAverageOfDisjointSeeds) {
  // Two seeds in different components: the combined vector is exactly the
  // average (each component keeps its own mass = 0.5).
  GraphBuilder b(12);
  for (NodeId v = 0; v < 5; ++v) b.AddEdge(v, (v + 1) % 6);
  b.AddEdge(5, 0);
  for (NodeId v = 6; v < 11; ++v) b.AddEdge(v, v + 1);
  b.AddEdge(11, 6);
  Graph g = b.Build();
  ApproxParams params = TightParams(g);
  TeaPlusEstimator est(g, params, 8);
  std::vector<NodeId> seeds = {0, 6};
  SparseVector combined = EstimateSeedSet(g, est, seeds);
  double mass_a = 0.0, mass_b = 0.0;
  for (const auto& e : combined.entries()) {
    (e.key < 6 ? mass_a : mass_b) += e.value;
  }
  EXPECT_NEAR(mass_a, 0.5, 0.05);
  EXPECT_NEAR(mass_b, 0.5, 0.05);
}

TEST(SeedSetTest, WeightsBiasTheMixture) {
  GraphBuilder b(12);
  for (NodeId v = 0; v < 5; ++v) b.AddEdge(v, v + 1);
  b.AddEdge(5, 0);
  for (NodeId v = 6; v < 11; ++v) b.AddEdge(v, v + 1);
  b.AddEdge(11, 6);
  Graph g = b.Build();
  TeaPlusEstimator est(g, TightParams(g), 9);
  std::vector<NodeId> seeds = {0, 6};
  std::vector<double> weights = {3.0, 1.0};
  SparseVector combined = EstimateSeedSet(g, est, seeds, weights);
  double mass_a = 0.0, mass_b = 0.0;
  for (const auto& e : combined.entries()) {
    (e.key < 6 ? mass_a : mass_b) += e.value;
  }
  EXPECT_NEAR(mass_a, 0.75, 0.05);
  EXPECT_NEAR(mass_b, 0.25, 0.05);
}

TEST(SeedSetTest, CombinesDegreeOffsets) {
  Graph g = PowerlawCluster(800, 5, 0.3, 10);
  ApproxParams params;
  params.t = 5.0;
  params.eps_r = 0.5;
  params.delta = 1e-5;
  params.p_f = 1e-4;
  TeaPlusOptions options;
  options.c = 1.0;  // force the walk phase so offsets are attached
  TeaPlusEstimator est(g, params, 11, options);
  std::vector<NodeId> seeds = {3, 4};
  SparseVector combined = EstimateSeedSet(g, est, seeds);
  // Both estimates carry the same offset; the uniform mixture keeps it.
  EXPECT_NEAR(combined.degree_offset(), params.eps_r * params.delta / 2.0,
              1e-12);
}

}  // namespace
}  // namespace hkpr
