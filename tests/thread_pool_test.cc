// Tests for the persistent ThreadPool.

#include "parallel/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <thread>
#include <tuple>
#include <vector>

#include "parallel/parallel_for.h"

namespace hkpr {
namespace {

TEST(ThreadPoolTest, ChunksCoverRangeExactly) {
  for (uint32_t pool_threads : {1u, 2u, 3u, 8u}) {
    ThreadPool pool(pool_threads);
    for (uint64_t total : {1ull, 7ull, 100ull, 1001ull}) {
      std::vector<std::atomic<int>> hits(total);
      pool.Chunks(total, [&](uint32_t, uint64_t begin, uint64_t end) {
        for (uint64_t i = begin; i < end; ++i) hits[i].fetch_add(1);
      });
      for (uint64_t i = 0; i < total; ++i) {
        EXPECT_EQ(hits[i].load(), 1)
            << "pool=" << pool_threads << " total=" << total << " i=" << i;
      }
    }
  }
}

TEST(ThreadPoolTest, SamePartitionAsParallelChunks) {
  // Pool-backed estimators promise bit-identical results, which requires
  // the exact contiguous partition of ParallelChunks.
  using Chunk = std::tuple<uint32_t, uint64_t, uint64_t>;
  for (uint64_t total : {5ull, 64ull, 1000ull}) {
    for (uint32_t threads : {1u, 3u, 4u}) {
      std::set<Chunk> legacy, pooled;
      std::mutex mu;
      ParallelChunks(total, threads,
                     [&](uint32_t tid, uint64_t begin, uint64_t end) {
                       std::lock_guard<std::mutex> lock(mu);
                       legacy.insert({tid, begin, end});
                     });
      ThreadPool pool(threads);
      pool.Chunks(total, [&](uint32_t tid, uint64_t begin, uint64_t end) {
        std::lock_guard<std::mutex> lock(mu);
        pooled.insert({tid, begin, end});
      });
      EXPECT_EQ(legacy, pooled) << "total=" << total << " threads=" << threads;
    }
  }
}

TEST(ThreadPoolTest, RepeatedSubmitJoin) {
  // The pool parks and re-dispatches its workers across many submissions
  // without losing or duplicating work.
  ThreadPool pool(4);
  std::atomic<uint64_t> sum{0};
  uint64_t expected = 0;
  for (int round = 0; round < 200; ++round) {
    const uint64_t total = 1 + (round % 17);
    pool.Chunks(total, [&](uint32_t, uint64_t begin, uint64_t end) {
      for (uint64_t i = begin; i < end; ++i) sum.fetch_add(i + 1);
    });
    expected += total * (total + 1) / 2;
  }
  EXPECT_EQ(sum.load(), expected);
}

TEST(ThreadPoolTest, CallerRunsThreadZero) {
  ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id tid0_thread;
  pool.Invoke(4, [&](uint32_t tid) {
    if (tid == 0) tid0_thread = std::this_thread::get_id();
  });
  EXPECT_EQ(tid0_thread, caller);
}

TEST(ThreadPoolTest, NestedSubmissionRunsInline) {
  // A task that submits to its own pool must not deadlock; the nested task
  // runs serially on the submitting worker and still covers its range.
  ThreadPool pool(4);
  std::atomic<uint64_t> inner_hits{0};
  pool.Invoke(4, [&](uint32_t) {
    pool.Chunks(10, [&](uint32_t, uint64_t begin, uint64_t end) {
      inner_hits.fetch_add(end - begin);
    });
  });
  EXPECT_EQ(inner_hits.load(), 40u);  // 4 outer tasks x 10 inner items
}

TEST(ThreadPoolTest, SingleThreadFallback) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::vector<int> hits(25, 0);
  pool.Chunks(hits.size(), [&](uint32_t tid, uint64_t begin, uint64_t end) {
    EXPECT_EQ(tid, 0u);
    for (uint64_t i = begin; i < end; ++i) ++hits[i];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, WaysBeyondPoolSizeRunInlineOnCaller) {
  // A dispatch wider than the pool keeps its partition: every tid in
  // [0, ways) runs exactly once, with the overflow shards on the caller.
  ThreadPool pool(2);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::atomic<int>> hits(8);
  std::atomic<int> overflow_on_caller{0};
  pool.Invoke(8, [&](uint32_t tid) {
    hits[tid].fetch_add(1);
    if (tid >= 2 && std::this_thread::get_id() == caller) {
      ++overflow_on_caller;
    }
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(overflow_on_caller.load(), 6);
}

TEST(ThreadPoolTest, NarrowPoolKeepsWidePartition) {
  // ChunksLimit(total, K) must produce the ParallelChunks(total, K)
  // partition even when K exceeds the pool size — the bit-identity
  // guarantee of the pool-backed estimators depends on it.
  using Chunk = std::tuple<uint32_t, uint64_t, uint64_t>;
  std::set<Chunk> legacy, pooled;
  std::mutex mu;
  ParallelChunks(100, 8, [&](uint32_t tid, uint64_t begin, uint64_t end) {
    std::lock_guard<std::mutex> lock(mu);
    legacy.insert({tid, begin, end});
  });
  ThreadPool pool(2);
  pool.ChunksLimit(100, 8, [&](uint32_t tid, uint64_t begin, uint64_t end) {
    std::lock_guard<std::mutex> lock(mu);
    pooled.insert({tid, begin, end});
  });
  EXPECT_EQ(legacy, pooled);
}

TEST(ThreadPoolTest, ZeroItemsNoCalls) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.Chunks(0, [&](uint32_t, uint64_t, uint64_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, DefaultSizeUsesHardwareThreads) {
  ThreadPool pool;
  EXPECT_EQ(pool.num_threads(), HardwareThreads());
}

}  // namespace
}  // namespace hkpr
