// Tests for the pluggable estimator-backend layer (hkpr/backend.h): the
// registry round-trip (every registered name constructs, reseeds, and
// answers), stable-id properties, unknown-name handling, runtime
// registration of custom backends, and the backend-generic QueryExecutor /
// BatchQueryEngine.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "baselines/cluster_hkpr.h"
#include "baselines/hk_relax.h"
#include "graph/generators.h"
#include "hkpr/backend.h"
#include "hkpr/queries.h"
#include "test_util.h"

namespace hkpr {
namespace {

ApproxParams TestParams(double delta) {
  ApproxParams p;
  p.t = 5.0;
  p.eps_r = 0.5;
  p.delta = delta;
  p.p_f = 1e-4;
  return p;
}

void ExpectSameVector(const SparseVector& a, const SparseVector& b) {
  ASSERT_EQ(a.nnz(), b.nnz());
  EXPECT_DOUBLE_EQ(a.degree_offset(), b.degree_offset());
  for (const auto& e : a.entries()) EXPECT_DOUBLE_EQ(b.Get(e.key), e.value);
}

TEST(BackendRegistryTest, BuiltinBackendsAreRegistered) {
  EstimatorRegistry& registry = EstimatorRegistry::Global();
  for (const char* name : {"tea+", "tea", "monte-carlo", "push", "hk-relax",
                           "cluster-hkpr", "tea+-par", "monte-carlo-par"}) {
    const BackendInfo* info = registry.Find(name);
    ASSERT_NE(info, nullptr) << name;
    EXPECT_EQ(info->name, name);
    EXPECT_FALSE(info->algorithm.empty()) << name;
  }
  EXPECT_EQ(registry.Find("no-such-backend"), nullptr);
  EXPECT_FALSE(registry.Contains(""));
}

TEST(BackendRegistryTest, StableIdsAreNameDerivedAndUnique) {
  EstimatorRegistry& registry = EstimatorRegistry::Global();
  std::set<uint32_t> ids;
  for (const std::string& name : registry.Names()) {
    const BackendInfo* info = registry.Find(name);
    ASSERT_NE(info, nullptr);
    // The id is a pure function of the name (safe to persist in cache
    // keys) and unique across the registry.
    EXPECT_EQ(info->stable_id, StableBackendId(name)) << name;
    EXPECT_TRUE(ids.insert(info->stable_id).second)
        << "stable-id collision on " << name;
  }
}

TEST(BackendRegistryTest, EveryBackendConstructsReseedsAndAnswers) {
  // The registry round-trip: each registered backend (including any custom
  // ones registered by other tests) builds, honors the Reseed contract
  // (identical bits after an identical re-seed), and returns an estimate
  // with real mass.
  Graph g = PowerlawCluster(300, 3, 0.3, 3);
  const ApproxParams params = TestParams(1e-3);
  BackendContext context;
  context.parallel_threads = 2;

  EstimatorRegistry& registry = EstimatorRegistry::Global();
  for (const std::string& name : registry.Names()) {
    SCOPED_TRACE(name);
    auto estimator = registry.Create(name, g, params, 7, context);
    ASSERT_NE(estimator, nullptr);
    EXPECT_FALSE(estimator->name().empty());

    QueryWorkspace ws;
    estimator->Reseed(42);
    const SparseVector first = estimator->EstimateInto(9, ws).CompactCopy();
    EXPECT_GT(first.Sum(), 0.2);

    estimator->Reseed(42);
    const SparseVector& second = estimator->EstimateInto(9, ws);
    ExpectSameVector(second, first);
  }
}

TEST(BackendRegistryTest, CustomBackendRegistersAndServes) {
  // The registry is open: a backend registered at runtime is immediately
  // selectable by every serving layer. "unit-mass" returns e_seed — a
  // well-behaved (deterministic, allocation-free) toy estimator.
  class UnitMassEstimator : public WorkspaceEstimator {
   public:
    const SparseVector& EstimateInto(NodeId seed, QueryWorkspace& ws,
                                     EstimatorStats* stats) override {
      if (stats != nullptr) stats->Reset();
      ws.result.Clear();
      ws.result.Add(seed, 1.0);
      return ws.result;
    }
    void Reseed(uint64_t /*seed*/) override {}
    std::string_view name() const override { return "unit-mass"; }
  };

  EstimatorRegistry& registry = EstimatorRegistry::Global();
  if (!registry.Contains("unit-mass")) {
    BackendInfo info;
    info.name = "unit-mass";
    info.algorithm = "returns the seed's indicator vector (test backend)";
    info.randomized = false;
    info.factory = [](const Graph&, const ApproxParams&, uint64_t,
                      const BackendContext&) {
      return std::unique_ptr<WorkspaceEstimator>(new UnitMassEstimator());
    };
    registry.Register(std::move(info));
  }

  Graph g = testing::MakeComplete(8);
  BackendSpec spec;
  spec.name = "unit-mass";
  QueryExecutor executor(g, TestParams(1e-2), 11, spec);
  EXPECT_EQ(executor.backend_name(), "unit-mass");
  EXPECT_EQ(executor.backend_id(), StableBackendId("unit-mass"));
  const SparseVector answer = executor.Answer(3, 0);
  EXPECT_EQ(answer.nnz(), 1u);
  EXPECT_DOUBLE_EQ(answer.Get(3), 1.0);
}

TEST(BackendRegistryTest, ClusterHkprBitIdenticalToEstimatePath) {
  // The registry's "cluster-hkpr" backend is the workspace-aware port of
  // the ClusterHKPR baseline: after Reseed(s), EstimateInto must replay a
  // fresh direct estimator with seed s bit-for-bit — including across
  // consecutive queries on one RNG stream — with t and eps mapped from
  // (params.t, params.eps_r).
  Graph g = PowerlawCluster(300, 3, 0.3, 3);
  ApproxParams params = TestParams(1e-3);
  params.t = 4.0;
  params.eps_r = 0.3;

  ClusterHkprOptions options;
  options.t = params.t;
  options.eps = params.eps_r;
  ClusterHkprEstimator direct(g, options, 99);

  auto ported =
      EstimatorRegistry::Global().Create("cluster-hkpr", g, params, 123);
  ported->Reseed(99);
  QueryWorkspace ws;
  ExpectSameVector(ported->EstimateInto(7, ws), direct.Estimate(7));
  // Second query without a re-seed: both continue the same stream.
  ExpectSameVector(ported->EstimateInto(42, ws), direct.Estimate(42));
}

TEST(QueryExecutorTest, AnswersAreAFunctionOfSeedAndQueryIndex) {
  // The serving determinism contract, per backend: an executor's answer
  // depends only on (engine seed, query index, query seed) — interleaved
  // unrelated queries must not perturb a replay.
  Graph g = PowerlawCluster(300, 3, 0.3, 5);
  const ApproxParams params = TestParams(1e-3);
  for (const char* name : {"tea+", "tea", "monte-carlo", "push", "hk-relax"}) {
    SCOPED_TRACE(name);
    BackendSpec spec;
    spec.name = name;
    QueryExecutor executor(g, params, 99, spec);
    const SparseVector a = executor.Answer(7, 3);
    executor.Answer(11, 4);  // unrelated interleaved work
    const SparseVector b = executor.Answer(7, 3);
    ExpectSameVector(a, b);
  }
}

TEST(BatchQueryEngineTest, DeterministicBackendMatchesDirectEstimator) {
  // A backend-generic engine serving a deterministic backend must return
  // exactly the direct estimator's bits (the per-query re-seed is a no-op).
  Graph g = PowerlawCluster(300, 3, 0.3, 8);
  const ApproxParams params = TestParams(1e-4);
  const std::vector<NodeId> seeds = {2, 8, 31, 100};

  BackendSpec spec;
  spec.name = "hk-relax";
  BatchQueryEngine engine(g, params, 55, 2, spec);
  EXPECT_EQ(engine.backend_name(), "HK-Relax");
  const auto batch = engine.EstimateBatch(seeds);

  HkRelaxOptions relax;
  relax.t = params.t;
  relax.eps_a = params.eps_r * params.delta;
  HkRelaxEstimator direct(g, relax);
  ASSERT_EQ(batch.size(), seeds.size());
  for (size_t i = 0; i < seeds.size(); ++i) {
    SCOPED_TRACE(i);
    ExpectSameVector(batch[i], direct.Estimate(seeds[i]));
  }
}

TEST(BatchQueryEngineTest, MonteCarloBackendIsThreadCountInvariant) {
  // The batch determinism guarantee holds for non-default backends too: a
  // Monte-Carlo batch answered on 1 thread is bit-identical to 4 threads.
  Graph g = PowerlawCluster(300, 3, 0.3, 9);
  const ApproxParams params = TestParams(1e-3);
  const std::vector<NodeId> seeds = {1, 5, 9, 14, 22, 60};

  BackendSpec spec;
  spec.name = "monte-carlo";
  BatchQueryEngine narrow(g, params, 77, 1, spec);
  BatchQueryEngine wide(g, params, 77, 4, spec);
  const auto expected = narrow.EstimateBatch(seeds);
  const auto got = wide.EstimateBatch(seeds);
  ASSERT_EQ(expected.size(), got.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    SCOPED_TRACE(i);
    ExpectSameVector(got[i], expected[i]);
  }
}

}  // namespace
}  // namespace hkpr
