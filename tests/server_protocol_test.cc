// End-to-end tests of example_hkpr_server's line protocol, driven over a
// pipe pair: graph load/use/drop/list lifecycle, unknown-graph errors (a
// dropped current graph must err, never silently fall back), live backend
// switches (including "auto"), per-query plan tokens and the per-graph
// params command, and the --graphs=name=path,... startup flag.
//
// The server binary path is injected by CMake (HKPR_SERVER_BINARY); when
// examples are not built (e.g. the TSan CI job), the tests skip.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#ifdef HKPR_SERVER_BINARY

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace hkpr {
namespace {

/// Writes `contents` to a fresh temp file and returns its path.
std::string WriteTempFile(const std::string& tag, const std::string& contents) {
  std::string path = ::testing::TempDir() + "hkpr_server_test_" + tag +
                     "_XXXXXX";
  std::vector<char> buf(path.begin(), path.end());
  buf.push_back('\0');
  const int fd = mkstemp(buf.data());
  EXPECT_GE(fd, 0) << "mkstemp failed for " << path;
  EXPECT_EQ(write(fd, contents.data(), contents.size()),
            static_cast<ssize_t>(contents.size()));
  close(fd);
  return std::string(buf.data());
}

/// A server child process with its stdin/stdout connected over pipes.
class ServerProcess {
 public:
  bool Start(const std::vector<std::string>& extra_args) {
    int to_child[2];
    int from_child[2];
    if (pipe(to_child) != 0 || pipe(from_child) != 0) return false;
    pid_ = fork();
    if (pid_ < 0) return false;
    if (pid_ == 0) {
      dup2(to_child[0], STDIN_FILENO);
      dup2(from_child[1], STDOUT_FILENO);
      close(to_child[0]);
      close(to_child[1]);
      close(from_child[0]);
      close(from_child[1]);
      std::vector<std::string> args = {HKPR_SERVER_BINARY};
      args.insert(args.end(), extra_args.begin(), extra_args.end());
      std::vector<char*> argv;
      for (std::string& arg : args) argv.push_back(arg.data());
      argv.push_back(nullptr);
      execv(argv[0], argv.data());
      _exit(127);  // exec failed
    }
    close(to_child[0]);
    close(from_child[1]);
    in_fd_ = to_child[1];
    out_fd_ = from_child[0];
    return true;
  }

  ~ServerProcess() {
    if (in_fd_ >= 0) close(in_fd_);
    if (out_fd_ >= 0) close(out_fd_);
    if (pid_ > 0) {
      kill(pid_, SIGKILL);
      waitpid(pid_, nullptr, 0);
    }
  }

  /// Sends one command line and returns the single response line.
  std::string Command(const std::string& line) {
    const std::string with_newline = line + "\n";
    EXPECT_EQ(write(in_fd_, with_newline.data(), with_newline.size()),
              static_cast<ssize_t>(with_newline.size()));
    return ReadLine();
  }

  /// Reads one '\n'-terminated line, waiting up to 30s (generous for the
  /// synthetic-graph startup) — an unresponsive server fails instead of
  /// hanging the suite.
  std::string ReadLine() {
    while (true) {
      const size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        std::string line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return line;
      }
      struct pollfd pfd = {out_fd_, POLLIN, 0};
      const int ready = poll(&pfd, 1, 30000);
      if (ready <= 0) {
        ADD_FAILURE() << "timed out waiting for server output";
        return "";
      }
      char chunk[4096];
      const ssize_t n = read(out_fd_, chunk, sizeof(chunk));
      if (n <= 0) {
        ADD_FAILURE() << "server closed its stdout unexpectedly";
        return "";
      }
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  /// Sends quit and reaps the child; returns its exit code (-1 on signal).
  int Quit() {
    const std::string quit = "quit\n";
    (void)!write(in_fd_, quit.data(), quit.size());
    close(in_fd_);
    in_fd_ = -1;
    int status = 0;
    waitpid(pid_, &status, 0);
    pid_ = -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

 private:
  pid_t pid_ = -1;
  int in_fd_ = -1;
  int out_fd_ = -1;
  std::string buffer_;
};

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool Contains(const std::string& s, const std::string& needle) {
  return s.find(needle) != std::string::npos;
}

TEST(ServerProtocolTest, GraphLifecycleAndErrors) {
  ServerProcess server;
  ASSERT_TRUE(server.Start({"--nodes=500", "--workers=2", "--seed=7"}));
  const std::string banner = server.ReadLine();
  ASSERT_TRUE(StartsWith(banner, "ok hkpr_server")) << banner;
  EXPECT_TRUE(Contains(banner, "graphs=1(default)")) << banner;

  // The synthetic default graph serves immediately.
  std::string reply = server.Command("graph list");
  EXPECT_TRUE(StartsWith(reply, "ok graphs=1")) << reply;
  EXPECT_TRUE(Contains(reply, "default:v1")) << reply;
  EXPECT_TRUE(Contains(reply, ":current")) << reply;

  reply = server.Command("query 1");
  EXPECT_TRUE(StartsWith(reply, "ok graph=default version=1 seed=1"))
      << reply;

  // use of a name that was never loaded is an error.
  reply = server.Command("graph use nosuch");
  EXPECT_TRUE(StartsWith(reply, "err unknown graph \"nosuch\"")) << reply;

  // Load a second graph from disk, switch to it, query it.
  const std::string path =
      WriteTempFile("tri", "# a triangle plus a tail\n0 1\n1 2\n2 0\n0 3\n");
  reply = server.Command("graph load tri " + path);
  EXPECT_TRUE(StartsWith(reply, "ok graph=tri version=2 nodes=4 edges=4"))
      << reply;
  reply = server.Command("graph use tri");
  EXPECT_TRUE(StartsWith(reply, "ok graph=tri version=2")) << reply;
  reply = server.Command("query 0");
  EXPECT_TRUE(StartsWith(reply, "ok graph=tri version=2 seed=0")) << reply;
  reply = server.Command("query 99");  // out of range for the 4-node graph
  EXPECT_TRUE(StartsWith(reply, "err usage: query")) << reply;

  // Re-loading the same name hot-swaps: the version bumps.
  reply = server.Command("graph load tri " + path);
  EXPECT_TRUE(StartsWith(reply, "ok graph=tri version=3")) << reply;
  reply = server.Command("query 0");
  EXPECT_TRUE(StartsWith(reply, "ok graph=tri version=3")) << reply;
  // ... and the post-swap query was a cache miss by construction.
  EXPECT_TRUE(Contains(reply, "cache=miss")) << reply;

  // Dropping the *current* graph: later queries and `use` must err — the
  // server never silently falls back to another loaded graph.
  reply = server.Command("graph drop tri");
  EXPECT_TRUE(StartsWith(reply, "ok dropped=tri")) << reply;
  reply = server.Command("query 0");
  EXPECT_TRUE(StartsWith(reply, "err unknown graph \"tri\"")) << reply;
  reply = server.Command("graph use tri");
  EXPECT_TRUE(StartsWith(reply, "err unknown graph \"tri\"")) << reply;
  reply = server.Command("graph drop tri");
  EXPECT_TRUE(StartsWith(reply, "err unknown graph \"tri\"")) << reply;

  // Cumulative stats of the dropped graph stay reachable: 2 queries were
  // served across tri's two versions before the drop.
  reply = server.Command("stats tri");
  EXPECT_TRUE(StartsWith(reply, "ok scope=tri")) << reply;
  EXPECT_TRUE(Contains(reply, "submitted=2")) << reply;

  // Loading a graph while the current one is gone adopts it.
  reply = server.Command("graph load tri2 " + path);
  EXPECT_TRUE(StartsWith(reply, "ok graph=tri2 version=4")) << reply;
  reply = server.Command("query 0");
  EXPECT_TRUE(StartsWith(reply, "ok graph=tri2 version=4")) << reply;

  // Recovery: switch back to the surviving graph.
  reply = server.Command("graph use default");
  EXPECT_TRUE(StartsWith(reply, "ok graph=default")) << reply;
  reply = server.Command("query 2");
  EXPECT_TRUE(StartsWith(reply, "ok graph=default")) << reply;

  // stats: aggregate and per-graph scopes, plus unknown-graph scope err.
  reply = server.Command("stats");
  EXPECT_TRUE(StartsWith(reply, "ok scope=all")) << reply;
  reply = server.Command("stats default");
  EXPECT_TRUE(StartsWith(reply, "ok scope=default")) << reply;
  EXPECT_TRUE(Contains(reply, "submitted=")) << reply;
  reply = server.Command("stats nosuch");
  EXPECT_TRUE(StartsWith(reply, "err unknown graph")) << reply;

  reply = server.Command("bogus");
  EXPECT_TRUE(StartsWith(reply, "err unknown command")) << reply;

  EXPECT_EQ(server.Quit(), 0);
}

TEST(ServerProtocolTest, BackendSwitchThenQueryKeepsLoadedGraphs) {
  ServerProcess server;
  ASSERT_TRUE(server.Start({"--nodes=400", "--workers=2", "--seed=11"}));
  ASSERT_TRUE(StartsWith(server.ReadLine(), "ok hkpr_server"));

  const std::string path = WriteTempFile("sq", "0 1\n1 2\n2 3\n3 0\n");
  ASSERT_TRUE(StartsWith(server.Command("graph load square " + path), "ok"));

  // Switching backends is a live config update — no drain, no rebuild —
  // and the store is untouched: both graphs survive and serve on the new
  // default.
  std::string reply = server.Command("backend hk-relax");
  EXPECT_TRUE(StartsWith(reply, "ok backend=hk-relax graphs=2")) << reply;
  reply = server.Command("graph list");
  EXPECT_TRUE(StartsWith(reply, "ok graphs=2")) << reply;
  EXPECT_TRUE(Contains(reply, "default")) << reply;
  EXPECT_TRUE(Contains(reply, "square")) << reply;

  reply = server.Command("graph use square");
  ASSERT_TRUE(StartsWith(reply, "ok graph=square")) << reply;
  reply = server.Command("query 0");
  EXPECT_TRUE(StartsWith(reply, "ok graph=square")) << reply;
  // Query responses name the plan that actually ran.
  EXPECT_TRUE(Contains(reply, "backend=hk-relax")) << reply;

  reply = server.Command("backend bogus");
  EXPECT_TRUE(StartsWith(reply, "err unknown backend \"bogus\"")) << reply;
  reply = server.Command("backend");
  EXPECT_TRUE(StartsWith(reply, "ok backend=hk-relax available=auto,"))
      << reply;

  // "auto" is a valid default: every query routes, and the response shows
  // the router's concrete choice, never "auto" itself.
  reply = server.Command("backend auto");
  EXPECT_TRUE(StartsWith(reply, "ok backend=auto graphs=2")) << reply;
  reply = server.Command("query 1");
  EXPECT_TRUE(StartsWith(reply, "ok graph=square")) << reply;
  EXPECT_TRUE(Contains(reply, "backend=")) << reply;
  EXPECT_FALSE(Contains(reply, "backend=auto")) << reply;

  reply = server.Command("invalidate");
  EXPECT_TRUE(StartsWith(reply, "ok caches invalidated")) << reply;

  EXPECT_EQ(server.Quit(), 0);
}

TEST(ServerProtocolTest, PerQueryPlanTokensAndParamsCommand) {
  ServerProcess server;
  ASSERT_TRUE(server.Start({"--nodes=500", "--workers=2", "--seed=13"}));
  ASSERT_TRUE(StartsWith(server.ReadLine(), "ok hkpr_server"));

  // Per-query overrides: the token pins this one query's backend; the
  // default (tea+) is untouched.
  std::string reply = server.Command("query 3 backend=hk-relax");
  EXPECT_TRUE(StartsWith(reply, "ok graph=default")) << reply;
  EXPECT_TRUE(Contains(reply, "backend=hk-relax")) << reply;
  reply = server.Command("query 3");
  EXPECT_TRUE(Contains(reply, "backend=tea+")) << reply;

  // Distinct plans never share cache entries: the same seed at another t
  // is a miss, repeating it is a hit.
  reply = server.Command("query 3 t=3.0");
  EXPECT_TRUE(Contains(reply, "cache=miss")) << reply;
  reply = server.Command("query 3 t=3.0");
  EXPECT_TRUE(Contains(reply, "cache=hit")) << reply;

  // topk takes the same tokens; backend=auto resolves to a concrete name.
  reply = server.Command("topk 5 3 backend=auto");
  EXPECT_TRUE(StartsWith(reply, "ok graph=default")) << reply;
  EXPECT_TRUE(Contains(reply, "backend=")) << reply;
  EXPECT_FALSE(Contains(reply, "backend=auto")) << reply;

  // Malformed tokens and unknown backends err without computing.
  reply = server.Command("query 3 bogus=1");
  EXPECT_TRUE(StartsWith(reply, "err unknown token")) << reply;
  reply = server.Command("query 3 backend=nope");
  EXPECT_TRUE(StartsWith(reply, "err unknown backend \"nope\"")) << reply;
  reply = server.Command("query 3 t=abc");
  EXPECT_TRUE(StartsWith(reply, "err malformed value")) << reply;

  // Per-graph defaults: set, observe on queries, show, clear.
  reply = server.Command("params default backend=hk-relax t=2.0");
  EXPECT_TRUE(StartsWith(reply, "ok graph=default backend=hk-relax t=2"))
      << reply;
  reply = server.Command("query 7");
  EXPECT_TRUE(Contains(reply, "backend=hk-relax")) << reply;
  reply = server.Command("params default");
  EXPECT_TRUE(StartsWith(reply, "ok graph=default backend=hk-relax t=2"))
      << reply;
  reply = server.Command("params default clear");
  EXPECT_TRUE(StartsWith(
      reply, "ok graph=default backend=default t=default")) << reply;
  reply = server.Command("query 7");
  EXPECT_TRUE(Contains(reply, "backend=tea+")) << reply;

  // Unknown graph / missing argument err.
  reply = server.Command("params nosuch t=1");
  EXPECT_TRUE(StartsWith(reply, "err unknown graph \"nosuch\"")) << reply;
  reply = server.Command("params");
  EXPECT_TRUE(StartsWith(reply, "err usage: params")) << reply;

  EXPECT_EQ(server.Quit(), 0);
}

TEST(ServerProtocolTest, StatsFieldsJsonShapeAndMetricsExposition) {
  ServerProcess server;
  ASSERT_TRUE(server.Start({"--nodes=500", "--workers=2", "--seed=17"}));
  ASSERT_TRUE(StartsWith(server.ReadLine(), "ok hkpr_server"));

  // Traffic that exercises hit, miss, and computed counters.
  ASSERT_TRUE(StartsWith(server.Command("query 1"), "ok"));
  ASSERT_TRUE(StartsWith(server.Command("query 1"), "ok"));
  ASSERT_TRUE(StartsWith(server.Command("query 5 backend=auto"), "ok"));

  // The stats line must carry *every* ServiceStatsSnapshot field — the
  // once-omitted stolen/invalid_plans/expired/cancelled included — plus
  // the per-stage tracing columns.
  std::string reply = server.Command("stats");
  EXPECT_TRUE(StartsWith(reply, "ok scope=all")) << reply;
  for (const char* field :
       {"submitted=", "completed=", "rejected=", "invalid_plans=",
        "cancelled=", "expired=", "cache_hits=", "cache_misses=",
        "coalesced=", "computed=", "stolen=", "hedged=", "hedge_wins=",
        "queue=", "latency_count=",
        "unknown_graph=", "invalid_argument=", "p50_ms=", "p95_ms=",
        "p99_ms=", "queue_wait_mean_ms=", "queue_wait_p50_ms=",
        "queue_wait_p99_ms=", "cache_mean_ms=", "cache_p50_ms=",
        "cache_p99_ms=", "compute_mean_ms=", "compute_p50_ms=",
        "compute_p99_ms="}) {
    EXPECT_TRUE(Contains(reply, field)) << "missing " << field << ": "
                                        << reply;
  }
  EXPECT_TRUE(Contains(reply, "submitted=3")) << reply;
  EXPECT_TRUE(Contains(reply, "cache_hits=1")) << reply;

  // Per-graph scope carries the same full field set (minus the
  // aggregate-only unknown_graph/invalid_argument counters).
  reply = server.Command("stats default");
  EXPECT_TRUE(StartsWith(reply, "ok scope=default")) << reply;
  EXPECT_TRUE(Contains(reply, "stolen=")) << reply;
  EXPECT_TRUE(Contains(reply, "compute_p99_ms=")) << reply;

  // --json: one line, "ok " + a JSON object with the stage sub-objects.
  reply = server.Command("stats --json");
  ASSERT_TRUE(StartsWith(reply, "ok {")) << reply;
  EXPECT_EQ(reply.back(), '}') << reply;
  for (const char* needle :
       {"\"scope\":\"all\"", "\"submitted\":3", "\"hedged\":",
        "\"hedge_wins\":", "\"stages\":",
        "\"queue_wait\":", "\"cache\":", "\"compute\":", "\"count\":",
        "\"mean_ms\":", "\"p99_ms\":", "\"traced_total_us\":"}) {
    EXPECT_TRUE(Contains(reply, needle)) << "missing " << needle << ": "
                                         << reply;
  }
  reply = server.Command("stats default --json");
  EXPECT_TRUE(StartsWith(reply, "ok {\"scope\":\"default\"")) << reply;
  reply = server.Command("stats nosuch --json");
  EXPECT_TRUE(StartsWith(reply, "err unknown graph")) << reply;

  // metrics: a Prometheus-style block of `name{dims} value` lines closed
  // by a summary "ok metrics ..." line.
  reply = server.Command("metrics");
  std::vector<std::string> lines;
  while (!StartsWith(reply, "ok ") && !StartsWith(reply, "err")) {
    lines.push_back(reply);
    reply = server.ReadLine();
  }
  EXPECT_TRUE(StartsWith(reply, "ok metrics graphs=1 lines=")) << reply;
  EXPECT_TRUE(Contains(reply, "lines=" + std::to_string(lines.size())))
      << reply << " vs " << lines.size() << " lines read";
  ASSERT_FALSE(lines.empty());

  bool saw_submitted = false, saw_backend_dim = false, saw_quantile = false,
       saw_routing = false, saw_stage = false, saw_tenant = false;
  for (const std::string& line : lines) {
    // Every exposition line is `name{label="value",...} number`. Graph
    // scopes carry a graph label; the per-tenant rows a tenant label.
    const size_t brace = line.find('{');
    const size_t close = line.find("} ");
    ASSERT_NE(brace, std::string::npos) << line;
    ASSERT_NE(close, std::string::npos) << line;
    ASSERT_LT(brace, close) << line;
    if (StartsWith(line, "hkpr_tenant_")) {
      saw_tenant = true;
      EXPECT_TRUE(Contains(line, "tenant=\"default\"")) << line;
    } else {
      EXPECT_TRUE(Contains(line, "graph=\"default\"")) << line;
    }
    const std::string value = line.substr(close + 2);
    ASSERT_FALSE(value.empty()) << line;
    char* end = nullptr;
    (void)std::strtod(value.c_str(), &end);
    EXPECT_EQ(*end, '\0') << "non-numeric metric value: " << line;

    if (StartsWith(line, "hkpr_submitted_total{")) {
      saw_submitted = true;
      EXPECT_EQ(value, "3") << line;
    }
    if (StartsWith(line, "hkpr_backend_completed_total{")) {
      saw_backend_dim = true;
      EXPECT_TRUE(Contains(line, "backend=\"")) << line;
    }
    if (Contains(line, "quantile=\"0.99\"")) saw_quantile = true;
    if (StartsWith(line, "hkpr_routing_events_total{")) {
      saw_routing = true;
      EXPECT_EQ(value, "3") << line;  // one event per completed query
    }
    if (StartsWith(line, "hkpr_stage_latency_ms{")) {
      saw_stage = true;
      EXPECT_TRUE(Contains(line, "stage=\"")) << line;
    }
  }
  EXPECT_TRUE(saw_submitted);
  EXPECT_TRUE(saw_backend_dim);  // the (graph, backend) dimension rows
  EXPECT_TRUE(saw_quantile);
  EXPECT_TRUE(saw_routing);
  EXPECT_TRUE(saw_stage);
  EXPECT_TRUE(saw_tenant);  // per-tenant rows for the default tenant

  EXPECT_EQ(server.Quit(), 0);
}

TEST(ServerProtocolTest, RouterCommandAndLearnedHedgeFlags) {
  ServerProcess server;
  ASSERT_TRUE(server.Start({"--nodes=400", "--workers=2", "--seed=23",
                            "--router=learned", "--hedge=on"}));
  const std::string banner = server.ReadLine();
  ASSERT_TRUE(StartsWith(banner, "ok hkpr_server")) << banner;
  EXPECT_TRUE(Contains(banner, "router=learned")) << banner;
  EXPECT_TRUE(Contains(banner, "hedge=on")) << banner;

  // Routed traffic feeds the event log the router command trains from.
  ASSERT_TRUE(StartsWith(server.Command("query 1 backend=auto"), "ok"));
  ASSERT_TRUE(StartsWith(server.Command("query 2 backend=auto"), "ok"));

  // router: per-candidate model lines, then the summary protocol line.
  std::string reply = server.Command("router");
  std::vector<std::string> lines;
  while (!StartsWith(reply, "ok ") && !StartsWith(reply, "err")) {
    lines.push_back(reply);
    reply = server.ReadLine();
  }
  EXPECT_TRUE(StartsWith(reply, "ok router graph=default policy=learned"))
      << reply;
  for (const char* field : {"trained=", "events_observed=", "refits=",
                            "decays=", "hedged=", "hedge_wins="}) {
    EXPECT_TRUE(Contains(reply, field)) << "missing " << field << ": "
                                        << reply;
  }
  // One model line per candidate (the default trio), each with an
  // observation count.
  ASSERT_EQ(lines.size(), 3u);
  for (const std::string& line : lines) {
    EXPECT_TRUE(StartsWith(line, "backend=")) << line;
    EXPECT_TRUE(Contains(line, "observations=")) << line;
  }

  // Explicit graph scope works; unknown scopes err.
  reply = server.Command("router default");
  while (!StartsWith(reply, "ok ") && !StartsWith(reply, "err")) {
    reply = server.ReadLine();
  }
  EXPECT_TRUE(StartsWith(reply, "ok router graph=default")) << reply;
  reply = server.Command("router nosuch");
  EXPECT_TRUE(StartsWith(reply, "err unknown graph \"nosuch\"")) << reply;

  // Under the rule router the command still answers, with policy=rule-based.
  EXPECT_EQ(server.Quit(), 0);
  ServerProcess rule_server;
  ASSERT_TRUE(rule_server.Start({"--nodes=400", "--workers=2", "--seed=23"}));
  ASSERT_TRUE(StartsWith(rule_server.ReadLine(), "ok hkpr_server"));
  reply = rule_server.Command("router");
  EXPECT_TRUE(StartsWith(reply, "ok router graph=default policy=rule-based"))
      << reply;
  EXPECT_EQ(rule_server.Quit(), 0);
}

TEST(ServerProtocolTest, NoTraceFlagDisablesStagesButKeepsServing) {
  ServerProcess server;
  ASSERT_TRUE(
      server.Start({"--nodes=400", "--workers=2", "--seed=19", "--no-trace"}));
  ASSERT_TRUE(StartsWith(server.ReadLine(), "ok hkpr_server"));

  ASSERT_TRUE(StartsWith(server.Command("query 1"), "ok"));
  ASSERT_TRUE(StartsWith(server.Command("query 2"), "ok"));

  // Flat counters still flow; the stage columns vanish with tracing off.
  const std::string reply = server.Command("stats");
  EXPECT_TRUE(StartsWith(reply, "ok scope=all")) << reply;
  EXPECT_TRUE(Contains(reply, "submitted=2")) << reply;
  EXPECT_TRUE(Contains(reply, "latency_count=2")) << reply;
  EXPECT_FALSE(Contains(reply, "queue_wait_mean_ms=")) << reply;
  EXPECT_FALSE(Contains(reply, "compute_p99_ms=")) << reply;

  EXPECT_EQ(server.Quit(), 0);
}

TEST(ServerProtocolTest, GraphsFlagLoadsNamedGraphsAtStartup) {
  const std::string path_a = WriteTempFile("a", "0 1\n1 2\n2 0\n");
  const std::string path_b = WriteTempFile("b", "0 1\n1 2\n2 3\n3 4\n");
  ServerProcess server;
  ASSERT_TRUE(server.Start(
      {"--graphs=tri=" + path_a + ",path=" + path_b, "--workers=2"}));
  const std::string banner = server.ReadLine();
  ASSERT_TRUE(StartsWith(banner, "ok hkpr_server")) << banner;
  EXPECT_TRUE(Contains(banner, "graphs=2(path,tri)")) << banner;
  EXPECT_TRUE(Contains(banner, "current=tri")) << banner;

  std::string reply = server.Command("query 0");
  EXPECT_TRUE(StartsWith(reply, "ok graph=tri")) << reply;
  reply = server.Command("graph use path");
  ASSERT_TRUE(StartsWith(reply, "ok graph=path")) << reply;
  reply = server.Command("query 4");
  EXPECT_TRUE(StartsWith(reply, "ok graph=path")) << reply;

  EXPECT_EQ(server.Quit(), 0);
}

/// Runs the server binary with `args`, stdin closed, and returns its exit
/// code (-1 on signal). For the flag-validation tests: a rejected flag
/// must exit non-zero before serving anything.
int RunServerExpectExit(const std::vector<std::string>& extra_args) {
  const pid_t pid = fork();
  if (pid < 0) return -1;
  if (pid == 0) {
    // No stdin: if the server wrongly accepts the flags it would just
    // see EOF and exit 0 — which the assertions below catch.
    const int devnull = open("/dev/null", O_RDWR);
    dup2(devnull, STDIN_FILENO);
    dup2(devnull, STDOUT_FILENO);
    dup2(devnull, STDERR_FILENO);
    std::vector<std::string> args = {HKPR_SERVER_BINARY};
    args.insert(args.end(), extra_args.begin(), extra_args.end());
    std::vector<char*> argv;
    for (std::string& arg : args) argv.push_back(arg.data());
    argv.push_back(nullptr);
    execv(argv[0], argv.data());
    _exit(127);
  }
  int status = 0;
  waitpid(pid, &status, 0);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(ServerProtocolTest, NegativeNumericFlagsExitNonZero) {
  // Regression: --workers=-1 used to wrap through atoi to 4294967295
  // workers; now any signed value is a startup error.
  EXPECT_EQ(RunServerExpectExit({"--workers=-1"}), 1);
  EXPECT_EQ(RunServerExpectExit({"--nodes=-5"}), 1);
  EXPECT_EQ(RunServerExpectExit({"--cache=-1"}), 1);
}

TEST(ServerProtocolTest, GarbageNumericFlagsExitNonZero) {
  // Regression: --nodes=abc used to silently become 0 via atoi.
  EXPECT_EQ(RunServerExpectExit({"--nodes=abc"}), 1);
  EXPECT_EQ(RunServerExpectExit({"--nodes=12x", "--workers=2"}), 1);
  EXPECT_EQ(RunServerExpectExit({"--seed=1.5"}), 1);
  EXPECT_EQ(RunServerExpectExit({"--nodes=0"}), 1);
  EXPECT_EQ(RunServerExpectExit({"--listen=99999"}), 1);  // > 65535
}

TEST(ServerProtocolTest, UnknownFlagsAreRejectedNotIgnored) {
  // A typo like --worker=8 used to be silently ignored, serving with the
  // default worker budget instead of erroring.
  EXPECT_EQ(RunServerExpectExit({"--worker=8"}), 1);
  EXPECT_EQ(RunServerExpectExit({"--nodes=400", "--bogus"}), 1);
  // Valid flags still start and exit 0 on stdin EOF.
  EXPECT_EQ(RunServerExpectExit({"--nodes=400", "--workers=2"}), 0);
}

/// Loopback client for the --listen frontend.
class TcpClient {
 public:
  explicit TcpClient(uint16_t port) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ =
        connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }
  ~TcpClient() {
    if (fd_ >= 0) close(fd_);
  }
  bool connected() const { return connected_; }
  std::string Command(const std::string& line) {
    const std::string out = line + "\n";
    if (write(fd_, out.data(), out.size()) !=
        static_cast<ssize_t>(out.size())) {
      return "";
    }
    while (true) {
      const size_t newline = buf_.find('\n');
      if (newline != std::string::npos) {
        std::string reply = buf_.substr(0, newline);
        buf_.erase(0, newline + 1);
        return reply;
      }
      char chunk[4096];
      const ssize_t n = read(fd_, chunk, sizeof(chunk));
      if (n <= 0) return "";
      buf_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buf_;
};

TEST(ServerProtocolTest, ListenFlagServesSameProtocolOverTcp) {
  ServerProcess server;
  ASSERT_TRUE(server.Start(
      {"--nodes=400", "--workers=2", "--seed=19", "--listen=0"}));
  const std::string banner = server.ReadLine();
  ASSERT_TRUE(StartsWith(banner, "ok hkpr_server")) << banner;
  const size_t at = banner.find(" listen=");
  ASSERT_NE(at, std::string::npos) << banner;
  const uint16_t port = static_cast<uint16_t>(
      std::strtoul(banner.c_str() + at + 8, nullptr, 10));
  ASSERT_GT(port, 0);

  TcpClient tcp(port);
  ASSERT_TRUE(tcp.connected());

  // stdin and socket answer the same deterministic commands with
  // identical bytes — the two transports share one dispatcher.
  for (const std::string& cmd :
       {std::string("graph list"), std::string("backend"),
        std::string("tenant"), std::string("query 9999"),
        std::string("query 1 t="), std::string("nonsense")}) {
    const std::string via_stdin = server.Command(cmd);
    const std::string via_tcp = tcp.Command(cmd);
    EXPECT_EQ(via_stdin, via_tcp) << "transport divergence on: " << cmd;
  }

  // Tenant state is per session: binding the socket session to a tenant
  // must not move the stdin session off the default.
  EXPECT_TRUE(StartsWith(tcp.Command("tenant socket-side"),
                         "ok tenant=socket-side"));
  EXPECT_EQ(server.Command("tenant"), "ok tenant=default");

  // Queries over TCP serve like stdin ones (bytes differ only in
  // latency_ms, so compare the prefix through the backend field).
  const std::string tcp_query = tcp.Command("query 7");
  EXPECT_TRUE(StartsWith(tcp_query, "ok graph=default")) << tcp_query;
  EXPECT_TRUE(Contains(tcp_query, "backend=")) << tcp_query;

  EXPECT_EQ(server.Quit(), 0);
}

}  // namespace
}  // namespace hkpr

#else  // !HKPR_SERVER_BINARY

namespace hkpr {
namespace {

TEST(ServerProtocolTest, SkippedWithoutServerBinary) {
  GTEST_SKIP() << "example_hkpr_server not built (HKPR_BUILD_EXAMPLES=OFF)";
}

}  // namespace
}  // namespace hkpr

#endif  // HKPR_SERVER_BINARY
