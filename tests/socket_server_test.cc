// Tests for the epoll socket frontend (net/socket_server.h): partial-line
// reassembly, strict in-order pipelining, concurrent connections, the
// oversized-line guard, tenant QoS isolation under concurrent load, and
// byte-for-byte parity between the socket path and direct
// CommandProcessor execution (the stdin path).

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "net/command_processor.h"
#include "net/socket_server.h"
#include "service/graph_store.h"
#include "service/multi_graph_service.h"

namespace hkpr {
namespace {

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

/// Blocking loopback client speaking the line protocol.
class Client {
 public:
  explicit Client(uint16_t port) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    const int one = 1;
    setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ =
        connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }

  ~Client() {
    if (fd_ >= 0) close(fd_);
  }

  bool connected() const { return connected_; }

  void Send(const std::string& bytes) {
    ASSERT_EQ(write(fd_, bytes.data(), bytes.size()),
              static_cast<ssize_t>(bytes.size()));
  }

  /// Reads one '\n'-terminated line; "" on EOF.
  std::string ReadLine() {
    while (true) {
      const size_t newline = buf_.find('\n');
      if (newline != std::string::npos) {
        std::string line = buf_.substr(0, newline);
        buf_.erase(0, newline + 1);
        return line;
      }
      char chunk[8192];
      const ssize_t n = read(fd_, chunk, sizeof(chunk));
      if (n <= 0) return "";
      buf_.append(chunk, static_cast<size_t>(n));
    }
  }

  std::string Command(const std::string& line) {
    Send(line + "\n");
    return ReadLine();
  }

  /// Reads until EOF, returning everything.
  std::string ReadAll() {
    std::string out = buf_;
    buf_.clear();
    char chunk[8192];
    ssize_t n;
    while ((n = read(fd_, chunk, sizeof(chunk))) > 0) {
      out.append(chunk, static_cast<size_t>(n));
    }
    return out;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buf_;
};

class SocketServerTest : public ::testing::Test {
 protected:
  void StartServer(SocketServerOptions net = SocketServerOptions()) {
    store_.Publish("default", PowerlawCluster(500, 4, 0.3, 7));
    params_.t = 5.0;
    params_.eps_r = 0.5;
    params_.delta = 1.0 / 500.0;
    params_.p_f = 1e-6;
    MultiGraphOptions options;
    options.worker_budget = 2;
    service_ = std::make_unique<MultiGraphService>(store_, params_, 7,
                                                   options);
    processor_ = std::make_unique<CommandProcessor>(store_, *service_,
                                                    tenants_, params_,
                                                    "default");
    net.port = 0;
    server_ = std::make_unique<SocketServer>(*processor_, net);
    ASSERT_TRUE(server_->Start()) << server_->error();
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
  }

  GraphStore store_;
  ApproxParams params_;
  TenantRegistry tenants_;
  std::unique_ptr<MultiGraphService> service_;
  std::unique_ptr<CommandProcessor> processor_;
  std::unique_ptr<SocketServer> server_;
};

TEST_F(SocketServerTest, ServesQueriesOverTcp) {
  StartServer();
  Client client(server_->port());
  ASSERT_TRUE(client.connected());
  EXPECT_TRUE(StartsWith(client.Command("query 3"), "ok graph=default"));
  EXPECT_TRUE(StartsWith(client.Command("nonsense"), "err unknown command"));
  EXPECT_EQ(server_->connections_accepted(), 1u);
}

TEST_F(SocketServerTest, ReassemblesPartialLines) {
  StartServer();
  Client client(server_->port());
  ASSERT_TRUE(client.connected());
  // One command delivered in four separate writes, including a split in
  // the middle of a token and a CRLF terminator.
  client.Send("que");
  client.Send("ry ");
  client.Send("4");
  client.Send("\r\n");
  EXPECT_TRUE(StartsWith(client.ReadLine(), "ok graph=default"));
  // Two commands in one write plus a leftover partial that completes
  // later.
  client.Send("query 5\nquery 6\nquer");
  EXPECT_TRUE(StartsWith(client.ReadLine(), "ok graph=default"));
  EXPECT_TRUE(StartsWith(client.ReadLine(), "ok graph=default"));
  client.Send("y 7\n");
  EXPECT_TRUE(StartsWith(client.ReadLine(), "ok graph=default"));
}

TEST_F(SocketServerTest, PipelinedCommandsAnswerInOrder) {
  StartServer();
  Client client(server_->port());
  ASSERT_TRUE(client.connected());
  constexpr int kCount = 50;
  std::string burst;
  for (int i = 0; i < kCount; ++i) {
    burst += "query " + std::to_string(i % 20) + "\n";
  }
  client.Send(burst);  // all at once, no waiting — pipelined
  for (int i = 0; i < kCount; ++i) {
    const std::string line = client.ReadLine();
    // Responses must come back in submission order: the i-th line
    // carries the i-th command's seed.
    const std::string want = " seed=" + std::to_string(i % 20) + " ";
    EXPECT_NE(line.find(want), std::string::npos)
        << "response " << i << " out of order: " << line;
  }
}

TEST_F(SocketServerTest, ManyConcurrentConnections) {
  StartServer();
  constexpr int kClients = 8;
  constexpr int kQueriesEach = 25;
  std::atomic<int> ok_count{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client(server_->port());
      if (!client.connected()) return;
      for (int i = 0; i < kQueriesEach; ++i) {
        const std::string line =
            client.Command("query " + std::to_string((c * 37 + i) % 500));
        if (StartsWith(line, "ok ")) ok_count.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(ok_count.load(), kClients * kQueriesEach);
  EXPECT_EQ(server_->connections_accepted(),
            static_cast<uint64_t>(kClients));
}

TEST_F(SocketServerTest, OversizedLineGetsErrorAndClose) {
  SocketServerOptions net;
  net.max_line_bytes = 1024;
  StartServer(net);
  Client client(server_->port());
  ASSERT_TRUE(client.connected());
  // 4 KiB with no newline: the server must reject rather than buffer on.
  client.Send(std::string(4096, 'x'));
  const std::string out = client.ReadAll();  // runs to EOF: closed
  EXPECT_TRUE(StartsWith(out, "err line too long")) << out;
}

TEST_F(SocketServerTest, QuitClosesOnlyThatConnection) {
  StartServer();
  Client a(server_->port());
  Client b(server_->port());
  ASSERT_TRUE(a.connected());
  ASSERT_TRUE(b.connected());
  ASSERT_TRUE(StartsWith(b.Command("query 1"), "ok "));
  a.Send("quit\n");
  EXPECT_EQ(a.ReadAll(), "");  // quit answers nothing and closes
  // The other connection is unaffected.
  EXPECT_TRUE(StartsWith(b.Command("query 2"), "ok "));
}

TEST_F(SocketServerTest, SessionsTrackTheirOwnGraphAndTenant) {
  StartServer();
  Client a(server_->port());
  Client b(server_->port());
  ASSERT_TRUE(a.connected());
  ASSERT_TRUE(b.connected());
  EXPECT_TRUE(StartsWith(a.Command("tenant alice"), "ok tenant=alice"));
  // b's session still reports the default tenant.
  EXPECT_TRUE(StartsWith(b.Command("tenant"), "ok tenant=default"));
  EXPECT_TRUE(StartsWith(a.Command("tenant"), "ok tenant=alice"));
}

TEST_F(SocketServerTest, QosIsolationUnderConcurrentLoad) {
  StartServer();
  // "limited" may send 5 qps with a burst of 2; "default" is unlimited.
  {
    Client admin(server_->port());
    ASSERT_TRUE(admin.connected());
    ASSERT_TRUE(StartsWith(
        admin.Command("tenant set limited rate=5 burst=2 priority=high"),
        "ok "));
  }
  std::atomic<int> limited_ok{0}, limited_throttled{0}, limited_other{0};
  std::atomic<int> default_ok{0}, default_err{0};
  constexpr int kQueries = 60;
  std::thread limited_thread([&] {
    Client client(server_->port());
    if (!client.connected()) return;
    if (!StartsWith(client.Command("tenant limited"), "ok ")) return;
    for (int i = 0; i < kQueries; ++i) {
      const std::string line = client.Command("query " + std::to_string(i));
      if (StartsWith(line, "ok ")) {
        limited_ok.fetch_add(1);
      } else if (StartsWith(line, "err tenant-throttled tenant=limited")) {
        limited_throttled.fetch_add(1);
      } else {
        limited_other.fetch_add(1);
      }
    }
  });
  std::thread default_thread([&] {
    Client client(server_->port());
    if (!client.connected()) return;
    for (int i = 0; i < kQueries; ++i) {
      const std::string line = client.Command("query " + std::to_string(i));
      if (StartsWith(line, "ok ")) {
        default_err.fetch_add(0);
        default_ok.fetch_add(1);
      } else {
        default_err.fetch_add(1);
      }
    }
  });
  limited_thread.join();
  default_thread.join();
  // The limited tenant hits its rate limit with the distinct error...
  EXPECT_GT(limited_throttled.load(), 0);
  EXPECT_GT(limited_ok.load(), 0);  // ...but its burst tokens were served
  EXPECT_EQ(limited_other.load(), 0);
  // ...while the unthrottled tenant saw zero added rejections.
  EXPECT_EQ(default_ok.load(), kQueries);
  EXPECT_EQ(default_err.load(), 0);
  const TenantStatsSnapshot s = tenants_.StatsFor("limited");
  EXPECT_EQ(s.throttled,
            static_cast<uint64_t>(limited_throttled.load()));
}

TEST_F(SocketServerTest, SocketMatchesDirectExecutionByteForByte) {
  StartServer();
  // A deterministic command stream: introspection, session-state and
  // error responses whose bytes don't depend on timing or cache state
  // (query responses carry latency_ms, so successful queries can't be
  // byte-compared — the shapes they share are covered by the tests
  // above). None of these mutate shared service state, so replaying the
  // stream on both transports must produce identical bytes.
  const std::vector<std::string> stream = {
      "tenant alice",
      "graph list",
      "backend",
      "params default",
      "tenant list",
      "query",          // usage error — deterministic
      "query 3 t=",     // hardened parse error
      "query 3 t=1 t=2",
      "graph use nosuch",
      "bogus",
  };
  // Direct (stdin-path) execution first, to learn the expected bytes.
  std::string direct_bytes;
  {
    ClientSession session = processor_->NewSession();
    for (const std::string& cmd : stream) {
      direct_bytes += processor_->Execute(session, cmd).output;
    }
  }
  const size_t expected_lines = static_cast<size_t>(
      std::count(direct_bytes.begin(), direct_bytes.end(), '\n'));
  ASSERT_GE(expected_lines, stream.size());
  // Same stream over the socket, pipelined in one write.
  std::string socket_bytes;
  {
    Client client(server_->port());
    ASSERT_TRUE(client.connected());
    std::string all;
    for (const std::string& cmd : stream) all += cmd + "\n";
    client.Send(all);
    for (size_t i = 0; i < expected_lines; ++i) {
      socket_bytes += client.ReadLine() + "\n";
    }
  }
  EXPECT_EQ(socket_bytes, direct_bytes);
}

TEST_F(SocketServerTest, StopUnblocksOpenConnections) {
  StartServer();
  auto client = std::make_unique<Client>(server_->port());
  ASSERT_TRUE(client->connected());
  ASSERT_TRUE(StartsWith(client->Command("query 1"), "ok "));
  server_->Stop();
  EXPECT_EQ(client->ReadAll(), "");  // server closed the connection
  EXPECT_EQ(server_->connections_active(), 0u);
}

}  // namespace
}  // namespace hkpr
