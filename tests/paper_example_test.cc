// Worked-example tests anchored to the paper's Section 5.4 walkthrough
// (Figure 1 graph, Tables 4-6): the first push round from the seed must
// produce exactly the reserve and residues the paper tabulates.

#include <gtest/gtest.h>

#include <cmath>

#include "hkpr/heat_kernel.h"
#include "hkpr/push.h"
#include "hkpr/tea_plus.h"
#include "test_util.h"

namespace hkpr {
namespace {

// The paper's example uses t = 3; the seed s has two neighbors v1, v2.
constexpr double kT = 3.0;

TEST(PaperExampleTest, Table4FirstPushRound) {
  // Table 4: after the first round of push operations from s,
  //   q_s[s]    = 1/e^3                    (eta(0)/psi(0) of the unit residue)
  //   r1[v1] = r1[v2] = (e^3 - 1)/(2 e^3)  (the rest, split over 2 neighbors)
  Graph g = testing::MakePaperFigure1();
  ASSERT_EQ(g.Degree(0), 2u);  // s has exactly two neighbors
  HeatKernel kernel(kT);

  // r_max = 0.2: the seed's unit residue (> 0.2 * 2) is pushed; the hop-1
  // residues ~0.475 stay below their thresholds (0.2 * 3 for v1,
  // 0.2 * 6 for v2), so exactly one round happens.
  PushResult push = HkPush(g, kernel, /*seed=*/0, /*r_max=*/0.2);
  EXPECT_EQ(push.entries_processed, 1u);

  const double e3 = std::exp(kT);
  EXPECT_NEAR(push.reserve.Get(0), 1.0 / e3, 1e-12);
  EXPECT_NEAR(push.residues.Get(1, 1), (e3 - 1.0) / (2.0 * e3), 1e-12);
  EXPECT_NEAR(push.residues.Get(1, 2), (e3 - 1.0) / (2.0 * e3), 1e-12);
  // Nothing else has moved yet.
  EXPECT_EQ(push.reserve.nnz(), 1u);
  EXPECT_NEAR(push.residues.HopSum(0), 0.0, 1e-15);
}

TEST(PaperExampleTest, SecondRoundSpreadsOverNeighbors) {
  // With a lower threshold the hop-1 residues also push: v1 (degree 3)
  // converts eta(1)/psi(1) of its hop-1 residue into reserve (Table 5's
  // update) and forwards the rest in thirds. Reserves only grow, so after
  // the full drain v1's reserve is at least that converted fraction, and
  // every node of the example graph has received mass (Table 6's last row).
  Graph g = testing::MakePaperFigure1();
  HeatKernel kernel(kT);
  PushResult push = HkPush(g, kernel, 0, /*r_max=*/0.05);

  const double e3 = std::exp(kT);
  const double r1 = (e3 - 1.0) / (2.0 * e3);  // hop-1 residue of v1
  const double reserve_frac = kernel.Eta(1) / kernel.Psi(1);
  EXPECT_GE(push.reserve.Get(1), reserve_frac * r1 - 1e-12);

  // Mass conservation through the multi-round drain.
  EXPECT_NEAR(push.reserve.Sum() + push.residues.TotalSum(), 1.0, 1e-12);

  // Every node holds some mass (reserve or residue at some hop) by now.
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    double held = push.reserve.Get(v);
    for (uint32_t k = 0; k <= push.residues.max_hop(); ++k) {
      held += push.residues.Get(k, v);
    }
    EXPECT_GT(held, 0.0) << "node " << v;
  }
}

TEST(PaperExampleTest, ResidueReductionShrinksWalkCount) {
  // The quantitative point of Example 1/Section 5.2: reducing residues by
  // beta_k * eps_r * delta * d(u) slashes alpha and therefore the number of
  // walks. Reproduce the effect end-to-end on the example graph.
  Graph g = testing::MakePaperFigure1();
  ApproxParams params;
  params.t = kT;
  params.eps_r = 0.5;
  params.delta = 2.0 * (1.0 - 4.0 / std::exp(3.0)) / 9.0;  // paper's delta
  params.p_f = 1e-2;

  TeaPlusOptions with_reduction, without_reduction;
  without_reduction.enable_residue_reduction = false;
  // Keep the push phase identical and force the walk phase.
  with_reduction.c = 0.5;
  without_reduction.c = 0.5;
  with_reduction.enable_early_exit = false;
  without_reduction.enable_early_exit = false;

  TeaPlusEstimator reduced(g, params, 1, with_reduction);
  TeaPlusEstimator unreduced(g, params, 1, without_reduction);
  EstimatorStats reduced_stats, unreduced_stats;
  reduced.Estimate(0, &reduced_stats);
  unreduced.Estimate(0, &unreduced_stats);
  EXPECT_LE(reduced_stats.num_walks, unreduced_stats.num_walks);
}

}  // namespace
}  // namespace hkpr
