// Edge-case and failure-injection tests across modules: boundary
// parameters, truncated inputs, degenerate graphs, and API misuse that must
// be caught by CHECKs.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>

#include "baselines/crd.h"
#include "clustering/conductance.h"
#include "clustering/metrics.h"
#include "clustering/sweep.h"
#include "common/random.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "graph/subgraph.h"
#include "hkpr/heat_kernel.h"
#include "hkpr/monte_carlo.h"
#include "hkpr/power_method.h"
#include "hkpr/push.h"
#include "hkpr/queries.h"
#include "hkpr/tea.h"
#include "bench_util/workload.h"
#include "test_util.h"

namespace hkpr {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(GraphIoEdgeTest, BinaryTruncatedHeaderFails) {
  const std::string path = TempPath("trunc_header.bin");
  std::ofstream out(path, std::ios::binary);
  out << "HKPRGRPH";  // magic only, no sizes
  out.close();
  EXPECT_FALSE(LoadBinary(path).ok());
}

TEST(GraphIoEdgeTest, BinaryTruncatedOffsetsFails) {
  // Write a valid graph, then truncate the file inside the offsets array.
  Graph g = testing::MakeCycle(100);
  const std::string path = TempPath("trunc_offsets.bin");
  ASSERT_TRUE(SaveBinary(g, path).ok());
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
#ifdef _WIN32
  std::fclose(f);
#else
  ASSERT_EQ(ftruncate(fileno(f), 128), 0);
  std::fclose(f);
  EXPECT_FALSE(LoadBinary(path).ok());
#endif
}

TEST(GraphIoEdgeTest, NodeIdOverflowRejected) {
  const std::string path = TempPath("overflow.txt");
  std::ofstream out(path);
  out << "0 42949672960\n";  // > 2^32
  out.close();
  auto loaded = LoadEdgeList(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kOutOfRange);
}

TEST(HeatKernelEdgeTest, SampleAtCdfBoundaryReturnsValidHop) {
  HeatKernel kernel(5.0);
  Rng rng(1);
  for (int i = 0; i < 200000; ++i) {
    EXPECT_LE(kernel.SamplePoissonLength(rng), kernel.MaxHop());
  }
}

TEST(HeatKernelEdgeTest, TinyTConcentratesAtZero) {
  HeatKernel kernel(0.01);
  EXPECT_GT(kernel.Eta(0), 0.99);
  EXPECT_GT(kernel.TerminationProb(0), 0.99);
}

TEST(ConductanceEdgeTest, ComplementDenominator) {
  // A set holding more than half the volume must use the complement volume.
  Graph g = testing::MakeStar(10);  // hub 0, vol = 18
  std::vector<NodeId> big = {0, 1, 2, 3, 4, 5, 6};  // vol = 9 + 6 = 15
  const CutStats stats = ComputeCutStats(g, big);
  EXPECT_EQ(stats.volume, 15u);
  EXPECT_EQ(stats.cut, 3u);  // hub to 3 outside leaves
  EXPECT_DOUBLE_EQ(stats.conductance, 3.0 / 3.0);  // min(15, 3) = 3
}

TEST(SweepEdgeTest, SingleEntrySupport) {
  Graph g = testing::MakeCycle(6);
  SparseVector est;
  est.Add(2, 1.0);
  SweepResult sweep = SweepCut(g, est);
  ASSERT_EQ(sweep.cluster.size(), 1u);
  EXPECT_EQ(sweep.cluster[0], 2u);
  EXPECT_DOUBLE_EQ(sweep.conductance, 1.0);  // 2 cut / 2 vol
}

TEST(SweepEdgeTest, ProfileLengthMatchesInspectedPrefixes) {
  Graph g = testing::MakeBarbell(5);
  const std::vector<double> rho = ExactHkpr(g, 5.0, 0);
  SparseVector est;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (rho[v] > 0) est.Add(v, rho[v]);
  }
  SweepOptions options;
  options.max_prefix = 3;
  options.keep_profile = true;
  SweepResult sweep = SweepCut(g, est, options);
  EXPECT_EQ(sweep.profile.size(), 3u);
}

TEST(PushEdgeTest, HopCapAboveKernelMaxIsClamped) {
  Graph g = testing::MakeCycle(10);
  HeatKernel kernel(2.0);
  HkPushPlusOptions options;
  options.eps_r = 0.5;
  options.delta = 1e-4;
  options.hop_cap = kernel.MaxHop() + 100;
  options.push_budget = 1'000'000;
  PushResult push = HkPushPlus(g, kernel, 0, options);
  EXPECT_LE(push.residues.max_hop(), kernel.MaxHop());
}

TEST(PushEdgeTest, IsolatedSeedKeepsUnitResidue) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  Graph g = b.Build();  // node 2 isolated
  HeatKernel kernel(5.0);
  PushResult push = HkPush(g, kernel, 2, 0.001);
  // Degree 0: nothing can be pushed; the mass stays as hop-0 residue.
  EXPECT_EQ(push.entries_processed, 0u);
  EXPECT_DOUBLE_EQ(push.residues.Get(0, 2), 1.0);
}

TEST(TeaEdgeTest, HugeRmaxDegeneratesToMonteCarlo) {
  // With r_max so large nothing is pushed, alpha = 1 and TEA performs the
  // full omega walks from the seed — exactly the Monte-Carlo regime the
  // paper describes for c -> 0 / r_max -> inf.
  Graph g = PowerlawCluster(200, 3, 0.3, 2);
  ApproxParams params;
  params.t = 5.0;
  params.eps_r = 0.5;
  params.delta = 1e-2;
  params.p_f = 1e-2;
  TeaOptions options;
  options.r_max_scale = 1e9;
  TeaEstimator tea(g, params, 3, options);
  EstimatorStats stats;
  tea.Estimate(5, &stats);
  EXPECT_EQ(stats.entries_processed, 0u);
  EXPECT_EQ(stats.num_walks,
            static_cast<uint64_t>(std::ceil(tea.omega())));
}

TEST(WorkloadEdgeTest, FewerEligibleSeedsThanRequested) {
  GraphBuilder b(50);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  Graph g = b.Build();  // only 3 non-isolated nodes
  Rng rng(4);
  std::vector<NodeId> seeds = UniformSeeds(g, 10, rng);
  EXPECT_EQ(seeds.size(), 3u);
}

TEST(QueriesEdgeTest, TopKOnEmptyEstimate) {
  Graph g = testing::MakeCycle(5);
  SparseVector empty;
  EXPECT_TRUE(TopKNormalized(g, empty, 10).empty());
}

TEST(QueriesEdgeTest, SeedSetRejectsMismatchedWeights) {
  Graph g = testing::MakeCycle(6);
  ApproxParams params;
  params.delta = 1e-2;
  params.p_f = 1e-2;
  MonteCarloEstimator est(g, params, 5);
  std::vector<NodeId> seeds = {0, 1};
  std::vector<double> weights = {1.0};
  EXPECT_DEATH(EstimateSeedSet(g, est, seeds, weights), "weights");
}

TEST(QueriesEdgeTest, SeedSetRejectsZeroTotalWeight) {
  Graph g = testing::MakeCycle(6);
  ApproxParams params;
  params.delta = 1e-2;
  params.p_f = 1e-2;
  MonteCarloEstimator est(g, params, 6);
  std::vector<NodeId> seeds = {0, 1};
  std::vector<double> weights = {0.0, 0.0};
  EXPECT_DEATH(EstimateSeedSet(g, est, seeds, weights), "positive");
}

TEST(CrdEdgeTest, TrappedMassStopsEarly) {
  // A tiny clique saturates immediately: the trapped-mass condition must
  // stop the outer loop well before the iteration cap.
  Graph g = testing::MakeComplete(5);
  CrdOptions options;
  options.iterations = 30;
  FlowClusterResult result = Crd(g, 0, options);
  EXPECT_LT(result.flow_rounds, 30u);
}

TEST(GeneratorEdgeTest, GnmNearCompleteGraph) {
  const uint32_t n = 12;
  const uint64_t max_edges = static_cast<uint64_t>(n) * (n - 1) / 2;
  Graph g = ErdosRenyiGnm(n, max_edges - 1, 7);
  EXPECT_EQ(g.NumEdges(), max_edges - 1);
}

TEST(GeneratorEdgeTest, PlcSingleEdgePerNodeIsConnectedTree) {
  Graph g = PowerlawCluster(500, 1, 0.0, 8);
  EXPECT_EQ(g.NumEdges(), 499u);  // tree: n-1 edges
  EXPECT_EQ(LargestComponent(g).size(), 500u);
}

TEST(MetricsEdgeTest, NdcgDepthBeyondGraph) {
  Graph g = testing::MakeCycle(4);
  std::vector<double> normalized = {0.4, 0.3, 0.2, 0.1};
  SparseVector est;
  for (NodeId v = 0; v < 4; ++v) est.Add(v, normalized[v]);
  EXPECT_NEAR(NdcgAtK(g, est, normalized, 1000), 1.0, 1e-12);
}

}  // namespace
}  // namespace hkpr
