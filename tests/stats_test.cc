// Tests for the graph statistics module.

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/stats.h"
#include "test_util.h"

namespace hkpr {
namespace {

TEST(DegreeStatsTest, CompleteGraph) {
  Graph g = testing::MakeComplete(9);
  const DegreeStats stats = ComputeDegreeStats(g);
  EXPECT_EQ(stats.min, 8u);
  EXPECT_EQ(stats.max, 8u);
  EXPECT_DOUBLE_EQ(stats.mean, 8.0);
  EXPECT_DOUBLE_EQ(stats.median, 8.0);
}

TEST(DegreeStatsTest, StarGraph) {
  Graph g = testing::MakeStar(11);  // hub degree 10, ten leaves degree 1
  const DegreeStats stats = ComputeDegreeStats(g);
  EXPECT_EQ(stats.min, 1u);
  EXPECT_EQ(stats.max, 10u);
  EXPECT_NEAR(stats.mean, 20.0 / 11.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.median, 1.0);
}

TEST(DegreeHistogramTest, CountsPerDegree) {
  Graph g = testing::MakeStar(5);
  const std::vector<uint64_t> histogram = DegreeHistogram(g);
  ASSERT_EQ(histogram.size(), 5u);  // max degree 4
  EXPECT_EQ(histogram[1], 4u);
  EXPECT_EQ(histogram[4], 1u);
  EXPECT_EQ(histogram[0], 0u);
}

TEST(LocalClusteringTest, CompleteGraphIsOne) {
  Graph g = testing::MakeComplete(6);
  for (NodeId v = 0; v < 6; ++v) {
    EXPECT_DOUBLE_EQ(LocalClusteringCoefficient(g, v), 1.0);
  }
}

TEST(LocalClusteringTest, StarAndCycleAreZero) {
  Graph star = testing::MakeStar(6);
  EXPECT_DOUBLE_EQ(LocalClusteringCoefficient(star, 0), 0.0);
  Graph cycle = testing::MakeCycle(8);
  EXPECT_DOUBLE_EQ(LocalClusteringCoefficient(cycle, 3), 0.0);
}

TEST(LocalClusteringTest, BarbellBridgeNode) {
  // In a barbell of clique size 4, the bridge endpoint has neighbors
  // {3 clique mates + 1 bridge}; only the 3 clique pairs are closed.
  Graph g = testing::MakeBarbell(4);
  // Node 3 is the bridge endpoint in clique A: degree 4, closed pairs = 3.
  EXPECT_DOUBLE_EQ(LocalClusteringCoefficient(g, 3), 3.0 / 6.0);
  // Interior clique node: degree 3, all pairs closed.
  EXPECT_DOUBLE_EQ(LocalClusteringCoefficient(g, 0), 1.0);
}

TEST(AverageClusteringTest, ExactVsSampledAgree) {
  Graph g = PowerlawCluster(2000, 4, 0.5, 3);
  const double exact = AverageClusteringCoefficient(g);
  Rng rng(4);
  const double sampled = AverageClusteringCoefficient(g, 800, rng);
  EXPECT_NEAR(sampled, exact, 0.05);
  EXPECT_GT(exact, 0.05);  // triad formation guarantees clustering
}

TEST(TriangleCountTest, KnownGraphs) {
  EXPECT_EQ(CountTriangles(testing::MakeComplete(5)), 10u);  // C(5,3)
  EXPECT_EQ(CountTriangles(testing::MakeCycle(10)), 0u);
  EXPECT_EQ(CountTriangles(testing::MakeStar(10)), 0u);
  EXPECT_EQ(CountTriangles(testing::MakeCycle(3)), 1u);
}

TEST(TriangleCountTest, Barbell) {
  // Two K5 cliques: 2 * C(5,3) = 20 triangles; the bridge adds none.
  EXPECT_EQ(CountTriangles(testing::MakeBarbell(5)), 20u);
}

TEST(GlobalClusteringTest, CompleteIsOne) {
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(testing::MakeComplete(7)), 1.0);
}

TEST(GlobalClusteringTest, TriangleFreeIsZero) {
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(testing::MakeCycle(12)), 0.0);
}

TEST(GlobalClusteringTest, PathologyFreeOnEmpty) {
  GraphBuilder b(3);
  Graph g = b.Build();
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(g), 0.0);
}

TEST(DiameterTest, PathGraphExact) {
  Graph g = testing::MakePath(17);
  EXPECT_EQ(EstimateDiameter(g, 8), 16u);
}

TEST(DiameterTest, CycleLowerBound) {
  Graph g = testing::MakeCycle(20);
  const uint32_t estimate = EstimateDiameter(g, 0);
  EXPECT_EQ(estimate, 10u);  // double sweep is exact on a cycle
}

TEST(DiameterTest, CompleteGraphIsOne) {
  EXPECT_EQ(EstimateDiameter(testing::MakeComplete(8), 0), 1u);
}

TEST(DiameterTest, SmallWorldShortensPaths) {
  // Watts-Strogatz: rewiring shrinks the diameter of the ring lattice.
  Graph lattice = WattsStrogatz(600, 3, 0.0, 5);
  Graph small_world = WattsStrogatz(600, 3, 0.2, 5);
  EXPECT_LT(EstimateDiameter(small_world, 0), EstimateDiameter(lattice, 0));
}

}  // namespace
}  // namespace hkpr
