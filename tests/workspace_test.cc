// Tests for the query-engine layer: workspace reuse, pool-backed estimator
// determinism, the batch API, and the zero-allocation steady-state
// guarantee.
//
// This translation unit overrides the global operator new/delete to feed
// AllocCounters (common/mem_tracker.h). The override applies to the whole
// test binary but only counts; behavior is unchanged.

#include <gtest/gtest.h>

#include <cstdlib>
#include <new>
#include <vector>

#include "baselines/hk_relax.h"
#include "common/mem_tracker.h"
#include "graph/generators.h"
#include "hkpr/monte_carlo.h"
#include "hkpr/push_estimator.h"
#include "hkpr/queries.h"
#include "hkpr/tea.h"
#include "hkpr/tea_plus.h"
#include "hkpr/workspace.h"
#include "parallel/parallel_monte_carlo.h"
#include "parallel/parallel_tea_plus.h"
#include "parallel/thread_pool.h"
#include "test_util.h"

// ---- counting operator new/delete (whole-binary, count-only) --------------

void* operator new(std::size_t size) {
  hkpr::AllocCounters::RecordAllocation();
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  hkpr::AllocCounters::RecordAllocation();
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), size) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept {
  hkpr::AllocCounters::RecordDeallocation();
  std::free(p);
}

void operator delete[](void* p) noexcept { ::operator delete(p); }
void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { ::operator delete(p); }

void operator delete(void* p, std::align_val_t) noexcept {
  hkpr::AllocCounters::RecordDeallocation();
  std::free(p);
}

void operator delete[](void* p, std::align_val_t a) noexcept {
  ::operator delete(p, a);
}

void operator delete(void* p, std::size_t, std::align_val_t a) noexcept {
  ::operator delete(p, a);
}

void operator delete[](void* p, std::size_t, std::align_val_t a) noexcept {
  ::operator delete(p, a);
}

// ---------------------------------------------------------------------------

namespace hkpr {
namespace {

/// Allocations performed by `fn()`.
template <typename Fn>
uint64_t AllocationsDuring(Fn&& fn) {
  const uint64_t before = AllocCounters::Allocations();
  fn();
  return AllocCounters::Allocations() - before;
}

ApproxParams TestParams(double delta) {
  ApproxParams p;
  p.t = 5.0;
  p.eps_r = 0.5;
  p.delta = delta;
  p.p_f = 1e-4;
  return p;
}

void ExpectSameVector(const SparseVector& a, const SparseVector& b) {
  ASSERT_EQ(a.nnz(), b.nnz());
  EXPECT_DOUBLE_EQ(a.degree_offset(), b.degree_offset());
  for (const auto& e : a.entries()) EXPECT_DOUBLE_EQ(b.Get(e.key), e.value);
}

TEST(WorkspaceTest, TeaPlusReusedWorkspaceMatchesFreshEstimators) {
  Graph g = PowerlawCluster(400, 3, 0.3, 1);
  const ApproxParams params = TestParams(1e-5);

  TeaPlusEstimator fresh_a(g, params, 7);
  const SparseVector expected_a = fresh_a.Estimate(3);
  TeaPlusEstimator fresh_b(g, params, 7);
  const SparseVector expected_b = fresh_b.Estimate(11);

  // Two sequential queries on one estimator + one workspace, re-seeded so
  // each query replays the fresh estimator's randomness.
  TeaPlusEstimator reused(g, params, 7);
  QueryWorkspace ws;
  ExpectSameVector(reused.EstimateInto(3, ws), expected_a);
  reused.Reseed(7);
  ExpectSameVector(reused.EstimateInto(11, ws), expected_b);
}

TEST(WorkspaceTest, TeaReusedWorkspaceMatchesFreshEstimators) {
  Graph g = PowerlawCluster(300, 3, 0.3, 2);
  const ApproxParams params = TestParams(1e-4);

  TeaEstimator fresh_a(g, params, 5);
  const SparseVector expected_a = fresh_a.Estimate(9);
  TeaEstimator fresh_b(g, params, 5);
  const SparseVector expected_b = fresh_b.Estimate(2);

  TeaEstimator reused(g, params, 5);
  QueryWorkspace ws;
  ExpectSameVector(reused.EstimateInto(9, ws), expected_a);
  reused.Reseed(5);
  ExpectSameVector(reused.EstimateInto(2, ws), expected_b);
}

TEST(WorkspaceTest, MonteCarloReusedWorkspaceMatchesFreshEstimators) {
  // The workspace-aware Monte-Carlo port: two sequential queries on one
  // estimator + one workspace, re-seeded so each query replays a fresh
  // estimator's randomness bit for bit.
  Graph g = PowerlawCluster(300, 3, 0.3, 2);
  const ApproxParams params = TestParams(1e-3);

  MonteCarloEstimator fresh_a(g, params, 5);
  const SparseVector expected_a = fresh_a.Estimate(9);
  MonteCarloEstimator fresh_b(g, params, 5);
  const SparseVector expected_b = fresh_b.Estimate(2);

  MonteCarloEstimator reused(g, params, 5);
  QueryWorkspace ws;
  ExpectSameVector(reused.EstimateInto(9, ws), expected_a);
  reused.Reseed(5);
  ExpectSameVector(reused.EstimateInto(2, ws), expected_b);
}

TEST(WorkspaceTest, MonteCarloSteadyStateIsAllocationFree) {
  Graph g = testing::MakeComplete(16);
  const ApproxParams params = TestParams(1e-3);
  MonteCarloEstimator estimator(g, params, 31);
  QueryWorkspace ws;

  for (int i = 0; i < 3; ++i) estimator.EstimateInto(2, ws);
  EstimatorStats stats;
  const uint64_t allocs =
      AllocationsDuring([&] { estimator.EstimateInto(2, ws, &stats); });
  EXPECT_GT(stats.num_walks, 0u);
  EXPECT_EQ(allocs, 0u);
}

TEST(WorkspaceTest, PushOnlyEstimateIntoIsBitIdenticalToEstimate) {
  // Push-only is deterministic, so the workspace port must agree with the
  // by-value path exactly — including on a reused (warmed) workspace.
  Graph g = PowerlawCluster(300, 3, 0.3, 4);
  ApproxParams params = TestParams(1e-3);
  PushOnlyEstimator estimator(g, params);
  QueryWorkspace ws;
  for (NodeId seed : {NodeId{9}, NodeId{2}, NodeId{9}}) {
    EstimatorStats into_stats;
    const SparseVector& got = estimator.EstimateInto(seed, ws, &into_stats);
    EstimatorStats stats;
    const SparseVector expected = estimator.Estimate(seed, &stats);
    ExpectSameVector(got, expected);
    EXPECT_EQ(into_stats.push_operations, stats.push_operations);
    EXPECT_EQ(into_stats.early_exit, stats.early_exit);
  }
}

TEST(WorkspaceTest, PushOnlySteadyStateIsAllocationFree) {
  Graph g = PowerlawCluster(400, 3, 0.3, 6);
  ApproxParams params = TestParams(1e-3);
  PushOnlyEstimator estimator(g, params);
  QueryWorkspace ws;

  for (int i = 0; i < 3; ++i) estimator.EstimateInto(21, ws);
  EstimatorStats stats;
  const uint64_t allocs =
      AllocationsDuring([&] { estimator.EstimateInto(21, ws, &stats); });
  EXPECT_GT(stats.push_operations, 0u);
  EXPECT_EQ(allocs, 0u);
}

TEST(WorkspaceTest, PoolBackedTeaPlusMatchesSpawnPerCall) {
  Graph g = PowerlawCluster(500, 4, 0.3, 3);
  const ApproxParams params = TestParams(1e-5);
  TeaPlusOptions options;
  options.c = 1.0;  // force the walk phase
  ThreadPool pool(4);
  for (uint32_t threads : {1u, 2u, 4u}) {
    ParallelTeaPlusEstimator spawning(g, params, 17, threads, options);
    ParallelTeaPlusEstimator pooled(g, params, 17, threads, options, &pool);
    const SparseVector expected = spawning.Estimate(9);
    const SparseVector got = pooled.Estimate(9);
    ExpectSameVector(got, expected);
  }
}

TEST(WorkspaceTest, PoolBackedMonteCarloMatchesSpawnPerCall) {
  Graph g = PowerlawCluster(300, 3, 0.3, 4);
  const ApproxParams params = TestParams(1e-3);
  ThreadPool pool(4);
  for (uint32_t threads : {1u, 2u, 4u}) {
    ParallelMonteCarloEstimator spawning(g, params, 23, threads);
    ParallelMonteCarloEstimator pooled(g, params, 23, threads, &pool);
    ExpectSameVector(pooled.Estimate(5), spawning.Estimate(5));
  }
}

TEST(WorkspaceTest, NarrowPoolMatchesSpawnPerCallAtWiderThreadCount) {
  // An estimator configured for 8 shards attached to a 2-thread pool must
  // still produce the 8-shard partition (overflow shards run inline), i.e.
  // results stay a function of (seed, num_threads) alone.
  Graph g = PowerlawCluster(400, 3, 0.3, 11);
  const ApproxParams params = TestParams(1e-5);
  TeaPlusOptions options;
  options.c = 1.0;
  ThreadPool pool(2);
  ParallelTeaPlusEstimator spawning(g, params, 17, 8, options);
  ParallelTeaPlusEstimator pooled(g, params, 17, 8, options, &pool);
  ExpectSameVector(pooled.Estimate(9), spawning.Estimate(9));
}

TEST(WorkspaceTest, DeterministicAcrossRunsAndPoolReuse) {
  // Fixed seed + fixed thread count => identical SparseVector across runs,
  // and a pool that has already served other estimators gives the same
  // answer as a fresh one.
  Graph g = PowerlawCluster(400, 3, 0.3, 5);
  const ApproxParams params = TestParams(1e-4);
  ThreadPool fresh_pool(3);
  ThreadPool used_pool(3);
  ParallelMonteCarloEstimator warm(g, params, 99, 3, &used_pool);
  warm.Estimate(1);  // dirty the pool with unrelated work
  ParallelTeaPlusEstimator a(g, params, 31, 3, TeaPlusOptions(), &fresh_pool);
  ParallelTeaPlusEstimator b(g, params, 31, 3, TeaPlusOptions(), &used_pool);
  ExpectSameVector(b.Estimate(7), a.Estimate(7));
}

TEST(WorkspaceTest, SequentialTeaPlusSteadyStateIsAllocationFree) {
  Graph g = PowerlawCluster(400, 3, 0.3, 6);
  const ApproxParams params = TestParams(1e-5);
  TeaPlusOptions options;
  options.c = 1.0;  // force the walk phase (the allocation-heavy path)
  TeaPlusEstimator estimator(g, params, 13, options);
  QueryWorkspace ws;

  // Warm-up: identical queries, so the second pass sees every buffer at its
  // steady-state capacity.
  for (int i = 0; i < 3; ++i) {
    estimator.Reseed(13);
    estimator.EstimateInto(21, ws);
  }
  EstimatorStats stats;
  const uint64_t allocs = AllocationsDuring([&] {
    estimator.Reseed(13);
    estimator.EstimateInto(21, ws, &stats);
  });
  EXPECT_GT(stats.num_walks, 0u) << "test must exercise the walk phase";
  EXPECT_EQ(allocs, 0u);
}

TEST(WorkspaceTest, PoolBackedTeaPlusSteadyStateIsAllocationFree) {
  // On a complete graph every walk endpoint is one of n nodes, so the
  // per-thread count buffers saturate during warm-up and the epoch-advanced
  // randomness of later queries cannot grow them.
  Graph g = testing::MakeComplete(16);
  const ApproxParams params = TestParams(1e-3);
  TeaPlusOptions options;
  options.c = 1.0;
  ThreadPool pool(4);
  ParallelTeaPlusEstimator estimator(g, params, 41, 4, options, &pool);
  QueryWorkspace ws;

  EstimatorStats stats;
  for (int i = 0; i < 3; ++i) estimator.EstimateInto(5, ws, &stats);
  ASSERT_GT(stats.num_walks, 0u) << "test must exercise the walk phase";
  const uint64_t allocs =
      AllocationsDuring([&] { estimator.EstimateInto(5, ws); });
  EXPECT_EQ(allocs, 0u);
}

TEST(WorkspaceTest, PoolBackedMonteCarloSteadyStateIsAllocationFree) {
  Graph g = testing::MakeComplete(16);
  const ApproxParams params = TestParams(1e-3);
  ThreadPool pool(4);
  ParallelMonteCarloEstimator estimator(g, params, 43, 4, &pool);
  QueryWorkspace ws;

  for (int i = 0; i < 3; ++i) estimator.EstimateInto(2, ws);
  const uint64_t allocs =
      AllocationsDuring([&] { estimator.EstimateInto(2, ws); });
  EXPECT_EQ(allocs, 0u);
}

TEST(WorkspaceTest, HkRelaxSteadyStateIsAllocationFree) {
  // The workspace-aware HK-Relax port must honor the same reuse contract as
  // the TEA+ estimators: once the residual levels, result vector and queue
  // have warmed up, repeating a query touches the heap zero times.
  Graph g = PowerlawCluster(400, 3, 0.3, 6);
  HkRelaxOptions options;
  options.t = 5.0;
  options.eps_a = 1e-4;
  HkRelaxEstimator estimator(g, options);
  QueryWorkspace ws;

  for (int i = 0; i < 3; ++i) estimator.EstimateInto(21, ws);
  EstimatorStats stats;
  const uint64_t allocs =
      AllocationsDuring([&] { estimator.EstimateInto(21, ws, &stats); });
  EXPECT_GT(stats.push_operations, 0u);
  EXPECT_EQ(allocs, 0u);
}

TEST(BatchQueryEngineTest, BatchIsIndependentOfThreadCount) {
  Graph g = PowerlawCluster(400, 3, 0.3, 7);
  const ApproxParams params = TestParams(1e-5);
  std::vector<NodeId> seeds = {1, 5, 9, 14, 22, 60, 120, 350};

  BatchQueryEngine single(g, params, 77, 1);
  BatchQueryEngine wide(g, params, 77, 4);
  const auto expected = single.EstimateBatch(seeds);
  const auto got = wide.EstimateBatch(seeds);
  ASSERT_EQ(expected.size(), got.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    ExpectSameVector(got[i], expected[i]);
  }
}

TEST(BatchQueryEngineTest, BatchMatchesReseededSequentialQueries) {
  Graph g = PowerlawCluster(300, 3, 0.3, 8);
  const ApproxParams params = TestParams(1e-4);
  std::vector<NodeId> seeds = {2, 8, 31};

  BatchQueryEngine engine(g, params, 55, 2);
  const auto batch = engine.EstimateBatch(seeds);
  ASSERT_EQ(batch.size(), seeds.size());
  for (const SparseVector& estimate : batch) {
    EXPECT_GT(estimate.Sum(), 0.5);  // HKPR mass is (close to) 1
  }
}

TEST(BatchQueryEngineTest, RepeatedBatchDrawsFreshRandomness) {
  Graph g = PowerlawCluster(300, 3, 0.3, 9);
  ApproxParams params = TestParams(1e-5);
  TeaPlusOptions options;
  options.c = 1.0;  // force the walk phase so randomness matters
  BatchQueryEngine engine(g, params, 91, 2, options);
  std::vector<NodeId> seeds = {4};
  const auto first = engine.EstimateBatch(seeds);
  const auto second = engine.EstimateBatch(seeds);
  EXPECT_EQ(engine.queries_served(), 2u);
  bool any_diff = false;
  for (const auto& e : first[0].entries()) {
    if (second[0].Get(e.key) != e.value) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(BatchQueryEngineTest, TopKBatchMatchesPerQueryTopK) {
  Graph g = PowerlawCluster(400, 4, 0.3, 10);
  const ApproxParams params = TestParams(1e-5);
  std::vector<NodeId> seeds = {3, 17, 200};

  BatchQueryEngine a(g, params, 33, 2);
  BatchQueryEngine b(g, params, 33, 2);
  const auto estimates = a.EstimateBatch(seeds);
  const auto rankings = b.TopKBatch(seeds, 10);
  ASSERT_EQ(rankings.size(), seeds.size());
  for (size_t i = 0; i < seeds.size(); ++i) {
    const auto expected = TopKNormalized(g, estimates[i], 10);
    ASSERT_EQ(rankings[i].size(), expected.size());
    for (size_t j = 0; j < expected.size(); ++j) {
      EXPECT_EQ(rankings[i][j].node, expected[j].node);
      EXPECT_DOUBLE_EQ(rankings[i][j].score, expected[j].score);
    }
  }
}

TEST(BatchQueryEngineTest, EmptyBatchReturnsEmptyWithoutTouchingThePool) {
  Graph g = testing::MakeComplete(8);
  BatchQueryEngine engine(g, TestParams(1e-2), 3, 2);
  EXPECT_EQ(engine.num_threads(), 2u);
  EXPECT_TRUE(engine.EstimateBatch({}).empty());
  EXPECT_TRUE(engine.TopKBatch({}, 5).empty());
  // An empty batch serves no queries, so it must not advance the RNG
  // derivation for later batches.
  EXPECT_EQ(engine.queries_served(), 0u);
}

TEST(BatchQueryEngineTest, BatchWorkspacesStopAllocatingAtSteadyState) {
  // The engine-level statement of the zero-allocation property: repeating a
  // batch allocates only the returned vectors, not per-query scratch. The
  // output allocation count is measured from a warmed-up baseline batch and
  // must not grow once workspaces have seen the workload.
  Graph g = testing::MakeComplete(16);
  const ApproxParams params = TestParams(1e-3);
  BatchQueryEngine engine(g, params, 13, 2);
  std::vector<NodeId> seeds = {0, 3, 7, 11};

  engine.EstimateBatch(seeds);  // warm workspaces
  const uint64_t baseline =
      AllocationsDuring([&] { engine.EstimateBatch(seeds); });
  const uint64_t repeat =
      AllocationsDuring([&] { engine.EstimateBatch(seeds); });
  EXPECT_LE(repeat, baseline);
}

}  // namespace
}  // namespace hkpr
