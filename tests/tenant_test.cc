// Tests for the tenant QoS registry (net/tenant.h): token-bucket rate
// limiting with injected time, in-flight quotas, priority-class load
// shedding against the service queue-depth gate, and the per-tenant
// stats rows.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "net/tenant.h"

namespace hkpr {
namespace {

using Clock = TenantRegistry::Clock;

Clock::time_point At(double seconds) {
  return Clock::time_point() +
         std::chrono::duration_cast<Clock::duration>(
             std::chrono::duration<double>(seconds));
}

TEST(TenantRegistryTest, DefaultTenantIsUnlimited) {
  TenantRegistry reg;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(reg.Admit("default", 0, 1024, At(0.0)),
              TenantAdmission::kAdmitted);
  }
  EXPECT_EQ(reg.StatsFor("default").admitted, 1000u);
}

TEST(TenantRegistryTest, TokenBucketThrottlesBeyondBurst) {
  TenantRegistry reg;
  TenantQosConfig config;
  config.rate_qps = 2.0;
  config.burst = 3.0;
  reg.Configure("t", config);
  // The full burst is admitted at one instant, then the bucket is dry.
  EXPECT_EQ(reg.Admit("t", 0, 1024, At(0.0)), TenantAdmission::kAdmitted);
  EXPECT_EQ(reg.Admit("t", 0, 1024, At(0.0)), TenantAdmission::kAdmitted);
  EXPECT_EQ(reg.Admit("t", 0, 1024, At(0.0)), TenantAdmission::kAdmitted);
  EXPECT_EQ(reg.Admit("t", 0, 1024, At(0.0)), TenantAdmission::kThrottled);
  // 0.5s at 2 qps refills exactly one token.
  EXPECT_EQ(reg.Admit("t", 0, 1024, At(0.5)), TenantAdmission::kAdmitted);
  EXPECT_EQ(reg.Admit("t", 0, 1024, At(0.5)), TenantAdmission::kThrottled);
  const TenantStatsSnapshot s = reg.StatsFor("t");
  EXPECT_EQ(s.admitted, 4u);
  EXPECT_EQ(s.throttled, 2u);
}

TEST(TenantRegistryTest, RefillNeverExceedsBurst) {
  TenantRegistry reg;
  TenantQosConfig config;
  config.rate_qps = 100.0;
  config.burst = 2.0;
  reg.Configure("t", config);
  EXPECT_EQ(reg.Admit("t", 0, 1024, At(0.0)), TenantAdmission::kAdmitted);
  // An hour idle refills to the burst cap, not 360000 tokens.
  EXPECT_EQ(reg.Admit("t", 0, 1024, At(3600.0)), TenantAdmission::kAdmitted);
  EXPECT_EQ(reg.Admit("t", 0, 1024, At(3600.0)), TenantAdmission::kAdmitted);
  EXPECT_EQ(reg.Admit("t", 0, 1024, At(3600.0)),
            TenantAdmission::kThrottled);
}

TEST(TenantRegistryTest, InFlightQuotaReleasesOnComplete) {
  TenantRegistry reg;
  TenantQosConfig config;
  config.max_in_flight = 2;
  reg.Configure("t", config);
  EXPECT_EQ(reg.Admit("t", 0, 1024, At(0.0)), TenantAdmission::kAdmitted);
  EXPECT_EQ(reg.Admit("t", 0, 1024, At(0.0)), TenantAdmission::kAdmitted);
  EXPECT_EQ(reg.Admit("t", 0, 1024, At(0.0)),
            TenantAdmission::kQuotaExceeded);
  EXPECT_EQ(reg.StatsFor("t").in_flight, 2u);
  reg.OnComplete("t", /*ok=*/true, 0.001);
  EXPECT_EQ(reg.Admit("t", 0, 1024, At(0.0)), TenantAdmission::kAdmitted);
  const TenantStatsSnapshot s = reg.StatsFor("t");
  EXPECT_EQ(s.quota_rejected, 1u);
  EXPECT_EQ(s.completed, 1u);
  EXPECT_EQ(s.in_flight, 2u);
}

TEST(TenantRegistryTest, PriorityClassesShedAtTheirFractions) {
  TenantRegistry reg;
  TenantQosConfig low;
  low.priority = TenantPriority::kLow;
  reg.Configure("low", low);
  TenantQosConfig normal;
  normal.priority = TenantPriority::kNormal;
  reg.Configure("normal", normal);

  const size_t max_depth = 100;
  // Below every threshold: everyone is admitted.
  EXPECT_EQ(reg.Admit("low", 10, max_depth, At(0.0)),
            TenantAdmission::kAdmitted);
  EXPECT_EQ(reg.Admit("normal", 10, max_depth, At(0.0)),
            TenantAdmission::kAdmitted);
  // At 25%: low sheds, normal rides on.
  EXPECT_EQ(reg.Admit("low", 25, max_depth, At(0.0)),
            TenantAdmission::kShedLoad);
  EXPECT_EQ(reg.Admit("normal", 25, max_depth, At(0.0)),
            TenantAdmission::kAdmitted);
  // At 75%: normal sheds too; high (default) never does.
  EXPECT_EQ(reg.Admit("normal", 75, max_depth, At(0.0)),
            TenantAdmission::kShedLoad);
  EXPECT_EQ(reg.Admit("high", 99, max_depth, At(0.0)),
            TenantAdmission::kAdmitted);
  EXPECT_EQ(reg.StatsFor("low").shed, 1u);
  EXPECT_EQ(reg.StatsFor("normal").shed, 1u);
}

TEST(TenantRegistryTest, ShedGateDisabledWithoutQueueCap) {
  TenantRegistry reg;
  TenantQosConfig low;
  low.priority = TenantPriority::kLow;
  reg.Configure("low", low);
  // max_queue_depth == 0 means the service has no queue gate to scale
  // from; priority shedding is inert rather than dividing by zero.
  EXPECT_EQ(reg.Admit("low", 1000, 0, At(0.0)), TenantAdmission::kAdmitted);
}

TEST(TenantRegistryTest, ConfigureRefillsTheBucket) {
  TenantRegistry reg;
  TenantQosConfig config;
  config.rate_qps = 1.0;
  config.burst = 1.0;
  reg.Configure("t", config);
  EXPECT_EQ(reg.Admit("t", 0, 1024, At(0.0)), TenantAdmission::kAdmitted);
  EXPECT_EQ(reg.Admit("t", 0, 1024, At(0.0)), TenantAdmission::kThrottled);
  // Reconfiguring restarts the bucket full — tightening a limit never
  // retroactively rejects the next query.
  reg.Configure("t", config);
  EXPECT_EQ(reg.Admit("t", 0, 1024, At(0.0)), TenantAdmission::kAdmitted);
}

TEST(TenantRegistryTest, StatsRecordOutcomesAndLatency) {
  TenantRegistry reg;
  ASSERT_EQ(reg.Admit("t", 0, 1024, At(0.0)), TenantAdmission::kAdmitted);
  ASSERT_EQ(reg.Admit("t", 0, 1024, At(0.0)), TenantAdmission::kAdmitted);
  reg.OnComplete("t", /*ok=*/true, 0.010);
  reg.OnComplete("t", /*ok=*/false, 0.010);
  const TenantStatsSnapshot s = reg.StatsFor("t");
  EXPECT_EQ(s.completed, 1u);
  EXPECT_EQ(s.failed, 1u);
  EXPECT_EQ(s.in_flight, 0u);
  EXPECT_EQ(s.latency_count, 1u);  // failures don't pollute the histogram
  EXPECT_GT(s.latency_p50_ms, 0.0);
}

TEST(TenantRegistryTest, SnapshotListsTenantsSorted) {
  TenantRegistry reg;
  reg.Configure("zeta", TenantQosConfig{});
  reg.Configure("alpha", TenantQosConfig{});
  reg.Configure("mid", TenantQosConfig{});
  const std::vector<TenantStatsSnapshot> rows = reg.Snapshot();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].tenant, "alpha");
  EXPECT_EQ(rows[1].tenant, "mid");
  EXPECT_EQ(rows[2].tenant, "zeta");
}

TEST(TenantRegistryTest, ConcurrentAdmitCompleteIsConsistent) {
  TenantRegistry reg;
  TenantQosConfig config;
  config.max_in_flight = 4;
  reg.Configure("t", config);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&reg] {
      for (int j = 0; j < kPerThread; ++j) {
        if (reg.Admit("t", 0, 1024) == TenantAdmission::kAdmitted) {
          reg.OnComplete("t", true, 0.0001);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const TenantStatsSnapshot s = reg.StatsFor("t");
  EXPECT_EQ(s.in_flight, 0u);
  EXPECT_EQ(s.admitted, s.completed);
  EXPECT_EQ(s.admitted + s.quota_rejected,
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(TenantPriorityTest, NamesRoundTrip) {
  for (const TenantPriority p :
       {TenantPriority::kLow, TenantPriority::kNormal, TenantPriority::kHigh}) {
    const auto parsed = ParseTenantPriority(TenantPriorityName(p));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, p);
  }
  EXPECT_FALSE(ParseTenantPriority("urgent").has_value());
  EXPECT_FALSE(ParseTenantPriority("").has_value());
}

}  // namespace
}  // namespace hkpr
