// Tests for k-RandomWalk (Lemma 2, Lemma 4).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"
#include "graph/generators.h"
#include "hkpr/power_method.h"
#include "hkpr/random_walk.h"
#include "test_util.h"

namespace hkpr {
namespace {

TEST(KRandomWalkTest, EndDistributionMatchesHkprForKZero) {
  // For k = 0, h_s^(0) is exactly rho_s (Lemma 2 with Equation 2).
  Graph g = testing::MakeBarbell(4);
  HeatKernel kernel(4.0);
  const std::vector<double> exact = ExactHkpr(g, kernel, 0);
  Rng rng(1);
  const int n = 400000;
  std::vector<int> counts(g.NumNodes(), 0);
  for (int i = 0; i < n; ++i) ++counts[KRandomWalk(g, kernel, 0, 0, rng)];
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    const double expected = n * exact[v];
    EXPECT_NEAR(counts[v], expected, 5.0 * std::sqrt(expected + 1.0) + 40.0)
        << v;
  }
}

TEST(KRandomWalkTest, EndDistributionMatchesExactHForPositiveK) {
  Graph g = testing::MakeCycle(6);
  HeatKernel kernel(3.0);
  const uint32_t k = 2;
  const NodeId start = 1;
  const std::vector<double> h = testing::ExactH(g, kernel, start, k);
  Rng rng(2);
  const int n = 300000;
  std::vector<int> counts(g.NumNodes(), 0);
  for (int i = 0; i < n; ++i) ++counts[KRandomWalk(g, kernel, start, k, rng)];
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    const double expected = n * h[v];
    EXPECT_NEAR(counts[v], expected, 5.0 * std::sqrt(expected + 1.0) + 40.0)
        << v;
  }
}

TEST(KRandomWalkTest, BeyondMaxHopStopsImmediately) {
  Graph g = testing::MakeCycle(5);
  HeatKernel kernel(2.0);
  Rng rng(3);
  uint64_t steps = 0;
  const NodeId end =
      KRandomWalk(g, kernel, 3, kernel.MaxHop() + 5, rng, &steps);
  EXPECT_EQ(end, 3u);
  EXPECT_EQ(steps, 0u);
}

TEST(KRandomWalkTest, IsolatedNodeStaysPut) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  Graph g = b.Build();  // node 2 isolated
  HeatKernel kernel(5.0);
  Rng rng(4);
  EXPECT_EQ(KRandomWalk(g, kernel, 2, 0, rng), 2u);
}

TEST(KRandomWalkTest, ExpectedStepsAtMostT) {
  // Lemma 4: expected walk cost is <= t (for k = 0 it is exactly
  // E[length] = t).
  Graph g = ErdosRenyiGnm(200, 1000, 5);
  const double t = 6.0;
  HeatKernel kernel(t);
  Rng rng(5);
  uint64_t steps = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) KRandomWalk(g, kernel, 10, 0, rng, &steps);
  EXPECT_NEAR(static_cast<double>(steps) / n, t, 0.1);
}

TEST(KRandomWalkTest, ExpectedStepsShrinkWithK) {
  // Conditioned on being k hops in, the remaining expected length drops.
  Graph g = ErdosRenyiGnm(200, 1000, 6);
  const double t = 6.0;
  HeatKernel kernel(t);
  Rng rng(6);
  const int n = 100000;
  uint64_t steps_k0 = 0, steps_k8 = 0;
  for (int i = 0; i < n; ++i) KRandomWalk(g, kernel, 10, 0, rng, &steps_k0);
  for (int i = 0; i < n; ++i) KRandomWalk(g, kernel, 10, 8, rng, &steps_k8);
  EXPECT_LT(steps_k8, steps_k0);
}

TEST(KRandomWalkTest, DeterministicGivenRngSeed) {
  Graph g = PowerlawCluster(200, 3, 0.2, 7);
  HeatKernel kernel(5.0);
  Rng a(99), b(99);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(KRandomWalk(g, kernel, 0, 0, a), KRandomWalk(g, kernel, 0, 0, b));
  }
}

}  // namespace
}  // namespace hkpr
