// Tests for edge-list / binary graph serialization and community files.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "graph/community.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "test_util.h"

namespace hkpr {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(GraphIoTest, EdgeListRoundTrip) {
  Graph g = testing::MakeBarbell(6);
  const std::string path = TempPath("barbell.txt");
  ASSERT_TRUE(SaveEdgeList(g, path).ok());
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  const Graph& g2 = loaded.value();
  EXPECT_EQ(g2.NumNodes(), g.NumNodes());
  EXPECT_EQ(g2.NumEdges(), g.NumEdges());
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_EQ(g2.Degree(v), g.Degree(v)) << v;
  }
}

TEST(GraphIoTest, EdgeListSkipsCommentsAndBlanks) {
  const std::string path = TempPath("comments.txt");
  std::ofstream out(path);
  out << "# SNAP style comment\n% matrix-market comment\n\n0 1\n1\t2\n";
  out.close();
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().NumNodes(), 3u);
  EXPECT_EQ(loaded.value().NumEdges(), 2u);
}

TEST(GraphIoTest, EdgeListSymmetrizesAndDedups) {
  const std::string path = TempPath("dups.txt");
  std::ofstream out(path);
  out << "0 1\n1 0\n0 1\n2 2\n";
  out.close();
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().NumEdges(), 1u);
  EXPECT_EQ(loaded.value().NumNodes(), 3u);  // node 2 kept, loop dropped
}

TEST(GraphIoTest, EdgeListMissingFileFails) {
  auto loaded = LoadEdgeList(TempPath("does_not_exist.txt"));
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST(GraphIoTest, EdgeListMalformedLineFails) {
  const std::string path = TempPath("malformed.txt");
  std::ofstream out(path);
  out << "0 1\nnot numbers\n";
  out.close();
  auto loaded = LoadEdgeList(path);
  EXPECT_FALSE(loaded.ok());
}

TEST(GraphIoTest, BinaryRoundTrip) {
  Graph g = PowerlawCluster(500, 3, 0.4, 7);
  const std::string path = TempPath("plc.bin");
  ASSERT_TRUE(SaveBinary(g, path).ok());
  auto loaded = LoadBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded.value().NumNodes(), g.NumNodes());
  EXPECT_EQ(loaded.value().adjacency(), g.adjacency());
  EXPECT_EQ(loaded.value().offsets(), g.offsets());
}

TEST(GraphIoTest, BinaryRejectsWrongMagic) {
  const std::string path = TempPath("bad.bin");
  std::ofstream out(path, std::ios::binary);
  out << "NOTAGRAPHFILE";
  out.close();
  auto loaded = LoadBinary(path);
  EXPECT_FALSE(loaded.ok());
}

TEST(GraphIoTest, BinaryEmptyGraph) {
  Graph g;
  GraphBuilder b(4);
  g = b.Build();
  const std::string path = TempPath("empty.bin");
  ASSERT_TRUE(SaveBinary(g, path).ok());
  auto loaded = LoadBinary(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().NumNodes(), 4u);
  EXPECT_EQ(loaded.value().NumEdges(), 0u);
}

TEST(CommunitySetTest, SaveLoadRoundTrip) {
  CommunitySet cs;
  cs.Add({1, 2, 3});
  cs.Add({4, 5});
  cs.Add({6});
  const std::string path = TempPath("cmty.txt");
  ASSERT_TRUE(cs.Save(path).ok());
  auto loaded = CommunitySet::Load(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().NumCommunities(), 3u);
  EXPECT_EQ(loaded.value().Community(0), (std::vector<NodeId>{1, 2, 3}));
  EXPECT_EQ(loaded.value().Community(2), (std::vector<NodeId>{6}));
}

TEST(CommunitySetTest, SizeFilter) {
  CommunitySet cs;
  cs.Add({1, 2, 3});
  cs.Add({4, 5});
  cs.Add({6, 7, 8, 9});
  auto big = cs.CommunitiesOfSizeAtLeast(3);
  EXPECT_EQ(big, (std::vector<size_t>{0, 2}));
}

TEST(CommunitySetTest, MembershipLookup) {
  CommunitySet cs;
  cs.Add({0, 1});
  cs.Add({2, 3});
  EXPECT_EQ(cs.CommunityOf(0, 5), 0);
  EXPECT_EQ(cs.CommunityOf(3, 5), 1);
  EXPECT_EQ(cs.CommunityOf(4, 5), -1);
}

}  // namespace
}  // namespace hkpr
