// Tests for edge-list / binary graph serialization and community files.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "graph/community.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "graph/relabel.h"
#include "service/graph_store.h"
#include "test_util.h"

namespace hkpr {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(GraphIoTest, EdgeListRoundTrip) {
  Graph g = testing::MakeBarbell(6);
  const std::string path = TempPath("barbell.txt");
  ASSERT_TRUE(SaveEdgeList(g, path).ok());
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  const Graph& g2 = loaded.value();
  EXPECT_EQ(g2.NumNodes(), g.NumNodes());
  EXPECT_EQ(g2.NumEdges(), g.NumEdges());
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_EQ(g2.Degree(v), g.Degree(v)) << v;
  }
}

TEST(GraphIoTest, EdgeListSkipsCommentsAndBlanks) {
  const std::string path = TempPath("comments.txt");
  std::ofstream out(path);
  out << "# SNAP style comment\n% matrix-market comment\n\n0 1\n1\t2\n";
  out.close();
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().NumNodes(), 3u);
  EXPECT_EQ(loaded.value().NumEdges(), 2u);
}

TEST(GraphIoTest, EdgeListSymmetrizesAndDedups) {
  const std::string path = TempPath("dups.txt");
  std::ofstream out(path);
  out << "0 1\n1 0\n0 1\n2 2\n";
  out.close();
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().NumEdges(), 1u);
  EXPECT_EQ(loaded.value().NumNodes(), 3u);  // node 2 kept, loop dropped
}

TEST(GraphIoTest, EdgeListMissingFileFails) {
  auto loaded = LoadEdgeList(TempPath("does_not_exist.txt"));
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST(GraphIoTest, EdgeListMalformedLineFails) {
  const std::string path = TempPath("malformed.txt");
  std::ofstream out(path);
  out << "0 1\nnot numbers\n";
  out.close();
  auto loaded = LoadEdgeList(path);
  EXPECT_FALSE(loaded.ok());
}

TEST(GraphIoTest, BinaryRoundTrip) {
  Graph g = PowerlawCluster(500, 3, 0.4, 7);
  const std::string path = TempPath("plc.bin");
  ASSERT_TRUE(SaveBinary(g, path).ok());
  auto loaded = LoadBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded.value().NumNodes(), g.NumNodes());
  EXPECT_TRUE(std::ranges::equal(loaded.value().adjacency(), g.adjacency()));
  EXPECT_TRUE(std::ranges::equal(loaded.value().offsets(), g.offsets()));
}

TEST(GraphIoTest, BinaryRejectsWrongMagic) {
  const std::string path = TempPath("bad.bin");
  std::ofstream out(path, std::ios::binary);
  out << "NOTAGRAPHFILE";
  out.close();
  auto loaded = LoadBinary(path);
  EXPECT_FALSE(loaded.ok());
}

TEST(GraphIoTest, BinaryEmptyGraph) {
  Graph g;
  GraphBuilder b(4);
  g = b.Build();
  const std::string path = TempPath("empty.bin");
  ASSERT_TRUE(SaveBinary(g, path).ok());
  auto loaded = LoadBinary(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().NumNodes(), 4u);
  EXPECT_EQ(loaded.value().NumEdges(), 0u);
}

std::vector<char> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Writes a copy of the file at `path` with `count` bytes at `offset`
/// replaced by `patch`, to a fresh path, and returns it.
std::string PatchedCopy(const std::string& path, size_t offset,
                        const void* patch, size_t count,
                        const std::string& name) {
  std::vector<char> bytes = ReadFileBytes(path);
  EXPECT_LE(offset + count, bytes.size());
  std::memcpy(bytes.data() + offset, patch, count);
  const std::string out = TempPath(name);
  WriteFileBytes(out, bytes);
  return out;
}

TEST(BinaryCsrTest, V2FileStartsWithMagicAndRoundTripsBitIdentically) {
  Graph g = PowerlawCluster(800, 4, 0.3, 21);
  const std::string path = TempPath("v2.bin");
  ASSERT_TRUE(SaveBinary(g, path).ok());

  const std::vector<char> bytes = ReadFileBytes(path);
  ASSERT_GE(bytes.size(), 64u);
  EXPECT_EQ(std::memcmp(bytes.data(), "HKPRCSR2", 8), 0);

  auto loaded = LoadBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(std::ranges::equal(loaded.value().offsets(), g.offsets()));
  EXPECT_TRUE(std::ranges::equal(loaded.value().adjacency(), g.adjacency()));
  EXPECT_FALSE(loaded.value().degree_ordered());

  // A second save of the loaded graph must be byte-identical: the format
  // has no timestamps or other nondeterminism.
  const std::string path2 = TempPath("v2_again.bin");
  ASSERT_TRUE(SaveBinary(loaded.value(), path2).ok());
  EXPECT_EQ(ReadFileBytes(path2), bytes);
}

TEST(BinaryCsrTest, SectionsAre64ByteAligned) {
  Graph g = testing::MakeBarbell(5);  // (n+1)*8 not a multiple of 64
  const std::string path = TempPath("aligned.bin");
  ASSERT_TRUE(SaveBinary(RelabelByDegree(g).graph, path).ok());
  const std::vector<char> bytes = ReadFileBytes(path);
  uint64_t offsets_pos = 0, adjacency_pos = 0, row_starts_pos = 0;
  std::memcpy(&offsets_pos, bytes.data() + 40, 8);
  std::memcpy(&adjacency_pos, bytes.data() + 48, 8);
  std::memcpy(&row_starts_pos, bytes.data() + 56, 8);
  EXPECT_EQ(offsets_pos % 64, 0u);
  EXPECT_EQ(adjacency_pos % 64, 0u);
  EXPECT_EQ(row_starts_pos % 64, 0u);
  EXPECT_GT(row_starts_pos, adjacency_pos);
}

TEST(BinaryCsrTest, DegreeOrderedLayoutRoundTrips) {
  Graph g = PowerlawCluster(600, 3, 0.4, 22);
  DegreeOrderedLayout layout = RelabelByDegree(g);
  ASSERT_TRUE(layout.graph.degree_ordered());

  const std::string path = TempPath("ordered.bin");
  ASSERT_TRUE(SaveBinary(layout.graph, path).ok());
  auto loaded = LoadBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded.value().degree_ordered());
  EXPECT_TRUE(
      std::ranges::equal(loaded.value().offsets(), layout.graph.offsets()));
  EXPECT_TRUE(
      std::ranges::equal(loaded.value().adjacency(), layout.graph.adjacency()));
  EXPECT_TRUE(std::ranges::equal(loaded.value().row_starts(),
                                 layout.graph.row_starts()));
}

TEST(BinaryCsrTest, MapBinaryMatchesLoadBinary) {
  Graph g = PowerlawCluster(700, 4, 0.2, 23);
  const std::string path = TempPath("mapped.bin");
  ASSERT_TRUE(SaveBinary(g, path).ok());

  auto mapped = MapBinary(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  EXPECT_TRUE(mapped.value().mmap_backed());
  EXPECT_TRUE(std::ranges::equal(mapped.value().offsets(), g.offsets()));
  EXPECT_TRUE(std::ranges::equal(mapped.value().adjacency(), g.adjacency()));
  // Copies share the mapping rather than duplicating it.
  Graph copy = mapped.value();
  EXPECT_EQ(copy.adjacency().data(), mapped.value().adjacency().data());
}

TEST(BinaryCsrTest, MapBinaryDegreeOrdered) {
  Graph g = PowerlawCluster(400, 3, 0.5, 24);
  DegreeOrderedLayout layout = RelabelByDegree(g);
  const std::string path = TempPath("mapped_ordered.bin");
  ASSERT_TRUE(SaveBinary(layout.graph, path).ok());

  auto mapped = MapBinary(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  EXPECT_TRUE(mapped.value().mmap_backed());
  EXPECT_TRUE(mapped.value().degree_ordered());
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_TRUE(
        std::ranges::equal(mapped.value().Neighbors(v), g.Neighbors(v)))
        << v;
  }
}

TEST(BinaryCsrTest, BadMagicDiagnosedEvenWhenFileIsShort) {
  const std::string path = TempPath("shortbad.bin");
  WriteFileBytes(path, {'N', 'O', 'T', 'A', 'F', 'I', 'L', 'E'});
  auto loaded = LoadBinary(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("bad magic"), std::string::npos)
      << loaded.status();
}

TEST(BinaryCsrTest, WrongEndianRejected) {
  Graph g = testing::MakeBarbell(4);
  const std::string path = TempPath("endian_src.bin");
  ASSERT_TRUE(SaveBinary(g, path).ok());
  // A big-endian writer would store the check word byte-swapped.
  const uint32_t swapped = 0x04030201u;
  const std::string bad =
      PatchedCopy(path, 12, &swapped, sizeof(swapped), "endian_bad.bin");
  auto loaded = LoadBinary(bad);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("byte-order"), std::string::npos)
      << loaded.status();
  EXPECT_FALSE(MapBinary(bad).ok());
}

TEST(BinaryCsrTest, UnsupportedVersionRejected) {
  Graph g = testing::MakeBarbell(4);
  const std::string path = TempPath("ver_src.bin");
  ASSERT_TRUE(SaveBinary(g, path).ok());
  const uint32_t future_version = 99;
  const std::string bad = PatchedCopy(path, 8, &future_version,
                                      sizeof(future_version), "ver_bad.bin");
  auto loaded = LoadBinary(bad);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("version"), std::string::npos);
  EXPECT_FALSE(MapBinary(bad).ok());
}

TEST(BinaryCsrTest, TruncatedFilesRejectedAtEveryCut) {
  Graph g = PowerlawCluster(300, 3, 0.3, 25);
  const std::string path = TempPath("trunc_src.bin");
  ASSERT_TRUE(SaveBinary(g, path).ok());
  const std::vector<char> bytes = ReadFileBytes(path);

  // Cut inside the header, the offsets section, and the adjacency section.
  for (const size_t cut : {size_t{20}, size_t{200}, bytes.size() - 8}) {
    ASSERT_LT(cut, bytes.size());
    const std::string cut_path =
        TempPath("trunc_" + std::to_string(cut) + ".bin");
    WriteFileBytes(cut_path,
                   std::vector<char>(bytes.begin(), bytes.begin() + cut));
    EXPECT_FALSE(LoadBinary(cut_path).ok()) << "cut=" << cut;
    EXPECT_FALSE(MapBinary(cut_path).ok()) << "cut=" << cut;
  }
}

TEST(BinaryCsrTest, CorruptAdjacencyIdRejected) {
  Graph g = testing::MakeBarbell(6);
  const std::string path = TempPath("adj_src.bin");
  ASSERT_TRUE(SaveBinary(g, path).ok());
  const std::vector<char> bytes = ReadFileBytes(path);
  uint64_t adjacency_pos = 0;
  std::memcpy(&adjacency_pos, bytes.data() + 48, 8);
  const NodeId bogus = 0xFFFFFFF0u;  // far beyond NumNodes()
  const std::string bad = PatchedCopy(path, adjacency_pos, &bogus,
                                      sizeof(bogus), "adj_bad.bin");
  EXPECT_FALSE(LoadBinary(bad).ok());
  EXPECT_FALSE(MapBinary(bad).ok());
}

TEST(BinaryCsrTest, NonMonotoneOffsetsRejected) {
  Graph g = testing::MakeBarbell(6);
  const std::string path = TempPath("off_src.bin");
  ASSERT_TRUE(SaveBinary(g, path).ok());
  const std::vector<char> bytes = ReadFileBytes(path);
  uint64_t offsets_pos = 0;
  std::memcpy(&offsets_pos, bytes.data() + 40, 8);
  const uint64_t bogus = g.adjacency().size() + 1000;
  const std::string bad =
      PatchedCopy(path, offsets_pos + 8, &bogus, sizeof(bogus), "off_bad.bin");
  EXPECT_FALSE(LoadBinary(bad).ok());
  EXPECT_FALSE(MapBinary(bad).ok());
}

TEST(BinaryCsrTest, LegacyV1FilesStillLoad) {
  Graph g = testing::MakeBarbell(5);
  const std::string path = TempPath("legacy_v1.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out.write("HKPRGRPH", 8);
    const uint64_t n = g.NumNodes();
    const uint64_t arcs = g.adjacency().size();
    out.write(reinterpret_cast<const char*>(&n), 8);
    out.write(reinterpret_cast<const char*>(&arcs), 8);
    out.write(reinterpret_cast<const char*>(g.offsets().data()),
              static_cast<std::streamsize>((n + 1) * sizeof(uint64_t)));
    out.write(reinterpret_cast<const char*>(g.adjacency().data()),
              static_cast<std::streamsize>(arcs * sizeof(NodeId)));
  }
  auto loaded = LoadBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(std::ranges::equal(loaded.value().offsets(), g.offsets()));
  EXPECT_TRUE(std::ranges::equal(loaded.value().adjacency(), g.adjacency()));
}

TEST(BinaryCsrTest, MappedSnapshotSurvivesGraphStoreRemove) {
  Graph g = PowerlawCluster(500, 3, 0.4, 26);
  const std::string path = TempPath("store_mapped.bin");
  ASSERT_TRUE(SaveBinary(g, path).ok());

  GraphStore store;
  {
    auto mapped = MapBinary(path);
    ASSERT_TRUE(mapped.ok()) << mapped.status();
    store.Publish("big", std::move(mapped).value());
  }
  GraphSnapshot snapshot = store.Get("big");
  ASSERT_TRUE(snapshot);
  ASSERT_TRUE(snapshot.graph->mmap_backed());

  // Remove drops the store's reference; the snapshot must keep the mapping
  // alive for in-flight readers (munmap happens with the last reference).
  ASSERT_TRUE(store.Remove("big"));
  EXPECT_FALSE(store.Get("big"));

  uint64_t checksum = 0;
  for (NodeId v = 0; v < snapshot.graph->NumNodes(); ++v) {
    for (NodeId u : snapshot.graph->Neighbors(v)) checksum += u;
  }
  uint64_t expected = 0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    for (NodeId u : g.Neighbors(v)) expected += u;
  }
  EXPECT_EQ(checksum, expected);
}

TEST(CommunitySetTest, SaveLoadRoundTrip) {
  CommunitySet cs;
  cs.Add({1, 2, 3});
  cs.Add({4, 5});
  cs.Add({6});
  const std::string path = TempPath("cmty.txt");
  ASSERT_TRUE(cs.Save(path).ok());
  auto loaded = CommunitySet::Load(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().NumCommunities(), 3u);
  EXPECT_EQ(loaded.value().Community(0), (std::vector<NodeId>{1, 2, 3}));
  EXPECT_EQ(loaded.value().Community(2), (std::vector<NodeId>{6}));
}

TEST(CommunitySetTest, SizeFilter) {
  CommunitySet cs;
  cs.Add({1, 2, 3});
  cs.Add({4, 5});
  cs.Add({6, 7, 8, 9});
  auto big = cs.CommunitiesOfSizeAtLeast(3);
  EXPECT_EQ(big, (std::vector<size_t>{0, 2}));
}

TEST(CommunitySetTest, MembershipLookup) {
  CommunitySet cs;
  cs.Add({0, 1});
  cs.Add({2, 3});
  EXPECT_EQ(cs.CommunityOf(0, 5), 0);
  EXPECT_EQ(cs.CommunityOf(3, 5), 1);
  EXPECT_EQ(cs.CommunityOf(4, 5), -1);
}

}  // namespace
}  // namespace hkpr
