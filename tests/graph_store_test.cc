// Tests for the multi-graph GraphStore: versioned publish/get round trips,
// snapshot ownership across Remove(), listing, and the hot-swap stress
// test (readers resolving snapshots while a writer republishes in a loop —
// run under TSan in CI; torn reads or use-after-free die here).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "service/graph_store.h"
#include "test_util.h"

namespace hkpr {
namespace {

TEST(GraphStoreTest, PublishGetRoundTrip) {
  GraphStore store;
  EXPECT_EQ(store.Size(), 0u);
  EXPECT_FALSE(store.Get("g"));

  const uint64_t v1 = store.Publish("g", testing::MakeComplete(8));
  EXPECT_GE(v1, 1u);
  EXPECT_TRUE(store.Contains("g"));
  EXPECT_EQ(store.Size(), 1u);

  const GraphSnapshot snapshot = store.Get("g");
  ASSERT_TRUE(snapshot);
  EXPECT_EQ(snapshot.version, v1);
  EXPECT_EQ(snapshot.graph->NumNodes(), 8u);
  EXPECT_EQ(snapshot.graph->NumEdges(), 28u);
}

TEST(GraphStoreTest, VersionsAreStoreWideMonotone) {
  GraphStore store;
  const uint64_t v1 = store.Publish("a", testing::MakePath(4));
  const uint64_t v2 = store.Publish("b", testing::MakePath(5));
  const uint64_t v3 = store.Publish("a", testing::MakePath(6));
  EXPECT_LT(v1, v2);
  EXPECT_LT(v2, v3);
  EXPECT_EQ(store.latest_version(), v3);

  // The republished "a" serves the new snapshot; "b" is untouched.
  EXPECT_EQ(store.Get("a").version, v3);
  EXPECT_EQ(store.Get("a").graph->NumNodes(), 6u);
  EXPECT_EQ(store.Get("b").version, v2);
}

TEST(GraphStoreTest, PublishReplacesButOldSnapshotsSurvive) {
  GraphStore store;
  store.Publish("g", testing::MakeCycle(10));
  const GraphSnapshot old_snapshot = store.Get("g");

  store.Publish("g", testing::MakeCycle(20));
  const GraphSnapshot new_snapshot = store.Get("g");

  // The old snapshot still reads the old graph, bit for bit.
  EXPECT_EQ(old_snapshot.graph->NumNodes(), 10u);
  EXPECT_EQ(old_snapshot.graph->Degree(0), 2u);
  EXPECT_EQ(new_snapshot.graph->NumNodes(), 20u);
  EXPECT_LT(old_snapshot.version, new_snapshot.version);
}

TEST(GraphStoreTest, RemoveDropsEntryButNotOutstandingSnapshots) {
  GraphStore store;
  store.Publish("g", testing::MakeStar(12));
  const GraphSnapshot snapshot = store.Get("g");

  EXPECT_TRUE(store.Remove("g"));
  EXPECT_FALSE(store.Contains("g"));
  EXPECT_FALSE(store.Get("g"));
  EXPECT_FALSE(store.Remove("g"));  // second remove: unknown

  // The held snapshot keeps the graph alive and readable.
  EXPECT_EQ(snapshot.graph->NumNodes(), 12u);
  EXPECT_EQ(snapshot.graph->Degree(0), 11u);
  EXPECT_EQ(snapshot.graph->Neighbors(1).size(), 1u);
}

TEST(GraphStoreTest, ListReportsNameVersionAndSize) {
  GraphStore store;
  store.Publish("beta", testing::MakeComplete(4));
  const uint64_t va = store.Publish("alpha", testing::MakePath(3));

  const std::vector<GraphInfo> infos = store.List();
  ASSERT_EQ(infos.size(), 2u);
  EXPECT_EQ(infos[0].name, "alpha");  // sorted by name
  EXPECT_EQ(infos[0].version, va);
  EXPECT_EQ(infos[0].nodes, 3u);
  EXPECT_EQ(infos[0].edges, 2u);
  EXPECT_EQ(infos[1].name, "beta");
  EXPECT_EQ(infos[1].edges, 6u);

  EXPECT_EQ(store.Names(), (std::vector<std::string>{"alpha", "beta"}));
}

TEST(GraphStoreTest, BorrowedSnapshotWrapsCallerOwnedGraph) {
  Graph g = testing::MakeComplete(5);
  const GraphSnapshot snapshot = GraphSnapshot::Borrowed(g);
  ASSERT_TRUE(snapshot);
  EXPECT_EQ(snapshot.version, 0u);
  EXPECT_EQ(snapshot.graph.get(), &g);
}

// The hot-swap stress test: reader threads resolve snapshots and read the
// graph while one writer republishes in a loop. Every observed snapshot
// must pair its graph with its version (node count encodes the publish
// index) and be internally consistent — a torn swap or a freed graph
// fails the assertions or trips TSan/ASan.
TEST(GraphStoreStressTest, ReadersSeeConsistentSnapshotsDuringHotSwap) {
  constexpr uint32_t kBaseNodes = 64;
  constexpr uint32_t kPublishes = 24;
  constexpr uint32_t kReaders = 4;

  GraphStore store;
  const uint64_t v_first = store.Publish("g", testing::MakeCycle(kBaseNodes));

  std::atomic<bool> done{false};
  std::atomic<uint64_t> reads{0};

  std::vector<std::thread> readers;
  for (uint32_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      uint64_t local_reads = 0;
      uint64_t last_version = 0;
      while (!done.load(std::memory_order_acquire) || local_reads < 50) {
        const GraphSnapshot snapshot = store.Get("g");
        ASSERT_TRUE(snapshot);
        // Versions only move forward, and only through published values:
        // this single-writer test publishes k = 0..kPublishes, so the
        // snapshot's node count must encode exactly version - v_first.
        ASSERT_GE(snapshot.version, v_first);
        ASSERT_LE(snapshot.version, v_first + kPublishes);
        ASSERT_GE(snapshot.version, last_version) << "version went backwards";
        last_version = snapshot.version;
        const uint32_t k = static_cast<uint32_t>(snapshot.version - v_first);
        ASSERT_EQ(snapshot.graph->NumNodes(), kBaseNodes + k)
            << "graph/version pair torn";
        // Structural consistency of the cycle: every node has degree 2 and
        // the CSR arrays agree with each other.
        ASSERT_EQ(snapshot.graph->NumEdges(), kBaseNodes + k);
        ASSERT_EQ(snapshot.graph->Degree(k % kBaseNodes), 2u);
        ASSERT_EQ(snapshot.graph->offsets().back(),
                  snapshot.graph->adjacency().size());
        ++local_reads;
      }
      reads.fetch_add(local_reads, std::memory_order_relaxed);
    });
  }

  for (uint32_t k = 1; k <= kPublishes; ++k) {
    const uint64_t v = store.Publish("g", testing::MakeCycle(kBaseNodes + k));
    ASSERT_EQ(v, v_first + k);  // single writer: consecutive versions
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_GE(reads.load(), kReaders * 50u);
  EXPECT_EQ(store.Get("g").version, v_first + kPublishes);
  EXPECT_EQ(store.Get("g").graph->NumNodes(), kBaseNodes + kPublishes);
}

// Concurrent publishers to one name: the slot must converge to the highest
// version with no torn graph/version pairs (ordering enforced by the CAS
// loop in Publish).
TEST(GraphStoreStressTest, RacingPublishersConvergeToNewestVersion) {
  constexpr uint32_t kWriters = 4;
  constexpr uint32_t kRounds = 16;

  GraphStore store;
  std::vector<std::thread> writers;
  for (uint32_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&store] {
      for (uint32_t k = 0; k < kRounds; ++k) {
        store.Publish("g", testing::MakeStar(8));
      }
    });
  }
  for (std::thread& t : writers) t.join();

  const GraphSnapshot snapshot = store.Get("g");
  ASSERT_TRUE(snapshot);
  EXPECT_EQ(snapshot.version, store.latest_version());
  EXPECT_EQ(snapshot.graph->NumNodes(), 8u);
  EXPECT_EQ(store.latest_version(), kWriters * kRounds);
}

}  // namespace
}  // namespace hkpr
