// Tests for the sweep cut and conductance utilities.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "clustering/conductance.h"
#include "clustering/sweep.h"
#include "common/sparse_vector.h"
#include "graph/generators.h"
#include "hkpr/power_method.h"
#include "test_util.h"

namespace hkpr {
namespace {

TEST(ConductanceTest, BarbellBridge) {
  Graph g = testing::MakeBarbell(5);  // bridge edge between cliques
  std::vector<NodeId> clique_a = {0, 1, 2, 3, 4};
  const CutStats stats = ComputeCutStats(g, clique_a);
  EXPECT_EQ(stats.cut, 1u);
  EXPECT_EQ(stats.volume, 4u * 5u + 1u);  // 5 nodes of degree 4, +1 bridge
  EXPECT_DOUBLE_EQ(stats.conductance, 1.0 / 21.0);
}

TEST(ConductanceTest, EmptyAndFullSetsAreWorst) {
  Graph g = testing::MakeCycle(6);
  std::vector<NodeId> empty;
  std::vector<NodeId> full = {0, 1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Conductance(g, empty), 1.0);
  EXPECT_DOUBLE_EQ(Conductance(g, full), 1.0);
}

TEST(ConductanceTest, SingleNode) {
  Graph g = testing::MakeCycle(8);
  std::vector<NodeId> one = {3};
  // cut = 2, vol = 2 -> conductance 1.
  EXPECT_DOUBLE_EQ(Conductance(g, one), 1.0);
}

TEST(ConductanceTest, DuplicatesIgnored) {
  Graph g = testing::MakeBarbell(4);
  std::vector<NodeId> dup = {0, 1, 2, 3, 0, 1};
  std::vector<NodeId> uniq = {0, 1, 2, 3};
  EXPECT_DOUBLE_EQ(Conductance(g, dup), Conductance(g, uniq));
}

TEST(ConductanceTest, HalfCycle) {
  Graph g = testing::MakeCycle(10);
  std::vector<NodeId> half = {0, 1, 2, 3, 4};
  // cut = 2, vol = 10, total vol = 20 -> phi = 2/10.
  EXPECT_DOUBLE_EQ(Conductance(g, half), 0.2);
}

TEST(SweepTest, FindsBarbellCut) {
  Graph g = testing::MakeBarbell(6);
  const std::vector<double> rho = ExactHkpr(g, 5.0, 0);
  SparseVector est;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (rho[v] > 0) est.Add(v, rho[v]);
  }
  SweepResult sweep = SweepCut(g, est);
  // Best cut is exactly clique A.
  std::vector<NodeId> sorted = sweep.cluster;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<NodeId>{0, 1, 2, 3, 4, 5}));
  EXPECT_DOUBLE_EQ(sweep.conductance, Conductance(g, sweep.cluster));
}

TEST(SweepTest, MatchesBruteForcePrefixEvaluation) {
  Graph g = PowerlawCluster(200, 3, 0.4, 1);
  const std::vector<double> rho = ExactHkpr(g, 5.0, 7);
  SparseVector est;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (rho[v] > 1e-12) est.Add(v, rho[v]);
  }
  SweepOptions options;
  options.keep_profile = true;
  SweepResult sweep = SweepCut(g, est, options);

  // Recompute each prefix's conductance from scratch.
  struct Scored {
    NodeId node;
    double score;
  };
  std::vector<Scored> order;
  for (const auto& e : est.entries()) {
    if (e.value > 0 && g.Degree(e.key) > 0) {
      order.push_back({e.key, e.value / g.Degree(e.key)});
    }
  }
  std::sort(order.begin(), order.end(), [](const Scored& a, const Scored& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.node < b.node;
  });
  ASSERT_EQ(sweep.profile.size(), order.size());
  std::vector<NodeId> prefix;
  double best = 2.0;
  for (size_t i = 0; i < order.size(); ++i) {
    prefix.push_back(order[i].node);
    const double phi = Conductance(g, prefix);
    EXPECT_NEAR(sweep.profile[i], phi, 1e-12) << "prefix " << i;
    best = std::min(best, phi);
  }
  EXPECT_NEAR(sweep.conductance, best, 1e-12);
}

TEST(SweepTest, EmptyEstimate) {
  Graph g = testing::MakeCycle(5);
  SparseVector est;
  SweepResult sweep = SweepCut(g, est);
  EXPECT_TRUE(sweep.cluster.empty());
  EXPECT_DOUBLE_EQ(sweep.conductance, 1.0);
}

TEST(SweepTest, IgnoresNonPositiveEntriesAndIsolated) {
  GraphBuilder b(5);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  Graph g = b.Build();  // 3, 4 isolated
  SparseVector est;
  est.Add(0, 0.5);
  est.Add(1, -0.1);
  est.Add(3, 0.9);  // isolated
  SweepResult sweep = SweepCut(g, est);
  EXPECT_EQ(sweep.support_size, 1u);
}

TEST(SweepTest, MaxPrefixLimitsInspection) {
  Graph g = PowerlawCluster(300, 3, 0.3, 2);
  const std::vector<double> rho = ExactHkpr(g, 5.0, 3);
  SparseVector est;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (rho[v] > 1e-12) est.Add(v, rho[v]);
  }
  SweepOptions options;
  options.max_prefix = 5;
  SweepResult sweep = SweepCut(g, est, options);
  EXPECT_LE(sweep.cluster.size(), 5u);
}

TEST(SweepTest, MaxVolumeKeepsClusterLocal) {
  // Two planted communities joined into one graph: without the cap the
  // sweep may return a near-bisection, with the cap it must stay local.
  CommunityGraph cg = PlantedPartition(4, 50, 0.3, 0.01, 9);
  const NodeId seed = cg.communities.Community(0)[0];
  const std::vector<double> rho = ExactHkpr(cg.graph, 8.0, seed);
  SparseVector est;
  for (NodeId v = 0; v < cg.graph.NumNodes(); ++v) {
    if (rho[v] > 1e-12) est.Add(v, rho[v]);
  }
  SweepOptions capped;
  capped.max_volume = cg.graph.Volume() / 3;
  SweepResult sweep = SweepCut(cg.graph, est, capped);
  ASSERT_FALSE(sweep.cluster.empty());
  EXPECT_LE(cg.graph.VolumeOf(sweep.cluster), capped.max_volume);
}

TEST(SweepTest, MaxVolumeStillReturnsBestWithinBound) {
  Graph g = testing::MakeBarbell(6);
  const std::vector<double> rho = ExactHkpr(g, 5.0, 0);
  SparseVector est;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (rho[v] > 0) est.Add(v, rho[v]);
  }
  // Clique A has volume 6*5+1 = 31; cap well above it changes nothing.
  SweepOptions capped;
  capped.max_volume = 40;
  SweepResult with_cap = SweepCut(g, est, capped);
  SweepResult without = SweepCut(g, est);
  EXPECT_EQ(with_cap.cluster, without.cluster);
}

TEST(SweepTest, DegreeOffsetDoesNotChangeRanking) {
  Graph g = testing::MakeBarbell(5);
  const std::vector<double> rho = ExactHkpr(g, 5.0, 0);
  SparseVector plain, offset;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (rho[v] > 0) {
      plain.Add(v, rho[v]);
      offset.Add(v, rho[v]);
    }
  }
  offset.set_degree_offset(0.001);
  SweepResult a = SweepCut(g, plain);
  SweepResult c = SweepCut(g, offset);
  EXPECT_EQ(a.cluster, c.cluster);
  EXPECT_DOUBLE_EQ(a.conductance, c.conductance);
}

TEST(SweepTest, RecoversPlantedCommunity) {
  CommunityGraph cg = PlantedPartition(5, 60, 0.3, 0.002, 3);
  const NodeId seed = cg.communities.Community(0)[0];
  const std::vector<double> rho = ExactHkpr(cg.graph, 5.0, seed);
  SparseVector est;
  for (NodeId v = 0; v < cg.graph.NumNodes(); ++v) {
    if (rho[v] > 1e-9) est.Add(v, rho[v]);
  }
  SweepResult sweep = SweepCut(cg.graph, est);
  // The sweep cluster should be mostly the planted community.
  const auto& truth = cg.communities.Community(0);
  size_t hits = 0;
  for (NodeId v : sweep.cluster) {
    if (std::find(truth.begin(), truth.end(), v) != truth.end()) ++hits;
  }
  EXPECT_GT(hits * 10, sweep.cluster.size() * 8);  // >80% purity
}

}  // namespace
}  // namespace hkpr
