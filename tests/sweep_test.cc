// Tests for the sweep cut and conductance utilities.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "clustering/conductance.h"
#include "clustering/sweep.h"
#include "common/sparse_vector.h"
#include "graph/generators.h"
#include "hkpr/power_method.h"
#include "test_util.h"

namespace hkpr {
namespace {

TEST(ConductanceTest, BarbellBridge) {
  Graph g = testing::MakeBarbell(5);  // bridge edge between cliques
  std::vector<NodeId> clique_a = {0, 1, 2, 3, 4};
  const CutStats stats = ComputeCutStats(g, clique_a);
  EXPECT_EQ(stats.cut, 1u);
  EXPECT_EQ(stats.volume, 4u * 5u + 1u);  // 5 nodes of degree 4, +1 bridge
  EXPECT_DOUBLE_EQ(stats.conductance, 1.0 / 21.0);
}

TEST(ConductanceTest, EmptyAndFullSetsAreWorst) {
  Graph g = testing::MakeCycle(6);
  std::vector<NodeId> empty;
  std::vector<NodeId> full = {0, 1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Conductance(g, empty), 1.0);
  EXPECT_DOUBLE_EQ(Conductance(g, full), 1.0);
}

TEST(ConductanceTest, SingleNode) {
  Graph g = testing::MakeCycle(8);
  std::vector<NodeId> one = {3};
  // cut = 2, vol = 2 -> conductance 1.
  EXPECT_DOUBLE_EQ(Conductance(g, one), 1.0);
}

TEST(ConductanceTest, DuplicatesIgnored) {
  Graph g = testing::MakeBarbell(4);
  std::vector<NodeId> dup = {0, 1, 2, 3, 0, 1};
  std::vector<NodeId> uniq = {0, 1, 2, 3};
  EXPECT_DOUBLE_EQ(Conductance(g, dup), Conductance(g, uniq));
}

TEST(ConductanceTest, HalfCycle) {
  Graph g = testing::MakeCycle(10);
  std::vector<NodeId> half = {0, 1, 2, 3, 4};
  // cut = 2, vol = 10, total vol = 20 -> phi = 2/10.
  EXPECT_DOUBLE_EQ(Conductance(g, half), 0.2);
}

TEST(SweepTest, FindsBarbellCut) {
  Graph g = testing::MakeBarbell(6);
  const std::vector<double> rho = ExactHkpr(g, 5.0, 0);
  SparseVector est;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (rho[v] > 0) est.Add(v, rho[v]);
  }
  SweepResult sweep = SweepCut(g, est);
  // Best cut is exactly clique A.
  std::vector<NodeId> sorted = sweep.cluster;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<NodeId>{0, 1, 2, 3, 4, 5}));
  EXPECT_DOUBLE_EQ(sweep.conductance, Conductance(g, sweep.cluster));
}

TEST(SweepTest, MatchesBruteForcePrefixEvaluation) {
  Graph g = PowerlawCluster(200, 3, 0.4, 1);
  const std::vector<double> rho = ExactHkpr(g, 5.0, 7);
  SparseVector est;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (rho[v] > 1e-12) est.Add(v, rho[v]);
  }
  SweepOptions options;
  options.keep_profile = true;
  SweepResult sweep = SweepCut(g, est, options);

  // Recompute each prefix's conductance from scratch.
  struct Scored {
    NodeId node;
    double score;
  };
  std::vector<Scored> order;
  for (const auto& e : est.entries()) {
    if (e.value > 0 && g.Degree(e.key) > 0) {
      order.push_back({e.key, e.value / g.Degree(e.key)});
    }
  }
  std::sort(order.begin(), order.end(), [](const Scored& a, const Scored& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.node < b.node;
  });
  ASSERT_EQ(sweep.profile.size(), order.size());
  std::vector<NodeId> prefix;
  double best = 2.0;
  for (size_t i = 0; i < order.size(); ++i) {
    prefix.push_back(order[i].node);
    const double phi = Conductance(g, prefix);
    EXPECT_NEAR(sweep.profile[i], phi, 1e-12) << "prefix " << i;
    best = std::min(best, phi);
  }
  EXPECT_NEAR(sweep.conductance, best, 1e-12);
}

TEST(SweepTest, EmptyEstimate) {
  Graph g = testing::MakeCycle(5);
  SparseVector est;
  SweepResult sweep = SweepCut(g, est);
  EXPECT_TRUE(sweep.cluster.empty());
  EXPECT_DOUBLE_EQ(sweep.conductance, 1.0);
}

TEST(SweepTest, IgnoresNonPositiveEntriesAndIsolated) {
  GraphBuilder b(5);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  Graph g = b.Build();  // 3, 4 isolated
  SparseVector est;
  est.Add(0, 0.5);
  est.Add(1, -0.1);
  est.Add(3, 0.9);  // isolated
  SweepResult sweep = SweepCut(g, est);
  EXPECT_EQ(sweep.support_size, 1u);
}

TEST(SweepTest, MaxPrefixLimitsInspection) {
  Graph g = PowerlawCluster(300, 3, 0.3, 2);
  const std::vector<double> rho = ExactHkpr(g, 5.0, 3);
  SparseVector est;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (rho[v] > 1e-12) est.Add(v, rho[v]);
  }
  SweepOptions options;
  options.max_prefix = 5;
  SweepResult sweep = SweepCut(g, est, options);
  EXPECT_LE(sweep.cluster.size(), 5u);
}

TEST(SweepTest, MaxVolumeKeepsClusterLocal) {
  // Two planted communities joined into one graph: without the cap the
  // sweep may return a near-bisection, with the cap it must stay local.
  CommunityGraph cg = PlantedPartition(4, 50, 0.3, 0.01, 9);
  const NodeId seed = cg.communities.Community(0)[0];
  const std::vector<double> rho = ExactHkpr(cg.graph, 8.0, seed);
  SparseVector est;
  for (NodeId v = 0; v < cg.graph.NumNodes(); ++v) {
    if (rho[v] > 1e-12) est.Add(v, rho[v]);
  }
  SweepOptions capped;
  capped.max_volume = cg.graph.Volume() / 3;
  SweepResult sweep = SweepCut(cg.graph, est, capped);
  ASSERT_FALSE(sweep.cluster.empty());
  EXPECT_LE(cg.graph.VolumeOf(sweep.cluster), capped.max_volume);
}

TEST(SweepTest, MaxVolumeStillReturnsBestWithinBound) {
  Graph g = testing::MakeBarbell(6);
  const std::vector<double> rho = ExactHkpr(g, 5.0, 0);
  SparseVector est;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (rho[v] > 0) est.Add(v, rho[v]);
  }
  // Clique A has volume 6*5+1 = 31; cap well above it changes nothing.
  SweepOptions capped;
  capped.max_volume = 40;
  SweepResult with_cap = SweepCut(g, est, capped);
  SweepResult without = SweepCut(g, est);
  EXPECT_EQ(with_cap.cluster, without.cluster);
}

TEST(SweepTest, DegreeOffsetDoesNotChangeRanking) {
  Graph g = testing::MakeBarbell(5);
  const std::vector<double> rho = ExactHkpr(g, 5.0, 0);
  SparseVector plain, offset;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (rho[v] > 0) {
      plain.Add(v, rho[v]);
      offset.Add(v, rho[v]);
    }
  }
  offset.set_degree_offset(0.001);
  SweepResult a = SweepCut(g, plain);
  SweepResult c = SweepCut(g, offset);
  EXPECT_EQ(a.cluster, c.cluster);
  EXPECT_DOUBLE_EQ(a.conductance, c.conductance);
}

TEST(SweepTest, RecoversPlantedCommunity) {
  CommunityGraph cg = PlantedPartition(5, 60, 0.3, 0.002, 3);
  const NodeId seed = cg.communities.Community(0)[0];
  const std::vector<double> rho = ExactHkpr(cg.graph, 5.0, seed);
  SparseVector est;
  for (NodeId v = 0; v < cg.graph.NumNodes(); ++v) {
    if (rho[v] > 1e-9) est.Add(v, rho[v]);
  }
  SweepResult sweep = SweepCut(cg.graph, est);
  // The sweep cluster should be mostly the planted community.
  const auto& truth = cg.communities.Community(0);
  size_t hits = 0;
  for (NodeId v : sweep.cluster) {
    if (std::find(truth.begin(), truth.end(), v) != truth.end()) ++hits;
  }
  EXPECT_GT(hits * 10, sweep.cluster.size() * 8);  // >80% purity
}

TEST(SweepTest, MaxVolumeCapNeverTruncatesToEmpty) {
  // Boundary: the cap is checked with `i > 0`, so the top-scored node is
  // always inspected even when its degree alone exceeds max_volume — a
  // cap tighter than any single node must still return a 1-node answer,
  // not an empty one.
  Graph g = testing::MakeStar(6);  // center 0 has degree 5
  SparseVector est;
  est.Add(0, 1.0);
  est.Add(1, 0.1);
  SweepOptions options;
  options.max_volume = 1;  // below even the leaf degree
  const SweepResult sweep = SweepCut(g, est);
  const SweepResult capped = SweepCut(g, est, options);
  ASSERT_EQ(capped.cluster.size(), 1u);
  EXPECT_EQ(capped.cluster[0], 0u);
  EXPECT_EQ(capped.support_size, 2u);
  // The uncapped sweep is free to pick a larger prefix; the capped one
  // must never report a better conductance than it.
  EXPECT_GE(capped.conductance, sweep.conductance);
}

TEST(SweepTest, MaxVolumeCapStopsAfterFirstNode) {
  // Cycle: every degree is 2. With max_volume=2 the first node fills the
  // cap exactly, and the second candidate (volume 2 + 2 > 2, i > 0) must
  // be cut off — the result is the first prefix alone.
  Graph g = testing::MakeCycle(8);
  SparseVector est;
  est.Add(2, 1.0);
  est.Add(3, 0.5);
  est.Add(4, 0.25);
  SweepOptions options;
  options.max_volume = 2;
  const SweepResult sweep = SweepCut(g, est, options);
  ASSERT_EQ(sweep.cluster.size(), 1u);
  EXPECT_EQ(sweep.cluster[0], 2u);
  // cut 2 / vol 2 for a single cycle node.
  EXPECT_DOUBLE_EQ(sweep.conductance, 1.0);
}

TEST(SweepTest, AllScoresTiedSweepsInNodeIdOrder) {
  // Path 0-1-2-3-4-5: interior nodes all have degree 2, so equal values
  // give equal normalized scores and the order must fall back to the
  // deterministic node-id tie-break. Prefix {1}: phi = 2/2 = 1;
  // prefix {1,2}: cut 2, vol 4, total 10 -> phi = 0.5; prefix {1,2,3}:
  // cut 2, denom min(6, 4) = 4 -> 0.5 (not strictly better). Best is
  // the node-ordered prefix {1,2}.
  Graph g = testing::MakePath(6);
  SparseVector est;
  est.Add(3, 0.5);  // inserted out of order on purpose
  est.Add(1, 0.5);
  est.Add(2, 0.5);
  const SweepResult sweep = SweepCut(g, est);
  ASSERT_EQ(sweep.cluster.size(), 2u);
  EXPECT_EQ(sweep.cluster[0], 1u);
  EXPECT_EQ(sweep.cluster[1], 2u);
  EXPECT_DOUBLE_EQ(sweep.conductance, 0.5);
}

TEST(SweepTest, WholeGraphPrefixHasDefinedConductance) {
  // When the support covers the whole graph, the last prefix has
  // total_volume - volume == 0: the denominator convention must yield
  // phi = 1.0 (never a division by zero / NaN), and that prefix must
  // not win even though its cut is 0.
  Graph g = testing::MakeComplete(3);
  SparseVector est;
  est.Add(0, 3.0);
  est.Add(1, 2.0);
  est.Add(2, 1.0);
  SweepOptions options;
  options.keep_profile = true;
  const SweepResult sweep = SweepCut(g, est, options);
  ASSERT_EQ(sweep.profile.size(), 3u);
  EXPECT_DOUBLE_EQ(sweep.profile.back(), 1.0);
  for (const double phi : sweep.profile) {
    EXPECT_TRUE(std::isfinite(phi));
  }
  // In K3 every proper prefix has phi = 1, so the best stays the first
  // one — the whole-graph prefix (denom == 0) is never selected.
  EXPECT_LT(sweep.cluster.size(), 3u);
  EXPECT_DOUBLE_EQ(sweep.conductance, 1.0);
}

}  // namespace
}  // namespace hkpr
