// Tests for F1, NDCG and error metrics.

#include <gtest/gtest.h>

#include <vector>

#include "clustering/metrics.h"
#include "graph/generators.h"
#include "hkpr/power_method.h"
#include "test_util.h"

namespace hkpr {
namespace {

TEST(F1Test, PerfectMatch) {
  std::vector<NodeId> a = {1, 2, 3};
  F1Stats f1 = ComputeF1(a, a);
  EXPECT_DOUBLE_EQ(f1.precision, 1.0);
  EXPECT_DOUBLE_EQ(f1.recall, 1.0);
  EXPECT_DOUBLE_EQ(f1.f1, 1.0);
}

TEST(F1Test, DisjointSets) {
  std::vector<NodeId> a = {1, 2};
  std::vector<NodeId> b = {3, 4};
  F1Stats f1 = ComputeF1(a, b);
  EXPECT_DOUBLE_EQ(f1.f1, 0.0);
}

TEST(F1Test, HandComputedOverlap) {
  std::vector<NodeId> predicted = {1, 2, 3, 4};   // 2 correct of 4
  std::vector<NodeId> truth = {3, 4, 5, 6, 7, 8}; // 2 recalled of 6
  F1Stats f1 = ComputeF1(predicted, truth);
  EXPECT_DOUBLE_EQ(f1.precision, 0.5);
  EXPECT_DOUBLE_EQ(f1.recall, 2.0 / 6.0);
  EXPECT_DOUBLE_EQ(f1.f1, 2.0 * 0.5 * (1.0 / 3.0) / (0.5 + 1.0 / 3.0));
}

TEST(F1Test, EmptyPrediction) {
  std::vector<NodeId> none;
  std::vector<NodeId> truth = {1};
  F1Stats f1 = ComputeF1(none, truth);
  EXPECT_DOUBLE_EQ(f1.f1, 0.0);
}

TEST(F1Test, DuplicatesCollapse) {
  std::vector<NodeId> predicted = {1, 1, 2, 2};
  std::vector<NodeId> truth = {1, 2};
  F1Stats f1 = ComputeF1(predicted, truth);
  EXPECT_DOUBLE_EQ(f1.f1, 1.0);
}

TEST(NdcgTest, PerfectRankingScoresOne) {
  Graph g = testing::MakeBarbell(5);
  std::vector<double> exact = ExactHkpr(g, 5.0, 0);
  std::vector<double> normalized = exact;
  NormalizeByDegree(g, normalized);
  SparseVector est;
  for (NodeId v = 0; v < g.NumNodes(); ++v) est.Add(v, exact[v]);
  EXPECT_NEAR(NdcgAtK(g, est, normalized, 10), 1.0, 1e-12);
}

TEST(NdcgTest, ShuffledRankingScoresBelowOne) {
  Graph g = PowerlawCluster(200, 3, 0.3, 1);
  std::vector<double> exact = ExactHkpr(g, 5.0, 3);
  std::vector<double> normalized = exact;
  NormalizeByDegree(g, normalized);
  // Adversarial estimate: invert the scores on the support.
  SparseVector bad;
  double max_score = 0.0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    max_score = std::max(max_score, exact[v]);
  }
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (exact[v] > 0) bad.Add(v, (max_score - exact[v]) + 1e-12);
  }
  const double ndcg = NdcgAtK(g, bad, normalized, 50);
  EXPECT_LT(ndcg, 0.9);
  EXPECT_GE(ndcg, 0.0);
}

TEST(NdcgTest, BetterEstimateScoresHigher) {
  Graph g = PowerlawCluster(300, 3, 0.3, 2);
  std::vector<double> exact = ExactHkpr(g, 5.0, 9);
  std::vector<double> normalized = exact;
  NormalizeByDegree(g, normalized);

  // Coarse estimate: heavy multiplicative noise. Fine: light noise.
  Rng rng(3);
  SparseVector coarse, fine;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (exact[v] <= 0) continue;
    coarse.Add(v, exact[v] * (0.05 + 1.9 * rng.UniformDouble()));
    fine.Add(v, exact[v] * (0.9 + 0.2 * rng.UniformDouble()));
  }
  EXPECT_GT(NdcgAtK(g, fine, normalized, 100),
            NdcgAtK(g, coarse, normalized, 100));
}

TEST(NdcgTest, DepthZeroIsOne) {
  Graph g = testing::MakeCycle(4);
  std::vector<double> normalized(4, 0.1);
  SparseVector est;
  EXPECT_DOUBLE_EQ(NdcgAtK(g, est, normalized, 0), 1.0);
}

TEST(MaxNormalizedErrorTest, ZeroForExact) {
  Graph g = testing::MakeBarbell(4);
  std::vector<double> exact = ExactHkpr(g, 5.0, 0);
  SparseVector est;
  for (NodeId v = 0; v < g.NumNodes(); ++v) est.Add(v, exact[v]);
  EXPECT_DOUBLE_EQ(MaxNormalizedError(g, est, exact), 0.0);
}

TEST(MaxNormalizedErrorTest, DetectsSingleNodeError) {
  Graph g = testing::MakeStar(5);  // d(0)=4, leaves degree 1
  std::vector<double> exact(5, 0.1);
  SparseVector est;
  for (NodeId v = 0; v < 5; ++v) est.Add(v, 0.1);
  est.Add(2, 0.05);  // off by 0.05 on a degree-1 node
  EXPECT_DOUBLE_EQ(MaxNormalizedError(g, est, exact), 0.05);
}

TEST(MaxNormalizedErrorTest, IncludesDegreeOffset) {
  Graph g = testing::MakeStar(5);
  std::vector<double> exact(5, 0.0);
  SparseVector est;
  est.set_degree_offset(0.01);
  // Every node v now has estimate 0.01*d(v) -> normalized error 0.01.
  EXPECT_DOUBLE_EQ(MaxNormalizedError(g, est, exact), 0.01);
}

TEST(CountApproxViolationsTest, FlagsRelativeViolations) {
  Graph g = testing::MakeStar(4);  // degrees 3,1,1,1
  std::vector<double> exact = {0.3, 0.2, 0.2, 0.2};
  SparseVector est;
  est.Add(0, 0.3);
  est.Add(1, 0.2);
  est.Add(2, 0.2);
  est.Add(3, 0.05);  // relative error 0.75 > eps_r on a significant node
  EXPECT_EQ(CountApproxViolations(g, est, exact, 0.5, 0.01), 1u);
}

TEST(CountApproxViolationsTest, SmallValuesGetAbsoluteBudget) {
  Graph g = testing::MakeStar(4);
  std::vector<double> exact = {0.3, 1e-6, 0.2, 0.2};
  SparseVector est;
  est.Add(0, 0.3);
  est.Add(1, 5e-6);  // 5x relative error but tiny absolute: below eps_r*delta
  est.Add(2, 0.2);
  est.Add(3, 0.2);
  EXPECT_EQ(CountApproxViolations(g, est, exact, 0.5, 0.01), 0u);
}

TEST(CountApproxViolationsTest, SlackLoosens) {
  Graph g = testing::MakeStar(4);
  std::vector<double> exact = {0.3, 0.2, 0.2, 0.2};
  SparseVector est;
  est.Add(0, 0.3);
  est.Add(1, 0.2);
  est.Add(2, 0.2);
  est.Add(3, 0.09);  // rel error 0.55, just past eps_r = 0.5
  EXPECT_EQ(CountApproxViolations(g, est, exact, 0.5, 0.01, 1.0), 1u);
  EXPECT_EQ(CountApproxViolations(g, est, exact, 0.5, 0.01, 1.2), 0u);
}

}  // namespace
}  // namespace hkpr
