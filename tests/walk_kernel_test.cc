// Tests for the interleaved walk kernel and its counter-based RNG: the
// determinism contract (results are a pure function of the walk index,
// independent of interleave width, range partitioning, and thread count),
// draw-exact agreement with the canonical KRandomWalk semantics, stranded
// walks, and walk-step accounting.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <span>
#include <utility>
#include <vector>

#include "common/random.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "hkpr/monte_carlo.h"
#include "hkpr/random_walk.h"
#include "hkpr/tea_plus.h"
#include "hkpr/walk_kernel.h"
#include "parallel/parallel_monte_carlo.h"
#include "parallel/parallel_tea_plus.h"
#include "test_util.h"

namespace hkpr {
namespace {

TEST(CounterRngTest, StreamIsPureFunctionOfSeedAndStream) {
  CounterRng a(42, 7);
  CounterRng b(42, 7);
  CounterRng other_stream(42, 8);
  CounterRng other_seed(43, 7);
  bool stream_differs = false;
  bool seed_differs = false;
  for (int i = 0; i < 64; ++i) {
    const uint64_t x = a.Next();
    EXPECT_EQ(x, b.Next());
    stream_differs |= x != other_stream.Next();
    seed_differs |= x != other_seed.Next();
  }
  EXPECT_TRUE(stream_differs);
  EXPECT_TRUE(seed_differs);
}

TEST(CounterRngTest, ResetStreamRewindsToDrawZero) {
  CounterRng rng(11, 3);
  std::vector<uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(rng.Next());
  rng.ResetStream(11, 3);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(rng.Next(), first[i]);
}

TEST(CounterRngTest, StreamsUnaffectedByInterleaving) {
  // The property the kernel's correctness rests on: draws from one stream
  // are the same no matter how draws from other streams are interleaved
  // between them.
  CounterRng solo(5, 100);
  std::vector<uint64_t> expected;
  for (int i = 0; i < 32; ++i) expected.push_back(solo.Next());

  CounterRng interleaved(5, 100);
  CounterRng noise_a(5, 101), noise_b(99, 0);
  for (int i = 0; i < 32; ++i) {
    for (int j = 0; j < i % 4; ++j) {
      noise_a.Next();
      noise_b.UniformDouble();
    }
    EXPECT_EQ(interleaved.Next(), expected[i]);
  }
}

TEST(CounterRngTest, UniformDrawsAreInRangeAndCentered) {
  CounterRng rng(2026, 0);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.UniformDouble();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
    ASSERT_LT(rng.UniformInt(17), 17u);
  }
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(WalkKernelTest, ParseAndNameRoundTrip) {
  WalkKernelType type = WalkKernelType::kScalar;
  EXPECT_TRUE(ParseWalkKernelType("interleaved", &type));
  EXPECT_EQ(type, WalkKernelType::kInterleaved);
  EXPECT_EQ(WalkKernelTypeName(type), "interleaved");
  EXPECT_TRUE(ParseWalkKernelType("scalar", &type));
  EXPECT_EQ(type, WalkKernelType::kScalar);
  EXPECT_EQ(WalkKernelTypeName(type), "scalar");
  EXPECT_FALSE(ParseWalkKernelType("vectorized", &type));
  EXPECT_EQ(type, WalkKernelType::kScalar);  // untouched on failure
}

TEST(WalkKernelTest, EffectiveWidthDropsToOneOnCacheResidentGraphs) {
  const Graph small = testing::MakeCycle(64);
  ASSERT_LT(small.MemoryBytes(), kInterleaveMinGraphBytes);
  WalkKernelOptions options;
  options.width = 16;
  EXPECT_EQ(EffectiveWalkWidth(small, options), 1u);
}

// Alias-guided start set over a handful of (node, hop) pairs — the TEA/TEA+
// shape — on a degree-skewed generator graph.
struct StartFixture {
  Graph graph;
  HeatKernel kernel;
  std::vector<std::pair<NodeId, uint32_t>> entries;
  AliasSampler alias;

  StartFixture()
      : graph(PowerlawCluster(2000, 4, 0.3, 9)),
        kernel(5.0),
        entries({{0, 0}, {17, 1}, {500, 2}, {1999, 0}, {1234, 3}}),
        alias(std::vector<double>{4.0, 1.0, 0.5, 2.0, 0.25}) {}

  WalkStartSet Set() const { return {&alias, entries.data(), 0}; }
};

TEST(WalkKernelTest, BitIdenticalAcrossWidths) {
  const StartFixture f;
  const uint64_t n = 5000;
  const uint64_t seed = WalkStreamSeed(77, 0);

  std::vector<NodeId> base(n);
  std::vector<uint32_t> base_steps(n);
  const uint64_t base_total = RunInterleavedWalks(
      f.graph, f.kernel, f.Set(), seed, 0, n, base.data(), 1,
      base_steps.data());

  for (const uint32_t width : {4u, 8u, 16u, 64u}) {
    std::vector<NodeId> ends(n);
    std::vector<uint32_t> steps(n);
    const uint64_t total = RunInterleavedWalks(
        f.graph, f.kernel, f.Set(), seed, 0, n, ends.data(), width,
        steps.data());
    EXPECT_EQ(total, base_total) << "width " << width;
    EXPECT_EQ(ends, base) << "width " << width;
    EXPECT_EQ(steps, base_steps) << "width " << width;
  }
}

TEST(WalkKernelTest, BitIdenticalAcrossRangePartitions) {
  // Running [0, n) in one call must equal any partition into subranges —
  // the property the parallel estimators' sharding relies on.
  const StartFixture f;
  const uint64_t n = 4000;
  const uint64_t seed = WalkStreamSeed(31337, 4);

  std::vector<NodeId> whole(n);
  RunInterleavedWalks(f.graph, f.kernel, f.Set(), seed, 0, n, whole.data(), 8);

  for (const std::vector<uint64_t> cuts :
       {std::vector<uint64_t>{0, n}, std::vector<uint64_t>{0, 1, n},
        std::vector<uint64_t>{0, 613, 1900, 1901, n}}) {
    std::vector<NodeId> pieced(n);
    for (size_t c = 0; c + 1 < cuts.size(); ++c) {
      RunInterleavedWalks(f.graph, f.kernel, f.Set(), seed, cuts[c],
                          cuts[c + 1] - cuts[c], pieced.data() + cuts[c], 16);
    }
    EXPECT_EQ(pieced, whole);
  }
}

TEST(WalkKernelTest, MatchesCanonicalReplayOfTheSameStreams) {
  // Independent recount: replay every walk with a fresh CounterRng through
  // the canonical KRandomWalk loop (random_walk.cc), draw for draw, and
  // require the same end nodes and step counts the kernel reported.
  const StartFixture f;
  const uint64_t n = 3000;
  const uint64_t seed = WalkStreamSeed(555, 2);
  std::vector<NodeId> ends(n);
  std::vector<uint32_t> steps(n);
  const uint64_t total = RunInterleavedWalks(
      f.graph, f.kernel, f.Set(), seed, 0, n, ends.data(), 8, steps.data());

  const uint32_t max_hop = f.kernel.MaxHop();
  const std::span<const double> term = f.kernel.TerminationProbs();
  uint64_t replay_total = 0;
  for (uint64_t w = 0; w < n; ++w) {
    CounterRng rng(seed, w);
    const uint32_t sample = f.alias.Sample(rng);
    NodeId node = f.entries[sample].first;
    uint32_t hop = f.entries[sample].second;
    uint32_t walked = 0;
    if (hop < max_hop && f.graph.Degree(node) != 0) {
      while (hop < max_hop) {
        if (rng.UniformDouble() <= term[hop]) break;
        node = f.graph.RandomNeighbor(node, rng);
        ++hop;
        ++walked;
        if (f.graph.Degree(node) == 0) break;
      }
    }
    EXPECT_EQ(ends[w], node) << "walk " << w;
    EXPECT_EQ(steps[w], walked) << "walk " << w;
    replay_total += walked;
  }
  EXPECT_EQ(total, replay_total);
}

TEST(WalkKernelTest, StrandedWalksStopInPlaceAcrossWidths) {
  // A star whose center is also linked to a pendant chain ending in an
  // isolated node is hard to build; instead: component {0,1} plus isolated
  // node 2. Walks starting at 2 must end at 2 with zero steps, identically
  // at every width; walks starting at hop >= MaxHop stop in place too.
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  const Graph graph = b.Build();
  ASSERT_EQ(graph.Degree(2), 0u);
  const HeatKernel kernel(3.0);

  const std::vector<std::pair<NodeId, uint32_t>> entries = {
      {2, 0}, {0, kernel.MaxHop() + 4}, {1, 0}};
  const AliasSampler alias(std::vector<double>{1.0, 1.0, 1.0});
  const WalkStartSet set{&alias, entries.data(), 0};
  const uint64_t n = 512;
  const uint64_t seed = WalkStreamSeed(8, 0);

  std::vector<NodeId> base(n);
  std::vector<uint32_t> base_steps(n);
  RunInterleavedWalks(graph, kernel, set, seed, 0, n, base.data(), 1,
                      base_steps.data());
  for (const uint32_t width : {4u, 16u}) {
    std::vector<NodeId> ends(n);
    std::vector<uint32_t> steps(n);
    RunInterleavedWalks(graph, kernel, set, seed, 0, n, ends.data(), width,
                        steps.data());
    EXPECT_EQ(ends, base);
    EXPECT_EQ(steps, base_steps);
  }
  // Cross-check the stranded/past-cap starts directly via replay of which
  // alias cell each stream drew.
  for (uint64_t w = 0; w < n; ++w) {
    CounterRng rng(seed, w);
    const uint32_t sample = alias.Sample(rng);
    if (sample == 0) {
      EXPECT_EQ(base[w], 2u);
      EXPECT_EQ(base_steps[w], 0u);
    } else if (sample == 1) {
      EXPECT_EQ(base[w], 0u);
      EXPECT_EQ(base_steps[w], 0u);
    }
  }
}

// Exact (bitwise, order-sensitive-free) comparison of two estimates.
std::map<NodeId, double> ToMap(const SparseVector& v) {
  std::map<NodeId, double> out;
  for (const auto& e : v.entries()) out[e.key] += e.value;
  return out;
}

ApproxParams TestParams(const Graph& graph) {
  ApproxParams params;
  params.t = 5.0;
  params.eps_r = 0.5;
  params.delta = 1.0 / static_cast<double>(graph.NumNodes());
  params.p_f = 1e-4;
  return params;
}

TEST(WalkKernelTest, TeaPlusBitIdenticalAcrossWidthsAndThreadCounts) {
  // The serving-level guarantee: sequential TEA+ and parallel TEA+ at any
  // thread count and any configured width produce the same estimate to the
  // last bit when the interleaved kernel is on.
  const Graph graph = PowerlawCluster(1500, 4, 0.3, 4);
  // Serving-grade coarse accuracy with a tight hop cap (as in
  // bench_service): the push phase leaves residue mass behind, so the walk
  // phase actually runs.
  ApproxParams params = TestParams(graph);
  params.delta = 20.0 / static_cast<double>(graph.NumNodes());
  params.p_f = 1e-6;
  const uint64_t seed = 99;
  const NodeId query = 3;

  TeaPlusOptions base_options;
  base_options.c = 1.0;
  base_options.walk_kernel.type = WalkKernelType::kInterleaved;
  TeaPlusEstimator sequential(graph, params, seed, base_options);
  EstimatorStats seq_stats;
  const std::map<NodeId, double> expected =
      ToMap(sequential.Estimate(query, &seq_stats));
  ASSERT_GT(seq_stats.num_walks, 0u) << "walk phase must run for this test";

  for (const uint32_t width : {1u, 4u, 8u, 16u}) {
    for (const uint32_t threads : {1u, 4u, 8u}) {
      TeaPlusOptions options = base_options;
      options.walk_kernel.width = width;
      ParallelTeaPlusEstimator parallel(graph, params, seed, threads, options);
      EstimatorStats stats;
      EXPECT_EQ(ToMap(parallel.Estimate(query, &stats)), expected)
          << "width " << width << " threads " << threads;
      EXPECT_EQ(stats.walk_steps, seq_stats.walk_steps);
      EXPECT_EQ(stats.num_walks, seq_stats.num_walks);
    }
  }
}

TEST(WalkKernelTest, MonteCarloBitIdenticalAcrossThreadCounts) {
  const Graph graph = PowerlawCluster(800, 3, 0.2, 12);
  ApproxParams params = TestParams(graph);
  params.p_f = 1e-2;  // keep the walk count test-sized
  const uint64_t seed = 7;
  const NodeId query = 42;

  WalkKernelOptions kernel_options;
  kernel_options.type = WalkKernelType::kInterleaved;
  MonteCarloEstimator sequential(graph, params, seed, -1.0, kernel_options);
  EstimatorStats seq_stats;
  const std::map<NodeId, double> expected =
      ToMap(sequential.Estimate(query, &seq_stats));

  for (const uint32_t threads : {1u, 4u, 8u}) {
    ParallelMonteCarloEstimator parallel(graph, params, seed, threads, nullptr,
                                         -1.0, kernel_options);
    EstimatorStats stats;
    EXPECT_EQ(ToMap(parallel.Estimate(query, &stats)), expected)
        << "threads " << threads;
    EXPECT_EQ(stats.walk_steps, seq_stats.walk_steps);
  }
}

TEST(WalkKernelTest, WalkStepsAccountingMatchesInstrumentedRecount) {
  // EstimatorStats::walk_steps must equal an independent edge-traversal
  // recount under both kernels (satellite: walk-step accounting).
  const Graph graph = PowerlawCluster(600, 3, 0.2, 21);
  ApproxParams params = TestParams(graph);
  params.p_f = 1e-2;
  const uint64_t seed = 13;
  const NodeId query = 5;

  // Scalar kernel: the estimator consumes its member Rng(seed) walk by
  // walk; an identical replay recounts the traversed edges.
  WalkKernelOptions scalar;
  scalar.type = WalkKernelType::kScalar;
  MonteCarloEstimator scalar_mc(graph, params, seed, -1.0, scalar);
  EstimatorStats scalar_stats;
  scalar_mc.Estimate(query, &scalar_stats);
  {
    Rng rng(seed);
    uint64_t recount = 0;
    for (uint64_t i = 0; i < scalar_stats.num_walks; ++i) {
      KRandomWalk(graph, HeatKernel(params.t), query, 0, rng, &recount);
    }
    EXPECT_EQ(scalar_stats.walk_steps, recount);
  }

  // Interleaved kernel: per-walk streams of WalkStreamSeed(seed, epoch 0);
  // the kernel's own per-walk counters recount the total.
  WalkKernelOptions interleaved;
  interleaved.type = WalkKernelType::kInterleaved;
  MonteCarloEstimator mc(graph, params, seed, -1.0, interleaved);
  EstimatorStats stats;
  mc.Estimate(query, &stats);
  {
    std::vector<NodeId> ends(stats.num_walks);
    std::vector<uint32_t> per_walk(stats.num_walks);
    WalkStartSet set;
    set.fixed_node = query;
    const uint64_t total = RunInterleavedWalks(
        graph, HeatKernel(params.t), set, WalkStreamSeed(seed, 0), 0,
        stats.num_walks, ends.data(), 8, per_walk.data());
    uint64_t recount = 0;
    for (const uint32_t s : per_walk) recount += s;
    EXPECT_EQ(total, recount);
    EXPECT_EQ(stats.walk_steps, recount);
  }
}

TEST(WalkKernelTest, ScalarAndInterleavedAgreeInDistribution) {
  // The two kernels draw from different streams, so they can't be compared
  // bitwise — but on the same workload their estimates must agree to the
  // estimator's accuracy. Guards against the interleaved path silently
  // biasing the walk distribution.
  const Graph graph = testing::MakeBarbell(8);
  ApproxParams params = TestParams(graph);
  params.p_f = 1e-6;
  WalkKernelOptions scalar;
  scalar.type = WalkKernelType::kScalar;
  WalkKernelOptions interleaved;
  interleaved.type = WalkKernelType::kInterleaved;
  MonteCarloEstimator a(graph, params, 1, -1.0, scalar);
  MonteCarloEstimator b(graph, params, 2, -1.0, interleaved);
  const SparseVector va = a.Estimate(0);
  const SparseVector vb = b.Estimate(0);
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    EXPECT_NEAR(va.Get(v), vb.Get(v), 0.02) << v;
  }
}

}  // namespace
}  // namespace hkpr
