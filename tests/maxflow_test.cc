// Tests for the Dinic max-flow substrate.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.h"
#include "flow/maxflow.h"

namespace hkpr {
namespace {

TEST(MaxFlowTest, SingleArc) {
  FlowNetwork net(2);
  net.AddArc(0, 1, 7);
  EXPECT_EQ(net.MaxFlow(0, 1), 7);
}

TEST(MaxFlowTest, SeriesTakesMinimum) {
  FlowNetwork net(3);
  net.AddArc(0, 1, 10);
  net.AddArc(1, 2, 4);
  EXPECT_EQ(net.MaxFlow(0, 2), 4);
}

TEST(MaxFlowTest, ParallelPathsAdd) {
  FlowNetwork net(4);
  net.AddArc(0, 1, 3);
  net.AddArc(1, 3, 3);
  net.AddArc(0, 2, 5);
  net.AddArc(2, 3, 5);
  EXPECT_EQ(net.MaxFlow(0, 3), 8);
}

TEST(MaxFlowTest, ClassicTextbookNetwork) {
  // CLRS-style example with known max flow 23.
  FlowNetwork net(6);
  net.AddArc(0, 1, 16);
  net.AddArc(0, 2, 13);
  net.AddArc(1, 2, 10);
  net.AddArc(2, 1, 4);
  net.AddArc(1, 3, 12);
  net.AddArc(3, 2, 9);
  net.AddArc(2, 4, 14);
  net.AddArc(4, 3, 7);
  net.AddArc(3, 5, 20);
  net.AddArc(4, 5, 4);
  EXPECT_EQ(net.MaxFlow(0, 5), 23);
}

TEST(MaxFlowTest, DisconnectedIsZero) {
  FlowNetwork net(4);
  net.AddArc(0, 1, 5);
  net.AddArc(2, 3, 5);
  EXPECT_EQ(net.MaxFlow(0, 3), 0);
}

TEST(MaxFlowTest, UndirectedEdgeBothWays) {
  FlowNetwork a(2), b(2);
  a.AddUndirectedEdge(0, 1, 6);
  b.AddUndirectedEdge(0, 1, 6);
  EXPECT_EQ(a.MaxFlow(0, 1), 6);
  EXPECT_EQ(b.MaxFlow(1, 0), 6);
}

TEST(MaxFlowTest, MinCutSeparatesSourceFromSink) {
  FlowNetwork net(5);
  net.AddArc(0, 1, 2);
  net.AddArc(0, 2, 2);
  net.AddArc(1, 3, 1);
  net.AddArc(2, 3, 1);
  net.AddArc(3, 4, 10);
  EXPECT_EQ(net.MaxFlow(0, 4), 2);
  const std::vector<bool> side = net.MinCutSourceSide(0);
  EXPECT_TRUE(side[0]);
  EXPECT_FALSE(side[4]);
  EXPECT_FALSE(side[3]);  // bottleneck arcs 1->3, 2->3 are saturated
}

/// Brute-force min cut by enumerating all source/sink partitions.
int64_t BruteForceMinCut(uint32_t n,
                         const std::vector<std::array<int64_t, 3>>& arcs,
                         uint32_t s, uint32_t t) {
  int64_t best = INT64_MAX;
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    if (!(mask & (1u << s)) || (mask & (1u << t))) continue;
    int64_t cut = 0;
    for (const auto& [from, to, cap] : arcs) {
      if ((mask & (1u << from)) && !(mask & (1u << to))) cut += cap;
    }
    best = std::min(best, cut);
  }
  return best;
}

TEST(MaxFlowTest, MatchesBruteForceOnRandomNetworks) {
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    const uint32_t n = 6;
    std::vector<std::array<int64_t, 3>> arcs;
    FlowNetwork net(n);
    for (int e = 0; e < 12; ++e) {
      const uint32_t u = static_cast<uint32_t>(rng.UniformInt(n));
      const uint32_t v = static_cast<uint32_t>(rng.UniformInt(n));
      if (u == v) continue;
      const int64_t cap = static_cast<int64_t>(rng.UniformInt(10)) + 1;
      arcs.push_back({u, v, cap});
      net.AddArc(u, v, cap);
    }
    const int64_t flow = net.MaxFlow(0, n - 1);
    const int64_t cut = BruteForceMinCut(n, arcs, 0, n - 1);
    EXPECT_EQ(flow, cut) << "trial " << trial;
  }
}

TEST(MaxFlowTest, MinCutValueMatchesFlow) {
  // Max-flow min-cut duality on a random instance: the cut induced by the
  // reachable set must equal the flow value.
  Rng rng(12);
  const uint32_t n = 20;
  FlowNetwork net(n);
  std::vector<std::array<int64_t, 3>> arcs;
  for (int e = 0; e < 80; ++e) {
    const uint32_t u = static_cast<uint32_t>(rng.UniformInt(n));
    const uint32_t v = static_cast<uint32_t>(rng.UniformInt(n));
    if (u == v) continue;
    const int64_t cap = static_cast<int64_t>(rng.UniformInt(20)) + 1;
    arcs.push_back({u, v, cap});
    net.AddArc(u, v, cap);
  }
  const int64_t flow = net.MaxFlow(0, n - 1);
  const std::vector<bool> side = net.MinCutSourceSide(0);
  int64_t cut = 0;
  for (const auto& [from, to, cap] : arcs) {
    if (side[from] && !side[to]) cut += cap;
  }
  EXPECT_EQ(cut, flow);
}

}  // namespace
}  // namespace hkpr
