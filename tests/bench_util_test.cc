// Tests for the benchmark utilities (formatting and table layout).

#include <gtest/gtest.h>

#include "bench_util/table.h"

namespace hkpr {
namespace {

TEST(FormatTest, FmtFPrecision) {
  EXPECT_EQ(FmtF(0.123456, 4), "0.1235");
  EXPECT_EQ(FmtF(2.0, 1), "2.0");
  EXPECT_EQ(FmtF(-1.5, 2), "-1.50");
}

TEST(FormatTest, FmtSci) {
  EXPECT_EQ(FmtSci(1e-6), "1.0e-06");
  EXPECT_EQ(FmtSci(2.5e-4), "2.5e-04");
}

TEST(FormatTest, FmtMsAdaptive) {
  EXPECT_EQ(FmtMs(1.234), "1.23 ms");
  EXPECT_EQ(FmtMs(42.0), "42.0 ms");
  EXPECT_EQ(FmtMs(2500.0), "2.50 s");
}

TEST(FormatTest, FmtCountGroupsThousands) {
  EXPECT_EQ(FmtCount(0), "0");
  EXPECT_EQ(FmtCount(999), "999");
  EXPECT_EQ(FmtCount(1000), "1,000");
  EXPECT_EQ(FmtCount(1234567), "1,234,567");
  EXPECT_EQ(FmtCount(1000000000ull), "1,000,000,000");
}

TEST(TablePrinterTest, HandlesRaggedRows) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"1"});            // short row is padded
  table.AddRow({"1", "2", "3"});
  table.Print();  // must not crash; layout checked by inspection in benches
  SUCCEED();
}

}  // namespace
}  // namespace hkpr
