// Tests for the benchmark utilities (formatting, table layout, workloads).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "bench_util/table.h"
#include "bench_util/workload.h"
#include "graph/generators.h"

namespace hkpr {
namespace {

TEST(FormatTest, FmtFPrecision) {
  EXPECT_EQ(FmtF(0.123456, 4), "0.1235");
  EXPECT_EQ(FmtF(2.0, 1), "2.0");
  EXPECT_EQ(FmtF(-1.5, 2), "-1.50");
}

TEST(FormatTest, FmtSci) {
  EXPECT_EQ(FmtSci(1e-6), "1.0e-06");
  EXPECT_EQ(FmtSci(2.5e-4), "2.5e-04");
}

TEST(FormatTest, FmtMsAdaptive) {
  EXPECT_EQ(FmtMs(1.234), "1.23 ms");
  EXPECT_EQ(FmtMs(42.0), "42.0 ms");
  EXPECT_EQ(FmtMs(2500.0), "2.50 s");
}

TEST(FormatTest, FmtCountGroupsThousands) {
  EXPECT_EQ(FmtCount(0), "0");
  EXPECT_EQ(FmtCount(999), "999");
  EXPECT_EQ(FmtCount(1000), "1,000");
  EXPECT_EQ(FmtCount(1234567), "1,234,567");
  EXPECT_EQ(FmtCount(1000000000ull), "1,000,000,000");
}

TEST(WorkloadTest, ZipfianSeedsAreSkewedOverAHotSet) {
  Graph g = PowerlawCluster(2000, 4, 0.3, 3);
  Rng rng(7);
  const uint32_t kDraws = 2000;
  const uint32_t kUniverse = 8;
  const std::vector<NodeId> seeds = ZipfianSeeds(g, kDraws, kUniverse, 1.2, rng);
  ASSERT_EQ(seeds.size(), kDraws);

  std::map<NodeId, uint32_t> freq;
  for (NodeId seed : seeds) {
    EXPECT_GT(g.Degree(seed), 0u);
    ++freq[seed];
  }
  // Draws come from at most `universe` distinct hot seeds, and the skew is
  // strong: the hottest seed must clearly dominate the coldest.
  EXPECT_LE(freq.size(), kUniverse);
  EXPECT_GE(freq.size(), 2u);
  uint32_t hottest = 0, coldest = kDraws;
  for (const auto& [seed, count] : freq) {
    hottest = std::max(hottest, count);
    coldest = std::min(coldest, count);
  }
  EXPECT_GE(hottest, 3u * coldest);
}

TEST(WorkloadTest, ZipfianExponentZeroIsUniformish) {
  // s = 0 degenerates to uniform draws over the hot set — every hot seed
  // should appear with roughly equal frequency.
  Graph g = PowerlawCluster(500, 4, 0.3, 4);
  Rng rng(11);
  const std::vector<NodeId> seeds = ZipfianSeeds(g, 4000, 4, 0.0, rng);
  std::map<NodeId, uint32_t> freq;
  for (NodeId seed : seeds) ++freq[seed];
  ASSERT_EQ(freq.size(), 4u);
  for (const auto& [seed, count] : freq) {
    EXPECT_NEAR(count, 1000.0, 150.0);
  }
}

TEST(TablePrinterTest, HandlesRaggedRows) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"1"});            // short row is padded
  table.AddRow({"1", "2", "3"});
  table.Print();  // must not crash; layout checked by inspection in benches
  SUCCEED();
}

}  // namespace
}  // namespace hkpr
