// Tests for the degree-ordered layout pass (graph/relabel.h): the mapping
// is a degree-sorted permutation, node ids and neighbor lists are
// untouched, rows are physically packed in rank order — and, the contract
// that makes the pass safe to apply under a live service, every registered
// backend answers bit-identically on the relabeled graph.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "graph/relabel.h"
#include "hkpr/backend.h"
#include "hkpr/queries.h"
#include "test_util.h"

namespace hkpr {
namespace {

ApproxParams TestParams() {
  ApproxParams p;
  p.t = 5.0;
  p.eps_r = 0.5;
  p.delta = 1e-3;
  p.p_f = 1e-4;
  return p;
}

TEST(RelabelTest, MappingIsDegreeSortedPermutation) {
  Graph g = PowerlawCluster(500, 3, 0.4, 31);
  DegreeOrderedLayout layout = RelabelByDegree(g);

  ASSERT_EQ(layout.order.size(), g.NumNodes());
  ASSERT_EQ(layout.rank.size(), g.NumNodes());
  std::vector<bool> seen(g.NumNodes(), false);
  for (uint32_t r = 0; r < g.NumNodes(); ++r) {
    const NodeId v = layout.order[r];
    ASSERT_LT(v, g.NumNodes());
    EXPECT_FALSE(seen[v]) << "duplicate id in order";
    seen[v] = true;
    EXPECT_EQ(layout.rank[v], r) << "rank is not the inverse of order";
  }
  for (uint32_t r = 1; r < g.NumNodes(); ++r) {
    const NodeId prev = layout.order[r - 1];
    const NodeId cur = layout.order[r];
    // Descending degree, ties broken by ascending id.
    EXPECT_TRUE(g.Degree(prev) > g.Degree(cur) ||
                (g.Degree(prev) == g.Degree(cur) && prev < cur))
        << "rank " << r;
  }
}

TEST(RelabelTest, IdsAndNeighborListsUnchanged) {
  Graph g = PowerlawCluster(400, 4, 0.3, 32);
  DegreeOrderedLayout layout = RelabelByDegree(g);
  const Graph& ordered = layout.graph;

  EXPECT_TRUE(ordered.degree_ordered());
  EXPECT_FALSE(g.degree_ordered());
  ASSERT_EQ(ordered.NumNodes(), g.NumNodes());
  EXPECT_EQ(ordered.NumEdges(), g.NumEdges());
  EXPECT_TRUE(std::ranges::equal(ordered.offsets(), g.offsets()));
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_EQ(ordered.Degree(v), g.Degree(v)) << v;
    EXPECT_TRUE(std::ranges::equal(ordered.Neighbors(v), g.Neighbors(v)))
        << v;
  }
  // Sorted-row lookups still work on the permuted placement.
  for (NodeId v = 0; v < std::min<NodeId>(g.NumNodes(), 50); ++v) {
    for (NodeId u : g.Neighbors(v)) {
      EXPECT_TRUE(ordered.HasEdge(v, u)) << v << "-" << u;
    }
  }
}

TEST(RelabelTest, RowsArePhysicallyPackedInRankOrder) {
  Graph g = PowerlawCluster(300, 3, 0.5, 33);
  DegreeOrderedLayout layout = RelabelByDegree(g);

  // The hottest (highest-degree) row sits at the front of the adjacency
  // array, and ranks tile it left to right with no gaps.
  uint64_t cursor = 0;
  for (uint32_t r = 0; r < g.NumNodes(); ++r) {
    const NodeId v = layout.order[r];
    EXPECT_EQ(layout.graph.RowStart(v), cursor) << "rank " << r;
    cursor += layout.graph.Degree(v);
  }
  EXPECT_EQ(cursor, layout.graph.adjacency().size());
}

TEST(RelabelTest, EveryRegistryBackendIsBitIdentical) {
  // The acceptance contract: for every registered backend — including the
  // randomized ones, whose walk trajectories depend on neighbor-list order
  // — the relabeled graph answers bit-for-bit the same scores per (engine
  // seed, query index). This is what lets a service apply the layout pass
  // at load time without perturbing results, caches, or determinism tests.
  Graph g = PowerlawCluster(300, 3, 0.3, 34);
  DegreeOrderedLayout layout = RelabelByDegree(g);
  const ApproxParams params = TestParams();

  BackendContext context;
  context.parallel_threads = 2;
  const std::vector<NodeId> seeds = {0, 7, 42, 137, 299};

  for (const std::string& name : EstimatorRegistry::Global().Names()) {
    SCOPED_TRACE(name);
    BackendSpec spec;
    spec.name = name;
    spec.context = context;
    QueryExecutor standard(g, params, /*base_seed=*/91, spec);
    QueryExecutor ordered(layout.graph, params, /*base_seed=*/91, spec);
    for (uint64_t qi = 0; qi < seeds.size(); ++qi) {
      const SparseVector a = standard.Answer(seeds[qi], qi);
      const SparseVector b = ordered.Answer(seeds[qi], qi);
      ASSERT_EQ(a.nnz(), b.nnz()) << "query " << qi;
      EXPECT_EQ(a.degree_offset(), b.degree_offset());
      for (const auto& e : a.entries()) {
        // Exact equality, not almost-equal: the layouts must produce the
        // same arithmetic in the same order.
        EXPECT_EQ(b.Get(e.key), e.value) << "node " << e.key;
      }
    }
  }
}

TEST(RelabelTest, RelabelOfRelabelIsStable) {
  Graph g = PowerlawCluster(200, 3, 0.4, 35);
  DegreeOrderedLayout once = RelabelByDegree(g);
  DegreeOrderedLayout twice = RelabelByDegree(once.graph);
  EXPECT_EQ(twice.order, once.order);
  EXPECT_TRUE(
      std::ranges::equal(twice.graph.adjacency(), once.graph.adjacency()));
  EXPECT_TRUE(
      std::ranges::equal(twice.graph.row_starts(), once.graph.row_starts()));
}

}  // namespace
}  // namespace hkpr
