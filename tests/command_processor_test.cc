// Tests for the shared command dispatcher (net/command_processor.h) and
// the validated parsing helpers (common/parse.h) it is built on.
//
// The ParsePlanTokens cases are regression tests for the input-parsing
// bugs the hardening fixed: an empty value ("t=") used to fall through
// to a misleading "unknown token" error, duplicate keys ("t=1 t=2")
// silently last-won, and "backend=" was treated as a bare token. The
// parse.h cases pin the atoi/atoll replacement semantics: "-1" and "abc"
// are rejected instead of wrapping to 4294967295 / becoming 0.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "common/parse.h"
#include "graph/generators.h"
#include "net/command_processor.h"
#include "service/graph_store.h"
#include "service/multi_graph_service.h"

namespace hkpr {
namespace {

bool Contains(const std::string& s, const std::string& needle) {
  return s.find(needle) != std::string::npos;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

// ---------------------------------------------------------------------------
// common/parse.h

TEST(ParseUintTest, AcceptsPlainDigits) {
  EXPECT_EQ(ParseUint64("0"), 0u);
  EXPECT_EQ(ParseUint64("42"), 42u);
  EXPECT_EQ(ParseUint64("18446744073709551615"), UINT64_MAX);
  EXPECT_EQ(ParseUint32("4294967295"), UINT32_MAX);
}

TEST(ParseUintTest, RejectsSignsInsteadOfWrapping) {
  // std::atoi("-1") cast to uint32 silently produced 4294967295 — the
  // --workers=-1 bug. Signed input is now an error.
  EXPECT_FALSE(ParseUint64("-1").has_value());
  EXPECT_FALSE(ParseUint64("+1").has_value());
  EXPECT_FALSE(ParseUint32("-4").has_value());
}

TEST(ParseUintTest, RejectsGarbageInsteadOfZero) {
  // std::atoi("abc") silently produced 0 — the --nodes=abc bug.
  EXPECT_FALSE(ParseUint64("abc").has_value());
  EXPECT_FALSE(ParseUint64("12x").has_value());
  EXPECT_FALSE(ParseUint64("1.5").has_value());
  EXPECT_FALSE(ParseUint64("").has_value());
  EXPECT_FALSE(ParseUint64(" 7").has_value());
}

TEST(ParseUintTest, RejectsOverflow) {
  EXPECT_FALSE(ParseUint64("18446744073709551616").has_value());  // 2^64
  EXPECT_FALSE(ParseUint64("99999999999999999999999").has_value());
  EXPECT_FALSE(ParseUint32("4294967296").has_value());  // 2^32
  EXPECT_EQ(ParseUint64("65535", 65535), 65535u);
  EXPECT_FALSE(ParseUint64("65536", 65535).has_value());
}

TEST(ParseDoubleTest, AcceptsUsualFormsRejectsJunk) {
  EXPECT_DOUBLE_EQ(*ParseDouble("1.5"), 1.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("-2"), -2.0);
  EXPECT_DOUBLE_EQ(*ParseDouble("1e-3"), 1e-3);
  EXPECT_FALSE(ParseDouble("").has_value());
  EXPECT_FALSE(ParseDouble("abc").has_value());
  EXPECT_FALSE(ParseDouble("1.5x").has_value());
  EXPECT_FALSE(ParseDouble("nan").has_value());
  EXPECT_FALSE(ParseDouble("inf").has_value());
}

// ---------------------------------------------------------------------------
// ParsePlanTokens hardening

std::string PlanError(const std::string& tokens, bool with_tenant = false) {
  std::istringstream in(tokens);
  PlanOverrides plan;
  std::string tenant;
  std::string error;
  const bool ok = ParsePlanTokens(in, &plan, with_tenant ? &tenant : nullptr,
                                  &error);
  EXPECT_FALSE(ok) << "\"" << tokens << "\" unexpectedly parsed";
  return error;
}

TEST(ParsePlanTokensTest, ValidTokensParse) {
  std::istringstream in("t=5 eps=0.5 delta=1e-4 backend=auto");
  PlanOverrides plan;
  std::string error;
  ASSERT_TRUE(ParsePlanTokens(in, &plan, nullptr, &error)) << error;
  EXPECT_DOUBLE_EQ(*plan.t, 5.0);
  EXPECT_DOUBLE_EQ(*plan.eps_r, 0.5);
  EXPECT_DOUBLE_EQ(*plan.delta, 1e-4);
  EXPECT_EQ(plan.backend, "auto");
}

TEST(ParsePlanTokensTest, EmptyValueIsItsOwnError) {
  // Regression: "t=" used to fall through to the generic "unknown token"
  // message, hiding what was actually wrong.
  EXPECT_TRUE(Contains(PlanError("t="), "empty value"));
  EXPECT_TRUE(Contains(PlanError("backend="), "empty value"));
  EXPECT_TRUE(Contains(PlanError("eps= t=1"), "empty value"));
}

TEST(ParsePlanTokensTest, DuplicateKeysAreRejected) {
  // Regression: "t=1 t=2" used to silently take the last value.
  const std::string error = PlanError("t=1 t=2");
  EXPECT_TRUE(Contains(error, "duplicate key")) << error;
  EXPECT_TRUE(Contains(error, "\"t\"")) << error;
  EXPECT_TRUE(Contains(PlanError("backend=tea+ backend=auto"),
                       "duplicate key"));
}

TEST(ParsePlanTokensTest, UnknownAndMalformedKeepTheirPrefixes) {
  // These exact prefixes are part of the protocol surface (asserted by
  // the server protocol tests).
  EXPECT_TRUE(StartsWith(PlanError("bogus=1"), "unknown token"));
  EXPECT_TRUE(StartsWith(PlanError("notakv"), "unknown token"));
  EXPECT_TRUE(StartsWith(PlanError("t=abc"), "malformed value"));
  EXPECT_TRUE(StartsWith(PlanError("backend=nosuch"), "unknown backend"));
}

TEST(ParsePlanTokensTest, TenantTokenOnlyWhereAllowed) {
  {
    std::istringstream in("tenant=alice t=2");
    PlanOverrides plan;
    std::string tenant = "default";
    std::string error;
    ASSERT_TRUE(ParsePlanTokens(in, &plan, &tenant, &error)) << error;
    EXPECT_EQ(tenant, "alice");
    EXPECT_DOUBLE_EQ(*plan.t, 2.0);
  }
  // The params command path passes no tenant slot: tenant= is unknown
  // there.
  EXPECT_TRUE(StartsWith(PlanError("tenant=alice"), "unknown token"));
  EXPECT_TRUE(Contains(PlanError("tenant=", /*with_tenant=*/true),
                       "empty value"));
  EXPECT_TRUE(Contains(PlanError("tenant=a tenant=b", /*with_tenant=*/true),
                       "duplicate key"));
}

// ---------------------------------------------------------------------------
// CommandProcessor end-to-end (in-process, no sockets)

class CommandProcessorTest : public ::testing::Test {
 protected:
  CommandProcessorTest() {
    store_.Publish("default", PowerlawCluster(500, 4, 0.3, 7));
    params_.t = 5.0;
    params_.eps_r = 0.5;
    params_.delta = 1.0 / 500.0;
    params_.p_f = 1e-6;
    MultiGraphOptions options;
    options.worker_budget = 2;
    service_ = std::make_unique<MultiGraphService>(store_, params_, 7,
                                                   options);
    processor_ = std::make_unique<CommandProcessor>(store_, *service_,
                                                    tenants_, params_,
                                                    "default");
  }

  std::string Run(ClientSession& session, const std::string& line) {
    return processor_->Execute(session, line).output;
  }

  GraphStore store_;
  ApproxParams params_;
  TenantRegistry tenants_;
  std::unique_ptr<MultiGraphService> service_;
  std::unique_ptr<CommandProcessor> processor_;
};

TEST_F(CommandProcessorTest, QueryAndErrorsMatchProtocolShape) {
  ClientSession session = processor_->NewSession();
  EXPECT_TRUE(StartsWith(Run(session, "query 3"), "ok graph=default"));
  EXPECT_TRUE(StartsWith(Run(session, "query"), "err usage:"));
  EXPECT_TRUE(StartsWith(Run(session, "query 3 t="), "err empty value"));
  EXPECT_TRUE(StartsWith(Run(session, "query 3 t=1 t=2"),
                         "err duplicate key"));
  EXPECT_TRUE(StartsWith(Run(session, "wibble"), "err unknown command"));
  EXPECT_TRUE(Run(session, "").empty());
}

TEST_F(CommandProcessorTest, QuitSetsTheFlagWithoutOutput) {
  ClientSession session = processor_->NewSession();
  const CommandResult result = processor_->Execute(session, "quit");
  EXPECT_TRUE(result.quit);
  EXPECT_TRUE(result.output.empty());
  EXPECT_TRUE(processor_->Execute(session, "exit").quit);
}

TEST_F(CommandProcessorTest, SessionsAreIndependent) {
  ClientSession a = processor_->NewSession();
  ClientSession b = processor_->NewSession();
  EXPECT_TRUE(StartsWith(Run(a, "tenant alice"), "ok tenant=alice"));
  EXPECT_EQ(a.tenant, "alice");
  EXPECT_EQ(b.tenant, "default");
  EXPECT_TRUE(StartsWith(Run(b, "tenant"), "ok tenant=default"));
}

TEST_F(CommandProcessorTest, TenantSetValidatesAndLists) {
  ClientSession session = processor_->NewSession();
  EXPECT_TRUE(StartsWith(
      Run(session, "tenant set gold rate=100 burst=10 quota=8 priority=high"),
      "ok tenant=gold"));
  EXPECT_TRUE(StartsWith(Run(session, "tenant set bad rate=abc"),
                         "err malformed value"));
  EXPECT_TRUE(StartsWith(Run(session, "tenant set bad priority=urgent"),
                         "err malformed value"));
  EXPECT_TRUE(StartsWith(Run(session, "tenant set bad rate="),
                         "err empty value"));
  EXPECT_TRUE(StartsWith(Run(session, "tenant set bad wat=1"),
                         "err unknown token"));
  EXPECT_TRUE(StartsWith(Run(session, "tenant set"), "err usage:"));
  const std::string list = Run(session, "tenant list");
  EXPECT_TRUE(Contains(list, "tenant=gold priority=high rate_qps=100"));
  EXPECT_TRUE(Contains(list, "ok tenants="));
}

TEST_F(CommandProcessorTest, ThrottledTenantGetsDistinctError) {
  ClientSession session = processor_->NewSession();
  ASSERT_TRUE(StartsWith(
      Run(session, "tenant set limited rate=0.001 burst=1 priority=high"),
      "ok"));
  ASSERT_TRUE(StartsWith(Run(session, "tenant limited"), "ok"));
  // The single burst token admits one query; the next is throttled with
  // the tenant-specific error, not a generic rejection.
  EXPECT_TRUE(StartsWith(Run(session, "query 1"), "ok "));
  EXPECT_TRUE(StartsWith(Run(session, "query 2"),
                         "err tenant-throttled tenant=limited"));
  // Another session under the default tenant is unaffected.
  ClientSession other = processor_->NewSession();
  EXPECT_TRUE(StartsWith(Run(other, "query 3"), "ok "));
  const TenantStatsSnapshot s = tenants_.StatsFor("limited");
  EXPECT_EQ(s.admitted, 1u);
  EXPECT_EQ(s.throttled, 1u);
}

TEST_F(CommandProcessorTest, QuotaTenantGetsDistinctError) {
  ClientSession session = processor_->NewSession();
  ASSERT_TRUE(StartsWith(Run(session, "tenant set tiny quota=1"), "ok"));
  // The synchronous Execute path settles each query before returning, so
  // force the quota by marking one in flight directly.
  ASSERT_EQ(tenants_.Admit("tiny", 0, 1024), TenantAdmission::kAdmitted);
  EXPECT_TRUE(StartsWith(Run(session, "query 1 tenant=tiny"),
                         "err tenant-quota tenant=tiny"));
  tenants_.OnComplete("tiny", true, 0.001);
  EXPECT_TRUE(StartsWith(Run(session, "query 1 tenant=tiny"), "ok "));
}

TEST_F(CommandProcessorTest, PerLineTenantTokenOverridesSession) {
  ClientSession session = processor_->NewSession();
  ASSERT_TRUE(StartsWith(Run(session, "query 5 tenant=burst"), "ok "));
  EXPECT_EQ(tenants_.StatsFor("burst").admitted, 1u);
  EXPECT_EQ(session.tenant, "default");  // the token is per line only
  ASSERT_TRUE(StartsWith(Run(session, "query 6"), "ok "));
  EXPECT_EQ(tenants_.StatsFor("default").admitted, 1u);
}

TEST_F(CommandProcessorTest, MetricsIncludeTenantRows) {
  ClientSession session = processor_->NewSession();
  ASSERT_TRUE(StartsWith(Run(session, "query 2"), "ok "));
  const std::string metrics = Run(session, "metrics");
  EXPECT_TRUE(Contains(metrics, "hkpr_tenant_admitted_total{tenant=\"default\"} 1"));
  EXPECT_TRUE(Contains(metrics, "hkpr_tenant_completed_total{tenant=\"default\"} 1"));
  EXPECT_TRUE(Contains(metrics, "hkpr_tenant_latency_ms{tenant=\"default\",quantile=\"0.5\"}"));
  EXPECT_TRUE(Contains(metrics, "hkpr_submitted_total{graph=\"default\"} 1"));
  // The terminating protocol line's count covers the tenant rows too.
  EXPECT_TRUE(Contains(metrics, "ok metrics graphs=1 lines="));
}

TEST_F(CommandProcessorTest, GraphAndStatsCommandsStillWork) {
  ClientSession session = processor_->NewSession();
  EXPECT_TRUE(StartsWith(Run(session, "graph list"), "ok graphs=1"));
  EXPECT_TRUE(StartsWith(Run(session, "graph use nosuch"),
                         "err unknown graph"));
  EXPECT_TRUE(StartsWith(Run(session, "backend"), "ok backend="));
  EXPECT_TRUE(StartsWith(Run(session, "stats"), "ok scope=all"));
  EXPECT_TRUE(StartsWith(Run(session, "stats --json"), "ok {\"scope\":\"all\""));
  EXPECT_TRUE(StartsWith(Run(session, "invalidate"), "ok caches"));
  EXPECT_TRUE(StartsWith(Run(session, "params default"),
                         "ok graph=default backend=default"));
}

}  // namespace
}  // namespace hkpr
