// Accuracy and behaviour tests for Monte-Carlo, TEA and TEA+ against dense
// ground truth (Theorems 1 and 3).

#include <gtest/gtest.h>

#include <cmath>

#include "clustering/metrics.h"
#include "graph/generators.h"
#include "hkpr/monte_carlo.h"
#include "hkpr/power_method.h"
#include "hkpr/push_estimator.h"
#include "hkpr/tea.h"
#include "hkpr/tea_plus.h"
#include "test_util.h"

namespace hkpr {
namespace {

ApproxParams TestParams(double delta) {
  ApproxParams p;
  p.t = 5.0;
  p.eps_r = 0.5;
  p.delta = delta;
  p.p_f = 1e-4;
  return p;
}

TEST(MonteCarloTest, ApproxGuaranteeHolds) {
  Graph g = PowerlawCluster(300, 3, 0.3, 1);
  const ApproxParams params = TestParams(1e-3);
  MonteCarloEstimator mc(g, params, /*seed=*/7);
  const NodeId query = 11;
  const std::vector<double> exact = ExactHkpr(g, params.t, query);
  SparseVector est = mc.Estimate(query);
  // Slack 1.2 absorbs the pf-probability mass of near-threshold nodes.
  EXPECT_EQ(CountApproxViolations(g, est, exact, params.eps_r, params.delta,
                                  /*slack=*/1.2),
            0u);
}

TEST(MonteCarloTest, EstimateSumsToOne) {
  Graph g = testing::MakeBarbell(5);
  MonteCarloEstimator mc(g, TestParams(1e-2), 8);
  SparseVector est = mc.Estimate(0);
  EXPECT_NEAR(est.Sum(), 1.0, 1e-9);  // every walk lands somewhere
}

TEST(MonteCarloTest, StatsPopulated) {
  Graph g = testing::MakeBarbell(5);
  MonteCarloEstimator mc(g, TestParams(1e-2), 9);
  EstimatorStats stats;
  mc.Estimate(0, &stats);
  EXPECT_EQ(stats.num_walks, mc.NumWalks());
  EXPECT_GT(stats.walk_steps, 0u);
  EXPECT_GT(stats.peak_bytes, 0u);
  EXPECT_EQ(stats.push_operations, 0u);
}

TEST(MonteCarloTest, DeterministicGivenSeed) {
  Graph g = testing::MakeBarbell(4);
  const ApproxParams params = TestParams(1e-2);
  MonteCarloEstimator a(g, params, 42), b(g, params, 42);
  SparseVector ea = a.Estimate(1), eb = b.Estimate(1);
  EXPECT_EQ(ea.nnz(), eb.nnz());
  for (const auto& e : ea.entries()) {
    EXPECT_DOUBLE_EQ(eb.Get(e.key), e.value);
  }
}

TEST(TeaTest, ApproxGuaranteeHolds) {
  Graph g = PowerlawCluster(300, 3, 0.3, 2);
  const ApproxParams params = TestParams(1e-3);
  TeaEstimator tea(g, params, 10);
  const NodeId query = 23;
  const std::vector<double> exact = ExactHkpr(g, params.t, query);
  SparseVector est = tea.Estimate(query);
  EXPECT_EQ(CountApproxViolations(g, est, exact, params.eps_r, params.delta,
                                  1.2),
            0u);
}

TEST(TeaTest, FewerWalksThanMonteCarlo) {
  Graph g = PowerlawCluster(500, 4, 0.3, 3);
  const ApproxParams params = TestParams(1e-4);
  MonteCarloEstimator mc(g, params, 11);
  TeaEstimator tea(g, params, 11);
  EstimatorStats mc_stats, tea_stats;
  mc.Estimate(5, &mc_stats);
  tea.Estimate(5, &tea_stats);
  // This is TEA's whole point: alpha < 1 scales the walk count down.
  EXPECT_LT(tea_stats.num_walks, mc_stats.num_walks);
  EXPECT_GT(tea_stats.push_operations, 0u);
}

TEST(TeaTest, RmaxScaleTradesPushForWalks) {
  Graph g = PowerlawCluster(500, 4, 0.3, 4);
  const ApproxParams params = TestParams(1e-4);
  TeaOptions fine, coarse;
  fine.r_max_scale = 0.1;    // smaller threshold -> more push, fewer walks
  coarse.r_max_scale = 10.0;
  TeaEstimator tea_fine(g, params, 12, fine);
  TeaEstimator tea_coarse(g, params, 12, coarse);
  EstimatorStats fine_stats, coarse_stats;
  tea_fine.Estimate(5, &fine_stats);
  tea_coarse.Estimate(5, &coarse_stats);
  EXPECT_GT(fine_stats.push_operations, coarse_stats.push_operations);
  EXPECT_LT(fine_stats.num_walks, coarse_stats.num_walks);
}

TEST(TeaPlusTest, ApproxGuaranteeHolds) {
  Graph g = PowerlawCluster(300, 3, 0.3, 5);
  const ApproxParams params = TestParams(1e-3);
  TeaPlusEstimator tea_plus(g, params, 13);
  const NodeId query = 42;
  const std::vector<double> exact = ExactHkpr(g, params.t, query);
  SparseVector est = tea_plus.Estimate(query);
  EXPECT_EQ(CountApproxViolations(g, est, exact, params.eps_r, params.delta,
                                  1.2),
            0u);
}

TEST(TeaPlusTest, EarlyExitOnLooseAccuracy) {
  Graph g = testing::MakeBarbell(8);
  ApproxParams params = TestParams(0.01);  // very loose
  TeaPlusEstimator tea_plus(g, params, 14);
  EstimatorStats stats;
  tea_plus.Estimate(0, &stats);
  EXPECT_TRUE(stats.early_exit);
  EXPECT_EQ(stats.num_walks, 0u);
}

TEST(TeaPlusTest, EarlyExitResultSatisfiesTheorem2) {
  Graph g = testing::MakeBarbell(8);
  ApproxParams params = TestParams(0.01);
  TeaPlusEstimator tea_plus(g, params, 15);
  EstimatorStats stats;
  SparseVector est = tea_plus.Estimate(0, &stats);
  ASSERT_TRUE(stats.early_exit);
  const std::vector<double> exact = ExactHkpr(g, params.t, 0);
  EXPECT_LE(MaxNormalizedError(g, est, exact),
            params.eps_r * params.delta + 1e-12);
}

TEST(TeaPlusTest, ResidueReductionCutsWalks) {
  Graph g = PowerlawCluster(800, 5, 0.3, 6);
  const ApproxParams params = TestParams(1e-5);
  // c = 1 keeps the hop cap small so substantial residue mass parks at the
  // cap and the walk phase actually runs (with a generous cap the push
  // phase alone satisfies Inequality (11) on a graph this small).
  TeaPlusOptions with, without;
  with.c = 1.0;
  without.c = 1.0;
  without.enable_residue_reduction = false;
  TeaPlusEstimator reduced(g, params, 16, with);
  TeaPlusEstimator unreduced(g, params, 16, without);
  EstimatorStats reduced_stats, unreduced_stats;
  reduced.Estimate(3, &reduced_stats);
  unreduced.Estimate(3, &unreduced_stats);
  ASSERT_GT(unreduced_stats.num_walks, 0u);
  EXPECT_LT(reduced_stats.num_walks, unreduced_stats.num_walks);
}

TEST(TeaPlusTest, OffsetAttachedAfterWalkPhase) {
  Graph g = PowerlawCluster(800, 5, 0.3, 7);
  const ApproxParams params = TestParams(1e-5);
  TeaPlusEstimator tea_plus(g, params, 17);
  EstimatorStats stats;
  SparseVector est = tea_plus.Estimate(3, &stats);
  if (!stats.early_exit) {
    EXPECT_DOUBLE_EQ(est.degree_offset(),
                     params.eps_r * params.delta / 2.0);
  } else {
    EXPECT_DOUBLE_EQ(est.degree_offset(), 0.0);
  }
}

TEST(TeaPlusTest, UniformBetaStillAccurate) {
  // The ablation mode must stay within the guarantee (it reduces residues
  // by at most the same total).
  Graph g = PowerlawCluster(300, 3, 0.3, 8);
  const ApproxParams params = TestParams(1e-3);
  TeaPlusOptions options;
  options.beta_mode = BetaMode::kUniform;
  TeaPlusEstimator tea_plus(g, params, 18, options);
  const std::vector<double> exact = ExactHkpr(g, params.t, 9);
  SparseVector est = tea_plus.Estimate(9);
  EXPECT_EQ(CountApproxViolations(g, est, exact, params.eps_r, params.delta,
                                  1.2),
            0u);
}

TEST(TeaPlusTest, HopCapFollowsC) {
  Graph g = PowerlawCluster(500, 4, 0.3, 9);
  const ApproxParams params = TestParams(1e-4);
  TeaPlusOptions c1, c4;
  c1.c = 1.0;
  c4.c = 4.0;
  TeaPlusEstimator a(g, params, 19, c1), b(g, params, 19, c4);
  EXPECT_LT(a.hop_cap(), b.hop_cap());
}

TEST(TeaPlusTest, WalkCountBoundedByOmega) {
  // n_r = alpha * omega with alpha <= 1.
  Graph g = PowerlawCluster(500, 4, 0.3, 10);
  const ApproxParams params = TestParams(1e-4);
  TeaPlusEstimator tea_plus(g, params, 20);
  EstimatorStats stats;
  tea_plus.Estimate(7, &stats);
  EXPECT_LE(static_cast<double>(stats.num_walks), tea_plus.omega() + 1.0);
}

TEST(PushOnlyTest, DeterministicGuarantee) {
  Graph g = PowerlawCluster(300, 3, 0.3, 11);
  const ApproxParams params = TestParams(1e-3);
  PushOnlyEstimator est(g, params);
  const std::vector<double> exact = ExactHkpr(g, params.t, 7);
  SparseVector rho = est.Estimate(7);
  // Deterministic algorithm: the absolute bound must hold with NO slack
  // beyond floating point (failure probability is zero).
  EXPECT_LE(MaxNormalizedError(g, rho, exact),
            params.eps_r * params.delta + 1e-12);
  EXPECT_EQ(CountApproxViolations(g, rho, exact, params.eps_r, params.delta,
                                  1.0 + 1e-9),
            0u);
}

TEST(PushOnlyTest, NoWalksEver) {
  Graph g = PowerlawCluster(300, 3, 0.3, 12);
  PushOnlyEstimator est(g, TestParams(1e-4));
  EstimatorStats stats;
  est.Estimate(3, &stats);
  EXPECT_EQ(stats.num_walks, 0u);
  EXPECT_GT(stats.push_operations, 0u);
}

TEST(PushOnlyTest, MorePushWorkThanTeaPlusAtTightDelta) {
  // The deterministic corner pays for certainty with extra push work: it
  // must drain residues over the full hop range, whereas TEA+ stops at its
  // hop cap / budget and hands the remainder to walks.
  Graph g = PowerlawCluster(1000, 5, 0.3, 13);
  const ApproxParams params = TestParams(1e-6);
  PushOnlyEstimator push_only(g, params);
  TeaPlusOptions options;
  options.c = 1.0;  // walk-heavy TEA+ for a sharp contrast
  TeaPlusEstimator tea_plus(g, params, 14, options);
  EstimatorStats push_stats, tea_stats;
  push_only.Estimate(5, &push_stats);
  tea_plus.Estimate(5, &tea_stats);
  EXPECT_GT(push_stats.push_operations, tea_stats.push_operations);
  EXPECT_GT(tea_stats.num_walks, 0u);  // TEA+ really did trade push for walks
}

TEST(EstimatorInterfaceTest, NamesAreDistinct) {
  Graph g = testing::MakeBarbell(4);
  const ApproxParams params = TestParams(1e-2);
  MonteCarloEstimator mc(g, params, 1);
  TeaEstimator tea(g, params, 1);
  TeaPlusEstimator tea_plus(g, params, 1);
  EXPECT_EQ(mc.name(), "Monte-Carlo");
  EXPECT_EQ(tea.name(), "TEA");
  EXPECT_EQ(tea_plus.name(), "TEA+");
}

}  // namespace
}  // namespace hkpr
