// Tests for the synthetic graph generators.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "graph/generators.h"
#include "graph/stats.h"
#include "graph/subgraph.h"

namespace hkpr {
namespace {

/// Average local clustering coefficient over nodes with degree >= 2.
double AverageClustering(const Graph& g) {
  double sum = 0.0;
  uint32_t counted = 0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    const uint32_t d = g.Degree(v);
    if (d < 2) continue;
    uint64_t links = 0;
    auto nbrs = g.Neighbors(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      for (size_t j = i + 1; j < nbrs.size(); ++j) {
        if (g.HasEdge(nbrs[i], nbrs[j])) ++links;
      }
    }
    sum += 2.0 * static_cast<double>(links) / (static_cast<double>(d) * (d - 1));
    ++counted;
  }
  return counted > 0 ? sum / counted : 0.0;
}

TEST(ErdosRenyiTest, GnmExactEdgeCount) {
  Graph g = ErdosRenyiGnm(1000, 5000, 1);
  EXPECT_EQ(g.NumNodes(), 1000u);
  EXPECT_EQ(g.NumEdges(), 5000u);
}

TEST(ErdosRenyiTest, GnmNoDuplicateEdges) {
  Graph g = ErdosRenyiGnm(50, 600, 2);
  EXPECT_EQ(g.NumEdges(), 600u);  // dedup would shrink this if broken
}

TEST(ErdosRenyiTest, GnpExpectedEdges) {
  const uint32_t n = 2000;
  const double p = 0.005;
  Graph g = ErdosRenyiGnp(n, p, 3);
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(g.NumEdges()), expected,
              5.0 * std::sqrt(expected));
}

TEST(ErdosRenyiTest, GnpZeroProbability) {
  Graph g = ErdosRenyiGnp(100, 0.0, 4);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_EQ(g.NumNodes(), 100u);
}

TEST(BarabasiAlbertTest, SizeAndConnectivity) {
  Graph g = BarabasiAlbert(2000, 3, 5);
  EXPECT_EQ(g.NumNodes(), 2000u);
  // Every non-core node adds up to 3 edges (dedup may remove a few).
  EXPECT_GT(g.NumEdges(), 2000u * 3u * 8 / 10);
  EXPECT_LE(g.NumEdges(), 2000u * 3u);
  EXPECT_EQ(LargestComponent(g).size(), 2000u);
}

TEST(BarabasiAlbertTest, HeavyTail) {
  Graph g = BarabasiAlbert(5000, 2, 6);
  // Preferential attachment must produce hubs far above the average degree.
  EXPECT_GT(g.MaxDegree(), 20u * static_cast<uint32_t>(g.AverageDegree()));
}

TEST(PowerlawClusterTest, TriadFormationRaisesClustering) {
  Graph ba = PowerlawCluster(3000, 4, 0.0, 7);
  Graph plc = PowerlawCluster(3000, 4, 0.9, 7);
  EXPECT_GT(AverageClustering(plc), 2.0 * AverageClustering(ba));
}

TEST(PowerlawClusterTest, ConnectedAndSized) {
  Graph g = PowerlawCluster(1000, 5, 0.3, 8);
  EXPECT_EQ(g.NumNodes(), 1000u);
  EXPECT_EQ(LargestComponent(g).size(), 1000u);
  EXPECT_NEAR(g.AverageDegree(), 10.0, 1.5);
}

TEST(Grid3DTest, TorusAllDegreesSix) {
  Graph g = Grid3D(5, 5, 5, /*torus=*/true);
  EXPECT_EQ(g.NumNodes(), 125u);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_EQ(g.Degree(v), 6u) << v;
  }
  EXPECT_EQ(g.NumEdges(), 125u * 6u / 2u);
}

TEST(Grid3DTest, OpenGridBoundaryDegrees) {
  Graph g = Grid3D(3, 3, 3, /*torus=*/false);
  EXPECT_EQ(g.NumNodes(), 27u);
  // Corner nodes have degree 3, the center has degree 6.
  uint32_t min_deg = 100, max_deg = 0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    min_deg = std::min(min_deg, g.Degree(v));
    max_deg = std::max(max_deg, g.Degree(v));
  }
  EXPECT_EQ(min_deg, 3u);
  EXPECT_EQ(max_deg, 6u);
}

TEST(Grid3DTest, TorusIsConnected) {
  Graph g = Grid3D(4, 5, 3, /*torus=*/true);
  EXPECT_EQ(LargestComponent(g).size(), g.NumNodes());
}

TEST(RmatTest, SizeAndSkew) {
  Graph g = Rmat(12, 16.0, 9);
  EXPECT_EQ(g.NumNodes(), 4096u);
  EXPECT_GT(g.NumEdges(), 20000u);
  // R-MAT's recursive skew should produce hubs.
  EXPECT_GT(g.MaxDegree(), 100u);
}

TEST(RmatTest, DeterministicInSeed) {
  Graph a = Rmat(10, 8.0, 11);
  Graph b = Rmat(10, 8.0, 11);
  EXPECT_TRUE(std::ranges::equal(a.adjacency(), b.adjacency()));
  Graph c = Rmat(10, 8.0, 12);
  EXPECT_FALSE(std::ranges::equal(a.adjacency(), c.adjacency()));
}

TEST(PlantedPartitionTest, StructureAndGroundTruth) {
  CommunityGraph cg = PlantedPartition(8, 50, 0.3, 0.005, 13);
  EXPECT_EQ(cg.graph.NumNodes(), 400u);
  ASSERT_EQ(cg.communities.NumCommunities(), 8u);
  for (size_t c = 0; c < 8; ++c) {
    EXPECT_EQ(cg.communities.Community(c).size(), 50u);
  }
}

TEST(PlantedPartitionTest, IntraDenserThanInter) {
  CommunityGraph cg = PlantedPartition(6, 60, 0.25, 0.004, 14);
  uint64_t intra = 0;
  for (size_t c = 0; c < cg.communities.NumCommunities(); ++c) {
    intra += InternalEdgeCount(cg.graph, cg.communities.Community(c));
  }
  const uint64_t inter = cg.graph.NumEdges() - intra;
  EXPECT_GT(intra, inter * 2);
}

TEST(PlantedPartitionTest, ExpectedDensities) {
  const double p_in = 0.2, p_out = 0.002;
  CommunityGraph cg = PlantedPartition(5, 80, p_in, p_out, 15);
  const auto& c0 = cg.communities.Community(0);
  const double pairs = 80.0 * 79.0 / 2.0;
  const double expected_intra = p_in * pairs;
  EXPECT_NEAR(static_cast<double>(InternalEdgeCount(cg.graph, c0)),
              expected_intra, 6.0 * std::sqrt(expected_intra));
}

TEST(LfrLikeTest, PartitionCoversAllNodes) {
  LfrOptions options;
  options.n = 2000;
  CommunityGraph cg = LfrLike(options, 16);
  EXPECT_EQ(cg.graph.NumNodes(), options.n);
  size_t total = 0;
  for (const auto& c : cg.communities.communities()) total += c.size();
  EXPECT_EQ(total, options.n);  // single-membership partition
}

TEST(LfrLikeTest, DegreesWithinBounds) {
  LfrOptions options;
  options.n = 3000;
  options.min_degree = 4;
  options.max_degree = 40;
  CommunityGraph cg = LfrLike(options, 17);
  // Configuration-model dedup can lower degrees slightly; never raise them.
  for (NodeId v = 0; v < cg.graph.NumNodes(); ++v) {
    EXPECT_LE(cg.graph.Degree(v), options.max_degree);
  }
  EXPECT_GT(cg.graph.AverageDegree(), 0.7 * options.min_degree);
}

TEST(LfrLikeTest, MixingParameterApproximatelyHonored) {
  LfrOptions options;
  options.n = 4000;
  options.mu = 0.2;
  CommunityGraph cg = LfrLike(options, 18);
  // Measure the realized fraction of inter-community edge endpoints.
  uint64_t inter_arcs = 0;
  for (NodeId v = 0; v < cg.graph.NumNodes(); ++v) {
    const int64_t cv = cg.communities.CommunityOf(v, cg.graph.NumNodes());
    for (NodeId u : cg.graph.Neighbors(v)) {
      if (cg.communities.CommunityOf(u, cg.graph.NumNodes()) != cv) {
        ++inter_arcs;
      }
    }
  }
  const double realized =
      static_cast<double>(inter_arcs) / static_cast<double>(cg.graph.Volume());
  EXPECT_NEAR(realized, options.mu, 0.1);
}

TEST(LfrLikeTest, CommunitySizesWithinBounds) {
  LfrOptions options;
  options.n = 3000;
  options.min_community = 25;
  options.max_community = 250;
  CommunityGraph cg = LfrLike(options, 19);
  for (const auto& c : cg.communities.communities()) {
    EXPECT_GE(c.size(), 2u);  // a trailing sliver may merge below min
    EXPECT_LE(c.size(), options.max_community + options.min_community);
  }
}

TEST(WattsStrogatzTest, UnrewiredLatticeDegrees) {
  Graph g = WattsStrogatz(100, 3, 0.0, 1);
  EXPECT_EQ(g.NumNodes(), 100u);
  for (NodeId v = 0; v < g.NumNodes(); ++v) EXPECT_EQ(g.Degree(v), 6u);
}

TEST(WattsStrogatzTest, RewiringPreservesEdgeBudget) {
  Graph g = WattsStrogatz(500, 4, 0.3, 2);
  // Rewiring can only drop edges through dedup, never add.
  EXPECT_LE(g.NumEdges(), 500u * 4u);
  EXPECT_GT(g.NumEdges(), 500u * 4u * 9 / 10);
}

TEST(WattsStrogatzTest, HighClusteringAtZeroRewire) {
  Graph lattice = WattsStrogatz(400, 3, 0.0, 3);
  Graph random_ish = WattsStrogatz(400, 3, 1.0, 3);
  double lattice_cc = 0.0, random_cc = 0.0;
  for (NodeId v = 0; v < 50; ++v) {
    lattice_cc += LocalClusteringCoefficient(lattice, v);
    random_cc += LocalClusteringCoefficient(random_ish, v);
  }
  EXPECT_GT(lattice_cc, 2.0 * random_cc);
}

TEST(LfrLikeTest, CommunitiesAreAssortative) {
  LfrOptions options;
  options.n = 3000;
  options.mu = 0.15;
  CommunityGraph cg = LfrLike(options, 20);
  // A random community should be far denser inside than a random node set
  // of the same size.
  const auto& community = cg.communities.Community(0);
  const uint64_t internal = InternalEdgeCount(cg.graph, community);
  const uint64_t volume = cg.graph.VolumeOf(community);
  EXPECT_GT(2.0 * static_cast<double>(internal), 0.5 * static_cast<double>(volume));
}

}  // namespace
}  // namespace hkpr
