// Tests for the serving-stack telemetry layer: the lock-free routing
// event ring (round-trip, wrap/drop accounting, concurrent appenders),
// the bounded-cardinality per-backend dimension table, the disabled-mode
// degradation contract, stage tracing through a live AsyncQueryService
// (every completed query captured, monotone stage offsets, cache
// outcomes, the routed flag), and the traced MultiGraphService under
// concurrent hot-swaps (TSan-clean, events survive retirement).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "hkpr/backend.h"
#include "hkpr/queries.h"
#include "hkpr/router.h"
#include "service/async_query_service.h"
#include "service/graph_store.h"
#include "service/multi_graph_service.h"
#include "service/telemetry.h"
#include "test_util.h"

namespace hkpr {
namespace {

ApproxParams TestParams(double delta) {
  ApproxParams p;
  p.t = 5.0;
  p.eps_r = 0.5;
  p.delta = delta;
  p.p_f = 1e-4;
  return p;
}

RoutingEvent MakeEvent(uint64_t index, uint32_t backend_id = 7) {
  RoutingEvent event;
  event.query_index = index;
  event.graph_version = 3;
  event.seed = static_cast<NodeId>(index % 100);
  event.seed_degree = 12;
  event.num_nodes = 1000;
  event.num_edges = 5000;
  event.avg_degree = 5.0;
  event.params = TestParams(1e-4);
  event.backend_id = backend_id;
  event.routed = 1;
  event.cache = static_cast<uint8_t>(CacheOutcome::kMiss);
  event.plan_us = index;
  event.dequeue_us = index + 1;
  event.cache_us = index + 2;
  event.compute_begin_us = index + 2;
  event.compute_end_us = index + 10;
  event.complete_us = index + 11;
  return event;
}

/// Asserts the documented monotonicity of one event's stage offsets and
/// the disjoint-stage identity queue + cache + compute <= complete.
void ExpectMonotoneStages(const RoutingEvent& e) {
  ASSERT_LE(e.plan_us, e.dequeue_us);
  ASSERT_LE(e.dequeue_us, e.cache_us);
  ASSERT_LE(e.cache_us, e.compute_begin_us);
  ASSERT_LE(e.compute_begin_us, e.compute_end_us);
  ASSERT_LE(e.compute_end_us, e.complete_us);
  const uint64_t stage_sum = (e.dequeue_us - e.plan_us) +
                             (e.cache_us - e.dequeue_us) +
                             (e.compute_end_us - e.compute_begin_us);
  ASSERT_LE(stage_sum, e.complete_us);
}

// ---------------------------------------------------------------------------
// RoutingEventLog.

TEST(RoutingEventLogTest, AppendDrainRoundTripPreservesEveryField) {
  RoutingEventLog log(128);
  EXPECT_EQ(log.capacity(), 128u);
  for (uint64_t i = 0; i < 40; ++i) log.Append(MakeEvent(i));

  const std::vector<RoutingEvent> events = log.Drain();
  ASSERT_EQ(events.size(), 40u);
  for (uint64_t i = 0; i < events.size(); ++i) {
    const RoutingEvent& e = events[i];
    EXPECT_EQ(e.query_index, i);  // append (ticket) order
    EXPECT_EQ(e.graph_version, 3u);
    EXPECT_EQ(e.seed, static_cast<NodeId>(i % 100));
    EXPECT_EQ(e.seed_degree, 12u);
    EXPECT_EQ(e.num_nodes, 1000u);
    EXPECT_EQ(e.num_edges, 5000u);
    EXPECT_DOUBLE_EQ(e.avg_degree, 5.0);
    EXPECT_DOUBLE_EQ(e.params.t, 5.0);
    EXPECT_EQ(e.backend_id, 7u);
    EXPECT_EQ(e.routed, 1u);
    EXPECT_EQ(e.cache_outcome(), CacheOutcome::kMiss);
    EXPECT_EQ(e.compute_end_us, i + 10);
  }
  EXPECT_EQ(log.appended(), 40u);
  EXPECT_EQ(log.dropped(), 0u);
  EXPECT_TRUE(log.Drain().empty());  // drained means consumed

  // The next batch after a drain picks up where the tickets left off.
  log.Append(MakeEvent(99));
  const std::vector<RoutingEvent> next = log.Drain();
  ASSERT_EQ(next.size(), 1u);
  EXPECT_EQ(next[0].query_index, 99u);
}

TEST(RoutingEventLogTest, WrapKeepsNewestAndCountsDropped) {
  RoutingEventLog log(1);  // rounded up to the 64-slot minimum
  ASSERT_EQ(log.capacity(), 64u);
  for (uint64_t i = 0; i < 100; ++i) log.Append(MakeEvent(i));

  const std::vector<RoutingEvent> events = log.Drain();
  // The ring laps an un-drained reader: only the newest `capacity`
  // events survive, and the overwritten ones are counted, not silent.
  ASSERT_EQ(events.size(), 64u);
  for (uint64_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].query_index, 36 + i);
  }
  EXPECT_EQ(log.appended(), 100u);
  EXPECT_EQ(log.dropped(), 36u);
}

TEST(RoutingEventLogTest, ConcurrentAppendersLoseNothingWithinCapacity) {
  constexpr uint32_t kThreads = 4;
  constexpr uint64_t kPerThread = 200;
  RoutingEventLog log(kThreads * kPerThread);  // nothing may wrap

  std::vector<std::thread> appenders;
  for (uint32_t t = 0; t < kThreads; ++t) {
    appenders.emplace_back([&log, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        log.Append(MakeEvent(t * kPerThread + i, /*backend_id=*/t));
      }
    });
  }
  for (std::thread& t : appenders) t.join();

  const std::vector<RoutingEvent> events = log.Drain();
  ASSERT_EQ(events.size(), kThreads * kPerThread);
  EXPECT_EQ(log.dropped(), 0u);
  // Every appended event is present exactly once and untorn (its fields
  // are self-consistent functions of query_index).
  std::set<uint64_t> seen;
  for (const RoutingEvent& e : events) {
    EXPECT_TRUE(seen.insert(e.query_index).second);
    EXPECT_EQ(e.backend_id, e.query_index / kPerThread);
    EXPECT_EQ(e.plan_us, e.query_index);
    EXPECT_EQ(e.complete_us, e.query_index + 11);
  }
  EXPECT_EQ(seen.size(), kThreads * kPerThread);
}

// ---------------------------------------------------------------------------
// ServiceTelemetry: backend dimension table + disabled degradation.

TEST(ServiceTelemetryTest, BackendDimensionsBoundedWithOverflowSlot) {
  TelemetryOptions options;
  options.routing_log_capacity = 0;  // dimension table only
  ServiceTelemetry telemetry(options);

  // 20 distinct ids: 16 claim slots, 4 fold into the "other" overflow row.
  for (uint32_t id = 1; id <= 20; ++id) {
    RoutingEvent event = MakeEvent(id, /*backend_id=*/id);
    telemetry.Record(event);
    telemetry.Record(event);  // twice, so per-row completed == 2
  }
  const TelemetrySnapshot snap = telemetry.Snapshot();
  EXPECT_TRUE(snap.enabled);
  ASSERT_EQ(snap.backends.size(), 17u);  // 16 claimed + overflow

  uint64_t total_completed = 0;
  const BackendStatsSnapshot* overflow = nullptr;
  for (const BackendStatsSnapshot& row : snap.backends) {
    total_completed += row.completed;
    if (row.backend == "other") {
      EXPECT_EQ(overflow, nullptr);
      overflow = &row;
    } else {
      EXPECT_EQ(row.completed, 2u);
      EXPECT_EQ(row.computed, 2u);  // MakeEvent records kMiss
      EXPECT_EQ(row.latency_count, 2u);
    }
  }
  ASSERT_NE(overflow, nullptr);
  EXPECT_EQ(overflow->completed, 8u);  // 4 overflowed ids x 2 records
  EXPECT_EQ(total_completed, 40u);     // nothing lost to the bound
}

TEST(ServiceTelemetryTest, DisabledTelemetryDegradesToFlatStats) {
  TelemetryOptions options;
  options.enabled = false;
  ServiceTelemetry telemetry(options);
  EXPECT_FALSE(telemetry.enabled());

  ServiceStatsSnapshot snap;
  telemetry.FillStages(snap);
  EXPECT_FALSE(snap.stage_tracing);
  EXPECT_EQ(snap.queue_wait.count, 0u);
  EXPECT_EQ(snap.traced_total_us, 0u);

  const TelemetrySnapshot t = telemetry.Snapshot();
  EXPECT_FALSE(t.enabled);
  EXPECT_TRUE(t.backends.empty());
  EXPECT_TRUE(telemetry.DrainRoutingEvents().empty());
}

TEST(ServiceTelemetryTest, MergeFoldsRowsByBackendId) {
  TelemetryOptions options;
  options.routing_log_capacity = 0;
  ServiceTelemetry a(options), b(options);
  a.Record(MakeEvent(0, 5));
  a.Record(MakeEvent(1, 5));
  b.Record(MakeEvent(2, 5));
  b.Record(MakeEvent(3, 9));

  TelemetrySnapshot into = a.Snapshot();
  MergeTelemetry(into, b.Snapshot());
  ASSERT_EQ(into.backends.size(), 2u);
  EXPECT_EQ(into.backends[0].backend_id, 5u);
  EXPECT_EQ(into.backends[0].completed, 3u);  // 2 from a + 1 from b
  EXPECT_EQ(into.backends[1].backend_id, 9u);
  EXPECT_EQ(into.backends[1].completed, 1u);
  EXPECT_EQ(into.backends[0].latency_count, 3u);
  EXPECT_GT(into.backends[0].latency_p99_ms, 0.0);
}

// ---------------------------------------------------------------------------
// Stage tracing through a live service.

TEST(TracedServiceTest, EveryCompletedQueryProducesOneMonotoneEvent) {
  Graph g = PowerlawCluster(400, 3, 0.3, 7);
  ServiceOptions options;
  options.num_workers = 2;
  options.cache_capacity = 64;
  options.backend.name = "tea+";
  AsyncQueryService service(g, TestParams(1e-5), 77, options);
  ASSERT_TRUE(service.tracing_enabled());

  // Distinct seeds plus a tail of repeats: misses, then hits/coalesced.
  std::vector<NodeId> seeds = {1, 5, 9, 22, 60, 120, 350};
  for (int rep = 0; rep < 3; ++rep) seeds.insert(seeds.end(), {1, 5, 9});
  std::vector<QueryHandle> handles;
  for (NodeId seed : seeds) handles.push_back(service.Submit(seed));
  for (QueryHandle& h : handles) {
    ASSERT_EQ(h.result.get().status, QueryStatus::kOk);
  }

  const ServiceStatsSnapshot stats = service.Stats();
  ASSERT_EQ(stats.completed, seeds.size());
  EXPECT_TRUE(stats.stage_tracing);
  // Exactly one routing event per completed query.
  const std::vector<RoutingEvent> events = service.DrainRoutingEvents();
  ASSERT_EQ(events.size(), seeds.size());

  const uint32_t tea_plus_id = StableBackendId("tea+");
  uint64_t misses = 0, served_from_cache = 0;
  std::set<uint64_t> indices;
  for (const RoutingEvent& e : events) {
    ExpectMonotoneStages(e);
    EXPECT_TRUE(indices.insert(e.query_index).second);
    EXPECT_EQ(e.backend_id, tea_plus_id);
    EXPECT_EQ(e.routed, 0u);  // pinned default, not router-chosen
    EXPECT_EQ(e.graph_version, 0u);
    EXPECT_EQ(e.num_nodes, g.NumNodes());
    EXPECT_EQ(e.num_edges, g.NumEdges());
    EXPECT_EQ(e.seed_degree, g.Degree(e.seed));
    switch (e.cache_outcome()) {
      case CacheOutcome::kMiss:
        ++misses;
        EXPECT_LT(e.compute_begin_us, e.compute_end_us);
        break;
      case CacheOutcome::kHit:
      case CacheOutcome::kCoalesced:
        ++served_from_cache;
        // Zero-width compute: the query never ran an estimator.
        EXPECT_EQ(e.compute_begin_us, e.compute_end_us);
        break;
      case CacheOutcome::kNone:
        ADD_FAILURE() << "cache enabled, outcome must not be kNone";
        break;
    }
  }
  EXPECT_EQ(misses, stats.cache_misses);
  EXPECT_EQ(served_from_cache, stats.cache_hits + stats.coalesced);

  // The aggregate invariant the benches/CI assert, at the source: the
  // disjoint stage sums never exceed the traced submit->complete total.
  const uint64_t stage_sum = stats.queue_wait.total_us +
                             stats.cache_lookup.total_us +
                             stats.compute.total_us;
  EXPECT_LE(stage_sum, stats.traced_total_us);
  EXPECT_EQ(stats.queue_wait.count, seeds.size());
  EXPECT_EQ(stats.compute.count, stats.cache_misses);

  // Per-backend dimension row: everything landed on tea+.
  const TelemetrySnapshot telemetry = service.Telemetry();
  ASSERT_EQ(telemetry.backends.size(), 1u);
  EXPECT_EQ(telemetry.backends[0].backend, "tea+");
  EXPECT_EQ(telemetry.backends[0].completed, seeds.size());
  EXPECT_EQ(telemetry.backends[0].computed, stats.cache_misses);
}

TEST(TracedServiceTest, RoutedFlagMarksRouterChosenPlans) {
  Graph g = PowerlawCluster(400, 3, 0.3, 7);
  ServiceOptions options;
  options.num_workers = 1;
  options.cache_capacity = 0;  // every query computes; outcomes are kNone
  AsyncQueryService service(g, TestParams(1e-4), 77, options);

  SubmitOptions routed;
  routed.plan.backend = std::string(kAutoBackend);
  ASSERT_EQ(service.Submit(3, routed).result.get().status, QueryStatus::kOk);
  SubmitOptions pinned;
  pinned.plan.backend = "hk-relax";
  ASSERT_EQ(service.Submit(4, pinned).result.get().status, QueryStatus::kOk);
  ASSERT_EQ(service.Submit(5).result.get().status, QueryStatus::kOk);

  const std::vector<RoutingEvent> events = service.DrainRoutingEvents();
  ASSERT_EQ(events.size(), 3u);
  // Submission order == query_index order after the drain's sort by
  // ticket; a 1-worker service also completes in that order.
  EXPECT_EQ(events[0].routed, 1u);  // explicit "auto"
  EXPECT_EQ(events[1].routed, 0u);  // pinned hk-relax
  EXPECT_EQ(events[1].backend_id, StableBackendId("hk-relax"));
  EXPECT_EQ(events[2].routed, 0u);  // service default ("tea+")
  EXPECT_EQ(events[2].backend_id, StableBackendId("tea+"));
  for (const RoutingEvent& e : events) {
    EXPECT_EQ(e.cache_outcome(), CacheOutcome::kNone);
    ExpectMonotoneStages(e);
  }
}

TEST(TracedServiceTest, DisabledTracingKeepsServingAndFlatStats) {
  Graph g = PowerlawCluster(200, 3, 0.3, 3);
  ServiceOptions options;
  options.num_workers = 2;
  options.telemetry.enabled = false;
  AsyncQueryService service(g, TestParams(1e-4), 11, options);
  EXPECT_FALSE(service.tracing_enabled());

  for (NodeId seed : {0u, 1u, 2u, 1u}) {
    ASSERT_EQ(service.Submit(seed).result.get().status, QueryStatus::kOk);
  }
  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.completed, 4u);
  EXPECT_EQ(stats.latency_count, 4u);  // the flat histogram still works
  EXPECT_FALSE(stats.stage_tracing);
  EXPECT_EQ(stats.queue_wait.count, 0u);
  EXPECT_TRUE(service.DrainRoutingEvents().empty());
  EXPECT_FALSE(service.Telemetry().enabled);
}

// ---------------------------------------------------------------------------
// Traced MultiGraphService under hot-swaps (run under TSan in CI).

TEST(TracedMultiGraphStressTest, HotSwapsPreserveEventsAndMonotonicity) {
  constexpr uint32_t kBaseNodes = 120;
  constexpr uint32_t kPublishes = 6;
  constexpr uint32_t kClients = 3;
  constexpr uint32_t kPerClient = 40;

  GraphStore store;
  MultiGraphOptions options;
  options.worker_budget = 4;
  // Capacity covers every query in the test, so nothing is overwritten
  // and "one event per completed query" is exact even across retirement.
  options.service.telemetry.routing_log_capacity = 4096;
  MultiGraphService service(store, TestParams(1e-2), 13, options);
  const uint64_t v_first =
      service.Publish("g", PowerlawCluster(kBaseNodes, 3, 0.3, 0));

  std::atomic<uint64_t> completed{0};
  std::vector<std::thread> clients;
  for (uint32_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (uint32_t i = 0; i < kPerClient; ++i) {
        const NodeId seed = static_cast<NodeId>((c * 41 + i) % kBaseNodes);
        const QueryResult result = service.Submit("g", seed).result.get();
        ASSERT_EQ(result.status, QueryStatus::kOk);
        completed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Publisher races the clients: each Publish retires the live service,
  // whose telemetry and un-drained events must fold into the graph's
  // aggregate instead of vanishing.
  for (uint32_t k = 1; k <= kPublishes; ++k) {
    service.Publish("g", PowerlawCluster(kBaseNodes + k, 3, 0.3, k));
  }
  for (std::thread& t : clients) t.join();
  ASSERT_EQ(completed.load(), kClients * kPerClient);

  const std::vector<RoutingEvent> events = service.DrainRoutingEvents("g");
  const TelemetrySnapshot telemetry = service.TelemetryFor("g");
  ASSERT_EQ(telemetry.routing_dropped, 0u);
  ASSERT_EQ(events.size(), completed.load());

  const uint32_t tea_plus_id = StableBackendId("tea+");
  for (const RoutingEvent& e : events) {
    ExpectMonotoneStages(e);
    EXPECT_EQ(e.backend_id, tea_plus_id);
    // The snapshot version was live at completion time.
    EXPECT_GE(e.graph_version, v_first);
    EXPECT_LE(e.graph_version, v_first + kPublishes);
    EXPECT_GE(e.num_nodes, kBaseNodes);
    EXPECT_LE(e.num_nodes, kBaseNodes + kPublishes);
  }

  // The dimension rows aggregate across every retired generation.
  uint64_t dim_completed = 0;
  for (const BackendStatsSnapshot& row : telemetry.backends) {
    dim_completed += row.completed;
  }
  EXPECT_EQ(dim_completed, completed.load());

  // Aggregated per-graph stage stats survived the swaps too.
  const ServiceStatsSnapshot stats = service.StatsFor("g");
  EXPECT_TRUE(stats.stage_tracing);
  EXPECT_EQ(stats.queue_wait.count, completed.load());
  EXPECT_LE(stats.queue_wait.total_us + stats.cache_lookup.total_us +
                stats.compute.total_us,
            stats.traced_total_us);
}

}  // namespace
}  // namespace hkpr
