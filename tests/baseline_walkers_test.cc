// Tests for ClusterHKPR and PR-Nibble.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/cluster_hkpr.h"
#include "baselines/evolving_set.h"
#include "baselines/nibble.h"
#include "baselines/ppr_nibble.h"
#include "clustering/conductance.h"
#include "clustering/metrics.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "hkpr/power_method.h"
#include "test_util.h"

namespace hkpr {
namespace {

TEST(ClusterHkprTest, EstimateSumsToOne) {
  Graph g = testing::MakeBarbell(5);
  ClusterHkprOptions options;
  options.eps = 0.2;
  ClusterHkprEstimator est(g, options, 1);
  SparseVector rho = est.Estimate(0);
  EXPECT_NEAR(rho.Sum(), 1.0, 1e-9);
}

TEST(ClusterHkprTest, WalkCountFormula) {
  Graph g = PowerlawCluster(1000, 3, 0.3, 2);
  ClusterHkprOptions options;
  options.eps = 0.1;
  ClusterHkprEstimator est(g, options, 3);
  const double expected = 16.0 * std::log(1000.0) / (0.1 * 0.1 * 0.1);
  EXPECT_EQ(est.NumWalks(), static_cast<uint64_t>(std::ceil(expected)));
}

TEST(ClusterHkprTest, MaxWalksCapRespected) {
  Graph g = PowerlawCluster(1000, 3, 0.3, 4);
  ClusterHkprOptions options;
  options.eps = 0.01;  // theoretical count would be ~1.1e8
  options.max_walks = 5000;
  ClusterHkprEstimator est(g, options, 5);
  EXPECT_EQ(est.NumWalks(), 5000u);
  EstimatorStats stats;
  est.Estimate(0, &stats);
  EXPECT_EQ(stats.num_walks, 5000u);
}

TEST(ClusterHkprTest, AccuracyImprovesWithSmallerEps) {
  Graph g = testing::MakeBarbell(6);
  const std::vector<double> exact = ExactHkpr(g, 5.0, 0);
  double err_loose, err_tight;
  {
    ClusterHkprOptions options;
    options.eps = 0.4;
    ClusterHkprEstimator est(g, options, 6);
    err_loose = MaxNormalizedError(g, est.Estimate(0), exact);
  }
  {
    ClusterHkprOptions options;
    options.eps = 0.05;
    ClusterHkprEstimator est(g, options, 6);
    err_tight = MaxNormalizedError(g, est.Estimate(0), exact);
  }
  EXPECT_LT(err_tight, err_loose);
}

TEST(ClusterHkprTest, LengthCapTruncatesWalks) {
  Graph g = testing::MakePath(60);
  ClusterHkprOptions options;
  options.t = 20.0;
  options.eps = 0.3;
  options.length_cap = 2;
  ClusterHkprEstimator est(g, options, 7);
  SparseVector rho = est.Estimate(30);
  // Nothing can land more than 2 hops away.
  for (const auto& e : rho.entries()) {
    EXPECT_GE(e.key, 28u);
    EXPECT_LE(e.key, 32u);
  }
}

TEST(PprNibbleTest, ResidualInvariant) {
  // ACL invariant: at termination every residual is below eps * d(v).
  // We verify indirectly: p approximates the exact lazy PPR within
  // eps * d(v) per node (the standard ACL guarantee).
  Graph g = PowerlawCluster(300, 3, 0.3, 8);
  PprNibbleOptions options;
  options.alpha = 0.2;
  options.eps = 1e-5;
  PprNibbleEstimator est(g, options);
  SparseVector p = est.Estimate(9);
  const std::vector<double> exact =
      testing::ExactLazyPpr(g, options.alpha, 9, 400);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (g.Degree(v) == 0) continue;
    EXPECT_LE(p.Get(v), exact[v] + 1e-9) << v;  // p is an underestimate
    EXPECT_LE(exact[v] - p.Get(v), options.eps * g.Degree(v) + 1e-9) << v;
  }
}

TEST(PprNibbleTest, MassConservation) {
  Graph g = testing::MakeBarbell(6);
  PprNibbleOptions options;
  options.eps = 1e-6;
  PprNibbleEstimator est(g, options);
  SparseVector p = est.Estimate(0);
  // p total <= 1; residual carries the rest.
  EXPECT_LE(p.Sum(), 1.0 + 1e-9);
  EXPECT_GT(p.Sum(), 0.9);  // tight eps recovers almost everything
}

TEST(PprNibbleTest, SupportIsLocal) {
  Graph g = Grid3D(12, 12, 12, true);
  PprNibbleOptions options;
  options.eps = 1e-4;
  PprNibbleEstimator est(g, options);
  SparseVector p = est.Estimate(5);
  EXPECT_LT(p.nnz(), g.NumNodes() / 2);
}

TEST(NibbleTest, FindsBarbellCut) {
  Graph g = testing::MakeBarbell(8);
  NibbleOptions options;
  options.eps = 1e-6;
  options.max_steps = 30;
  NibbleResult result = Nibble(g, 0, options);
  ASSERT_FALSE(result.cluster.empty());
  EXPECT_LT(result.conductance, 0.05);  // the bridge cut
  EXPECT_GT(result.steps, 0u);
}

TEST(NibbleTest, RecoversPlantedCommunity) {
  CommunityGraph cg = PlantedPartition(6, 50, 0.3, 0.002, 10);
  NibbleOptions options;
  options.eps = 1e-6;
  options.max_steps = 25;
  const NodeId seed = cg.communities.Community(2)[0];
  NibbleResult result = Nibble(cg.graph, seed, options);
  const double planted = Conductance(cg.graph, cg.communities.Community(2));
  EXPECT_LT(result.conductance, 2.0 * planted + 0.1);
}

TEST(NibbleTest, TruncationKeepsSupportLocal) {
  Graph g = Grid3D(12, 12, 12, true);
  NibbleOptions options;
  options.eps = 1e-4;  // aggressive truncation
  options.max_steps = 30;
  NibbleResult result = Nibble(g, 0, options);
  EXPECT_LT(result.cluster.size(), g.NumNodes() / 4);
}

TEST(NibbleTest, IsolatedSeedEmptyResult) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  Graph g = b.Build();
  NibbleResult result = Nibble(g, 2, NibbleOptions{});
  EXPECT_TRUE(result.cluster.empty());
  EXPECT_DOUBLE_EQ(result.conductance, 1.0);
}

TEST(NibbleTest, VolumeCapRespected) {
  CommunityGraph cg = PlantedPartition(4, 60, 0.3, 0.01, 11);
  NibbleOptions options;
  options.eps = 1e-7;
  options.max_steps = 30;
  options.max_volume = cg.graph.Volume() / 4;
  NibbleResult result = Nibble(cg.graph, 5, options);
  if (!result.cluster.empty()) {
    EXPECT_LE(cg.graph.VolumeOf(result.cluster), options.max_volume);
  }
}

TEST(EvolvingSetTest, FindsBarbellCut) {
  Graph g = testing::MakeBarbell(8);
  Rng rng(12);
  EvolvingSetOptions options;
  options.max_steps = 40;
  options.restarts = 5;
  EvolvingSetResult result = EvolvingSet(g, 0, options, rng);
  ASSERT_FALSE(result.cluster.empty());
  EXPECT_LT(result.conductance, 0.05);
}

TEST(EvolvingSetTest, RecoversPlantedCommunity) {
  CommunityGraph cg = PlantedPartition(6, 50, 0.35, 0.002, 13);
  Rng rng(14);
  EvolvingSetOptions options;
  const NodeId seed = cg.communities.Community(1)[0];
  EvolvingSetResult result = EvolvingSet(cg.graph, seed, options, rng);
  const double planted = Conductance(cg.graph, cg.communities.Community(1));
  EXPECT_LT(result.conductance, 2.0 * planted + 0.1);
}

TEST(EvolvingSetTest, IsolatedSeedEmpty) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  Graph g = b.Build();
  Rng rng(15);
  EvolvingSetResult result = EvolvingSet(g, 2, EvolvingSetOptions{}, rng);
  EXPECT_TRUE(result.cluster.empty());
}

TEST(EvolvingSetTest, VolumeCapRespected) {
  Graph g = PowerlawCluster(2000, 4, 0.3, 16);
  Rng rng(17);
  EvolvingSetOptions options;
  options.max_volume = 200;
  EvolvingSetResult result = EvolvingSet(g, 5, options, rng);
  if (!result.cluster.empty()) {
    EXPECT_LE(g.VolumeOf(result.cluster), options.max_volume);
  }
}

TEST(EvolvingSetTest, DeterministicGivenRng) {
  Graph g = PowerlawCluster(500, 4, 0.3, 18);
  EvolvingSetOptions options;
  Rng a(19), b(19);
  EvolvingSetResult ra = EvolvingSet(g, 7, options, a);
  EvolvingSetResult rb = EvolvingSet(g, 7, options, b);
  EXPECT_EQ(ra.cluster, rb.cluster);
  EXPECT_DOUBLE_EQ(ra.conductance, rb.conductance);
}

TEST(PprNibbleTest, WorkGrowsWithAccuracy) {
  Graph g = PowerlawCluster(2000, 4, 0.3, 9);
  EstimatorStats coarse, fine;
  {
    PprNibbleOptions options;
    options.eps = 1e-4;
    PprNibbleEstimator est(g, options);
    est.Estimate(5, &coarse);
  }
  {
    PprNibbleOptions options;
    options.eps = 1e-7;
    PprNibbleEstimator est(g, options);
    est.Estimate(5, &fine);
  }
  EXPECT_GT(fine.push_operations, coarse.push_operations);
}

}  // namespace
}  // namespace hkpr
