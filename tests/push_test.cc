// Tests for HK-Push / HK-Push+ — including the Lemma 1 invariant and
// Theorem 2, validated against dense ground truth on small graphs.

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "hkpr/power_method.h"
#include "hkpr/push.h"
#include "test_util.h"

namespace hkpr {
namespace {

/// Evaluates the Lemma 1 identity
///   rho_s[v] = q_s[v] + sum_u sum_k r_k[u] * h_u^(k)[v]
/// densely and returns the max absolute deviation from the exact HKPR.
double Lemma1Deviation(const Graph& g, const HeatKernel& kernel, NodeId seed,
                       const PushResult& push) {
  const std::vector<double> exact = ExactHkpr(g, kernel, seed);
  std::vector<double> reconstructed(g.NumNodes(), 0.0);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    reconstructed[v] = push.reserve.Get(v);
  }
  for (uint32_t k = 0; k <= push.residues.max_hop(); ++k) {
    for (const auto& e : push.residues.Hop(k).entries()) {
      if (e.value <= 0.0) continue;
      const std::vector<double> h = testing::ExactH(g, kernel, e.key, k);
      for (NodeId v = 0; v < g.NumNodes(); ++v) {
        reconstructed[v] += e.value * h[v];
      }
    }
  }
  double worst = 0.0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    worst = std::max(worst, std::abs(reconstructed[v] - exact[v]));
  }
  return worst;
}

TEST(HkPushTest, Lemma1InvariantOnBarbell) {
  Graph g = testing::MakeBarbell(5);
  HeatKernel kernel(5.0);
  for (double r_max : {0.5, 0.1, 0.01, 0.001}) {
    PushResult push = HkPush(g, kernel, 0, r_max);
    EXPECT_LT(Lemma1Deviation(g, kernel, 0, push), 1e-9) << "r_max=" << r_max;
  }
}

TEST(HkPushTest, Lemma1InvariantOnRandomGraph) {
  Graph g = ErdosRenyiGnm(40, 120, 3);
  HeatKernel kernel(3.0);
  PushResult push = HkPush(g, kernel, 7, 0.005);
  EXPECT_LT(Lemma1Deviation(g, kernel, 7, push), 1e-9);
}

TEST(HkPushTest, ReserveIsLowerBoundOfExact) {
  Graph g = testing::MakeBarbell(6);
  HeatKernel kernel(5.0);
  const std::vector<double> exact = ExactHkpr(g, kernel, 0);
  PushResult push = HkPush(g, kernel, 0, 0.001);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_LE(push.reserve.Get(v), exact[v] + 1e-12) << v;
  }
}

TEST(HkPushTest, MassConservation) {
  // reserve total + residue total == 1 at every threshold.
  Graph g = PowerlawCluster(300, 3, 0.3, 4);
  HeatKernel kernel(5.0);
  for (double r_max : {0.1, 0.01, 0.001}) {
    PushResult push = HkPush(g, kernel, 11, r_max);
    EXPECT_NEAR(push.reserve.Sum() + push.residues.TotalSum(), 1.0, 1e-9);
  }
}

TEST(HkPushTest, SmallerThresholdMoreWork) {
  Graph g = PowerlawCluster(500, 4, 0.3, 5);
  HeatKernel kernel(5.0);
  PushResult coarse = HkPush(g, kernel, 10, 0.01);
  PushResult fine = HkPush(g, kernel, 10, 0.0001);
  EXPECT_GT(fine.push_operations, coarse.push_operations);
  EXPECT_LT(fine.residues.TotalSum(), coarse.residues.TotalSum());
}

TEST(HkPushTest, ResiduesRespectThreshold) {
  Graph g = PowerlawCluster(400, 3, 0.2, 6);
  HeatKernel kernel(5.0);
  const double r_max = 0.003;
  PushResult push = HkPush(g, kernel, 5, r_max);
  // Below the final hop, every remaining residue obeys r <= r_max * d(v).
  for (uint32_t k = 0; k < kernel.MaxHop(); ++k) {
    for (const auto& e : push.residues.Hop(k).entries()) {
      EXPECT_LE(e.value, r_max * g.Degree(e.key) + 1e-12)
          << "hop " << k << " node " << e.key;
    }
  }
}

TEST(HkPushTest, WorkScalesInverseThreshold) {
  // Lemma 3: total pushes are O(1/r_max).
  Graph g = PowerlawCluster(2000, 4, 0.3, 7);
  HeatKernel kernel(5.0);
  PushResult push = HkPush(g, kernel, 3, 0.0005);
  EXPECT_LT(static_cast<double>(push.push_operations), 4.0 / 0.0005);
}

TEST(HkPushPlusTest, BudgetRespected) {
  Graph g = PowerlawCluster(2000, 5, 0.3, 8);
  HeatKernel kernel(5.0);
  HkPushPlusOptions options;
  options.eps_r = 0.5;
  options.delta = 1e-7;
  options.hop_cap = 12;
  options.push_budget = 500;
  PushResult push = HkPushPlus(g, kernel, 3, options);
  EXPECT_TRUE(push.hit_budget);
  // The budget check happens before processing an entry; an entry may
  // overshoot by at most its own degree.
  EXPECT_LE(push.push_operations, options.push_budget + g.MaxDegree());
}

TEST(HkPushPlusTest, Theorem2AbsoluteErrorOnEarlyExit) {
  // When the early-exit test fires, the reserve alone must satisfy
  // |q[v] - rho[v]|/d(v) <= eps_r * delta for all v (Theorem 2).
  Graph g = testing::MakeBarbell(8);
  HeatKernel kernel(5.0);
  HkPushPlusOptions options;
  options.eps_r = 0.5;
  options.delta = 0.01;  // loose: early exit will fire
  options.hop_cap = 20;
  options.push_budget = 100000000;
  PushResult push = HkPushPlus(g, kernel, 0, options);
  ASSERT_TRUE(push.hit_absolute_target);
  const std::vector<double> exact = ExactHkpr(g, kernel, 0);
  const double eps_a = options.eps_r * options.delta;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    const double err = std::abs(push.reserve.Get(v) - exact[v]) / g.Degree(v);
    EXPECT_LE(err, eps_a + 1e-12) << v;
  }
}

TEST(HkPushPlusTest, EarlyExitBoundIsSound) {
  // Whenever hit_absolute_target is reported, the exact residue scan must
  // confirm Inequality (11).
  Graph g = PowerlawCluster(500, 4, 0.3, 9);
  HeatKernel kernel(5.0);
  HkPushPlusOptions options;
  options.eps_r = 0.5;
  options.delta = 1e-3;
  options.hop_cap = 10;
  options.push_budget = 1000000000;
  PushResult push = HkPushPlus(g, kernel, 1, options);
  if (push.hit_absolute_target) {
    EXPECT_LE(push.residues.MaxNormalizedResidueSum(g),
              options.eps_r * options.delta + 1e-12);
  }
}

TEST(HkPushPlusTest, Lemma1InvariantHolds) {
  // The invariant must hold for HK-Push+ too (same push operation).
  Graph g = ErdosRenyiGnm(30, 90, 10);
  HeatKernel kernel(4.0);
  HkPushPlusOptions options;
  options.eps_r = 0.5;
  options.delta = 1e-4;
  options.hop_cap = 8;
  options.push_budget = 2000;
  PushResult push = HkPushPlus(g, kernel, 2, options);
  EXPECT_LT(Lemma1Deviation(g, kernel, 2, push), 1e-9);
}

TEST(HkPushPlusTest, HopCapLimitsResidueHops) {
  Graph g = PowerlawCluster(300, 3, 0.2, 11);
  HeatKernel kernel(5.0);
  HkPushPlusOptions options;
  options.eps_r = 0.5;
  options.delta = 1e-5;
  options.hop_cap = 4;
  options.push_budget = 1000000;
  PushResult push = HkPushPlus(g, kernel, 0, options);
  EXPECT_EQ(push.residues.max_hop(), 4u);
  // No residue past the cap was ever pushed, so hop sums at the cap are the
  // only ones that can be large; just check the table depth is respected.
  EXPECT_GE(push.residues.HopSum(4), 0.0);
}

TEST(HkPushPlusTest, MassConservation) {
  Graph g = PowerlawCluster(300, 3, 0.2, 12);
  HeatKernel kernel(5.0);
  HkPushPlusOptions options;
  options.eps_r = 0.5;
  options.delta = 1e-6;
  options.hop_cap = 10;
  options.push_budget = 100000;
  PushResult push = HkPushPlus(g, kernel, 4, options);
  EXPECT_NEAR(push.reserve.Sum() + push.residues.TotalSum(), 1.0, 1e-9);
}

TEST(ResidueTableTest, SumsMaintained) {
  ResidueTable table(3);
  table.Add(0, 5, 0.5);
  table.Add(0, 6, 0.25);
  table.Add(2, 5, 0.1);
  EXPECT_DOUBLE_EQ(table.HopSum(0), 0.75);
  EXPECT_DOUBLE_EQ(table.HopSum(2), 0.1);
  EXPECT_DOUBLE_EQ(table.TotalSum(), 0.85);
  table.Zero(0, 5);
  EXPECT_DOUBLE_EQ(table.HopSum(0), 0.25);
  EXPECT_DOUBLE_EQ(table.Get(0, 5), 0.0);
}

TEST(ResidueTableTest, RecomputeAfterDirectMutation) {
  ResidueTable table(1);
  table.Add(0, 1, 0.6);
  table.Add(1, 2, 0.4);
  for (auto& e : table.MutableHop(0).mutable_entries()) e.value *= 0.5;
  table.RecomputeSums();
  EXPECT_DOUBLE_EQ(table.HopSum(0), 0.3);
  EXPECT_DOUBLE_EQ(table.TotalSum(), 0.7);
}

TEST(ResidueTableTest, MaxNormalizedResidueSum) {
  Graph g = testing::MakeStar(4);  // d(0)=3, d(1..3)=1
  ResidueTable table(1);
  table.Add(0, 0, 0.9);  // 0.9/3 = 0.3
  table.Add(1, 1, 0.2);  // 0.2/1 = 0.2
  table.Add(1, 2, 0.1);  // 0.1
  EXPECT_DOUBLE_EQ(table.MaxNormalizedResidueSum(g), 0.3 + 0.2);
}

TEST(ResidueTableTest, NonZeroCountSkipsZeroedEntries) {
  ResidueTable table(0);
  table.Add(0, 1, 0.5);
  table.Add(0, 2, 0.5);
  table.Zero(0, 1);
  EXPECT_EQ(table.TotalNonZeros(), 1u);
  EXPECT_EQ(table.TotalEntries(), 2u);
}

}  // namespace
}  // namespace hkpr
