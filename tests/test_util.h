// Shared fixtures and reference implementations for the test suite.

#ifndef HKPR_TESTS_TEST_UTIL_H_
#define HKPR_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/graph_builder.h"
#include "hkpr/heat_kernel.h"

namespace hkpr::testing {

/// Path graph 0-1-2-...-(n-1).
inline Graph MakePath(uint32_t n) {
  GraphBuilder b(n);
  for (uint32_t v = 0; v + 1 < n; ++v) b.AddEdge(v, v + 1);
  return b.Build();
}

/// Cycle graph.
inline Graph MakeCycle(uint32_t n) {
  GraphBuilder b(n);
  for (uint32_t v = 0; v < n; ++v) b.AddEdge(v, (v + 1) % n);
  return b.Build();
}

/// Star: node 0 connected to 1..n-1.
inline Graph MakeStar(uint32_t n) {
  GraphBuilder b(n);
  for (uint32_t v = 1; v < n; ++v) b.AddEdge(0, v);
  return b.Build();
}

/// Complete graph K_n.
inline Graph MakeComplete(uint32_t n) {
  GraphBuilder b(n);
  for (uint32_t u = 0; u < n; ++u) {
    for (uint32_t v = u + 1; v < n; ++v) b.AddEdge(u, v);
  }
  return b.Build();
}

/// Two cliques of size k bridged by a single edge — the canonical
/// low-conductance two-cluster graph. Nodes 0..k-1 form clique A,
/// k..2k-1 clique B; the bridge is (k-1, k).
inline Graph MakeBarbell(uint32_t k) {
  GraphBuilder b(2 * k);
  for (uint32_t u = 0; u < k; ++u) {
    for (uint32_t v = u + 1; v < k; ++v) {
      b.AddEdge(u, v);
      b.AddEdge(k + u, k + v);
    }
  }
  b.AddEdge(k - 1, k);
  return b.Build();
}

/// The small example graph G' of the paper's Figure 1: seed s=0 with
/// neighbors v1=1, v2=2; v1-v2 edge; v3..v7 = 3..7.
/// Edges: s-v1, s-v2, v1-v2, v1-v3, v2-v3, ... reconstructed to give
/// d(s)=2, d(v1)=3, d(v2)=6, d(v3)=1..  (structure used only for smoke
/// tests; exact degrees of the figure are not load-bearing).
inline Graph MakePaperFigure1() {
  GraphBuilder b(8);
  b.AddEdge(0, 1);  // s - v1
  b.AddEdge(0, 2);  // s - v2
  b.AddEdge(1, 2);  // v1 - v2
  b.AddEdge(1, 3);  // v1 - v3
  b.AddEdge(2, 4);
  b.AddEdge(2, 5);
  b.AddEdge(2, 6);
  b.AddEdge(2, 7);
  return b.Build();
}

/// Exact lazy personalized PageRank by dense power iteration:
/// p = alpha * sum_k (1-alpha)^k W^k e_s with W = (I + D^-1 A)/2.
inline std::vector<double> ExactLazyPpr(const Graph& g, double alpha,
                                        NodeId seed, uint32_t iterations) {
  const uint32_t n = g.NumNodes();
  std::vector<double> x(n, 0.0), next(n, 0.0), acc(n, 0.0);
  x[seed] = 1.0;
  double scale = alpha;
  for (uint32_t k = 0; k <= iterations; ++k) {
    for (uint32_t v = 0; v < n; ++v) acc[v] += scale * x[v];
    scale *= (1.0 - alpha);
    // next = W x (row vector through symmetric W).
    for (uint32_t v = 0; v < n; ++v) next[v] = 0.5 * x[v];
    for (uint32_t u = 0; u < n; ++u) {
      if (x[u] == 0.0 || g.Degree(u) == 0) continue;
      const double share = 0.5 * x[u] / g.Degree(u);
      for (NodeId v : g.Neighbors(u)) next[v] += share;
    }
    x.swap(next);
  }
  return acc;
}

/// Exact conditional stopping distribution h_u^(k) (Equation 5), dense:
/// h_u^(k)[v] = sum_l eta(k+l)/psi(k) * P^l[u, v].
inline std::vector<double> ExactH(const Graph& g, const HeatKernel& kernel,
                                  NodeId u, uint32_t k) {
  const uint32_t n = g.NumNodes();
  std::vector<double> x(n, 0.0), next(n, 0.0), acc(n, 0.0);
  x[u] = 1.0;
  const double psi_k = kernel.Psi(k);
  for (uint32_t l = 0; k + l <= kernel.MaxHop(); ++l) {
    const double w = kernel.Eta(k + l) / psi_k;
    for (uint32_t v = 0; v < n; ++v) acc[v] += w * x[v];
    std::fill(next.begin(), next.end(), 0.0);
    for (uint32_t a = 0; a < n; ++a) {
      if (x[a] == 0.0) continue;
      if (g.Degree(a) == 0) {
        next[a] += x[a];
        continue;
      }
      const double share = x[a] / g.Degree(a);
      for (NodeId b : g.Neighbors(a)) next[b] += share;
    }
    x.swap(next);
  }
  return acc;
}

}  // namespace hkpr::testing

#endif  // HKPR_TESTS_TEST_UTIL_H_
