// Tests for the HK-Relax baseline and its absolute-error guarantee.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/hk_relax.h"
#include "clustering/metrics.h"
#include "graph/generators.h"
#include "hkpr/power_method.h"
#include "test_util.h"

namespace hkpr {
namespace {

TEST(HkRelaxTest, AbsoluteErrorGuaranteeOnBarbell) {
  Graph g = testing::MakeBarbell(6);
  for (double eps : {1e-2, 1e-3, 1e-4}) {
    HkRelaxOptions options;
    options.t = 5.0;
    options.eps_a = eps;
    HkRelaxEstimator relax(g, options);
    const std::vector<double> exact = ExactHkpr(g, options.t, 0);
    SparseVector est = relax.Estimate(0);
    EXPECT_LE(MaxNormalizedError(g, est, exact), eps) << "eps=" << eps;
  }
}

TEST(HkRelaxTest, AbsoluteErrorGuaranteeOnRandomGraphs) {
  for (uint64_t graph_seed : {1ull, 2ull, 3ull}) {
    Graph g = PowerlawCluster(400, 4, 0.3, graph_seed);
    HkRelaxOptions options;
    options.t = 5.0;
    options.eps_a = 1e-4;
    HkRelaxEstimator relax(g, options);
    const NodeId query = static_cast<NodeId>(17 * (graph_seed + 1));
    const std::vector<double> exact = ExactHkpr(g, options.t, query);
    SparseVector est = relax.Estimate(query);
    EXPECT_LE(MaxNormalizedError(g, est, exact), options.eps_a)
        << "graph seed " << graph_seed;
  }
}

TEST(HkRelaxTest, WorkGrowsAsEpsShrinks) {
  Graph g = PowerlawCluster(2000, 4, 0.3, 4);
  EstimatorStats coarse_stats, fine_stats;
  {
    HkRelaxOptions options;
    options.eps_a = 1e-3;
    HkRelaxEstimator relax(g, options);
    relax.Estimate(5, &coarse_stats);
  }
  {
    HkRelaxOptions options;
    options.eps_a = 1e-6;
    HkRelaxEstimator relax(g, options);
    relax.Estimate(5, &fine_stats);
  }
  EXPECT_GT(fine_stats.push_operations, coarse_stats.push_operations);
}

TEST(HkRelaxTest, TaylorDegreeCoversTail) {
  Graph g = testing::MakeBarbell(4);
  HkRelaxOptions options;
  options.t = 5.0;
  options.eps_a = 1e-5;
  HkRelaxEstimator relax(g, options);
  // Tail mass beyond N must be below eps/2.
  HeatKernel kernel(options.t);
  EXPECT_LE(kernel.Psi(relax.taylor_degree() + 1), options.eps_a / 2.0);
}

TEST(HkRelaxTest, MassNeverExceedsOne) {
  Graph g = PowerlawCluster(300, 3, 0.3, 5);
  HkRelaxOptions options;
  options.eps_a = 1e-4;
  HkRelaxEstimator relax(g, options);
  SparseVector est = relax.Estimate(3);
  EXPECT_LE(est.Sum(), 1.0 + 1e-6);
  EXPECT_GT(est.Sum(), 0.5);  // most mass recovered at this accuracy
}

TEST(HkRelaxTest, ReusedWorkspaceMatchesFreshEstimate) {
  // The workspace-aware port must be bit-identical to the by-value path,
  // including when the workspace is dirty from an unrelated earlier query.
  Graph g = PowerlawCluster(300, 3, 0.3, 6);
  HkRelaxOptions options;
  options.eps_a = 1e-4;
  HkRelaxEstimator estimator(g, options);
  const SparseVector expected_a = estimator.Estimate(8);
  const SparseVector expected_b = estimator.Estimate(100);

  QueryWorkspace ws;
  HkRelaxEstimator reused(g, options);
  for (const auto& [seed, expected] :
       {std::pair<NodeId, const SparseVector*>{8, &expected_a},
        {100, &expected_b}}) {
    const SparseVector& got = reused.EstimateInto(seed, ws);
    ASSERT_EQ(got.nnz(), expected->nnz()) << "seed " << seed;
    for (const auto& e : expected->entries()) {
      EXPECT_DOUBLE_EQ(got.Get(e.key), e.value) << "seed " << seed;
    }
  }
}

TEST(HkRelaxTest, DeterministicAlgorithm) {
  Graph g = PowerlawCluster(300, 3, 0.3, 6);
  HkRelaxOptions options;
  options.eps_a = 1e-4;
  HkRelaxEstimator a(g, options), b(g, options);
  SparseVector ea = a.Estimate(8), eb = b.Estimate(8);
  ASSERT_EQ(ea.nnz(), eb.nnz());
  for (const auto& e : ea.entries()) EXPECT_DOUBLE_EQ(eb.Get(e.key), e.value);
}

TEST(HkRelaxTest, SupportIsLocal) {
  // With a modest eps the support must stay far below n on a large sparse
  // graph (local computation).
  Graph g = Grid3D(12, 12, 12, true);
  HkRelaxOptions options;
  options.eps_a = 1e-3;
  HkRelaxEstimator relax(g, options);
  SparseVector est = relax.Estimate(0);
  EXPECT_LT(est.nnz(), g.NumNodes() / 2);
  EXPECT_GT(est.nnz(), 0u);
}

TEST(HkRelaxTest, LargerTSpreadsMass) {
  Graph g = testing::MakePath(40);
  HkRelaxOptions small_t, large_t;
  small_t.t = 2.0;
  small_t.eps_a = 1e-6;
  large_t.t = 20.0;
  large_t.eps_a = 1e-6;
  HkRelaxEstimator a(g, small_t), b(g, large_t);
  SparseVector ea = a.Estimate(20), eb = b.Estimate(20);
  // Mass 10 hops away should be clearly larger with larger t.
  EXPECT_GT(eb.Get(30), ea.Get(30));
}

}  // namespace
}  // namespace hkpr
