// Tests for the Walker alias sampler.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/alias_sampler.h"
#include "common/random.h"

namespace hkpr {
namespace {

TEST(AliasSamplerTest, SingleWeightAlwaysSampled) {
  AliasSampler alias(std::vector<double>{3.0});
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(alias.Sample(rng), 0u);
}

TEST(AliasSamplerTest, ZeroWeightNeverSampled) {
  AliasSampler alias(std::vector<double>{1.0, 0.0, 1.0});
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) EXPECT_NE(alias.Sample(rng), 1u);
}

TEST(AliasSamplerTest, UniformWeightsAreUniform) {
  const size_t n = 8;
  AliasSampler alias(std::vector<double>(n, 2.5));
  Rng rng(3);
  std::vector<int> counts(n, 0);
  const int samples = 160000;
  for (int i = 0; i < samples; ++i) ++counts[alias.Sample(rng)];
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(counts[i], samples / static_cast<double>(n), 600.0) << i;
  }
}

TEST(AliasSamplerTest, MatchesSkewedDistribution) {
  const std::vector<double> weights = {10.0, 1.0, 0.1, 5.0, 0.0, 3.9};
  AliasSampler alias(weights);
  double total = 0.0;
  for (double w : weights) total += w;
  Rng rng(4);
  std::vector<int> counts(weights.size(), 0);
  const int samples = 400000;
  for (int i = 0; i < samples; ++i) ++counts[alias.Sample(rng)];
  for (size_t i = 0; i < weights.size(); ++i) {
    const double expected = samples * weights[i] / total;
    EXPECT_NEAR(counts[i], expected, 5.0 * std::sqrt(expected + 1.0) + 30.0)
        << "index " << i;
  }
}

TEST(AliasSamplerTest, TotalWeightReported) {
  AliasSampler alias(std::vector<double>{1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(alias.total_weight(), 6.0);
}

TEST(AliasSamplerTest, RebuildReplacesTable) {
  AliasSampler alias(std::vector<double>{1.0});
  alias.Build(std::vector<double>{0.0, 1.0});
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(alias.Sample(rng), 1u);
  EXPECT_EQ(alias.size(), 2u);
}

TEST(AliasSamplerTest, DeterministicGivenSeed) {
  const std::vector<double> weights = {0.3, 0.2, 0.5};
  AliasSampler alias(weights);
  Rng a(77), b(77);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(alias.Sample(a), alias.Sample(b));
}

TEST(AliasSamplerTest, LargeTableDistribution) {
  // Power-law-ish weights over 10k entries; check aggregate mass of the
  // head indices.
  std::vector<double> weights(10000);
  double total = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    weights[i] = 1.0 / static_cast<double>(i + 1);
    total += weights[i];
  }
  AliasSampler alias(weights);
  Rng rng(6);
  const int samples = 300000;
  int head = 0;  // samples landing in the first 10 indices
  for (int i = 0; i < samples; ++i) {
    if (alias.Sample(rng) < 10) ++head;
  }
  double head_mass = 0.0;
  for (int i = 0; i < 10; ++i) head_mass += weights[i];
  EXPECT_NEAR(head / static_cast<double>(samples), head_mass / total, 0.01);
}

TEST(AliasSamplerTest, ChiSquareGoodnessOfFitSkewedWithZeros) {
  // Skewed weights spanning ~200x with interior zero entries: a chi-square
  // goodness-of-fit over the positive support (the distributional check the
  // per-index EXPECT_NEARs above approximate), plus the hard guarantee that
  // zero-weight entries are never sampled. Driven by CounterRng so the
  // counter-based generator gets the same statistical scrutiny as Rng.
  const std::vector<double> weights = {50.0, 0.0, 8.0,  1.0,
                                       0.0,  0.25, 12.0, 0.0};
  double total = 0.0;
  for (double w : weights) total += w;
  AliasSampler alias(weights);
  CounterRng rng(987654321, 7);
  const int samples = 200000;
  std::vector<int64_t> counts(weights.size(), 0);
  for (int i = 0; i < samples; ++i) ++counts[alias.Sample(rng)];

  double chi2 = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] == 0.0) {
      EXPECT_EQ(counts[i], 0) << "zero-weight index " << i << " sampled";
      continue;
    }
    const double expected = samples * weights[i] / total;
    const double diff = static_cast<double>(counts[i]) - expected;
    chi2 += diff * diff / expected;
  }
  // 5 positive-weight cells -> 4 degrees of freedom; 18.47 is the 99.9th
  // percentile of chi^2_4, so a correct sampler fails ~1 in 1000 seeds and
  // this fixed seed is known-good.
  EXPECT_LT(chi2, 18.47);
}

TEST(AliasSamplerTest, RebuildReusesCapacity) {
  // Rebuilding a large table to a small one and back must not shrink or
  // regrow the backing storage — the workspace rebuilds per query and
  // relies on this to stay allocation-free at steady state.
  const std::vector<double> big(4096, 1.0);
  AliasSampler alias(big);
  const size_t bytes = alias.MemoryBytes();
  alias.Build(std::vector<double>{1.0, 2.0});
  EXPECT_EQ(alias.size(), 2u);
  EXPECT_EQ(alias.MemoryBytes(), bytes);
  alias.Build(big);
  EXPECT_EQ(alias.size(), big.size());
  EXPECT_EQ(alias.MemoryBytes(), bytes);
}

TEST(AliasSamplerDeathTest, RejectsEmptyWeights) {
  EXPECT_DEATH(AliasSampler(std::vector<double>{}), "at least one");
}

TEST(AliasSamplerDeathTest, RejectsAllZeroWeights) {
  EXPECT_DEATH(AliasSampler(std::vector<double>{0.0, 0.0}), "positive total");
}

}  // namespace
}  // namespace hkpr
