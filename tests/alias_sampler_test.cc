// Tests for the Walker alias sampler.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/alias_sampler.h"
#include "common/random.h"

namespace hkpr {
namespace {

TEST(AliasSamplerTest, SingleWeightAlwaysSampled) {
  AliasSampler alias(std::vector<double>{3.0});
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(alias.Sample(rng), 0u);
}

TEST(AliasSamplerTest, ZeroWeightNeverSampled) {
  AliasSampler alias(std::vector<double>{1.0, 0.0, 1.0});
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) EXPECT_NE(alias.Sample(rng), 1u);
}

TEST(AliasSamplerTest, UniformWeightsAreUniform) {
  const size_t n = 8;
  AliasSampler alias(std::vector<double>(n, 2.5));
  Rng rng(3);
  std::vector<int> counts(n, 0);
  const int samples = 160000;
  for (int i = 0; i < samples; ++i) ++counts[alias.Sample(rng)];
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(counts[i], samples / static_cast<double>(n), 600.0) << i;
  }
}

TEST(AliasSamplerTest, MatchesSkewedDistribution) {
  const std::vector<double> weights = {10.0, 1.0, 0.1, 5.0, 0.0, 3.9};
  AliasSampler alias(weights);
  double total = 0.0;
  for (double w : weights) total += w;
  Rng rng(4);
  std::vector<int> counts(weights.size(), 0);
  const int samples = 400000;
  for (int i = 0; i < samples; ++i) ++counts[alias.Sample(rng)];
  for (size_t i = 0; i < weights.size(); ++i) {
    const double expected = samples * weights[i] / total;
    EXPECT_NEAR(counts[i], expected, 5.0 * std::sqrt(expected + 1.0) + 30.0)
        << "index " << i;
  }
}

TEST(AliasSamplerTest, TotalWeightReported) {
  AliasSampler alias(std::vector<double>{1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(alias.total_weight(), 6.0);
}

TEST(AliasSamplerTest, RebuildReplacesTable) {
  AliasSampler alias(std::vector<double>{1.0});
  alias.Build(std::vector<double>{0.0, 1.0});
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(alias.Sample(rng), 1u);
  EXPECT_EQ(alias.size(), 2u);
}

TEST(AliasSamplerTest, DeterministicGivenSeed) {
  const std::vector<double> weights = {0.3, 0.2, 0.5};
  AliasSampler alias(weights);
  Rng a(77), b(77);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(alias.Sample(a), alias.Sample(b));
}

TEST(AliasSamplerTest, LargeTableDistribution) {
  // Power-law-ish weights over 10k entries; check aggregate mass of the
  // head indices.
  std::vector<double> weights(10000);
  double total = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    weights[i] = 1.0 / static_cast<double>(i + 1);
    total += weights[i];
  }
  AliasSampler alias(weights);
  Rng rng(6);
  const int samples = 300000;
  int head = 0;  // samples landing in the first 10 indices
  for (int i = 0; i < samples; ++i) {
    if (alias.Sample(rng) < 10) ++head;
  }
  double head_mass = 0.0;
  for (int i = 0; i < 10; ++i) head_mass += weights[i];
  EXPECT_NEAR(head / static_cast<double>(samples), head_mass / total, 0.01);
}

TEST(AliasSamplerDeathTest, RejectsEmptyWeights) {
  EXPECT_DEATH(AliasSampler(std::vector<double>{}), "at least one");
}

TEST(AliasSamplerDeathTest, RejectsAllZeroWeights) {
  EXPECT_DEATH(AliasSampler(std::vector<double>{0.0, 0.0}), "positive total");
}

}  // namespace
}  // namespace hkpr
