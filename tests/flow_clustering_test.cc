// Tests for the flow-based clustering baselines: SimpleLocal (MQI) and CRD.

#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/crd.h"
#include "baselines/simple_local.h"
#include "clustering/conductance.h"
#include "graph/generators.h"
#include "graph/subgraph.h"
#include "test_util.h"

namespace hkpr {
namespace {

double Quotient(const Graph& g, const std::vector<NodeId>& set) {
  const CutStats stats = ComputeCutStats(g, set);
  return stats.volume == 0
             ? 1.0
             : static_cast<double>(stats.cut) / static_cast<double>(stats.volume);
}

TEST(MqiTest, NeverWorsensQuotient) {
  Graph g = PowerlawCluster(500, 4, 0.3, 1);
  Rng rng(2);
  for (int trial = 0; trial < 5; ++trial) {
    const NodeId start = static_cast<NodeId>(rng.UniformInt(g.NumNodes()));
    if (g.Degree(start) == 0) continue;
    std::vector<NodeId> ball = RandomBfsBall(g, start, 80, rng);
    const double before = Quotient(g, ball);
    std::vector<NodeId> improved =
        MqiImprove(g, ball, 16, nullptr, nullptr);
    EXPECT_LE(Quotient(g, improved), before + 1e-12) << "trial " << trial;
  }
}

TEST(MqiTest, RecoversCliqueFromNoisyBall) {
  // Barbell: a ball spanning the bridge should be trimmed back to one clique
  // (the minimum-quotient subset).
  Graph g = testing::MakeBarbell(8);
  std::vector<NodeId> noisy;
  for (NodeId v = 0; v < 8; ++v) noisy.push_back(v);  // clique A
  noisy.push_back(8);
  noisy.push_back(9);  // two stragglers from clique B
  std::vector<NodeId> improved = MqiImprove(g, noisy, 16, nullptr, nullptr);
  EXPECT_LT(Quotient(g, improved), Quotient(g, noisy));
  // The improved set should drop the stragglers.
  EXPECT_TRUE(std::find(improved.begin(), improved.end(), 9u) ==
              improved.end());
}

TEST(MqiTest, PerfectClusterUntouched) {
  // A disconnected clique has cut 0; MQI must keep it as is.
  GraphBuilder b(8);
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = u + 1; v < 4; ++v) b.AddEdge(u, v);
  }
  b.AddEdge(4, 5);
  b.AddEdge(5, 6);
  Graph g = b.Build();
  std::vector<NodeId> clique = {0, 1, 2, 3};
  std::vector<NodeId> improved = MqiImprove(g, clique, 8, nullptr, nullptr);
  EXPECT_EQ(improved.size(), 4u);
}

TEST(SimpleLocalTest, ClusterContainsSeed) {
  Graph g = PowerlawCluster(1000, 4, 0.3, 3);
  Rng rng(4);
  SimpleLocalOptions options;
  options.locality = 0.05;
  FlowClusterResult result = SimpleLocal(g, 17, options, rng);
  ASSERT_FALSE(result.cluster.empty());
  EXPECT_TRUE(std::find(result.cluster.begin(), result.cluster.end(), 17u) !=
              result.cluster.end());
  EXPECT_LE(result.conductance, 1.0);
  EXPECT_GT(result.flow_rounds, 0u);
}

TEST(SimpleLocalTest, FindsPlantedCommunityOnSbm) {
  CommunityGraph cg = PlantedPartition(8, 40, 0.4, 0.004, 5);
  Rng rng(6);
  SimpleLocalOptions options;
  options.locality = 0.15;
  const NodeId seed = cg.communities.Community(2)[0];
  FlowClusterResult result = SimpleLocal(cg.graph, seed, options, rng);
  // The conductance of the found cluster should be comparable to the
  // planted one's.
  const double planted = Conductance(cg.graph, cg.communities.Community(2));
  EXPECT_LT(result.conductance, 3.0 * planted + 0.3);
}

TEST(CrdTest, ReturnsSeedCluster) {
  Graph g = PowerlawCluster(1000, 4, 0.3, 7);
  CrdOptions options;
  options.iterations = 8;
  FlowClusterResult result = Crd(g, 23, options);
  ASSERT_FALSE(result.cluster.empty());
  EXPECT_TRUE(std::find(result.cluster.begin(), result.cluster.end(), 23u) !=
              result.cluster.end());
}

TEST(CrdTest, RecoversPlantedCommunity) {
  CommunityGraph cg = PlantedPartition(6, 50, 0.4, 0.003, 8);
  CrdOptions options;
  options.iterations = 12;
  const NodeId seed = cg.communities.Community(1)[5];
  FlowClusterResult result = Crd(cg.graph, seed, options);
  // Count overlap with the planted community.
  const auto& truth = cg.communities.Community(1);
  size_t hits = 0;
  for (NodeId v : result.cluster) {
    if (std::find(truth.begin(), truth.end(), v) != truth.end()) ++hits;
  }
  EXPECT_GT(hits, result.cluster.size() / 2);  // majority from the community
}

TEST(CrdTest, WorkGrowsWithIterations) {
  Graph g = PowerlawCluster(2000, 4, 0.3, 9);
  CrdOptions few, many;
  few.iterations = 3;
  many.iterations = 14;
  FlowClusterResult a = Crd(g, 11, few);
  FlowClusterResult b = Crd(g, 11, many);
  EXPECT_LE(a.total_arcs, b.total_arcs);
  // More mass spreads further: the cluster should not shrink.
  EXPECT_LE(a.cluster.size(), b.cluster.size() * 4);
}

TEST(CrdTest, IsolatedSeedYieldsEmpty) {
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  Graph g = b.Build();  // nodes 2,3 isolated
  CrdOptions options;
  FlowClusterResult result = Crd(g, 2, options);
  EXPECT_TRUE(result.cluster.empty());
}

TEST(CrdTest, StaysLocalOnGrid) {
  Graph g = Grid3D(14, 14, 14, true);
  CrdOptions options;
  options.iterations = 6;
  FlowClusterResult result = Crd(g, 0, options);
  EXPECT_LT(result.cluster.size(), g.NumNodes() / 4);
}

}  // namespace
}  // namespace hkpr
