// Tests for the parallel estimators and execution helpers.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "clustering/metrics.h"
#include "graph/generators.h"
#include "hkpr/power_method.h"
#include "parallel/parallel_for.h"
#include "parallel/parallel_monte_carlo.h"
#include "parallel/parallel_tea_plus.h"
#include "test_util.h"

namespace hkpr {
namespace {

TEST(ParallelForTest, ChunksCoverRangeExactly) {
  for (uint64_t total : {1ull, 7ull, 100ull, 1001ull}) {
    for (uint32_t threads : {1u, 2u, 3u, 8u}) {
      std::vector<std::atomic<int>> hits(total);
      ParallelChunks(total, threads,
                     [&](uint32_t, uint64_t begin, uint64_t end) {
                       for (uint64_t i = begin; i < end; ++i) {
                         hits[i].fetch_add(1);
                       }
                     });
      for (uint64_t i = 0; i < total; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "total=" << total
                                     << " threads=" << threads << " i=" << i;
      }
    }
  }
}

TEST(ParallelForTest, ZeroItemsNoCalls) {
  std::atomic<int> calls{0};
  ParallelChunks(0, 4, [&](uint32_t, uint64_t, uint64_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, InvokeRunsEachThreadOnce) {
  std::vector<std::atomic<int>> per_thread(6);
  ParallelInvoke(6, [&](uint32_t tid) { per_thread[tid].fetch_add(1); });
  for (auto& c : per_thread) EXPECT_EQ(c.load(), 1);
}

TEST(ParallelForTest, HardwareThreadsPositive) {
  EXPECT_GE(HardwareThreads(), 1u);
}

ApproxParams TestParams(double delta) {
  ApproxParams p;
  p.t = 5.0;
  p.eps_r = 0.5;
  p.delta = delta;
  p.p_f = 1e-4;
  return p;
}

TEST(ParallelMonteCarloTest, GuaranteeHoldsAcrossThreadCounts) {
  Graph g = PowerlawCluster(300, 3, 0.3, 1);
  const ApproxParams params = TestParams(1e-3);
  const std::vector<double> exact = ExactHkpr(g, params.t, 7);
  for (uint32_t threads : {1u, 2u, 4u}) {
    ParallelMonteCarloEstimator est(g, params, 9, threads);
    SparseVector rho = est.Estimate(7);
    EXPECT_EQ(CountApproxViolations(g, rho, exact, params.eps_r, params.delta,
                                    1.2),
              0u)
        << "threads=" << threads;
    EXPECT_NEAR(rho.Sum(), 1.0, 1e-9);
  }
}

TEST(ParallelMonteCarloTest, DeterministicForFixedThreadCount) {
  Graph g = testing::MakeBarbell(6);
  const ApproxParams params = TestParams(1e-2);
  ParallelMonteCarloEstimator a(g, params, 11, 3);
  ParallelMonteCarloEstimator b(g, params, 11, 3);
  SparseVector ra = a.Estimate(0);
  SparseVector rb = b.Estimate(0);
  ASSERT_EQ(ra.nnz(), rb.nnz());
  for (const auto& e : ra.entries()) EXPECT_DOUBLE_EQ(rb.Get(e.key), e.value);
}

TEST(ParallelMonteCarloTest, RepeatedQueriesUseFreshRandomness) {
  Graph g = PowerlawCluster(200, 3, 0.3, 2);
  ParallelMonteCarloEstimator est(g, TestParams(1e-2), 13, 2);
  SparseVector first = est.Estimate(5);
  SparseVector second = est.Estimate(5);
  // Different epochs -> (almost surely) different realizations.
  bool any_diff = false;
  for (const auto& e : first.entries()) {
    if (second.Get(e.key) != e.value) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(ParallelMonteCarloTest, SameWalkCountAsSequentialFormula) {
  Graph g = PowerlawCluster(400, 3, 0.3, 3);
  const ApproxParams params = TestParams(1e-3);
  ParallelMonteCarloEstimator est(g, params, 15, 4);
  EstimatorStats stats;
  est.Estimate(3, &stats);
  EXPECT_EQ(stats.num_walks, est.NumWalks());
  EXPECT_GT(stats.walk_steps, 0u);
}

TEST(ParallelTeaPlusTest, GuaranteeHolds) {
  Graph g = PowerlawCluster(300, 3, 0.3, 4);
  const ApproxParams params = TestParams(1e-3);
  const std::vector<double> exact = ExactHkpr(g, params.t, 9);
  for (uint32_t threads : {1u, 2u, 4u}) {
    ParallelTeaPlusEstimator est(g, params, 17, threads);
    SparseVector rho = est.Estimate(9);
    EXPECT_EQ(CountApproxViolations(g, rho, exact, params.eps_r, params.delta,
                                    1.2),
              0u)
        << "threads=" << threads;
  }
}

TEST(ParallelTeaPlusTest, MatchesSequentialPushPhase) {
  // The sequential phase is identical, so the push counters must agree with
  // the sequential TEA+ configured the same way.
  Graph g = PowerlawCluster(500, 4, 0.3, 5);
  const ApproxParams params = TestParams(1e-4);
  TeaPlusEstimator sequential(g, params, 19);
  ParallelTeaPlusEstimator parallel(g, params, 19, 4);
  EstimatorStats seq_stats, par_stats;
  sequential.Estimate(3, &seq_stats);
  parallel.Estimate(3, &par_stats);
  EXPECT_EQ(par_stats.push_operations, seq_stats.push_operations);
  EXPECT_EQ(par_stats.entries_processed, seq_stats.entries_processed);
  EXPECT_EQ(par_stats.num_walks, seq_stats.num_walks);
}

TEST(ParallelTeaPlusTest, EarlyExitPathIdenticalToSequential) {
  Graph g = testing::MakeBarbell(8);
  const ApproxParams params = TestParams(0.01);  // loose: early exit
  TeaPlusEstimator sequential(g, params, 21);
  ParallelTeaPlusEstimator parallel(g, params, 21, 4);
  EstimatorStats par_stats;
  SparseVector seq = sequential.Estimate(0);
  SparseVector par = parallel.Estimate(0, &par_stats);
  ASSERT_TRUE(par_stats.early_exit);
  ASSERT_EQ(seq.nnz(), par.nnz());
  for (const auto& e : seq.entries()) EXPECT_DOUBLE_EQ(par.Get(e.key), e.value);
}

TEST(ParallelTeaPlusTest, WalkPhaseRunsWhenForced) {
  Graph g = PowerlawCluster(800, 5, 0.3, 6);
  const ApproxParams params = TestParams(1e-5);
  TeaPlusOptions options;
  options.c = 1.0;  // small hop cap -> walk phase required
  ParallelTeaPlusEstimator est(g, params, 23, 4, options);
  EstimatorStats stats;
  SparseVector rho = est.Estimate(3, &stats);
  EXPECT_FALSE(stats.early_exit);
  EXPECT_GT(stats.num_walks, 0u);
  EXPECT_GT(rho.Sum(), 0.5);
}

}  // namespace
}  // namespace hkpr
