// Statistical validation of the estimators' distributional claims:
// Equation (10) makes TEA's walk contribution an unbiased estimator of the
// residual mass a_s[v]; TEA+'s residue reduction plus the eps_r*delta/2
// offset keeps the signed bias within ±eps_r*delta/2 per unit degree; and
// Monte-Carlo's spread shrinks as omega grows. These are Monte-Carlo tests
// over repeated runs with fixed seeds — deterministic, with tolerances set
// by the central limit theorem plus margin.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "graph/generators.h"
#include "hkpr/monte_carlo.h"
#include "hkpr/power_method.h"
#include "hkpr/tea.h"
#include "hkpr/tea_plus.h"
#include "test_util.h"

namespace hkpr {
namespace {

ApproxParams LooseParams() {
  ApproxParams p;
  p.t = 4.0;
  p.eps_r = 0.5;
  p.delta = 5e-3;  // loose: keeps each run cheap so we can afford many
  p.p_f = 1e-2;
  return p;
}

TEST(StatisticalTest, TeaIsUnbiased) {
  // Average many independent TEA runs; per-node means must converge to the
  // exact HKPR (Equation 10: the walk phase is an unbiased estimator of the
  // residual mass, and the reserve is exact).
  Graph g = testing::MakeBarbell(6);
  const ApproxParams params = LooseParams();
  const NodeId seed = 0;
  const std::vector<double> exact = ExactHkpr(g, params.t, seed);

  const int runs = 300;
  TeaEstimator tea(g, params, 12345);
  std::vector<double> mean(g.NumNodes(), 0.0);
  for (int r = 0; r < runs; ++r) {
    SparseVector est = tea.Estimate(seed);
    for (const auto& e : est.entries()) mean[e.key] += e.value;
  }
  for (double& m : mean) m /= runs;

  // CLT tolerance: each run's per-node value deviates by O(alpha/sqrt(n_r));
  // with the loose parameters a 0.01 absolute margin is ~5 sigma.
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_NEAR(mean[v], exact[v], 0.01) << "node " << v;
  }
}

TEST(StatisticalTest, TeaPlusBiasBoundedByOffsetBand) {
  // Theorem 3's mechanism: the residue reduction underestimates by at most
  // eps_r*delta*d(v) and the +eps_r*delta/2*d(v) offset recenters, so the
  // signed bias of the final estimate lies within +-eps_r*delta/2 per unit
  // degree (plus sampling noise).
  Graph g = PowerlawCluster(400, 4, 0.3, 5);
  ApproxParams params = LooseParams();
  params.delta = 2e-3;
  const NodeId seed = 17;
  const std::vector<double> exact = ExactHkpr(g, params.t, seed);

  TeaPlusOptions options;
  options.c = 1.0;  // force the walk phase so reduction + offset engage
  TeaPlusEstimator tea_plus(g, params, 999, options);

  const int runs = 200;
  std::vector<double> mean(g.NumNodes(), 0.0);
  double offset = 0.0;
  for (int r = 0; r < runs; ++r) {
    SparseVector est = tea_plus.Estimate(seed);
    offset = est.degree_offset();
    for (const auto& e : est.entries()) mean[e.key] += e.value;
  }
  ASSERT_GT(offset, 0.0);  // the walk path was really taken
  const double band = params.eps_r * params.delta / 2.0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    const uint32_t d = g.Degree(v);
    if (d == 0) continue;
    const double estimate = mean[v] / runs + offset * d;
    const double signed_bias = (estimate - exact[v]) / d;
    EXPECT_LE(std::abs(signed_bias), band + 0.004) << "node " << v;
  }
}

TEST(StatisticalTest, MonteCarloSpreadShrinksWithOmega) {
  // The run-to-run standard deviation of rho_hat at a probe node must drop
  // roughly like 1/sqrt(omega) when delta is tightened 16x.
  Graph g = testing::MakeBarbell(5);
  const NodeId seed = 0;
  const NodeId probe = 4;  // inside the seed clique: sizable mass

  const auto spread = [&](double delta) {
    ApproxParams params = LooseParams();
    params.delta = delta;
    MonteCarloEstimator mc(g, params, 777);
    const int runs = 60;
    double sum = 0.0, sum_sq = 0.0;
    for (int r = 0; r < runs; ++r) {
      const double x = mc.Estimate(seed).Get(probe);
      sum += x;
      sum_sq += x * x;
    }
    const double m = sum / runs;
    return std::sqrt(std::max(0.0, sum_sq / runs - m * m));
  };

  const double loose = spread(8e-3);
  const double tight = spread(5e-4);
  // 16x more walks -> ~4x smaller sigma; require at least 2x with margin.
  EXPECT_LT(tight, loose / 2.0);
}

TEST(StatisticalTest, WalkEndpointFrequenciesAreConsistentAcrossEstimators) {
  // TEA, TEA+ and Monte-Carlo estimate the same vector; their run-averaged
  // estimates must agree with each other within CLT error (a cross-check
  // that does not rely on the power method at all).
  Graph g = testing::MakeCycle(12);
  const ApproxParams params = LooseParams();
  const NodeId seed = 3;

  const auto mean_estimate = [&](HkprEstimator& est) {
    const int runs = 150;
    std::vector<double> mean(g.NumNodes(), 0.0);
    double offset = 0.0;
    for (int r = 0; r < runs; ++r) {
      SparseVector rho = est.Estimate(seed);
      offset += rho.degree_offset();
      for (const auto& e : rho.entries()) mean[e.key] += e.value;
    }
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      mean[v] = mean[v] / runs + (offset / runs) * g.Degree(v);
    }
    return mean;
  };

  MonteCarloEstimator mc(g, params, 31);
  TeaEstimator tea(g, params, 32);
  TeaPlusEstimator tea_plus(g, params, 33);
  const std::vector<double> mc_mean = mean_estimate(mc);
  const std::vector<double> tea_mean = mean_estimate(tea);
  const std::vector<double> plus_mean = mean_estimate(tea_plus);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_NEAR(tea_mean[v], mc_mean[v], 0.015) << v;
    EXPECT_NEAR(plus_mean[v], mc_mean[v], 0.015) << v;
  }
}

}  // namespace
}  // namespace hkpr
