// Tests for per-query plans and the adaptive backend router
// (hkpr/router.h) and their integration through the serving stack:
// override composition and plan resolution, the rule policy's decisions,
// routed results bit-identical to directly invoking the chosen backend,
// plan-keyed caching (distinct plans never share entries), live backend
// switches under load (no drain, no stale plans), and per-graph plan
// defaults in MultiGraphService.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "hkpr/backend.h"
#include "hkpr/queries.h"
#include "hkpr/router.h"
#include "service/graph_store.h"
#include "service/multi_graph_service.h"
#include "test_util.h"

namespace hkpr {
namespace {

ApproxParams TestParams(double delta) {
  ApproxParams p;
  p.t = 5.0;
  p.eps_r = 0.5;
  p.delta = delta;
  p.p_f = 1e-4;
  return p;
}

void ExpectSameVector(const SparseVector& a, const SparseVector& b) {
  ASSERT_EQ(a.nnz(), b.nnz());
  EXPECT_DOUBLE_EQ(a.degree_offset(), b.degree_offset());
  for (const auto& e : a.entries()) EXPECT_DOUBLE_EQ(b.Get(e.key), e.value);
}

/// A 602-node graph whose seeds span every routing class: a 600-cycle
/// (nodes 0..599, degree 2-3), a hub (node 600, degree 100 >> 8x the ~2.3
/// average), and a pendant leaf (node 601, degree 1). Large enough that
/// the small-graph rule does not fire.
Graph MakeRoutingGraph() {
  GraphBuilder b(602);
  for (uint32_t v = 0; v < 600; ++v) b.AddEdge(v, (v + 1) % 600);
  for (uint32_t v = 0; v < 100; ++v) b.AddEdge(600, v);
  b.AddEdge(601, 300);
  return b.Build();
}

constexpr NodeId kHub = 600;
constexpr NodeId kLeaf = 601;
constexpr NodeId kMid = 450;

TEST(QueryPlanTest, OverridesComposeOntoDefaults) {
  const ApproxParams base = TestParams(1e-3);

  PlanOverrides none;
  EXPECT_TRUE(none.empty());
  ApproxParams same = ApplyParamOverrides(base, none);
  EXPECT_EQ(same.t, base.t);
  EXPECT_EQ(same.eps_r, base.eps_r);
  EXPECT_EQ(same.delta, base.delta);
  EXPECT_EQ(same.p_f, base.p_f);

  PlanOverrides some;
  some.t = 2.5;
  some.delta = 1e-2;
  EXPECT_FALSE(some.empty());
  ApproxParams merged = ApplyParamOverrides(base, some);
  EXPECT_EQ(merged.t, 2.5);
  EXPECT_EQ(merged.eps_r, base.eps_r);  // untouched
  EXPECT_EQ(merged.delta, 1e-2);
  EXPECT_EQ(merged.p_f, base.p_f);
}

TEST(QueryPlanTest, ResolvePicksBackendAndValidatesNames) {
  const Graph g = MakeRoutingGraph();
  const ApproxParams params = TestParams(1e-3);
  const RoutingPolicy& policy = DefaultRouter();

  // No overrides, concrete default: the default's plan.
  std::optional<QueryPlan> plan =
      ResolveQueryPlan(g, kMid, "tea+", params, {}, policy);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->backend, "tea+");
  EXPECT_EQ(plan->backend_id, StableBackendId("tea+"));
  EXPECT_EQ(plan->params.t, params.t);

  // Request override wins over the default.
  PlanOverrides pick;
  pick.backend = "hk-relax";
  pick.t = 3.0;
  plan = ResolveQueryPlan(g, kMid, "tea+", params, pick, policy);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->backend, "hk-relax");
  EXPECT_EQ(plan->backend_id, StableBackendId("hk-relax"));
  EXPECT_EQ(plan->params.t, 3.0);

  // "auto" (as default or as override) resolves through the policy to a
  // concrete registered name — never to "auto" itself.
  plan = ResolveQueryPlan(g, kMid, "auto", params, {}, policy);
  ASSERT_TRUE(plan.has_value());
  EXPECT_NE(plan->backend, kAutoBackend);
  EXPECT_TRUE(EstimatorRegistry::Global().Contains(plan->backend));

  PlanOverrides route;
  route.backend = "auto";
  plan = ResolveQueryPlan(g, kMid, "tea+", params, route, policy);
  ASSERT_TRUE(plan.has_value());
  EXPECT_NE(plan->backend, kAutoBackend);

  // An unknown *requested* backend reports gracefully.
  PlanOverrides bogus;
  bogus.backend = "no-such-backend";
  EXPECT_FALSE(
      ResolveQueryPlan(g, kMid, "tea+", params, bogus, policy).has_value());

  // Out-of-range *requested* parameters report gracefully too — external
  // input must never reach an estimator constructor's check-fail.
  for (auto&& broken : {PlanOverrides{.t = -1.0}, PlanOverrides{.t = 1e9},
                        PlanOverrides{.eps_r = 1.5},
                        PlanOverrides{.delta = 0.0}}) {
    EXPECT_FALSE(
        ResolveQueryPlan(g, kMid, "tea+", params, broken, policy).has_value());
  }
  EXPECT_FALSE(ServableParams(ApplyParamOverrides(params, {.eps_r = 0.0})));
  EXPECT_TRUE(ServableParams(params));
}

TEST(RouterTest, RuleBasedRoutesOnDegreeTAndScale) {
  const Graph g = MakeRoutingGraph();
  const RuleBasedRouter router;  // default thresholds
  RoutingQuery query;
  query.num_nodes = g.NumNodes();
  query.num_edges = g.NumEdges();
  query.avg_degree = g.AverageDegree();
  query.params = TestParams(1e-3);

  // Default regime (t = 5, mid-degree seed, big graph): TEA+ — the
  // paper's headline winner. kMid sits on the cycle with degree 2, just
  // above the 0.5 x avg-degree (~2.33) low-degree cut of 1.17.
  query.seed = kMid;
  query.seed_degree = g.Degree(kMid);
  EXPECT_EQ(router.Route(query), "tea+");

  // Hub seed: TEA+ as well — its push phase certifies early on dense
  // frontiers, so the hub is its cheapest case.
  query.seed = kHub;
  query.seed_degree = g.Degree(kHub);
  EXPECT_EQ(router.Route(query), "tea+");

  // Low-degree seed at moderate t: below the measured crossover, route to
  // deterministic push.
  query.seed = kLeaf;
  query.seed_degree = g.Degree(kLeaf);
  EXPECT_EQ(router.Route(query), "hk-relax");
  // ... but not when the series is long: the low-degree rule is t-gated.
  query.params.t = 9.0;
  EXPECT_EQ(router.Route(query), "tea+");

  // Small t routes to push regardless of the seed.
  query.params.t = 0.5;
  query.seed = kHub;
  query.seed_degree = g.Degree(kHub);
  EXPECT_EQ(router.Route(query), "hk-relax");

  // Tiny graph: Monte-Carlo (omega ~ n is trivial there).
  query.params.t = 5.0;
  query.num_nodes = 100;
  EXPECT_EQ(router.Route(query), "monte-carlo");

  // Thresholds are knobs: a custom policy can move every cut (and a
  // deployment that measures the opposite crossover can flip the rule).
  RuleBasedRouterOptions custom;
  custom.small_t = 10.0;
  custom.push_backend = "push";
  const RuleBasedRouter eager(custom);
  EXPECT_EQ(eager.Route(query), "push");
}

TEST(RouterTest, ExecutorPlansAreLazyAndBitIdenticalToDedicatedBackends) {
  const Graph g = MakeRoutingGraph();
  const ApproxParams params = TestParams(1e-3);
  const uint64_t kSeed = 1234;

  QueryExecutor executor(g, params, kSeed, BackendSpec{});  // default tea+
  EXPECT_EQ(executor.num_plan_estimators(), 1u);

  // Dedicated single-backend executors as the ground truth.
  std::map<std::string, std::unique_ptr<QueryExecutor>> direct;
  for (const char* name : {"tea+", "hk-relax", "monte-carlo"}) {
    BackendSpec spec;
    spec.name = name;
    direct.emplace(name, std::make_unique<QueryExecutor>(
                             g, params, kSeed, ResolvedSpec(spec, g, params)));
  }

  const std::vector<NodeId> seeds = {kMid, kHub, kLeaf, 0, 599, kHub, kMid};
  std::set<std::string> routed_backends;
  for (size_t i = 0; i < seeds.size(); ++i) {
    std::optional<QueryPlan> plan = ResolveQueryPlan(
        g, seeds[i], kAutoBackend, params, {}, DefaultRouter());
    ASSERT_TRUE(plan.has_value());
    routed_backends.insert(plan->backend);
    const SparseVector routed = executor.Answer(seeds[i], i, *plan);
    const SparseVector reference = direct.at(plan->backend)->Answer(seeds[i], i);
    ExpectSameVector(routed, reference);
  }
  // One estimator per distinct plan, built lazily — not per query.
  EXPECT_EQ(executor.num_plan_estimators(), routed_backends.size());

  // Explicit t-override plans are distinct estimators too, and also
  // bit-identical to a dedicated executor constructed on those params.
  PlanOverrides small_t;
  small_t.t = 0.5;  // the small-t rule routes any seed to push
  std::optional<QueryPlan> hub_plan = ResolveQueryPlan(
      g, kHub, kAutoBackend, params, small_t, DefaultRouter());
  ASSERT_TRUE(hub_plan.has_value());
  EXPECT_EQ(hub_plan->backend, "hk-relax");
  const SparseVector routed = executor.Answer(kHub, 99, *hub_plan);
  BackendSpec spec;
  spec.name = hub_plan->backend;
  QueryExecutor dedicated(g, hub_plan->params, kSeed, spec);
  ExpectSameVector(routed, dedicated.Answer(kHub, 99));
}

TEST(RouterTest, BatchEngineAnswersExplicitPlans) {
  const Graph g = MakeRoutingGraph();
  const ApproxParams params = TestParams(1e-3);
  const std::vector<NodeId> seeds = {kMid, kHub, kLeaf, 7, 123};

  BatchQueryEngine engine(g, params, 77, 2);
  EXPECT_EQ(engine.default_plan().backend, "tea+");

  // A plan naming another backend runs that backend, bit-identical to an
  // engine constructed on it directly (same engine seed and batch offset).
  PlanOverrides pick;
  pick.backend = "hk-relax";
  std::optional<QueryPlan> plan = ResolveQueryPlan(
      g, seeds.front(), "tea+", params, pick, DefaultRouter());
  ASSERT_TRUE(plan.has_value());
  const std::vector<SparseVector> via_plan = engine.EstimateBatch(seeds, *plan);

  BackendSpec spec;
  spec.name = "hk-relax";
  BatchQueryEngine dedicated(g, params, 77, 2, spec);
  const std::vector<SparseVector> reference = dedicated.EstimateBatch(seeds);
  ASSERT_EQ(via_plan.size(), reference.size());
  for (size_t i = 0; i < via_plan.size(); ++i) {
    ExpectSameVector(via_plan[i], reference[i]);
  }
}

TEST(RoutedServiceTest, AutoPlansBitIdenticalToChosenBackends) {
  const Graph g = MakeRoutingGraph();
  const ApproxParams params = TestParams(1e-3);
  const uint64_t kSeed = 99;

  ServiceOptions options;
  options.backend.name = std::string(kAutoBackend);
  options.num_workers = 2;
  options.cache_capacity = 0;  // every query computes
  AsyncQueryService service(g, params, kSeed, options);

  // Sequential submit-then-wait pins query index i to seeds[i]. The mix
  // of cycle, hub and leaf seeds (plus a t override riding along) makes
  // the router pick at least two distinct backends.
  SubmitOptions submit;
  submit.plan.t = 2.5;
  const std::vector<NodeId> seeds = {kMid, kHub, kLeaf, 42, kHub};
  std::map<std::string, std::unique_ptr<QueryExecutor>> direct;
  std::set<std::string> routed;
  for (size_t i = 0; i < seeds.size(); ++i) {
    const QueryResult result =
        service.Submit(seeds[i], submit).result.get();
    ASSERT_EQ(result.status, QueryStatus::kOk);

    std::optional<QueryPlan> plan = ResolveQueryPlan(
        g, seeds[i], kAutoBackend, params, submit.plan, service.router());
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(result.backend, plan->backend);
    EXPECT_EQ(result.backend_id, plan->backend_id);
    routed.insert(result.backend);

    auto it = direct.find(plan->backend);
    if (it == direct.end()) {
      BackendSpec spec;
      spec.name = plan->backend;
      it = direct
               .emplace(plan->backend,
                        std::make_unique<QueryExecutor>(g, plan->params,
                                                        kSeed, spec))
               .first;
    }
    // Bit-identical to directly invoking the routed backend at the same
    // (engine seed, query index).
    ExpectSameVector(*result.estimate, it->second->Answer(seeds[i], i));
  }
  EXPECT_GE(routed.size(), 2u) << "workload failed to exercise the router";
}

TEST(RoutedServiceTest, CacheIsKeyedOnTheFullPlan) {
  const Graph g = MakeRoutingGraph();
  const ApproxParams params = TestParams(1e-3);

  ServiceOptions options;
  options.num_workers = 1;
  options.cache_capacity = 128;
  AsyncQueryService service(g, params, 7, options);

  const NodeId seed = kMid;
  auto submit_and_get = [&](const SubmitOptions& submit) {
    QueryResult result = service.Submit(seed, submit).result.get();
    EXPECT_EQ(result.status, QueryStatus::kOk);
    return result;
  };

  // Default plan: first computes, repeat hits.
  EXPECT_FALSE(submit_and_get({}).from_cache);
  EXPECT_TRUE(submit_and_get({}).from_cache);

  // A t-override is a distinct plan: its first query must compute.
  SubmitOptions warm_t;
  warm_t.plan.t = 3.0;
  EXPECT_FALSE(submit_and_get(warm_t).from_cache);
  EXPECT_TRUE(submit_and_get(warm_t).from_cache);

  // Another backend is a distinct plan as well.
  SubmitOptions relax;
  relax.plan.backend = "hk-relax";
  EXPECT_FALSE(submit_and_get(relax).from_cache);
  EXPECT_TRUE(submit_and_get(relax).from_cache);

  // The *same resolved plan* spelled explicitly shares the default's
  // entry: plan identity, not request spelling, keys the cache.
  SubmitOptions explicit_default;
  explicit_default.plan.backend = "tea+";
  EXPECT_TRUE(submit_and_get(explicit_default).from_cache);

  // Exactly one computation per distinct plan.
  EXPECT_EQ(service.Stats().computed, 3u);

  // An unknown backend or out-of-range override never reaches the queue
  // or the cache — counted as invalid_plans, not as admission rejects.
  SubmitOptions bogus;
  bogus.plan.backend = "no-such-backend";
  EXPECT_EQ(service.Submit(seed, bogus).result.get().status,
            QueryStatus::kInvalidArgument);
  SubmitOptions negative_t;
  negative_t.plan.t = -1.0;
  EXPECT_EQ(service.Submit(seed, negative_t).result.get().status,
            QueryStatus::kInvalidArgument);
  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.computed, 3u);
  EXPECT_EQ(stats.invalid_plans, 2u);
  EXPECT_EQ(stats.rejected, 0u);
}

TEST(RoutedServiceTest, PlanEstimatorsAreBoundedPerExecutor) {
  // A client spraying distinct parameter overrides must not grow worker
  // memory without bound: each executor retains at most
  // kMaxPlanEstimators plans (LRU-evicting non-default ones), and an
  // evicted plan rebuilds bit-identically.
  const Graph g = testing::MakeComplete(16);
  const ApproxParams params = TestParams(1e-2);
  QueryExecutor executor(g, params, 3, BackendSpec{});

  QueryPlan plan = executor.default_plan();
  const SparseVector first = executor.Answer(1, 7, plan);
  for (int i = 1; i <= 40; ++i) {
    QueryPlan variant = plan;
    variant.params.t = 5.0 + 0.001 * i;  // 40 distinct plans
    executor.Answer(1, static_cast<uint64_t>(i), variant);
    EXPECT_LE(executor.num_plan_estimators(),
              QueryExecutor::kMaxPlanEstimators);
  }
  // The default plan is pinned (never evicted) and still answers
  // bit-identically after the churn.
  ExpectSameVector(executor.Answer(1, 7, plan), first);
}

TEST(RoutedServiceTest, BackendSwitchUnderLoadNoDrainNoStalePlans) {
  const Graph g = testing::MakeComplete(24);
  ApproxParams params = TestParams(1e-2);

  ServiceOptions options;
  options.num_workers = 2;
  options.cache_capacity = 0;  // every query computes on its plan
  options.max_queue_depth = 1u << 16;
  AsyncQueryService service(g, params, 11, options);

  const std::vector<std::string> cycle = {"hk-relax", "monte-carlo", "tea+"};
  std::set<uint32_t> allowed;
  allowed.insert(StableBackendId("tea+"));
  for (const std::string& name : cycle) {
    allowed.insert(StableBackendId(name));
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> load_ok{0};
  std::vector<std::thread> clients;
  for (uint32_t c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const NodeId seed = static_cast<NodeId>((c * 7 + i++) % g.NumNodes());
        const QueryResult result = service.Submit(seed).result.get();
        ASSERT_EQ(result.status, QueryStatus::kOk);
        // Every result ran some default that was live during the run —
        // never a half-switched or unknown plan.
        ASSERT_TRUE(allowed.count(result.backend_id))
            << result.backend;
        load_ok.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Flip the default backend repeatedly while the load runs. Every switch
  // is a pure config update; a query submitted after the switch returns
  // must already resolve to the new default.
  for (int round = 0; round < 4; ++round) {
    for (const std::string& name : cycle) {
      ASSERT_TRUE(service.SetDefaultBackend(name));
      EXPECT_EQ(service.default_backend(), name);
      const QueryResult result = service.Submit(0).result.get();
      ASSERT_EQ(result.status, QueryStatus::kOk);
      EXPECT_EQ(result.backend, name) << "stale plan after switch";
    }
  }
  stop = true;
  for (std::thread& t : clients) t.join();

  // No drain happened: the service never stopped, nothing was rejected,
  // and every submission completed.
  EXPECT_FALSE(service.stopped());
  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.completed, stats.submitted);
  EXPECT_GE(load_ok.load(), 1u);
  // Workers were never rebuilt: the switch only ever *adds* lazily built
  // plan estimators (at most one per backend per worker).
  EXPECT_EQ(service.num_workers(), 2u);

  // Unknown names are rejected without touching the config.
  EXPECT_FALSE(service.SetDefaultBackend("no-such-backend"));
  EXPECT_EQ(service.default_backend(), "tea+");
}

TEST(PlanDefaultsTest, PerGraphDefaultsApplyAndSurviveRepublish) {
  GraphStore store;
  store.Publish("a", PowerlawCluster(300, 3, 0.3, 2));
  store.Publish("b", PowerlawCluster(300, 3, 0.3, 3));
  const ApproxParams params = TestParams(1e-3);

  MultiGraphOptions options;
  options.worker_budget = 2;
  options.service.cache_capacity = 0;
  MultiGraphService service(store, params, 5, options);

  // Pin graph "a" to hk-relax; "b" keeps the template default.
  PlanOverrides pin;
  pin.backend = "hk-relax";
  ASSERT_TRUE(service.SetGraphDefaults("a", pin));
  EXPECT_EQ(service.GraphDefaults("a").backend, "hk-relax");

  QueryResult on_a = service.Submit("a", 1).result.get();
  QueryResult on_b = service.Submit("b", 1).result.get();
  ASSERT_EQ(on_a.status, QueryStatus::kOk);
  ASSERT_EQ(on_b.status, QueryStatus::kOk);
  EXPECT_EQ(on_a.backend, "hk-relax");
  EXPECT_EQ(on_b.backend, "tea+");

  // Per-graph parameter overrides change what the plan computes: graph
  // "b" at t = 2.5 matches a dedicated executor on those params at the
  // same (engine seed, query index) — index 1, since "b" served one query.
  PlanOverrides retune;
  retune.t = 2.5;
  ASSERT_TRUE(service.SetGraphDefaults("b", retune));
  QueryResult retuned = service.Submit("b", 9).result.get();
  ASSERT_EQ(retuned.status, QueryStatus::kOk);
  BackendSpec spec;  // tea+
  QueryExecutor reference(*store.Get("b").graph,
                          ApplyParamOverrides(params, retune), 5, spec);
  ExpectSameVector(*retuned.estimate, reference.Answer(9, 1));

  // Defaults survive a republish (the rebuilt service re-applies them).
  service.Publish("a", PowerlawCluster(310, 3, 0.3, 21));
  on_a = service.Submit("a", 2).result.get();
  ASSERT_EQ(on_a.status, QueryStatus::kOk);
  EXPECT_EQ(on_a.backend, "hk-relax");

  // A service-wide switch overrides per-graph backend pins (parameter
  // overrides keep applying) — live, no rebuild.
  ASSERT_TRUE(service.SetDefaultBackend("monte-carlo"));
  EXPECT_EQ(service.default_backend(), "monte-carlo");
  on_a = service.Submit("a", 3).result.get();
  on_b = service.Submit("b", 3).result.get();
  EXPECT_EQ(on_a.backend, "monte-carlo");
  EXPECT_EQ(on_b.backend, "monte-carlo");
  EXPECT_TRUE(service.GraphDefaults("a").backend.empty());

  // Unknown graphs and unknown backends are rejected.
  EXPECT_FALSE(service.SetGraphDefaults("nosuch", pin));
  PlanOverrides bogus;
  bogus.backend = "no-such-backend";
  EXPECT_FALSE(service.SetGraphDefaults("a", bogus));
  EXPECT_FALSE(service.SetDefaultBackend("no-such-backend"));

  // Dropping a graph clears its overrides: a same-named successor starts
  // from the template.
  PlanOverrides repin;
  repin.backend = "hk-relax";
  ASSERT_TRUE(service.SetGraphDefaults("a", repin));
  ASSERT_TRUE(service.Drop("a"));
  EXPECT_TRUE(service.GraphDefaults("a").backend.empty());
  service.Publish("a", PowerlawCluster(300, 3, 0.3, 4));
  on_a = service.Submit("a", 4).result.get();
  ASSERT_EQ(on_a.status, QueryStatus::kOk);
  EXPECT_EQ(on_a.backend, "monte-carlo");  // the template, not the pin
}

}  // namespace
}  // namespace hkpr
