// Side-by-side accuracy/cost comparison of every HKPR estimator in the
// library on the same query, with exact ground truth from the power method.

#include <cstdio>
#include <memory>
#include <vector>

#include "baselines/cluster_hkpr.h"
#include "baselines/hk_relax.h"
#include "baselines/ppr_nibble.h"
#include "clustering/metrics.h"
#include "common/timer.h"
#include "graph/generators.h"
#include "hkpr/monte_carlo.h"
#include "hkpr/power_method.h"
#include "hkpr/tea.h"
#include "hkpr/tea_plus.h"

using namespace hkpr;

int main() {
  const Graph graph = PowerlawCluster(30000, 5, 0.3, 9);
  const NodeId seed = 100;
  std::printf("graph: %u nodes, %llu edges; seed %u (degree %u)\n",
              graph.NumNodes(),
              static_cast<unsigned long long>(graph.NumEdges()), seed,
              graph.Degree(seed));

  std::printf("computing exact HKPR (power method)...\n");
  std::vector<double> exact = ExactHkpr(graph, 5.0, seed);
  std::vector<double> exact_normalized = exact;
  NormalizeByDegree(graph, exact_normalized);

  ApproxParams params;
  params.t = 5.0;
  params.eps_r = 0.5;
  params.delta = 1.0 / graph.NumNodes();
  params.p_f = 1e-6;

  MonteCarloEstimator mc(graph, params, 1);
  TeaEstimator tea(graph, params, 2);
  TeaPlusEstimator tea_plus(graph, params, 3);
  HkRelaxOptions relax_options;
  relax_options.eps_a = params.eps_r * params.delta;  // same absolute budget
  HkRelaxEstimator relax(graph, relax_options);

  std::printf("\n%-12s %10s %10s %12s %10s %12s\n", "algorithm", "time",
              "support", "max |err|/d", "NDCG@200", "violations");
  std::vector<HkprEstimator*> estimators = {&mc, &tea, &tea_plus, &relax};
  for (HkprEstimator* est : estimators) {
    EstimatorStats stats;
    WallTimer timer;
    SparseVector rho = est->Estimate(seed, &stats);
    const double ms = timer.ElapsedMillis();
    const double err = MaxNormalizedError(graph, rho, exact);
    const double ndcg = NdcgAtK(graph, rho, exact_normalized, 200);
    const size_t violations = CountApproxViolations(
        graph, rho, exact, params.eps_r, params.delta);
    std::printf("%-12s %8.1fms %10zu %12.2e %10.4f %12zu\n",
                std::string(est->name()).c_str(), ms, rho.nnz(), err, ndcg,
                violations);
  }

  // PPR for contrast: a different proximity measure, same sweep machinery.
  PprNibbleOptions ppr_options;
  ppr_options.eps = 1e-7;
  PprNibbleEstimator ppr(graph, ppr_options);
  WallTimer timer;
  SparseVector p = ppr.Estimate(seed);
  std::printf("%-12s %8.1fms %10zu %12s %10s %12s  (different measure)\n",
              "PR-Nibble", timer.ElapsedMillis(), p.nnz(), "-", "-", "-");
  return 0;
}
