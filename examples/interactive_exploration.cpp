// Interactive exploration — the paper's motivating scenario (Section 1).
//
// "Bob" explores the local cluster of a hub account in a Twitter-like
// network, then hops to another account inside that cluster and expands
// again. The requirement is sub-second latency per hop; the example runs
// the same queries with HK-Relax and TEA+ and prints both latencies,
// reproducing the Elon-Musk/Kevin-Rose anecdote shape (TEA+ an order of
// magnitude faster at equal cluster quality).

#include <cstdio>
#include <vector>

#include "baselines/hk_relax.h"
#include "clustering/local_cluster.h"
#include "graph/generators.h"
#include "hkpr/tea_plus.h"

using namespace hkpr;

namespace {

NodeId HighestDegreeNode(const Graph& graph) {
  NodeId best = 0;
  for (NodeId v = 1; v < graph.NumNodes(); ++v) {
    if (graph.Degree(v) > graph.Degree(best)) best = v;
  }
  return best;
}

}  // namespace

int main() {
  // Twitter-like: heavy-tailed R-MAT graph.
  const Graph graph = Rmat(/*scale=*/15, /*avg_degree=*/32.0, /*seed=*/11);
  std::printf("social graph: %u nodes, %llu edges, max degree %u\n",
              graph.NumNodes(),
              static_cast<unsigned long long>(graph.NumEdges()),
              graph.MaxDegree());

  ApproxParams params;
  params.t = 5.0;
  params.eps_r = 0.5;
  params.delta = 1.0 / graph.NumNodes();
  params.p_f = 1e-6;
  TeaPlusEstimator tea_plus(graph, params, 1);

  HkRelaxOptions relax_options;
  relax_options.t = 5.0;
  relax_options.eps_a = 1e-5;
  HkRelaxEstimator hk_relax(graph, relax_options);

  // Session: start at the biggest hub ("Elon"), then continue from another
  // member of the returned cluster ("Kevin"), three hops total.
  NodeId current = HighestDegreeNode(graph);
  for (int hop = 1; hop <= 3; ++hop) {
    std::printf("\n-- exploration hop %d: seed %u (degree %u) --\n", hop,
                current, graph.Degree(current));

    LocalClusterResult fast = LocalCluster(graph, tea_plus, current);
    LocalClusterResult slow = LocalCluster(graph, hk_relax, current);
    std::printf("TEA+     : %7.1f ms, cluster %6zu nodes, phi %.4f\n",
                fast.total_ms, fast.cluster.size(), fast.conductance);
    std::printf("HK-Relax : %7.1f ms, cluster %6zu nodes, phi %.4f\n",
                slow.total_ms, slow.cluster.size(), slow.conductance);

    // Pick the next account to explore: the highest-degree cluster member
    // other than the current seed.
    NodeId next = current;
    for (NodeId v : fast.cluster) {
      if (v != current && (next == current ||
                           graph.Degree(v) > graph.Degree(next))) {
        next = v;
      }
    }
    if (next == current) break;  // singleton cluster; nothing to follow
    current = next;
  }
  return 0;
}
