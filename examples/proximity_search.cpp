// Proximity search: top-k heat-kernel neighbors and seed-set queries.
//
// Shows the higher-level query API: single-seed top-k ranking (who is most
// heat-kernel-similar to this node?), multi-seed set queries (linearity of
// HKPR), and the multi-threaded estimator for latency-sensitive use.

#include <cstdio>
#include <vector>

#include "graph/generators.h"
#include "hkpr/queries.h"
#include "hkpr/tea_plus.h"
#include "parallel/parallel_tea_plus.h"

using namespace hkpr;

int main() {
  CommunityGraph cg = LfrLike(
      [] {
        LfrOptions options;
        options.n = 15000;
        options.mu = 0.15;
        return options;
      }(),
      29);
  const Graph& graph = cg.graph;
  std::printf("graph: %u nodes, %llu edges\n", graph.NumNodes(),
              static_cast<unsigned long long>(graph.NumEdges()));

  ApproxParams params;
  params.t = 5.0;
  params.eps_r = 0.5;
  params.delta = 0.1 / graph.NumNodes();
  params.p_f = 1e-6;
  ParallelTeaPlusEstimator estimator(graph, params, /*seed=*/31,
                                     /*num_threads=*/0);

  // Single-seed top-k: the nodes "closest" to the query under heat-kernel
  // proximity. The seed's own community should dominate.
  const NodeId query = cg.communities.Community(5)[0];
  std::printf("\ntop-10 heat-kernel neighbors of node %u:\n", query);
  const auto top = TopKQuery(graph, estimator, query, 10);
  for (const ScoredNode& s : top) {
    const int64_t community =
        cg.communities.CommunityOf(s.node, graph.NumNodes());
    std::printf("  node %6u  score %.6f  community %lld%s\n", s.node, s.score,
                static_cast<long long>(community),
                community == cg.communities.CommunityOf(query,
                                                        graph.NumNodes())
                    ? "  (same as query)"
                    : "");
  }

  // Seed-set query: proximity to a group of nodes at once, weighting one
  // member three times as strongly.
  std::vector<NodeId> group = {cg.communities.Community(5)[0],
                               cg.communities.Community(5)[1],
                               cg.communities.Community(5)[2]};
  std::vector<double> weights = {3.0, 1.0, 1.0};
  SparseVector set_estimate =
      EstimateSeedSet(graph, estimator, group, weights);
  const auto set_top = TopKNormalized(graph, set_estimate, 5);
  std::printf("\ntop-5 for the weighted seed set {%u:3, %u:1, %u:1}:\n",
              group[0], group[1], group[2]);
  for (const ScoredNode& s : set_top) {
    std::printf("  node %6u  score %.6f\n", s.node, s.score);
  }
  return 0;
}
