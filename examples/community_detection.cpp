// Community detection against ground truth (the Table 8 scenario).
//
// Generates an LFR benchmark with planted communities, runs local
// clustering from seeds inside known communities, and reports
// precision/recall/F1 per query plus aggregates.

#include <cstdio>

#include "bench_util/workload.h"
#include "clustering/local_cluster.h"
#include "clustering/metrics.h"
#include "graph/generators.h"
#include "hkpr/tea_plus.h"

using namespace hkpr;

int main() {
  LfrOptions lfr;
  lfr.n = 20000;
  lfr.degree_exponent = 2.5;
  lfr.min_degree = 4;
  lfr.max_degree = 80;
  lfr.mu = 0.2;
  lfr.min_community = 30;
  lfr.max_community = 400;
  CommunityGraph cg = LfrLike(lfr, 3);
  std::printf("LFR graph: %u nodes, %llu edges, %zu planted communities\n",
              cg.graph.NumNodes(),
              static_cast<unsigned long long>(cg.graph.NumEdges()),
              cg.communities.NumCommunities());

  ApproxParams params;
  params.t = 5.0;
  params.eps_r = 0.5;
  params.delta = 0.1 / cg.graph.NumNodes();
  params.p_f = 1e-6;
  TeaPlusEstimator estimator(cg.graph, params, 17);

  Rng rng(23);
  const auto queries =
      CommunitySeeds(cg.graph, cg.communities, /*count=*/10,
                     /*min_size=*/40, rng);

  // Communities here are at most ~400 nodes; cap the sweep volume so the
  // answer stays local even when the graph's globally best cut is a
  // near-bisection (standard Nibble-style practice).
  SweepOptions sweep_options;
  sweep_options.max_volume = cg.graph.Volume() / 20;

  double total_f1 = 0.0;
  double total_ms = 0.0;
  std::printf("\n%6s %9s %9s %7s %7s %7s %9s\n", "seed", "|truth|",
              "|cluster|", "prec", "recall", "F1", "time");
  for (const CommunitySeed& q : queries) {
    LocalClusterResult result =
        LocalCluster(cg.graph, estimator, q.seed, sweep_options);
    const auto& truth = cg.communities.Community(q.community);
    const F1Stats f1 = ComputeF1(result.cluster, truth);
    std::printf("%6u %9zu %9zu %7.3f %7.3f %7.3f %7.1fms\n", q.seed,
                truth.size(), result.cluster.size(), f1.precision, f1.recall,
                f1.f1, result.total_ms);
    total_f1 += f1.f1;
    total_ms += result.total_ms;
  }
  std::printf("\naverage F1 %.3f, average query time %.1f ms over %zu "
              "queries\n",
              total_f1 / queries.size(), total_ms / queries.size(),
              queries.size());
  return 0;
}
