// Quickstart: build a graph, run TEA+, sweep, print the cluster.
//
//   $ ./build/examples/quickstart
//
// This is the 60-second tour of the public API:
//   GraphBuilder / generators  ->  Graph
//   ApproxParams + TeaPlusEstimator  ->  approximate HKPR vector
//   LocalCluster  ->  cluster + conductance

#include <cstdio>

#include "clustering/local_cluster.h"
#include "graph/generators.h"
#include "hkpr/tea_plus.h"

using namespace hkpr;

int main() {
  // A graph with planted structure: 12 communities of 80 nodes.
  CommunityGraph cg = PlantedPartition(/*num_communities=*/12,
                                       /*community_size=*/80,
                                       /*p_in=*/0.25, /*p_out=*/0.002,
                                       /*seed=*/7);
  const Graph& graph = cg.graph;
  std::printf("graph: %u nodes, %llu edges\n", graph.NumNodes(),
              static_cast<unsigned long long>(graph.NumEdges()));

  // Accuracy contract: relative error eps_r on all nodes whose normalized
  // HKPR exceeds delta, with failure probability p_f (Definition 1).
  ApproxParams params;
  params.t = 5.0;       // heat constant
  params.eps_r = 0.5;   // relative error
  params.delta = 1.0 / graph.NumNodes();
  params.p_f = 1e-6;

  TeaPlusEstimator estimator(graph, params, /*rng_seed=*/42);

  // Local clustering from a seed inside community 3.
  const NodeId seed = cg.communities.Community(3)[0];
  LocalClusterResult result = LocalCluster(graph, estimator, seed);

  std::printf("seed %u -> cluster of %zu nodes, conductance %.4f\n", seed,
              result.cluster.size(), result.conductance);
  std::printf("estimate: %.2f ms (%llu pushes, %llu walks), sweep: %.2f ms\n",
              result.estimate_ms,
              static_cast<unsigned long long>(result.stats.push_operations),
              static_cast<unsigned long long>(result.stats.num_walks),
              result.sweep_ms);

  std::printf("first members:");
  for (size_t i = 0; i < result.cluster.size() && i < 12; ++i) {
    std::printf(" %u", result.cluster[i]);
  }
  std::printf("%s\n", result.cluster.size() > 12 ? " ..." : "");
  return 0;
}
