// graph_tool: command-line utility around the graph substrate.
//
//   graph_tool gen <kind> <out.txt> [n]     generate a synthetic graph
//                                           (kinds: plc, grid3d, rmat, er,
//                                            ba, lfr)
//   graph_tool stats <graph.txt>            print structural statistics
//   graph_tool convert <in.txt> <out.bin>   edge list -> binary CSR
//   graph_tool cluster <graph.txt> <seed>   TEA+ local cluster from a seed

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "clustering/local_cluster.h"
#include "common/random.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "graph/stats.h"
#include "graph/subgraph.h"
#include "hkpr/tea_plus.h"

using namespace hkpr;

namespace {

int Generate(const std::string& kind, const std::string& path, uint32_t n) {
  Graph graph;
  if (kind == "plc") {
    graph = PowerlawCluster(n, 5, 0.3, 42);
  } else if (kind == "grid3d") {
    uint32_t side = 10;
    while ((side + 1) * (side + 1) * (side + 1) <= n) ++side;
    graph = Grid3D(side, side, side, true);
  } else if (kind == "rmat") {
    uint32_t scale = 10;
    while ((1u << (scale + 1)) <= n) ++scale;
    graph = Rmat(scale, 16.0, 42);
  } else if (kind == "er") {
    graph = ErdosRenyiGnm(n, 8ull * n, 42);
  } else if (kind == "ba") {
    graph = BarabasiAlbert(n, 4, 42);
  } else if (kind == "lfr") {
    LfrOptions options;
    options.n = n;
    graph = LfrLike(options, 42).graph;
  } else {
    std::fprintf(stderr, "unknown kind '%s'\n", kind.c_str());
    return 1;
  }
  const Status status = SaveEdgeList(graph, path);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %u nodes, %llu edges\n", path.c_str(),
              graph.NumNodes(),
              static_cast<unsigned long long>(graph.NumEdges()));
  return 0;
}

Result<Graph> LoadAny(const std::string& path) {
  if (path.size() > 4 && path.substr(path.size() - 4) == ".bin") {
    return LoadBinary(path);
  }
  return LoadEdgeList(path);
}

int Stats(const std::string& path) {
  auto loaded = LoadAny(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const Graph& g = loaded.value();
  const ComponentLabels cc = ConnectedComponents(g);
  const DegreeStats degrees = ComputeDegreeStats(g);
  Rng rng(1);
  const std::vector<NodeId> lcc = LargestComponent(g);
  std::printf("nodes:            %u\n", g.NumNodes());
  std::printf("edges:            %llu\n",
              static_cast<unsigned long long>(g.NumEdges()));
  std::printf("degree:           avg %.2f / median %.0f / p90 %.0f / max %u\n",
              degrees.mean, degrees.median, degrees.p90, degrees.max);
  std::printf("clustering coef:  %.4f (sampled)\n",
              AverageClusteringCoefficient(g, 2000, rng));
  std::printf("components:       %u\n", cc.num_components);
  std::printf("largest comp.:    %zu nodes\n", lcc.size());
  if (!lcc.empty()) {
    std::printf("diameter (est.):  %u\n", EstimateDiameter(g, lcc.front()));
  }
  std::printf("memory:           %.1f MB\n",
              static_cast<double>(g.MemoryBytes()) / (1024.0 * 1024.0));
  return 0;
}

int Convert(const std::string& in, const std::string& out) {
  auto loaded = LoadEdgeList(in);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const Status status = SaveBinary(loaded.value(), out);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

int Cluster(const std::string& path, NodeId seed) {
  auto loaded = LoadAny(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const Graph& g = loaded.value();
  if (seed >= g.NumNodes() || g.Degree(seed) == 0) {
    std::fprintf(stderr, "seed %u out of range or isolated\n", seed);
    return 1;
  }
  ApproxParams params;
  params.delta = 1.0 / g.NumNodes();
  TeaPlusEstimator estimator(g, params, 42);
  LocalClusterResult result = LocalCluster(g, estimator, seed);
  std::printf("cluster of %zu nodes, conductance %.4f, %.1f ms\n",
              result.cluster.size(), result.conductance, result.total_ms);
  for (size_t i = 0; i < result.cluster.size(); ++i) {
    std::printf("%u%s", result.cluster[i],
                (i + 1) % 16 == 0 || i + 1 == result.cluster.size() ? "\n"
                                                                    : " ");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage:\n"
                 "  %s gen <plc|grid3d|rmat|er|ba|lfr> <out.txt> [n]\n"
                 "  %s stats <graph.txt|graph.bin>\n"
                 "  %s convert <in.txt> <out.bin>\n"
                 "  %s cluster <graph.txt|graph.bin> <seed>\n",
                 argv[0], argv[0], argv[0], argv[0]);
    return 1;
  }
  const std::string command = argv[1];
  if (command == "gen" && argc >= 4) {
    const uint32_t n = argc >= 5 ? static_cast<uint32_t>(std::atoi(argv[4]))
                                 : 10000;
    return Generate(argv[2], argv[3], n);
  }
  if (command == "stats") return Stats(argv[2]);
  if (command == "convert" && argc >= 4) return Convert(argv[2], argv[3]);
  if (command == "cluster" && argc >= 4) {
    return Cluster(argv[2], static_cast<NodeId>(std::atoi(argv[3])));
  }
  std::fprintf(stderr, "bad arguments; run without arguments for usage\n");
  return 1;
}
