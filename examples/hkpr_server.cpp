// hkpr_server: an interactive multi-graph HKPR serving frontend over
// stdin/stdout, optionally also over TCP.
//
//   $ ./build/example_hkpr_server [--graphs=name=path,...] [--graph=PATH]
//                                 [--nodes=N] [--workers=W] [--cache=CAP]
//                                 [--seed=S] [--backend=NAME|auto]
//                                 [--router=rule|learned] [--hedge=on|off]
//                                 [--walk-kernel=scalar|interleaved]
//                                 [--walk-width=N]
//                                 [--listen=PORT] [--net-executors=N]
//                                 [--no-trace]
//
// Loads one or more named graphs into a GraphStore (--graphs takes a
// comma-separated name=path list of SNAP edge-lists; --graph=PATH loads a
// single graph named "default"; with neither, a synthetic powerlaw-cluster
// graph with --nodes nodes is published as "default") and serves
// line-oriented queries through a MultiGraphService — per-graph async
// services sharing a worker budget of --workers threads:
//
//   query <seed> [backend=NAME|auto] [t=V] [eps=V] [delta=V] [tenant=ID]
//                           full HKPR estimate on the current graph;
//                           trailing key=value tokens override this one
//                           query's plan (backend=auto routes adaptively)
//   topk <seed> <k> [backend=...] [t=...] [eps=...] [delta=...]
//                           top-k nodes by normalized HKPR
//   graph load <name> <path>  load/replace (hot-swap) a graph from disk
//   graph use <name>        switch the current graph (err if not loaded)
//   graph drop <name>       remove a graph; its service drains gracefully
//   graph list              loaded graphs with version/size
//   backend [<name>|auto]   show / switch every graph's default backend —
//                           a live config update, no drain or rebuild;
//                           "auto" routes each query by seed degree, t
//                           and graph scale
//   router [<graph>]        routing policy introspection: the policy kind
//                           and, under --router=learned, one line per
//                           candidate backend with its (decayed)
//                           observation count, fitted coefficients and
//                           predicted cost/p95 at the graph's average
//                           degree, then a final "ok router ..." line
//                           with the graph's hedge counters
//   params <graph> [backend=NAME|auto] [t=V] [eps=V] [delta=V]
//                           per-graph default-plan overrides (re-applied
//                           across hot-swaps); with no tokens, shows the
//                           graph's current overrides; "params <graph>
//                           clear" restores the template
//   tenant [<id>]           show / switch the session's tenant (QoS
//                           accounting identity; sessions start in
//                           "default")
//   tenant set <id> [rate=QPS] [burst=N] [quota=N]
//                   [priority=low|normal|high]
//                           configure a tenant's token-bucket rate limit,
//                           in-flight quota and priority class; throttled
//                           / over-quota / shed queries get distinct
//                           "err tenant-..." responses
//   tenant list             one row per tenant: config + admission and
//                           latency counters
//   stats [<name>] [--json] aggregate (or one graph's) counters/latency:
//                           every ServiceStatsSnapshot field plus the
//                           queue-wait/cache/compute stage breakdown when
//                           tracing is on; --json emits the same fields
//                           as one JSON object after the "ok "
//   metrics                 Prometheus-style text: per-graph counters,
//                           stage/latency quantiles, per-(graph, backend)
//                           dimensioned rows and per-tenant
//                           hkpr_tenant_* rows, terminated by a final
//                           "ok metrics graphs=G lines=N" line
//   invalidate              drop every graph's cached estimates
//   quit                    exit (over TCP: closes that connection)
//
// The whole dispatch lives in net/command_processor.h; this binary wires
// it to stdin/stdout and — with --listen=PORT — to an epoll socket
// frontend (net/socket_server.h) serving the same protocol to many
// concurrent pipelined connections. --listen=0 binds an ephemeral port;
// the banner's listen=PORT field reports the resolved one. Both
// transports run concurrently and share the store, service and tenant
// registry; responses for a given command stream are byte-identical
// across them.
//
// Stage tracing, the per-backend metrics registry and the routing event
// log are on by default; --no-trace disables all three (stats then
// reports only the flat counter block — the pre-telemetry shape).
//
// --router=learned swaps the rule thresholds for a per-graph online cost
// model trained from the routing event log (a background trainer drains
// it every 200ms); undertrained graphs route by the rules, so cold
// behavior matches --router=rule. --hedge=on additionally fires the
// runner-up backend when a routed query's compute runs past the model's
// predicted p95 and serves whichever finishes first — inert under the
// rule router, which offers no predictions.
//
// Responses are single lines starting with "ok" or "err", so the server
// can sit behind a pipe or a plain TCP client. Query responses carry
// "backend=<name>" — the plan the query actually ran, which is how a
// routed (auto) query reports the router's choice. Re-`load`ing a name
// hot-swaps it: in-flight queries finish on the old snapshot, later
// queries see the new one, and the version bump makes pre-swap cache
// entries unreachable (cache keys embed the full resolved plan, so
// distinct plans never share entries either). Queries against a
// dropped/unknown current graph report an error — the server never
// silently falls back to another graph.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/parse.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "hkpr/backend.h"
#include "hkpr/walk_kernel.h"
#include "net/command_processor.h"
#include "net/socket_server.h"
#include "service/multi_graph_service.h"

using namespace hkpr;

namespace {

constexpr const char* kValidFlags =
    "--graphs=name=path,... --graph=PATH --nodes=N --workers=W --cache=CAP "
    "--seed=S --backend=NAME|auto --router=rule|learned --hedge=on|off "
    "--walk-kernel=scalar|interleaved --walk-width=N "
    "--listen=PORT --net-executors=N --no-trace";

/// Parses "name=path,name=path,..." into pairs; returns false on syntax
/// errors (missing '=' or empty name/path).
bool ParseGraphList(const std::string& spec,
                    std::vector<std::pair<std::string, std::string>>* out) {
  std::istringstream in(spec);
  std::string item;
  while (std::getline(in, item, ',')) {
    const size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == item.size()) {
      return false;
    }
    out->emplace_back(item.substr(0, eq), item.substr(eq + 1));
  }
  return !out->empty();
}

std::string JoinNames(const std::vector<GraphInfo>& infos) {
  std::string joined;
  for (const GraphInfo& info : infos) {
    if (!joined.empty()) joined += ",";
    joined += info.name;
  }
  return joined.empty() ? "(none)" : joined;
}

/// Splits "--name=value" and matches against `flag` ("--name="). Returns
/// the value on a match, nullopt otherwise.
std::optional<std::string> FlagValue(const char* arg, const char* flag) {
  const size_t len = std::strlen(flag);
  if (std::strncmp(arg, flag, len) != 0) return std::nullopt;
  return std::string(arg + len);
}

/// Numeric flag values go through the validated parsers — `--workers=-1`
/// and `--nodes=abc` are hard errors, never a silent wrap to 4294967295
/// or 0 the way atoi/atoll parsed them.
bool NumericFlag(const std::string& value, const char* flag, uint64_t max,
                 uint64_t* out) {
  const std::optional<uint64_t> parsed = ParseUint64(value, max);
  if (!parsed.has_value()) {
    std::fprintf(stderr,
                 "err invalid value \"%s\" for %s (expected unsigned "
                 "integer <= %llu)\n",
                 value.c_str(), flag,
                 static_cast<unsigned long long>(max));
    return false;
  }
  *out = *parsed;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string graphs_flag;
  std::string graph_path;
  uint64_t nodes = 20000;
  uint64_t workers = 0;
  uint64_t cache_capacity = 4096;
  uint64_t seed = 42;
  std::string backend = "tea+";
  std::string router_flag = "rule";
  std::string hedge_flag = "off";
  WalkKernelOptions walk_kernel;
  bool trace = true;
  bool listen_set = false;
  uint64_t listen_port = 0;
  uint64_t net_executors = 4;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    std::optional<std::string> v;
    if (std::strcmp(arg, "--no-trace") == 0) {
      trace = false;
    } else if ((v = FlagValue(arg, "--router="))) {
      router_flag = *v;
    } else if ((v = FlagValue(arg, "--hedge="))) {
      hedge_flag = *v;
    } else if ((v = FlagValue(arg, "--graphs="))) {
      graphs_flag = *v;
    } else if ((v = FlagValue(arg, "--graph="))) {
      graph_path = *v;
    } else if ((v = FlagValue(arg, "--nodes="))) {
      if (!NumericFlag(*v, "--nodes", UINT32_MAX, &nodes)) return 1;
    } else if ((v = FlagValue(arg, "--workers="))) {
      if (!NumericFlag(*v, "--workers", UINT32_MAX, &workers)) return 1;
    } else if ((v = FlagValue(arg, "--cache="))) {
      if (!NumericFlag(*v, "--cache", SIZE_MAX, &cache_capacity)) return 1;
    } else if ((v = FlagValue(arg, "--seed="))) {
      if (!NumericFlag(*v, "--seed", UINT64_MAX, &seed)) return 1;
    } else if ((v = FlagValue(arg, "--backend="))) {
      backend = *v;
    } else if ((v = FlagValue(arg, "--walk-kernel="))) {
      if (!ParseWalkKernelType(*v, &walk_kernel.type)) {
        std::fprintf(stderr, "err --walk-kernel expects scalar|interleaved\n");
        return 1;
      }
    } else if ((v = FlagValue(arg, "--walk-width="))) {
      uint64_t width = 0;
      if (!NumericFlag(*v, "--walk-width", kMaxWalkKernelWidth, &width) ||
          width == 0) {
        if (width == 0) {
          std::fprintf(stderr, "err --walk-width must be >= 1\n");
        }
        return 1;
      }
      walk_kernel.width = static_cast<uint32_t>(width);
    } else if ((v = FlagValue(arg, "--listen="))) {
      if (!NumericFlag(*v, "--listen", 65535, &listen_port)) return 1;
      listen_set = true;
    } else if ((v = FlagValue(arg, "--net-executors="))) {
      if (!NumericFlag(*v, "--net-executors", 256, &net_executors) ||
          net_executors == 0) {
        if (net_executors == 0) {
          std::fprintf(stderr, "err --net-executors must be >= 1\n");
        }
        return 1;
      }
    } else {
      // A typo like --worker=8 must never be silently ignored.
      std::fprintf(stderr, "err unknown flag \"%s\" (valid: %s)\n", arg,
                   kValidFlags);
      return 1;
    }
  }
  if (nodes == 0) {
    std::fprintf(stderr, "err --nodes must be >= 1\n");
    return 1;
  }
  if (!(backend == kAutoBackend ||
        EstimatorRegistry::Global().Contains(backend))) {
    std::fprintf(stderr, "err unknown backend \"%s\" (available: auto,%s)\n",
                 backend.c_str(),
                 EstimatorRegistry::Global().JoinedNames().c_str());
    return 1;
  }
  if (router_flag != "rule" && router_flag != "learned") {
    std::fprintf(stderr, "err --router expects rule|learned\n");
    return 1;
  }
  if (hedge_flag != "on" && hedge_flag != "off") {
    std::fprintf(stderr, "err --hedge expects on|off\n");
    return 1;
  }

  // Assemble the initial store: --graphs list, --graph single, or a
  // synthetic default.
  GraphStore store;
  std::string current;
  std::vector<std::pair<std::string, std::string>> to_load;
  if (!graphs_flag.empty()) {
    if (!ParseGraphList(graphs_flag, &to_load)) {
      std::fprintf(stderr, "err --graphs expects name=path[,name=path...]\n");
      return 1;
    }
  } else if (!graph_path.empty()) {
    to_load.emplace_back("default", graph_path);
  }
  for (const auto& [name, path] : to_load) {
    Result<Graph> loaded = LoadEdgeList(path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "err cannot load %s: %s\n", path.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    store.Publish(name, std::move(loaded).value());
    if (current.empty()) current = name;
  }
  if (store.Size() == 0) {
    store.Publish("default", PowerlawCluster(static_cast<uint32_t>(nodes), 4,
                                             0.3, seed));
    current = "default";
  }

  // One parameter set serves every graph (cache keys carry the parameters,
  // so this is a policy choice, not a correctness one): delta scales with
  // the first graph's size, as in the single-graph server.
  ApproxParams params;
  params.t = 5.0;
  params.eps_r = 0.5;
  params.delta =
      1.0 / static_cast<double>(store.Get(current).graph->NumNodes());
  params.p_f = 1e-6;

  MultiGraphOptions options;
  options.worker_budget = static_cast<uint32_t>(workers);
  options.service.cache_capacity = static_cast<size_t>(cache_capacity);
  options.service.backend.name = backend;
  options.service.backend.context.walk_kernel = walk_kernel;
  options.service.telemetry.enabled = trace;
  if (router_flag == "learned") {
    options.router = RouterKind::kLearned;
    // Background trainer: fresh routing events reach the cost model a
    // couple hundred milliseconds after they complete.
    options.train_interval = std::chrono::milliseconds(200);
  }
  options.service.hedge.enabled = hedge_flag == "on";
  MultiGraphService service(store, params, seed, options);

  TenantRegistry tenants;
  CommandProcessor processor(store, service, tenants, params, current);

  // The TCP frontend shares the processor (and so the store/service/
  // tenants) with the stdin loop below; each connection gets its own
  // session.
  std::unique_ptr<SocketServer> socket_server;
  if (listen_set) {
    SocketServerOptions net;
    net.port = static_cast<uint16_t>(listen_port);
    net.num_executors = static_cast<size_t>(net_executors);
    socket_server = std::make_unique<SocketServer>(processor, net);
    if (!socket_server->Start()) {
      std::fprintf(stderr, "err cannot listen on port %llu: %s\n",
                   static_cast<unsigned long long>(listen_port),
                   socket_server->error().c_str());
      return 1;
    }
  }

  {
    const std::vector<GraphInfo> infos = store.List();
    std::printf("ok hkpr_server graphs=%zu(%s) current=%s workers=%u "
                "cache=%zu backend=%s router=%s hedge=%s "
                "walk-kernel=%s walk-width=%u",
                infos.size(), JoinNames(infos).c_str(), current.c_str(),
                service.resolved_worker_budget(),
                static_cast<size_t>(cache_capacity), backend.c_str(),
                router_flag.c_str(), hedge_flag.c_str(),
                std::string(WalkKernelTypeName(walk_kernel.type)).c_str(),
                walk_kernel.width);
    if (socket_server != nullptr) {
      // The resolved port — with --listen=0 this is how clients learn
      // the ephemeral port.
      std::printf(" listen=%u", socket_server->port());
    }
    std::printf("\n");
    std::fflush(stdout);
  }

  ClientSession session = processor.NewSession();
  std::string line;
  while (std::getline(std::cin, line)) {
    const CommandResult result = processor.Execute(session, line);
    if (!result.output.empty()) {
      std::fwrite(result.output.data(), 1, result.output.size(), stdout);
      std::fflush(stdout);
    }
    if (result.quit) break;
  }
  if (socket_server != nullptr) socket_server->Stop();
  return 0;
}
