// hkpr_server: an interactive multi-graph HKPR serving frontend over
// stdin/stdout.
//
//   $ ./build/example_hkpr_server [--graphs=name=path,...] [--graph=PATH]
//                                 [--nodes=N] [--workers=W] [--cache=CAP]
//                                 [--seed=S] [--backend=NAME|auto]
//
// Loads one or more named graphs into a GraphStore (--graphs takes a
// comma-separated name=path list of SNAP edge-lists; --graph=PATH loads a
// single graph named "default"; with neither, a synthetic powerlaw-cluster
// graph with --nodes nodes is published as "default") and serves
// line-oriented queries through a MultiGraphService — per-graph async
// services sharing a worker budget of --workers threads:
//
//   query <seed> [backend=NAME|auto] [t=V] [eps=V] [delta=V]
//                           full HKPR estimate on the current graph;
//                           trailing key=value tokens override this one
//                           query's plan (backend=auto routes adaptively)
//   topk <seed> <k> [backend=...] [t=...] [eps=...] [delta=...]
//                           top-k nodes by normalized HKPR
//   graph load <name> <path>  load/replace (hot-swap) a graph from disk
//   graph use <name>        switch the current graph (err if not loaded)
//   graph drop <name>       remove a graph; its service drains gracefully
//   graph list              loaded graphs with version/size
//   backend [<name>|auto]   show / switch every graph's default backend —
//                           a live config update, no drain or rebuild;
//                           "auto" routes each query by seed degree, t
//                           and graph scale
//   params <graph> [backend=NAME|auto] [t=V] [eps=V] [delta=V]
//                           per-graph default-plan overrides (re-applied
//                           across hot-swaps); with no tokens, shows the
//                           graph's current overrides; "params <graph>
//                           clear" restores the template
//   stats [<name>]          aggregate (or one graph's) counters/latency
//   invalidate              drop every graph's cached estimates
//   quit                    exit
//
// Responses are single lines starting with "ok" or "err", so the server
// can sit behind a pipe or a socat socket. Query responses carry
// "backend=<name>" — the plan the query actually ran, which is how a
// routed (auto) query reports the router's choice. Re-`load`ing a name
// hot-swaps it: in-flight queries finish on the old snapshot, later
// queries see the new one, and the version bump makes pre-swap cache
// entries unreachable (cache keys embed the full resolved plan, so
// distinct plans never share entries either). Queries against a
// dropped/unknown current graph report an error — the server never
// silently falls back to another graph.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "graph/generators.h"
#include "graph/graph_io.h"
#include "hkpr/backend.h"
#include "service/multi_graph_service.h"

using namespace hkpr;

namespace {

std::string AvailableBackends() {
  return EstimatorRegistry::Global().JoinedNames();
}

/// Parses "name=path,name=path,..." into pairs; returns false on syntax
/// errors (missing '=' or empty name/path).
bool ParseGraphList(const std::string& spec,
                    std::vector<std::pair<std::string, std::string>>* out) {
  std::istringstream in(spec);
  std::string item;
  while (std::getline(in, item, ',')) {
    const size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == item.size()) {
      return false;
    }
    out->emplace_back(item.substr(0, eq), item.substr(eq + 1));
  }
  return !out->empty();
}

std::string JoinNames(const std::vector<GraphInfo>& infos) {
  std::string joined;
  for (const GraphInfo& info : infos) {
    if (!joined.empty()) joined += ",";
    joined += info.name;
  }
  return joined.empty() ? "(none)" : joined;
}

/// True when `name` is servable as a default/override backend: a registry
/// name or the routing sentinel.
bool KnownBackend(const std::string& name) {
  return name == kAutoBackend || EstimatorRegistry::Global().Contains(name);
}

/// Parses the trailing key=value plan tokens of a query/params line
/// (backend=NAME|auto, t=V, eps=V, delta=V) into `plan`. Returns false —
/// and fills `error` — on an unknown token, a malformed value, or an
/// unregistered backend name.
bool ParsePlanTokens(std::istringstream& in, PlanOverrides* plan,
                     std::string* error) {
  std::string token;
  while (in >> token) {
    const size_t eq = token.find('=');
    const std::string key = token.substr(0, eq);
    char* end = nullptr;
    double value = 0.0;
    if (eq != std::string::npos && eq + 1 < token.size() && key != "backend") {
      value = std::strtod(token.c_str() + eq + 1, &end);
      if (*end != '\0') {
        *error = "malformed value in \"" + token + "\"";
        return false;
      }
    }
    if (key == "backend" && eq != std::string::npos && eq + 1 < token.size()) {
      plan->backend = token.substr(eq + 1);
      if (!KnownBackend(plan->backend)) {
        *error = "unknown backend \"" + plan->backend +
                 "\" (available: auto," + AvailableBackends() + ")";
        return false;
      }
    } else if (key == "t" && end != nullptr) {
      plan->t = value;
    } else if (key == "eps" && end != nullptr) {
      plan->eps_r = value;
    } else if (key == "delta" && end != nullptr) {
      plan->delta = value;
    } else {
      *error = "unknown token \"" + token +
               "\" (expected backend=NAME|auto, t=V, eps=V, delta=V)";
      return false;
    }
  }
  return true;
}

/// Formats one override for the params display ("default" when unset).
std::string FmtOverride(const std::optional<double>& value) {
  if (!value.has_value()) return "default";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", *value);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::string graphs_flag;
  std::string graph_path;
  uint32_t nodes = 20000;
  uint32_t workers = 0;
  size_t cache_capacity = 4096;
  uint64_t seed = 42;
  std::string backend = "tea+";
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--graphs=", 9) == 0) graphs_flag = arg + 9;
    if (std::strncmp(arg, "--graph=", 8) == 0) graph_path = arg + 8;
    if (std::strncmp(arg, "--nodes=", 8) == 0)
      nodes = static_cast<uint32_t>(std::atoi(arg + 8));
    if (std::strncmp(arg, "--workers=", 10) == 0)
      workers = static_cast<uint32_t>(std::atoi(arg + 10));
    if (std::strncmp(arg, "--cache=", 8) == 0)
      cache_capacity = static_cast<size_t>(std::atoll(arg + 8));
    if (std::strncmp(arg, "--seed=", 7) == 0)
      seed = static_cast<uint64_t>(std::atoll(arg + 7));
    if (std::strncmp(arg, "--backend=", 10) == 0) backend = arg + 10;
  }
  if (!KnownBackend(backend)) {
    std::fprintf(stderr, "err unknown backend \"%s\" (available: auto,%s)\n",
                 backend.c_str(), AvailableBackends().c_str());
    return 1;
  }

  // Assemble the initial store: --graphs list, --graph single, or a
  // synthetic default.
  GraphStore store;
  std::string current;
  std::vector<std::pair<std::string, std::string>> to_load;
  if (!graphs_flag.empty()) {
    if (!ParseGraphList(graphs_flag, &to_load)) {
      std::fprintf(stderr, "err --graphs expects name=path[,name=path...]\n");
      return 1;
    }
  } else if (!graph_path.empty()) {
    to_load.emplace_back("default", graph_path);
  }
  for (const auto& [name, path] : to_load) {
    Result<Graph> loaded = LoadEdgeList(path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "err cannot load %s: %s\n", path.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    store.Publish(name, std::move(loaded).value());
    if (current.empty()) current = name;
  }
  if (store.Size() == 0) {
    store.Publish("default", PowerlawCluster(nodes, 4, 0.3, seed));
    current = "default";
  }

  // One parameter set serves every graph (cache keys carry the parameters,
  // so this is a policy choice, not a correctness one): delta scales with
  // the first graph's size, as in the single-graph server.
  ApproxParams params;
  params.t = 5.0;
  params.eps_r = 0.5;
  params.delta = 1.0 / static_cast<double>(store.Get(current).graph->NumNodes());
  params.p_f = 1e-6;

  MultiGraphOptions options;
  options.worker_budget = workers;
  options.service.cache_capacity = cache_capacity;
  options.service.backend.name = backend;
  MultiGraphService service(store, params, seed, options);

  {
    const std::vector<GraphInfo> infos = store.List();
    std::printf("ok hkpr_server graphs=%zu(%s) current=%s workers=%u "
                "cache=%zu backend=%s\n",
                infos.size(), JoinNames(infos).c_str(), current.c_str(),
                service.resolved_worker_budget(), cache_capacity,
                backend.c_str());
    std::fflush(stdout);
  }

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string command;
    in >> command;
    if (command.empty()) continue;
    if (command == "quit" || command == "exit") break;

    if (command == "query" || command == "topk") {
      const GraphSnapshot snapshot = store.Get(current);
      if (!snapshot) {
        std::printf("err unknown graph \"%s\" (graph load/use first)\n",
                    current.c_str());
        std::fflush(stdout);
        continue;
      }
      long long seed_node = -1;
      long long k = 10;
      // A failed extraction writes 0 (C++11), which is a valid node id —
      // restore the sentinel so "query" with no/garbage argument errs.
      if (!(in >> seed_node)) seed_node = -1;
      if (command == "topk" && !(in >> k)) k = -1;
      if (seed_node < 0 || seed_node >= snapshot.graph->NumNodes() || k <= 0) {
        std::printf("err usage: %s <seed in [0,%u)>%s [backend=NAME|auto] "
                    "[t=V] [eps=V] [delta=V]\n",
                    command.c_str(), snapshot.graph->NumNodes(),
                    command == "topk" ? " <k >= 1>" : "");
        std::fflush(stdout);
        continue;
      }
      SubmitOptions submit;
      std::string token_error;
      if (!ParsePlanTokens(in, &submit.plan, &token_error)) {
        std::printf("err %s\n", token_error.c_str());
        std::fflush(stdout);
        continue;
      }
      const NodeId node = static_cast<NodeId>(seed_node);
      QueryHandle handle =
          command == "query"
              ? service.Submit(current, node, submit)
              : service.SubmitTopK(current, node, static_cast<size_t>(k),
                                   submit);
      const QueryResult result = handle.result.get();
      if (result.status != QueryStatus::kOk) {
        if (result.status == QueryStatus::kUnknownGraph) {
          std::printf("err unknown graph \"%s\" (dropped concurrently?)\n",
                      current.c_str());
        } else {
          std::printf("err status=%s\n", QueryStatusName(result.status));
        }
      } else if (command == "query") {
        std::printf("ok graph=%s version=%llu seed=%u backend=%s nnz=%zu "
                    "sum=%.6f cache=%s latency_ms=%.3f\n",
                    current.c_str(),
                    static_cast<unsigned long long>(result.graph_version),
                    node, result.backend.c_str(), result.estimate->nnz(),
                    result.estimate->Sum(),
                    result.from_cache ? "hit" : "miss", result.latency_ms);
      } else {
        std::printf("ok graph=%s version=%llu seed=%u backend=%s k=%zu "
                    "cache=%s",
                    current.c_str(),
                    static_cast<unsigned long long>(result.graph_version),
                    node, result.backend.c_str(), result.top_k.size(),
                    result.from_cache ? "hit" : "miss");
        for (const ScoredNode& s : result.top_k) {
          std::printf(" %u:%.6g", s.node, s.score);
        }
        std::printf("\n");
      }
    } else if (command == "graph") {
      std::string sub;
      in >> sub;
      if (sub == "load") {
        std::string name, path;
        in >> name >> path;
        if (name.empty() || path.empty()) {
          std::printf("err usage: graph load <name> <path>\n");
        } else {
          Result<Graph> loaded = LoadEdgeList(path);
          if (!loaded.ok()) {
            std::printf("err cannot load %s: %s\n", path.c_str(),
                        loaded.status().ToString().c_str());
          } else {
            Graph graph = std::move(loaded).value();
            const uint32_t n = graph.NumNodes();
            const uint64_t m = graph.NumEdges();
            const uint64_t version = service.Publish(name, std::move(graph));
            // Adopt the loaded graph when the current one is gone (e.g.
            // dropped), so load restores queryability without a `use`.
            if (current.empty() || !store.Contains(current)) current = name;
            std::printf("ok graph=%s version=%llu nodes=%u edges=%llu\n",
                        name.c_str(),
                        static_cast<unsigned long long>(version), n,
                        static_cast<unsigned long long>(m));
          }
        }
      } else if (sub == "use") {
        std::string name;
        in >> name;
        if (name.empty()) {
          std::printf("err usage: graph use <name>\n");
        } else if (!store.Contains(name)) {
          // An unknown (e.g. dropped) name is an error, never a silent
          // fallback to the previous graph.
          std::printf("err unknown graph \"%s\" (loaded: %s)\n", name.c_str(),
                      JoinNames(store.List()).c_str());
        } else {
          current = name;
          const GraphSnapshot snapshot = store.Get(name);
          std::printf("ok graph=%s version=%llu nodes=%u\n", name.c_str(),
                      static_cast<unsigned long long>(snapshot.version),
                      snapshot.graph->NumNodes());
        }
      } else if (sub == "drop") {
        std::string name;
        in >> name;
        if (name.empty()) {
          std::printf("err usage: graph drop <name>\n");
        } else if (!service.Drop(name)) {
          std::printf("err unknown graph \"%s\" (loaded: %s)\n", name.c_str(),
                      JoinNames(store.List()).c_str());
        } else {
          // `current` intentionally keeps pointing at the dropped name:
          // later queries err until `graph use` (or a `graph load`, which
          // adopts its graph when the current one is gone).
          std::printf("ok dropped=%s\n", name.c_str());
        }
      } else if (sub == "list") {
        const std::vector<GraphInfo> infos = store.List();
        std::printf("ok graphs=%zu", infos.size());
        for (const GraphInfo& info : infos) {
          std::printf(" %s:v%llu:n%u:m%llu%s", info.name.c_str(),
                      static_cast<unsigned long long>(info.version),
                      info.nodes, static_cast<unsigned long long>(info.edges),
                      info.name == current ? ":current" : "");
        }
        std::printf("\n");
      } else {
        std::printf("err usage: graph load|use|drop|list\n");
      }
    } else if (command == "backend") {
      std::string name;
      in >> name;
      if (name.empty()) {
        std::printf("ok backend=%s available=auto,%s\n",
                    service.default_backend().c_str(),
                    AvailableBackends().c_str());
      } else if (!service.SetDefaultBackend(name)) {
        std::printf("err unknown backend \"%s\" (available: auto,%s)\n",
                    name.c_str(), AvailableBackends().c_str());
      } else {
        // A live config update: every per-graph service keeps its workers
        // and queue — in-flight queries finish on the plan they were
        // submitted with, later ones resolve against the new default, and
        // plan-keyed caching means no invalidation is needed.
        std::printf("ok backend=%s graphs=%zu\n", name.c_str(), store.Size());
      }
    } else if (command == "params") {
      std::string name;
      in >> name;
      if (name.empty()) {
        std::printf("err usage: params <graph> [clear] [backend=NAME|auto] "
                    "[t=V] [eps=V] [delta=V]\n");
      } else if (!store.Contains(name)) {
        std::printf("err unknown graph \"%s\" (loaded: %s)\n", name.c_str(),
                    JoinNames(store.List()).c_str());
      } else {
        PlanOverrides overrides;
        std::string token_error;
        std::string first;
        const auto rest = in.tellg();
        in >> first;
        const bool clear = first == "clear";
        const bool show = first.empty();
        if (!clear && !show) in.seekg(rest);
        if (!clear && !show && !ParsePlanTokens(in, &overrides, &token_error)) {
          std::printf("err %s\n", token_error.c_str());
        } else if (!clear && !show &&
                   !ServableParams(ApplyParamOverrides(params, overrides))) {
          std::printf("err params out of range (t in (0,1000], eps in (0,1), "
                      "delta > 0)\n");
        } else {
          if (show) {
            overrides = service.GraphDefaults(name);
          } else if (!service.SetGraphDefaults(name, overrides)) {
            // Raced with a concurrent drop — report like any unknown graph.
            std::printf("err unknown graph \"%s\" (loaded: %s)\n",
                        name.c_str(), JoinNames(store.List()).c_str());
            std::fflush(stdout);
            continue;
          }
          std::printf(
              "ok graph=%s backend=%s t=%s eps=%s delta=%s\n", name.c_str(),
              overrides.backend.empty() ? "default"
                                        : overrides.backend.c_str(),
              FmtOverride(overrides.t).c_str(),
              FmtOverride(overrides.eps_r).c_str(),
              FmtOverride(overrides.delta).c_str());
        }
      }
    } else if (command == "stats") {
      std::string name;
      in >> name;
      const ServiceStatsSnapshot s =
          name.empty() ? service.AggregateStats() : service.StatsFor(name);
      // A named scope is valid while the graph is loaded AND after it was
      // dropped (StatsFor keeps the retired cumulative counters); only a
      // name that never served anything is an error.
      if (!name.empty() && !store.Contains(name) && s.submitted == 0 &&
          s.completed == 0) {
        std::printf("err unknown graph \"%s\" (loaded: %s)\n", name.c_str(),
                    JoinNames(store.List()).c_str());
        std::fflush(stdout);
        continue;
      }
      std::printf(
          "ok scope=%s submitted=%llu completed=%llu rejected=%llu "
          "invalid_plans=%llu "
          "hits=%llu misses=%llu coalesced=%llu computed=%llu queue=%zu",
          name.empty() ? "all" : name.c_str(),
          static_cast<unsigned long long>(s.submitted),
          static_cast<unsigned long long>(s.completed),
          static_cast<unsigned long long>(s.rejected),
          static_cast<unsigned long long>(s.invalid_plans),
          static_cast<unsigned long long>(s.cache_hits),
          static_cast<unsigned long long>(s.cache_misses),
          static_cast<unsigned long long>(s.coalesced),
          static_cast<unsigned long long>(s.computed), s.queue_depth);
      if (name.empty()) {
        // Service-wide, not attributable to any one graph.
        std::printf(" unknown_graph=%llu invalid_argument=%llu",
                    static_cast<unsigned long long>(
                        service.unknown_graph_rejects()),
                    static_cast<unsigned long long>(
                        service.invalid_argument_rejects()));
      }
      std::printf(" p50_ms=%.3f p95_ms=%.3f p99_ms=%.3f\n", s.latency_p50_ms,
                  s.latency_p95_ms, s.latency_p99_ms);
    } else if (command == "invalidate") {
      service.InvalidateCaches();
      std::printf("ok caches invalidated\n");
    } else {
      std::printf("err unknown command \"%s\" "
                  "(query/topk/graph/backend/params/stats/invalidate/quit)\n",
                  command.c_str());
    }
    std::fflush(stdout);
  }
  return 0;
}
