// hkpr_server: an interactive multi-graph HKPR serving frontend over
// stdin/stdout.
//
//   $ ./build/example_hkpr_server [--graphs=name=path,...] [--graph=PATH]
//                                 [--nodes=N] [--workers=W] [--cache=CAP]
//                                 [--seed=S] [--backend=NAME|auto]
//                                 [--router=rule|learned] [--hedge=on|off]
//                                 [--no-trace]
//
// Loads one or more named graphs into a GraphStore (--graphs takes a
// comma-separated name=path list of SNAP edge-lists; --graph=PATH loads a
// single graph named "default"; with neither, a synthetic powerlaw-cluster
// graph with --nodes nodes is published as "default") and serves
// line-oriented queries through a MultiGraphService — per-graph async
// services sharing a worker budget of --workers threads:
//
//   query <seed> [backend=NAME|auto] [t=V] [eps=V] [delta=V]
//                           full HKPR estimate on the current graph;
//                           trailing key=value tokens override this one
//                           query's plan (backend=auto routes adaptively)
//   topk <seed> <k> [backend=...] [t=...] [eps=...] [delta=...]
//                           top-k nodes by normalized HKPR
//   graph load <name> <path>  load/replace (hot-swap) a graph from disk
//   graph use <name>        switch the current graph (err if not loaded)
//   graph drop <name>       remove a graph; its service drains gracefully
//   graph list              loaded graphs with version/size
//   backend [<name>|auto]   show / switch every graph's default backend —
//                           a live config update, no drain or rebuild;
//                           "auto" routes each query by seed degree, t
//                           and graph scale
//   router [<graph>]        routing policy introspection: the policy kind
//                           and, under --router=learned, one line per
//                           candidate backend with its (decayed)
//                           observation count, fitted coefficients and
//                           predicted cost/p95 at the graph's average
//                           degree, then a final "ok router ..." line
//                           with the graph's hedge counters
//   params <graph> [backend=NAME|auto] [t=V] [eps=V] [delta=V]
//                           per-graph default-plan overrides (re-applied
//                           across hot-swaps); with no tokens, shows the
//                           graph's current overrides; "params <graph>
//                           clear" restores the template
//   stats [<name>] [--json] aggregate (or one graph's) counters/latency:
//                           every ServiceStatsSnapshot field plus the
//                           queue-wait/cache/compute stage breakdown when
//                           tracing is on; --json emits the same fields
//                           as one JSON object after the "ok "
//   metrics                 Prometheus-style text: per-graph counters,
//                           stage/latency quantiles and per-(graph,
//                           backend) dimensioned rows, terminated by a
//                           final "ok metrics graphs=G lines=N" line
//   invalidate              drop every graph's cached estimates
//   quit                    exit
//
// Stage tracing, the per-backend metrics registry and the routing event
// log are on by default; --no-trace disables all three (stats then
// reports only the flat counter block — the pre-telemetry shape).
//
// --router=learned swaps the rule thresholds for a per-graph online cost
// model trained from the routing event log (a background trainer drains
// it every 200ms); undertrained graphs route by the rules, so cold
// behavior matches --router=rule. --hedge=on additionally fires the
// runner-up backend when a routed query's compute runs past the model's
// predicted p95 and serves whichever finishes first — inert under the
// rule router, which offers no predictions.
//
// Responses are single lines starting with "ok" or "err", so the server
// can sit behind a pipe or a socat socket. Query responses carry
// "backend=<name>" — the plan the query actually ran, which is how a
// routed (auto) query reports the router's choice. Re-`load`ing a name
// hot-swaps it: in-flight queries finish on the old snapshot, later
// queries see the new one, and the version bump makes pre-swap cache
// entries unreachable (cache keys embed the full resolved plan, so
// distinct plans never share entries either). Queries against a
// dropped/unknown current graph report an error — the server never
// silently falls back to another graph.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "graph/generators.h"
#include "graph/graph_io.h"
#include "hkpr/backend.h"
#include "service/multi_graph_service.h"

using namespace hkpr;

namespace {

std::string AvailableBackends() {
  return EstimatorRegistry::Global().JoinedNames();
}

/// Parses "name=path,name=path,..." into pairs; returns false on syntax
/// errors (missing '=' or empty name/path).
bool ParseGraphList(const std::string& spec,
                    std::vector<std::pair<std::string, std::string>>* out) {
  std::istringstream in(spec);
  std::string item;
  while (std::getline(in, item, ',')) {
    const size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == item.size()) {
      return false;
    }
    out->emplace_back(item.substr(0, eq), item.substr(eq + 1));
  }
  return !out->empty();
}

std::string JoinNames(const std::vector<GraphInfo>& infos) {
  std::string joined;
  for (const GraphInfo& info : infos) {
    if (!joined.empty()) joined += ",";
    joined += info.name;
  }
  return joined.empty() ? "(none)" : joined;
}

/// True when `name` is servable as a default/override backend: a registry
/// name or the routing sentinel.
bool KnownBackend(const std::string& name) {
  return name == kAutoBackend || EstimatorRegistry::Global().Contains(name);
}

/// Parses the trailing key=value plan tokens of a query/params line
/// (backend=NAME|auto, t=V, eps=V, delta=V) into `plan`. Returns false —
/// and fills `error` — on an unknown token, a malformed value, or an
/// unregistered backend name.
bool ParsePlanTokens(std::istringstream& in, PlanOverrides* plan,
                     std::string* error) {
  std::string token;
  while (in >> token) {
    const size_t eq = token.find('=');
    const std::string key = token.substr(0, eq);
    char* end = nullptr;
    double value = 0.0;
    if (eq != std::string::npos && eq + 1 < token.size() && key != "backend") {
      value = std::strtod(token.c_str() + eq + 1, &end);
      if (*end != '\0') {
        *error = "malformed value in \"" + token + "\"";
        return false;
      }
    }
    if (key == "backend" && eq != std::string::npos && eq + 1 < token.size()) {
      plan->backend = token.substr(eq + 1);
      if (!KnownBackend(plan->backend)) {
        *error = "unknown backend \"" + plan->backend +
                 "\" (available: auto," + AvailableBackends() + ")";
        return false;
      }
    } else if (key == "t" && end != nullptr) {
      plan->t = value;
    } else if (key == "eps" && end != nullptr) {
      plan->eps_r = value;
    } else if (key == "delta" && end != nullptr) {
      plan->delta = value;
    } else {
      *error = "unknown token \"" + token +
               "\" (expected backend=NAME|auto, t=V, eps=V, delta=V)";
      return false;
    }
  }
  return true;
}

/// Formats one override for the params display ("default" when unset).
std::string FmtOverride(const std::optional<double>& value) {
  if (!value.has_value()) return "default";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", *value);
  return buf;
}

/// Prints the full-field single-line `stats` reply: every
/// ServiceStatsSnapshot counter (the operator view must never silently
/// lose a field — asserted by the protocol test), the stage breakdown
/// when tracing is on, and the service-wide reject counters for the
/// aggregate scope (`service` non-null).
void PrintStatsLine(const std::string& scope, const ServiceStatsSnapshot& s,
                    const MultiGraphService* service) {
  std::printf(
      "ok scope=%s submitted=%llu completed=%llu rejected=%llu "
      "invalid_plans=%llu cancelled=%llu expired=%llu "
      "cache_hits=%llu cache_misses=%llu coalesced=%llu computed=%llu "
      "stolen=%llu hedged=%llu hedge_wins=%llu queue=%zu latency_count=%llu",
      scope.c_str(), static_cast<unsigned long long>(s.submitted),
      static_cast<unsigned long long>(s.completed),
      static_cast<unsigned long long>(s.rejected),
      static_cast<unsigned long long>(s.invalid_plans),
      static_cast<unsigned long long>(s.cancelled),
      static_cast<unsigned long long>(s.expired),
      static_cast<unsigned long long>(s.cache_hits),
      static_cast<unsigned long long>(s.cache_misses),
      static_cast<unsigned long long>(s.coalesced),
      static_cast<unsigned long long>(s.computed),
      static_cast<unsigned long long>(s.stolen),
      static_cast<unsigned long long>(s.hedged),
      static_cast<unsigned long long>(s.hedge_wins), s.queue_depth,
      static_cast<unsigned long long>(s.latency_count));
  if (service != nullptr) {
    // Service-wide, not attributable to any one graph.
    std::printf(" unknown_graph=%llu invalid_argument=%llu",
                static_cast<unsigned long long>(
                    service->unknown_graph_rejects()),
                static_cast<unsigned long long>(
                    service->invalid_argument_rejects()));
  }
  std::printf(" p50_ms=%.3f p95_ms=%.3f p99_ms=%.3f", s.latency_p50_ms,
              s.latency_p95_ms, s.latency_p99_ms);
  if (s.stage_tracing) {
    std::printf(
        " queue_wait_mean_ms=%.3f queue_wait_p50_ms=%.3f "
        "queue_wait_p99_ms=%.3f cache_mean_ms=%.3f cache_p50_ms=%.3f "
        "cache_p99_ms=%.3f compute_mean_ms=%.3f compute_p50_ms=%.3f "
        "compute_p99_ms=%.3f",
        s.queue_wait.mean_ms(), s.queue_wait.p50_ms, s.queue_wait.p99_ms,
        s.cache_lookup.mean_ms(), s.cache_lookup.p50_ms,
        s.cache_lookup.p99_ms, s.compute.mean_ms(), s.compute.p50_ms,
        s.compute.p99_ms);
  }
  std::printf("\n");
}

void AppendJsonField(std::string& out, const char* key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%.6g", key, value);
  if (out.back() != '{') out += ",";
  out += buf;
}

void AppendJsonField(std::string& out, const char* key,
                     unsigned long long value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%llu", key, value);
  if (out.back() != '{') out += ",";
  out += buf;
}

void AppendJsonStage(std::string& out, const char* key,
                     const StageLatencySnapshot& stage) {
  if (out.back() != '{') out += ",";
  out += "\"";
  out += key;
  out += "\":{";
  AppendJsonField(out, "count", static_cast<unsigned long long>(stage.count));
  AppendJsonField(out, "total_us",
                  static_cast<unsigned long long>(stage.total_us));
  AppendJsonField(out, "mean_ms", stage.mean_ms());
  AppendJsonField(out, "p50_ms", stage.p50_ms);
  AppendJsonField(out, "p95_ms", stage.p95_ms);
  AppendJsonField(out, "p99_ms", stage.p99_ms);
  out += "}";
}

/// The `stats --json` body: one JSON object per line, machine-parseable
/// twin of PrintStatsLine with the same field set.
std::string StatsJson(const std::string& scope, const ServiceStatsSnapshot& s,
                      const MultiGraphService* service) {
  std::string out = "{\"scope\":\"" + scope + "\"";
  const auto u64 = [](uint64_t v) {
    return static_cast<unsigned long long>(v);
  };
  AppendJsonField(out, "submitted", u64(s.submitted));
  AppendJsonField(out, "completed", u64(s.completed));
  AppendJsonField(out, "rejected", u64(s.rejected));
  AppendJsonField(out, "invalid_plans", u64(s.invalid_plans));
  AppendJsonField(out, "cancelled", u64(s.cancelled));
  AppendJsonField(out, "expired", u64(s.expired));
  AppendJsonField(out, "cache_hits", u64(s.cache_hits));
  AppendJsonField(out, "cache_misses", u64(s.cache_misses));
  AppendJsonField(out, "coalesced", u64(s.coalesced));
  AppendJsonField(out, "computed", u64(s.computed));
  AppendJsonField(out, "stolen", u64(s.stolen));
  AppendJsonField(out, "hedged", u64(s.hedged));
  AppendJsonField(out, "hedge_wins", u64(s.hedge_wins));
  AppendJsonField(out, "queue_depth", u64(s.queue_depth));
  AppendJsonField(out, "latency_count", u64(s.latency_count));
  if (service != nullptr) {
    AppendJsonField(out, "unknown_graph", u64(service->unknown_graph_rejects()));
    AppendJsonField(out, "invalid_argument",
                    u64(service->invalid_argument_rejects()));
  }
  AppendJsonField(out, "p50_ms", s.latency_p50_ms);
  AppendJsonField(out, "p95_ms", s.latency_p95_ms);
  AppendJsonField(out, "p99_ms", s.latency_p99_ms);
  if (s.stage_tracing) {
    out += ",\"stages\":{";
    AppendJsonStage(out, "queue_wait", s.queue_wait);
    AppendJsonStage(out, "cache", s.cache_lookup);
    AppendJsonStage(out, "compute", s.compute);
    out += "}";
    AppendJsonField(out, "traced_total_us", u64(s.traced_total_us));
  }
  out += "}";
  return out;
}

/// One Prometheus-style sample line: name{graph="...",...} value.
void PrintMetricLine(const char* name, const std::string& graph,
                     const std::string& extra_labels, double value) {
  if (extra_labels.empty()) {
    std::printf("%s{graph=\"%s\"} %.6g\n", name, graph.c_str(), value);
  } else {
    std::printf("%s{graph=\"%s\",%s} %.6g\n", name, graph.c_str(),
                extra_labels.c_str(), value);
  }
}

/// Integer-valued samples (counters, gauges) print exactly — %.6g would
/// round large counters.
void PrintMetricLine(const char* name, const std::string& graph,
                     const std::string& extra_labels, uint64_t value) {
  if (extra_labels.empty()) {
    std::printf("%s{graph=\"%s\"} %llu\n", name, graph.c_str(),
                static_cast<unsigned long long>(value));
  } else {
    std::printf("%s{graph=\"%s\",%s} %llu\n", name, graph.c_str(),
                extra_labels.c_str(),
                static_cast<unsigned long long>(value));
  }
}

/// A representative routing query for introspection displays: the
/// graph's scale features with an average-degree seed and the serving
/// params — what the cost model predicts for a "typical" query.
RoutingQuery AverageRoutingQuery(const GraphSnapshot& snapshot,
                                 const ApproxParams& params) {
  const GraphScaleFeatures scale = GraphScaleFeatures::Of(*snapshot.graph);
  RoutingQuery query;
  query.seed = 0;
  query.seed_degree = static_cast<uint32_t>(scale.avg_degree + 0.5);
  query.num_nodes = scale.num_nodes;
  query.num_edges = scale.num_edges;
  query.avg_degree = scale.avg_degree;
  query.params = params;
  return query;
}

/// Emits the metrics block for one graph scope: flat per-graph counters
/// and stage quantiles from the cumulative snapshot, then the
/// per-(graph, backend) dimensioned rows from the telemetry registry and
/// (under --router=learned) the graph's router-model rows.
/// Returns the number of sample lines printed.
size_t PrintMetricsForScope(MultiGraphService& service,
                            const std::string& scope,
                            const ApproxParams& params) {
  size_t lines = 0;
  const ServiceStatsSnapshot s = service.StatsFor(scope);
  const auto flat = [&](const char* name, uint64_t value) {
    PrintMetricLine(name, scope, "", value);
    ++lines;
  };
  flat("hkpr_submitted_total", s.submitted);
  flat("hkpr_completed_total", s.completed);
  flat("hkpr_rejected_total", s.rejected);
  flat("hkpr_invalid_plans_total", s.invalid_plans);
  flat("hkpr_cancelled_total", s.cancelled);
  flat("hkpr_expired_total", s.expired);
  flat("hkpr_cache_hits_total", s.cache_hits);
  flat("hkpr_cache_misses_total", s.cache_misses);
  flat("hkpr_coalesced_total", s.coalesced);
  flat("hkpr_computed_total", s.computed);
  flat("hkpr_stolen_total", s.stolen);
  flat("hkpr_hedged_total", s.hedged);
  flat("hkpr_hedge_wins_total", s.hedge_wins);
  flat("hkpr_queue_depth", static_cast<uint64_t>(s.queue_depth));
  const auto quantile = [&](const char* name, const char* q, double value,
                            const char* stage) {
    std::string labels;
    if (stage != nullptr) {
      labels = std::string("stage=\"") + stage + "\",";
    }
    labels += std::string("quantile=\"") + q + "\"";
    PrintMetricLine(name, scope, labels, value);
    ++lines;
  };
  quantile("hkpr_latency_ms", "0.5", s.latency_p50_ms, nullptr);
  quantile("hkpr_latency_ms", "0.95", s.latency_p95_ms, nullptr);
  quantile("hkpr_latency_ms", "0.99", s.latency_p99_ms, nullptr);
  if (s.stage_tracing) {
    const struct {
      const char* name;
      const StageLatencySnapshot* stage;
    } stages[] = {{"queue_wait", &s.queue_wait},
                  {"cache", &s.cache_lookup},
                  {"compute", &s.compute}};
    for (const auto& [stage_name, stage] : stages) {
      quantile("hkpr_stage_latency_ms", "0.5", stage->p50_ms, stage_name);
      quantile("hkpr_stage_latency_ms", "0.99", stage->p99_ms, stage_name);
      PrintMetricLine("hkpr_stage_latency_mean_ms", scope,
                      std::string("stage=\"") + stage_name + "\"",
                      stage->mean_ms());
      ++lines;
    }
  }
  // The (graph, backend) dimensions: what each resolved backend actually
  // served on this graph, cumulative across hot-swaps.
  const TelemetrySnapshot telemetry = service.TelemetryFor(scope);
  for (const BackendStatsSnapshot& row : telemetry.backends) {
    const std::string backend_label = "backend=\"" + row.backend + "\"";
    const auto dim = [&](const char* name, uint64_t value) {
      PrintMetricLine(name, scope, backend_label, value);
      ++lines;
    };
    dim("hkpr_backend_completed_total", row.completed);
    dim("hkpr_backend_computed_total", row.computed);
    dim("hkpr_backend_cache_hits_total", row.cache_hits);
    dim("hkpr_backend_coalesced_total", row.coalesced);
    PrintMetricLine("hkpr_backend_latency_ms", scope,
                    backend_label + ",quantile=\"0.5\"", row.latency_p50_ms);
    PrintMetricLine("hkpr_backend_latency_ms", scope,
                    backend_label + ",quantile=\"0.99\"", row.latency_p99_ms);
    lines += 2;
  }
  if (telemetry.enabled) {
    flat("hkpr_routing_events_total", telemetry.routing_appended);
    flat("hkpr_routing_events_dropped_total", telemetry.routing_dropped);
  }
  // Learned-router model rows: per-candidate observation counts plus, for
  // trained candidates, the predicted cost at the graph's average degree.
  const std::shared_ptr<const LearnedRouter> router =
      service.LearnedRouterFor(scope);
  const GraphSnapshot snapshot = service.store().Get(scope);
  if (router != nullptr && snapshot) {
    const std::vector<BackendPrediction> rows =
        router->Predict(AverageRoutingQuery(snapshot, params));
    for (const BackendPrediction& row : rows) {
      const std::string backend_label = "backend=\"" + row.backend + "\"";
      PrintMetricLine("hkpr_router_observations", scope, backend_label,
                      row.observations);
      PrintMetricLine("hkpr_router_trained", scope, backend_label,
                      static_cast<uint64_t>(row.trained ? 1 : 0));
      lines += 2;
      if (row.trained) {
        PrintMetricLine("hkpr_router_predicted_cost_ms", scope, backend_label,
                        row.cost_us / 1000.0);
        PrintMetricLine("hkpr_router_predicted_p95_ms", scope, backend_label,
                        row.p95_us / 1000.0);
        lines += 2;
      }
    }
  }
  return lines;
}

}  // namespace

int main(int argc, char** argv) {
  std::string graphs_flag;
  std::string graph_path;
  uint32_t nodes = 20000;
  uint32_t workers = 0;
  size_t cache_capacity = 4096;
  uint64_t seed = 42;
  std::string backend = "tea+";
  std::string router_flag = "rule";
  std::string hedge_flag = "off";
  bool trace = true;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--no-trace") == 0) trace = false;
    if (std::strncmp(arg, "--router=", 9) == 0) router_flag = arg + 9;
    if (std::strncmp(arg, "--hedge=", 8) == 0) hedge_flag = arg + 8;
    if (std::strncmp(arg, "--graphs=", 9) == 0) graphs_flag = arg + 9;
    if (std::strncmp(arg, "--graph=", 8) == 0) graph_path = arg + 8;
    if (std::strncmp(arg, "--nodes=", 8) == 0)
      nodes = static_cast<uint32_t>(std::atoi(arg + 8));
    if (std::strncmp(arg, "--workers=", 10) == 0)
      workers = static_cast<uint32_t>(std::atoi(arg + 10));
    if (std::strncmp(arg, "--cache=", 8) == 0)
      cache_capacity = static_cast<size_t>(std::atoll(arg + 8));
    if (std::strncmp(arg, "--seed=", 7) == 0)
      seed = static_cast<uint64_t>(std::atoll(arg + 7));
    if (std::strncmp(arg, "--backend=", 10) == 0) backend = arg + 10;
  }
  if (!KnownBackend(backend)) {
    std::fprintf(stderr, "err unknown backend \"%s\" (available: auto,%s)\n",
                 backend.c_str(), AvailableBackends().c_str());
    return 1;
  }
  if (router_flag != "rule" && router_flag != "learned") {
    std::fprintf(stderr, "err --router expects rule|learned\n");
    return 1;
  }
  if (hedge_flag != "on" && hedge_flag != "off") {
    std::fprintf(stderr, "err --hedge expects on|off\n");
    return 1;
  }

  // Assemble the initial store: --graphs list, --graph single, or a
  // synthetic default.
  GraphStore store;
  std::string current;
  std::vector<std::pair<std::string, std::string>> to_load;
  if (!graphs_flag.empty()) {
    if (!ParseGraphList(graphs_flag, &to_load)) {
      std::fprintf(stderr, "err --graphs expects name=path[,name=path...]\n");
      return 1;
    }
  } else if (!graph_path.empty()) {
    to_load.emplace_back("default", graph_path);
  }
  for (const auto& [name, path] : to_load) {
    Result<Graph> loaded = LoadEdgeList(path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "err cannot load %s: %s\n", path.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    store.Publish(name, std::move(loaded).value());
    if (current.empty()) current = name;
  }
  if (store.Size() == 0) {
    store.Publish("default", PowerlawCluster(nodes, 4, 0.3, seed));
    current = "default";
  }

  // One parameter set serves every graph (cache keys carry the parameters,
  // so this is a policy choice, not a correctness one): delta scales with
  // the first graph's size, as in the single-graph server.
  ApproxParams params;
  params.t = 5.0;
  params.eps_r = 0.5;
  params.delta = 1.0 / static_cast<double>(store.Get(current).graph->NumNodes());
  params.p_f = 1e-6;

  MultiGraphOptions options;
  options.worker_budget = workers;
  options.service.cache_capacity = cache_capacity;
  options.service.backend.name = backend;
  options.service.telemetry.enabled = trace;
  if (router_flag == "learned") {
    options.router = RouterKind::kLearned;
    // Background trainer: fresh routing events reach the cost model a
    // couple hundred milliseconds after they complete.
    options.train_interval = std::chrono::milliseconds(200);
  }
  options.service.hedge.enabled = hedge_flag == "on";
  MultiGraphService service(store, params, seed, options);

  {
    const std::vector<GraphInfo> infos = store.List();
    std::printf("ok hkpr_server graphs=%zu(%s) current=%s workers=%u "
                "cache=%zu backend=%s router=%s hedge=%s\n",
                infos.size(), JoinNames(infos).c_str(), current.c_str(),
                service.resolved_worker_budget(), cache_capacity,
                backend.c_str(), router_flag.c_str(), hedge_flag.c_str());
    std::fflush(stdout);
  }

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string command;
    in >> command;
    if (command.empty()) continue;
    if (command == "quit" || command == "exit") break;

    if (command == "query" || command == "topk") {
      const GraphSnapshot snapshot = store.Get(current);
      if (!snapshot) {
        std::printf("err unknown graph \"%s\" (graph load/use first)\n",
                    current.c_str());
        std::fflush(stdout);
        continue;
      }
      long long seed_node = -1;
      long long k = 10;
      // A failed extraction writes 0 (C++11), which is a valid node id —
      // restore the sentinel so "query" with no/garbage argument errs.
      if (!(in >> seed_node)) seed_node = -1;
      if (command == "topk" && !(in >> k)) k = -1;
      if (seed_node < 0 || seed_node >= snapshot.graph->NumNodes() || k <= 0) {
        std::printf("err usage: %s <seed in [0,%u)>%s [backend=NAME|auto] "
                    "[t=V] [eps=V] [delta=V]\n",
                    command.c_str(), snapshot.graph->NumNodes(),
                    command == "topk" ? " <k >= 1>" : "");
        std::fflush(stdout);
        continue;
      }
      SubmitOptions submit;
      std::string token_error;
      if (!ParsePlanTokens(in, &submit.plan, &token_error)) {
        std::printf("err %s\n", token_error.c_str());
        std::fflush(stdout);
        continue;
      }
      const NodeId node = static_cast<NodeId>(seed_node);
      QueryHandle handle =
          command == "query"
              ? service.Submit(current, node, submit)
              : service.SubmitTopK(current, node, static_cast<size_t>(k),
                                   submit);
      const QueryResult result = handle.result.get();
      if (result.status != QueryStatus::kOk) {
        if (result.status == QueryStatus::kUnknownGraph) {
          std::printf("err unknown graph \"%s\" (dropped concurrently?)\n",
                      current.c_str());
        } else {
          std::printf("err status=%s\n", QueryStatusName(result.status));
        }
      } else if (command == "query") {
        std::printf("ok graph=%s version=%llu seed=%u backend=%s nnz=%zu "
                    "sum=%.6f cache=%s latency_ms=%.3f\n",
                    current.c_str(),
                    static_cast<unsigned long long>(result.graph_version),
                    node, result.backend.c_str(), result.estimate->nnz(),
                    result.estimate->Sum(),
                    result.from_cache ? "hit" : "miss", result.latency_ms);
      } else {
        std::printf("ok graph=%s version=%llu seed=%u backend=%s k=%zu "
                    "cache=%s",
                    current.c_str(),
                    static_cast<unsigned long long>(result.graph_version),
                    node, result.backend.c_str(), result.top_k.size(),
                    result.from_cache ? "hit" : "miss");
        for (const ScoredNode& s : result.top_k) {
          std::printf(" %u:%.6g", s.node, s.score);
        }
        std::printf("\n");
      }
    } else if (command == "graph") {
      std::string sub;
      in >> sub;
      if (sub == "load") {
        std::string name, path;
        in >> name >> path;
        if (name.empty() || path.empty()) {
          std::printf("err usage: graph load <name> <path>\n");
        } else {
          Result<Graph> loaded = LoadEdgeList(path);
          if (!loaded.ok()) {
            std::printf("err cannot load %s: %s\n", path.c_str(),
                        loaded.status().ToString().c_str());
          } else {
            Graph graph = std::move(loaded).value();
            const uint32_t n = graph.NumNodes();
            const uint64_t m = graph.NumEdges();
            const uint64_t version = service.Publish(name, std::move(graph));
            // Adopt the loaded graph when the current one is gone (e.g.
            // dropped), so load restores queryability without a `use`.
            if (current.empty() || !store.Contains(current)) current = name;
            std::printf("ok graph=%s version=%llu nodes=%u edges=%llu\n",
                        name.c_str(),
                        static_cast<unsigned long long>(version), n,
                        static_cast<unsigned long long>(m));
          }
        }
      } else if (sub == "use") {
        std::string name;
        in >> name;
        if (name.empty()) {
          std::printf("err usage: graph use <name>\n");
        } else if (!store.Contains(name)) {
          // An unknown (e.g. dropped) name is an error, never a silent
          // fallback to the previous graph.
          std::printf("err unknown graph \"%s\" (loaded: %s)\n", name.c_str(),
                      JoinNames(store.List()).c_str());
        } else {
          current = name;
          const GraphSnapshot snapshot = store.Get(name);
          std::printf("ok graph=%s version=%llu nodes=%u\n", name.c_str(),
                      static_cast<unsigned long long>(snapshot.version),
                      snapshot.graph->NumNodes());
        }
      } else if (sub == "drop") {
        std::string name;
        in >> name;
        if (name.empty()) {
          std::printf("err usage: graph drop <name>\n");
        } else if (!service.Drop(name)) {
          std::printf("err unknown graph \"%s\" (loaded: %s)\n", name.c_str(),
                      JoinNames(store.List()).c_str());
        } else {
          // `current` intentionally keeps pointing at the dropped name:
          // later queries err until `graph use` (or a `graph load`, which
          // adopts its graph when the current one is gone).
          std::printf("ok dropped=%s\n", name.c_str());
        }
      } else if (sub == "list") {
        const std::vector<GraphInfo> infos = store.List();
        std::printf("ok graphs=%zu", infos.size());
        for (const GraphInfo& info : infos) {
          std::printf(" %s:v%llu:n%u:m%llu%s", info.name.c_str(),
                      static_cast<unsigned long long>(info.version),
                      info.nodes, static_cast<unsigned long long>(info.edges),
                      info.name == current ? ":current" : "");
        }
        std::printf("\n");
      } else {
        std::printf("err usage: graph load|use|drop|list\n");
      }
    } else if (command == "backend") {
      std::string name;
      in >> name;
      if (name.empty()) {
        std::printf("ok backend=%s available=auto,%s\n",
                    service.default_backend().c_str(),
                    AvailableBackends().c_str());
      } else if (!service.SetDefaultBackend(name)) {
        std::printf("err unknown backend \"%s\" (available: auto,%s)\n",
                    name.c_str(), AvailableBackends().c_str());
      } else {
        // A live config update: every per-graph service keeps its workers
        // and queue — in-flight queries finish on the plan they were
        // submitted with, later ones resolve against the new default, and
        // plan-keyed caching means no invalidation is needed.
        std::printf("ok backend=%s graphs=%zu\n", name.c_str(), store.Size());
      }
    } else if (command == "params") {
      std::string name;
      in >> name;
      if (name.empty()) {
        std::printf("err usage: params <graph> [clear] [backend=NAME|auto] "
                    "[t=V] [eps=V] [delta=V]\n");
      } else if (!store.Contains(name)) {
        std::printf("err unknown graph \"%s\" (loaded: %s)\n", name.c_str(),
                    JoinNames(store.List()).c_str());
      } else {
        PlanOverrides overrides;
        std::string token_error;
        std::string first;
        const auto rest = in.tellg();
        in >> first;
        const bool clear = first == "clear";
        const bool show = first.empty();
        if (!clear && !show) in.seekg(rest);
        if (!clear && !show && !ParsePlanTokens(in, &overrides, &token_error)) {
          std::printf("err %s\n", token_error.c_str());
        } else if (!clear && !show &&
                   !ServableParams(ApplyParamOverrides(params, overrides))) {
          std::printf("err params out of range (t in (0,1000], eps in (0,1), "
                      "delta > 0)\n");
        } else {
          if (show) {
            overrides = service.GraphDefaults(name);
          } else if (!service.SetGraphDefaults(name, overrides)) {
            // Raced with a concurrent drop — report like any unknown graph.
            std::printf("err unknown graph \"%s\" (loaded: %s)\n",
                        name.c_str(), JoinNames(store.List()).c_str());
            std::fflush(stdout);
            continue;
          }
          std::printf(
              "ok graph=%s backend=%s t=%s eps=%s delta=%s\n", name.c_str(),
              overrides.backend.empty() ? "default"
                                        : overrides.backend.c_str(),
              FmtOverride(overrides.t).c_str(),
              FmtOverride(overrides.eps_r).c_str(),
              FmtOverride(overrides.delta).c_str());
        }
      }
    } else if (command == "stats") {
      std::string name;
      bool json = false;
      std::string token;
      while (in >> token) {
        if (token == "--json") {
          json = true;
        } else {
          name = token;
        }
      }
      const ServiceStatsSnapshot s =
          name.empty() ? service.AggregateStats() : service.StatsFor(name);
      // A named scope is valid while the graph is loaded AND after it was
      // dropped (StatsFor keeps the retired cumulative counters); only a
      // name that never served anything is an error.
      if (!name.empty() && !store.Contains(name) && s.submitted == 0 &&
          s.completed == 0) {
        std::printf("err unknown graph \"%s\" (loaded: %s)\n", name.c_str(),
                    JoinNames(store.List()).c_str());
        std::fflush(stdout);
        continue;
      }
      const std::string scope = name.empty() ? "all" : name;
      if (json) {
        std::printf("ok %s\n",
                    StatsJson(scope, s, name.empty() ? &service : nullptr)
                        .c_str());
      } else {
        PrintStatsLine(scope, s, name.empty() ? &service : nullptr);
      }
    } else if (command == "router") {
      std::string name;
      in >> name;
      if (name.empty()) name = current;
      if (name.empty() || !store.Contains(name)) {
        std::printf("err unknown graph \"%s\" (loaded: %s)\n", name.c_str(),
                    JoinNames(store.List()).c_str());
        std::fflush(stdout);
        continue;
      }
      // Force the per-graph service into existence so the graph's learned
      // router exists, and fold any drained-but-unconsumed events so the
      // display reflects every completed query, not the trainer's last
      // tick.
      service.ServiceFor(name);
      service.TrainRouters();
      const ServiceStatsSnapshot s = service.StatsFor(name);
      const std::shared_ptr<const LearnedRouter> router =
          service.LearnedRouterFor(name);
      if (router == nullptr) {
        std::printf("ok router graph=%s policy=rule-based trained=0 "
                    "hedged=%llu hedge_wins=%llu\n",
                    name.c_str(), static_cast<unsigned long long>(s.hedged),
                    static_cast<unsigned long long>(s.hedge_wins));
        std::fflush(stdout);
        continue;
      }
      const CostModelSnapshot model = router->ModelSnapshot();
      const GraphSnapshot snapshot = store.Get(name);
      const std::vector<BackendPrediction> rows =
          router->Predict(AverageRoutingQuery(snapshot, params));
      for (const BackendPrediction& row : rows) {
        const FittedBackendModel* fit =
            model.fitted->Find(row.backend_id);
        std::printf("backend=%s trained=%d observations=%.1f",
                    row.backend.c_str(), row.trained ? 1 : 0,
                    row.observations);
        if (fit != nullptr) {
          std::printf(" sigma=%.3f coef=[%.3f,%.3f,%.3f,%.3f,%.3f]",
                      fit->sigma, fit->coef[0], fit->coef[1], fit->coef[2],
                      fit->coef[3], fit->coef[4]);
        }
        if (row.trained) {
          std::printf(" cost_ms=%.3f p95_ms=%.3f", row.cost_us / 1000.0,
                      row.p95_us / 1000.0);
        }
        std::printf("\n");
      }
      std::printf("ok router graph=%s policy=%.*s trained=%d "
                  "events_observed=%llu refits=%llu decays=%llu "
                  "hedged=%llu hedge_wins=%llu\n",
                  name.c_str(), static_cast<int>(router->name().size()),
                  router->name().data(), router->trained() ? 1 : 0,
                  static_cast<unsigned long long>(model.events_observed),
                  static_cast<unsigned long long>(model.refits),
                  static_cast<unsigned long long>(model.decays),
                  static_cast<unsigned long long>(s.hedged),
                  static_cast<unsigned long long>(s.hedge_wins));
    } else if (command == "metrics") {
      // Prometheus-style text exposition, one block of
      // `name{label="v",...} value` lines per scope, terminated by a
      // single protocol line ("ok metrics ...") so line-oriented clients
      // know where the block ends.
      size_t lines = 0;
      const std::vector<std::string> scopes = service.StatsScopes();
      for (const std::string& scope : scopes) {
        lines += PrintMetricsForScope(service, scope, params);
      }
      std::printf("ok metrics graphs=%zu lines=%zu\n", scopes.size(), lines);
    } else if (command == "invalidate") {
      service.InvalidateCaches();
      std::printf("ok caches invalidated\n");
    } else {
      std::printf(
          "err unknown command \"%s\" (query/topk/graph/backend/router/"
          "params/stats/metrics/invalidate/quit)\n",
          command.c_str());
    }
    std::fflush(stdout);
  }
  return 0;
}
