// hkpr_server: an interactive HKPR serving frontend over stdin/stdout.
//
//   $ ./build/example_hkpr_server [--graph=PATH] [--nodes=N] [--workers=W]
//                                 [--cache=CAP] [--seed=S] [--backend=NAME]
//
// Loads a graph (a SNAP edge-list via --graph, otherwise a synthetic
// powerlaw-cluster graph with --nodes nodes) and serves line-oriented
// queries through an AsyncQueryService:
//
//   query <seed>          full HKPR estimate; prints nnz/sum and cache state
//   topk <seed> <k>       top-k nodes by normalized HKPR
//   backend [<name>]      show / switch the serving backend (registry name)
//   stats                 service counters + latency percentiles
//   invalidate            drop every cached estimate (graph-swap hook)
//   quit                  exit
//
// Responses are single lines starting with "ok" or "err", so the server
// can sit behind a pipe or a socat socket. Backends are EstimatorRegistry
// names ("tea+", "tea", "hk-relax", "monte-carlo", ...); switching rebuilds
// the service (draining in-flight queries first) with a fresh cache — cache
// keys embed the backend's stable id anyway, so even a shared cache could
// never mix backends' results.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "graph/generators.h"
#include "graph/graph_io.h"
#include "hkpr/backend.h"
#include "service/async_query_service.h"

using namespace hkpr;

namespace {

std::string AvailableBackends() {
  return EstimatorRegistry::Global().JoinedNames();
}

}  // namespace

int main(int argc, char** argv) {
  std::string graph_path;
  uint32_t nodes = 20000;
  uint32_t workers = 0;
  size_t cache_capacity = 4096;
  uint64_t seed = 42;
  std::string backend = "tea+";
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--graph=", 8) == 0) graph_path = arg + 8;
    if (std::strncmp(arg, "--nodes=", 8) == 0)
      nodes = static_cast<uint32_t>(std::atoi(arg + 8));
    if (std::strncmp(arg, "--workers=", 10) == 0)
      workers = static_cast<uint32_t>(std::atoi(arg + 10));
    if (std::strncmp(arg, "--cache=", 8) == 0)
      cache_capacity = static_cast<size_t>(std::atoll(arg + 8));
    if (std::strncmp(arg, "--seed=", 7) == 0)
      seed = static_cast<uint64_t>(std::atoll(arg + 7));
    if (std::strncmp(arg, "--backend=", 10) == 0) backend = arg + 10;
    if (std::strncmp(arg, "--estimator=", 12) == 0) {
      // Pre-registry spelling; fail loudly on anything but its one value
      // rather than silently serving the default backend.
      if (std::strcmp(arg + 12, "hkrelax") == 0) {
        backend = "hk-relax";
      } else {
        std::fprintf(stderr,
                     "err --estimator is superseded by --backend=NAME "
                     "(available: %s)\n",
                     AvailableBackends().c_str());
        return 1;
      }
    }
  }
  if (!EstimatorRegistry::Global().Contains(backend)) {
    std::fprintf(stderr, "err unknown backend \"%s\" (available: %s)\n",
                 backend.c_str(), AvailableBackends().c_str());
    return 1;
  }

  Graph graph;
  if (!graph_path.empty()) {
    Result<Graph> loaded = LoadEdgeList(graph_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "err cannot load %s: %s\n", graph_path.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    graph = std::move(loaded).value();
  } else {
    graph = PowerlawCluster(nodes, 4, 0.3, seed);
  }

  ApproxParams params;
  params.t = 5.0;
  params.eps_r = 0.5;
  params.delta = 1.0 / static_cast<double>(graph.NumNodes());
  params.p_f = 1e-6;

  ServiceOptions options;
  options.num_workers = workers;
  options.cache_capacity = cache_capacity;
  options.backend.name = backend;
  std::optional<AsyncQueryService> service;
  service.emplace(graph, params, seed, options);

  std::printf("ok hkpr_server nodes=%u edges=%llu workers=%u cache=%zu "
              "backend=%s\n",
              graph.NumNodes(),
              static_cast<unsigned long long>(graph.NumEdges()),
              service->num_workers(), cache_capacity,
              options.backend.name.c_str());
  std::fflush(stdout);

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string command;
    in >> command;
    if (command.empty()) continue;
    if (command == "quit" || command == "exit") break;

    if (command == "query" || command == "topk") {
      long long seed_node = -1;
      long long k = 10;
      // A failed extraction writes 0 (C++11), which is a valid node id —
      // restore the sentinel so "query" with no/garbage argument errs.
      if (!(in >> seed_node)) seed_node = -1;
      if (command == "topk" && !(in >> k)) k = -1;
      if (seed_node < 0 || seed_node >= graph.NumNodes() || k <= 0) {
        std::printf("err usage: %s <seed in [0,%u)>%s\n", command.c_str(),
                    graph.NumNodes(), command == "topk" ? " <k >= 1>" : "");
        std::fflush(stdout);
        continue;
      }
      const NodeId node = static_cast<NodeId>(seed_node);
      QueryHandle handle =
          command == "query"
              ? service->Submit(node)
              : service->SubmitTopK(node, static_cast<size_t>(k));
      const QueryResult result = handle.result.get();
      if (result.status != QueryStatus::kOk) {
        std::printf("err status=%d\n", static_cast<int>(result.status));
      } else if (command == "query") {
        std::printf("ok seed=%u nnz=%zu sum=%.6f cache=%s latency_ms=%.3f\n",
                    node, result.estimate->nnz(), result.estimate->Sum(),
                    result.from_cache ? "hit" : "miss", result.latency_ms);
      } else {
        std::printf("ok seed=%u k=%zu cache=%s", node, result.top_k.size(),
                    result.from_cache ? "hit" : "miss");
        for (const ScoredNode& s : result.top_k) {
          std::printf(" %u:%.6g", s.node, s.score);
        }
        std::printf("\n");
      }
    } else if (command == "backend") {
      std::string name;
      in >> name;
      if (name.empty()) {
        std::printf("ok backend=%s available=%s\n",
                    options.backend.name.c_str(), AvailableBackends().c_str());
      } else if (!EstimatorRegistry::Global().Contains(name)) {
        std::printf("err unknown backend \"%s\" (available: %s)\n",
                    name.c_str(), AvailableBackends().c_str());
      } else {
        // Rebuild the service on the new backend: the destructor drains
        // queued queries first, so nothing in flight is dropped.
        options.backend.name = name;
        service.reset();
        service.emplace(graph, params, seed, options);
        std::printf("ok backend=%s workers=%u\n", name.c_str(),
                    service->num_workers());
      }
    } else if (command == "stats") {
      const ServiceStatsSnapshot s = service->Stats();
      std::printf(
          "ok submitted=%llu completed=%llu rejected=%llu hits=%llu "
          "misses=%llu coalesced=%llu computed=%llu queue=%zu "
          "p50_ms=%.3f p95_ms=%.3f p99_ms=%.3f\n",
          static_cast<unsigned long long>(s.submitted),
          static_cast<unsigned long long>(s.completed),
          static_cast<unsigned long long>(s.rejected),
          static_cast<unsigned long long>(s.cache_hits),
          static_cast<unsigned long long>(s.cache_misses),
          static_cast<unsigned long long>(s.coalesced),
          static_cast<unsigned long long>(s.computed), s.queue_depth,
          s.latency_p50_ms, s.latency_p95_ms, s.latency_p99_ms);
    } else if (command == "invalidate") {
      service->InvalidateCache();
      std::printf("ok cache invalidated\n");
    } else {
      std::printf("err unknown command \"%s\" "
                  "(query/topk/backend/stats/invalidate/quit)\n",
                  command.c_str());
    }
    std::fflush(stdout);
  }
  return 0;
}
