#include "flow/maxflow.h"

#include <algorithm>
#include <deque>
#include <limits>

#include "common/logging.h"

namespace hkpr {

FlowNetwork::FlowNetwork(uint32_t num_nodes)
    : head_(num_nodes, -1), level_(num_nodes, -1), iter_(num_nodes, -1) {}

void FlowNetwork::AddArc(uint32_t from, uint32_t to, int64_t capacity) {
  HKPR_DCHECK(from < head_.size() && to < head_.size());
  HKPR_DCHECK(capacity >= 0);
  arcs_.push_back({to, head_[from], capacity});
  head_[from] = static_cast<int32_t>(arcs_.size() - 1);
  arcs_.push_back({from, head_[to], 0});
  head_[to] = static_cast<int32_t>(arcs_.size() - 1);
}

void FlowNetwork::AddUndirectedEdge(uint32_t a, uint32_t b, int64_t capacity) {
  HKPR_DCHECK(a < head_.size() && b < head_.size());
  HKPR_DCHECK(capacity >= 0);
  arcs_.push_back({b, head_[a], capacity});
  head_[a] = static_cast<int32_t>(arcs_.size() - 1);
  arcs_.push_back({a, head_[b], capacity});
  head_[b] = static_cast<int32_t>(arcs_.size() - 1);
}

bool FlowNetwork::Bfs(uint32_t source, uint32_t sink) {
  std::fill(level_.begin(), level_.end(), -1);
  std::deque<uint32_t> queue;
  level_[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const uint32_t v = queue.front();
    queue.pop_front();
    for (int32_t a = head_[v]; a != -1; a = arcs_[a].next) {
      if (arcs_[a].capacity > 0 && level_[arcs_[a].to] < 0) {
        level_[arcs_[a].to] = level_[v] + 1;
        queue.push_back(arcs_[a].to);
      }
    }
  }
  return level_[sink] >= 0;
}

int64_t FlowNetwork::Dfs(uint32_t v, uint32_t sink, int64_t limit) {
  if (v == sink) return limit;
  int64_t total = 0;
  for (int32_t& a = iter_[v]; a != -1; a = arcs_[a].next) {
    Arc& arc = arcs_[a];
    if (arc.capacity <= 0 || level_[arc.to] != level_[v] + 1) continue;
    const int64_t pushed =
        Dfs(arc.to, sink, std::min(limit - total, arc.capacity));
    if (pushed <= 0) continue;
    arc.capacity -= pushed;
    arcs_[a ^ 1].capacity += pushed;
    total += pushed;
    if (total == limit) break;
  }
  if (total == 0) level_[v] = -1;  // dead end; prune
  return total;
}

int64_t FlowNetwork::MaxFlow(uint32_t source, uint32_t sink) {
  HKPR_CHECK(source != sink);
  int64_t flow = 0;
  while (Bfs(source, sink)) {
    std::copy(head_.begin(), head_.end(), iter_.begin());
    flow += Dfs(source, sink, std::numeric_limits<int64_t>::max());
  }
  return flow;
}

std::vector<bool> FlowNetwork::MinCutSourceSide(uint32_t source) const {
  std::vector<bool> reachable(head_.size(), false);
  std::deque<uint32_t> queue;
  reachable[source] = true;
  queue.push_back(source);
  while (!queue.empty()) {
    const uint32_t v = queue.front();
    queue.pop_front();
    for (int32_t a = head_[v]; a != -1; a = arcs_[a].next) {
      if (arcs_[a].capacity > 0 && !reachable[arcs_[a].to]) {
        reachable[arcs_[a].to] = true;
        queue.push_back(arcs_[a].to);
      }
    }
  }
  return reachable;
}

}  // namespace hkpr
