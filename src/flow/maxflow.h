// Dinic max-flow / min-cut on explicitly built flow networks.
//
// Substrate for the flow-based local clustering baselines (SimpleLocal/MQI).
// Capacities are 64-bit integers; the MQI reduction multiplies cut and
// volume values, which stay far below the int64 range for the graph sizes
// this library targets.

#ifndef HKPR_FLOW_MAXFLOW_H_
#define HKPR_FLOW_MAXFLOW_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hkpr {

/// A directed flow network with residual arcs, solved with Dinic's
/// algorithm: O(V^2 E) worst case, near-linear on the shallow networks the
/// local-clustering reductions produce.
class FlowNetwork {
 public:
  /// Creates a network with `num_nodes` nodes (ids 0..num_nodes-1).
  explicit FlowNetwork(uint32_t num_nodes);

  /// Adds a directed arc `from -> to` with the given capacity (and a zero
  /// capacity reverse arc for the residual graph).
  void AddArc(uint32_t from, uint32_t to, int64_t capacity);

  /// Adds an undirected edge: capacity in both directions.
  void AddUndirectedEdge(uint32_t a, uint32_t b, int64_t capacity);

  /// Computes the max flow from `source` to `sink`. Callable once per
  /// network (capacities are consumed).
  int64_t MaxFlow(uint32_t source, uint32_t sink);

  /// After MaxFlow: nodes reachable from `source` in the residual graph
  /// (the source side of a minimum cut). Returns a bitmap indexed by node.
  std::vector<bool> MinCutSourceSide(uint32_t source) const;

  uint32_t num_nodes() const { return static_cast<uint32_t>(head_.size()); }
  size_t num_arcs() const { return arcs_.size(); }

 private:
  struct Arc {
    uint32_t to;
    int32_t next;      // index of next arc out of the same node, -1 = none
    int64_t capacity;  // residual capacity
  };

  bool Bfs(uint32_t source, uint32_t sink);
  int64_t Dfs(uint32_t v, uint32_t sink, int64_t limit);

  std::vector<Arc> arcs_;
  std::vector<int32_t> head_;
  std::vector<int32_t> level_;
  std::vector<int32_t> iter_;
};

}  // namespace hkpr

#endif  // HKPR_FLOW_MAXFLOW_H_
