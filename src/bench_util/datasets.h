// Dataset registry: synthetic stand-ins for the paper's 8 benchmark graphs.
//
// See DESIGN.md Section 4 for the substitution rationale. Every dataset is a
// deterministic function of (name, scale, seed); PLC and 3D-grid use the
// same generators as the paper itself.

#ifndef HKPR_BENCH_UTIL_DATASETS_H_
#define HKPR_BENCH_UTIL_DATASETS_H_

#include <string>
#include <vector>

#include "graph/community.h"
#include "graph/graph.h"

namespace hkpr {

/// Benchmark sizes: kQuick keeps the full sweep suite to minutes; kFull
/// matches DESIGN.md's ~30x-scaled-down targets.
enum class DatasetScale { kQuick, kFull };

/// A generated benchmark graph plus metadata.
struct Dataset {
  std::string name;        ///< registry key, e.g. "dblp"
  std::string paper_name;  ///< dataset it stands in for, e.g. "DBLP"
  Graph graph;
  CommunitySet communities;  ///< planted ground truth; empty if none
};

/// Names of all eight datasets, in the paper's Table 7 order:
/// dblp, youtube, plc, orkut, livejournal, grid3d, twitter, friendster.
const std::vector<std::string>& DatasetNames();

/// Datasets with planted ground-truth communities (Table 8's four).
const std::vector<std::string>& CommunityDatasetNames();

/// Builds one dataset by name. Aborts on unknown names (registry is fixed).
Dataset MakeDataset(const std::string& name, DatasetScale scale,
                    uint64_t seed = 42);

/// Builds every dataset in registry order.
std::vector<Dataset> MakeAllDatasets(DatasetScale scale, uint64_t seed = 42);

/// The delta an experiment should use for a graph of this size when the
/// paper used delta ~= 1/n on its (much larger) graphs.
double DefaultDelta(const Graph& graph);

}  // namespace hkpr

#endif  // HKPR_BENCH_UTIL_DATASETS_H_
