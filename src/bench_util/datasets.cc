#include "bench_util/datasets.h"

#include "common/logging.h"
#include "graph/generators.h"
#include "graph/subgraph.h"

namespace hkpr {

const std::vector<std::string>& DatasetNames() {
  static const std::vector<std::string> kNames = {
      "dblp",  "youtube", "plc",     "orkut",
      "livejournal", "grid3d",  "twitter", "friendster"};
  return kNames;
}

const std::vector<std::string>& CommunityDatasetNames() {
  static const std::vector<std::string> kNames = {"dblp", "youtube",
                                                  "livejournal", "orkut"};
  return kNames;
}

Dataset MakeDataset(const std::string& name, DatasetScale scale,
                    uint64_t seed) {
  const bool full = scale == DatasetScale::kFull;
  Dataset out;
  out.name = name;

  if (name == "dblp") {
    // High clustering coefficient, low average degree, strong communities.
    out.paper_name = "DBLP";
    LfrOptions options;
    options.n = full ? 30000 : 8000;
    options.degree_exponent = 2.6;
    options.min_degree = 3;
    options.max_degree = 60;
    options.mu = 0.15;
    options.min_community = 20;
    options.max_community = 400;
    CommunityGraph cg = LfrLike(options, seed);
    out.graph = std::move(cg.graph);
    out.communities = std::move(cg.communities);
  } else if (name == "youtube") {
    // Power-law, low average degree, weak communities.
    out.paper_name = "Youtube";
    LfrOptions options;
    options.n = full ? 40000 : 10000;
    options.degree_exponent = 2.2;
    options.min_degree = 2;
    options.max_degree = 200;
    options.mu = 0.45;
    options.min_community = 30;
    options.max_community = 800;
    CommunityGraph cg = LfrLike(options, seed + 1);
    out.graph = std::move(cg.graph);
    out.communities = std::move(cg.communities);
  } else if (name == "plc") {
    // The paper's own synthetic: Holme-Kim powerlaw-cluster, avg degree ~10.
    out.paper_name = "PLC";
    out.graph = PowerlawCluster(full ? 50000 : 12000, 5, 0.3, seed + 2);
  } else if (name == "orkut") {
    // Very high average degree.
    out.paper_name = "Orkut";
    LfrOptions options;
    options.n = full ? 16000 : 5000;
    options.degree_exponent = 2.3;
    options.min_degree = 24;
    options.max_degree = 400;
    options.mu = 0.35;
    options.min_community = 50;
    options.max_community = 1200;
    CommunityGraph cg = LfrLike(options, seed + 3);
    out.graph = std::move(cg.graph);
    out.communities = std::move(cg.communities);
  } else if (name == "livejournal") {
    // Medium degree, strong communities.
    out.paper_name = "LiveJournal";
    LfrOptions options;
    options.n = full ? 30000 : 9000;
    options.degree_exponent = 2.4;
    options.min_degree = 8;
    options.max_degree = 200;
    options.mu = 0.2;
    options.min_community = 30;
    options.max_community = 600;
    CommunityGraph cg = LfrLike(options, seed + 4);
    out.graph = std::move(cg.graph);
    out.communities = std::move(cg.communities);
  } else if (name == "grid3d") {
    // The paper's own synthetic: 3D torus, every node has degree 6.
    out.paper_name = "3D-grid";
    const uint32_t side = full ? 32 : 20;
    out.graph = Grid3D(side, side, side, /*torus=*/true);
  } else if (name == "twitter") {
    // Heavy-tailed, dense. R-MAT leaves isolated ids behind; restrict to
    // the giant component as SNAP preprocessing does.
    out.paper_name = "Twitter";
    out.graph = RestrictToLargestComponent(
        Rmat(full ? 16 : 14, full ? 48.0 : 32.0, seed + 5));
  } else if (name == "friendster") {
    // Largest stand-in.
    out.paper_name = "Friendster";
    out.graph = RestrictToLargestComponent(
        Rmat(full ? 17 : 15, full ? 40.0 : 24.0, seed + 6));
  } else {
    HKPR_CHECK(false) << "unknown dataset name: " << name;
  }
  return out;
}

std::vector<Dataset> MakeAllDatasets(DatasetScale scale, uint64_t seed) {
  std::vector<Dataset> out;
  out.reserve(DatasetNames().size());
  for (const std::string& name : DatasetNames()) {
    out.push_back(MakeDataset(name, scale, seed));
  }
  return out;
}

double DefaultDelta(const Graph& graph) {
  return 1.0 / static_cast<double>(graph.NumNodes());
}

}  // namespace hkpr
