#include "bench_util/workload.h"

#include <algorithm>
#include <cmath>

#include "common/flat_map.h"
#include "common/logging.h"
#include "graph/subgraph.h"

namespace hkpr {

std::vector<NodeId> UniformSeeds(const Graph& graph, uint32_t count,
                                 Rng& rng) {
  std::vector<NodeId> seeds;
  FlatSet chosen(count);
  uint32_t attempts = 0;
  const uint32_t n = graph.NumNodes();
  HKPR_CHECK(n > 0);
  while (seeds.size() < count && attempts < 100u * count + 1000u) {
    ++attempts;
    const NodeId v = static_cast<NodeId>(rng.UniformInt(n));
    if (graph.Degree(v) == 0) continue;
    if (chosen.Insert(v)) seeds.push_back(v);
  }
  return seeds;
}

namespace {

/// `count` Zipfian draws (exponent `s`) over the given hot set: the rank-r
/// entry is drawn with probability proportional to 1/r^s by inverting the
/// CDF with a binary search.
std::vector<NodeId> ZipfianDraws(const std::vector<NodeId>& hot,
                                 uint32_t count, double s, Rng& rng) {
  std::vector<double> cdf(hot.size());
  double total = 0.0;
  for (size_t r = 0; r < hot.size(); ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cdf[r] = total;
  }
  std::vector<NodeId> seeds;
  seeds.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    const double u = rng.UniformDouble() * total;
    const size_t r = static_cast<size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    seeds.push_back(hot[std::min(r, hot.size() - 1)]);
  }
  return seeds;
}

}  // namespace

std::vector<NodeId> ZipfianSeeds(const Graph& graph, uint32_t count,
                                 uint32_t universe, double s, Rng& rng) {
  HKPR_CHECK(universe > 0);
  HKPR_CHECK(s >= 0.0);
  const std::vector<NodeId> hot = UniformSeeds(graph, universe, rng);
  HKPR_CHECK(!hot.empty()) << "graph has no positive-degree nodes";
  return ZipfianDraws(hot, count, s, rng);
}

std::vector<NodeId> MixedDegreeZipfianSeeds(const Graph& graph,
                                            uint32_t count, uint32_t universe,
                                            double s, Rng& rng) {
  HKPR_CHECK(universe > 0);
  HKPR_CHECK(s >= 0.0);
  const uint32_t n = graph.NumNodes();
  HKPR_CHECK(n > 0);

  // Hub half: the highest-degree nodes, found by partial selection.
  const uint32_t num_hubs = std::min(std::max(universe / 2, 1u), n);
  std::vector<NodeId> by_degree(n);
  for (uint32_t v = 0; v < n; ++v) by_degree[v] = v;
  std::partial_sort(by_degree.begin(), by_degree.begin() + num_hubs,
                    by_degree.end(), [&](NodeId a, NodeId b) {
                      if (graph.Degree(a) != graph.Degree(b)) {
                        return graph.Degree(a) > graph.Degree(b);
                      }
                      return a < b;
                    });
  std::vector<NodeId> hot;
  hot.reserve(universe);
  for (uint32_t i = 0; i < num_hubs && graph.Degree(by_degree[i]) > 0; ++i) {
    hot.push_back(by_degree[i]);
  }

  // Tail half: uniform positive-degree nodes not already picked as hubs.
  FlatSet chosen(universe);
  for (NodeId hub : hot) chosen.Insert(hub);
  uint32_t attempts = 0;
  while (hot.size() < universe && attempts < 100u * universe + 1000u) {
    ++attempts;
    const NodeId v = static_cast<NodeId>(rng.UniformInt(n));
    if (graph.Degree(v) == 0) continue;
    if (chosen.Insert(v)) hot.push_back(v);
  }
  HKPR_CHECK(!hot.empty()) << "graph has no positive-degree nodes";

  // Shuffle so Zipfian rank (popularity) is independent of degree class:
  // some hubs are hot, some cold, ditto tails.
  for (size_t i = hot.size(); i > 1; --i) {
    std::swap(hot[i - 1], hot[rng.UniformInt(i)]);
  }
  return ZipfianDraws(hot, count, s, rng);
}

std::vector<CommunitySeed> CommunitySeeds(const Graph& graph,
                                          const CommunitySet& communities,
                                          uint32_t count, size_t min_size,
                                          Rng& rng) {
  std::vector<CommunitySeed> out;
  std::vector<size_t> eligible = communities.CommunitiesOfSizeAtLeast(min_size);
  if (eligible.empty()) return out;
  // Shuffle the eligible communities and take one seed from each, cycling if
  // there are fewer communities than requested seeds.
  for (size_t i = eligible.size(); i > 1; --i) {
    std::swap(eligible[i - 1], eligible[rng.UniformInt(i)]);
  }
  size_t idx = 0;
  uint32_t attempts = 0;
  while (out.size() < count && attempts < 100u * count + 1000u) {
    ++attempts;
    const size_t c = eligible[idx % eligible.size()];
    ++idx;
    const auto& members = communities.Community(c);
    const NodeId seed = members[rng.UniformInt(members.size())];
    if (graph.Degree(seed) == 0) continue;
    out.push_back({seed, c});
  }
  return out;
}

DensityStratifiedSeeds MakeDensityStratifiedSeeds(const Graph& graph,
                                                  uint32_t num_subgraphs,
                                                  uint32_t ball_size,
                                                  uint32_t seeds_per_stratum,
                                                  Rng& rng) {
  struct ScoredBall {
    double density;
    std::vector<NodeId> nodes;
  };
  std::vector<ScoredBall> balls;
  balls.reserve(num_subgraphs);
  const uint32_t n = graph.NumNodes();
  uint32_t attempts = 0;
  while (balls.size() < num_subgraphs && attempts < 20u * num_subgraphs) {
    ++attempts;
    const NodeId start = static_cast<NodeId>(rng.UniformInt(n));
    if (graph.Degree(start) == 0) continue;
    std::vector<NodeId> ball = RandomBfsBall(graph, start, ball_size, rng);
    if (ball.size() < 4) continue;
    const double density = EdgeDensity(graph, ball);
    balls.push_back({density, std::move(ball)});
  }
  std::sort(balls.begin(), balls.end(),
            [](const ScoredBall& a, const ScoredBall& b) {
              return a.density > b.density;
            });

  DensityStratifiedSeeds out;
  const auto pick_from = [&](size_t begin, size_t end,
                             std::vector<NodeId>& dst) {
    if (begin >= balls.size()) return;
    end = std::min(end, balls.size());
    FlatSet chosen(seeds_per_stratum);
    uint32_t tries = 0;
    while (dst.size() < seeds_per_stratum &&
           tries < 100u * seeds_per_stratum) {
      ++tries;
      const size_t b = begin + rng.UniformInt(end - begin);
      const auto& nodes = balls[b].nodes;
      const NodeId v = nodes[rng.UniformInt(nodes.size())];
      if (graph.Degree(v) > 0 && chosen.Insert(v)) dst.push_back(v);
    }
  };
  const size_t stratum = std::max<size_t>(1, balls.size() / 5);
  pick_from(0, stratum, out.high);
  pick_from(balls.size() / 2 - stratum / 2,
            balls.size() / 2 - stratum / 2 + stratum, out.medium);
  pick_from(balls.size() - stratum, balls.size(), out.low);
  return out;
}

}  // namespace hkpr
