// Aligned plain-text table output for benchmark reports.

#ifndef HKPR_BENCH_UTIL_TABLE_H_
#define HKPR_BENCH_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace hkpr {

/// Collects rows of string cells and prints them with aligned columns, in
/// the style of the paper's tables.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Renders to stdout with a separator under the header.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision float formatting ("0.1234").
std::string FmtF(double value, int precision = 4);

/// Scientific notation ("1.0e-06").
std::string FmtSci(double value);

/// Milliseconds with adaptive precision ("12.3 ms", "1234 ms").
std::string FmtMs(double ms);

/// Thousands-grouped integer ("1,234,567").
std::string FmtCount(uint64_t value);

}  // namespace hkpr

#endif  // HKPR_BENCH_UTIL_TABLE_H_
