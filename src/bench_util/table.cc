#include "bench_util/table.h"

#include <cinttypes>
#include <cstdio>

namespace hkpr {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print() const {
  std::vector<size_t> width(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > width[c]) width[c] = row[c].size();
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s%s", static_cast<int>(width[c]), row[c].c_str(),
                  c + 1 == row.size() ? "\n" : "  ");
    }
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < width.size(); ++c) total += width[c] + 2;
  std::printf("%s\n", std::string(total, '-').c_str());
  for (const auto& row : rows_) print_row(row);
}

std::string FmtF(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FmtSci(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1e", value);
  return buf;
}

std::string FmtMs(double ms) {
  char buf[64];
  if (ms < 10.0) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", ms);
  } else if (ms < 1000.0) {
    std::snprintf(buf, sizeof(buf), "%.1f ms", ms);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", ms / 1000.0);
  }
  return buf;
}

std::string FmtCount(uint64_t value) {
  char raw[32];
  std::snprintf(raw, sizeof(raw), "%" PRIu64, value);
  std::string digits(raw);
  std::string out;
  const size_t len = digits.size();
  for (size_t i = 0; i < len; ++i) {
    out.push_back(digits[i]);
    const size_t remaining = len - i - 1;
    if (remaining > 0 && remaining % 3 == 0) out.push_back(',');
  }
  return out;
}

}  // namespace hkpr
