// Query-set construction for the benchmark harness.

#ifndef HKPR_BENCH_UTIL_WORKLOAD_H_
#define HKPR_BENCH_UTIL_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "graph/community.h"
#include "graph/graph.h"

namespace hkpr {

/// `count` distinct seed nodes drawn uniformly at random among nodes with
/// positive degree (the paper's "50 seed nodes uniformly at random").
std::vector<NodeId> UniformSeeds(const Graph& graph, uint32_t count, Rng& rng);

/// `count` seed draws from a Zipfian popularity distribution over a hot set
/// of `universe` distinct nodes: the rank-r hot seed is drawn with
/// probability proportional to 1/r^s. The hot set itself is sampled
/// uniformly among positive-degree nodes. Models the skewed, repetitive
/// query traffic a serving frontend sees (s = 1.0 is the classic web-query
/// skew); unlike UniformSeeds the result intentionally repeats seeds.
std::vector<NodeId> ZipfianSeeds(const Graph& graph, uint32_t count,
                                 uint32_t universe, double s, Rng& rng);

/// ZipfianSeeds over a *mixed-degree* hot set: half the universe is the
/// graph's highest-degree nodes (hubs), half is drawn uniformly among the
/// remaining positive-degree nodes, and the combined set is shuffled before
/// Zipfian ranks are assigned — so hot traffic mixes hub and tail seeds
/// instead of whatever degrees a uniform sample happens to hit. The
/// workload an adaptive backend router is measured on: per-seed backend
/// choice only matters when the seed mix actually spans degree classes.
std::vector<NodeId> MixedDegreeZipfianSeeds(const Graph& graph, uint32_t count,
                                            uint32_t universe, double s,
                                            Rng& rng);

/// A seed together with its ground-truth community (Table 8 protocol).
struct CommunitySeed {
  NodeId seed;
  size_t community;
};

/// `count` seeds drawn from distinct communities of size >= `min_size`.
std::vector<CommunitySeed> CommunitySeeds(const Graph& graph,
                                          const CommunitySet& communities,
                                          uint32_t count, size_t min_size,
                                          Rng& rng);

/// Density-stratified seeds (Figure 7 protocol): sample `num_subgraphs`
/// random BFS balls, sort by edge density, and draw seeds from the top,
/// middle and bottom `stratum_width` subgraphs.
struct DensityStratifiedSeeds {
  std::vector<NodeId> high;
  std::vector<NodeId> medium;
  std::vector<NodeId> low;
};

DensityStratifiedSeeds MakeDensityStratifiedSeeds(const Graph& graph,
                                                  uint32_t num_subgraphs,
                                                  uint32_t ball_size,
                                                  uint32_t seeds_per_stratum,
                                                  Rng& rng);

}  // namespace hkpr

#endif  // HKPR_BENCH_UTIL_WORKLOAD_H_
