// Sharded multi-graph serving frontend.
//
// One process, many graphs: MultiGraphService shards requests by graph
// name onto per-graph AsyncQueryService instances, each serving one
// immutable GraphSnapshot from a GraphStore. Per-graph services are
// constructed lazily — the first query (or publish-over-existing) for a
// graph pays the estimator build, later ones reuse it — and share a
// worker budget: each service is sized to max(1, budget / graphs-in-store)
// workers *at build time* and keeps that size until its graph is
// republished (a rebalance-on-load would wipe the per-graph caches), so
// the live total can temporarily exceed the budget after new graphs are
// loaded next to long-lived services. Builds run *outside* the registry
// lock (only the
// resolve/install steps lock), so standing up one graph's service never
// stalls submissions to the others; when two threads race to build the
// same snapshot, one service wins the install and the loser is quietly
// discarded.
//
// Hot-swap: Publish() installs a new snapshot in the store and, if the
// graph is already being served, atomically replaces its service with one
// built on the new snapshot. The old service keeps its snapshot reference
// and drains — in-flight queries finish on the graph version they were
// submitted against (their results carry that version) — while staying
// visible to the stats readers as "retiring"; once drained, its final
// counters are folded into the per-graph retired stats in the same
// critical section that unparks it, so StatsFor() is cumulative across
// any number of swaps and never transiently dips mid-drain.
// Because a replaced service's cache dies with it and live cache keys
// embed the snapshot version, a pre-swap cached estimate can never be
// returned for a post-swap query.
//
// Removal: Drop() takes the graph out of the store and synchronously
// drains its service (every queued future resolves before Drop returns).
// Queries for unknown or dropped graphs complete immediately with
// QueryStatus::kUnknownGraph — never a silent fallback to another graph.
//
// Self-healing: the store is the source of truth. If a snapshot is
// published or removed directly on the store, the next Submit() notices
// the version mismatch and swaps (or retires) the service on the spot.
//
// Plans: every request resolves to a per-query QueryPlan inside its
// graph's AsyncQueryService (request overrides > per-graph defaults >
// service-wide template; "auto" routes adaptively). SetDefaultBackend()
// and SetGraphDefaults() are live config updates — no drain, no rebuild —
// and per-graph defaults are re-applied whenever a graph's service is
// rebuilt, so they survive hot-swaps.

#ifndef HKPR_SERVICE_MULTI_GRAPH_SERVICE_H_
#define HKPR_SERVICE_MULTI_GRAPH_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "hkpr/cost_model.h"
#include "hkpr/params.h"
#include "service/async_query_service.h"
#include "service/graph_store.h"

namespace hkpr {

/// Which routing policy "auto" plans resolve through (per graph).
enum class RouterKind : uint8_t {
  kRule,     ///< the calibrated RuleBasedRouter (PR 5 behavior)
  kLearned,  ///< one LearnedRouter per graph name, trained online from
             ///< the graph's drained RoutingEvents; falls back to the
             ///< rules per decision while undertrained
};

/// Multi-graph serving configuration.
struct MultiGraphOptions {
  /// Total worker threads budgeted across the per-graph services; each
  /// service is built with max(1, budget / graphs-in-store) workers and
  /// keeps that size until its graph is republished, so the live total
  /// tracks the budget approximately, not as a hard cap. 0 uses all
  /// hardware threads.
  uint32_t worker_budget = 0;
  /// Template for every per-graph service (cache, queue depth, backend,
  /// micro-batching). `service.num_workers` is ignored — the budget above
  /// decides worker counts.
  ServiceOptions service;
  /// Routing policy kind for "auto" plans. kLearned installs one
  /// LearnedRouter per graph *name* — it survives hot-swaps of that
  /// graph (the cost model decays and re-fits when the swapped-in
  /// graph's scale differs; see CostModelOptions) and dies with Drop().
  /// Ignored when `service.router` is set explicitly.
  RouterKind router = RouterKind::kRule;
  /// Candidate set, model thresholds and exploration for kLearned.
  LearnedRouterOptions learned;
  /// Background trainer period: every interval, drained routing events
  /// feed each graph's LearnedRouter (TrainRouters()). Zero disables the
  /// thread — call TrainRouters() manually (tests, benches). Only
  /// meaningful with router == kLearned.
  std::chrono::milliseconds train_interval{0};
};

/// The sharded frontend. All public methods are thread-safe. The store
/// must outlive the service; the destructor drains every per-graph
/// service.
class MultiGraphService {
 public:
  MultiGraphService(GraphStore& store, const ApproxParams& params,
                    uint64_t seed, const MultiGraphOptions& options = {});
  ~MultiGraphService();

  MultiGraphService(const MultiGraphService&) = delete;
  MultiGraphService& operator=(const MultiGraphService&) = delete;

  /// Enqueues a full-vector HKPR query for `seed` on graph `graph`.
  /// Unknown graphs complete immediately with kUnknownGraph; a seed out
  /// of range for the graph's current snapshot (a racy condition under
  /// hot-swap, so validated here against the resolved snapshot, never
  /// check-failed) completes with kInvalidArgument.
  QueryHandle Submit(std::string_view graph, NodeId seed,
                     const SubmitOptions& submit = {});

  /// Enqueues a top-k proximity query on graph `graph`. k == 0 completes
  /// with kInvalidArgument (same report-don't-abort policy as the seed).
  QueryHandle SubmitTopK(std::string_view graph, NodeId seed, size_t k,
                         const SubmitOptions& submit = {});

  /// Publishes a new snapshot of `name` into the store and hot-swaps the
  /// per-graph service if one is live (lazy otherwise). Returns the new
  /// store version. In-flight queries drain on the old snapshot.
  uint64_t Publish(std::string_view name, Graph graph);

  /// Removes `name` from the store and synchronously drains its service;
  /// every already-submitted future resolves before this returns, and the
  /// drained service's counters are folded into the retired stats.
  /// Returns false if the store did not contain `name`.
  bool Drop(std::string_view name);

  /// The per-graph service for `name`, lazily constructing (or hot-swap
  /// refreshing) it from the store's current snapshot. Null when the store
  /// has no such graph. The returned pointer stays valid while held, even
  /// across a concurrent Publish()/Drop().
  std::shared_ptr<AsyncQueryService> ServiceFor(std::string_view name);

  /// Switches the default backend of *every* graph — a registered name or
  /// "auto" — as a live config update: no drain, no rebuild, queued
  /// requests keep their plans. Clears any per-graph backend overrides
  /// (their parameter overrides survive) so the switch actually applies
  /// everywhere. Returns false for unknown names.
  bool SetDefaultBackend(std::string_view backend);

  /// Sets `graph`'s default plan: an optional backend (registry name or
  /// "auto") and/or parameter overrides composed onto the service-wide
  /// ApproxParams. Applied to the live service immediately (no drain) and
  /// re-applied every time the graph's service is rebuilt (hot-swap,
  /// lazy build), so overrides survive republishes. An empty `defaults`
  /// restores the service-wide template. Returns false when the store has
  /// no such graph, the backend name is unknown, or the composed params
  /// are out of range (see ServableParams).
  bool SetGraphDefaults(std::string_view graph, const PlanOverrides& defaults);

  /// The overrides last set for `graph` (empty when none).
  PlanOverrides GraphDefaults(std::string_view graph) const;

  /// The service-wide default backend name ("tea+", ..., or "auto").
  std::string default_backend() const;

  /// Cumulative per-graph stats: retired services' totals (across every
  /// hot-swap and drop of `name`) plus the live service's, with latency
  /// percentiles recomputed from the merged histogram buckets — they
  /// cover the graph's whole history. Queue depth is the live service's.
  ServiceStatsSnapshot StatsFor(std::string_view name) const;

  /// Totals summed over every graph ever served (live + retired), with
  /// percentiles over the merged buckets; queue_depth sums live queues.
  ServiceStatsSnapshot AggregateStats() const;

  /// Cumulative per-(graph, backend) dimensioned metrics: every retired
  /// incarnation of `name` (folded at drain time, like retired stats)
  /// plus the live and still-draining services, merged by backend id.
  /// The rows behind the server's Prometheus-style `metrics` output.
  TelemetrySnapshot TelemetryFor(std::string_view name) const;

  /// Consumes graph `name`'s routing event log: events a retired
  /// incarnation left behind at drain time (in retirement order), then
  /// whatever the live service has logged since the last drain. Events
  /// that outlive a hot-swap are preserved (bounded by the configured
  /// ring capacity; beyond it the oldest are dropped and counted in
  /// TelemetryFor().routing_dropped). Drains consume: two concurrent
  /// drainers split the stream. Both this and DrainAllRoutingEvents()
  /// serialize on one drain mutex, so the background trainer and an
  /// external scraper never race each other mid-drain — but they still
  /// partition the events between them; point every consumer that needs
  /// the full stream at DrainAllRoutingEvents() and fan out from there.
  std::vector<RoutingEvent> DrainRoutingEvents(std::string_view name);

  /// Drains every graph's routing events (live, retiring and pending
  /// retired leftovers) in one serialized call — the form the background
  /// trainer uses, so per-name drains can never interleave with it.
  /// Graphs with no new events are omitted.
  std::map<std::string, std::vector<RoutingEvent>, std::less<>>
  DrainAllRoutingEvents();

  /// Feeds every graph's drained routing events to its LearnedRouter.
  /// Returns the number of events consumed. No-op (0) unless options
  /// selected RouterKind::kLearned. The background trainer calls this on
  /// its interval; tests and benches call it directly for deterministic
  /// training points.
  size_t TrainRouters();

  /// Graph `name`'s LearnedRouter for introspection (observation counts,
  /// coefficients, predictions — the server's `router` command). Null
  /// under RouterKind::kRule or before the graph's service was first
  /// built. The router is shared with (and outlives) the graph's
  /// service incarnations.
  std::shared_ptr<const LearnedRouter> LearnedRouterFor(
      std::string_view name) const;

  /// Every graph name with observable history: currently in the store,
  /// still draining, or with folded retired stats. The scope list the
  /// server's `metrics` and `stats` commands iterate.
  std::vector<std::string> StatsScopes() const;

  /// Drops every live per-graph cache (entries only; versions advance).
  void InvalidateCaches();

  /// Store listing passthrough (name, version, size per graph).
  std::vector<GraphInfo> List() const { return store_.List(); }

  GraphStore& store() { return store_; }
  /// The construction-time options template. The *current* default
  /// backend is mutable config — read it via default_backend(), not here.
  const MultiGraphOptions& options() const { return options_; }

  /// The worker budget after defaulting (0 -> all hardware threads) — the
  /// value BuildService divides among the per-graph services.
  uint32_t resolved_worker_budget() const;

  /// Submissions refused because the named graph was unknown. These never
  /// reach a per-graph service, so they appear here, not in StatsFor().
  uint64_t unknown_graph_rejects() const {
    return unknown_graph_rejects_.load(std::memory_order_relaxed);
  }

  /// Submissions refused as malformed (stale/out-of-range seed, k == 0);
  /// like unknown-graph rejects, counted service-wide.
  uint64_t invalid_argument_rejects() const {
    return invalid_argument_rejects_.load(std::memory_order_relaxed);
  }

 private:
  /// Builds a per-graph service for `name` on `snapshot` and applies the
  /// graph's plan defaults. Expensive (estimator + worker construction) —
  /// callers run it outside mu_ (the template options and defaults are
  /// copied under a short lock inside).
  std::shared_ptr<AsyncQueryService> BuildService(std::string_view name,
                                                  GraphSnapshot snapshot);

  /// Applies `name`'s plan defaults (and the current template backend) to
  /// `service` — idempotent live config updates. ApplyCurrentDefaults
  /// takes mu_; the Locked variant runs with it held, which makes every
  /// defaults apply atomic with the map state it read (two racing config
  /// updates serialize; neither can revert the other's newer apply). Runs
  /// at construction AND again after every install, which closes the
  /// lost-update window of a config update racing an outside-the-lock
  /// build: the post-install apply always reads map state at or after the
  /// concurrent update, so the installed service converges to the latest
  /// defaults.
  void ApplyCurrentDefaults(std::string_view name, AsyncQueryService& service);
  void ApplyDefaultsLocked(std::string_view name, AsyncQueryService& service);

  /// Lock-held half of retirement: parks a service just removed from
  /// `services_` in `retiring_`, where StatsFor/AggregateStats keep
  /// counting it while it drains — cumulative counters can never
  /// transiently dip between a swap/drop and the fold.
  void RetireLocked(std::string_view name,
                    std::shared_ptr<AsyncQueryService> service);

  /// Lock-free half: drains `service` (Shutdown), then atomically (under
  /// mu_) folds its final counters into `retired_stats_` and removes it
  /// from `retiring_` — stats readers see the service's history exactly
  /// once at every instant. Every caller that receives a retired service
  /// from TryResolveLocked/InstallLocked/Drop must call this, outside mu_.
  void FinishRetire(std::string_view name,
                    const std::shared_ptr<AsyncQueryService>& service);

  /// One lock-held resolution attempt for `name`: either the live,
  /// current service; or `unknown` (not in the store); or the snapshot
  /// the caller must build a service for (outside the lock), then offer
  /// back via InstallLocked(). A stale service retired here is moved into
  /// `*retired` for the caller to release outside the lock (its deleter
  /// drains synchronously).
  struct Resolution {
    std::shared_ptr<AsyncQueryService> service;
    GraphSnapshot to_build;
    bool unknown = false;
  };
  Resolution TryResolveLocked(std::string_view name,
                              std::shared_ptr<AsyncQueryService>* retired);

  /// Lock-held install of an outside-the-lock build: swaps `fresh` in if
  /// the store still serves the snapshot it was built on. Returns the
  /// service now current for `name` (`fresh`, or the one a racing builder
  /// installed first), or null when the store moved on mid-build — the
  /// caller discards `fresh` and re-resolves.
  std::shared_ptr<AsyncQueryService> InstallLocked(
      std::string_view name, const std::shared_ptr<AsyncQueryService>& fresh,
      std::shared_ptr<AsyncQueryService>* retired);

  /// The resolve-then-enqueue loop shared by Submit and SubmitTopK.
  /// `enqueue` (a TrySubmit* wrapper) runs with NO registry lock held —
  /// submissions to different graphs never serialize on mu_. Swap-safety
  /// comes from the TrySubmit contract instead: a service drained by a
  /// concurrent Publish()/Drop() returns nullopt, and the loop re-resolves
  /// onto the replacement (or reports kUnknownGraph after a drop) — an
  /// accepted (enqueued) query is still never bounced by a swap.
  QueryHandle SubmitImpl(
      std::string_view graph, NodeId seed,
      const std::function<std::optional<QueryHandle>(AsyncQueryService&)>&
          enqueue);

  /// An immediately-resolved handle carrying `status` (kUnknownGraph
  /// bumps the reject counter).
  QueryHandle ErrorHandle(QueryStatus status);

  /// Graph `name`'s LearnedRouter, creating it on first use (BuildService
  /// wires it into every incarnation of the graph's service). mu_ held.
  std::shared_ptr<LearnedRouter> LearnedRouterForLocked(std::string_view name);

  GraphStore& store_;
  ApproxParams params_;
  uint64_t seed_;
  MultiGraphOptions options_;
  std::atomic<uint64_t> unknown_graph_rejects_{0};
  std::atomic<uint64_t> invalid_argument_rejects_{0};

  /// Serializes DrainRoutingEvents / DrainAllRoutingEvents against each
  /// other (never held together with a service's internal locks; ordered
  /// before mu_).
  std::mutex routing_drain_mu_;

  /// Background trainer (TrainRouters every train_interval); only
  /// started for kLearned with a non-zero interval.
  std::thread trainer_;
  std::mutex trainer_mu_;
  std::condition_variable trainer_cv_;
  bool trainer_stop_ = false;  // under trainer_mu_

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<AsyncQueryService>, std::less<>>
      services_;
  /// Per-graph default-plan overrides (see SetGraphDefaults), re-applied
  /// on every service (re)build. Guarded by mu_.
  std::map<std::string, PlanOverrides, std::less<>> graph_defaults_;
  /// Swapped-out/dropped services still draining (see RetireLocked).
  std::map<std::string, std::vector<std::shared_ptr<AsyncQueryService>>,
           std::less<>>
      retiring_;
  /// Final counters of fully-drained retired services, per graph.
  std::map<std::string, ServiceStatsSnapshot, std::less<>> retired_stats_;
  /// Final per-backend telemetry of retired services, folded alongside
  /// retired_stats_ in FinishRetire's critical section.
  std::map<std::string, TelemetrySnapshot, std::less<>> retired_telemetry_;
  /// Routing events a retired service had not yet handed to a drainer,
  /// preserved across hot-swaps until the next DrainRoutingEvents(name).
  /// Bounded per graph by the configured ring capacity (oldest dropped,
  /// counted in retired_telemetry_[name].routing_dropped).
  std::map<std::string, std::vector<RoutingEvent>, std::less<>>
      pending_events_;
  /// Per-graph-name learned routers (RouterKind::kLearned): created on
  /// first service build, shared across every hot-swap incarnation of
  /// the name (the model adapts via scale decay instead of resetting),
  /// erased by Drop() like graph_defaults_. Guarded by mu_.
  std::map<std::string, std::shared_ptr<LearnedRouter>, std::less<>>
      routers_;
};

}  // namespace hkpr

#endif  // HKPR_SERVICE_MULTI_GRAPH_SERVICE_H_
