#include "service/service_stats.h"

#include <bit>
#include <cmath>

namespace hkpr {

void LatencyHistogram::Record(double seconds) {
  uint64_t us = 0;
  if (seconds > 0.0) {
    us = static_cast<uint64_t>(std::llround(seconds * 1e6));
  }
  size_t bucket = std::bit_width(us);  // 0 -> 0, [2^(i-1), 2^i) -> i
  if (bucket >= kBuckets) bucket = kBuckets - 1;
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

double LatencyPercentileMs(
    const std::array<uint64_t, LatencyHistogram::kBuckets>& buckets,
    double q) {
  uint64_t total = 0;
  for (const uint64_t count : buckets) total += count;
  if (total == 0) return 0.0;
  const uint64_t target =
      static_cast<uint64_t>(std::ceil(q * static_cast<double>(total)));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    cumulative += buckets[i];
    if (cumulative >= target && target > 0) {
      // Upper bound of bucket i in microseconds: 2^i - 1 (bucket 0: < 1us).
      const double upper_us =
          i == 0 ? 1.0 : static_cast<double>((uint64_t{1} << i) - 1);
      return upper_us / 1000.0;
    }
  }
  return 0.0;
}

std::array<uint64_t, LatencyHistogram::kBuckets>
LatencyHistogram::BucketCounts() const {
  std::array<uint64_t, kBuckets> counts;
  for (size_t i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

double LatencyHistogram::PercentileMs(double q) const {
  return LatencyPercentileMs(BucketCounts(), q);
}

uint64_t LatencyHistogram::TotalCount() const {
  uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

void AddStageSnapshot(StageLatencySnapshot& into,
                      const StageLatencySnapshot& from) {
  into.count += from.count;
  into.total_us += from.total_us;
  for (size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    into.buckets[i] += from.buckets[i];
  }
  into.p50_ms = LatencyPercentileMs(into.buckets, 0.50);
  into.p95_ms = LatencyPercentileMs(into.buckets, 0.95);
  into.p99_ms = LatencyPercentileMs(into.buckets, 0.99);
}

void AddSnapshotCounters(ServiceStatsSnapshot& into,
                         const ServiceStatsSnapshot& from) {
  into.submitted += from.submitted;
  into.rejected += from.rejected;
  into.invalid_plans += from.invalid_plans;
  into.completed += from.completed;
  into.cancelled += from.cancelled;
  into.expired += from.expired;
  into.cache_hits += from.cache_hits;
  into.cache_misses += from.cache_misses;
  into.coalesced += from.coalesced;
  into.computed += from.computed;
  into.stolen += from.stolen;
  into.hedged += from.hedged;
  into.hedge_wins += from.hedge_wins;
  into.latency_count += from.latency_count;
  for (size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    into.latency_buckets[i] += from.latency_buckets[i];
  }
  into.stage_tracing = into.stage_tracing || from.stage_tracing;
  AddStageSnapshot(into.queue_wait, from.queue_wait);
  AddStageSnapshot(into.cache_lookup, from.cache_lookup);
  AddStageSnapshot(into.compute, from.compute);
  into.traced_total_us += from.traced_total_us;
}

void RecomputeSnapshotPercentiles(ServiceStatsSnapshot& snap) {
  snap.latency_p50_ms = LatencyPercentileMs(snap.latency_buckets, 0.50);
  snap.latency_p95_ms = LatencyPercentileMs(snap.latency_buckets, 0.95);
  snap.latency_p99_ms = LatencyPercentileMs(snap.latency_buckets, 0.99);
}

ServiceStatsSnapshot ServiceStats::TakeSnapshot() const {
  ServiceStatsSnapshot snap;
  snap.submitted = submitted_.load(std::memory_order_relaxed);
  snap.rejected = rejected_.load(std::memory_order_relaxed);
  snap.invalid_plans = invalid_plans_.load(std::memory_order_relaxed);
  snap.completed = completed_.load(std::memory_order_relaxed);
  snap.cancelled = cancelled_.load(std::memory_order_relaxed);
  snap.expired = expired_.load(std::memory_order_relaxed);
  snap.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  snap.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  snap.coalesced = coalesced_.load(std::memory_order_relaxed);
  snap.computed = computed_.load(std::memory_order_relaxed);
  snap.stolen = stolen_.load(std::memory_order_relaxed);
  snap.hedged = hedged_.load(std::memory_order_relaxed);
  snap.hedge_wins = hedge_wins_.load(std::memory_order_relaxed);
  // Percentiles derive from the same bucket copy that ships in the
  // snapshot, so the two can never disagree.
  snap.latency_buckets = latency_.BucketCounts();
  for (const uint64_t count : snap.latency_buckets) {
    snap.latency_count += count;
  }
  snap.latency_p50_ms = LatencyPercentileMs(snap.latency_buckets, 0.50);
  snap.latency_p95_ms = LatencyPercentileMs(snap.latency_buckets, 0.95);
  snap.latency_p99_ms = LatencyPercentileMs(snap.latency_buckets, 0.99);
  return snap;
}

}  // namespace hkpr
