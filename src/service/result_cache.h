// Cross-query result cache with single-flight deduplication.
//
// Real local-clustering traffic is skewed and repetitive (hot seeds get
// queried over and over), so a serving frontend wins far more throughput
// from remembering completed estimates than from recomputing them faster.
// ResultCache is a sharded LRU map from (graph version, seed, resolved
// QueryPlan — backend id + heat-kernel/accuracy parameters) to a completed
// SparseVector estimate. Because the key is the *resolved plan*, two
// distinct plans (different backend, or any parameter override) can never
// serve each other's entries, while the same plan reached via routing, an
// explicit request override, or the service default shares one entry.
//
// Concurrent requests for the same key are deduplicated single-flight
// style: the first requester becomes the *leader* and computes; everyone
// else receives a shared_future tied to the leader's promise and waits for
// that one computation instead of starting their own. A cache hit therefore
// never recomputes, and N simultaneous requests for one cold key cost
// exactly one computation.
//
// Invalidate() bumps the cache's version and drops every entry; serving
// layers fold the version into the keys they build, so entries created
// before a graph swap can never satisfy lookups issued after it.

#ifndef HKPR_SERVICE_RESULT_CACHE_H_
#define HKPR_SERVICE_RESULT_CACHE_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <vector>

#include "common/sparse_vector.h"
#include "graph/graph.h"

namespace hkpr {

/// Identity of one HKPR computation: the seed node, the resolved plan that
/// ran it (backend id + heat-kernel/accuracy parameters), and the graph
/// version at submission time. Two keys are equal only when every field
/// matches bit-for-bit, so a cached value is only ever returned for the
/// exact computation that produced it.
struct ResultCacheKey {
  uint64_t graph_version = 0;
  NodeId seed = 0;
  /// The EstimatorRegistry's stable id for the backend that computes this
  /// key (StableBackendId(name) in hkpr/backend.h — a pure function of the
  /// backend name, collision-checked at registration). Distinct backends
  /// therefore can never share a cache entry, even with identical
  /// parameters.
  uint32_t backend_id = 0;
  double t = 0.0;
  double eps_r = 0.0;
  double delta = 0.0;
  double p_f = 0.0;

  /// Bitwise equality on the doubles, matching KeyHash (which hashes bit
  /// patterns) and the exact-computation contract: value equality would
  /// conflate 0.0 with -0.0 (equal values, different hashes — breaking the
  /// map's Hash/KeyEqual requirement) and make a NaN key unequal to itself.
  bool operator==(const ResultCacheKey& other) const {
    return graph_version == other.graph_version && seed == other.seed &&
           backend_id == other.backend_id &&
           std::bit_cast<uint64_t>(t) == std::bit_cast<uint64_t>(other.t) &&
           std::bit_cast<uint64_t>(eps_r) ==
               std::bit_cast<uint64_t>(other.eps_r) &&
           std::bit_cast<uint64_t>(delta) ==
               std::bit_cast<uint64_t>(other.delta) &&
           std::bit_cast<uint64_t>(p_f) == std::bit_cast<uint64_t>(other.p_f);
  }
};

/// Completed estimates are shared immutably between the cache, in-flight
/// responses, and callers that hold onto results.
using CachedEstimate = std::shared_ptr<const SparseVector>;

/// Sharded LRU cache of completed estimates with single-flight dedup.
/// All methods are thread-safe; locking is per shard.
class ResultCache {
 public:
  /// `capacity` bounds the total number of entries (split evenly across
  /// `num_shards`, at least one per shard). Must be positive — a capacity
  /// of zero means "no cache", which callers express by not constructing
  /// one.
  explicit ResultCache(size_t capacity, uint32_t num_shards = 8);
  ~ResultCache();  // out-of-line: Shard is an incomplete type here

  enum class Outcome {
    kHit,       ///< completed value returned
    kInFlight,  ///< another requester is computing; wait on `pending`
    kMiss,      ///< caller became the leader; compute, then Complete()
  };

  struct Lookup {
    Outcome outcome = Outcome::kMiss;
    CachedEstimate value;                        // set when kHit
    std::shared_future<CachedEstimate> pending;  // set when kInFlight
    std::shared_ptr<std::promise<CachedEstimate>> leader;  // set when kMiss
  };

  /// Looks up `key`. On a miss the caller is registered as the in-flight
  /// leader and MUST eventually call Complete() with the returned `leader`
  /// promise — followers block on it.
  Lookup LookupOrStartCompute(const ResultCacheKey& key);

  /// Publishes the leader's computed value: fulfills the promise (waking
  /// any coalesced followers) and marks the entry completed in LRU order.
  /// Safe to call after an Invalidate() raced away the entry — followers
  /// still receive the value through their futures.
  void Complete(const ResultCacheKey& key,
                const std::shared_ptr<std::promise<CachedEstimate>>& leader,
                CachedEstimate value);

  /// Current cache version (folded into keys by the serving layer).
  uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

  /// Drops every entry and bumps the version (graph swap / parameter
  /// migration). Returns the new version.
  uint64_t Invalidate();

  /// Completed + in-flight entries across all shards.
  size_t size() const;

  size_t capacity() const { return shard_capacity_ * shards_.size(); }

 private:
  struct KeyHash {
    size_t operator()(const ResultCacheKey& key) const;
  };

  struct Entry {
    std::shared_future<CachedEstimate> future;
    std::shared_ptr<std::promise<CachedEstimate>> promise;  // null once ready
    CachedEstimate value;  // set once ready
    bool ready = false;
    std::list<ResultCacheKey>::iterator lru_it;
  };

  struct Shard;

  Shard& ShardFor(const ResultCacheKey& key);

  std::vector<std::unique_ptr<Shard>> shards_;
  size_t shard_capacity_;
  std::atomic<uint64_t> version_{0};
};

}  // namespace hkpr

#endif  // HKPR_SERVICE_RESULT_CACHE_H_
