// Multi-graph registry with versioned, atomically hot-swappable snapshots.
//
// A serving process that fronts many graphs needs one invariant above all:
// a query that started on graph version v keeps reading version v — bit for
// bit — no matter how many times the graph is republished while the query
// runs. GraphStore provides that invariant by holding each named graph as
// an immutable snapshot (`shared_ptr<const Graph>` + a store-wide
// monotonically increasing version) that is swapped atomically by
// Publish().
//
// Read path: Get() takes the store's shared (read) lock only to locate the
// per-graph slot, then atomically loads the slot's current snapshot. The
// returned GraphSnapshot *owns* the graph: in-flight queries that resolved
// a snapshot never touch the store again — no locks, no version checks —
// and the old graph's memory is reclaimed exactly when the last in-flight
// query drops its reference. Publish() and Remove() can therefore never
// invalidate memory a query is reading.
//
// Versions are assigned from one store-wide counter, so every publish of
// every graph gets a distinct, strictly increasing version. Serving layers
// fold the version into their cache keys (see ResultCacheKey), which makes
// entries computed on a replaced snapshot unreachable the moment the swap
// happens — the cache-version guarantee is structural, not advisory.

#ifndef HKPR_SERVICE_GRAPH_STORE_H_
#define HKPR_SERVICE_GRAPH_STORE_H_

#include <atomic>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.h"

namespace hkpr {

/// An owning view of one published graph version. Copyable and cheap to
/// pass around; the graph stays alive for as long as any snapshot (or the
/// store) references it.
struct GraphSnapshot {
  std::shared_ptr<const Graph> graph;
  /// The store-wide version assigned at Publish() time; 0 only for the
  /// empty snapshot (unknown graph) and for non-store graphs wrapped by
  /// the legacy borrowing constructors.
  uint64_t version = 0;

  explicit operator bool() const { return graph != nullptr; }

  /// Wraps a caller-owned graph that is NOT managed by any store. The
  /// returned snapshot does not own the graph — the caller must keep it
  /// alive — and carries version 0. Exists for the legacy single-graph
  /// entry points (AsyncQueryService over a borrowed `const Graph&`).
  static GraphSnapshot Borrowed(const Graph& graph) {
    return {std::shared_ptr<const Graph>(std::shared_ptr<const void>(),
                                         &graph),
            0};
  }
};

/// One row of GraphStore::List().
struct GraphInfo {
  std::string name;
  uint64_t version = 0;
  uint32_t nodes = 0;
  uint64_t edges = 0;
};

/// Registry of named graphs, each held as an immutable versioned snapshot.
/// All methods are thread-safe; Get() never blocks behind a Publish()'s
/// graph construction (snapshots are built before the swap).
class GraphStore {
 public:
  GraphStore() = default;
  GraphStore(const GraphStore&) = delete;
  GraphStore& operator=(const GraphStore&) = delete;

  /// Publishes `graph` under `name`, creating the entry or atomically
  /// replacing the current snapshot. Returns the assigned version
  /// (store-wide monotone). Concurrent publishes to one name are ordered
  /// by version: the slot only ever moves to a higher version, so a racing
  /// older publish can never clobber a newer one. In-flight queries on the
  /// replaced snapshot keep their reference and finish on the old graph.
  uint64_t Publish(std::string_view name, Graph graph);

  /// The current snapshot of `name`, or an empty snapshot (version 0,
  /// null graph) when the name is unknown. Constant-time: a shared lock to
  /// find the slot plus one atomic load.
  GraphSnapshot Get(std::string_view name) const;

  /// Removes `name` from the store. Outstanding snapshots stay valid (the
  /// graph dies with its last reference). Returns false if unknown.
  bool Remove(std::string_view name);

  bool Contains(std::string_view name) const;

  /// Names with their current version and size, sorted by name.
  std::vector<GraphInfo> List() const;

  /// Registered names, sorted.
  std::vector<std::string> Names() const;

  /// Number of registered graphs.
  size_t Size() const;

  /// The most recently assigned version, 0 if nothing was ever published.
  uint64_t latest_version() const {
    return next_version_.load(std::memory_order_acquire) - 1;
  }

 private:
  /// A graph and its version, allocated together so one atomic pointer
  /// swap replaces both — a reader can never pair the new graph with the
  /// old version or vice versa (no torn reads).
  struct Versioned {
    Graph graph;
    uint64_t version;
  };

  struct Slot {
    std::atomic<std::shared_ptr<const Versioned>> current;
  };

  /// Guards the name -> slot map's *structure* only; snapshot swaps inside
  /// a slot are plain atomic stores under the shared lock.
  mutable std::shared_mutex mu_;
  std::map<std::string, std::unique_ptr<Slot>, std::less<>> slots_;
  std::atomic<uint64_t> next_version_{1};
};

}  // namespace hkpr

#endif  // HKPR_SERVICE_GRAPH_STORE_H_
