// Asynchronous HKPR serving frontend.
//
// AsyncQueryService turns the synchronous query-engine building blocks
// (per-thread backend QueryExecutors, reusable workspaces — see
// hkpr/queries.h) into a service: callers Submit() single-seed or top-k
// queries and get std::future-based handles back; dedicated worker threads
// answer each request on their private executor. The estimator the workers
// run is any backend registered in the EstimatorRegistry (hkpr/backend.h),
// selected by name via ServiceOptions::backend.
//
// Submission is sharded: each worker owns a private FIFO shard (lock +
// condition variable + deque), and submitters spread requests round-robin
// across the shards. At high worker counts a single shared MPMC queue
// becomes the serialization point — every submitter and every worker
// wakeup contends one mutex and bounces one cache line — whereas with
// shards the expected contention on any lock is constant in the worker
// count. Workers drain their own shard in micro-batches of up to
// `max_batch` requests per wakeup (so a loaded service amortizes wakeups
// the same way the static-shard batch path amortizes dispatch); a worker
// whose shard is empty *steals* the oldest waiting half of a loaded
// victim's shard before parking, so one slow query (or an unlucky
// round-robin burst) cannot strand requests behind a busy worker while
// others idle. Admission control stays exact and global: one atomic
// counter of waiting requests backs both `max_queue_depth` and the
// queue-depth gauge, and the `stolen` counter in ServiceStats makes the
// rebalancing observable.
//
// Every request is resolved into a per-query QueryPlan (hkpr/router.h) at
// submission time: the service's default backend + params, composed with
// any request-level PlanOverrides, and — when the request or the default
// says "auto" — an adaptive RoutingPolicy that picks the backend from the
// seed's degree, t and the graph scale. Workers execute plans on their
// plan-aware executors (one lazily built estimator per distinct plan), so
// switching the default backend or parameters is a config update: no
// drain, no worker rebuild, in-flight queries finish on the plan they were
// submitted with.
//
// In front of the workers sits a sharded single-flight ResultCache: repeat
// queries for a hot (seed, plan) pair are served from the cache without
// recomputing, and concurrent requests for the same cold key wait on one
// in-flight computation. Cache keys embed the *full resolved plan*
// (backend id + every parameter), so two distinct plans can never serve
// each other's entries — and the same resolved plan reached via routing,
// an explicit override, or the default shares one entry, which is exactly
// the dedup a cache wants. ServiceStats counts every stage; Stats()
// returns a snapshot with p50/p95/p99 latencies.
//
// The service answers on one immutable GraphSnapshot (service/graph_store.h)
// which it co-owns for its whole lifetime: hot-swapping a graph means
// standing up a new service on the new snapshot (MultiGraphService does
// exactly that) while this one drains and finishes its in-flight queries
// on the old graph. The snapshot's version is folded into every cache key
// and stamped on every result, so estimates computed on a replaced
// snapshot can never serve post-swap lookups.
//
// Determinism: every accepted request is assigned a global query index at
// submission time, and the computation for index i draws its randomness
// from QueryRngSeed(engine seed, i) — exactly the derivation
// BatchQueryEngine uses. A cold service (or one with the cache disabled)
// therefore returns bit-identical estimates to BatchQueryEngine for the
// same (backend, seed sequence, params, engine seed), regardless of how
// many workers race over the queue. With the cache enabled, a repeat of an
// *already answered* key returns the original computation's value instead
// of drawing fresh randomness — that is the point of the cache.

#ifndef HKPR_SERVICE_ASYNC_QUERY_SERVICE_H_
#define HKPR_SERVICE_ASYNC_QUERY_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/sparse_vector.h"
#include "graph/graph.h"
#include "hkpr/backend.h"
#include "hkpr/params.h"
#include "hkpr/queries.h"
#include "hkpr/router.h"
#include "service/graph_store.h"
#include "service/result_cache.h"
#include "service/service_stats.h"
#include "service/telemetry.h"

namespace hkpr {

/// Hedged-request configuration (ServiceOptions::hedge).
///
/// With hedging on, a routed query that is about to compute asks the
/// routing policy for HedgeAdvice (runner-up backend + the chosen
/// backend's predicted p95 compute time). If the primary's compute is
/// still running past that prediction, a monitor thread submits the
/// runner-up plan for the *same query index* and the caller's future is
/// fulfilled by whichever side finishes first; the loser is cancelled if
/// still queued, or its result discarded if it computed (the plan-keyed
/// cache guarantees the two plans can never collide). Either way the
/// result is bit-identical to directly invoking the winning backend at
/// that index — hedging changes tail latency, never answers.
///
/// Hedging needs a policy that can predict (LearnedRouter once trained);
/// under RuleBasedRouter Advise() declines and hedging is inert. Only
/// routed ("auto") cache-miss computes hedge: pinned plans expressed an
/// explicit backend choice, and hits/coalesced waits never compute.
struct HedgeOptions {
  bool enabled = false;
  /// Floor under the model's p95 prediction: never fire a hedge before
  /// this much elapsed compute, however optimistic the model — guards
  /// against a degenerate fit turning every query into two.
  uint32_t min_trigger_us = 200;
  /// Bound on concurrently armed (registered, not yet fired or settled)
  /// hedges; beyond it new computes simply run unhedged.
  size_t max_pending = 256;
};

/// Serving configuration.
struct ServiceOptions {
  /// Worker threads; 0 uses all hardware threads.
  uint32_t num_workers = 0;
  /// Admission control: Submit() fails fast with QueryStatus::kRejected
  /// once this many requests are waiting across all submission shards
  /// (0 rejects everything — useful to drain a service without stopping
  /// it).
  size_t max_queue_depth = 1024;
  /// Micro-batch: requests drained per worker wakeup (and the cap on one
  /// steal). Larger batches amortize lock/wakeup costs under load at a
  /// small latency cost.
  uint32_t max_batch = 8;
  /// Completed estimates retained across queries; 0 disables the cache.
  size_t cache_capacity = 4096;
  uint32_t cache_shards = 8;
  /// The default backend requests get when they don't override it — any
  /// EstimatorRegistry name (default "tea+"), or kAutoBackend ("auto") to
  /// route every unpinned request through the routing policy. The resolved
  /// plan's stable backend id is folded into every cache key, so distinct
  /// backends never share a cache entry. `backend.context` also supplies
  /// the shared tuning every lazily built plan estimator reads.
  BackendSpec backend;
  /// Routing policy consulted for "auto" plans; null uses DefaultRouter()
  /// (the rule-based policy). Must outlive the service when set.
  std::shared_ptr<const RoutingPolicy> router;
  /// Tail-latency hedging (see HedgeOptions). Off by default; inert
  /// unless the routing policy can Advise() (LearnedRouter).
  HedgeOptions hedge;
  /// Stage tracing, per-backend dimensioned metrics and the routing
  /// event log (service/telemetry.h). Enabled by default; disabling
  /// degrades Stats() to the flat single-histogram snapshot and costs
  /// nothing on the hot path.
  TelemetryOptions telemetry;
};

/// Terminal state of one submitted query.
enum class QueryStatus : uint8_t {
  kOk = 0,
  kRejected,   ///< refused at admission (queue full or service stopping)
  kCancelled,  ///< QueryHandle::Cancel() won the race with the worker
  kExpired,    ///< the deadline passed before a worker picked it up
  kUnknownGraph,  ///< the named graph is not in the GraphStore
                  ///< (MultiGraphService sharding; never set by a
                  ///< single-graph AsyncQueryService)
  kInvalidArgument,  ///< malformed request: plan overrides naming an
                     ///< unregistered backend or out-of-range parameters
                     ///< (any path), or — on the
                     ///< multi-graph path — seed >= NumNodes() of the
                     ///< resolved snapshot (a racy external input under
                     ///< hot-swap) or top-k with k == 0; reported instead
                     ///< of check-failing (the single-graph
                     ///< Submit()/SubmitTopK(), whose caller owns the
                     ///< graph, keep check-fail seed preconditions)
};

/// Printable name of a QueryStatus ("ok", "rejected", ...).
const char* QueryStatusName(QueryStatus status);

/// What the future resolves to.
struct QueryResult {
  QueryStatus status = QueryStatus::kRejected;
  /// The (possibly cached) estimate; set when status == kOk.
  std::shared_ptr<const SparseVector> estimate;
  /// Top-k ranking; filled for SubmitTopK() requests.
  std::vector<ScoredNode> top_k;
  /// The resolved plan's backend: the registry name (never "auto") and its
  /// stable id. How callers observe what a routed query actually ran —
  /// empty/0 for non-kOk outcomes.
  std::string backend;
  uint32_t backend_id = 0;
  /// True when `estimate` was served from the cache (hit or coalesced).
  bool from_cache = false;
  /// Submit-to-completion wall time; 0 for non-kOk outcomes.
  double latency_ms = 0.0;
  /// The version of the graph snapshot this estimate was computed on
  /// (0 for borrowed non-store graphs and for non-kOk outcomes). Under
  /// hot-swap this is always a version that was live at submission time.
  uint64_t graph_version = 0;
};

/// Caller-side handle: the future plus a cancellation flag. Cancel() is
/// advisory — it wins only if the request is still queued.
class QueryHandle {
 public:
  std::future<QueryResult> result;

  void Cancel() {
    if (cancel_) cancel_->store(true, std::memory_order_relaxed);
  }

 private:
  friend class AsyncQueryService;
  std::shared_ptr<std::atomic<bool>> cancel_;
};

/// Per-request submission options.
struct SubmitOptions {
  /// Relative deadline; the zero duration (default) means none. A request
  /// whose deadline has passed when a worker dequeues it completes with
  /// kExpired without being computed.
  std::chrono::steady_clock::duration timeout{};
  /// Per-request plan overrides: an explicit backend ("auto" to route
  /// adaptively) and/or t / eps_r / delta overrides composed onto the
  /// service defaults. A request naming an unregistered backend or
  /// out-of-range parameters (see ServableParams) completes immediately
  /// with kInvalidArgument.
  PlanOverrides plan;
};

/// The async serving frontend. All public methods are thread-safe; the
/// destructor stops admission, drains the queue and joins the workers.
class AsyncQueryService {
 public:
  /// Serves queries on one immutable graph snapshot (see GraphStore). The
  /// service co-owns the graph through the snapshot, so a store-side
  /// Publish()/Remove() can never free memory under in-flight queries;
  /// the snapshot's version is folded into every cache key and stamped on
  /// every result.
  AsyncQueryService(GraphSnapshot snapshot, const ApproxParams& params,
                    uint64_t seed, const ServiceOptions& options = {});

  /// Legacy single-graph entry point: borrows `graph` (which must outlive
  /// the service) as a non-owning version-0 snapshot.
  AsyncQueryService(const Graph& graph, const ApproxParams& params,
                    uint64_t seed, const ServiceOptions& options = {});
  ~AsyncQueryService();

  /// Stops admission, drains the queue, and joins the workers. Idempotent
  /// and thread-safe; every queued request's future resolves before this
  /// returns. Submit() after Shutdown() completes with kRejected. The
  /// destructor calls this — an explicit call makes "graceful drain"
  /// observable (e.g. before folding final stats on graph removal).
  void Shutdown();

  AsyncQueryService(const AsyncQueryService&) = delete;
  AsyncQueryService& operator=(const AsyncQueryService&) = delete;

  /// Enqueues a full-vector HKPR query for `seed`.
  QueryHandle Submit(NodeId seed, const SubmitOptions& submit = {});

  /// Enqueues a top-k proximity query for `seed`. The result's `top_k` is
  /// TopKNormalized of the estimate; the estimate itself is also attached.
  QueryHandle SubmitTopK(NodeId seed, size_t k,
                         const SubmitOptions& submit = {});

  /// Like Submit()/SubmitTopK(), but returns nullopt instead of a
  /// kRejected handle when the service has already been shut down — the
  /// signal a routing layer (MultiGraphService) uses to re-resolve and
  /// retry on the replacement service after a hot-swap/drop, without
  /// holding its registry lock across the enqueue. Queue-full rejections
  /// still resolve kRejected (that is admission control, not staleness).
  std::optional<QueryHandle> TrySubmit(NodeId seed,
                                       const SubmitOptions& submit = {});
  std::optional<QueryHandle> TrySubmitTopK(NodeId seed, size_t k,
                                           const SubmitOptions& submit = {});

  /// Drops every cached estimate and bumps the cache version (call after
  /// swapping/mutating the graph the estimates were computed on). No-op
  /// when the cache is disabled.
  void InvalidateCache();

  /// Switches the default backend — any registered name, or "auto" to
  /// route every unpinned request — as a pure config update: no drain, no
  /// worker rebuild. In-flight and already-queued requests keep the plan
  /// they were submitted with; requests submitted after this returns
  /// resolve against the new default. Returns false (and changes nothing)
  /// for unknown names. Cache entries need no invalidation: keys embed the
  /// full plan, so the old default's entries simply stop matching new
  /// default-plan requests (and still serve explicit requests for that
  /// backend).
  bool SetDefaultBackend(std::string_view backend);

  /// Replaces the default ApproxParams, with the same no-drain semantics
  /// as SetDefaultBackend. p_f changes take effect for newly built plan
  /// estimators (p'_f is re-derived per distinct p_f). Check-fails on
  /// out-of-range params (see ServableParams) — external callers
  /// (MultiGraphService::SetGraphDefaults) validate and refuse first.
  void SetDefaultParams(const ApproxParams& params);

  /// The current default backend name — a registry name or "auto".
  std::string default_backend() const;
  /// The current default parameters.
  ApproxParams default_params() const;
  /// The routing policy "auto" plans resolve through.
  const RoutingPolicy& router() const { return *router_; }

  /// Counter snapshot including the current queue depth; with stage
  /// tracing on (the default) the per-stage queue-wait/cache/compute
  /// breakdown rides along (stage_tracing, queue_wait, cache_lookup,
  /// compute, traced_total_us).
  ServiceStatsSnapshot Stats() const;

  /// Per-backend dimensioned metrics + routing-log health counters.
  /// `enabled` is false (and the rows empty) when tracing is off.
  TelemetrySnapshot Telemetry() const;

  /// Consumes the routing event log: one RoutingEvent per completed
  /// query since the previous drain (oldest overwritten once the ring
  /// laps an un-drained reader; see TelemetryOptions). Empty when
  /// tracing or the log is disabled.
  std::vector<RoutingEvent> DrainRoutingEvents();

  /// True when this service stamps stage traces and routing events.
  bool tracing_enabled() const { return telemetry_.enabled(); }

  size_t queue_depth() const;
  uint32_t num_workers() const {
    return static_cast<uint32_t>(workers_.size());
  }
  /// The *construction-time* default backend's algorithm name ("TEA+",
  /// "HK-Relax", ...); per-result backends live on QueryResult::backend.
  std::string_view backend_name() const {
    return executors_.front()->backend_name();
  }
  /// The construction-time default backend's stable id.
  uint32_t backend_id() const { return backend_id_; }
  /// Accepted queries so far (== the next query's RNG index).
  uint64_t queries_accepted() const;
  /// The graph snapshot this service answers on (fixed for its lifetime).
  const Graph& graph() const { return *snapshot_.graph; }
  /// The snapshot's store version (0 for borrowed non-store graphs).
  uint64_t graph_version() const { return snapshot_.version; }
  /// True once Shutdown() has begun: admission is closed for good. A
  /// routing layer treats a stopped-but-installed service as stale and
  /// rebuilds instead of retrying into it. Lock-free, so resolve paths
  /// holding their own locks never stall behind this service's mutex.
  bool stopped() const { return stopping_.load(std::memory_order_acquire); }

 private:
  /// Arbitration state shared between a hedged primary request and its
  /// runner-up. The caller's promise moves in here when the hedge is
  /// registered; whichever side wins the `claimed` CAS fulfills it, and
  /// the loser's Fulfill returns without touching stats or telemetry (a
  /// query completes exactly once). `hedge_cancelled` doubles as the
  /// hedge request's cancel flag: the primary sets it on winning, so a
  /// still-queued hedge is dropped without computing.
  struct HedgeState {
    std::atomic<bool> claimed{false};
    /// Set by the monitor just before the runner-up is enqueued; read
    /// into the winning RoutingEvent's `hedged` stamp.
    std::atomic<bool> fired{false};
    std::promise<QueryResult> promise;
    std::shared_ptr<std::atomic<bool>> hedge_cancelled;
  };

  struct Request {
    NodeId seed = 0;
    size_t k = 0;  // 0 = full-vector query
    uint64_t query_index = 0;
    std::chrono::steady_clock::time_point submit_time;
    std::chrono::steady_clock::time_point deadline;  // max() = none
    std::shared_ptr<std::atomic<bool>> cancelled;
    std::promise<QueryResult> promise;
    /// The fully resolved plan, fixed at submission time: a later default
    /// switch never retroactively changes what a queued request runs.
    QueryPlan plan;
    ResultCacheKey key;
    /// Stage timestamps (only stamped when tracing is enabled) plus the
    /// routing-event facts known at submission: whether the plan came
    /// from the RoutingPolicy ("auto") and, later, how the cache treated
    /// the query.
    QueryTrace trace;
    bool routed = false;
    CacheOutcome cache_outcome = CacheOutcome::kNone;
    /// Non-null once this request entered hedged arbitration; the
    /// caller's promise then lives in the state, not in `promise`.
    std::shared_ptr<HedgeState> hedge;
    /// True for the monitor-submitted runner-up side (its `promise` is a
    /// dummy and it skips the submission/cancel/expire counters).
    bool is_hedge = false;
  };

  /// One armed hedge awaiting its trigger on the monitor's board.
  struct PendingHedge {
    std::chrono::steady_clock::time_point fire_at;
    NodeId seed = 0;
    size_t k = 0;
    uint64_t query_index = 0;
    std::chrono::steady_clock::time_point submit_time;
    std::chrono::steady_clock::time_point deadline;
    QueryPlan plan;  ///< the runner-up backend, primary's params
    std::shared_ptr<HedgeState> state;
  };

  /// The service's mutable serving defaults, read on every submission and
  /// replaced wholesale by the Set* config updates (under config_mu_).
  struct PlanDefaults {
    std::string backend;  // registry name or kAutoBackend
    ApproxParams params;
    /// Pre-resolved plan for the fast path; valid when backend != "auto".
    QueryPlan plan;
  };

  /// A request parked on another worker's in-flight computation (resolved
  /// after the rest of the micro-batch, so one hot-key wait never delays
  /// unrelated drained requests).
  struct Deferred {
    Request request;
    std::shared_future<CachedEstimate> pending;
  };

  /// One per-worker submission shard. Cache-line aligned so two shards'
  /// hot state never false-shares.
  struct alignas(64) Shard {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Request> queue;
  };

  /// Shared enqueue; `stale_if_stopping` selects the TrySubmit contract
  /// (nullopt once shut down) over the kRejected handle.
  std::optional<QueryHandle> Enqueue(NodeId seed, size_t k,
                                     const SubmitOptions& submit,
                                     bool stale_if_stopping);
  void WorkerLoop(uint32_t worker_id);
  /// Moves up to min(max_batch, half) waiting requests from the *front* of
  /// the first non-empty victim shard into `batch` (oldest first, so
  /// stealing preserves rough service order and leaves the victim the
  /// newer half). Returns the number taken; the caller settles pending_
  /// and the stolen counter.
  size_t StealInto(uint32_t thief, std::vector<Request>& batch,
                   uint32_t max_batch);
  void Process(QueryExecutor& executor, Request& request,
               std::vector<Deferred>& deferred);
  void Fulfill(Request& request, CachedEstimate estimate, bool from_cache);
  /// Arms a hedge for a routed request about to compute: asks the policy
  /// for advice, moves the caller's promise into a HedgeState and posts
  /// the runner-up plan on the monitor's board. No-op (and the request
  /// stays un-hedged) when hedging is off, the policy declines, the
  /// board is full, or the service is stopping.
  void MaybeRegisterHedge(Request& request);
  /// Monitor-side: turns a due board entry into a runner-up Request and
  /// enqueues it (same query index — bit-identical to a direct
  /// invocation of that backend). Skipped when the primary already
  /// settled, admission is full, or the service is stopping.
  void FireHedge(PendingHedge&& entry);
  void HedgeMonitorLoop();
  /// Builds the RoutingEvent for a completed traced request (stage
  /// offsets from the stamped trace, monotone by construction) and
  /// records it into telemetry_. Only called when tracing is enabled.
  void RecordTrace(Request& request,
                   std::chrono::steady_clock::time_point complete);
  SparseVector Compute(QueryExecutor& executor, const Request& request);
  ResultCacheKey MakeKey(const QueryPlan& plan, NodeId seed) const;
  PlanDefaults GetDefaults() const;

  GraphSnapshot snapshot_;
  ApproxParams params_;
  ServiceOptions options_;
  /// Snapshot-level routing features (n, m, average degree), computed once
  /// at construction — the graph is immutable for the service's lifetime —
  /// instead of being re-derived on every submission.
  GraphScaleFeatures scale_features_;
  uint32_t backend_id_ = 0;
  const RoutingPolicy* router_ = nullptr;
  std::shared_ptr<const RoutingPolicy> router_owner_;  // keeps options.router
  std::unique_ptr<ResultCache> cache_;  // null when disabled
  ServiceStats stats_;
  /// Stage histograms, per-backend dims and the routing event log; inert
  /// (no clock stamps, no recording) when options.telemetry disables it.
  ServiceTelemetry telemetry_;

  /// Guards the serving defaults only (never held with mu_): submissions
  /// read a copy, config updates replace it — neither path touches the
  /// queue lock, so a backend switch cannot stall workers and vice versa.
  mutable std::mutex config_mu_;
  PlanDefaults defaults_;

  /// One backend executor (estimator + workspace) per worker thread.
  std::vector<std::unique_ptr<QueryExecutor>> executors_;
  std::vector<std::thread> workers_;

  /// One submission shard per worker thread (same index). Submissions are
  /// spread round-robin via next_shard_; see the header comment for the
  /// stealing discipline.
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Armed hedges awaiting their trigger; the monitor thread fires due
  /// entries and discards ones whose primary already settled. Guarded by
  /// hedge_mu_; the thread only exists when options.hedge.enabled.
  std::mutex hedge_mu_;
  std::condition_variable hedge_cv_;
  std::vector<PendingHedge> hedge_board_;
  /// When the monitor's current wait expires (max() while parked on an
  /// empty board). Guarded by hedge_mu_; registrations only notify when
  /// their trigger lands before this, so the common fast-compute path
  /// never pays a wakeup context switch.
  std::chrono::steady_clock::time_point hedge_wakeup_at_ =
      std::chrono::steady_clock::time_point::max();
  std::thread hedge_monitor_;
  /// Admitted-and-waiting requests across all shards: the exact
  /// admission-control count (claimed with fetch_add before the shard
  /// push, released when a worker drains or a raced shutdown rejects) and
  /// the queue-depth gauge.
  std::atomic<size_t> pending_{0};
  /// Round-robin shard cursor for submissions.
  std::atomic<uint64_t> next_shard_{0};
  /// The next accepted query's deterministic RNG index, claimed in
  /// admission order.
  std::atomic<uint64_t> next_query_index_{0};
  /// Set once by Shutdown() (seq_cst, paired with a per-shard lock fence):
  /// a submitter that already passed admission either lands its request in
  /// a shard before the drain, or observes stopping_ under the shard lock
  /// and rejects inline — no future is ever stranded.
  std::atomic<bool> stopping_{false};
  std::once_flag shutdown_once_;
};

}  // namespace hkpr

#endif  // HKPR_SERVICE_ASYNC_QUERY_SERVICE_H_
