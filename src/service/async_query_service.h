// Asynchronous HKPR serving frontend.
//
// AsyncQueryService turns the synchronous query-engine building blocks
// (per-thread backend QueryExecutors, reusable workspaces — see
// hkpr/queries.h) into a service: callers Submit() single-seed or top-k
// queries into a bounded MPMC submission queue and get std::future-based
// handles back; dedicated worker threads drain the queue in micro-batches
// of up to `max_batch` requests per wakeup (so a loaded service amortizes
// wakeups the same way the static-shard batch path amortizes dispatch) and
// answer each request on their private executor. The estimator the workers
// run is any backend registered in the EstimatorRegistry (hkpr/backend.h),
// selected by name via ServiceOptions::backend.
//
// In front of the workers sits a sharded single-flight ResultCache: repeat
// queries for a hot (seed, params) pair are served from the cache without
// recomputing, and concurrent requests for the same cold key wait on one
// in-flight computation. ServiceStats counts every stage; Stats() returns
// a snapshot with p50/p95/p99 latencies.
//
// The service answers on one immutable GraphSnapshot (service/graph_store.h)
// which it co-owns for its whole lifetime: hot-swapping a graph means
// standing up a new service on the new snapshot (MultiGraphService does
// exactly that) while this one drains and finishes its in-flight queries
// on the old graph. The snapshot's version is folded into every cache key
// and stamped on every result, so estimates computed on a replaced
// snapshot can never serve post-swap lookups.
//
// Determinism: every accepted request is assigned a global query index at
// submission time, and the computation for index i draws its randomness
// from QueryRngSeed(engine seed, i) — exactly the derivation
// BatchQueryEngine uses. A cold service (or one with the cache disabled)
// therefore returns bit-identical estimates to BatchQueryEngine for the
// same (backend, seed sequence, params, engine seed), regardless of how
// many workers race over the queue. With the cache enabled, a repeat of an
// *already answered* key returns the original computation's value instead
// of drawing fresh randomness — that is the point of the cache.

#ifndef HKPR_SERVICE_ASYNC_QUERY_SERVICE_H_
#define HKPR_SERVICE_ASYNC_QUERY_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/sparse_vector.h"
#include "graph/graph.h"
#include "hkpr/backend.h"
#include "hkpr/params.h"
#include "hkpr/queries.h"
#include "service/graph_store.h"
#include "service/result_cache.h"
#include "service/service_stats.h"

namespace hkpr {

/// Serving configuration.
struct ServiceOptions {
  /// Worker threads; 0 uses all hardware threads.
  uint32_t num_workers = 0;
  /// Admission control: Submit() fails fast with QueryStatus::kRejected
  /// once this many requests are waiting (0 rejects everything — useful to
  /// drain a service without stopping it).
  size_t max_queue_depth = 1024;
  /// Micro-batch: requests drained per worker wakeup. Larger batches
  /// amortize lock/wakeup costs under load at a small latency cost.
  uint32_t max_batch = 8;
  /// Completed estimates retained across queries; 0 disables the cache.
  size_t cache_capacity = 4096;
  uint32_t cache_shards = 8;
  /// Which estimator backend the workers run — any EstimatorRegistry name
  /// (default "tea+"). The registry's stable backend id is folded into
  /// every cache key, so distinct backends never share a cache entry.
  BackendSpec backend;
};

/// Terminal state of one submitted query.
enum class QueryStatus : uint8_t {
  kOk = 0,
  kRejected,   ///< refused at admission (queue full or service stopping)
  kCancelled,  ///< QueryHandle::Cancel() won the race with the worker
  kExpired,    ///< the deadline passed before a worker picked it up
  kUnknownGraph,  ///< the named graph is not in the GraphStore
                  ///< (MultiGraphService sharding; never set by a
                  ///< single-graph AsyncQueryService)
  kInvalidArgument,  ///< malformed request on the multi-graph path: seed
                     ///< >= NumNodes() of the resolved snapshot (a racy
                     ///< external input under hot-swap) or top-k with
                     ///< k == 0 — reported instead of check-failing (the
                     ///< single-graph Submit()/SubmitTopK(), whose caller
                     ///< owns the graph, keep check-fail preconditions)
};

/// Printable name of a QueryStatus ("ok", "rejected", ...).
const char* QueryStatusName(QueryStatus status);

/// What the future resolves to.
struct QueryResult {
  QueryStatus status = QueryStatus::kRejected;
  /// The (possibly cached) estimate; set when status == kOk.
  std::shared_ptr<const SparseVector> estimate;
  /// Top-k ranking; filled for SubmitTopK() requests.
  std::vector<ScoredNode> top_k;
  /// True when `estimate` was served from the cache (hit or coalesced).
  bool from_cache = false;
  /// Submit-to-completion wall time; 0 for non-kOk outcomes.
  double latency_ms = 0.0;
  /// The version of the graph snapshot this estimate was computed on
  /// (0 for borrowed non-store graphs and for non-kOk outcomes). Under
  /// hot-swap this is always a version that was live at submission time.
  uint64_t graph_version = 0;
};

/// Caller-side handle: the future plus a cancellation flag. Cancel() is
/// advisory — it wins only if the request is still queued.
class QueryHandle {
 public:
  std::future<QueryResult> result;

  void Cancel() {
    if (cancel_) cancel_->store(true, std::memory_order_relaxed);
  }

 private:
  friend class AsyncQueryService;
  std::shared_ptr<std::atomic<bool>> cancel_;
};

/// Per-request submission options.
struct SubmitOptions {
  /// Relative deadline; the zero duration (default) means none. A request
  /// whose deadline has passed when a worker dequeues it completes with
  /// kExpired without being computed.
  std::chrono::steady_clock::duration timeout{};
};

/// The async serving frontend. All public methods are thread-safe; the
/// destructor stops admission, drains the queue and joins the workers.
class AsyncQueryService {
 public:
  /// Serves queries on one immutable graph snapshot (see GraphStore). The
  /// service co-owns the graph through the snapshot, so a store-side
  /// Publish()/Remove() can never free memory under in-flight queries;
  /// the snapshot's version is folded into every cache key and stamped on
  /// every result.
  AsyncQueryService(GraphSnapshot snapshot, const ApproxParams& params,
                    uint64_t seed, const ServiceOptions& options = {});

  /// Legacy single-graph entry point: borrows `graph` (which must outlive
  /// the service) as a non-owning version-0 snapshot.
  AsyncQueryService(const Graph& graph, const ApproxParams& params,
                    uint64_t seed, const ServiceOptions& options = {});
  ~AsyncQueryService();

  /// Stops admission, drains the queue, and joins the workers. Idempotent
  /// and thread-safe; every queued request's future resolves before this
  /// returns. Submit() after Shutdown() completes with kRejected. The
  /// destructor calls this — an explicit call makes "graceful drain"
  /// observable (e.g. before folding final stats on graph removal).
  void Shutdown();

  AsyncQueryService(const AsyncQueryService&) = delete;
  AsyncQueryService& operator=(const AsyncQueryService&) = delete;

  /// Enqueues a full-vector HKPR query for `seed`.
  QueryHandle Submit(NodeId seed, const SubmitOptions& submit = {});

  /// Enqueues a top-k proximity query for `seed`. The result's `top_k` is
  /// TopKNormalized of the estimate; the estimate itself is also attached.
  QueryHandle SubmitTopK(NodeId seed, size_t k,
                         const SubmitOptions& submit = {});

  /// Like Submit()/SubmitTopK(), but returns nullopt instead of a
  /// kRejected handle when the service has already been shut down — the
  /// signal a routing layer (MultiGraphService) uses to re-resolve and
  /// retry on the replacement service after a hot-swap/drop, without
  /// holding its registry lock across the enqueue. Queue-full rejections
  /// still resolve kRejected (that is admission control, not staleness).
  std::optional<QueryHandle> TrySubmit(NodeId seed,
                                       const SubmitOptions& submit = {});
  std::optional<QueryHandle> TrySubmitTopK(NodeId seed, size_t k,
                                           const SubmitOptions& submit = {});

  /// Drops every cached estimate and bumps the cache version (call after
  /// swapping/mutating the graph the estimates were computed on). No-op
  /// when the cache is disabled.
  void InvalidateCache();

  /// Counter snapshot including the current queue depth.
  ServiceStatsSnapshot Stats() const;

  size_t queue_depth() const;
  uint32_t num_workers() const {
    return static_cast<uint32_t>(workers_.size());
  }
  /// The backend's algorithm name ("TEA+", "HK-Relax", ...).
  std::string_view backend_name() const {
    return executors_.front()->backend_name();
  }
  /// The registry's stable id of the serving backend (cache-key material).
  uint32_t backend_id() const { return backend_id_; }
  /// Accepted queries so far (== the next query's RNG index).
  uint64_t queries_accepted() const;
  /// The graph snapshot this service answers on (fixed for its lifetime).
  const Graph& graph() const { return *snapshot_.graph; }
  /// The snapshot's store version (0 for borrowed non-store graphs).
  uint64_t graph_version() const { return snapshot_.version; }
  /// True once Shutdown() has begun: admission is closed for good. A
  /// routing layer treats a stopped-but-installed service as stale and
  /// rebuilds instead of retrying into it. Lock-free, so resolve paths
  /// holding their own locks never stall behind this service's mutex.
  bool stopped() const { return stopping_.load(std::memory_order_acquire); }

 private:
  struct Request {
    NodeId seed = 0;
    size_t k = 0;  // 0 = full-vector query
    uint64_t query_index = 0;
    std::chrono::steady_clock::time_point submit_time;
    std::chrono::steady_clock::time_point deadline;  // max() = none
    std::shared_ptr<std::atomic<bool>> cancelled;
    std::promise<QueryResult> promise;
    ResultCacheKey key;
  };

  /// A request parked on another worker's in-flight computation (resolved
  /// after the rest of the micro-batch, so one hot-key wait never delays
  /// unrelated drained requests).
  struct Deferred {
    Request request;
    std::shared_future<CachedEstimate> pending;
  };

  /// Shared enqueue; `stale_if_stopping` selects the TrySubmit contract
  /// (nullopt once shut down) over the kRejected handle.
  std::optional<QueryHandle> Enqueue(NodeId seed, size_t k,
                                     const SubmitOptions& submit,
                                     bool stale_if_stopping);
  void WorkerLoop(uint32_t worker_id);
  void Process(QueryExecutor& executor, Request& request,
               std::vector<Deferred>& deferred);
  void Fulfill(Request& request, CachedEstimate estimate, bool from_cache);
  SparseVector Compute(QueryExecutor& executor, const Request& request);
  ResultCacheKey MakeKey(NodeId seed) const;

  GraphSnapshot snapshot_;
  ApproxParams params_;
  ServiceOptions options_;
  uint32_t backend_id_ = 0;
  std::unique_ptr<ResultCache> cache_;  // null when disabled
  ServiceStats stats_;

  /// One backend executor (estimator + workspace) per worker thread.
  std::vector<std::unique_ptr<QueryExecutor>> executors_;
  std::vector<std::thread> workers_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;
  std::deque<Request> queue_;
  uint64_t next_query_index_ = 0;
  /// Atomic so stopped() reads it without mu_; always *written* under mu_
  /// (before the CV notify), so workers parked on queue_cv_ cannot miss
  /// the transition.
  std::atomic<bool> stopping_{false};
  std::once_flag shutdown_once_;
};

}  // namespace hkpr

#endif  // HKPR_SERVICE_ASYNC_QUERY_SERVICE_H_
