#include "service/graph_store.h"

#include <mutex>
#include <utility>

namespace hkpr {

namespace {

/// Installs `versioned` into `slot` unless the slot already holds a newer
/// version: a racing publish that drew a smaller version must not clobber
/// a snapshot readers may already have seen (only-move-forward CAS).
template <typename Slot, typename VersionedPtr>
void InstallIfNewer(Slot& slot, const VersionedPtr& versioned) {
  VersionedPtr current = slot.current.load();
  while (current == nullptr || current->version < versioned->version) {
    if (slot.current.compare_exchange_weak(current, versioned)) break;
  }
}

}  // namespace

uint64_t GraphStore::Publish(std::string_view name, Graph graph) {
  const uint64_t version =
      next_version_.fetch_add(1, std::memory_order_acq_rel);
  auto versioned = std::make_shared<const Versioned>(
      Versioned{std::move(graph), version});

  // Fast path: the slot already exists — swap under the shared lock (the
  // exclusive lock is only for map-structure changes).
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = slots_.find(name);
    if (it != slots_.end()) {
      InstallIfNewer(*it->second, versioned);
      return version;
    }
  }

  std::unique_lock<std::shared_mutex> lock(mu_);
  auto [it, inserted] = slots_.try_emplace(std::string(name));
  if (inserted) it->second = std::make_unique<Slot>();
  InstallIfNewer(*it->second, versioned);
  return version;
}

GraphSnapshot GraphStore::Get(std::string_view name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = slots_.find(name);
  if (it == slots_.end()) return {};
  const std::shared_ptr<const Versioned> current = it->second->current.load();
  if (current == nullptr) return {};
  // Aliasing constructor: the snapshot points at the graph but owns the
  // whole Versioned block, so graph and version can never come apart.
  return {std::shared_ptr<const Graph>(current, &current->graph),
          current->version};
}

bool GraphStore::Remove(std::string_view name) {
  std::unique_ptr<Slot> removed;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    auto it = slots_.find(name);
    if (it == slots_.end()) return false;
    removed = std::move(it->second);
    slots_.erase(it);
  }
  // The slot (and possibly the last store reference to the graph) dies
  // here, outside the lock; outstanding snapshots keep the graph alive.
  return true;
}

bool GraphStore::Contains(std::string_view name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return slots_.find(name) != slots_.end();
}

std::vector<GraphInfo> GraphStore::List() const {
  std::vector<GraphInfo> result;
  std::shared_lock<std::shared_mutex> lock(mu_);
  result.reserve(slots_.size());
  for (const auto& [name, slot] : slots_) {
    const std::shared_ptr<const Versioned> current = slot->current.load();
    if (current == nullptr) continue;
    result.push_back(GraphInfo{name, current->version,
                               current->graph.NumNodes(),
                               current->graph.NumEdges()});
  }
  return result;
}

std::vector<std::string> GraphStore::Names() const {
  std::vector<std::string> result;
  std::shared_lock<std::shared_mutex> lock(mu_);
  result.reserve(slots_.size());
  for (const auto& [name, slot] : slots_) result.push_back(name);
  return result;
}

size_t GraphStore::Size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return slots_.size();
}

}  // namespace hkpr
