#include "service/async_query_service.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace hkpr {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsBetween(Clock::time_point begin, Clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

}  // namespace

const char* QueryStatusName(QueryStatus status) {
  switch (status) {
    case QueryStatus::kOk:
      return "ok";
    case QueryStatus::kRejected:
      return "rejected";
    case QueryStatus::kCancelled:
      return "cancelled";
    case QueryStatus::kExpired:
      return "expired";
    case QueryStatus::kUnknownGraph:
      return "unknown-graph";
    case QueryStatus::kInvalidArgument:
      return "invalid-argument";
  }
  return "invalid";
}

AsyncQueryService::AsyncQueryService(GraphSnapshot snapshot,
                                     const ApproxParams& params, uint64_t seed,
                                     const ServiceOptions& options)
    : snapshot_(std::move(snapshot)),
      params_(params),
      options_(options),
      telemetry_(options.telemetry) {
  HKPR_CHECK(snapshot_.graph != nullptr) << "service needs a graph snapshot";
  // Die at startup on out-of-range defaults, not on whichever request
  // happens to trigger plan resolution first (ResolveQueryPlan reports
  // rather than aborts, relying on this construction-time validation).
  HKPR_CHECK(ServableParams(params))
      << "service ApproxParams out of range (t in (0, 1000], eps_r in "
         "(0, 1), delta > 0, p_f in (0, 1))";
  const Graph& graph = *snapshot_.graph;
  // Snapshot-level routing features, computed once: the graph is immutable
  // for this service's lifetime, so every submission reuses them.
  scale_features_ = GraphScaleFeatures::Of(graph);
  uint32_t num_workers = options.num_workers;
  if (num_workers == 0) {
    num_workers = std::max(1u, std::thread::hardware_concurrency());
  }
  if (options.cache_capacity > 0) {
    cache_ = std::make_unique<ResultCache>(options.cache_capacity,
                                           options.cache_shards);
  }
  router_owner_ = options.router;
  router_ = router_owner_ ? router_owner_.get() : &DefaultRouter();

  // An "auto" default means every unpinned request is routed per query;
  // the executors still need a concrete backend for their eagerly built
  // default estimator — warm the router's usual winner.
  BackendSpec exec_spec = options.backend;
  if (exec_spec.name == kAutoBackend) exec_spec.name = "tea+";
  // Resolve shared precomputations once for all per-worker executors;
  // ResolvedSpec check-fails on unknown backend names, so a misconfigured
  // service dies loudly at construction. p'_f is resolved even for
  // deterministic defaults (one O(n) scan): a routed or overridden plan
  // may lazily build a randomized backend on any worker.
  BackendSpec spec = ResolvedSpec(exec_spec, graph, params);
  if (spec.context.pf_prime < 0.0) {
    spec.context.pf_prime = ComputePfPrime(graph, params.p_f);
  }
  CheckPoolUnsharedAcrossWorkers(spec, num_workers);
  executors_.reserve(num_workers);
  for (uint32_t w = 0; w < num_workers; ++w) {
    executors_.push_back(
        std::make_unique<QueryExecutor>(graph, params, seed, spec));
  }
  // The registry's collision-checked id (as resolved by the executors),
  // folded into every cache key.
  backend_id_ = executors_.front()->backend_id();

  defaults_.backend = options.backend.name;
  defaults_.params = params;
  if (defaults_.backend != kAutoBackend) {
    // Pre-resolve the fast path: unpinned requests reuse this plan
    // without consulting the registry per submission.
    defaults_.plan = executors_.front()->default_plan();
  }

  shards_.reserve(num_workers);
  for (uint32_t w = 0; w < num_workers; ++w) {
    shards_.push_back(std::make_unique<Shard>());
  }
  workers_.reserve(num_workers);
  for (uint32_t w = 0; w < num_workers; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
  if (options_.hedge.enabled) {
    hedge_monitor_ = std::thread([this] { HedgeMonitorLoop(); });
  }
}

bool AsyncQueryService::SetDefaultBackend(std::string_view backend) {
  QueryPlan plan;
  if (backend != kAutoBackend) {
    const BackendInfo* info = EstimatorRegistry::Global().Find(backend);
    if (info == nullptr) return false;
    plan.backend = std::string(backend);
    plan.backend_id = info->stable_id;
  }
  std::lock_guard<std::mutex> lock(config_mu_);
  defaults_.backend = std::string(backend);
  if (backend != kAutoBackend) {
    plan.params = defaults_.params;
    defaults_.plan = std::move(plan);
  }
  return true;
}

void AsyncQueryService::SetDefaultParams(const ApproxParams& params) {
  HKPR_CHECK(ServableParams(params))
      << "default ApproxParams out of range (t in (0, 1000], eps_r in "
         "(0, 1), delta > 0, p_f in (0, 1))";
  std::lock_guard<std::mutex> lock(config_mu_);
  defaults_.params = params;
  defaults_.plan.params = params;
}

std::string AsyncQueryService::default_backend() const {
  std::lock_guard<std::mutex> lock(config_mu_);
  return defaults_.backend;
}

ApproxParams AsyncQueryService::default_params() const {
  std::lock_guard<std::mutex> lock(config_mu_);
  return defaults_.params;
}

AsyncQueryService::PlanDefaults AsyncQueryService::GetDefaults() const {
  std::lock_guard<std::mutex> lock(config_mu_);
  return defaults_;
}

AsyncQueryService::AsyncQueryService(const Graph& graph,
                                     const ApproxParams& params, uint64_t seed,
                                     const ServiceOptions& options)
    : AsyncQueryService(GraphSnapshot::Borrowed(graph), params, seed,
                        options) {}

void AsyncQueryService::Shutdown() {
  std::call_once(shutdown_once_, [this] {
    stopping_.store(true);  // seq_cst, paired with Enqueue's in-lock check
    // The hedge monitor goes first: joining it before the worker drain
    // guarantees any hedge it fired landed while workers were still
    // running (so it drains like any request), and none fire after.
    // Board entries left behind are harmless — their primaries are still
    // queued or computing and fulfill through the shared state.
    if (hedge_monitor_.joinable()) {
      { std::lock_guard<std::mutex> lock(hedge_mu_); }
      hedge_cv_.notify_all();
      hedge_monitor_.join();
    }
    for (std::unique_ptr<Shard>& shard : shards_) {
      // Lock/unlock fence: any submitter that passed its in-lock stopping
      // check on this shard has already pushed (a worker will drain it);
      // any submitter arriving later observes stopping_ under the lock and
      // rejects inline. Notify under no lock is safe — workers recheck
      // their predicate under the shard lock, and the park has a timeout.
      { std::lock_guard<std::mutex> lock(shard->mu); }
      shard->cv.notify_all();
    }
    for (std::thread& worker : workers_) worker.join();
  });
}

AsyncQueryService::~AsyncQueryService() { Shutdown(); }

ResultCacheKey AsyncQueryService::MakeKey(const QueryPlan& plan,
                                          NodeId seed) const {
  ResultCacheKey key;
  // The snapshot version is fixed for this service's lifetime and the
  // cache version is bumped by InvalidateCache(), so within one cache the
  // sum is strictly monotone across invalidations — no two key epochs can
  // collide. Across hot-swaps the store's version alone separates epochs.
  key.graph_version =
      snapshot_.version + (cache_ ? cache_->version() : 0);
  key.seed = seed;
  // The *resolved plan* is the key: backend id plus every effective
  // parameter, so no two distinct plans can ever share an entry — and the
  // same plan reached via routing, override or default shares one.
  key.backend_id = plan.backend_id;
  key.t = plan.params.t;
  key.eps_r = plan.params.eps_r;
  key.delta = plan.params.delta;
  key.p_f = plan.params.p_f;
  return key;
}

std::optional<QueryHandle> AsyncQueryService::Enqueue(
    NodeId seed, size_t k, const SubmitOptions& submit,
    bool stale_if_stopping) {
  HKPR_CHECK(seed < snapshot_.graph->NumNodes()) << "query seed out of range";
  QueryHandle handle;
  handle.cancel_ = std::make_shared<std::atomic<bool>>(false);
  std::promise<QueryResult> promise;
  handle.result = promise.get_future();

  Request request;
  request.seed = seed;
  request.k = k;
  request.submit_time = Clock::now();
  request.deadline = submit.timeout == Clock::duration::zero()
                         ? Clock::time_point::max()
                         : request.submit_time + submit.timeout;
  request.cancelled = handle.cancel_;

  // Resolve the request into its plan now — a queued request is immune to
  // later default switches. Unpinned requests under a concrete default
  // take the pre-resolved plan; everything else (overrides, "auto")
  // resolves through the router/registry.
  const PlanDefaults defaults = GetDefaults();
  // The routing-event `routed` bit: true when the RoutingPolicy (not a
  // pinned default or an explicit override) picks the backend.
  request.routed = submit.plan.backend == kAutoBackend ||
                   (submit.plan.backend.empty() &&
                    defaults.backend == kAutoBackend);
  if (submit.plan.empty() && defaults.backend != kAutoBackend) {
    request.plan = defaults.plan;
  } else {
    std::optional<QueryPlan> plan =
        ResolveQueryPlan(*snapshot_.graph, seed, scale_features_,
                         defaults.backend, defaults.params, submit.plan,
                         *router_);
    if (!plan.has_value()) {
      // The request named an unregistered backend or out-of-range
      // parameter overrides: report, don't abort — and don't consume a
      // query index. Counted as invalid_plans, not rejected: this is
      // malformed input, not admission pressure.
      stats_.RecordSubmitted();
      stats_.RecordInvalidPlan();
      QueryResult result;
      result.status = QueryStatus::kInvalidArgument;
      promise.set_value(std::move(result));
      return handle;
    }
    request.plan = *std::move(plan);
  }
  request.key = MakeKey(request.plan, seed);
  if (telemetry_.enabled()) {
    request.trace.submit = request.submit_time;
    request.trace.plan_resolved = Clock::now();
  }

  if (stopping_.load()) {
    if (stale_if_stopping) return std::nullopt;
    stats_.RecordSubmitted();
    stats_.RecordRejected();
    promise.set_value(QueryResult{});  // kRejected
    return handle;
  }
  stats_.RecordSubmitted();
  // Exact global admission without any shared lock: claim a waiting slot;
  // undo and reject if the claim overshot the bound.
  if (pending_.fetch_add(1) >= options_.max_queue_depth) {
    pending_.fetch_sub(1);
    stats_.RecordRejected();
    promise.set_value(QueryResult{});  // kRejected
    return handle;
  }
  request.query_index = next_query_index_.fetch_add(1);
  request.promise = std::move(promise);

  Shard& shard = *shards_[next_shard_.fetch_add(1, std::memory_order_relaxed) %
                          shards_.size()];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (stopping_.load()) {
      // Shutdown began after the admission check; its drain may already
      // have passed this shard, so resolve the request here instead of
      // stranding the future in a dead queue.
      pending_.fetch_sub(1);
      stats_.RecordRejected();
      if (stale_if_stopping) return std::nullopt;
      request.promise.set_value(QueryResult{});  // kRejected
      return handle;
    }
    shard.queue.push_back(std::move(request));
  }
  shard.cv.notify_one();
  return handle;
}

QueryHandle AsyncQueryService::Submit(NodeId seed,
                                      const SubmitOptions& submit) {
  return *Enqueue(seed, 0, submit, /*stale_if_stopping=*/false);
}

QueryHandle AsyncQueryService::SubmitTopK(NodeId seed, size_t k,
                                          const SubmitOptions& submit) {
  HKPR_CHECK(k > 0) << "top-k query needs k >= 1";
  return *Enqueue(seed, k, submit, /*stale_if_stopping=*/false);
}

std::optional<QueryHandle> AsyncQueryService::TrySubmit(
    NodeId seed, const SubmitOptions& submit) {
  return Enqueue(seed, 0, submit, /*stale_if_stopping=*/true);
}

std::optional<QueryHandle> AsyncQueryService::TrySubmitTopK(
    NodeId seed, size_t k, const SubmitOptions& submit) {
  HKPR_CHECK(k > 0) << "top-k query needs k >= 1";
  return Enqueue(seed, k, submit, /*stale_if_stopping=*/true);
}

size_t AsyncQueryService::StealInto(uint32_t thief, std::vector<Request>& batch,
                                    uint32_t max_batch) {
  const size_t num_shards = shards_.size();
  for (size_t hop = 1; hop < num_shards; ++hop) {
    Shard& victim = *shards_[(thief + hop) % num_shards];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (victim.queue.empty()) continue;
    // Take the *older* half from the front: the thief serves the requests
    // that have waited longest, and the victim keeps the newer half (it
    // is presumably busy, or its own drain would have taken them).
    const size_t take =
        std::min<size_t>(max_batch, (victim.queue.size() + 1) / 2);
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(victim.queue.front()));
      victim.queue.pop_front();
    }
    return take;
  }
  return 0;
}

void AsyncQueryService::WorkerLoop(uint32_t worker_id) {
  QueryExecutor& executor = *executors_[worker_id];
  Shard& home = *shards_[worker_id];
  const uint32_t max_batch = std::max(1u, options_.max_batch);
  std::vector<Request> batch;
  std::vector<Deferred> deferred;
  batch.reserve(max_batch);
  for (;;) {
    batch.clear();
    deferred.clear();
    {
      // Opportunistic micro-batching: drain up to max_batch waiting
      // requests in one wakeup so a loaded worker answers them in a tight
      // loop on its warmed executor (the async analogue of the static
      // batch shard).
      std::lock_guard<std::mutex> lock(home.mu);
      const size_t take = std::min<size_t>(max_batch, home.queue.size());
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(home.queue.front()));
        home.queue.pop_front();
      }
    }
    if (batch.empty() && shards_.size() > 1) {
      const size_t stolen = StealInto(worker_id, batch, max_batch);
      if (stolen > 0) stats_.RecordStolen(stolen);
    }
    if (batch.empty()) {
      // stopping_ is set before the shutdown drain, and pending_ counts
      // every admitted-but-unprocessed request (including ones a raced
      // submitter has claimed but not yet pushed — those resolve under the
      // shard lock), so this exit condition cannot strand a future.
      if (stopping_.load() && pending_.load() == 0) return;
      std::unique_lock<std::mutex> lock(home.mu);
      // The timeout doubles as the steal-poll period: a worker whose own
      // shard stays empty re-scans the victims' shards even though only
      // its own cv is notified on their submissions.
      home.cv.wait_for(lock, std::chrono::milliseconds(1), [&] {
        return stopping_.load() || !home.queue.empty();
      });
      continue;
    }
    pending_.fetch_sub(batch.size());
    for (Request& request : batch) Process(executor, request, deferred);
    // Requests coalesced onto another worker's in-flight computation are
    // resolved last: the drained batch is this worker's private backlog,
    // so blocking on a leader mid-batch would stall unrelated requests
    // that no idle worker can steal back.
    for (Deferred& wait : deferred) {
      Fulfill(wait.request, wait.pending.get(), /*from_cache=*/true);
    }
  }
}

SparseVector AsyncQueryService::Compute(QueryExecutor& executor,
                                        const Request& request) {
  stats_.RecordComputed();
  // The executor re-seeds the plan's backend from (engine seed, query
  // index) — the exact BatchQueryEngine derivation — so the async and
  // batch paths are bit-identical per plan, and a routed plan is
  // bit-identical to directly invoking its chosen backend at the same
  // index. Deterministic backends ignore the re-seed and the index plays
  // no role.
  return executor.Answer(request.seed, request.query_index, request.plan);
}

void AsyncQueryService::Process(QueryExecutor& executor, Request& request,
                                std::vector<Deferred>& deferred) {
  const bool traced = telemetry_.enabled();
  if (traced) request.trace.dequeue = Clock::now();
  if (request.cancelled->load(std::memory_order_relaxed)) {
    // A cancelled hedge request means its primary already won the
    // arbitration: drop it silently — the query completed normally, so
    // neither the cancelled counter nor a promise should fire.
    if (request.is_hedge) return;
    QueryResult result;
    result.status = QueryStatus::kCancelled;
    stats_.RecordCancelled();
    request.promise.set_value(std::move(result));
    return;
  }
  if (request.deadline != Clock::time_point::max() &&
      Clock::now() >= request.deadline) {
    // An over-deadline hedge is just a backup that arrived too late;
    // the primary (which passed this check before computing) answers.
    if (request.is_hedge) return;
    QueryResult result;
    result.status = QueryStatus::kExpired;
    stats_.RecordExpired();
    request.promise.set_value(std::move(result));
    return;
  }

  CachedEstimate estimate;
  bool from_cache = false;
  if (cache_) {
    ResultCache::Lookup lookup = cache_->LookupOrStartCompute(request.key);
    if (traced) request.trace.cache_done = Clock::now();
    switch (lookup.outcome) {
      case ResultCache::Outcome::kHit:
        stats_.RecordCacheHit();
        request.cache_outcome = CacheOutcome::kHit;
        estimate = std::move(lookup.value);
        from_cache = true;
        break;
      case ResultCache::Outcome::kInFlight:
        // Single-flight: another worker is computing this key. Park the
        // request for resolution after the rest of the batch; the leader
        // never waits on this key, so the eventual get() cannot deadlock.
        stats_.RecordCoalesced();
        request.cache_outcome = CacheOutcome::kCoalesced;
        deferred.push_back(
            Deferred{std::move(request), std::move(lookup.pending)});
        return;
      case ResultCache::Outcome::kMiss:
        stats_.RecordCacheMiss();
        request.cache_outcome = CacheOutcome::kMiss;
        MaybeRegisterHedge(request);
        if (traced) request.trace.compute_begin = Clock::now();
        estimate = std::make_shared<const SparseVector>(
            Compute(executor, request));
        if (traced) request.trace.compute_end = Clock::now();
        cache_->Complete(request.key, lookup.leader, estimate);
        break;
    }
  } else {
    // No cache: the lookup stage is zero-width by definition.
    request.cache_outcome = CacheOutcome::kNone;
    MaybeRegisterHedge(request);
    if (traced) {
      request.trace.cache_done = request.trace.dequeue;
      request.trace.compute_begin = Clock::now();
    }
    estimate =
        std::make_shared<const SparseVector>(Compute(executor, request));
    if (traced) request.trace.compute_end = Clock::now();
  }
  Fulfill(request, std::move(estimate), from_cache);
}

void AsyncQueryService::MaybeRegisterHedge(Request& request) {
  if (!options_.hedge.enabled || request.is_hedge || !request.routed) return;
  // Only routed computes hedge: a pinned plan expressed an explicit
  // backend choice, and the policy could not predict its cost anyway.
  RoutingQuery query;
  query.seed = request.seed;
  query.seed_degree = snapshot_.graph->Degree(request.seed);
  query.num_nodes = scale_features_.num_nodes;
  query.num_edges = scale_features_.num_edges;
  query.avg_degree = scale_features_.avg_degree;
  query.params = request.plan.params;
  std::optional<HedgeAdvice> advice =
      router_->Advise(query, request.plan.backend_id);
  if (!advice.has_value() || advice->backend_id == request.plan.backend_id) {
    return;
  }
  const double p95_us = std::max<double>(
      static_cast<double>(options_.hedge.min_trigger_us),
      std::min(advice->primary_p95_us, 1e12));
  auto state = std::make_shared<HedgeState>();
  state->hedge_cancelled = std::make_shared<std::atomic<bool>>(false);
  PendingHedge entry;
  entry.fire_at =
      Clock::now() +
      std::chrono::microseconds(static_cast<int64_t>(p95_us));
  entry.seed = request.seed;
  entry.k = request.k;
  entry.query_index = request.query_index;
  entry.submit_time = request.submit_time;
  entry.deadline = request.deadline;
  entry.plan.backend = std::move(advice->backend);
  entry.plan.backend_id = advice->backend_id;
  entry.plan.params = request.plan.params;
  entry.state = state;
  bool wake_monitor = false;
  {
    std::lock_guard<std::mutex> lock(hedge_mu_);
    if (stopping_.load(std::memory_order_relaxed) ||
        hedge_board_.size() >= options_.hedge.max_pending) {
      return;  // run unhedged; the caller's promise stays on the request
    }
    // From here on the caller's future is settled through the state:
    // whichever side wins the claimed CAS fulfills it exactly once.
    state->promise = std::move(request.promise);
    request.hedge = state;
    wake_monitor = entry.fire_at < hedge_wakeup_at_;
    hedge_board_.push_back(std::move(entry));
  }
  // Waking the monitor on every registration would cost a context switch
  // per routed compute; it only needs a nudge when it is parked past this
  // entry's trigger (its own wakeup re-scans the board otherwise).
  if (wake_monitor) hedge_cv_.notify_one();
}

void AsyncQueryService::FireHedge(PendingHedge&& entry) {
  if (entry.state->claimed.load(std::memory_order_acquire)) return;
  if (stopping_.load()) return;
  // Hedges respect admission like any request — under overload the
  // backup work would only make the tail worse.
  if (pending_.fetch_add(1) >= options_.max_queue_depth) {
    pending_.fetch_sub(1);
    return;
  }
  Request request;
  request.seed = entry.seed;
  request.k = entry.k;
  // The SAME query index as the primary: the runner-up plan computes
  // exactly what a direct invocation of that backend at this index
  // would, so a hedge win is bit-identical to the un-hedged alternative.
  request.query_index = entry.query_index;
  request.submit_time = entry.submit_time;
  request.deadline = entry.deadline;
  request.cancelled = entry.state->hedge_cancelled;
  request.plan = std::move(entry.plan);
  request.key = MakeKey(request.plan, request.seed);
  request.routed = true;
  request.is_hedge = true;
  request.hedge = entry.state;
  if (telemetry_.enabled()) {
    request.trace.submit = entry.submit_time;
    request.trace.plan_resolved = Clock::now();
  }
  // `fired` before the enqueue: the winner's RoutingEvent (possibly the
  // primary, completing concurrently) stamps hedged=1 only when a
  // runner-up was actually submitted.
  entry.state->fired.store(true, std::memory_order_release);
  Shard& shard = *shards_[next_shard_.fetch_add(1, std::memory_order_relaxed) %
                          shards_.size()];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (stopping_.load()) {
      pending_.fetch_sub(1);
      return;
    }
    shard.queue.push_back(std::move(request));
  }
  shard.cv.notify_one();
  stats_.RecordHedged();
}

void AsyncQueryService::HedgeMonitorLoop() {
  std::unique_lock<std::mutex> lock(hedge_mu_);
  std::vector<PendingHedge> due;
  while (!stopping_.load()) {
    if (hedge_board_.empty()) {
      // Parked until a registration (or shutdown) notifies; the timeout
      // only bounds a lost-wakeup window.
      hedge_wakeup_at_ = Clock::time_point::max();
      hedge_cv_.wait_for(lock, std::chrono::milliseconds(50));
      continue;
    }
    const Clock::time_point now = Clock::now();
    Clock::time_point next_fire = Clock::time_point::max();
    due.clear();
    for (auto it = hedge_board_.begin(); it != hedge_board_.end();) {
      if (it->state->claimed.load(std::memory_order_acquire)) {
        // The primary settled before the trigger: never fires, and the
        // board stays bounded by live computes.
        it = hedge_board_.erase(it);
      } else if (it->fire_at <= now) {
        due.push_back(std::move(*it));
        it = hedge_board_.erase(it);
      } else {
        next_fire = std::min(next_fire, it->fire_at);
        ++it;
      }
    }
    if (!due.empty()) {
      lock.unlock();
      for (PendingHedge& entry : due) FireHedge(std::move(entry));
      lock.lock();
      continue;
    }
    hedge_wakeup_at_ = next_fire;
    hedge_cv_.wait_until(lock, next_fire);
  }
}

void AsyncQueryService::Fulfill(Request& request, CachedEstimate estimate,
                                bool from_cache) {
  if (request.hedge != nullptr &&
      request.hedge->claimed.exchange(true, std::memory_order_acq_rel)) {
    // Lost the arbitration: the other side already fulfilled the caller
    // (and recorded the completion), so this result is discarded whole —
    // no counters, no event, no promise. Its cache Complete (if any)
    // already happened and is harmless: plan-keyed entries can't collide.
    return;
  }
  QueryResult result;
  result.from_cache = from_cache;
  result.graph_version = snapshot_.version;
  result.backend = std::move(request.plan.backend);
  result.backend_id = request.plan.backend_id;
  if (request.k > 0) {
    result.top_k = TopKNormalized(*snapshot_.graph, *estimate, request.k);
  }
  result.estimate = std::move(estimate);
  result.status = QueryStatus::kOk;
  const Clock::time_point complete = Clock::now();
  const double latency_s = SecondsBetween(request.submit_time, complete);
  result.latency_ms = latency_s * 1000.0;
  if (request.hedge != nullptr) {
    if (request.is_hedge) {
      stats_.RecordHedgeWin();
    } else {
      // The primary won: cancel the runner-up so a still-queued hedge is
      // dropped without computing (one already computing finishes and
      // loses the CAS above).
      request.hedge->hedge_cancelled->store(true, std::memory_order_relaxed);
    }
  }
  stats_.RecordCompleted(latency_s);
  if (telemetry_.enabled()) RecordTrace(request, complete);
  std::promise<QueryResult>& promise =
      request.hedge != nullptr ? request.hedge->promise : request.promise;
  promise.set_value(std::move(result));
}

void AsyncQueryService::RecordTrace(Request& request,
                                    Clock::time_point complete) {
  QueryTrace& trace = request.trace;
  // Cache hits and coalesced waits never computed: their compute stage
  // is zero-width at the point the lookup settled, which keeps every
  // event's stage offsets monotone non-decreasing.
  if (trace.compute_begin == QueryTrace::Clock::time_point{}) {
    trace.compute_begin = trace.cache_done;
    trace.compute_end = trace.cache_done;
  }
  const auto offset_us = [&](QueryTrace::Clock::time_point t) -> uint64_t {
    if (t <= trace.submit) return 0;
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(t - trace.submit)
            .count());
  };
  RoutingEvent event;
  event.query_index = request.query_index;
  event.graph_version = snapshot_.version;
  event.seed = request.seed;
  event.seed_degree = snapshot_.graph->Degree(request.seed);
  event.num_nodes = scale_features_.num_nodes;
  event.num_edges = scale_features_.num_edges;
  event.avg_degree = scale_features_.avg_degree;
  event.params = request.plan.params;
  event.backend_id = request.plan.backend_id;
  event.routed = request.routed ? 1 : 0;
  event.cache = static_cast<uint8_t>(request.cache_outcome);
  // Hedge outcome, stamped on the *winning* side's event only (the
  // loser records nothing): hedged when a runner-up actually fired,
  // hedge_won when this completion IS the runner-up.
  if (request.hedge != nullptr &&
      request.hedge->fired.load(std::memory_order_acquire)) {
    event.hedged = 1;
  }
  event.hedge_won = request.is_hedge ? 1 : 0;
  event.plan_us = offset_us(trace.plan_resolved);
  event.dequeue_us = std::max(event.plan_us, offset_us(trace.dequeue));
  event.cache_us = std::max(event.dequeue_us, offset_us(trace.cache_done));
  event.compute_begin_us =
      std::max(event.cache_us, offset_us(trace.compute_begin));
  event.compute_end_us =
      std::max(event.compute_begin_us, offset_us(trace.compute_end));
  event.complete_us = std::max(event.compute_end_us, offset_us(complete));
  telemetry_.Record(event);
}

void AsyncQueryService::InvalidateCache() {
  if (cache_) cache_->Invalidate();
}

ServiceStatsSnapshot AsyncQueryService::Stats() const {
  ServiceStatsSnapshot snap = stats_.TakeSnapshot();
  snap.queue_depth = queue_depth();
  telemetry_.FillStages(snap);
  return snap;
}

TelemetrySnapshot AsyncQueryService::Telemetry() const {
  return telemetry_.Snapshot();
}

std::vector<RoutingEvent> AsyncQueryService::DrainRoutingEvents() {
  return telemetry_.DrainRoutingEvents();
}

size_t AsyncQueryService::queue_depth() const { return pending_.load(); }

uint64_t AsyncQueryService::queries_accepted() const {
  return next_query_index_.load();
}

}  // namespace hkpr
