#include "service/multi_graph_service.h"

#include <algorithm>
#include <thread>
#include <utility>

namespace hkpr {

MultiGraphService::MultiGraphService(GraphStore& store,
                                     const ApproxParams& params, uint64_t seed,
                                     const MultiGraphOptions& options)
    : store_(store), params_(params), seed_(seed), options_(options) {
  // Same fail-at-startup contract as AsyncQueryService: plan resolution
  // reports out-of-range params instead of aborting, so the defaults must
  // be validated before any request can reach it.
  HKPR_CHECK(ServableParams(params_))
      << "service ApproxParams out of range (t in (0, 1000], eps_r in "
         "(0, 1), delta > 0, p_f in (0, 1))";
  if (options_.router == RouterKind::kLearned &&
      options_.train_interval > std::chrono::milliseconds::zero()) {
    trainer_ = std::thread([this] {
      std::unique_lock<std::mutex> lock(trainer_mu_);
      while (!trainer_stop_) {
        trainer_cv_.wait_for(lock, options_.train_interval,
                             [this] { return trainer_stop_; });
        if (trainer_stop_) return;
        lock.unlock();
        TrainRouters();
        lock.lock();
      }
    });
  }
}

MultiGraphService::~MultiGraphService() {
  // Stop the trainer first: it drains event logs and touches routers,
  // both of which must not race the teardown below.
  if (trainer_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(trainer_mu_);
      trainer_stop_ = true;
    }
    trainer_cv_.notify_all();
    trainer_.join();
  }
  std::map<std::string, std::shared_ptr<AsyncQueryService>, std::less<>>
      services;
  {
    std::lock_guard<std::mutex> lock(mu_);
    services.swap(services_);
  }
  // Drain everything before the map releases its references so every
  // handed-out future resolves. No stats fold here: the accumulators die
  // with the object, so there is nothing left to read them.
  for (auto& [name, service] : services) service->Shutdown();
}

uint32_t MultiGraphService::resolved_worker_budget() const {
  if (options_.worker_budget != 0) return options_.worker_budget;
  return std::max(1u, std::thread::hardware_concurrency());
}

std::shared_ptr<LearnedRouter> MultiGraphService::LearnedRouterForLocked(
    std::string_view name) {
  auto it = routers_.find(name);
  if (it != routers_.end()) return it->second;
  auto router = std::make_shared<LearnedRouter>(options_.learned);
  routers_.emplace(std::string(name), router);
  return router;
}

std::shared_ptr<const LearnedRouter> MultiGraphService::LearnedRouterFor(
    std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = routers_.find(name);
  return it != routers_.end() ? it->second : nullptr;
}

std::shared_ptr<AsyncQueryService> MultiGraphService::BuildService(
    std::string_view name, GraphSnapshot snapshot) {
  ServiceOptions opts;
  {
    // The template's backend is mutable config (SetDefaultBackend); copy
    // it under the lock, build outside it.
    std::lock_guard<std::mutex> lock(mu_);
    opts = options_.service;
    if (options_.router == RouterKind::kLearned && opts.router == nullptr) {
      // The graph *name*'s learned router — shared by every hot-swap
      // incarnation, so training survives the swap and the scale-decay
      // in the cost model (not a reset) handles shape changes.
      opts.router = LearnedRouterForLocked(name);
    }
  }
  const uint32_t budget = resolved_worker_budget();
  const size_t graphs = std::max<size_t>(1, store_.Size());
  opts.num_workers =
      std::max<uint32_t>(1, static_cast<uint32_t>(budget / graphs));
  auto service = std::make_shared<AsyncQueryService>(std::move(snapshot),
                                                     params_, seed_, opts);
  // Apply the graph's plan defaults on every (re)build, so overrides
  // survive hot-swaps and lazy rebuilds. Re-applied again post-install
  // (see ApplyCurrentDefaults) to close the race with concurrent config
  // updates.
  ApplyCurrentDefaults(name, *service);
  return service;
}

void MultiGraphService::ApplyCurrentDefaults(std::string_view name,
                                             AsyncQueryService& service) {
  std::lock_guard<std::mutex> lock(mu_);
  ApplyDefaultsLocked(name, service);
}

void MultiGraphService::ApplyDefaultsLocked(std::string_view name,
                                            AsyncQueryService& service) {
  // Read AND apply under one hold of mu_, so an apply can never
  // interleave with a concurrent SetDefaultBackend/SetGraphDefaults and
  // revert its newer config: every path that touches a live service's
  // defaults holds mu_ across both the map read and the apply. The
  // applies are cheap config stores (the service's own config mutex) —
  // never drains or builds — and the lock order is uniformly
  // MultiGraphService::mu_ -> AsyncQueryService::config_mu_.
  PlanOverrides defaults;
  auto it = graph_defaults_.find(name);
  if (it != graph_defaults_.end()) defaults = it->second;
  const std::string& template_backend = options_.service.backend.name;
  // Validated at SetGraphDefaults/SetDefaultBackend time, so these always
  // resolve; both are idempotent no-drain config updates.
  service.SetDefaultBackend(defaults.backend.empty() ? template_backend
                                                     : defaults.backend);
  service.SetDefaultParams(ApplyParamOverrides(params_, defaults));
}

bool MultiGraphService::SetDefaultBackend(std::string_view backend) {
  if (backend != kAutoBackend &&
      !EstimatorRegistry::Global().Contains(backend)) {
    return false;
  }
  // Update the template and every live service under one hold of mu_
  // (see ApplyDefaultsLocked for why): racing config updates then
  // serialize cleanly — last writer wins for both the map and the
  // services. The per-service call is a cheap config store, no drain.
  std::lock_guard<std::mutex> lock(mu_);
  options_.service.backend.name = std::string(backend);
  // A service-wide switch means *every* graph: drop per-graph backend
  // pins (parameter overrides keep applying on top of the new backend).
  for (auto& [graph, defaults] : graph_defaults_) defaults.backend.clear();
  for (const auto& [graph, service] : services_) {
    service->SetDefaultBackend(backend);
  }
  return true;
}

bool MultiGraphService::SetGraphDefaults(std::string_view graph,
                                         const PlanOverrides& defaults) {
  if (!defaults.backend.empty() && defaults.backend != kAutoBackend &&
      !EstimatorRegistry::Global().Contains(defaults.backend)) {
    return false;
  }
  // Defaults come from external input on the server's `params` path:
  // out-of-range values are refused here, never allowed to check-fail a
  // lazily built estimator later.
  if (!ServableParams(ApplyParamOverrides(params_, defaults))) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (!store_.Contains(graph)) return false;
  graph_defaults_[std::string(graph)] = defaults;
  auto it = services_.find(graph);
  // Live config update, no drain, atomic with the map write (mu_ held
  // across both — see ApplyDefaultsLocked).
  if (it != services_.end()) ApplyDefaultsLocked(graph, *it->second);
  return true;
}

PlanOverrides MultiGraphService::GraphDefaults(std::string_view graph) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = graph_defaults_.find(graph);
  return it != graph_defaults_.end() ? it->second : PlanOverrides{};
}

std::string MultiGraphService::default_backend() const {
  std::lock_guard<std::mutex> lock(mu_);
  return options_.service.backend.name;
}

void MultiGraphService::RetireLocked(
    std::string_view name, std::shared_ptr<AsyncQueryService> service) {
  retiring_[std::string(name)].push_back(std::move(service));
}

void MultiGraphService::FinishRetire(
    std::string_view name,
    const std::shared_ptr<AsyncQueryService>& service) {
  // Drain outside mu_ (can take a while with a deep queue); the counters
  // are final once the workers have joined.
  service->Shutdown();
  const ServiceStatsSnapshot final_stats = service->Stats();
  const TelemetrySnapshot final_telemetry = service->Telemetry();
  std::vector<RoutingEvent> leftover = service->DrainRoutingEvents();
  std::lock_guard<std::mutex> lock(mu_);
  // Fold and unpark in one critical section, so a stats reader sees this
  // service's history in exactly one of `retiring_` / `retired_stats_`.
  AddSnapshotCounters(retired_stats_[std::string(name)], final_stats);
  TelemetrySnapshot& telemetry = retired_telemetry_[std::string(name)];
  MergeTelemetry(telemetry, final_telemetry);
  if (!leftover.empty()) {
    // Preserve the retired ring's un-drained events across the swap,
    // bounded by the same capacity the ring itself enforces.
    std::vector<RoutingEvent>& pending = pending_events_[std::string(name)];
    pending.insert(pending.end(), leftover.begin(), leftover.end());
    const size_t cap =
        std::max<size_t>(64, options_.service.telemetry.routing_log_capacity);
    if (pending.size() > cap) {
      const size_t excess = pending.size() - cap;
      telemetry.routing_dropped += excess;
      pending.erase(pending.begin(),
                    pending.begin() + static_cast<ptrdiff_t>(excess));
    }
  }
  auto it = retiring_.find(name);
  if (it != retiring_.end()) {
    std::vector<std::shared_ptr<AsyncQueryService>>& draining = it->second;
    draining.erase(std::remove(draining.begin(), draining.end(), service),
                   draining.end());
    if (draining.empty()) retiring_.erase(it);
  }
}

MultiGraphService::Resolution MultiGraphService::TryResolveLocked(
    std::string_view name, std::shared_ptr<AsyncQueryService>* retired) {
  Resolution resolution;
  GraphSnapshot snapshot = store_.Get(name);
  auto it = services_.find(name);
  if (!snapshot) {
    // Dropped (or never published): retire any stale service so queries
    // cannot silently keep answering on a removed graph.
    if (it != services_.end()) {
      *retired = it->second;
      RetireLocked(name, std::move(it->second));
      services_.erase(it);
    }
    resolution.unknown = true;
    return resolution;
  }
  if (it != services_.end() &&
      it->second->graph_version() == snapshot.version) {
    if (!it->second->stopped()) {
      resolution.service = it->second;
      return resolution;
    }
    // Shut down externally (ServiceFor + Shutdown()) while still
    // installed: retire it and rebuild, or SubmitImpl's retry loop would
    // re-resolve the same dead service forever.
    *retired = it->second;
    RetireLocked(name, std::move(it->second));
    services_.erase(it);
  }
  // First query for this graph, the store moved to a newer snapshot, or
  // the installed service was stopped: the caller builds on this
  // snapshot outside the lock.
  resolution.to_build = std::move(snapshot);
  return resolution;
}

std::shared_ptr<AsyncQueryService> MultiGraphService::InstallLocked(
    std::string_view name, const std::shared_ptr<AsyncQueryService>& fresh,
    std::shared_ptr<AsyncQueryService>* retired) {
  const GraphSnapshot current = store_.Get(name);
  if (!current) {
    // Removed mid-build; retire any stale service, discard the build.
    auto it = services_.find(name);
    if (it != services_.end()) {
      *retired = it->second;
      RetireLocked(name, std::move(it->second));
      services_.erase(it);
    }
    return nullptr;
  }
  auto it = services_.find(name);
  if (it != services_.end() &&
      it->second->graph_version() == current.version &&
      !it->second->stopped()) {
    return it->second;  // a racing builder installed this version first
  }
  if (fresh->graph_version() != current.version) {
    return nullptr;  // republished mid-build; caller re-resolves
  }
  // Replace whatever is installed: an older version, or a same-version
  // service that was externally shut down.
  if (it != services_.end()) {
    *retired = it->second;
    RetireLocked(name, std::move(it->second));
    it->second = fresh;
  } else {
    services_.emplace(std::string(name), fresh);
  }
  return fresh;
}

std::shared_ptr<AsyncQueryService> MultiGraphService::ServiceFor(
    std::string_view name) {
  for (;;) {
    std::shared_ptr<AsyncQueryService> retired;
    Resolution resolution;
    {
      std::lock_guard<std::mutex> lock(mu_);
      resolution = TryResolveLocked(name, &retired);
    }
    // Drain + fold the swapped-out service with no lock held, so a
    // hot-swap never stalls submissions to other graphs.
    if (retired != nullptr) FinishRetire(name, retired);
    if (resolution.unknown) return nullptr;
    if (resolution.service != nullptr) return resolution.service;

    // The expensive part — estimator + worker construction — also runs
    // with no lock held.
    std::shared_ptr<AsyncQueryService> fresh =
        BuildService(name, std::move(resolution.to_build));
    std::shared_ptr<AsyncQueryService> replaced;
    std::shared_ptr<AsyncQueryService> installed;
    {
      std::lock_guard<std::mutex> lock(mu_);
      installed = InstallLocked(name, fresh, &replaced);
    }
    if (replaced != nullptr) FinishRetire(name, replaced);
    if (installed != nullptr) {
      // A SetGraphDefaults/SetDefaultBackend that ran between the
      // BuildService-time apply and the install would otherwise be lost
      // (it saw no live service to update). Re-applying after install
      // reads the map at or after any such update, so the installed
      // service converges to the latest defaults.
      ApplyCurrentDefaults(name, *installed);
      return installed;
    }
    // The store moved on mid-build: discard the stale build (it never
    // served a query) and re-resolve.
  }
}

QueryHandle MultiGraphService::ErrorHandle(QueryStatus status) {
  if (status == QueryStatus::kUnknownGraph) {
    unknown_graph_rejects_.fetch_add(1, std::memory_order_relaxed);
  } else if (status == QueryStatus::kInvalidArgument) {
    invalid_argument_rejects_.fetch_add(1, std::memory_order_relaxed);
  }
  QueryHandle handle;
  std::promise<QueryResult> promise;
  handle.result = promise.get_future();
  QueryResult result;
  result.status = status;
  promise.set_value(std::move(result));
  return handle;
}

QueryHandle MultiGraphService::SubmitImpl(
    std::string_view graph, NodeId seed,
    const std::function<std::optional<QueryHandle>(AsyncQueryService&)>&
        enqueue) {
  // Resolve (short registry lock), then enqueue with no lock held: the
  // resolved service's snapshot is immutable, so the seed check needs no
  // lock, and TrySubmit* returns nullopt if a Publish()/Drop() drained
  // the service between resolve and enqueue — we then re-resolve onto the
  // replacement. Each retry implies the store moved, so the loop
  // terminates with the publish traffic.
  for (;;) {
    std::shared_ptr<AsyncQueryService> service = ServiceFor(graph);
    if (service == nullptr) return ErrorHandle(QueryStatus::kUnknownGraph);
    // Validated against the resolved snapshot — out-of-range seeds are
    // reported, never check-failed. A swap between this check and the
    // enqueue surfaces as nullopt and re-validates on the new snapshot.
    if (seed >= service->graph().NumNodes()) {
      return ErrorHandle(QueryStatus::kInvalidArgument);
    }
    std::optional<QueryHandle> handle = enqueue(*service);
    if (handle.has_value()) return std::move(*handle);
  }
}

QueryHandle MultiGraphService::Submit(std::string_view graph, NodeId seed,
                                      const SubmitOptions& submit) {
  return SubmitImpl(graph, seed, [&](AsyncQueryService& service) {
    return service.TrySubmit(seed, submit);
  });
}

QueryHandle MultiGraphService::SubmitTopK(std::string_view graph, NodeId seed,
                                          size_t k,
                                          const SubmitOptions& submit) {
  // Same report-don't-check-fail policy as the seed range: k is external
  // input on this path, so a malformed request must not abort the process
  // serving every graph.
  if (k == 0) return ErrorHandle(QueryStatus::kInvalidArgument);
  return SubmitImpl(graph, seed, [&](AsyncQueryService& service) {
    return service.TrySubmitTopK(seed, k, submit);
  });
}

uint64_t MultiGraphService::Publish(std::string_view name, Graph graph) {
  const uint64_t version = store_.Publish(name, std::move(graph));
  bool live;
  {
    std::lock_guard<std::mutex> lock(mu_);
    live = services_.find(name) != services_.end();
  }
  // Hot-swap eagerly only if the graph is already being served (the
  // standard resolve/build/install path, build outside the lock);
  // otherwise stay lazy and let the first query build on the new
  // snapshot.
  if (live) ServiceFor(name);
  return version;
}

bool MultiGraphService::Drop(std::string_view name) {
  bool existed;
  std::shared_ptr<AsyncQueryService> service;
  {
    // Remove from store and registry under one lock: a concurrent Submit
    // (whose resolve also takes mu_) either ran before — its service is
    // in the map and we drain it below — or runs after and sees the store
    // miss. The service can therefore never be spirited away into a
    // submitter's retire path mid-drop, which would let Drop return
    // before the drain. Lock order is always mu_ -> store lock (Publish
    // never holds the store lock while taking mu_), so nesting is safe.
    std::lock_guard<std::mutex> lock(mu_);
    existed = store_.Remove(name);
    auto it = services_.find(name);
    if (it != services_.end()) {
      service = it->second;
      RetireLocked(name, std::move(it->second));
      services_.erase(it);
    }
    // A dropped graph's plan overrides die with it: a later graph of the
    // same name starts from the service-wide template.
    auto defaults_it = graph_defaults_.find(name);
    if (defaults_it != graph_defaults_.end()) {
      graph_defaults_.erase(defaults_it);
    }
    // So does its learned router: a later graph of the same name is a
    // new graph and trains from scratch (hot-swap, by contrast, keeps
    // the router and lets the cost model's scale decay adapt it).
    auto router_it = routers_.find(name);
    if (router_it != routers_.end()) routers_.erase(router_it);
  }
  // Graceful drain, synchronously: every future already handed out for
  // this graph resolves — and the final counters are folded — before
  // Drop returns.
  if (service != nullptr) FinishRetire(name, service);
  return existed;
}

ServiceStatsSnapshot MultiGraphService::StatsFor(
    std::string_view name) const {
  std::shared_ptr<AsyncQueryService> live;
  std::vector<std::shared_ptr<AsyncQueryService>> draining;
  ServiceStatsSnapshot total;
  {
    // One critical section snapshots all three homes a service's history
    // can live in (live map, retiring list, folded totals), so every
    // query is counted exactly once and counters never dip mid-drain.
    std::lock_guard<std::mutex> lock(mu_);
    auto it = services_.find(name);
    if (it != services_.end()) live = it->second;
    auto retiring_it = retiring_.find(name);
    if (retiring_it != retiring_.end()) draining = retiring_it->second;
    auto folded = retired_stats_.find(name);
    if (folded != retired_stats_.end()) total = folded->second;
  }
  if (live != nullptr) {
    const ServiceStatsSnapshot snap = live->Stats();
    AddSnapshotCounters(total, snap);
    total.queue_depth += snap.queue_depth;
  }
  for (const auto& service : draining) {
    const ServiceStatsSnapshot snap = service->Stats();
    AddSnapshotCounters(total, snap);
    total.queue_depth += snap.queue_depth;
  }
  // Percentiles over the graph's whole history (live + draining + every
  // folded incarnation), from the merged buckets.
  RecomputeSnapshotPercentiles(total);
  return total;
}

ServiceStatsSnapshot MultiGraphService::AggregateStats() const {
  std::vector<std::shared_ptr<AsyncQueryService>> counting;
  ServiceStatsSnapshot total;
  {
    std::lock_guard<std::mutex> lock(mu_);
    counting.reserve(services_.size());
    for (const auto& [name, service] : services_) counting.push_back(service);
    for (const auto& [name, draining] : retiring_) {
      for (const auto& service : draining) counting.push_back(service);
    }
    for (const auto& [name, snap] : retired_stats_) AddSnapshotCounters(total, snap);
  }
  for (const auto& service : counting) {
    const ServiceStatsSnapshot snap = service->Stats();
    AddSnapshotCounters(total, snap);
    total.queue_depth += snap.queue_depth;
  }
  RecomputeSnapshotPercentiles(total);
  return total;
}

TelemetrySnapshot MultiGraphService::TelemetryFor(
    std::string_view name) const {
  TelemetrySnapshot total;
  std::shared_ptr<AsyncQueryService> live;
  std::vector<std::shared_ptr<AsyncQueryService>> draining;
  {
    // Same one-critical-section discipline as StatsFor: a service's
    // history is read from exactly one of retired/retiring/live.
    std::lock_guard<std::mutex> lock(mu_);
    auto folded = retired_telemetry_.find(name);
    if (folded != retired_telemetry_.end()) total = folded->second;
    auto it = services_.find(name);
    if (it != services_.end()) live = it->second;
    auto retiring_it = retiring_.find(name);
    if (retiring_it != retiring_.end()) draining = retiring_it->second;
  }
  if (live != nullptr) MergeTelemetry(total, live->Telemetry());
  for (const auto& service : draining) {
    MergeTelemetry(total, service->Telemetry());
  }
  return total;
}

std::vector<RoutingEvent> MultiGraphService::DrainRoutingEvents(
    std::string_view name) {
  // Serialize against every other drain (per-name or DrainAll): two
  // concurrent drains would otherwise race on which one observes a
  // retiring service's parked leftovers.
  std::lock_guard<std::mutex> drain_lock(routing_drain_mu_);
  std::vector<RoutingEvent> out;
  std::shared_ptr<AsyncQueryService> live;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto pending = pending_events_.find(name);
    if (pending != pending_events_.end()) {
      out = std::move(pending->second);
      pending_events_.erase(pending);
    }
    auto it = services_.find(name);
    if (it != services_.end()) live = it->second;
  }
  // The live drain runs outside mu_ (it takes the ring's drain lock). A
  // service retired between the two blocks parks its leftovers back in
  // pending_events_, so nothing is lost — just deferred to the next
  // drain.
  if (live != nullptr) {
    std::vector<RoutingEvent> fresh = live->DrainRoutingEvents();
    out.insert(out.end(), fresh.begin(), fresh.end());
  }
  return out;
}

std::map<std::string, std::vector<RoutingEvent>, std::less<>>
MultiGraphService::DrainAllRoutingEvents() {
  std::lock_guard<std::mutex> drain_lock(routing_drain_mu_);
  std::map<std::string, std::vector<RoutingEvent>, std::less<>> out;
  std::vector<std::pair<std::string, std::shared_ptr<AsyncQueryService>>>
      to_drain;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, pending] : pending_events_) {
      std::vector<RoutingEvent>& sink = out[name];
      sink.insert(sink.end(), pending.begin(), pending.end());
    }
    pending_events_.clear();
    for (const auto& [name, service] : services_) {
      to_drain.emplace_back(name, service);
    }
    // Retiring services still hold undrained tails of the pre-swap
    // stream; fold them into the same per-name bucket so a consumer of
    // the full stream never loses the swap boundary's events.
    for (const auto& [name, draining] : retiring_) {
      for (const auto& service : draining) to_drain.emplace_back(name, service);
    }
  }
  // Ring drains run outside mu_ (each takes its ring's drain lock); the
  // collected shared_ptrs keep the services alive even if one retires
  // or finishes draining concurrently.
  for (const auto& [name, service] : to_drain) {
    std::vector<RoutingEvent> fresh = service->DrainRoutingEvents();
    if (fresh.empty()) continue;
    std::vector<RoutingEvent>& sink = out[name];
    sink.insert(sink.end(), fresh.begin(), fresh.end());
  }
  for (auto it = out.begin(); it != out.end();) {
    it = it->second.empty() ? out.erase(it) : std::next(it);
  }
  return out;
}

size_t MultiGraphService::TrainRouters() {
  if (options_.router != RouterKind::kLearned) return 0;
  std::map<std::string, std::vector<RoutingEvent>, std::less<>> drained =
      DrainAllRoutingEvents();
  size_t observed = 0;
  for (const auto& [name, events] : drained) {
    std::shared_ptr<LearnedRouter> router;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = routers_.find(name);
      if (it != routers_.end()) router = it->second;
    }
    // No router means the graph was dropped (or its service was never
    // built through us); its tail of events has no model to feed.
    if (router == nullptr) continue;
    router->Observe(events);
    observed += events.size();
  }
  return observed;
}

std::vector<std::string> MultiGraphService::StatsScopes() const {
  std::vector<std::string> scopes;
  for (const GraphInfo& info : store_.List()) scopes.push_back(info.name);
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, snap] : retired_stats_) {
    if (std::find(scopes.begin(), scopes.end(), name) == scopes.end()) {
      scopes.push_back(name);
    }
  }
  std::sort(scopes.begin(), scopes.end());
  return scopes;
}

void MultiGraphService::InvalidateCaches() {
  std::vector<std::shared_ptr<AsyncQueryService>> live;
  {
    std::lock_guard<std::mutex> lock(mu_);
    live.reserve(services_.size());
    for (const auto& [name, service] : services_) live.push_back(service);
  }
  for (const auto& service : live) service->InvalidateCache();
}

}  // namespace hkpr
