// Serving-stack telemetry: per-query stage tracing, a dimensioned
// per-backend metrics registry, and the routing-decision event log.
//
// Three observability layers over the flat ServiceStats counter block,
// all wait-free (or lock-free with a bounded publish window) on the
// serving hot path:
//
//  1. Stage tracing. Every request carries a QueryTrace of monotonic
//     timestamps stamped as it moves through the pipeline
//     (submit -> plan-resolved -> dequeue -> cache-lookup ->
//     compute-begin -> compute-end -> complete). Completed queries fold
//     their three disjoint stage durations — queue wait, cache lookup,
//     compute — into per-stage LatencyHistograms plus exact microsecond
//     sums, so ServiceStatsSnapshot exposes p50/p95/p99 *and* exact
//     means per stage, and "auto reaches 1.7x the best fixed backend"
//     decomposes into where the time actually went. The stage segments
//     are sub-intervals of [submit, complete], so per query
//     queue + cache + compute <= total holds exactly (in integer
//     microseconds), an invariant CI asserts on every bench row.
//
//  2. Dimensioned metrics. Counters and a latency histogram keyed by the
//     resolved backend's stable id, held in a fixed array of CAS-claimed
//     slots (bounded cardinality: distinct backends beyond kMaxBackends
//     fold into one overflow slot, never an allocation on the hot path).
//     MultiGraphService aggregates these per graph across hot-swaps the
//     same way retired ServiceStats fold, which yields the
//     (graph, backend) dimensions of the server's Prometheus-style
//     `metrics` output.
//
//  3. The routing event log. A fixed-capacity lock-free ring of
//     RoutingEvents — one per completed query: the RoutingQuery features
//     the router saw (seed degree, graph scale, effective params), the
//     plan it chose, the cache outcome, and the per-stage timings — with
//     a Drain() snapshot API. This is the exact training/replay input
//     the learned cost-model router on the ROADMAP needs, landed here as
//     pure observability.
//
// Tracing is a construction-time switch (TelemetryOptions::enabled);
// disabled, the service stamps no clocks, records nothing here, and
// degrades to exactly the pre-telemetry single-histogram behavior.
//
// Concurrency notes. Histograms and counters are relaxed atomics
// (wait-free). The ring buffer is a per-slot seqlock: writers claim a
// ticket with one fetch_add and publish through an atomic-word payload
// (no data race reportable by TSan, no torn reads accepted by readers);
// a writer spins only when the ring wraps onto a slot whose previous
// writer is still mid-publish, which needs `capacity` concurrent
// appends — with capacity >= 64 and one append per completed query this
// does not happen in practice.

#ifndef HKPR_SERVICE_TELEMETRY_H_
#define HKPR_SERVICE_TELEMETRY_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <vector>

#include "graph/graph.h"
#include "hkpr/params.h"
#include "service/service_stats.h"

namespace hkpr {

/// Construction-time telemetry configuration (ServiceOptions::telemetry).
struct TelemetryOptions {
  /// Master switch. Disabled, the service takes no timestamps beyond the
  /// pre-existing submit/complete pair and keeps only the flat
  /// ServiceStats histogram — the zero-overhead baseline the
  /// trace-overhead bench guard compares against.
  bool enabled = true;
  /// Routing-event ring capacity (rounded up to a power of two, minimum
  /// 64 when non-zero). Oldest events are overwritten once the ring laps
  /// an un-drained reader; 0 disables the event log while keeping stage
  /// histograms and per-backend metrics.
  size_t routing_log_capacity = 1024;
};

/// Monotonic pipeline timestamps for one request, stamped by
/// AsyncQueryService as the request moves through the stages. Only ever
/// touched by one thread at a time (the submitter, then the owning
/// worker), so plain time_points suffice.
struct QueryTrace {
  using Clock = std::chrono::steady_clock;
  Clock::time_point submit{};         ///< Enqueue() entry
  Clock::time_point plan_resolved{};  ///< plan fixed (router/registry done)
  Clock::time_point dequeue{};        ///< a worker picked the request up
  Clock::time_point cache_done{};     ///< cache lookup settled (== dequeue
                                      ///< when the cache is disabled)
  Clock::time_point compute_begin{};  ///< estimator invocation start (==
                                      ///< cache_done for hits/coalesced)
  Clock::time_point compute_end{};    ///< estimator invocation end
};

/// How the cache treated a completed query.
enum class CacheOutcome : uint8_t {
  kNone = 0,   ///< cache disabled
  kHit,        ///< served from a completed entry
  kCoalesced,  ///< waited on another worker's in-flight computation
  kMiss,       ///< became the leader and computed
};

/// Printable name ("none", "hit", "coalesced", "miss").
const char* CacheOutcomeName(CacheOutcome outcome);

/// One completed query, as the learned cost-model router will see it:
/// the routing features, the chosen plan, the cache outcome, and the
/// per-stage timings as microsecond offsets from submit. Trivially
/// copyable by construction — the ring buffer publishes events through
/// atomic 64-bit words.
struct RoutingEvent {
  // --- identity ---
  uint64_t query_index = 0;   ///< deterministic RNG index (submission order)
  uint64_t graph_version = 0; ///< snapshot version the query ran on

  // --- RoutingQuery features (see hkpr/router.h) ---
  NodeId seed = 0;
  uint32_t seed_degree = 0;
  uint32_t num_nodes = 0;
  uint64_t num_edges = 0;
  double avg_degree = 0.0;
  ApproxParams params;  ///< effective (post-override) parameters

  // --- decision + outcome ---
  uint32_t backend_id = 0;  ///< resolved plan's stable backend id
  uint8_t routed = 0;       ///< 1 when the RoutingPolicy chose the backend
                            ///< ("auto"), 0 for pinned/default plans
  uint8_t cache = 0;        ///< CacheOutcome
  uint8_t hedged = 0;       ///< 1 when a runner-up hedge was fired for
                            ///< this query (whichever side won)
  uint8_t hedge_won = 0;    ///< 1 when the hedge (runner-up) side
                            ///< produced this completed result; its
                            ///< backend_id is then the runner-up's

  // --- stage timings: offsets from submit, microseconds, monotone
  //     non-decreasing in declaration order ---
  uint64_t plan_us = 0;
  uint64_t dequeue_us = 0;
  uint64_t cache_us = 0;
  uint64_t compute_begin_us = 0;
  uint64_t compute_end_us = 0;
  uint64_t complete_us = 0;

  CacheOutcome cache_outcome() const { return static_cast<CacheOutcome>(cache); }
};
static_assert(std::is_trivially_copyable_v<RoutingEvent>,
              "RoutingEvent ships through atomic words");

/// Fixed-capacity lock-free MPMC ring of RoutingEvents. Append() is the
/// hot path (one fetch_add + a seqlock publish); Drain() snapshots and
/// consumes everything published since the previous drain, counting
/// events the ring overwrote before they were read.
class RoutingEventLog {
 public:
  /// `capacity` is rounded up to a power of two, minimum 64.
  explicit RoutingEventLog(size_t capacity);

  void Append(const RoutingEvent& event);

  /// Everything appended since the last Drain() and still resident, in
  /// append (ticket) order. Stops before an append still mid-publish
  /// (the next drain picks it up). Thread-safe against appenders and
  /// other drainers.
  std::vector<RoutingEvent> Drain();

  /// Total Append() calls over the log's lifetime.
  uint64_t appended() const { return head_.load(std::memory_order_relaxed); }
  /// Events overwritten before any Drain() read them.
  uint64_t dropped() const;

  size_t capacity() const { return slots_.size(); }

 private:
  static constexpr size_t kWords = (sizeof(RoutingEvent) + 7) / 8;

  /// One seqlock slot. seq cycles through 2t+1 (ticket t mid-publish) and
  /// 2t+2 (ticket t readable); the payload is atomic words, so a racing
  /// read is never UB and a torn read is always rejected by the seq
  /// recheck.
  struct alignas(64) Slot {
    std::atomic<uint64_t> seq{0};
    std::array<std::atomic<uint64_t>, kWords> words{};
  };

  std::vector<Slot> slots_;
  size_t mask_ = 0;
  /// The next append ticket; ticket t publishes into slot t & mask_.
  std::atomic<uint64_t> head_{0};

  mutable std::mutex drain_mu_;
  uint64_t next_ = 0;     ///< first un-drained ticket (under drain_mu_)
  uint64_t dropped_ = 0;  ///< overwritten-before-read count (under drain_mu_)
};

/// Per-backend counters for one completed query's snapshot row.
struct BackendStatsSnapshot {
  uint32_t backend_id = 0;
  /// Registry name for the id; "other" for the bounded-cardinality
  /// overflow slot, "id:<decimal>" when the id is not (or no longer)
  /// registered.
  std::string backend;
  uint64_t completed = 0;
  uint64_t computed = 0;    ///< cache misses + cache-disabled computes
  uint64_t cache_hits = 0;
  uint64_t coalesced = 0;
  uint64_t latency_count = 0;
  std::array<uint64_t, LatencyHistogram::kBuckets> latency_buckets{};
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
};

/// Everything a telemetry reader gets in one call: the per-backend
/// dimensioned rows (sorted by backend_id) plus the routing-log health
/// counters. Mergeable across services/hot-swaps via MergeTelemetry().
struct TelemetrySnapshot {
  bool enabled = false;
  std::vector<BackendStatsSnapshot> backends;
  uint64_t routing_appended = 0;
  uint64_t routing_dropped = 0;
};

/// Folds `from` into `into` by backend id (rows are re-sorted and
/// percentiles recomputed) — the retired-service aggregation primitive.
void MergeTelemetry(TelemetrySnapshot& into, const TelemetrySnapshot& from);

/// The per-service telemetry block AsyncQueryService owns. All recording
/// methods are thread-safe; Record() is called once per completed (kOk)
/// query with a fully stamped trace.
class ServiceTelemetry {
 public:
  explicit ServiceTelemetry(const TelemetryOptions& options);

  bool enabled() const { return enabled_; }

  /// Folds one completed query: stage histograms + exact stage sums,
  /// the per-backend dimensioned row, and the routing-log append. The
  /// event's stage offsets must be monotone non-decreasing (they are by
  /// construction: the offsets come from clock stamps taken in pipeline
  /// order).
  void Record(const RoutingEvent& event);

  /// Fills the stage-tracing fields of `snap` (stage_tracing, the three
  /// StageLatencySnapshots, traced_total_us). No-op when disabled — the
  /// snapshot then reports stage_tracing == false and empty stages,
  /// which is exactly the pre-telemetry snapshot shape.
  void FillStages(ServiceStatsSnapshot& snap) const;

  /// Per-backend rows + routing-log counters.
  TelemetrySnapshot Snapshot() const;

  /// Drains the routing event log (empty when disabled or capacity 0).
  std::vector<RoutingEvent> DrainRoutingEvents();

 private:
  /// Bounded-cardinality backend dimension table. Slots are claimed by
  /// CAS on first sight of a backend id; ids beyond kMaxBackends fold
  /// into the overflow slot.
  static constexpr size_t kMaxBackends = 16;

  struct alignas(64) BackendSlot {
    /// backend_id + 1; 0 = unclaimed (FNV ids are never distinguished
    /// from 0 this way even if one hashed to 0).
    std::atomic<uint64_t> key{0};
    std::atomic<uint64_t> completed{0};
    std::atomic<uint64_t> computed{0};
    std::atomic<uint64_t> cache_hits{0};
    std::atomic<uint64_t> coalesced{0};
    LatencyHistogram latency;
  };

  BackendSlot* FindOrClaimSlot(uint32_t backend_id);
  static void FillBackendRow(const BackendSlot& slot, uint32_t backend_id,
                             BackendStatsSnapshot& row);

  bool enabled_ = false;

  // Stage histograms (log2 buckets, for percentiles) and exact
  // microsecond sums (for means and the sums<=total CI invariant).
  LatencyHistogram queue_wait_;
  LatencyHistogram cache_lookup_;
  LatencyHistogram compute_;
  std::atomic<uint64_t> queue_wait_us_{0};
  std::atomic<uint64_t> cache_lookup_us_{0};
  std::atomic<uint64_t> compute_us_{0};
  std::atomic<uint64_t> total_us_{0};

  std::array<BackendSlot, kMaxBackends> backend_slots_{};
  BackendSlot overflow_slot_{};

  std::unique_ptr<RoutingEventLog> routing_log_;  // null when disabled
};

}  // namespace hkpr

#endif  // HKPR_SERVICE_TELEMETRY_H_
