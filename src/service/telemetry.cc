#include "service/telemetry.h"

#include <algorithm>
#include <bit>

#include "hkpr/backend.h"

namespace hkpr {

namespace {

constexpr size_t kMinRingCapacity = 64;

double UsToSeconds(uint64_t us) { return static_cast<double>(us) * 1e-6; }

}  // namespace

const char* CacheOutcomeName(CacheOutcome outcome) {
  switch (outcome) {
    case CacheOutcome::kNone:
      return "none";
    case CacheOutcome::kHit:
      return "hit";
    case CacheOutcome::kCoalesced:
      return "coalesced";
    case CacheOutcome::kMiss:
      return "miss";
  }
  return "invalid";
}

// ---------------------------------------------------------------------------
// RoutingEventLog

RoutingEventLog::RoutingEventLog(size_t capacity) {
  capacity = std::max(capacity, kMinRingCapacity);
  capacity = std::bit_ceil(capacity);
  slots_ = std::vector<Slot>(capacity);
  mask_ = capacity - 1;
}

void RoutingEventLog::Append(const RoutingEvent& event) {
  const uint64_t ticket = head_.fetch_add(1, std::memory_order_acq_rel);
  Slot& slot = slots_[ticket & mask_];
  // Seqlock publish. Wait (bounded: the previous occupant's publish is
  // straight-line code) until ticket - capacity has fully published, so
  // two writers never interleave on one slot and a reader can never
  // accept ticket t's seq with a later ticket's words.
  const uint64_t expected =
      ticket >= slots_.size() ? 2 * (ticket - slots_.size()) + 2 : 0;
  while (slot.seq.load(std::memory_order_acquire) != expected) {
    // Requires `capacity` concurrent appends to trigger; see header.
  }
  slot.seq.store(2 * ticket + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  uint64_t words[kWords] = {};
  std::memcpy(words, &event, sizeof(event));
  for (size_t i = 0; i < kWords; ++i) {
    slot.words[i].store(words[i], std::memory_order_relaxed);
  }
  slot.seq.store(2 * ticket + 2, std::memory_order_release);
}

std::vector<RoutingEvent> RoutingEventLog::Drain() {
  std::lock_guard<std::mutex> lock(drain_mu_);
  const uint64_t head = head_.load(std::memory_order_acquire);
  uint64_t start = next_;
  // The ring lapped the reader: everything below head - capacity has been
  // overwritten unread.
  if (head > slots_.size()) {
    const uint64_t oldest = head - slots_.size();
    if (start < oldest) {
      dropped_ += oldest - start;
      start = oldest;
    }
  }
  std::vector<RoutingEvent> out;
  out.reserve(static_cast<size_t>(head - start));
  uint64_t ticket = start;
  for (; ticket < head; ++ticket) {
    Slot& slot = slots_[ticket & mask_];
    const uint64_t want = 2 * ticket + 2;
    const uint64_t s1 = slot.seq.load(std::memory_order_acquire);
    if (s1 < want) {
      // This append claimed its ticket but has not finished publishing.
      // Stop here — tickets are drained in order, so the next drain
      // resumes at this one (publish completes in bounded time).
      break;
    }
    if (s1 > want) {
      // Overwritten by a wrap before we read it.
      ++dropped_;
      continue;
    }
    uint64_t words[kWords];
    for (size_t i = 0; i < kWords; ++i) {
      words[i] = slot.words[i].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != want) {
      ++dropped_;  // torn by a concurrent wrap; rejected
      continue;
    }
    RoutingEvent event;
    std::memcpy(&event, words, sizeof(event));
    out.push_back(event);
  }
  next_ = ticket;
  return out;
}

uint64_t RoutingEventLog::dropped() const {
  std::lock_guard<std::mutex> lock(drain_mu_);
  return dropped_;
}

// ---------------------------------------------------------------------------
// ServiceTelemetry

ServiceTelemetry::ServiceTelemetry(const TelemetryOptions& options)
    : enabled_(options.enabled) {
  if (enabled_ && options.routing_log_capacity > 0) {
    routing_log_ =
        std::make_unique<RoutingEventLog>(options.routing_log_capacity);
  }
}

ServiceTelemetry::BackendSlot* ServiceTelemetry::FindOrClaimSlot(
    uint32_t backend_id) {
  const uint64_t key = static_cast<uint64_t>(backend_id) + 1;
  for (BackendSlot& slot : backend_slots_) {
    uint64_t seen = slot.key.load(std::memory_order_acquire);
    if (seen == key) return &slot;
    if (seen == 0) {
      if (slot.key.compare_exchange_strong(seen, key,
                                           std::memory_order_acq_rel)) {
        return &slot;
      }
      if (seen == key) return &slot;  // a racer claimed it for the same id
    }
  }
  return nullptr;  // cardinality bound hit; caller folds into overflow
}

void ServiceTelemetry::Record(const RoutingEvent& event) {
  if (!enabled_) return;
  // The three stage segments are disjoint sub-intervals of
  // [submit, complete], so their integer-microsecond sum telescopes to
  // <= complete_us — the invariant CI asserts per bench row.
  const uint64_t queue_us = event.dequeue_us - event.plan_us;
  const uint64_t cache_us = event.cache_us - event.dequeue_us;
  const uint64_t compute_us = event.compute_end_us - event.compute_begin_us;
  queue_wait_.Record(UsToSeconds(queue_us));
  cache_lookup_.Record(UsToSeconds(cache_us));
  // Cache-served queries (hit/coalesced) have a zero-width compute
  // segment by construction; recording them would drag the compute
  // percentiles to zero on warm traffic, so the compute stage counts
  // only queries that actually ran an estimator.
  const CacheOutcome outcome = event.cache_outcome();
  const bool computed =
      outcome == CacheOutcome::kMiss || outcome == CacheOutcome::kNone;
  if (computed) {
    compute_.Record(UsToSeconds(compute_us));
    compute_us_.fetch_add(compute_us, std::memory_order_relaxed);
  }
  queue_wait_us_.fetch_add(queue_us, std::memory_order_relaxed);
  cache_lookup_us_.fetch_add(cache_us, std::memory_order_relaxed);
  total_us_.fetch_add(event.complete_us, std::memory_order_relaxed);

  BackendSlot* slot = FindOrClaimSlot(event.backend_id);
  if (slot == nullptr) slot = &overflow_slot_;
  slot->completed.fetch_add(1, std::memory_order_relaxed);
  switch (event.cache_outcome()) {
    case CacheOutcome::kHit:
      slot->cache_hits.fetch_add(1, std::memory_order_relaxed);
      break;
    case CacheOutcome::kCoalesced:
      slot->coalesced.fetch_add(1, std::memory_order_relaxed);
      break;
    case CacheOutcome::kMiss:
    case CacheOutcome::kNone:
      slot->computed.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  slot->latency.Record(UsToSeconds(event.complete_us));

  if (routing_log_) routing_log_->Append(event);
}

void ServiceTelemetry::FillStages(ServiceStatsSnapshot& snap) const {
  if (!enabled_) return;
  snap.stage_tracing = true;
  const auto fill = [](const LatencyHistogram& hist,
                       const std::atomic<uint64_t>& sum_us,
                       StageLatencySnapshot& stage) {
    stage.buckets = hist.BucketCounts();
    stage.count = 0;
    for (const uint64_t count : stage.buckets) stage.count += count;
    stage.total_us = sum_us.load(std::memory_order_relaxed);
    stage.p50_ms = LatencyPercentileMs(stage.buckets, 0.50);
    stage.p95_ms = LatencyPercentileMs(stage.buckets, 0.95);
    stage.p99_ms = LatencyPercentileMs(stage.buckets, 0.99);
  };
  fill(queue_wait_, queue_wait_us_, snap.queue_wait);
  fill(cache_lookup_, cache_lookup_us_, snap.cache_lookup);
  fill(compute_, compute_us_, snap.compute);
  snap.traced_total_us = total_us_.load(std::memory_order_relaxed);
}

void ServiceTelemetry::FillBackendRow(const BackendSlot& slot,
                                      uint32_t backend_id,
                                      BackendStatsSnapshot& row) {
  row.backend_id = backend_id;
  row.completed = slot.completed.load(std::memory_order_relaxed);
  row.computed = slot.computed.load(std::memory_order_relaxed);
  row.cache_hits = slot.cache_hits.load(std::memory_order_relaxed);
  row.coalesced = slot.coalesced.load(std::memory_order_relaxed);
  row.latency_buckets = slot.latency.BucketCounts();
  row.latency_count = 0;
  for (const uint64_t count : row.latency_buckets) row.latency_count += count;
  row.latency_p50_ms = LatencyPercentileMs(row.latency_buckets, 0.50);
  row.latency_p95_ms = LatencyPercentileMs(row.latency_buckets, 0.95);
  row.latency_p99_ms = LatencyPercentileMs(row.latency_buckets, 0.99);
}

/// Registry name for a stable backend id; the registry has no reverse
/// index, so resolve by scanning the (small, fixed) name list.
static std::string BackendNameForId(uint32_t backend_id) {
  for (const std::string& name : EstimatorRegistry::Global().Names()) {
    if (StableBackendId(name) == backend_id) return name;
  }
  return "id:" + std::to_string(backend_id);
}

TelemetrySnapshot ServiceTelemetry::Snapshot() const {
  TelemetrySnapshot snap;
  snap.enabled = enabled_;
  if (!enabled_) return snap;
  for (const BackendSlot& slot : backend_slots_) {
    const uint64_t key = slot.key.load(std::memory_order_acquire);
    if (key == 0) continue;
    BackendStatsSnapshot row;
    FillBackendRow(slot, static_cast<uint32_t>(key - 1), row);
    if (row.completed == 0) continue;  // claimed but not yet recorded
    row.backend = BackendNameForId(row.backend_id);
    snap.backends.push_back(std::move(row));
  }
  if (overflow_slot_.completed.load(std::memory_order_relaxed) > 0) {
    BackendStatsSnapshot row;
    FillBackendRow(overflow_slot_, 0, row);
    row.backend = "other";
    snap.backends.push_back(std::move(row));
  }
  std::sort(snap.backends.begin(), snap.backends.end(),
            [](const BackendStatsSnapshot& a, const BackendStatsSnapshot& b) {
              return a.backend_id < b.backend_id;
            });
  if (routing_log_) {
    snap.routing_appended = routing_log_->appended();
    snap.routing_dropped = routing_log_->dropped();
  }
  return snap;
}

std::vector<RoutingEvent> ServiceTelemetry::DrainRoutingEvents() {
  if (!routing_log_) return {};
  return routing_log_->Drain();
}

void MergeTelemetry(TelemetrySnapshot& into, const TelemetrySnapshot& from) {
  into.enabled = into.enabled || from.enabled;
  into.routing_appended += from.routing_appended;
  into.routing_dropped += from.routing_dropped;
  for (const BackendStatsSnapshot& row : from.backends) {
    auto it = std::find_if(into.backends.begin(), into.backends.end(),
                           [&](const BackendStatsSnapshot& have) {
                             return have.backend_id == row.backend_id &&
                                    have.backend == row.backend;
                           });
    if (it == into.backends.end()) {
      into.backends.push_back(row);
      continue;
    }
    it->completed += row.completed;
    it->computed += row.computed;
    it->cache_hits += row.cache_hits;
    it->coalesced += row.coalesced;
    it->latency_count += row.latency_count;
    for (size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
      it->latency_buckets[i] += row.latency_buckets[i];
    }
    it->latency_p50_ms = LatencyPercentileMs(it->latency_buckets, 0.50);
    it->latency_p95_ms = LatencyPercentileMs(it->latency_buckets, 0.95);
    it->latency_p99_ms = LatencyPercentileMs(it->latency_buckets, 0.99);
  }
  std::sort(into.backends.begin(), into.backends.end(),
            [](const BackendStatsSnapshot& a, const BackendStatsSnapshot& b) {
              return a.backend_id < b.backend_id;
            });
}

}  // namespace hkpr
