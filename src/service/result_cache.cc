#include "service/result_cache.h"

#include <algorithm>
#include <bit>
#include <unordered_map>
#include <utility>

#include "common/logging.h"

namespace hkpr {

namespace {

/// SplitMix64 finalizer — the same mixer the RNG seeding uses; strong
/// enough that shard selection and the map's buckets can share one hash.
uint64_t Mix(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t HashKey(const ResultCacheKey& key) {
  uint64_t h = Mix(key.graph_version + 0x9E3779B97F4A7C15ULL);
  h = Mix(h ^ ((static_cast<uint64_t>(key.seed) << 32) | key.backend_id));
  h = Mix(h ^ std::bit_cast<uint64_t>(key.t));
  h = Mix(h ^ std::bit_cast<uint64_t>(key.eps_r));
  h = Mix(h ^ std::bit_cast<uint64_t>(key.delta));
  h = Mix(h ^ std::bit_cast<uint64_t>(key.p_f));
  return h;
}

}  // namespace

size_t ResultCache::KeyHash::operator()(const ResultCacheKey& key) const {
  return static_cast<size_t>(HashKey(key));
}

struct ResultCache::Shard {
  std::mutex mu;
  std::unordered_map<ResultCacheKey, Entry, KeyHash> map;
  std::list<ResultCacheKey> lru;  // front = most recently used
};

ResultCache::ResultCache(size_t capacity, uint32_t num_shards) {
  HKPR_CHECK(capacity > 0) << "use no cache instead of a zero-capacity one";
  if (num_shards == 0) num_shards = 1;
  // No point in more shards than capacity: every shard holds >= 1 entry.
  num_shards = static_cast<uint32_t>(
      std::min<size_t>(num_shards, capacity));
  shard_capacity_ = (capacity + num_shards - 1) / num_shards;
  shards_.reserve(num_shards);
  for (uint32_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ResultCache::~ResultCache() = default;

ResultCache::Shard& ResultCache::ShardFor(const ResultCacheKey& key) {
  // Reuse the high bits so the shard index stays independent of the map's
  // bucket choice (which consumes the low bits).
  return *shards_[(HashKey(key) >> 48) % shards_.size()];
}

ResultCache::Lookup ResultCache::LookupOrStartCompute(
    const ResultCacheKey& key) {
  Shard& shard = ShardFor(key);
  Lookup result;
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    Entry& entry = it->second;
    shard.lru.splice(shard.lru.begin(), shard.lru, entry.lru_it);
    if (entry.ready) {
      result.outcome = Outcome::kHit;
      result.value = entry.value;
    } else {
      result.outcome = Outcome::kInFlight;
      result.pending = entry.future;
    }
    return result;
  }

  // Miss: register the caller as the in-flight leader.
  result.outcome = Outcome::kMiss;
  result.leader = std::make_shared<std::promise<CachedEstimate>>();
  Entry entry;
  entry.promise = result.leader;
  entry.future = result.leader->get_future().share();
  shard.lru.push_front(key);
  entry.lru_it = shard.lru.begin();
  shard.map.emplace(key, std::move(entry));

  // Evict completed entries beyond capacity, least recently used first.
  // In-flight entries are skipped: their leaders still need somewhere to
  // publish, and followers hold their futures (so the shard can transiently
  // exceed capacity while everything in it is being computed).
  auto lru_it = shard.lru.end();
  while (shard.map.size() > shard_capacity_ && lru_it != shard.lru.begin()) {
    --lru_it;
    auto victim = shard.map.find(*lru_it);
    if (victim != shard.map.end() && victim->second.ready) {
      lru_it = shard.lru.erase(lru_it);
      shard.map.erase(victim);
    }
  }
  return result;
}

void ResultCache::Complete(
    const ResultCacheKey& key,
    const std::shared_ptr<std::promise<CachedEstimate>>& leader,
    CachedEstimate value) {
  HKPR_CHECK(leader != nullptr);
  HKPR_CHECK(value != nullptr);
  // Wake coalesced followers first — they hold copies of the shared future,
  // so this works even if Invalidate() already dropped the entry.
  leader->set_value(value);

  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  // The entry may be gone (Invalidate raced) or may belong to a different
  // leader (Invalidate + re-miss raced); only the owning leader publishes.
  if (it == shard.map.end() || it->second.promise != leader) return;
  Entry& entry = it->second;
  entry.ready = true;
  entry.value = std::move(value);
  entry.promise.reset();
  shard.lru.splice(shard.lru.begin(), shard.lru, entry.lru_it);
}

uint64_t ResultCache::Invalidate() {
  const uint64_t next = version_.fetch_add(1, std::memory_order_acq_rel) + 1;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    // In-flight promises survive inside their leaders' hands; dropping the
    // entries only forgets the results.
    shard->map.clear();
    shard->lru.clear();
  }
  return next;
}

size_t ResultCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->map.size();
  }
  return total;
}

}  // namespace hkpr
