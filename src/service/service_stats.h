// Serving-side observability: per-stage counters and a latency histogram.
//
// Every stage of the async query pipeline (admission, cache lookup,
// single-flight coalescing, computation, completion) bumps a lock-free
// counter here, and completed queries record their submit-to-completion
// latency into a log2-bucketed histogram. TakeSnapshot() folds everything
// into a plain struct with approximate p50/p95/p99 figures, so monitoring
// never blocks the serving path.

#ifndef HKPR_SERVICE_SERVICE_STATS_H_
#define HKPR_SERVICE_SERVICE_STATS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace hkpr {

/// Log2-bucketed latency histogram over microseconds. Bucket i counts
/// latencies in [2^(i-1), 2^i) us (bucket 0: < 1us), which gives <= 2x
/// relative error on the reported percentiles — plenty for serving
/// dashboards — with wait-free recording.
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 40;  // 2^39 us ~ 6.4 days

  void Record(double seconds);

  /// Approximate latency (in ms) below which a `q` fraction (0 < q <= 1) of
  /// recorded queries fall: the upper bound of the first bucket whose
  /// cumulative count reaches q * total. Returns 0 when empty.
  double PercentileMs(double q) const;

  uint64_t TotalCount() const;

  /// A plain copy of the bucket counts — snapshot material, so percentiles
  /// stay computable after summing snapshots from several histograms
  /// (multi-graph aggregation, retired-service folding).
  std::array<uint64_t, kBuckets> BucketCounts() const;

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
};

/// PercentileMs over raw bucket counts (identical semantics) — for
/// percentiles of merged snapshots.
double LatencyPercentileMs(
    const std::array<uint64_t, LatencyHistogram::kBuckets>& buckets, double q);

/// One traced pipeline stage's latency distribution: bucketed counts for
/// percentiles plus the *exact* microsecond sum for means — the bucketed
/// percentiles carry <= 2x relative error, but means derived from
/// total_us are exact, which is what makes the per-row
/// "stage sums <= total" CI invariant assertable. Filled by
/// ServiceTelemetry when stage tracing is on; all-zero otherwise.
struct StageLatencySnapshot {
  uint64_t count = 0;     ///< completed queries folded into this stage
  uint64_t total_us = 0;  ///< exact sum of stage durations, microseconds
  std::array<uint64_t, LatencyHistogram::kBuckets> buckets{};
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;

  double mean_ms() const {
    return count == 0 ? 0.0
                      : static_cast<double>(total_us) / 1000.0 /
                            static_cast<double>(count);
  }
};

/// Sums counters and buckets of `from` into `into` and recomputes the
/// percentiles from the merged buckets.
void AddStageSnapshot(StageLatencySnapshot& into,
                      const StageLatencySnapshot& from);

/// Point-in-time copy of the service counters. Counters are monotone over
/// the service's lifetime; `queue_depth` is the only gauge (filled by
/// AsyncQueryService::Stats(), not by ServiceStats itself). The raw
/// latency buckets ride along so aggregating layers can sum snapshots and
/// recompute real percentiles (percentiles themselves do not add).
struct ServiceStatsSnapshot {
  uint64_t submitted = 0;    ///< Submit/SubmitTopK calls (including rejected)
  uint64_t rejected = 0;     ///< refused by admission control (queue full)
  uint64_t invalid_plans = 0;  ///< refused at plan resolution (unknown
                               ///< backend / out-of-range overrides) —
                               ///< malformed input, not admission pressure
  uint64_t completed = 0;    ///< queries finished with QueryStatus::kOk
  uint64_t cancelled = 0;    ///< cancelled before computation started
  uint64_t expired = 0;      ///< deadline passed before computation started
  uint64_t cache_hits = 0;   ///< served from a completed cache entry
  uint64_t cache_misses = 0; ///< cache lookups that became the leader
  uint64_t coalesced = 0;    ///< single-flight waits on an in-flight leader
  uint64_t computed = 0;     ///< estimator invocations (never > misses when
                             ///< the cache is enabled)
  uint64_t stolen = 0;       ///< requests executed by a worker other than the
                             ///< submission shard's owner (work stealing)
  uint64_t hedged = 0;       ///< runner-up hedge requests actually fired
                             ///< (a registered hedge whose primary finished
                             ///< before the trigger never counts)
  uint64_t hedge_wins = 0;   ///< completed queries whose result came from
                             ///< the hedge (runner-up) side
  size_t queue_depth = 0;    ///< requests waiting at snapshot time

  uint64_t latency_count = 0;  ///< completed queries in the histogram
  std::array<uint64_t, LatencyHistogram::kBuckets> latency_buckets{};
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;

  /// Per-stage breakdown of the completed-query latency, filled when the
  /// service was built with stage tracing (TelemetryOptions::enabled,
  /// the default). The three stages are disjoint sub-intervals of
  /// [submit, complete] — queue wait (plan-resolved to dequeue), cache
  /// lookup (dequeue to lookup settled), compute (estimator invocation)
  /// — so per query their integer-microsecond durations sum to <= the
  /// total latency; `traced_total_us` is the exact sum of the totals
  /// over the same queries. With tracing off, stage_tracing is false and
  /// the stages are all-zero: exactly the pre-telemetry snapshot.
  bool stage_tracing = false;
  StageLatencySnapshot queue_wait;
  StageLatencySnapshot cache_lookup;
  StageLatencySnapshot compute;
  uint64_t traced_total_us = 0;
};

/// Sums the monotone counters, latency buckets and stage snapshots of
/// `from` into `into` — the aggregation primitive for multi-graph stats,
/// retired-service folding and bench before/after diffs. Gauges
/// (queue_depth) are the caller's concern; call
/// RecomputeSnapshotPercentiles once every part is merged (stage
/// percentiles are recomputed per AddSnapshotCounters call).
void AddSnapshotCounters(ServiceStatsSnapshot& into,
                         const ServiceStatsSnapshot& from);

/// Percentiles do not add; recompute the top-level ones from the merged
/// buckets.
void RecomputeSnapshotPercentiles(ServiceStatsSnapshot& snap);

/// The service's counter block. All methods are thread-safe and wait-free.
class ServiceStats {
 public:
  void RecordSubmitted() { Bump(submitted_); }
  void RecordRejected() { Bump(rejected_); }
  void RecordInvalidPlan() { Bump(invalid_plans_); }
  void RecordCancelled() { Bump(cancelled_); }
  void RecordExpired() { Bump(expired_); }
  void RecordCacheHit() { Bump(cache_hits_); }
  void RecordCacheMiss() { Bump(cache_misses_); }
  void RecordCoalesced() { Bump(coalesced_); }
  void RecordComputed() { Bump(computed_); }

  /// `count` requests were stolen from another worker's submission shard.
  void RecordStolen(uint64_t count) {
    if (count > 0) stolen_.fetch_add(count, std::memory_order_relaxed);
  }

  /// A runner-up hedge request was fired (the primary's elapsed compute
  /// crossed its predicted p95).
  void RecordHedged() { Bump(hedged_); }
  /// A hedged query completed from the hedge (runner-up) side.
  void RecordHedgeWin() { Bump(hedge_wins_); }

  /// One query finished with kOk after `latency_seconds` in the pipeline.
  void RecordCompleted(double latency_seconds) {
    Bump(completed_);
    latency_.Record(latency_seconds);
  }

  /// Folds the counters and histogram percentiles into a snapshot.
  /// `queue_depth` is left at 0 (the service fills it).
  ServiceStatsSnapshot TakeSnapshot() const;

 private:
  static void Bump(std::atomic<uint64_t>& counter) {
    counter.fetch_add(1, std::memory_order_relaxed);
  }

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> invalid_plans_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> cancelled_{0};
  std::atomic<uint64_t> expired_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
  std::atomic<uint64_t> coalesced_{0};
  std::atomic<uint64_t> computed_{0};
  std::atomic<uint64_t> stolen_{0};
  std::atomic<uint64_t> hedged_{0};
  std::atomic<uint64_t> hedge_wins_{0};
  LatencyHistogram latency_;
};

}  // namespace hkpr

#endif  // HKPR_SERVICE_SERVICE_STATS_H_
