// Epoll-based TCP frontend for the hkpr line protocol.
//
// SocketServer accepts many concurrent connections and speaks exactly the
// protocol of examples/hkpr_server.cpp's stdin loop: newline-terminated
// commands in, the CommandProcessor's response text out. Both transports
// call the same CommandProcessor::Execute(), so a command stream produces
// byte-identical responses over a socket and over stdin.
//
// Threading model:
//  - One IO thread runs the epoll loop (level-triggered): it accepts,
//    reads into per-connection buffers, splits complete lines, and owns
//    every socket write. Reads are non-blocking; a partial line simply
//    stays buffered until more bytes arrive.
//  - A small executor pool runs CommandProcessor::Execute(), which blocks
//    on query completion — blocking there must never stall the IO loop.
//    Each connection is worked by at most one executor at a time
//    (`executing` flag), so pipelined commands on one connection execute
//    and respond strictly in order while distinct connections proceed in
//    parallel.
//  - Executors hand finished output back to the IO thread through a flush
//    queue + eventfd wakeup; the IO thread writes it out and arms
//    EPOLLOUT for whatever the kernel buffer refuses.
//
// Backpressure: when a connection's pending write buffer passes
// `read_pause_bytes` the server stops reading from it (a pipelining
// client that never drains responses stops being read); past
// `max_write_buffer_bytes` the connection is dropped. A single line
// larger than `max_line_bytes` gets an error line and the connection is
// closed — the buffer cannot be grown unboundedly by a client that never
// sends '\n'.

#ifndef HKPR_NET_SOCKET_SERVER_H_
#define HKPR_NET_SOCKET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/command_processor.h"

namespace hkpr {

struct SocketServerOptions {
  /// TCP port to listen on; 0 binds an ephemeral port (read it back with
  /// port() after Start — how tests and benches avoid collisions).
  uint16_t port = 0;
  /// Listen address. Loopback by default; widen deliberately.
  std::string bind_address = "127.0.0.1";
  /// Executor threads running (blocking) command execution.
  size_t num_executors = 4;
  /// Longest accepted protocol line (bytes, excluding the newline).
  size_t max_line_bytes = 1 << 20;
  /// Reading from a connection pauses while its write buffer is above
  /// this, resumes below.
  size_t read_pause_bytes = 256 << 10;
  /// A connection whose write buffer exceeds this is dropped.
  size_t max_write_buffer_bytes = 8 << 20;
  /// accept() backlog.
  int listen_backlog = 128;
};

class SocketServer {
 public:
  /// `processor` must outlive the server.
  SocketServer(CommandProcessor& processor, SocketServerOptions options);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds, listens, and starts the IO + executor threads. Returns false
  /// (with the reason in error()) if the socket could not be set up.
  bool Start();

  /// Stops accepting, closes every connection, and joins all threads.
  /// Safe to call twice; the destructor calls it.
  void Stop();

  /// The bound port (resolves option port 0 to the real ephemeral port).
  /// Valid after a successful Start().
  uint16_t port() const { return port_; }

  /// Why Start() failed; empty on success.
  const std::string& error() const { return error_; }

  /// Connections accepted over the server's lifetime.
  uint64_t connections_accepted() const;
  /// Currently open connections.
  size_t connections_active() const;

 private:
  struct Connection {
    int fd = -1;
    std::mutex mu;
    std::string read_buf;             // bytes without a newline yet
    std::deque<std::string> pending;  // complete lines awaiting execution
    std::string write_buf;            // response bytes awaiting the kernel
    ClientSession session;
    bool executing = false;   // an executor is working this connection
    bool want_close = false;  // close once pending + write_buf drain
    bool closed = false;      // fd closed; executors must drop it
    bool read_paused = false;
    bool epollout_armed = false;
  };

  void IoLoop();
  void ExecutorLoop();

  void AcceptPending();
  void HandleReadable(const std::shared_ptr<Connection>& conn);
  /// Splits read_buf into lines, queues them, schedules an executor.
  void QueueLines(const std::shared_ptr<Connection>& conn);
  /// IO-thread-only: writes write_buf to the socket, manages EPOLLOUT and
  /// read-pause state, closes drained want_close connections.
  void FlushWrites(const std::shared_ptr<Connection>& conn);
  void CloseConnection(const std::shared_ptr<Connection>& conn);
  /// Executor -> IO thread: "this connection has new output to flush".
  void RequestFlush(const std::shared_ptr<Connection>& conn);
  void ScheduleLocked(const std::shared_ptr<Connection>& conn);
  void UpdateEpoll(Connection& conn, bool want_in, bool want_out);

  CommandProcessor& processor_;
  const SocketServerOptions options_;
  std::string error_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd the executors signal
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};

  std::thread io_thread_;
  std::vector<std::thread> executors_;

  // Live connections, keyed by fd. IO thread inserts/erases; executors
  // hold shared_ptrs through the work queue.
  mutable std::mutex conns_mu_;
  std::map<int, std::shared_ptr<Connection>> conns_;
  uint64_t accepted_ = 0;

  // Executor work queue: connections with pending lines.
  std::mutex work_mu_;
  std::condition_variable work_cv_;
  std::deque<std::shared_ptr<Connection>> work_;

  // Flush queue: connections with freshly appended output.
  std::mutex flush_mu_;
  std::deque<std::shared_ptr<Connection>> flush_;
};

}  // namespace hkpr

#endif  // HKPR_NET_SOCKET_SERVER_H_
