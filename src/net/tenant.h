// Multi-tenant admission control for the serving frontends.
//
// Every protocol session (a socket connection or the stdin loop) is
// mapped onto a tenant — by the `tenant <id>` handshake or a per-line
// `tenant=` token — and every query passes this registry's Admit() gate
// *before* it reaches the query service's own admission control. Three
// per-tenant policies compose at that boundary:
//
//  - Token-bucket rate limit: `rate_qps` tokens per second refill into a
//    bucket of `burst` capacity; a query spends one token or is rejected
//    with kThrottled (a distinct protocol error, so a throttled tenant is
//    never confused with global overload).
//  - In-flight quota: at most `max_in_flight` of the tenant's queries may
//    be between Admit() and OnComplete() at once — one tenant opening
//    many connections cannot occupy every worker.
//  - Priority class: low/normal-priority tenants are shed while the
//    target service's queue is under pressure (kShedLoad), high-priority
//    tenants ride the service's own admission control to the end. The
//    thresholds map onto the *existing* queue-depth gate: priority
//    changes when a tenant starts being rejected, never the global cap.
//
// The registry also keeps per-tenant serving stats (admitted / throttled
// / quota / shed / completed counters and a latency histogram) — the rows
// behind the server's `tenant list` command and the
// `hkpr_tenant_*{tenant="..."}` metrics exposition.
//
// All methods are thread-safe; Admit/OnComplete take one short mutex
// (serving cost is dominated by the query compute, not this gate).

#ifndef HKPR_NET_TENANT_H_
#define HKPR_NET_TENANT_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "service/service_stats.h"

namespace hkpr {

/// The tenant every session starts in (unlimited unless reconfigured).
inline constexpr std::string_view kDefaultTenant = "default";

enum class TenantPriority : uint8_t { kLow = 0, kNormal = 1, kHigh = 2 };

/// Printable name ("low", "normal", "high").
const char* TenantPriorityName(TenantPriority priority);
/// Reverse of TenantPriorityName; nullopt for unknown names.
std::optional<TenantPriority> ParseTenantPriority(std::string_view name);

/// One tenant's QoS knobs. The defaults are "unlimited": a tenant that
/// was never configured is admitted unconditionally.
struct TenantQosConfig {
  /// Token-bucket refill rate in queries/second; 0 disables rate
  /// limiting for the tenant.
  double rate_qps = 0.0;
  /// Bucket capacity: the largest burst admitted from a full bucket.
  double burst = 32.0;
  /// Cap on the tenant's concurrently in-flight queries; 0 = unlimited.
  size_t max_in_flight = 0;
  TenantPriority priority = TenantPriority::kHigh;
};

/// Outcome of the tenant admission gate.
enum class TenantAdmission : uint8_t {
  kAdmitted = 0,
  kThrottled,      ///< token bucket empty (rate limit)
  kQuotaExceeded,  ///< too many of the tenant's queries in flight
  kShedLoad,       ///< queue pressure too high for the tenant's priority
};

/// Printable name ("admitted", "throttled", ...).
const char* TenantAdmissionName(TenantAdmission admission);

/// Queue-pressure shed thresholds per priority class, as fractions of the
/// service's max_queue_depth: a tenant is shed when the target service's
/// queue is at or above its class threshold. High priority is 1.0 — only
/// the service's own admission control rejects it.
inline constexpr double kLowPriorityShedFraction = 0.25;
inline constexpr double kNormalPriorityShedFraction = 0.75;

/// Point-in-time copy of one tenant's counters.
struct TenantStatsSnapshot {
  std::string tenant;
  TenantQosConfig config;
  uint64_t admitted = 0;
  uint64_t throttled = 0;
  uint64_t quota_rejected = 0;
  uint64_t shed = 0;
  uint64_t completed = 0;  ///< queries that came back kOk
  uint64_t failed = 0;     ///< admitted but finished non-kOk
  size_t in_flight = 0;
  uint64_t latency_count = 0;
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
};

/// The registry of tenants and their admission state.
class TenantRegistry {
 public:
  using Clock = std::chrono::steady_clock;

  TenantRegistry() = default;

  TenantRegistry(const TenantRegistry&) = delete;
  TenantRegistry& operator=(const TenantRegistry&) = delete;

  /// Creates or replaces `tenant`'s QoS config. A reconfigured tenant's
  /// bucket refills to the new burst (full) so tightening a limit never
  /// instantly rejects, and its counters/in-flight carry over.
  void Configure(std::string_view tenant, const TenantQosConfig& config);

  /// The tenant's current config (the unlimited default when never
  /// configured).
  TenantQosConfig ConfigFor(std::string_view tenant) const;

  /// True when `tenant` has been configured or has served traffic.
  bool Contains(std::string_view tenant) const;

  /// The admission gate: refills the tenant's bucket at `now`, then
  /// checks priority shed (against `queue_depth` / `max_queue_depth` of
  /// the service the query is headed for), the in-flight quota, and the
  /// rate limit, in that order. kAdmitted takes one token and counts the
  /// query in flight — the caller MUST pair it with OnComplete().
  /// Unknown tenants are created with the default (unlimited) config.
  TenantAdmission Admit(std::string_view tenant, size_t queue_depth,
                        size_t max_queue_depth, Clock::time_point now);
  TenantAdmission Admit(std::string_view tenant, size_t queue_depth,
                        size_t max_queue_depth) {
    return Admit(tenant, queue_depth, max_queue_depth, Clock::now());
  }

  /// Settles one admitted query: decrements in-flight and records the
  /// outcome (`ok` -> completed + latency histogram; else failed).
  void OnComplete(std::string_view tenant, bool ok, double latency_seconds);

  /// One tenant's counters; a default-constructed snapshot (zero counts,
  /// default config) for unknown names.
  TenantStatsSnapshot StatsFor(std::string_view tenant) const;

  /// Every known tenant's counters, sorted by tenant id.
  std::vector<TenantStatsSnapshot> Snapshot() const;

 private:
  struct TenantState {
    TenantQosConfig config;
    double tokens = 0.0;  ///< current bucket fill
    Clock::time_point last_refill{};
    bool bucket_started = false;  ///< first Admit initializes the bucket
    size_t in_flight = 0;
    uint64_t admitted = 0;
    uint64_t throttled = 0;
    uint64_t quota_rejected = 0;
    uint64_t shed = 0;
    uint64_t completed = 0;
    uint64_t failed = 0;
    LatencyHistogram latency;
  };

  TenantState& StateFor(std::string_view tenant);  // mu_ held
  static TenantStatsSnapshot SnapshotOf(const std::string& name,
                                        const TenantState& state);

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<TenantState>, std::less<>> tenants_;
};

}  // namespace hkpr

#endif  // HKPR_NET_TENANT_H_
