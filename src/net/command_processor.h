// The hkpr line-protocol command dispatcher, shared by every frontend.
//
// Historically the protocol loop lived inside examples/hkpr_server.cpp
// and wrote straight to stdout, which made it unusable from a socket
// server. CommandProcessor factors that dispatch into a library class:
// Execute() takes one protocol line plus the issuing session's state and
// returns the complete response text. The stdin loop and the socket
// connections (net/socket_server.h) call the *same* Execute(), so the two
// transports produce byte-identical responses for the same command
// stream — the parity the protocol tests assert.
//
// Session state (the `current` graph and the tenant id) is per caller: a
// ClientSession per socket connection, one for the stdin loop. Everything
// else (the GraphStore, MultiGraphService, TenantRegistry) is shared and
// thread-safe, so Execute() may be called concurrently from many
// sessions.
//
// Multi-tenant QoS: query/topk lines pass the TenantRegistry's admission
// gate (token-bucket rate limit, in-flight quota, priority shed — see
// net/tenant.h) *before* reaching the query service, and rejections
// surface as distinct protocol errors ("err tenant-throttled ...",
// "err tenant-quota ...", "err tenant-shed ...") so a throttled tenant
// can tell its own limit from global overload. Sessions bind to a tenant
// with the `tenant <id>` handshake or per line with a `tenant=` token;
// `tenant set` configures limits and `tenant list` exposes the
// per-tenant stats rows, which `metrics` also exports as
// hkpr_tenant_*{tenant="..."} samples.
//
// Protocol commands: query, topk, graph load/use/drop/list, backend,
// params, tenant, stats, router, metrics, invalidate, quit/exit — see
// examples/hkpr_server.cpp's usage comment for the full grammar.

#ifndef HKPR_NET_COMMAND_PROCESSOR_H_
#define HKPR_NET_COMMAND_PROCESSOR_H_

#include <sstream>
#include <string>
#include <string_view>

#include "hkpr/params.h"
#include "hkpr/router.h"
#include "net/tenant.h"
#include "service/graph_store.h"
#include "service/multi_graph_service.h"

namespace hkpr {

/// Per-connection protocol state. Each transport session owns one; the
/// processor never shares it across sessions.
struct ClientSession {
  /// The graph query/topk lines run against (graph use / graph load).
  std::string current_graph;
  /// The tenant the session's queries are accounted to (tenant <id>).
  std::string tenant = std::string(kDefaultTenant);
};

/// One executed command's outcome.
struct CommandResult {
  /// Complete response text; one or more '\n'-terminated lines (multi-
  /// line for stats --json-less metrics/router/tenant list blocks).
  /// Empty for blank input lines.
  std::string output;
  /// True when the line was `quit`/`exit`: the transport should end the
  /// session (close the connection; the stdin loop returns).
  bool quit = false;
};

/// Parses the trailing key=value plan tokens of a query/params line
/// (backend=NAME|auto, t=V, eps=V, delta=V, and — when `tenant` is
/// non-null — tenant=ID) into `plan`. Returns false — and fills `error` —
/// on an unknown key, a token without '=', an empty value ("t="), a
/// duplicated key ("t=1 t=2"), a malformed number, or an unregistered
/// backend name. Exposed for the regression tests of exactly those edge
/// cases.
bool ParsePlanTokens(std::istringstream& in, PlanOverrides* plan,
                     std::string* tenant, std::string* error);

/// The shared dispatcher. Thread-safe: Execute() may run concurrently
/// for distinct sessions (a single session must be driven by one thread
/// at a time — transports serialize per connection).
class CommandProcessor {
 public:
  /// `store` and `service` (and `tenants`) must outlive the processor.
  /// `initial_graph` seeds NewSession()'s current graph; `params` is the
  /// service-wide parameter template (metrics/router displays and params
  /// validation).
  CommandProcessor(GraphStore& store, MultiGraphService& service,
                   TenantRegistry& tenants, const ApproxParams& params,
                   std::string initial_graph);

  CommandProcessor(const CommandProcessor&) = delete;
  CommandProcessor& operator=(const CommandProcessor&) = delete;

  /// A fresh session bound to the initial graph and the default tenant.
  ClientSession NewSession() const;

  /// Executes one protocol line and returns its response. Never throws;
  /// malformed input yields an "err ..." line.
  CommandResult Execute(ClientSession& session, const std::string& line);

  TenantRegistry& tenants() { return tenants_; }

 private:
  // One handler per command; each appends its '\n'-terminated response
  // lines to `out`.
  void ExecuteQuery(ClientSession& session, const std::string& command,
                    std::istringstream& in, std::string& out);
  void ExecuteGraph(ClientSession& session, std::istringstream& in,
                    std::string& out);
  void ExecuteBackend(std::istringstream& in, std::string& out);
  void ExecuteParams(std::istringstream& in, std::string& out);
  void ExecuteTenant(ClientSession& session, std::istringstream& in,
                     std::string& out);
  void ExecuteStats(std::istringstream& in, std::string& out);
  void ExecuteRouter(ClientSession& session, std::istringstream& in,
                     std::string& out);
  void ExecuteMetrics(std::string& out);

  /// The metrics block for one graph scope; returns the sample-line count.
  size_t AppendMetricsForScope(const std::string& scope, std::string& out);
  /// The per-tenant metrics rows; returns the sample-line count.
  size_t AppendTenantMetrics(std::string& out);

  GraphStore& store_;
  MultiGraphService& service_;
  TenantRegistry& tenants_;
  ApproxParams params_;
  std::string initial_graph_;
};

}  // namespace hkpr

#endif  // HKPR_NET_COMMAND_PROCESSOR_H_
