#include "net/command_processor.h"

#include <cstdarg>
#include <cstdio>
#include <optional>
#include <utility>
#include <vector>

#include "common/parse.h"
#include "graph/graph_io.h"
#include "hkpr/backend.h"
#include "hkpr/cost_model.h"
#include "service/telemetry.h"

namespace hkpr {

namespace {

/// printf-style append onto a growing response string.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 2, 3)))
#endif
void Appendf(std::string& out, const char* fmt, ...) {
  char stack_buf[512];
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(stack_buf, sizeof(stack_buf), fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return;
  }
  if (static_cast<size_t>(needed) < sizeof(stack_buf)) {
    out.append(stack_buf, static_cast<size_t>(needed));
  } else {
    std::vector<char> heap_buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(heap_buf.data(), heap_buf.size(), fmt, args_copy);
    out.append(heap_buf.data(), static_cast<size_t>(needed));
  }
  va_end(args_copy);
}

std::string AvailableBackends() {
  return EstimatorRegistry::Global().JoinedNames();
}

/// True when `name` is servable as a default/override backend: a registry
/// name or the routing sentinel.
bool KnownBackend(const std::string& name) {
  return name == kAutoBackend || EstimatorRegistry::Global().Contains(name);
}

std::string JoinNames(const std::vector<GraphInfo>& infos) {
  std::string joined;
  for (const GraphInfo& info : infos) {
    if (!joined.empty()) joined += ",";
    joined += info.name;
  }
  return joined.empty() ? "(none)" : joined;
}

/// Formats one override for the params display ("default" when unset).
std::string FmtOverride(const std::optional<double>& value) {
  if (!value.has_value()) return "default";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", *value);
  return buf;
}

/// Appends the full-field single-line `stats` reply: every
/// ServiceStatsSnapshot counter (the operator view must never silently
/// lose a field — asserted by the protocol test), the stage breakdown
/// when tracing is on, and the service-wide reject counters for the
/// aggregate scope (`service` non-null).
void AppendStatsLine(std::string& out, const std::string& scope,
                     const ServiceStatsSnapshot& s,
                     const MultiGraphService* service) {
  Appendf(out,
          "ok scope=%s submitted=%llu completed=%llu rejected=%llu "
          "invalid_plans=%llu cancelled=%llu expired=%llu "
          "cache_hits=%llu cache_misses=%llu coalesced=%llu computed=%llu "
          "stolen=%llu hedged=%llu hedge_wins=%llu queue=%zu "
          "latency_count=%llu",
          scope.c_str(), static_cast<unsigned long long>(s.submitted),
          static_cast<unsigned long long>(s.completed),
          static_cast<unsigned long long>(s.rejected),
          static_cast<unsigned long long>(s.invalid_plans),
          static_cast<unsigned long long>(s.cancelled),
          static_cast<unsigned long long>(s.expired),
          static_cast<unsigned long long>(s.cache_hits),
          static_cast<unsigned long long>(s.cache_misses),
          static_cast<unsigned long long>(s.coalesced),
          static_cast<unsigned long long>(s.computed),
          static_cast<unsigned long long>(s.stolen),
          static_cast<unsigned long long>(s.hedged),
          static_cast<unsigned long long>(s.hedge_wins), s.queue_depth,
          static_cast<unsigned long long>(s.latency_count));
  if (service != nullptr) {
    // Service-wide, not attributable to any one graph.
    Appendf(out, " unknown_graph=%llu invalid_argument=%llu",
            static_cast<unsigned long long>(service->unknown_graph_rejects()),
            static_cast<unsigned long long>(
                service->invalid_argument_rejects()));
  }
  Appendf(out, " p50_ms=%.3f p95_ms=%.3f p99_ms=%.3f", s.latency_p50_ms,
          s.latency_p95_ms, s.latency_p99_ms);
  if (s.stage_tracing) {
    Appendf(out,
            " queue_wait_mean_ms=%.3f queue_wait_p50_ms=%.3f "
            "queue_wait_p99_ms=%.3f cache_mean_ms=%.3f cache_p50_ms=%.3f "
            "cache_p99_ms=%.3f compute_mean_ms=%.3f compute_p50_ms=%.3f "
            "compute_p99_ms=%.3f",
            s.queue_wait.mean_ms(), s.queue_wait.p50_ms, s.queue_wait.p99_ms,
            s.cache_lookup.mean_ms(), s.cache_lookup.p50_ms,
            s.cache_lookup.p99_ms, s.compute.mean_ms(), s.compute.p50_ms,
            s.compute.p99_ms);
  }
  out += "\n";
}

void AppendJsonField(std::string& out, const char* key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%.6g", key, value);
  if (out.back() != '{') out += ",";
  out += buf;
}

void AppendJsonField(std::string& out, const char* key,
                     unsigned long long value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%llu", key, value);
  if (out.back() != '{') out += ",";
  out += buf;
}

void AppendJsonStage(std::string& out, const char* key,
                     const StageLatencySnapshot& stage) {
  if (out.back() != '{') out += ",";
  out += "\"";
  out += key;
  out += "\":{";
  AppendJsonField(out, "count", static_cast<unsigned long long>(stage.count));
  AppendJsonField(out, "total_us",
                  static_cast<unsigned long long>(stage.total_us));
  AppendJsonField(out, "mean_ms", stage.mean_ms());
  AppendJsonField(out, "p50_ms", stage.p50_ms);
  AppendJsonField(out, "p95_ms", stage.p95_ms);
  AppendJsonField(out, "p99_ms", stage.p99_ms);
  out += "}";
}

/// The `stats --json` body: one JSON object per line, machine-parseable
/// twin of AppendStatsLine with the same field set.
std::string StatsJson(const std::string& scope, const ServiceStatsSnapshot& s,
                      const MultiGraphService* service) {
  std::string out = "{\"scope\":\"" + scope + "\"";
  const auto u64 = [](uint64_t v) {
    return static_cast<unsigned long long>(v);
  };
  AppendJsonField(out, "submitted", u64(s.submitted));
  AppendJsonField(out, "completed", u64(s.completed));
  AppendJsonField(out, "rejected", u64(s.rejected));
  AppendJsonField(out, "invalid_plans", u64(s.invalid_plans));
  AppendJsonField(out, "cancelled", u64(s.cancelled));
  AppendJsonField(out, "expired", u64(s.expired));
  AppendJsonField(out, "cache_hits", u64(s.cache_hits));
  AppendJsonField(out, "cache_misses", u64(s.cache_misses));
  AppendJsonField(out, "coalesced", u64(s.coalesced));
  AppendJsonField(out, "computed", u64(s.computed));
  AppendJsonField(out, "stolen", u64(s.stolen));
  AppendJsonField(out, "hedged", u64(s.hedged));
  AppendJsonField(out, "hedge_wins", u64(s.hedge_wins));
  AppendJsonField(out, "queue_depth", u64(s.queue_depth));
  AppendJsonField(out, "latency_count", u64(s.latency_count));
  if (service != nullptr) {
    AppendJsonField(out, "unknown_graph",
                    u64(service->unknown_graph_rejects()));
    AppendJsonField(out, "invalid_argument",
                    u64(service->invalid_argument_rejects()));
  }
  AppendJsonField(out, "p50_ms", s.latency_p50_ms);
  AppendJsonField(out, "p95_ms", s.latency_p95_ms);
  AppendJsonField(out, "p99_ms", s.latency_p99_ms);
  if (s.stage_tracing) {
    out += ",\"stages\":{";
    AppendJsonStage(out, "queue_wait", s.queue_wait);
    AppendJsonStage(out, "cache", s.cache_lookup);
    AppendJsonStage(out, "compute", s.compute);
    out += "}";
    AppendJsonField(out, "traced_total_us", u64(s.traced_total_us));
  }
  out += "}";
  return out;
}

/// One Prometheus-style sample line: name{<label>="...",...} value.
void AppendMetricLine(std::string& out, const char* name, const char* label,
                      const std::string& scope,
                      const std::string& extra_labels, double value) {
  if (extra_labels.empty()) {
    Appendf(out, "%s{%s=\"%s\"} %.6g\n", name, label, scope.c_str(), value);
  } else {
    Appendf(out, "%s{%s=\"%s\",%s} %.6g\n", name, label, scope.c_str(),
            extra_labels.c_str(), value);
  }
}

/// Integer-valued samples (counters, gauges) print exactly — %.6g would
/// round large counters.
void AppendMetricLine(std::string& out, const char* name, const char* label,
                      const std::string& scope,
                      const std::string& extra_labels, uint64_t value) {
  if (extra_labels.empty()) {
    Appendf(out, "%s{%s=\"%s\"} %llu\n", name, label, scope.c_str(),
            static_cast<unsigned long long>(value));
  } else {
    Appendf(out, "%s{%s=\"%s\",%s} %llu\n", name, label, scope.c_str(),
            extra_labels.c_str(), static_cast<unsigned long long>(value));
  }
}

/// A representative routing query for introspection displays: the
/// graph's scale features with an average-degree seed and the serving
/// params — what the cost model predicts for a "typical" query.
RoutingQuery AverageRoutingQuery(const GraphSnapshot& snapshot,
                                 const ApproxParams& params) {
  const GraphScaleFeatures scale = GraphScaleFeatures::Of(*snapshot.graph);
  RoutingQuery query;
  query.seed = 0;
  query.seed_degree = static_cast<uint32_t>(scale.avg_degree + 0.5);
  query.num_nodes = scale.num_nodes;
  query.num_edges = scale.num_edges;
  query.avg_degree = scale.avg_degree;
  query.params = params;
  return query;
}

}  // namespace

bool ParsePlanTokens(std::istringstream& in, PlanOverrides* plan,
                     std::string* tenant, std::string* error) {
  std::string token;
  bool seen_backend = false;
  bool seen_t = false;
  bool seen_eps = false;
  bool seen_delta = false;
  bool seen_tenant = false;
  const char* expected = tenant != nullptr
                             ? "backend=NAME|auto, t=V, eps=V, delta=V, "
                               "tenant=ID"
                             : "backend=NAME|auto, t=V, eps=V, delta=V";
  while (in >> token) {
    const size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      *error = "unknown token \"" + token + "\" (expected " + expected + ")";
      return false;
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    const bool known_key = key == "backend" || key == "t" || key == "eps" ||
                           key == "delta" ||
                           (tenant != nullptr && key == "tenant");
    if (!known_key) {
      *error = "unknown token \"" + token + "\" (expected " + expected + ")";
      return false;
    }
    // Hardened edge cases: an empty value ("t=") and a repeated key
    // ("t=1 t=2") are each a clear error, never skipped or last-wins.
    if (value.empty()) {
      *error = "empty value in \"" + token + "\" (expected " + key + "=...)";
      return false;
    }
    bool* seen = key == "backend"  ? &seen_backend
                 : key == "t"      ? &seen_t
                 : key == "eps"    ? &seen_eps
                 : key == "delta"  ? &seen_delta
                                   : &seen_tenant;
    if (*seen) {
      *error = "duplicate key \"" + key + "\" in \"" + token + "\"";
      return false;
    }
    *seen = true;
    if (key == "backend") {
      plan->backend = value;
      if (!KnownBackend(plan->backend)) {
        *error = "unknown backend \"" + plan->backend +
                 "\" (available: auto," + AvailableBackends() + ")";
        return false;
      }
    } else if (key == "tenant") {
      *tenant = value;
    } else {
      const std::optional<double> parsed = ParseDouble(value);
      if (!parsed.has_value()) {
        *error = "malformed value in \"" + token + "\"";
        return false;
      }
      if (key == "t") {
        plan->t = *parsed;
      } else if (key == "eps") {
        plan->eps_r = *parsed;
      } else {
        plan->delta = *parsed;
      }
    }
  }
  return true;
}

CommandProcessor::CommandProcessor(GraphStore& store,
                                   MultiGraphService& service,
                                   TenantRegistry& tenants,
                                   const ApproxParams& params,
                                   std::string initial_graph)
    : store_(store),
      service_(service),
      tenants_(tenants),
      params_(params),
      initial_graph_(std::move(initial_graph)) {}

ClientSession CommandProcessor::NewSession() const {
  ClientSession session;
  session.current_graph = initial_graph_;
  return session;
}

CommandResult CommandProcessor::Execute(ClientSession& session,
                                        const std::string& line) {
  CommandResult result;
  std::istringstream in(line);
  std::string command;
  in >> command;
  if (command.empty()) return result;
  if (command == "quit" || command == "exit") {
    result.quit = true;
    return result;
  }

  std::string& out = result.output;
  if (command == "query" || command == "topk") {
    ExecuteQuery(session, command, in, out);
  } else if (command == "graph") {
    ExecuteGraph(session, in, out);
  } else if (command == "backend") {
    ExecuteBackend(in, out);
  } else if (command == "params") {
    ExecuteParams(in, out);
  } else if (command == "tenant") {
    ExecuteTenant(session, in, out);
  } else if (command == "stats") {
    ExecuteStats(in, out);
  } else if (command == "router") {
    ExecuteRouter(session, in, out);
  } else if (command == "metrics") {
    ExecuteMetrics(out);
  } else if (command == "invalidate") {
    service_.InvalidateCaches();
    out += "ok caches invalidated\n";
  } else {
    Appendf(out,
            "err unknown command \"%s\" (query/topk/graph/backend/router/"
            "params/tenant/stats/metrics/invalidate/quit)\n",
            command.c_str());
  }
  return result;
}

void CommandProcessor::ExecuteQuery(ClientSession& session,
                                    const std::string& command,
                                    std::istringstream& in, std::string& out) {
  const GraphSnapshot snapshot = store_.Get(session.current_graph);
  if (!snapshot) {
    Appendf(out, "err unknown graph \"%s\" (graph load/use first)\n",
            session.current_graph.c_str());
    return;
  }
  long long seed_node = -1;
  long long k = 10;
  // A failed extraction writes 0 (C++11), which is a valid node id —
  // restore the sentinel so "query" with no/garbage argument errs.
  if (!(in >> seed_node)) seed_node = -1;
  if (command == "topk" && !(in >> k)) k = -1;
  if (seed_node < 0 || seed_node >= snapshot.graph->NumNodes() || k <= 0) {
    Appendf(out,
            "err usage: %s <seed in [0,%u)>%s [backend=NAME|auto] "
            "[t=V] [eps=V] [delta=V] [tenant=ID]\n",
            command.c_str(), snapshot.graph->NumNodes(),
            command == "topk" ? " <k >= 1>" : "");
    return;
  }
  SubmitOptions submit;
  std::string tenant = session.tenant;
  std::string token_error;
  if (!ParsePlanTokens(in, &submit.plan, &tenant, &token_error)) {
    Appendf(out, "err %s\n", token_error.c_str());
    return;
  }

  // Tenant QoS gate, at the same boundary the service's own admission
  // control runs: the current queue depth of the graph's service against
  // the configured cap.
  const std::shared_ptr<AsyncQueryService> graph_service =
      service_.ServiceFor(session.current_graph);
  const size_t queue_depth =
      graph_service != nullptr ? graph_service->queue_depth() : 0;
  const size_t max_depth = service_.options().service.max_queue_depth;
  const TenantAdmission admission =
      tenants_.Admit(tenant, queue_depth, max_depth);
  switch (admission) {
    case TenantAdmission::kAdmitted:
      break;
    case TenantAdmission::kThrottled:
      Appendf(out, "err tenant-throttled tenant=%s (rate limit %.6g qps)\n",
              tenant.c_str(), tenants_.ConfigFor(tenant).rate_qps);
      return;
    case TenantAdmission::kQuotaExceeded:
      Appendf(out, "err tenant-quota tenant=%s (max %zu in flight)\n",
              tenant.c_str(), tenants_.ConfigFor(tenant).max_in_flight);
      return;
    case TenantAdmission::kShedLoad:
      Appendf(out,
              "err tenant-shed tenant=%s (queue depth %zu, priority=%s)\n",
              tenant.c_str(), queue_depth,
              TenantPriorityName(tenants_.ConfigFor(tenant).priority));
      return;
  }

  const NodeId node = static_cast<NodeId>(seed_node);
  QueryHandle handle =
      command == "query"
          ? service_.Submit(session.current_graph, node, submit)
          : service_.SubmitTopK(session.current_graph, node,
                                static_cast<size_t>(k), submit);
  const QueryResult result = handle.result.get();
  tenants_.OnComplete(tenant, result.status == QueryStatus::kOk,
                      result.latency_ms / 1000.0);
  if (result.status != QueryStatus::kOk) {
    if (result.status == QueryStatus::kUnknownGraph) {
      Appendf(out, "err unknown graph \"%s\" (dropped concurrently?)\n",
              session.current_graph.c_str());
    } else {
      Appendf(out, "err status=%s\n", QueryStatusName(result.status));
    }
  } else if (command == "query") {
    Appendf(out,
            "ok graph=%s version=%llu seed=%u backend=%s nnz=%zu "
            "sum=%.6f cache=%s latency_ms=%.3f\n",
            session.current_graph.c_str(),
            static_cast<unsigned long long>(result.graph_version), node,
            result.backend.c_str(), result.estimate->nnz(),
            result.estimate->Sum(), result.from_cache ? "hit" : "miss",
            result.latency_ms);
  } else {
    Appendf(out, "ok graph=%s version=%llu seed=%u backend=%s k=%zu cache=%s",
            session.current_graph.c_str(),
            static_cast<unsigned long long>(result.graph_version), node,
            result.backend.c_str(), result.top_k.size(),
            result.from_cache ? "hit" : "miss");
    for (const ScoredNode& s : result.top_k) {
      Appendf(out, " %u:%.6g", s.node, s.score);
    }
    out += "\n";
  }
}

void CommandProcessor::ExecuteGraph(ClientSession& session,
                                    std::istringstream& in, std::string& out) {
  std::string sub;
  in >> sub;
  if (sub == "load") {
    std::string name, path;
    in >> name >> path;
    if (name.empty() || path.empty()) {
      out += "err usage: graph load <name> <path>\n";
    } else {
      Result<Graph> loaded = LoadEdgeList(path);
      if (!loaded.ok()) {
        Appendf(out, "err cannot load %s: %s\n", path.c_str(),
                loaded.status().ToString().c_str());
      } else {
        Graph graph = std::move(loaded).value();
        const uint32_t n = graph.NumNodes();
        const uint64_t m = graph.NumEdges();
        const uint64_t version = service_.Publish(name, std::move(graph));
        // Adopt the loaded graph when the current one is gone (e.g.
        // dropped), so load restores queryability without a `use`.
        if (session.current_graph.empty() ||
            !store_.Contains(session.current_graph)) {
          session.current_graph = name;
        }
        Appendf(out, "ok graph=%s version=%llu nodes=%u edges=%llu\n",
                name.c_str(), static_cast<unsigned long long>(version), n,
                static_cast<unsigned long long>(m));
      }
    }
  } else if (sub == "use") {
    std::string name;
    in >> name;
    if (name.empty()) {
      out += "err usage: graph use <name>\n";
    } else if (!store_.Contains(name)) {
      // An unknown (e.g. dropped) name is an error, never a silent
      // fallback to the previous graph.
      Appendf(out, "err unknown graph \"%s\" (loaded: %s)\n", name.c_str(),
              JoinNames(store_.List()).c_str());
    } else {
      session.current_graph = name;
      const GraphSnapshot snapshot = store_.Get(name);
      Appendf(out, "ok graph=%s version=%llu nodes=%u\n", name.c_str(),
              static_cast<unsigned long long>(snapshot.version),
              snapshot.graph->NumNodes());
    }
  } else if (sub == "drop") {
    std::string name;
    in >> name;
    if (name.empty()) {
      out += "err usage: graph drop <name>\n";
    } else if (!service_.Drop(name)) {
      Appendf(out, "err unknown graph \"%s\" (loaded: %s)\n", name.c_str(),
              JoinNames(store_.List()).c_str());
    } else {
      // The session's current graph intentionally keeps pointing at the
      // dropped name: later queries err until `graph use` (or a `graph
      // load`, which adopts its graph when the current one is gone).
      Appendf(out, "ok dropped=%s\n", name.c_str());
    }
  } else if (sub == "list") {
    const std::vector<GraphInfo> infos = store_.List();
    Appendf(out, "ok graphs=%zu", infos.size());
    for (const GraphInfo& info : infos) {
      Appendf(out, " %s:v%llu:n%u:m%llu%s", info.name.c_str(),
              static_cast<unsigned long long>(info.version), info.nodes,
              static_cast<unsigned long long>(info.edges),
              info.name == session.current_graph ? ":current" : "");
    }
    out += "\n";
  } else {
    out += "err usage: graph load|use|drop|list\n";
  }
}

void CommandProcessor::ExecuteBackend(std::istringstream& in,
                                      std::string& out) {
  std::string name;
  in >> name;
  if (name.empty()) {
    Appendf(out, "ok backend=%s available=auto,%s\n",
            service_.default_backend().c_str(), AvailableBackends().c_str());
  } else if (!service_.SetDefaultBackend(name)) {
    Appendf(out, "err unknown backend \"%s\" (available: auto,%s)\n",
            name.c_str(), AvailableBackends().c_str());
  } else {
    // A live config update: every per-graph service keeps its workers
    // and queue — in-flight queries finish on the plan they were
    // submitted with, later ones resolve against the new default, and
    // plan-keyed caching means no invalidation is needed.
    Appendf(out, "ok backend=%s graphs=%zu\n", name.c_str(), store_.Size());
  }
}

void CommandProcessor::ExecuteParams(std::istringstream& in,
                                     std::string& out) {
  std::string name;
  in >> name;
  if (name.empty()) {
    out += "err usage: params <graph> [clear] [backend=NAME|auto] "
           "[t=V] [eps=V] [delta=V]\n";
    return;
  }
  if (!store_.Contains(name)) {
    Appendf(out, "err unknown graph \"%s\" (loaded: %s)\n", name.c_str(),
            JoinNames(store_.List()).c_str());
    return;
  }
  PlanOverrides overrides;
  std::string token_error;
  std::string first;
  const auto rest = in.tellg();
  in >> first;
  const bool clear = first == "clear";
  const bool show = first.empty();
  if (!clear && !show) in.seekg(rest);
  if (!clear && !show &&
      !ParsePlanTokens(in, &overrides, nullptr, &token_error)) {
    Appendf(out, "err %s\n", token_error.c_str());
    return;
  }
  if (!clear && !show &&
      !ServableParams(ApplyParamOverrides(params_, overrides))) {
    out += "err params out of range (t in (0,1000], eps in (0,1), "
           "delta > 0)\n";
    return;
  }
  if (show) {
    overrides = service_.GraphDefaults(name);
  } else if (!service_.SetGraphDefaults(name, overrides)) {
    // Raced with a concurrent drop — report like any unknown graph.
    Appendf(out, "err unknown graph \"%s\" (loaded: %s)\n", name.c_str(),
            JoinNames(store_.List()).c_str());
    return;
  }
  Appendf(out, "ok graph=%s backend=%s t=%s eps=%s delta=%s\n", name.c_str(),
          overrides.backend.empty() ? "default" : overrides.backend.c_str(),
          FmtOverride(overrides.t).c_str(), FmtOverride(overrides.eps_r).c_str(),
          FmtOverride(overrides.delta).c_str());
}

void CommandProcessor::ExecuteTenant(ClientSession& session,
                                     std::istringstream& in,
                                     std::string& out) {
  std::string sub;
  in >> sub;
  if (sub.empty()) {
    Appendf(out, "ok tenant=%s\n", session.tenant.c_str());
    return;
  }
  if (sub == "list") {
    const std::vector<TenantStatsSnapshot> rows = tenants_.Snapshot();
    for (const TenantStatsSnapshot& r : rows) {
      Appendf(out,
              "tenant=%s priority=%s rate_qps=%.6g burst=%.6g quota=%zu "
              "in_flight=%zu admitted=%llu throttled=%llu "
              "quota_rejected=%llu shed=%llu completed=%llu failed=%llu "
              "p50_ms=%.3f p95_ms=%.3f p99_ms=%.3f\n",
              r.tenant.c_str(), TenantPriorityName(r.config.priority),
              r.config.rate_qps, r.config.burst, r.config.max_in_flight,
              r.in_flight, static_cast<unsigned long long>(r.admitted),
              static_cast<unsigned long long>(r.throttled),
              static_cast<unsigned long long>(r.quota_rejected),
              static_cast<unsigned long long>(r.shed),
              static_cast<unsigned long long>(r.completed),
              static_cast<unsigned long long>(r.failed), r.latency_p50_ms,
              r.latency_p95_ms, r.latency_p99_ms);
    }
    Appendf(out, "ok tenants=%zu\n", rows.size());
    return;
  }
  if (sub == "set") {
    std::string name;
    in >> name;
    if (name.empty()) {
      out += "err usage: tenant set <id> [rate=QPS] [burst=N] [quota=N] "
             "[priority=low|normal|high]\n";
      return;
    }
    TenantQosConfig config = tenants_.ConfigFor(name);
    std::string token;
    bool any = false;
    while (in >> token) {
      const size_t eq = token.find('=');
      const std::string key =
          eq == std::string::npos ? token : token.substr(0, eq);
      const std::string value =
          eq == std::string::npos ? "" : token.substr(eq + 1);
      if (eq == std::string::npos || value.empty()) {
        Appendf(out, "err empty value in \"%s\" (expected key=value)\n",
                token.c_str());
        return;
      }
      if (key == "rate") {
        const std::optional<double> rate = ParseDouble(value);
        if (!rate.has_value() || *rate < 0.0) {
          Appendf(out, "err malformed value in \"%s\"\n", token.c_str());
          return;
        }
        config.rate_qps = *rate;
      } else if (key == "burst") {
        const std::optional<double> burst = ParseDouble(value);
        if (!burst.has_value() || *burst < 1.0) {
          Appendf(out, "err malformed value in \"%s\" (burst >= 1)\n",
                  token.c_str());
          return;
        }
        config.burst = *burst;
      } else if (key == "quota") {
        const std::optional<uint64_t> quota = ParseUint64(value, SIZE_MAX);
        if (!quota.has_value()) {
          Appendf(out, "err malformed value in \"%s\"\n", token.c_str());
          return;
        }
        config.max_in_flight = static_cast<size_t>(*quota);
      } else if (key == "priority") {
        const std::optional<TenantPriority> priority =
            ParseTenantPriority(value);
        if (!priority.has_value()) {
          Appendf(out,
                  "err malformed value in \"%s\" (expected low|normal|"
                  "high)\n",
                  token.c_str());
          return;
        }
        config.priority = *priority;
      } else {
        Appendf(out,
                "err unknown token \"%s\" (expected rate=QPS, burst=N, "
                "quota=N, priority=low|normal|high)\n",
                token.c_str());
        return;
      }
      any = true;
    }
    if (!any) {
      out += "err usage: tenant set <id> [rate=QPS] [burst=N] [quota=N] "
             "[priority=low|normal|high]\n";
      return;
    }
    tenants_.Configure(name, config);
    Appendf(out,
            "ok tenant=%s rate_qps=%.6g burst=%.6g quota=%zu priority=%s\n",
            name.c_str(), config.rate_qps, config.burst, config.max_in_flight,
            TenantPriorityName(config.priority));
    return;
  }
  // `tenant <id>`: the session handshake. The id is created lazily with
  // the default (unlimited) config on first admission.
  session.tenant = sub;
  Appendf(out, "ok tenant=%s\n", session.tenant.c_str());
}

void CommandProcessor::ExecuteStats(std::istringstream& in, std::string& out) {
  std::string name;
  bool json = false;
  std::string token;
  while (in >> token) {
    if (token == "--json") {
      json = true;
    } else {
      name = token;
    }
  }
  const ServiceStatsSnapshot s =
      name.empty() ? service_.AggregateStats() : service_.StatsFor(name);
  // A named scope is valid while the graph is loaded AND after it was
  // dropped (StatsFor keeps the retired cumulative counters); only a
  // name that never served anything is an error.
  if (!name.empty() && !store_.Contains(name) && s.submitted == 0 &&
      s.completed == 0) {
    Appendf(out, "err unknown graph \"%s\" (loaded: %s)\n", name.c_str(),
            JoinNames(store_.List()).c_str());
    return;
  }
  const std::string scope = name.empty() ? "all" : name;
  if (json) {
    Appendf(out, "ok %s\n",
            StatsJson(scope, s, name.empty() ? &service_ : nullptr).c_str());
  } else {
    AppendStatsLine(out, scope, s, name.empty() ? &service_ : nullptr);
  }
}

void CommandProcessor::ExecuteRouter(ClientSession& session,
                                     std::istringstream& in,
                                     std::string& out) {
  std::string name;
  in >> name;
  if (name.empty()) name = session.current_graph;
  if (name.empty() || !store_.Contains(name)) {
    Appendf(out, "err unknown graph \"%s\" (loaded: %s)\n", name.c_str(),
            JoinNames(store_.List()).c_str());
    return;
  }
  // Force the per-graph service into existence so the graph's learned
  // router exists, and fold any drained-but-unconsumed events so the
  // display reflects every completed query, not the trainer's last tick.
  service_.ServiceFor(name);
  service_.TrainRouters();
  const ServiceStatsSnapshot s = service_.StatsFor(name);
  const std::shared_ptr<const LearnedRouter> router =
      service_.LearnedRouterFor(name);
  if (router == nullptr) {
    Appendf(out,
            "ok router graph=%s policy=rule-based trained=0 "
            "hedged=%llu hedge_wins=%llu\n",
            name.c_str(), static_cast<unsigned long long>(s.hedged),
            static_cast<unsigned long long>(s.hedge_wins));
    return;
  }
  const CostModelSnapshot model = router->ModelSnapshot();
  const GraphSnapshot snapshot = store_.Get(name);
  const std::vector<BackendPrediction> rows =
      router->Predict(AverageRoutingQuery(snapshot, params_));
  for (const BackendPrediction& row : rows) {
    const FittedBackendModel* fit = model.fitted->Find(row.backend_id);
    Appendf(out, "backend=%s trained=%d observations=%.1f",
            row.backend.c_str(), row.trained ? 1 : 0, row.observations);
    if (fit != nullptr) {
      Appendf(out, " sigma=%.3f coef=[%.3f,%.3f,%.3f,%.3f,%.3f]", fit->sigma,
              fit->coef[0], fit->coef[1], fit->coef[2], fit->coef[3],
              fit->coef[4]);
    }
    if (row.trained) {
      Appendf(out, " cost_ms=%.3f p95_ms=%.3f", row.cost_us / 1000.0,
              row.p95_us / 1000.0);
    }
    out += "\n";
  }
  Appendf(out,
          "ok router graph=%s policy=%.*s trained=%d "
          "events_observed=%llu refits=%llu decays=%llu "
          "hedged=%llu hedge_wins=%llu\n",
          name.c_str(), static_cast<int>(router->name().size()),
          router->name().data(), router->trained() ? 1 : 0,
          static_cast<unsigned long long>(model.events_observed),
          static_cast<unsigned long long>(model.refits),
          static_cast<unsigned long long>(model.decays),
          static_cast<unsigned long long>(s.hedged),
          static_cast<unsigned long long>(s.hedge_wins));
}

size_t CommandProcessor::AppendMetricsForScope(const std::string& scope,
                                               std::string& out) {
  size_t lines = 0;
  const ServiceStatsSnapshot s = service_.StatsFor(scope);
  const auto flat = [&](const char* name, uint64_t value) {
    AppendMetricLine(out, name, "graph", scope, "", value);
    ++lines;
  };
  flat("hkpr_submitted_total", s.submitted);
  flat("hkpr_completed_total", s.completed);
  flat("hkpr_rejected_total", s.rejected);
  flat("hkpr_invalid_plans_total", s.invalid_plans);
  flat("hkpr_cancelled_total", s.cancelled);
  flat("hkpr_expired_total", s.expired);
  flat("hkpr_cache_hits_total", s.cache_hits);
  flat("hkpr_cache_misses_total", s.cache_misses);
  flat("hkpr_coalesced_total", s.coalesced);
  flat("hkpr_computed_total", s.computed);
  flat("hkpr_stolen_total", s.stolen);
  flat("hkpr_hedged_total", s.hedged);
  flat("hkpr_hedge_wins_total", s.hedge_wins);
  flat("hkpr_queue_depth", static_cast<uint64_t>(s.queue_depth));
  const auto quantile = [&](const char* name, const char* q, double value,
                            const char* stage) {
    std::string labels;
    if (stage != nullptr) {
      labels = std::string("stage=\"") + stage + "\",";
    }
    labels += std::string("quantile=\"") + q + "\"";
    AppendMetricLine(out, name, "graph", scope, labels, value);
    ++lines;
  };
  quantile("hkpr_latency_ms", "0.5", s.latency_p50_ms, nullptr);
  quantile("hkpr_latency_ms", "0.95", s.latency_p95_ms, nullptr);
  quantile("hkpr_latency_ms", "0.99", s.latency_p99_ms, nullptr);
  if (s.stage_tracing) {
    const struct {
      const char* name;
      const StageLatencySnapshot* stage;
    } stages[] = {{"queue_wait", &s.queue_wait},
                  {"cache", &s.cache_lookup},
                  {"compute", &s.compute}};
    for (const auto& [stage_name, stage] : stages) {
      quantile("hkpr_stage_latency_ms", "0.5", stage->p50_ms, stage_name);
      quantile("hkpr_stage_latency_ms", "0.99", stage->p99_ms, stage_name);
      AppendMetricLine(out, "hkpr_stage_latency_mean_ms", "graph", scope,
                       std::string("stage=\"") + stage_name + "\"",
                       stage->mean_ms());
      ++lines;
    }
  }
  // The (graph, backend) dimensions: what each resolved backend actually
  // served on this graph, cumulative across hot-swaps.
  const TelemetrySnapshot telemetry = service_.TelemetryFor(scope);
  for (const BackendStatsSnapshot& row : telemetry.backends) {
    const std::string backend_label = "backend=\"" + row.backend + "\"";
    const auto dim = [&](const char* name, uint64_t value) {
      AppendMetricLine(out, name, "graph", scope, backend_label, value);
      ++lines;
    };
    dim("hkpr_backend_completed_total", row.completed);
    dim("hkpr_backend_computed_total", row.computed);
    dim("hkpr_backend_cache_hits_total", row.cache_hits);
    dim("hkpr_backend_coalesced_total", row.coalesced);
    AppendMetricLine(out, "hkpr_backend_latency_ms", "graph", scope,
                     backend_label + ",quantile=\"0.5\"", row.latency_p50_ms);
    AppendMetricLine(out, "hkpr_backend_latency_ms", "graph", scope,
                     backend_label + ",quantile=\"0.99\"", row.latency_p99_ms);
    lines += 2;
  }
  if (telemetry.enabled) {
    flat("hkpr_routing_events_total", telemetry.routing_appended);
    flat("hkpr_routing_events_dropped_total", telemetry.routing_dropped);
  }
  // Learned-router model rows: per-candidate observation counts plus, for
  // trained candidates, the predicted cost at the graph's average degree.
  const std::shared_ptr<const LearnedRouter> router =
      service_.LearnedRouterFor(scope);
  const GraphSnapshot snapshot = store_.Get(scope);
  if (router != nullptr && snapshot) {
    const std::vector<BackendPrediction> rows =
        router->Predict(AverageRoutingQuery(snapshot, params_));
    for (const BackendPrediction& row : rows) {
      const std::string backend_label = "backend=\"" + row.backend + "\"";
      AppendMetricLine(out, "hkpr_router_observations", "graph", scope,
                       backend_label, row.observations);
      AppendMetricLine(out, "hkpr_router_trained", "graph", scope,
                       backend_label,
                       static_cast<uint64_t>(row.trained ? 1 : 0));
      lines += 2;
      if (row.trained) {
        AppendMetricLine(out, "hkpr_router_predicted_cost_ms", "graph", scope,
                         backend_label, row.cost_us / 1000.0);
        AppendMetricLine(out, "hkpr_router_predicted_p95_ms", "graph", scope,
                         backend_label, row.p95_us / 1000.0);
        lines += 2;
      }
    }
  }
  return lines;
}

size_t CommandProcessor::AppendTenantMetrics(std::string& out) {
  size_t lines = 0;
  for (const TenantStatsSnapshot& r : tenants_.Snapshot()) {
    const auto row = [&](const char* name, uint64_t value) {
      AppendMetricLine(out, name, "tenant", r.tenant, "", value);
      ++lines;
    };
    row("hkpr_tenant_admitted_total", r.admitted);
    row("hkpr_tenant_throttled_total", r.throttled);
    row("hkpr_tenant_quota_rejected_total", r.quota_rejected);
    row("hkpr_tenant_shed_total", r.shed);
    row("hkpr_tenant_completed_total", r.completed);
    row("hkpr_tenant_failed_total", r.failed);
    row("hkpr_tenant_in_flight", static_cast<uint64_t>(r.in_flight));
    AppendMetricLine(out, "hkpr_tenant_latency_ms", "tenant", r.tenant,
                     "quantile=\"0.5\"", r.latency_p50_ms);
    AppendMetricLine(out, "hkpr_tenant_latency_ms", "tenant", r.tenant,
                     "quantile=\"0.99\"", r.latency_p99_ms);
    lines += 2;
  }
  return lines;
}

void CommandProcessor::ExecuteMetrics(std::string& out) {
  // Prometheus-style text exposition, one block of
  // `name{label="v",...} value` lines per scope plus the per-tenant
  // rows, terminated by a single protocol line ("ok metrics ...") so
  // line-oriented clients know where the block ends.
  size_t lines = 0;
  const std::vector<std::string> scopes = service_.StatsScopes();
  for (const std::string& scope : scopes) {
    lines += AppendMetricsForScope(scope, out);
  }
  lines += AppendTenantMetrics(out);
  Appendf(out, "ok metrics graphs=%zu lines=%zu\n", scopes.size(), lines);
}

}  // namespace hkpr
