#include "net/tenant.h"

#include <algorithm>

namespace hkpr {

const char* TenantPriorityName(TenantPriority priority) {
  switch (priority) {
    case TenantPriority::kLow:
      return "low";
    case TenantPriority::kNormal:
      return "normal";
    case TenantPriority::kHigh:
      return "high";
  }
  return "unknown";
}

std::optional<TenantPriority> ParseTenantPriority(std::string_view name) {
  if (name == "low") return TenantPriority::kLow;
  if (name == "normal") return TenantPriority::kNormal;
  if (name == "high") return TenantPriority::kHigh;
  return std::nullopt;
}

const char* TenantAdmissionName(TenantAdmission admission) {
  switch (admission) {
    case TenantAdmission::kAdmitted:
      return "admitted";
    case TenantAdmission::kThrottled:
      return "throttled";
    case TenantAdmission::kQuotaExceeded:
      return "quota-exceeded";
    case TenantAdmission::kShedLoad:
      return "shed-load";
  }
  return "unknown";
}

TenantRegistry::TenantState& TenantRegistry::StateFor(
    std::string_view tenant) {
  const auto it = tenants_.find(tenant);
  if (it != tenants_.end()) return *it->second;
  auto inserted = tenants_.emplace(std::string(tenant),
                                   std::make_unique<TenantState>());
  return *inserted.first->second;
}

void TenantRegistry::Configure(std::string_view tenant,
                               const TenantQosConfig& config) {
  std::lock_guard<std::mutex> lock(mu_);
  TenantState& state = StateFor(tenant);
  state.config = config;
  // Restart the bucket full: a tightened limit throttles from the next
  // burst, never retroactively.
  state.tokens = config.burst;
  state.bucket_started = false;
}

TenantQosConfig TenantRegistry::ConfigFor(std::string_view tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? TenantQosConfig{} : it->second->config;
}

bool TenantRegistry::Contains(std::string_view tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  return tenants_.find(tenant) != tenants_.end();
}

TenantAdmission TenantRegistry::Admit(std::string_view tenant,
                                      size_t queue_depth,
                                      size_t max_queue_depth,
                                      Clock::time_point now) {
  std::lock_guard<std::mutex> lock(mu_);
  TenantState& state = StateFor(tenant);

  // Priority shed against the target service's *existing* queue-depth
  // gate: a class's threshold is a fraction of the same cap the service
  // itself enforces at max_queue_depth.
  if (state.config.priority != TenantPriority::kHigh && max_queue_depth > 0) {
    const double fraction = state.config.priority == TenantPriority::kLow
                                ? kLowPriorityShedFraction
                                : kNormalPriorityShedFraction;
    const double threshold = fraction * static_cast<double>(max_queue_depth);
    if (static_cast<double>(queue_depth) >= threshold) {
      ++state.shed;
      return TenantAdmission::kShedLoad;
    }
  }

  if (state.config.max_in_flight > 0 &&
      state.in_flight >= state.config.max_in_flight) {
    ++state.quota_rejected;
    return TenantAdmission::kQuotaExceeded;
  }

  if (state.config.rate_qps > 0.0) {
    if (!state.bucket_started) {
      state.tokens = state.config.burst;
      state.bucket_started = true;
    } else {
      const double elapsed =
          std::chrono::duration<double>(now - state.last_refill).count();
      state.tokens = std::min(state.config.burst,
                              state.tokens + elapsed * state.config.rate_qps);
    }
    state.last_refill = now;
    if (state.tokens < 1.0) {
      ++state.throttled;
      return TenantAdmission::kThrottled;
    }
    state.tokens -= 1.0;
  }

  ++state.admitted;
  ++state.in_flight;
  return TenantAdmission::kAdmitted;
}

void TenantRegistry::OnComplete(std::string_view tenant, bool ok,
                                double latency_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  TenantState& state = StateFor(tenant);
  if (state.in_flight > 0) --state.in_flight;
  if (ok) {
    ++state.completed;
    state.latency.Record(latency_seconds);
  } else {
    ++state.failed;
  }
}

TenantStatsSnapshot TenantRegistry::SnapshotOf(const std::string& name,
                                               const TenantState& state) {
  TenantStatsSnapshot snap;
  snap.tenant = name;
  snap.config = state.config;
  snap.admitted = state.admitted;
  snap.throttled = state.throttled;
  snap.quota_rejected = state.quota_rejected;
  snap.shed = state.shed;
  snap.completed = state.completed;
  snap.failed = state.failed;
  snap.in_flight = state.in_flight;
  snap.latency_count = state.latency.TotalCount();
  snap.latency_p50_ms = state.latency.PercentileMs(0.50);
  snap.latency_p95_ms = state.latency.PercentileMs(0.95);
  snap.latency_p99_ms = state.latency.PercentileMs(0.99);
  return snap;
}

TenantStatsSnapshot TenantRegistry::StatsFor(std::string_view tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    TenantStatsSnapshot snap;
    snap.tenant = std::string(tenant);
    return snap;
  }
  return SnapshotOf(it->first, *it->second);
}

std::vector<TenantStatsSnapshot> TenantRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TenantStatsSnapshot> out;
  out.reserve(tenants_.size());
  for (const auto& [name, state] : tenants_) {
    out.push_back(SnapshotOf(name, *state));
  }
  return out;
}

}  // namespace hkpr
