#include "net/socket_server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

namespace hkpr {

namespace {

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

SocketServer::SocketServer(CommandProcessor& processor,
                           SocketServerOptions options)
    : processor_(processor), options_(std::move(options)) {}

SocketServer::~SocketServer() { Stop(); }

bool SocketServer::Start() {
  if (running_.load()) return true;
  error_.clear();

  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    error_ = std::string("socket: ") + strerror(errno);
    return false;
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    error_ = "bad bind address \"" + options_.bind_address + "\"";
    close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    error_ = std::string("bind: ") + strerror(errno);
    close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t addr_len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                  &addr_len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  if (listen(listen_fd_, options_.listen_backlog) != 0 ||
      !SetNonBlocking(listen_fd_)) {
    error_ = std::string("listen: ") + strerror(errno);
    close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }

  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    error_ = std::string("epoll/eventfd: ") + strerror(errno);
    Stop();
    return false;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  running_.store(true);
  io_thread_ = std::thread([this] { IoLoop(); });
  const size_t executors = std::max<size_t>(1, options_.num_executors);
  executors_.reserve(executors);
  for (size_t i = 0; i < executors; ++i) {
    executors_.emplace_back([this] { ExecutorLoop(); });
  }
  return true;
}

void SocketServer::Stop() {
  if (running_.exchange(false)) {
    // Wake the IO thread and the executors so they observe !running_.
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t n = write(wake_fd_, &one, sizeof(one));
    work_cv_.notify_all();
    if (io_thread_.joinable()) io_thread_.join();
    for (std::thread& t : executors_) {
      if (t.joinable()) t.join();
    }
    executors_.clear();
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& [fd, conn] : conns_) {
      std::lock_guard<std::mutex> conn_lock(conn->mu);
      if (!conn->closed) {
        conn->closed = true;
        close(conn->fd);
      }
    }
    conns_.clear();
  }
  if (listen_fd_ >= 0) close(listen_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
  if (wake_fd_ >= 0) close(wake_fd_);
  listen_fd_ = epoll_fd_ = wake_fd_ = -1;
}

uint64_t SocketServer::connections_accepted() const {
  std::lock_guard<std::mutex> lock(conns_mu_);
  return accepted_;
}

size_t SocketServer::connections_active() const {
  std::lock_guard<std::mutex> lock(conns_mu_);
  return conns_.size();
}

void SocketServer::IoLoop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (running_.load()) {
    const int n = epoll_wait(epoll_fd_, events, kMaxEvents, 200);
    if (!running_.load()) break;
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == listen_fd_) {
        AcceptPending();
        continue;
      }
      if (fd == wake_fd_) {
        uint64_t drained = 0;
        while (read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        // Flush every connection the executors queued output for.
        std::deque<std::shared_ptr<Connection>> to_flush;
        {
          std::lock_guard<std::mutex> lock(flush_mu_);
          to_flush.swap(flush_);
        }
        for (const auto& conn : to_flush) FlushWrites(conn);
        continue;
      }
      std::shared_ptr<Connection> conn;
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        const auto it = conns_.find(fd);
        if (it == conns_.end()) continue;  // closed earlier this batch
        conn = it->second;
      }
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        CloseConnection(conn);
        continue;
      }
      if (events[i].events & EPOLLIN) HandleReadable(conn);
      if (events[i].events & EPOLLOUT) FlushWrites(conn);
    }
  }
}

void SocketServer::AcceptPending() {
  while (true) {
    const int fd = accept4(listen_fd_, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) break;  // EAGAIN: drained
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->session = processor_.NewSession();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_[fd] = conn;
      ++accepted_;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  }
}

void SocketServer::UpdateEpoll(Connection& conn, bool want_in,
                               bool want_out) {
  epoll_event ev{};
  ev.events = (want_in ? EPOLLIN : 0u) | (want_out ? EPOLLOUT : 0u);
  ev.data.fd = conn.fd;
  epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
  conn.read_paused = !want_in;
  conn.epollout_armed = want_out;
}

void SocketServer::HandleReadable(const std::shared_ptr<Connection>& conn) {
  char buf[16 << 10];
  bool eof = false;
  while (true) {
    const ssize_t n = read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->read_buf.append(buf, static_cast<size_t>(n));
      // A line that will never end: reject before the buffer grows
      // without bound.
      if (conn->read_buf.size() > options_.max_line_bytes &&
          conn->read_buf.find('\n') == std::string::npos) {
        conn->write_buf += "err line too long\n";
        conn->want_close = true;
        conn->read_buf.clear();
        conn->pending.clear();
        break;
      }
      continue;
    }
    if (n == 0) {
      eof = true;
    }
    break;  // EAGAIN, error, or EOF
  }
  QueueLines(conn);
  if (eof) {
    // Let already-queued commands finish and their responses flush, then
    // close. With nothing in flight this closes immediately.
    bool drained;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->want_close = true;
      drained = conn->pending.empty() && !conn->executing &&
                conn->write_buf.empty();
    }
    if (drained) {
      CloseConnection(conn);
      return;
    }
  }
  FlushWrites(conn);
}

void SocketServer::ScheduleLocked(const std::shared_ptr<Connection>& conn) {
  // conn->mu held by caller.
  if (conn->executing || conn->closed || conn->pending.empty()) return;
  conn->executing = true;
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    work_.push_back(conn);
  }
  work_cv_.notify_one();
}

void SocketServer::QueueLines(const std::shared_ptr<Connection>& conn) {
  std::lock_guard<std::mutex> lock(conn->mu);
  size_t start = 0;
  while (true) {
    const size_t newline = conn->read_buf.find('\n', start);
    if (newline == std::string::npos) break;
    size_t end = newline;
    if (end > start && conn->read_buf[end - 1] == '\r') --end;
    conn->pending.emplace_back(conn->read_buf, start, end - start);
    start = newline + 1;
  }
  if (start > 0) conn->read_buf.erase(0, start);
  ScheduleLocked(conn);
}

void SocketServer::RequestFlush(const std::shared_ptr<Connection>& conn) {
  {
    std::lock_guard<std::mutex> lock(flush_mu_);
    flush_.push_back(conn);
  }
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t n = write(wake_fd_, &one, sizeof(one));
}

void SocketServer::ExecutorLoop() {
  while (true) {
    std::shared_ptr<Connection> conn;
    {
      std::unique_lock<std::mutex> lock(work_mu_);
      work_cv_.wait(lock, [this] { return !work_.empty() || !running_; });
      if (!running_.load() && work_.empty()) return;
      conn = std::move(work_.front());
      work_.pop_front();
    }
    // Drain this connection's pipelined lines in order. Only this
    // executor touches conn->session while `executing` is set.
    while (true) {
      std::string line;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        if (conn->closed || conn->pending.empty()) {
          conn->executing = false;
          break;
        }
        line = std::move(conn->pending.front());
        conn->pending.pop_front();
      }
      const CommandResult result = processor_.Execute(conn->session, line);
      bool quit = result.quit;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        conn->write_buf += result.output;
        if (quit) {
          conn->want_close = true;
          conn->pending.clear();
          conn->executing = false;
        }
      }
      RequestFlush(conn);
      if (quit) break;
      if (!running_.load()) {
        std::lock_guard<std::mutex> lock(conn->mu);
        conn->executing = false;
        break;
      }
    }
  }
}

void SocketServer::FlushWrites(const std::shared_ptr<Connection>& conn) {
  bool should_close = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->closed) return;
    while (!conn->write_buf.empty()) {
      const ssize_t n =
          write(conn->fd, conn->write_buf.data(), conn->write_buf.size());
      if (n > 0) {
        conn->write_buf.erase(0, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      // Peer went away mid-write.
      should_close = true;
      break;
    }
    if (!should_close) {
      if (conn->write_buf.size() > options_.max_write_buffer_bytes) {
        // The client is not draining; cut it loose rather than buffer
        // without bound.
        should_close = true;
      } else {
        const bool want_out = !conn->write_buf.empty();
        const bool want_in =
            !conn->want_close &&
            conn->write_buf.size() <= options_.read_pause_bytes;
        if (want_in == conn->read_paused ||
            want_out != conn->epollout_armed) {
          UpdateEpoll(*conn, want_in, want_out);
        }
        if (conn->want_close && conn->write_buf.empty() &&
            conn->pending.empty() && !conn->executing) {
          should_close = true;
        }
      }
    }
  }
  if (should_close) CloseConnection(conn);
}

void SocketServer::CloseConnection(const std::shared_ptr<Connection>& conn) {
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->closed) return;
    conn->closed = true;
  }
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  close(conn->fd);
  std::lock_guard<std::mutex> lock(conns_mu_);
  conns_.erase(conn->fd);
}

}  // namespace hkpr
