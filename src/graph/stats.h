// Structural graph statistics: degree distribution, clustering
// coefficients, triangle counts, diameter estimation.
//
// Used by the dataset registry to verify that the synthetic stand-ins match
// their targets' structural signatures (DESIGN.md Section 4), by graph_tool,
// and by tests.

#ifndef HKPR_GRAPH_STATS_H_
#define HKPR_GRAPH_STATS_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "graph/graph.h"

namespace hkpr {

/// Summary of a graph's degree sequence.
struct DegreeStats {
  uint32_t min = 0;
  uint32_t max = 0;
  double mean = 0.0;
  double median = 0.0;
  double p90 = 0.0;  ///< 90th percentile
};

/// Computes degree summary statistics in O(n log n).
DegreeStats ComputeDegreeStats(const Graph& graph);

/// histogram[d] = number of nodes with degree d (size MaxDegree()+1).
std::vector<uint64_t> DegreeHistogram(const Graph& graph);

/// Local clustering coefficient of one node: closed wedges at v divided by
/// d(v) choose 2. Zero for degree < 2. O(sum over neighbors of log d).
double LocalClusteringCoefficient(const Graph& graph, NodeId v);

/// Average local clustering coefficient over nodes of degree >= 2. With
/// `sample_size > 0`, averages over a random node sample instead of all
/// nodes (exact computation is O(sum d(v)^2), expensive on hub-heavy
/// graphs).
double AverageClusteringCoefficient(const Graph& graph, uint32_t sample_size,
                                    Rng& rng);

/// Exact variant over all nodes.
double AverageClusteringCoefficient(const Graph& graph);

/// Number of triangles in the graph (each counted once). Node-iterator
/// algorithm over sorted adjacency lists, O(sum over edges of min-degree).
uint64_t CountTriangles(const Graph& graph);

/// Global clustering coefficient (transitivity): 3 * triangles / wedges.
double GlobalClusteringCoefficient(const Graph& graph);

/// Lower bound on the diameter of the component containing `start` via a
/// double BFS sweep (exact on trees, a good estimate in practice).
uint32_t EstimateDiameter(const Graph& graph, NodeId start);

}  // namespace hkpr

#endif  // HKPR_GRAPH_STATS_H_
