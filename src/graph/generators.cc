#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/flat_map.h"
#include "common/logging.h"
#include "common/random.h"
#include "graph/graph_builder.h"

namespace hkpr {

namespace {

/// Samples a discrete bounded power law: P(x) ~ x^(-exponent) on
/// [min_value, max_value], via inverse transform of the continuous law.
uint32_t SampleBoundedPowerLaw(double exponent, uint32_t min_value,
                               uint32_t max_value, Rng& rng) {
  HKPR_DCHECK(min_value >= 1 && min_value <= max_value);
  if (min_value == max_value) return min_value;
  const double u = rng.UniformDouble();
  const double lo = static_cast<double>(min_value);
  const double hi = static_cast<double>(max_value) + 1.0;
  double x;
  if (std::abs(exponent - 1.0) < 1e-12) {
    x = lo * std::pow(hi / lo, u);
  } else {
    const double e = 1.0 - exponent;
    x = std::pow(std::pow(lo, e) + u * (std::pow(hi, e) - std::pow(lo, e)),
                 1.0 / e);
  }
  const uint32_t v = static_cast<uint32_t>(x);
  return std::min(std::max(v, min_value), max_value);
}

/// Pairs up stubs (node ids, one entry per half-edge) uniformly at random and
/// adds the resulting edges; self-pairs are dropped, duplicates removed later
/// by GraphBuilder.
void ConfigurationModelWire(std::vector<NodeId>& stubs, GraphBuilder& builder,
                            Rng& rng) {
  // Fisher-Yates shuffle, then pair consecutive entries.
  for (size_t i = stubs.size(); i > 1; --i) {
    std::swap(stubs[i - 1], stubs[rng.UniformInt(i)]);
  }
  for (size_t i = 0; i + 1 < stubs.size(); i += 2) {
    if (stubs[i] != stubs[i + 1]) builder.AddEdge(stubs[i], stubs[i + 1]);
  }
}

}  // namespace

Graph ErdosRenyiGnm(uint32_t n, uint64_t m, uint64_t seed) {
  HKPR_CHECK(n >= 2);
  const uint64_t max_edges = static_cast<uint64_t>(n) * (n - 1) / 2;
  HKPR_CHECK(m <= max_edges) << "requested more edges than pairs";
  Rng rng(seed);
  GraphBuilder builder(n);
  builder.ReserveEdges(m);
  // Rejection sampling over a 64-bit pair-key set; efficient for the sparse
  // regime (m << n^2) this library uses.
  std::vector<uint64_t> seen_keys;
  seen_keys.reserve(m);
  FlatMap<uint32_t> bucket_counts;  // coarse filter: 32-bit folded keys
  uint64_t added = 0;
  while (added < m) {
    const NodeId u = static_cast<NodeId>(rng.UniformInt(n));
    const NodeId v = static_cast<NodeId>(rng.UniformInt(n));
    if (u == v) continue;
    const uint32_t lo = std::min(u, v);
    const uint32_t hi = std::max(u, v);
    const uint64_t key = (static_cast<uint64_t>(lo) << 32) | hi;
    const uint32_t folded = static_cast<uint32_t>(key ^ (key >> 32));
    if (bucket_counts.GetOr(folded, 0) > 0) {
      // Possible duplicate (or fold collision): confirm with an exact scan of
      // the rare colliding bucket.
      bool duplicate = false;
      for (uint64_t k : seen_keys) {
        if (k == key) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;
    }
    bucket_counts[folded] += 1;
    seen_keys.push_back(key);
    builder.AddEdge(u, v);
    ++added;
  }
  return builder.Build();
}

Graph ErdosRenyiGnp(uint32_t n, double p, uint64_t seed) {
  HKPR_CHECK(n >= 1);
  HKPR_CHECK(p >= 0.0 && p < 1.0);
  Rng rng(seed);
  GraphBuilder builder(n);
  if (p > 0.0) {
    const double log1mp = std::log1p(-p);
    // Iterate over the upper triangle with geometric jumps (Batagelj-Brandes).
    uint64_t v = 1;
    int64_t w = -1;
    const uint64_t nn = n;
    while (v < nn) {
      const double r = 1.0 - rng.UniformDouble();  // (0, 1]
      w += 1 + static_cast<int64_t>(std::floor(std::log(r) / log1mp));
      while (w >= static_cast<int64_t>(v) && v < nn) {
        w -= static_cast<int64_t>(v);
        ++v;
      }
      if (v < nn) {
        builder.AddEdge(static_cast<NodeId>(w), static_cast<NodeId>(v));
      }
    }
  }
  return builder.Build();
}

Graph BarabasiAlbert(uint32_t n, uint32_t edges_per_node, uint64_t seed) {
  return PowerlawCluster(n, edges_per_node, /*triangle_prob=*/0.0, seed);
}

Graph PowerlawCluster(uint32_t n, uint32_t edges_per_node, double triangle_prob,
                      uint64_t seed) {
  HKPR_CHECK(edges_per_node >= 1);
  HKPR_CHECK(n > edges_per_node);
  HKPR_CHECK(triangle_prob >= 0.0 && triangle_prob <= 1.0);
  Rng rng(seed);
  GraphBuilder builder(n);
  builder.ReserveEdges(static_cast<size_t>(n) * edges_per_node);

  // `repeated` holds one entry per edge endpoint: sampling uniformly from it
  // is sampling proportionally to degree (preferential attachment). `adj`
  // mirrors the growing graph so triad formation can pick real neighbors.
  std::vector<NodeId> repeated;
  repeated.reserve(2ull * n * edges_per_node);
  std::vector<std::vector<NodeId>> adj(n);

  const auto add_edge = [&](NodeId a, NodeId b) {
    builder.AddEdge(a, b);
    adj[a].push_back(b);
    adj[b].push_back(a);
    repeated.push_back(a);
    repeated.push_back(b);
  };

  // Seed core: a star over the first edges_per_node+1 nodes (keeps every
  // seed node reachable, as in the reference Holme-Kim implementation).
  const uint32_t core = edges_per_node + 1;
  for (uint32_t v = 1; v < core; ++v) add_edge(0, v);

  for (uint32_t v = core; v < n; ++v) {
    NodeId last_target = 0;
    for (uint32_t j = 0; j < edges_per_node; ++j) {
      NodeId u;
      if (j > 0 && rng.Bernoulli(triangle_prob) && !adj[last_target].empty()) {
        // Triad formation: link to a random neighbor of the previous target,
        // closing a triangle (this is what raises the clustering
        // coefficient relative to plain Barabasi-Albert).
        u = adj[last_target][rng.UniformInt(adj[last_target].size())];
      } else {
        // Preferential attachment.
        u = repeated[rng.UniformInt(repeated.size())];
      }
      if (u == v) {
        u = repeated[rng.UniformInt(repeated.size())];
        if (u == v) continue;  // rare double collision: skip this link
      }
      add_edge(v, u);
      last_target = u;
    }
  }
  return builder.Build();
}

Graph Grid3D(uint32_t nx, uint32_t ny, uint32_t nz, bool torus) {
  HKPR_CHECK(nx >= 1 && ny >= 1 && nz >= 1);
  if (torus) {
    HKPR_CHECK(nx >= 3 && ny >= 3 && nz >= 3)
        << "torus dimensions below 3 collapse +1/-1 neighbors";
  }
  const uint64_t n64 = static_cast<uint64_t>(nx) * ny * nz;
  HKPR_CHECK(n64 <= 0xFFFFFFFFull);
  const auto id = [&](uint32_t x, uint32_t y, uint32_t z) -> NodeId {
    return static_cast<NodeId>((static_cast<uint64_t>(x) * ny + y) * nz + z);
  };
  GraphBuilder builder(static_cast<uint32_t>(n64));
  builder.ReserveEdges(3 * n64);
  for (uint32_t x = 0; x < nx; ++x) {
    for (uint32_t y = 0; y < ny; ++y) {
      for (uint32_t z = 0; z < nz; ++z) {
        const NodeId v = id(x, y, z);
        if (x + 1 < nx) {
          builder.AddEdge(v, id(x + 1, y, z));
        } else if (torus) {
          builder.AddEdge(v, id(0, y, z));
        }
        if (y + 1 < ny) {
          builder.AddEdge(v, id(x, y + 1, z));
        } else if (torus) {
          builder.AddEdge(v, id(x, 0, z));
        }
        if (z + 1 < nz) {
          builder.AddEdge(v, id(x, y, z + 1));
        } else if (torus) {
          builder.AddEdge(v, id(x, y, 0));
        }
      }
    }
  }
  return builder.Build();
}

Graph Rmat(uint32_t scale, double avg_degree, uint64_t seed,
           const RmatOptions& options) {
  HKPR_CHECK(scale >= 1 && scale <= 31);
  HKPR_CHECK(avg_degree > 0);
  const double d = 1.0 - options.a - options.b - options.c;
  HKPR_CHECK(d >= 0.0) << "RMAT quadrant probabilities exceed 1";
  const uint32_t n = 1u << scale;
  const uint64_t num_edges =
      static_cast<uint64_t>(avg_degree * static_cast<double>(n) / 2.0);
  Rng rng(seed);
  GraphBuilder builder(n);
  builder.ReserveEdges(num_edges);
  for (uint64_t e = 0; e < num_edges; ++e) {
    uint32_t u = 0;
    uint32_t v = 0;
    for (uint32_t bit = 0; bit < scale; ++bit) {
      const double r = rng.UniformDouble();
      // Quadrant choice; noise on the probabilities (±10%) avoids the
      // characteristic RMAT staircase artifacts.
      const double jitter = 0.9 + 0.2 * rng.UniformDouble();
      const double pa = options.a * jitter;
      const double pb = options.b * jitter;
      const double pc = options.c * jitter;
      const double total = pa + pb + pc + (1.0 - options.a - options.b -
                                           options.c) * jitter;
      const double x = r * total;
      u <<= 1;
      v <<= 1;
      if (x < pa) {
        // top-left
      } else if (x < pa + pb) {
        v |= 1;
      } else if (x < pa + pb + pc) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u != v) builder.AddEdge(u, v);
  }
  if (options.scramble_ids) {
    // Permute ids so low ids are not systematically high degree.
    std::vector<NodeId> perm(n);
    std::iota(perm.begin(), perm.end(), 0u);
    for (size_t i = n; i > 1; --i) {
      std::swap(perm[i - 1], perm[rng.UniformInt(i)]);
    }
    Graph raw = builder.Build();
    GraphBuilder scrambled(n);
    scrambled.ReserveEdges(raw.NumEdges());
    for (NodeId u = 0; u < raw.NumNodes(); ++u) {
      for (NodeId v : raw.Neighbors(u)) {
        if (u < v) scrambled.AddEdge(perm[u], perm[v]);
      }
    }
    return scrambled.Build();
  }
  return builder.Build();
}

CommunityGraph PlantedPartition(uint32_t num_communities,
                                uint32_t community_size, double p_in,
                                double p_out, uint64_t seed) {
  HKPR_CHECK(num_communities >= 1 && community_size >= 2);
  HKPR_CHECK(p_in > p_out) << "planted partition needs assortative blocks";
  const uint64_t n64 =
      static_cast<uint64_t>(num_communities) * community_size;
  HKPR_CHECK(n64 <= 0xFFFFFFFFull);
  const uint32_t n = static_cast<uint32_t>(n64);
  Rng rng(seed);
  GraphBuilder builder(n);

  // Intra-community edges: dense G(size, p_in) per block via geometric skips.
  auto sample_pairs = [&](double p, uint64_t num_pairs, auto&& emit) {
    if (p <= 0.0 || num_pairs == 0) return;
    const double log1mp = std::log1p(-p);
    uint64_t idx = 0;
    while (true) {
      const double r = 1.0 - rng.UniformDouble();
      idx += 1 + static_cast<uint64_t>(std::floor(std::log(r) / log1mp));
      if (idx > num_pairs) break;
      emit(idx - 1);
    }
  };

  CommunitySet communities;
  for (uint32_t c = 0; c < num_communities; ++c) {
    const NodeId base = c * community_size;
    std::vector<NodeId> members(community_size);
    std::iota(members.begin(), members.end(), base);
    communities.Add(std::move(members));
    const uint64_t pairs =
        static_cast<uint64_t>(community_size) * (community_size - 1) / 2;
    sample_pairs(p_in, pairs, [&](uint64_t k) {
      // Unrank pair index k within the block's upper triangle.
      const uint64_t i =
          static_cast<uint64_t>((1.0 + std::sqrt(1.0 + 8.0 * static_cast<double>(k))) / 2.0);
      uint64_t row = i;
      while (row * (row - 1) / 2 > k) --row;
      while ((row + 1) * row / 2 <= k) ++row;
      const uint64_t col = k - row * (row - 1) / 2;
      builder.AddEdge(base + static_cast<NodeId>(row),
                      base + static_cast<NodeId>(col));
    });
  }

  // Inter-community edges: sample from all cross pairs via expected count.
  if (p_out > 0.0 && num_communities > 1) {
    const uint64_t cross_pairs =
        (n64 * (n64 - 1) / 2) -
        static_cast<uint64_t>(num_communities) * community_size *
            (community_size - 1) / 2;
    const uint64_t target =
        static_cast<uint64_t>(p_out * static_cast<double>(cross_pairs));
    uint64_t added = 0;
    while (added < target) {
      const NodeId u = static_cast<NodeId>(rng.UniformInt(n));
      const NodeId v = static_cast<NodeId>(rng.UniformInt(n));
      if (u == v || u / community_size == v / community_size) continue;
      builder.AddEdge(u, v);
      ++added;
    }
  }
  return CommunityGraph{builder.Build(), std::move(communities)};
}

Graph WattsStrogatz(uint32_t n, uint32_t neighbors_per_side,
                    double rewire_prob, uint64_t seed) {
  HKPR_CHECK(n >= 4);
  HKPR_CHECK(neighbors_per_side >= 1 && 2 * neighbors_per_side < n);
  HKPR_CHECK(rewire_prob >= 0.0 && rewire_prob <= 1.0);
  Rng rng(seed);
  GraphBuilder builder(n);
  builder.ReserveEdges(static_cast<size_t>(n) * neighbors_per_side);
  for (uint32_t v = 0; v < n; ++v) {
    for (uint32_t j = 1; j <= neighbors_per_side; ++j) {
      NodeId target = static_cast<NodeId>((v + j) % n);
      if (rng.Bernoulli(rewire_prob)) {
        // Rewire to a uniform non-self endpoint; duplicates are removed by
        // the builder (slightly lowering degree, as in the standard model).
        NodeId random_target = static_cast<NodeId>(rng.UniformInt(n));
        if (random_target != v) target = random_target;
      }
      builder.AddEdge(v, target);
    }
  }
  return builder.Build();
}

CommunityGraph LfrLike(const LfrOptions& options, uint64_t seed) {
  HKPR_CHECK(options.n >= 10);
  HKPR_CHECK(options.min_degree >= 1 &&
             options.min_degree <= options.max_degree);
  HKPR_CHECK(options.min_community >= 2 &&
             options.min_community <= options.max_community);
  HKPR_CHECK(options.mu >= 0.0 && options.mu <= 1.0);
  Rng rng(seed);
  const uint32_t n = options.n;

  // 1. Power-law degree sequence.
  std::vector<uint32_t> degree(n);
  for (uint32_t v = 0; v < n; ++v) {
    degree[v] = SampleBoundedPowerLaw(options.degree_exponent,
                                      options.min_degree, options.max_degree,
                                      rng);
  }

  // 2. Power-law community sizes covering all nodes.
  std::vector<uint32_t> community_size;
  uint64_t covered = 0;
  while (covered < n) {
    uint32_t s = SampleBoundedPowerLaw(options.community_exponent,
                                       options.min_community,
                                       options.max_community, rng);
    if (covered + s > n) s = static_cast<uint32_t>(n - covered);
    if (s >= 2) {
      community_size.push_back(s);
      covered += s;
    } else {
      // A trailing sliver of one node: merge it into the last community.
      community_size.back() += static_cast<uint32_t>(n - covered);
      covered = n;
    }
  }
  const size_t num_communities = community_size.size();

  // 3. Assign nodes to communities. A node with intra-degree k needs a
  // community with at least k+1 members; scan from a random start for one
  // with remaining capacity that is large enough.
  std::vector<uint32_t> intra_degree(n);
  for (uint32_t v = 0; v < n; ++v) {
    intra_degree[v] = static_cast<uint32_t>(
        std::lround((1.0 - options.mu) * degree[v]));
    intra_degree[v] = std::min(intra_degree[v], degree[v]);
  }
  std::vector<uint32_t> remaining = community_size;
  std::vector<uint32_t> assignment(n, 0);
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0u);
  // Assign high-degree nodes first so the big communities absorb them.
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return degree[a] > degree[b];
  });
  for (NodeId v : order) {
    const size_t start = rng.UniformInt(num_communities);
    bool placed = false;
    for (size_t probe = 0; probe < num_communities; ++probe) {
      const size_t c = (start + probe) % num_communities;
      if (remaining[c] > 0 && community_size[c] > intra_degree[v]) {
        assignment[v] = static_cast<uint32_t>(c);
        --remaining[c];
        placed = true;
        break;
      }
    }
    if (!placed) {
      // No community big enough: cap the intra-degree and take any slot.
      for (size_t c = 0; c < num_communities; ++c) {
        if (remaining[c] > 0) {
          assignment[v] = static_cast<uint32_t>(c);
          intra_degree[v] = std::min(intra_degree[v], community_size[c] - 1);
          --remaining[c];
          placed = true;
          break;
        }
      }
      HKPR_CHECK(placed) << "community capacity accounting is broken";
    }
  }

  // 4. Wire intra-community edges with a per-community configuration model.
  GraphBuilder builder(n);
  std::vector<std::vector<NodeId>> members(num_communities);
  for (uint32_t v = 0; v < n; ++v) members[assignment[v]].push_back(v);
  std::vector<NodeId> stubs;
  for (size_t c = 0; c < num_communities; ++c) {
    stubs.clear();
    for (NodeId v : members[c]) {
      for (uint32_t i = 0; i < intra_degree[v]; ++i) stubs.push_back(v);
    }
    ConfigurationModelWire(stubs, builder, rng);
  }

  // 5. Wire inter-community stubs with a global configuration model,
  // re-rolling same-community pairs a few times to keep mu honest.
  stubs.clear();
  for (uint32_t v = 0; v < n; ++v) {
    for (uint32_t i = intra_degree[v]; i < degree[v]; ++i) stubs.push_back(v);
  }
  for (size_t i = stubs.size(); i > 1; --i) {
    std::swap(stubs[i - 1], stubs[rng.UniformInt(i)]);
  }
  for (size_t i = 0; i + 1 < stubs.size(); i += 2) {
    NodeId a = stubs[i];
    NodeId b = stubs[i + 1];
    for (int retry = 0;
         retry < 4 && (a == b || assignment[a] == assignment[b]); ++retry) {
      const size_t j = rng.UniformInt(stubs.size());
      std::swap(stubs[i + 1], stubs[j]);
      b = stubs[i + 1];
    }
    if (a != b) builder.AddEdge(a, b);
  }

  CommunitySet communities;
  for (auto& m : members) {
    std::sort(m.begin(), m.end());
    communities.Add(std::move(m));
  }
  return CommunityGraph{builder.Build(), std::move(communities)};
}

}  // namespace hkpr
