// Ground-truth community sets for clustering-quality experiments (Table 8).

#ifndef HKPR_GRAPH_COMMUNITY_H_
#define HKPR_GRAPH_COMMUNITY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace hkpr {

/// A collection of (possibly overlapping) node communities, matching the
/// role of SNAP's top-5000 ground-truth community files in the paper's
/// "Clusters Produced vs. Ground-truth" experiment.
class CommunitySet {
 public:
  CommunitySet() = default;

  /// Takes ownership of explicit community node lists.
  explicit CommunitySet(std::vector<std::vector<NodeId>> communities)
      : communities_(std::move(communities)) {}

  /// Appends a community; returns its index.
  size_t Add(std::vector<NodeId> members) {
    communities_.push_back(std::move(members));
    return communities_.size() - 1;
  }

  size_t NumCommunities() const { return communities_.size(); }
  bool empty() const { return communities_.empty(); }

  const std::vector<NodeId>& Community(size_t i) const {
    return communities_[i];
  }
  const std::vector<std::vector<NodeId>>& communities() const {
    return communities_;
  }

  /// Indices of communities with at least `min_size` members (the paper
  /// selects seeds from communities of size >= 100).
  std::vector<size_t> CommunitiesOfSizeAtLeast(size_t min_size) const;

  /// Index of the first community containing `v`, or -1 if none.
  /// O(total membership) on first call; cached afterwards (single-membership
  /// lookup table).
  int64_t CommunityOf(NodeId v, uint32_t num_nodes) const;

  /// Loads "one community per line, whitespace-separated node ids" text
  /// (SNAP's cmty format).
  static Result<CommunitySet> Load(const std::string& path);

  /// Writes the SNAP cmty text format.
  Status Save(const std::string& path) const;

 private:
  std::vector<std::vector<NodeId>> communities_;
  mutable std::vector<int64_t> membership_;  // lazily built lookup
};

}  // namespace hkpr

#endif  // HKPR_GRAPH_COMMUNITY_H_
