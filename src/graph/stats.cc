#include "graph/stats.h"

#include <algorithm>
#include <deque>

#include "common/logging.h"

namespace hkpr {

DegreeStats ComputeDegreeStats(const Graph& graph) {
  DegreeStats stats;
  const uint32_t n = graph.NumNodes();
  if (n == 0) return stats;
  std::vector<uint32_t> degrees(n);
  uint64_t sum = 0;
  for (NodeId v = 0; v < n; ++v) {
    degrees[v] = graph.Degree(v);
    sum += degrees[v];
  }
  std::sort(degrees.begin(), degrees.end());
  stats.min = degrees.front();
  stats.max = degrees.back();
  stats.mean = static_cast<double>(sum) / n;
  stats.median = n % 2 == 1 ? degrees[n / 2]
                            : (degrees[n / 2 - 1] + degrees[n / 2]) / 2.0;
  stats.p90 = degrees[std::min<size_t>(n - 1, (n * 9ull) / 10)];
  return stats;
}

std::vector<uint64_t> DegreeHistogram(const Graph& graph) {
  std::vector<uint64_t> histogram(graph.MaxDegree() + 1, 0);
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    ++histogram[graph.Degree(v)];
  }
  return histogram;
}

double LocalClusteringCoefficient(const Graph& graph, NodeId v) {
  const uint32_t d = graph.Degree(v);
  if (d < 2) return 0.0;
  auto nbrs = graph.Neighbors(v);
  uint64_t closed = 0;
  for (size_t i = 0; i < nbrs.size(); ++i) {
    for (size_t j = i + 1; j < nbrs.size(); ++j) {
      if (graph.HasEdge(nbrs[i], nbrs[j])) ++closed;
    }
  }
  return 2.0 * static_cast<double>(closed) /
         (static_cast<double>(d) * (d - 1));
}

double AverageClusteringCoefficient(const Graph& graph, uint32_t sample_size,
                                    Rng& rng) {
  const uint32_t n = graph.NumNodes();
  if (n == 0) return 0.0;
  double sum = 0.0;
  uint32_t counted = 0;
  if (sample_size == 0 || sample_size >= n) {
    for (NodeId v = 0; v < n; ++v) {
      if (graph.Degree(v) < 2) continue;
      sum += LocalClusteringCoefficient(graph, v);
      ++counted;
    }
  } else {
    uint32_t attempts = 0;
    while (counted < sample_size && attempts < 50u * sample_size) {
      ++attempts;
      const NodeId v = static_cast<NodeId>(rng.UniformInt(n));
      if (graph.Degree(v) < 2) continue;
      sum += LocalClusteringCoefficient(graph, v);
      ++counted;
    }
  }
  return counted > 0 ? sum / counted : 0.0;
}

double AverageClusteringCoefficient(const Graph& graph) {
  Rng rng(0);
  return AverageClusteringCoefficient(graph, 0, rng);
}

uint64_t CountTriangles(const Graph& graph) {
  // For every node, intersect pairs of higher-id neighbors; each triangle
  // {a < b < c} is found exactly once at its smallest node.
  uint64_t triangles = 0;
  for (NodeId a = 0; a < graph.NumNodes(); ++a) {
    auto nbrs = graph.Neighbors(a);
    // Neighbors are sorted; restrict to > a.
    const auto begin =
        std::upper_bound(nbrs.begin(), nbrs.end(), a);
    for (auto i = begin; i != nbrs.end(); ++i) {
      for (auto j = i + 1; j != nbrs.end(); ++j) {
        if (graph.HasEdge(*i, *j)) ++triangles;
      }
    }
  }
  return triangles;
}

double GlobalClusteringCoefficient(const Graph& graph) {
  uint64_t wedges = 0;
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    const uint64_t d = graph.Degree(v);
    wedges += d * (d - 1) / 2;
  }
  if (wedges == 0) return 0.0;
  return 3.0 * static_cast<double>(CountTriangles(graph)) /
         static_cast<double>(wedges);
}

namespace {

/// BFS returning the farthest node and its distance.
std::pair<NodeId, uint32_t> BfsFarthest(const Graph& graph, NodeId start) {
  std::vector<uint32_t> dist(graph.NumNodes(), 0xFFFFFFFFu);
  std::deque<NodeId> queue;
  dist[start] = 0;
  queue.push_back(start);
  NodeId farthest = start;
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    if (dist[u] > dist[farthest]) farthest = u;
    for (NodeId v : graph.Neighbors(u)) {
      if (dist[v] == 0xFFFFFFFFu) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return {farthest, dist[farthest]};
}

}  // namespace

uint32_t EstimateDiameter(const Graph& graph, NodeId start) {
  HKPR_CHECK(start < graph.NumNodes());
  const auto [far_node, _] = BfsFarthest(graph, start);
  return BfsFarthest(graph, far_node).second;
}

}  // namespace hkpr
