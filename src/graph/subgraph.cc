#include "graph/subgraph.h"

#include <algorithm>
#include <deque>

#include "common/flat_map.h"
#include "graph/graph_builder.h"

namespace hkpr {

InducedSubgraph Induce(const Graph& graph, std::span<const NodeId> nodes) {
  InducedSubgraph out;
  FlatMap<NodeId> to_local(nodes.size());
  for (NodeId v : nodes) {
    if (!to_local.Contains(v)) {
      to_local[v] = static_cast<NodeId>(out.to_original.size());
      out.to_original.push_back(v);
    }
  }
  GraphBuilder builder(static_cast<uint32_t>(out.to_original.size()));
  for (NodeId local_u = 0; local_u < out.to_original.size(); ++local_u) {
    const NodeId u = out.to_original[local_u];
    for (NodeId v : graph.Neighbors(u)) {
      const NodeId* local_v = to_local.Find(v);
      if (local_v != nullptr && u < v) builder.AddEdge(local_u, *local_v);
    }
  }
  out.graph = builder.Build();
  return out;
}

uint64_t InternalEdgeCount(const Graph& graph, std::span<const NodeId> nodes) {
  FlatSet in_set(nodes.size());
  for (NodeId v : nodes) in_set.Insert(v);
  uint64_t internal_arcs = 0;
  in_set.ForEach([&](NodeId u) {
    for (NodeId v : graph.Neighbors(u)) {
      if (in_set.Contains(v)) ++internal_arcs;
    }
  });
  return internal_arcs / 2;
}

double EdgeDensity(const Graph& graph, std::span<const NodeId> nodes) {
  if (nodes.empty()) return 0.0;
  FlatSet distinct(nodes.size());
  for (NodeId v : nodes) distinct.Insert(v);
  return static_cast<double>(InternalEdgeCount(graph, nodes)) /
         static_cast<double>(distinct.size());
}

std::vector<NodeId> RandomBfsBall(const Graph& graph, NodeId start,
                                  uint32_t target_size, Rng& rng) {
  std::vector<NodeId> ball;
  if (graph.NumNodes() == 0) return ball;
  FlatSet visited(target_size * 2);
  std::deque<NodeId> frontier;
  frontier.push_back(start);
  visited.Insert(start);
  std::vector<NodeId> shuffled;
  while (!frontier.empty() && ball.size() < target_size) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    ball.push_back(u);
    auto nbrs = graph.Neighbors(u);
    shuffled.assign(nbrs.begin(), nbrs.end());
    for (size_t i = shuffled.size(); i > 1; --i) {
      std::swap(shuffled[i - 1], shuffled[rng.UniformInt(i)]);
    }
    for (NodeId v : shuffled) {
      if (visited.size() + frontier.size() >= 4ull * target_size) break;
      if (visited.Insert(v)) frontier.push_back(v);
    }
  }
  return ball;
}

ComponentLabels ConnectedComponents(const Graph& graph) {
  ComponentLabels out;
  const uint32_t n = graph.NumNodes();
  out.label.assign(n, 0xFFFFFFFFu);
  std::vector<NodeId> stack;
  for (NodeId root = 0; root < n; ++root) {
    if (out.label[root] != 0xFFFFFFFFu) continue;
    const uint32_t c = out.num_components++;
    out.label[root] = c;
    stack.push_back(root);
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (NodeId v : graph.Neighbors(u)) {
        if (out.label[v] == 0xFFFFFFFFu) {
          out.label[v] = c;
          stack.push_back(v);
        }
      }
    }
  }
  return out;
}

Graph RestrictToLargestComponent(const Graph& graph) {
  return Induce(graph, LargestComponent(graph)).graph;
}

std::vector<NodeId> LargestComponent(const Graph& graph) {
  const ComponentLabels cc = ConnectedComponents(graph);
  std::vector<uint64_t> size(cc.num_components, 0);
  for (uint32_t v = 0; v < graph.NumNodes(); ++v) ++size[cc.label[v]];
  uint32_t best = 0;
  for (uint32_t c = 1; c < cc.num_components; ++c) {
    if (size[c] > size[best]) best = c;
  }
  std::vector<NodeId> nodes;
  nodes.reserve(cc.num_components > 0 ? size[best] : 0);
  for (uint32_t v = 0; v < graph.NumNodes(); ++v) {
    if (cc.label[v] == best) nodes.push_back(v);
  }
  return nodes;
}

}  // namespace hkpr
