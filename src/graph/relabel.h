// Degree-ordered graph layout.
//
// On graphs that do not fit in cache, HKPR query traffic is dominated by
// adjacency reads of a small set of hub nodes (heat spreads through hubs;
// Zipfian serving traffic concentrates on them too). In the standard CSR
// layout those hub rows are scattered across the whole adjacency array —
// one TLB/page-cache miss per hub visit. RelabelByDegree() rewrites the
// *physical* row placement so that rows are stored in descending-degree
// order: the hottest adjacency lists pack into the first pages of the
// array, where they stay resident together.
//
// Deliberate design choice — placement, not renumbering: node ids are NOT
// changed. A full renumbering (as in graph-tool-style generation pipelines)
// would also compact the id range the per-query score/residue tables touch,
// but it changes every neighbor list's order and therefore every random
// walk trajectory and every floating-point accumulation order — query
// results would differ bit-for-bit from the unrelabeled graph, caches keyed
// on seeds would need translation, and external ids would leak complexity
// into every serving layer. Permuting placement only keeps external seed
// ids, results and cache keys unchanged *and* keeps every backend's output
// bit-identical per (engine seed, query index) — which is what makes the
// pass safe to apply at load time under a live service (tested across all
// registry backends in relabel_test.cc).
//
// The old<->new mapping (id -> physical rank and back) is exposed for
// introspection, tooling, and as the contract tests pin down.

#ifndef HKPR_GRAPH_RELABEL_H_
#define HKPR_GRAPH_RELABEL_H_

#include <vector>

#include "graph/graph.h"

namespace hkpr {

/// A degree-ordered copy of a graph plus the placement mapping.
struct DegreeOrderedLayout {
  /// Same node ids, same neighbor lists, physically reordered rows
  /// (graph.degree_ordered() is true). Query results are bit-identical to
  /// the input graph's.
  Graph graph;
  /// order[rank] = the node id stored at physical rank `rank` (new -> old).
  /// Ranks are by descending degree, ties broken by ascending id — a
  /// deterministic function of the input graph.
  std::vector<NodeId> order;
  /// rank[v] = the physical rank of node v's row (old -> new). Inverse of
  /// `order`.
  std::vector<NodeId> rank;
};

/// Rewrites `graph` into the degree-ordered layout. O(n log n + m). The
/// result is a fresh heap-backed graph (save it with SaveBinary to get an
/// mmap-able degree-ordered snapshot: the row_starts section rides along).
DegreeOrderedLayout RelabelByDegree(const Graph& graph);

}  // namespace hkpr

#endif  // HKPR_GRAPH_RELABEL_H_
