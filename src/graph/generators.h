// Synthetic graph generators.
//
// Two of these reproduce the paper's own synthetic datasets exactly
// (PowerlawCluster == "PLC" via the Holme-Kim algorithm, Grid3D == "3D-grid");
// the rest provide structurally-matched stand-ins for the SNAP datasets that
// are not redistributable here (see DESIGN.md Section 4), plus planted
// ground-truth communities for the Table 8 experiment.
//
// All generators are deterministic functions of their seed.

#ifndef HKPR_GRAPH_GENERATORS_H_
#define HKPR_GRAPH_GENERATORS_H_

#include <cstdint>

#include "graph/community.h"
#include "graph/graph.h"

namespace hkpr {

/// G(n, m): n nodes, m uniformly random distinct undirected edges.
Graph ErdosRenyiGnm(uint32_t n, uint64_t m, uint64_t seed);

/// G(n, p) via geometric edge skipping; O(n + m) expected time.
Graph ErdosRenyiGnp(uint32_t n, double p, uint64_t seed);

/// Barabasi-Albert preferential attachment: each new node attaches
/// `edges_per_node` edges to existing nodes chosen proportionally to degree.
Graph BarabasiAlbert(uint32_t n, uint32_t edges_per_node, uint64_t seed);

/// Holme-Kim powerlaw-cluster model: preferential attachment where each
/// subsequent link of a new node performs triad formation (connects to a
/// random neighbor of the previously chosen target) with probability
/// `triangle_prob`. This is the generator behind the paper's PLC dataset
/// ("powerlaw degree distribution and approximate average clustering").
Graph PowerlawCluster(uint32_t n, uint32_t edges_per_node, double triangle_prob,
                      uint64_t seed);

/// 3D grid where every node has six neighbors (two per dimension). With
/// `torus` the grid wraps around (all degrees exactly 6, matching the paper's
/// 3D-grid dataset); otherwise boundary nodes have fewer neighbors.
/// Dimensions must be >= 3 when `torus` is set (otherwise +1/-1 collide).
Graph Grid3D(uint32_t nx, uint32_t ny, uint32_t nz, bool torus);

/// Parameters of the R-MAT recursive-matrix generator (Graph500 defaults).
struct RmatOptions {
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;  // d = 1 - a - b - c
  /// Randomly permute node ids so degree is not correlated with id.
  bool scramble_ids = true;
};

/// R-MAT graph with 2^scale nodes and ~`avg_degree * 2^scale / 2` undirected
/// edges (before dedup). Produces the heavy-tailed degree distribution that
/// stands in for Twitter/Friendster/Orkut-class social networks.
Graph Rmat(uint32_t scale, double avg_degree, uint64_t seed,
           const RmatOptions& options = RmatOptions());

/// A graph plus its planted ground-truth communities.
struct CommunityGraph {
  Graph graph;
  CommunitySet communities;
};

/// Planted-partition stochastic block model: `num_communities` blocks of
/// `community_size` nodes; intra-block edge probability `p_in`, inter-block
/// probability `p_out`. O(n + m) expected time via geometric skipping.
CommunityGraph PlantedPartition(uint32_t num_communities,
                                uint32_t community_size, double p_in,
                                double p_out, uint64_t seed);

/// Parameters of the LFR-style community benchmark generator.
struct LfrOptions {
  uint32_t n = 10000;          ///< number of nodes
  double degree_exponent = 2.5;  ///< power-law exponent of the degree sequence
  uint32_t min_degree = 3;
  uint32_t max_degree = 50;
  double community_exponent = 1.5;  ///< power-law exponent of community sizes
  uint32_t min_community = 20;
  uint32_t max_community = 500;
  /// Mixing parameter: expected fraction of each node's edges that leave its
  /// community. Small mu => strong communities.
  double mu = 0.2;
};

/// LFR-style benchmark: power-law degrees, power-law community sizes, mixing
/// parameter mu, wired with per-community and global configuration models.
/// The planted communities serve as ground truth for F1 experiments.
CommunityGraph LfrLike(const LfrOptions& options, uint64_t seed);

/// Watts-Strogatz small world: a ring lattice where each node connects to
/// `neighbors_per_side` nodes on each side, with every edge rewired to a
/// random endpoint with probability `rewire_prob`. High clustering with
/// short paths — a useful contrast workload for diffusion locality.
Graph WattsStrogatz(uint32_t n, uint32_t neighbors_per_side,
                    double rewire_prob, uint64_t seed);

}  // namespace hkpr

#endif  // HKPR_GRAPH_GENERATORS_H_
