// Induced subgraphs and density utilities (Section 7.7 experiments).

#ifndef HKPR_GRAPH_SUBGRAPH_H_
#define HKPR_GRAPH_SUBGRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/random.h"
#include "graph/graph.h"

namespace hkpr {

/// A subgraph induced by a node subset, with id mappings back to the parent.
struct InducedSubgraph {
  Graph graph;                       ///< re-labelled subgraph
  std::vector<NodeId> to_original;   ///< local id -> parent id
};

/// Builds the subgraph induced by `nodes` (duplicates ignored). Local ids
/// follow the order of first appearance in `nodes`.
InducedSubgraph Induce(const Graph& graph, std::span<const NodeId> nodes);

/// Number of edges of `graph` with both endpoints in `nodes`.
uint64_t InternalEdgeCount(const Graph& graph, std::span<const NodeId> nodes);

/// Edge density of a node set: internal edges divided by node count (the
/// classical density of a subgraph, paper reference [33]). Higher is denser.
double EdgeDensity(const Graph& graph, std::span<const NodeId> nodes);

/// Grows a breadth-first ball from `start` until `target_size` nodes are
/// collected (or the component is exhausted). Neighbors are visited in
/// randomized order so repeated calls with different seeds sample different
/// balls. Used to sample the "250 subgraphs" of the density-sensitivity
/// experiment (Figure 7).
std::vector<NodeId> RandomBfsBall(const Graph& graph, NodeId start,
                                  uint32_t target_size, Rng& rng);

/// Connected components; returns a label per node and the component count.
struct ComponentLabels {
  std::vector<uint32_t> label;
  uint32_t num_components = 0;
};
ComponentLabels ConnectedComponents(const Graph& graph);

/// Nodes of the largest connected component, sorted ascending.
std::vector<NodeId> LargestComponent(const Graph& graph);

/// The graph restricted (and relabelled) to its largest connected component
/// — the standard preprocessing applied to the SNAP datasets the paper uses.
Graph RestrictToLargestComponent(const Graph& graph);

}  // namespace hkpr

#endif  // HKPR_GRAPH_SUBGRAPH_H_
