// Graph serialization: SNAP-style edge-list text and a fast binary format.
//
// The binary CSR snapshot format (v2) is designed for serving large graphs:
//
//   byte [ 0,  8)  magic "HKPRCSR2"
//   byte [ 8, 12)  u32 format version (= 2)
//   byte [12, 16)  u32 byte-order check (kEndianCheck, 0x01020304): a file
//                  written on a different-endianness machine fails loudly
//                  instead of deserializing garbage
//   byte [16, 24)  u64 n (node count)
//   byte [24, 32)  u64 arcs (2m adjacency entries)
//   byte [32, 40)  u64 section flags (bit 0: row_starts section present —
//                  a degree-ordered layout, see graph/relabel.h)
//   byte [40, 48)  u64 file offset of the offsets section
//   byte [48, 56)  u64 file offset of the adjacency section
//   byte [56, 64)  u64 file offset of the row_starts section (0 if absent)
//   sections       offsets: (n+1) x u64; adjacency: arcs x u32;
//                  row_starts: n x u64 — each beginning at a 64-byte-aligned
//                  file offset (zero padding between sections)
//
// The 64-byte alignment means the sections can be pointed at *in place* by
// MapBinary(): the graph's CSR spans alias the mmap'd region, so loading a
// multi-gigabyte snapshot is O(1) page-table work, the resident cost is
// shared page cache (many processes / many GraphStore entries, one copy),
// and eviction under memory pressure is the kernel's problem. LoadBinary()
// reads the same format (and the legacy v1 "HKPRGRPH" format) into private
// heap vectors.

#ifndef HKPR_GRAPH_GRAPH_IO_H_
#define HKPR_GRAPH_GRAPH_IO_H_

#include <string>

#include "common/status.h"
#include "graph/graph.h"

namespace hkpr {

/// Loads an undirected graph from a whitespace-separated edge-list text file
/// (the SNAP distribution format). Lines starting with '#' or '%' are
/// comments. Node ids must be non-negative integers; the graph is
/// symmetrized, deduplicated and stripped of self-loops.
Result<Graph> LoadEdgeList(const std::string& path);

/// Writes the graph as an edge-list text file with one "u v" line per
/// undirected edge (u < v), preceded by a comment header.
Status SaveEdgeList(const Graph& graph, const std::string& path);

/// Writes the binary CSR snapshot format (v2, see the header comment). A
/// degree-ordered graph keeps its layout: the row_starts section rides
/// along, so a relabeled graph round-trips bit-identically.
Status SaveBinary(const Graph& graph, const std::string& path);

/// Loads a binary CSR snapshot into private heap vectors. Accepts v2 files
/// and the legacy v1 "HKPRGRPH" format. Corrupt, truncated, bad-magic and
/// wrong-endian files report a clean Status error (never abort).
Result<Graph> LoadBinary(const std::string& path);

/// Maps a v2 binary CSR snapshot read-only into memory and returns a Graph
/// whose CSR spans alias the mapping (zero copy; the mapping is unmapped
/// when the last Graph copy dies, so a GraphStore::Remove() under in-flight
/// queries is safe). With `validate` (the default) the sections are scanned
/// once for structural sanity — offsets monotone, adjacency ids < n, row
/// placements in bounds — so a corrupt file is an error here rather than an
/// out-of-bounds read on the query path. Requires a v2 file (the legacy v1
/// header has no alignment guarantee); fails with a clean error otherwise.
Result<Graph> MapBinary(const std::string& path, bool validate = true);

}  // namespace hkpr

#endif  // HKPR_GRAPH_GRAPH_IO_H_
