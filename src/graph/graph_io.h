// Graph serialization: SNAP-style edge-list text and a fast binary format.

#ifndef HKPR_GRAPH_GRAPH_IO_H_
#define HKPR_GRAPH_GRAPH_IO_H_

#include <string>

#include "common/status.h"
#include "graph/graph.h"

namespace hkpr {

/// Loads an undirected graph from a whitespace-separated edge-list text file
/// (the SNAP distribution format). Lines starting with '#' or '%' are
/// comments. Node ids must be non-negative integers; the graph is
/// symmetrized, deduplicated and stripped of self-loops.
Result<Graph> LoadEdgeList(const std::string& path);

/// Writes the graph as an edge-list text file with one "u v" line per
/// undirected edge (u < v), preceded by a comment header.
Status SaveEdgeList(const Graph& graph, const std::string& path);

/// Loads a graph from the binary CSR format written by SaveBinary.
Result<Graph> LoadBinary(const std::string& path);

/// Writes the CSR arrays in a little-endian binary format:
///   magic "HKPRGRPH" | u64 n | u64 arcs | u64 offsets[n+1] | u32 adjacency[arcs]
Status SaveBinary(const Graph& graph, const std::string& path);

}  // namespace hkpr

#endif  // HKPR_GRAPH_GRAPH_IO_H_
