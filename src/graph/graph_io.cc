#include "graph/graph_io.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "graph/graph_builder.h"

namespace hkpr {

namespace {

constexpr char kMagic[8] = {'H', 'K', 'P', 'R', 'G', 'R', 'P', 'H'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

Result<Graph> LoadEdgeList(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open " + path);

  GraphBuilder builder;
  char line[256];
  size_t line_no = 0;
  while (std::fgets(line, sizeof(line), f.get()) != nullptr) {
    ++line_no;
    const char* p = line;
    while (*p == ' ' || *p == '\t') ++p;
    if (*p == '#' || *p == '%' || *p == '\n' || *p == '\0') continue;
    char* end = nullptr;
    const unsigned long long u = std::strtoull(p, &end, 10);
    if (end == p) {
      return Status::IOError(path + ": malformed line " +
                             std::to_string(line_no));
    }
    p = end;
    const unsigned long long v = std::strtoull(p, &end, 10);
    if (end == p) {
      return Status::IOError(path + ": malformed line " +
                             std::to_string(line_no));
    }
    if (u > 0xFFFFFFFFull || v > 0xFFFFFFFFull) {
      return Status::OutOfRange(path + ": node id exceeds 32 bits at line " +
                                std::to_string(line_no));
    }
    builder.AddEdge(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  return builder.Build();
}

Status SaveEdgeList(const Graph& graph, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IOError("cannot open " + path + " for writing");
  std::fprintf(f.get(), "# undirected graph: %u nodes, %llu edges\n",
               graph.NumNodes(),
               static_cast<unsigned long long>(graph.NumEdges()));
  for (NodeId u = 0; u < graph.NumNodes(); ++u) {
    for (NodeId v : graph.Neighbors(u)) {
      if (u < v) std::fprintf(f.get(), "%u %u\n", u, v);
    }
  }
  return Status::OK();
}

Status SaveBinary(const Graph& graph, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IOError("cannot open " + path + " for writing");
  const uint64_t n = graph.NumNodes();
  const uint64_t arcs = graph.adjacency().size();
  if (std::fwrite(kMagic, 1, sizeof(kMagic), f.get()) != sizeof(kMagic) ||
      std::fwrite(&n, sizeof(n), 1, f.get()) != 1 ||
      std::fwrite(&arcs, sizeof(arcs), 1, f.get()) != 1 ||
      std::fwrite(graph.offsets().data(), sizeof(uint64_t), n + 1, f.get()) !=
          n + 1 ||
      (arcs > 0 && std::fwrite(graph.adjacency().data(), sizeof(NodeId), arcs,
                               f.get()) != arcs)) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

Result<Graph> LoadBinary(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open " + path);
  char magic[8];
  uint64_t n = 0;
  uint64_t arcs = 0;
  if (std::fread(magic, 1, sizeof(magic), f.get()) != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::IOError(path + ": bad magic (not an hkpr binary graph)");
  }
  if (std::fread(&n, sizeof(n), 1, f.get()) != 1 ||
      std::fread(&arcs, sizeof(arcs), 1, f.get()) != 1) {
    return Status::IOError(path + ": truncated header");
  }
  std::vector<uint64_t> offsets(n + 1);
  std::vector<NodeId> adjacency(arcs);
  if (std::fread(offsets.data(), sizeof(uint64_t), n + 1, f.get()) != n + 1) {
    return Status::IOError(path + ": truncated offsets");
  }
  if (arcs > 0 &&
      std::fread(adjacency.data(), sizeof(NodeId), arcs, f.get()) != arcs) {
    return Status::IOError(path + ": truncated adjacency");
  }
  return Graph::FromCsr(std::move(offsets), std::move(adjacency));
}

}  // namespace hkpr
