#include "graph/graph_io.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "graph/graph_builder.h"

namespace hkpr {

namespace {

constexpr char kMagicV1[8] = {'H', 'K', 'P', 'R', 'G', 'R', 'P', 'H'};
constexpr char kMagicV2[8] = {'H', 'K', 'P', 'R', 'C', 'S', 'R', '2'};
constexpr uint32_t kFormatVersion = 2;
constexpr uint32_t kEndianCheck = 0x01020304u;
constexpr uint64_t kSectionAlign = 64;
constexpr uint64_t kFlagRowStarts = 1ull << 0;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

/// The fixed 64-byte v2 header (one section-aligned block).
struct BinaryHeader {
  char magic[8];
  uint32_t version;
  uint32_t endian_check;
  uint64_t num_nodes;
  uint64_t num_arcs;
  uint64_t flags;
  uint64_t offsets_pos;
  uint64_t adjacency_pos;
  uint64_t row_starts_pos;
};
static_assert(sizeof(BinaryHeader) == kSectionAlign,
              "v2 header must fill exactly one aligned block");

uint64_t AlignUp(uint64_t pos) {
  return (pos + kSectionAlign - 1) & ~(kSectionAlign - 1);
}

bool WritePadding(std::FILE* f, uint64_t current, uint64_t target) {
  static const char kZeros[kSectionAlign] = {};
  if (target < current) return false;
  return std::fwrite(kZeros, 1, target - current, f) == target - current;
}

/// Owns one read-only mmap'd file region; Graphs returned by MapBinary()
/// keep a shared_ptr to this, so the region outlives GraphStore::Remove()
/// for as long as any in-flight query holds the graph.
struct MappedFile {
  void* data = nullptr;
  size_t size = 0;

  ~MappedFile() {
    if (data != nullptr) ::munmap(data, size);
  }
};

Status HeaderError(const std::string& path, const BinaryHeader& header) {
  if (std::memcmp(header.magic, kMagicV2, sizeof(kMagicV2)) != 0) {
    return Status::IOError(path + ": bad magic (not an hkpr binary graph)");
  }
  if (header.endian_check != kEndianCheck) {
    return Status::IOError(path +
                           ": byte-order mismatch (file written on a "
                           "different-endianness machine)");
  }
  if (header.version != kFormatVersion) {
    return Status::IOError(path + ": unsupported format version " +
                           std::to_string(header.version));
  }
  if (header.num_nodes > 0xFFFFFFFFull - 1) {
    return Status::OutOfRange(path + ": node count exceeds 32 bits");
  }
  return Status::OK();
}

/// Validates that a section [pos, pos + bytes) lies inside the file and is
/// aligned for in-place pointing.
Status CheckSection(const std::string& path, const char* what, uint64_t pos,
                    uint64_t bytes, uint64_t file_size) {
  if (pos % kSectionAlign != 0) {
    return Status::IOError(path + ": misaligned " + std::string(what) +
                           " section");
  }
  if (pos > file_size || bytes > file_size - pos) {
    return Status::IOError(path + ": truncated " + std::string(what) +
                           " section");
  }
  return Status::OK();
}

/// Structural sanity of loaded/mapped CSR sections; linear scans, done once
/// per load so a corrupt file can never become an out-of-bounds read on the
/// query path.
Status ValidateCsrSections(const std::string& path,
                           std::span<const uint64_t> offsets,
                           std::span<const NodeId> adjacency,
                           std::span<const uint64_t> row_starts) {
  const uint64_t n = offsets.size() - 1;
  if (offsets.front() != 0 || offsets.back() != adjacency.size()) {
    return Status::IOError(path + ": offsets do not span the adjacency");
  }
  for (uint64_t v = 0; v < n; ++v) {
    if (offsets[v] > offsets[v + 1]) {
      return Status::IOError(path + ": offsets not monotone at node " +
                             std::to_string(v));
    }
  }
  for (const NodeId u : adjacency) {
    if (u >= n) {
      return Status::IOError(path + ": adjacency id out of range");
    }
  }
  if (!row_starts.empty()) {
    for (uint64_t v = 0; v < n; ++v) {
      const uint64_t degree = offsets[v + 1] - offsets[v];
      if (row_starts[v] > adjacency.size() ||
          degree > adjacency.size() - row_starts[v]) {
        return Status::IOError(path + ": row placement out of bounds at node " +
                               std::to_string(v));
      }
    }
  }
  return Status::OK();
}

/// Legacy v1: magic | u64 n | u64 arcs | offsets | adjacency, unaligned.
Result<Graph> LoadBinaryV1(std::FILE* f, const std::string& path) {
  uint64_t n = 0;
  uint64_t arcs = 0;
  if (std::fread(&n, sizeof(n), 1, f) != 1 ||
      std::fread(&arcs, sizeof(arcs), 1, f) != 1) {
    return Status::IOError(path + ": truncated header");
  }
  if (n > 0xFFFFFFFFull - 1) {
    return Status::OutOfRange(path + ": node count exceeds 32 bits");
  }
  std::vector<uint64_t> offsets(n + 1);
  std::vector<NodeId> adjacency(arcs);
  if (std::fread(offsets.data(), sizeof(uint64_t), n + 1, f) != n + 1) {
    return Status::IOError(path + ": truncated offsets");
  }
  if (arcs > 0 &&
      std::fread(adjacency.data(), sizeof(NodeId), arcs, f) != arcs) {
    return Status::IOError(path + ": truncated adjacency");
  }
  Status valid = ValidateCsrSections(path, offsets, adjacency, {});
  if (!valid.ok()) return valid;
  return Graph::FromCsr(std::move(offsets), std::move(adjacency));
}

}  // namespace

Result<Graph> LoadEdgeList(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open " + path);

  GraphBuilder builder;
  char line[256];
  size_t line_no = 0;
  while (std::fgets(line, sizeof(line), f.get()) != nullptr) {
    ++line_no;
    const char* p = line;
    while (*p == ' ' || *p == '\t') ++p;
    if (*p == '#' || *p == '%' || *p == '\n' || *p == '\0') continue;
    char* end = nullptr;
    const unsigned long long u = std::strtoull(p, &end, 10);
    if (end == p) {
      return Status::IOError(path + ": malformed line " +
                             std::to_string(line_no));
    }
    p = end;
    const unsigned long long v = std::strtoull(p, &end, 10);
    if (end == p) {
      return Status::IOError(path + ": malformed line " +
                             std::to_string(line_no));
    }
    if (u > 0xFFFFFFFFull || v > 0xFFFFFFFFull) {
      return Status::OutOfRange(path + ": node id exceeds 32 bits at line " +
                                std::to_string(line_no));
    }
    builder.AddEdge(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  return builder.Build();
}

Status SaveEdgeList(const Graph& graph, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IOError("cannot open " + path + " for writing");
  std::fprintf(f.get(), "# undirected graph: %u nodes, %llu edges\n",
               graph.NumNodes(),
               static_cast<unsigned long long>(graph.NumEdges()));
  for (NodeId u = 0; u < graph.NumNodes(); ++u) {
    for (NodeId v : graph.Neighbors(u)) {
      if (u < v) std::fprintf(f.get(), "%u %u\n", u, v);
    }
  }
  return Status::OK();
}

Status SaveBinary(const Graph& graph, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IOError("cannot open " + path + " for writing");

  const uint64_t n = graph.NumNodes();
  const uint64_t arcs = graph.adjacency().size();
  const bool with_rows = graph.degree_ordered();

  BinaryHeader header = {};
  std::memcpy(header.magic, kMagicV2, sizeof(kMagicV2));
  header.version = kFormatVersion;
  header.endian_check = kEndianCheck;
  header.num_nodes = n;
  header.num_arcs = arcs;
  header.flags = with_rows ? kFlagRowStarts : 0;
  header.offsets_pos = sizeof(BinaryHeader);
  header.adjacency_pos =
      AlignUp(header.offsets_pos + (n + 1) * sizeof(uint64_t));
  header.row_starts_pos =
      with_rows ? AlignUp(header.adjacency_pos + arcs * sizeof(NodeId)) : 0;

  if (std::fwrite(&header, sizeof(header), 1, f.get()) != 1 ||
      std::fwrite(graph.offsets().data(), sizeof(uint64_t), n + 1, f.get()) !=
          n + 1 ||
      !WritePadding(f.get(), header.offsets_pos + (n + 1) * sizeof(uint64_t),
                    header.adjacency_pos) ||
      (arcs > 0 && std::fwrite(graph.adjacency().data(), sizeof(NodeId), arcs,
                               f.get()) != arcs)) {
    return Status::IOError("short write to " + path);
  }
  if (with_rows) {
    if (!WritePadding(f.get(), header.adjacency_pos + arcs * sizeof(NodeId),
                      header.row_starts_pos) ||
        std::fwrite(graph.row_starts().data(), sizeof(uint64_t), n, f.get()) !=
            n) {
      return Status::IOError("short write to " + path);
    }
  }
  return Status::OK();
}

Result<Graph> LoadBinary(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open " + path);

  char magic[8];
  if (std::fread(magic, 1, sizeof(magic), f.get()) != sizeof(magic)) {
    return Status::IOError(path + ": truncated header");
  }
  if (std::memcmp(magic, kMagicV1, sizeof(kMagicV1)) == 0) {
    return LoadBinaryV1(f.get(), path);
  }

  BinaryHeader header = {};
  std::memcpy(header.magic, magic, sizeof(magic));
  if (std::fread(reinterpret_cast<char*>(&header) + sizeof(magic),
                 sizeof(header) - sizeof(magic), 1, f.get()) != 1) {
    // Still diagnose bad magic first: a short non-graph file should say
    // "bad magic", not "truncated".
    BinaryHeader magic_only = {};
    std::memcpy(magic_only.magic, magic, sizeof(magic));
    magic_only.endian_check = kEndianCheck;
    magic_only.version = kFormatVersion;
    Status status = HeaderError(path, magic_only);
    if (!status.ok()) return status;
    return Status::IOError(path + ": truncated header");
  }
  Status status = HeaderError(path, header);
  if (!status.ok()) return status;

  const uint64_t n = header.num_nodes;
  const uint64_t arcs = header.num_arcs;
  std::vector<uint64_t> offsets(n + 1);
  std::vector<NodeId> adjacency(arcs);
  std::vector<uint64_t> row_starts;
  if (std::fseek(f.get(), static_cast<long>(header.offsets_pos), SEEK_SET) !=
          0 ||
      std::fread(offsets.data(), sizeof(uint64_t), n + 1, f.get()) != n + 1) {
    return Status::IOError(path + ": truncated offsets");
  }
  if (std::fseek(f.get(), static_cast<long>(header.adjacency_pos), SEEK_SET) !=
          0 ||
      (arcs > 0 &&
       std::fread(adjacency.data(), sizeof(NodeId), arcs, f.get()) != arcs)) {
    return Status::IOError(path + ": truncated adjacency");
  }
  if (header.flags & kFlagRowStarts) {
    row_starts.resize(n);
    if (std::fseek(f.get(), static_cast<long>(header.row_starts_pos),
                   SEEK_SET) != 0 ||
        (n > 0 && std::fread(row_starts.data(), sizeof(uint64_t), n,
                             f.get()) != n)) {
      return Status::IOError(path + ": truncated row_starts");
    }
  }
  Status valid = ValidateCsrSections(path, offsets, adjacency, row_starts);
  if (!valid.ok()) return valid;
  if (row_starts.empty()) {
    return Graph::FromCsr(std::move(offsets), std::move(adjacency));
  }
  return Graph::FromPermutedCsr(std::move(offsets), std::move(adjacency),
                                std::move(row_starts));
}

Result<Graph> MapBinary(const std::string& path, bool validate) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError("cannot open " + path);
  struct stat st = {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("cannot stat " + path);
  }
  const uint64_t file_size = static_cast<uint64_t>(st.st_size);
  if (file_size < sizeof(BinaryHeader)) {
    ::close(fd);
    return Status::IOError(path + ": truncated header");
  }

  void* mapping = ::mmap(nullptr, file_size, PROT_READ, MAP_PRIVATE, fd, 0);
  // The mapping pins the file contents; the descriptor is no longer needed.
  ::close(fd);
  if (mapping == MAP_FAILED) {
    return Status::IOError("mmap failed for " + path + ": " +
                           std::strerror(errno));
  }
  auto region = std::make_shared<MappedFile>();
  region->data = mapping;
  region->size = file_size;

  BinaryHeader header = {};
  std::memcpy(&header, mapping, sizeof(header));
  Status status = HeaderError(path, header);
  if (!status.ok()) return status;

  const uint64_t n = header.num_nodes;
  const uint64_t arcs = header.num_arcs;
  status = CheckSection(path, "offsets", header.offsets_pos,
                        (n + 1) * sizeof(uint64_t), file_size);
  if (!status.ok()) return status;
  status = CheckSection(path, "adjacency", header.adjacency_pos,
                        arcs * sizeof(NodeId), file_size);
  if (!status.ok()) return status;
  const bool with_rows = (header.flags & kFlagRowStarts) != 0;
  if (with_rows) {
    status = CheckSection(path, "row_starts", header.row_starts_pos,
                          n * sizeof(uint64_t), file_size);
    if (!status.ok()) return status;
  }

  const char* base = static_cast<const char*>(mapping);
  std::span<const uint64_t> offsets(
      reinterpret_cast<const uint64_t*>(base + header.offsets_pos), n + 1);
  std::span<const NodeId> adjacency(
      reinterpret_cast<const NodeId*>(base + header.adjacency_pos), arcs);
  std::span<const uint64_t> row_starts;
  if (with_rows) {
    row_starts = std::span<const uint64_t>(
        reinterpret_cast<const uint64_t*>(base + header.row_starts_pos), n);
  }
  if (offsets.front() != 0 || offsets.back() != arcs) {
    return Status::IOError(path + ": offsets do not span the adjacency");
  }
  if (validate) {
    status = ValidateCsrSections(path, offsets, adjacency, row_starts);
    if (!status.ok()) return status;
  }
  return Graph::FromExternal(offsets, adjacency, row_starts,
                             std::move(region));
}

}  // namespace hkpr
