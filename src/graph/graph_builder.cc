#include "graph/graph_builder.h"

#include <algorithm>
#include <utility>

namespace hkpr {

Graph GraphBuilder::Build() {
  const uint32_t n = num_nodes_;

  // Count directed arc slots per node (both directions, self-loops skipped).
  std::vector<uint64_t> offsets(static_cast<size_t>(n) + 1, 0);
  for (const RawEdge& e : edges_) {
    if (e.u == e.v) continue;
    ++offsets[e.u + 1];
    ++offsets[e.v + 1];
  }
  for (uint32_t v = 0; v < n; ++v) offsets[v + 1] += offsets[v];

  // Scatter arcs.
  std::vector<NodeId> adjacency(offsets.back());
  std::vector<uint64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const RawEdge& e : edges_) {
    if (e.u == e.v) continue;
    adjacency[cursor[e.u]++] = e.v;
    adjacency[cursor[e.v]++] = e.u;
  }
  edges_.clear();
  edges_.shrink_to_fit();

  // Sort each row and remove duplicate arcs, compacting in place.
  uint64_t write = 0;
  uint64_t row_start = 0;
  std::vector<uint64_t> new_offsets(static_cast<size_t>(n) + 1, 0);
  for (uint32_t v = 0; v < n; ++v) {
    const uint64_t row_end = offsets[v + 1];
    std::sort(adjacency.begin() + row_start, adjacency.begin() + row_end);
    for (uint64_t i = row_start; i < row_end; ++i) {
      if (i > row_start && adjacency[i] == adjacency[i - 1]) continue;
      adjacency[write++] = adjacency[i];
    }
    new_offsets[v + 1] = write;
    row_start = row_end;
  }
  adjacency.resize(write);
  adjacency.shrink_to_fit();

  num_nodes_ = 0;
  return Graph::FromCsr(std::move(new_offsets), std::move(adjacency));
}

}  // namespace hkpr
