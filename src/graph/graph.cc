#include "graph/graph.h"

#include <algorithm>

namespace hkpr {

Graph Graph::FromCsr(std::vector<uint64_t> offsets,
                     std::vector<NodeId> adjacency) {
  HKPR_CHECK(!offsets.empty()) << "offsets must have at least one entry";
  HKPR_CHECK(offsets.front() == 0);
  HKPR_CHECK(offsets.back() == adjacency.size());
#ifndef NDEBUG
  const uint32_t n = static_cast<uint32_t>(offsets.size() - 1);
  for (uint32_t v = 0; v < n; ++v) {
    HKPR_DCHECK(offsets[v] <= offsets[v + 1]);
    for (uint64_t i = offsets[v]; i < offsets[v + 1]; ++i) {
      HKPR_DCHECK(adjacency[i] < n) << "neighbor id out of range";
      HKPR_DCHECK(adjacency[i] != v) << "self-loop in CSR";
      if (i > offsets[v]) {
        HKPR_DCHECK(adjacency[i - 1] < adjacency[i])
            << "adjacency row not strictly sorted";
      }
    }
  }
#endif
  Graph g;
  g.offsets_ = std::move(offsets);
  g.adjacency_ = std::move(adjacency);
  return g;
}

uint32_t Graph::MaxDegree() const {
  uint32_t best = 0;
  for (uint32_t v = 0; v < NumNodes(); ++v) best = std::max(best, Degree(v));
  return best;
}

bool Graph::HasEdge(NodeId u, NodeId v) const {
  auto nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

}  // namespace hkpr
