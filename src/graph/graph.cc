#include "graph/graph.h"

#include <algorithm>
#include <utility>

namespace hkpr {

struct Graph::OwnedStorage {
  std::vector<uint64_t> offsets;
  std::vector<NodeId> adjacency;
  std::vector<uint64_t> row_starts;  // empty in the standard layout
};

namespace {

#ifndef NDEBUG
/// Full structural validation shared by the owned-storage constructors:
/// per-row sortedness, id range, no self-loops. `row_starts` is the
/// physical placement (== offsets for the standard layout).
void DebugValidateRows(std::span<const uint64_t> offsets,
                       std::span<const NodeId> adjacency,
                       std::span<const uint64_t> row_starts) {
  const uint32_t n = static_cast<uint32_t>(offsets.size() - 1);
  for (uint32_t v = 0; v < n; ++v) {
    HKPR_DCHECK(offsets[v] <= offsets[v + 1]);
    const uint64_t degree = offsets[v + 1] - offsets[v];
    const uint64_t begin = row_starts[v];
    HKPR_DCHECK(begin + degree <= adjacency.size())
        << "row placement exceeds adjacency";
    for (uint64_t i = begin; i < begin + degree; ++i) {
      HKPR_DCHECK(adjacency[i] < n) << "neighbor id out of range";
      HKPR_DCHECK(adjacency[i] != v) << "self-loop in CSR";
      if (i > begin) {
        HKPR_DCHECK(adjacency[i - 1] < adjacency[i])
            << "adjacency row not strictly sorted";
      }
    }
  }
}
#endif

}  // namespace

Graph Graph::FromCsr(std::vector<uint64_t> offsets,
                     std::vector<NodeId> adjacency) {
  HKPR_CHECK(!offsets.empty()) << "offsets must have at least one entry";
  HKPR_CHECK(offsets.front() == 0);
  HKPR_CHECK(offsets.back() == adjacency.size());
  auto storage = std::make_shared<OwnedStorage>();
  storage->offsets = std::move(offsets);
  storage->adjacency = std::move(adjacency);

  Graph g;
  g.offsets_ = storage->offsets;
  g.adjacency_ = storage->adjacency;
  g.row_starts_ = g.offsets_.first(g.offsets_.size() - 1);
#ifndef NDEBUG
  DebugValidateRows(g.offsets_, g.adjacency_, g.row_starts_);
#endif
  g.storage_ = std::move(storage);
  return g;
}

Graph Graph::FromPermutedCsr(std::vector<uint64_t> offsets,
                             std::vector<NodeId> adjacency,
                             std::vector<uint64_t> row_starts) {
  HKPR_CHECK(!offsets.empty()) << "offsets must have at least one entry";
  HKPR_CHECK(offsets.front() == 0);
  HKPR_CHECK(offsets.back() == adjacency.size());
  HKPR_CHECK(row_starts.size() == offsets.size() - 1)
      << "need one physical row start per node";
#ifndef NDEBUG
  {
    // The permuted rows must tile the adjacency exactly: sorted row starts
    // with each row ending where the next begins.
    const uint32_t n = static_cast<uint32_t>(offsets.size() - 1);
    std::vector<std::pair<uint64_t, uint64_t>> placed;  // (start, degree)
    placed.reserve(n);
    for (uint32_t v = 0; v < n; ++v) {
      placed.emplace_back(row_starts[v], offsets[v + 1] - offsets[v]);
    }
    std::sort(placed.begin(), placed.end());
    uint64_t cursor = 0;
    for (const auto& [start, degree] : placed) {
      HKPR_DCHECK(start == cursor) << "permuted rows leave a gap or overlap";
      cursor += degree;
    }
    HKPR_DCHECK(cursor == adjacency.size());
  }
#endif
  auto storage = std::make_shared<OwnedStorage>();
  storage->offsets = std::move(offsets);
  storage->adjacency = std::move(adjacency);
  storage->row_starts = std::move(row_starts);

  Graph g;
  g.offsets_ = storage->offsets;
  g.adjacency_ = storage->adjacency;
  g.row_starts_ = storage->row_starts;
#ifndef NDEBUG
  DebugValidateRows(g.offsets_, g.adjacency_, g.row_starts_);
#endif
  g.storage_ = std::move(storage);
  return g;
}

Graph Graph::FromExternal(std::span<const uint64_t> offsets,
                          std::span<const NodeId> adjacency,
                          std::span<const uint64_t> row_starts,
                          std::shared_ptr<const void> storage) {
  HKPR_CHECK(!offsets.empty()) << "offsets must have at least one entry";
  HKPR_CHECK(offsets.front() == 0);
  HKPR_CHECK(offsets.back() == adjacency.size());
  Graph g;
  g.offsets_ = offsets;
  g.adjacency_ = adjacency;
  if (row_starts.empty()) {
    g.row_starts_ = offsets.first(offsets.size() - 1);
  } else {
    HKPR_CHECK(row_starts.size() == offsets.size() - 1)
        << "need one physical row start per node";
    g.row_starts_ = row_starts;
  }
  g.storage_ = std::move(storage);
  g.mmap_backed_ = true;
  return g;
}

uint32_t Graph::MaxDegree() const {
  uint32_t best = 0;
  for (uint32_t v = 0; v < NumNodes(); ++v) best = std::max(best, Degree(v));
  return best;
}

bool Graph::HasEdge(NodeId u, NodeId v) const {
  auto nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

}  // namespace hkpr
