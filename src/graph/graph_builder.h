// Mutable edge-list accumulator that produces immutable CSR graphs.

#ifndef HKPR_GRAPH_GRAPH_BUILDER_H_
#define HKPR_GRAPH_GRAPH_BUILDER_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace hkpr {

/// Accumulates undirected edges and finalizes them into a simple CSR Graph.
///
/// The builder tolerates duplicate edges, self-loops and arbitrary insertion
/// order; Build() symmetrizes, sorts, deduplicates and strips self-loops.
/// Node count is the maximum of the declared count and 1 + the largest id
/// seen, so isolated tail nodes can be declared up front.
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Declares at least `num_nodes` nodes (ids 0..num_nodes-1).
  explicit GraphBuilder(uint32_t num_nodes) : num_nodes_(num_nodes) {}

  /// Reserves capacity for `num_edges` undirected edges.
  void ReserveEdges(size_t num_edges) { edges_.reserve(num_edges); }

  /// Adds the undirected edge {u, v}. Self-loops and duplicates are accepted
  /// here and removed by Build().
  void AddEdge(NodeId u, NodeId v) {
    edges_.push_back({u, v});
    const NodeId hi = u > v ? u : v;
    if (hi >= num_nodes_) num_nodes_ = hi + 1;
  }

  /// Ensures the node count is at least `num_nodes`.
  void EnsureNodes(uint32_t num_nodes) {
    if (num_nodes > num_nodes_) num_nodes_ = num_nodes;
  }

  /// Number of raw (pre-dedup) undirected edges added so far.
  size_t NumPendingEdges() const { return edges_.size(); }

  uint32_t NumNodes() const { return num_nodes_; }

  /// Finalizes into a simple undirected CSR graph. The builder is left empty.
  Graph Build();

 private:
  struct RawEdge {
    NodeId u, v;
  };

  uint32_t num_nodes_ = 0;
  std::vector<RawEdge> edges_;
};

}  // namespace hkpr

#endif  // HKPR_GRAPH_GRAPH_BUILDER_H_
