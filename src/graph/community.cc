#include "graph/community.h"

#include <cstdio>
#include <cstdlib>
#include <memory>

namespace hkpr {

namespace {
struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;
}  // namespace

std::vector<size_t> CommunitySet::CommunitiesOfSizeAtLeast(
    size_t min_size) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < communities_.size(); ++i) {
    if (communities_[i].size() >= min_size) out.push_back(i);
  }
  return out;
}

int64_t CommunitySet::CommunityOf(NodeId v, uint32_t num_nodes) const {
  if (membership_.size() != num_nodes) {
    membership_.assign(num_nodes, -1);
    for (size_t c = 0; c < communities_.size(); ++c) {
      for (NodeId u : communities_[c]) {
        if (u < num_nodes && membership_[u] < 0) {
          membership_[u] = static_cast<int64_t>(c);
        }
      }
    }
  }
  return v < membership_.size() ? membership_[v] : -1;
}

Result<CommunitySet> CommunitySet::Load(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open " + path);
  CommunitySet out;
  std::string line;
  int ch;
  std::vector<NodeId> current;
  std::string token;
  auto flush_token = [&]() {
    if (!token.empty()) {
      current.push_back(static_cast<NodeId>(std::strtoull(token.c_str(),
                                                          nullptr, 10)));
      token.clear();
    }
  };
  while ((ch = std::fgetc(f.get())) != EOF) {
    if (ch == '\n') {
      flush_token();
      if (!current.empty()) out.Add(std::move(current));
      current = {};
    } else if (ch == ' ' || ch == '\t' || ch == '\r') {
      flush_token();
    } else {
      token.push_back(static_cast<char>(ch));
    }
  }
  flush_token();
  if (!current.empty()) out.Add(std::move(current));
  return out;
}

Status CommunitySet::Save(const std::string& path) const {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IOError("cannot open " + path + " for writing");
  for (const auto& community : communities_) {
    for (size_t i = 0; i < community.size(); ++i) {
      std::fprintf(f.get(), i == 0 ? "%u" : " %u", community[i]);
    }
    std::fputc('\n', f.get());
  }
  return Status::OK();
}

}  // namespace hkpr
