#include "graph/relabel.h"

#include <algorithm>
#include <numeric>

namespace hkpr {

DegreeOrderedLayout RelabelByDegree(const Graph& graph) {
  const uint32_t n = graph.NumNodes();
  DegreeOrderedLayout out;
  out.order.resize(n);
  out.rank.resize(n);
  std::iota(out.order.begin(), out.order.end(), NodeId{0});
  // Descending degree, ascending id on ties: deterministic in the graph.
  std::stable_sort(out.order.begin(), out.order.end(),
                   [&graph](NodeId a, NodeId b) {
                     return graph.Degree(a) > graph.Degree(b);
                   });
  for (uint32_t r = 0; r < n; ++r) out.rank[out.order[r]] = r;

  std::span<const uint64_t> old_offsets = graph.offsets();
  std::vector<uint64_t> offsets(old_offsets.begin(), old_offsets.end());
  std::vector<NodeId> adjacency(graph.adjacency().size());
  std::vector<uint64_t> row_starts(n);
  uint64_t cursor = 0;
  for (uint32_t r = 0; r < n; ++r) {
    const NodeId v = out.order[r];
    auto nbrs = graph.Neighbors(v);
    row_starts[v] = cursor;
    std::copy(nbrs.begin(), nbrs.end(), adjacency.begin() + cursor);
    cursor += nbrs.size();
  }
  out.graph = Graph::FromPermutedCsr(std::move(offsets), std::move(adjacency),
                                     std::move(row_starts));
  return out;
}

}  // namespace hkpr
