// Immutable undirected graph in compressed sparse row (CSR) form.
//
// This is the substrate every algorithm in the library runs on. Graphs are
// simple (no self-loops, no parallel edges), unweighted and undirected; they
// are constructed through GraphBuilder (src/graph/graph_builder.h), loaded
// from disk (src/graph/graph_io.h) or produced by a synthetic generator
// (src/graph/generators.h).

#ifndef HKPR_GRAPH_GRAPH_H_
#define HKPR_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/logging.h"
#include "common/random.h"

namespace hkpr {

/// Node identifier. Graphs in this library are bounded by 2^32-1 nodes.
using NodeId = uint32_t;

/// An immutable simple undirected graph in CSR layout.
///
/// `offsets_` has NumNodes()+1 entries; the neighbors of node v occupy
/// `adjacency_[offsets_[v] .. offsets_[v+1])`, sorted ascending. Every edge
/// {u, v} appears twice (u in v's list and v in u's list).
class Graph {
 public:
  Graph() = default;

  /// Assembles a graph from raw CSR arrays. The arrays must describe a valid
  /// symmetric simple graph: offsets non-decreasing with
  /// `offsets.front() == 0`, `offsets.back() == adjacency.size()`, each
  /// adjacency row sorted, free of duplicates and self-references, and every
  /// arc paired with its reverse. Validated with CHECKs in debug builds.
  static Graph FromCsr(std::vector<uint64_t> offsets,
                       std::vector<NodeId> adjacency);

  /// Number of nodes n (including isolated nodes).
  uint32_t NumNodes() const {
    return offsets_.empty() ? 0 : static_cast<uint32_t>(offsets_.size() - 1);
  }

  /// Number of undirected edges m.
  uint64_t NumEdges() const { return adjacency_.size() / 2; }

  /// Total volume of the graph: sum of all degrees = 2m.
  uint64_t Volume() const { return adjacency_.size(); }

  /// Average degree 2m/n (0 for the empty graph).
  double AverageDegree() const {
    return NumNodes() == 0
               ? 0.0
               : static_cast<double>(Volume()) / static_cast<double>(NumNodes());
  }

  /// Degree of node v.
  uint32_t Degree(NodeId v) const {
    HKPR_DCHECK(v < NumNodes());
    return static_cast<uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Maximum degree over all nodes (0 for the empty graph).
  uint32_t MaxDegree() const;

  /// Neighbors of v, sorted ascending.
  std::span<const NodeId> Neighbors(NodeId v) const {
    HKPR_DCHECK(v < NumNodes());
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }

  /// True if the undirected edge {u, v} exists. O(log d(u)).
  bool HasEdge(NodeId u, NodeId v) const;

  /// A uniformly random neighbor of v. v must have positive degree.
  NodeId RandomNeighbor(NodeId v, Rng& rng) const {
    const uint32_t d = Degree(v);
    HKPR_DCHECK(d > 0);
    return adjacency_[offsets_[v] + rng.UniformInt(d)];
  }

  /// Sum of degrees over a set of nodes.
  template <typename Container>
  uint64_t VolumeOf(const Container& nodes) const {
    uint64_t vol = 0;
    for (NodeId v : nodes) vol += Degree(v);
    return vol;
  }

  /// Heap bytes held by the CSR arrays (for Figure 5 memory accounting).
  size_t MemoryBytes() const {
    return offsets_.capacity() * sizeof(uint64_t) +
           adjacency_.capacity() * sizeof(NodeId);
  }

  const std::vector<uint64_t>& offsets() const { return offsets_; }
  const std::vector<NodeId>& adjacency() const { return adjacency_; }

 private:
  std::vector<uint64_t> offsets_;
  std::vector<NodeId> adjacency_;
};

}  // namespace hkpr

#endif  // HKPR_GRAPH_GRAPH_H_
